package es2

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// sloTestObjectives mirrors experiments.DefaultSLO at test scale:
// availability is the chaos discriminator (healthy runs without
// expired deadlines burn nothing), the latency ceiling sits well above
// the healthy p99, and the goodput floor is liveness-only.
func sloTestObjectives() SLOSpec {
	return SLOSpec{Objectives: []SLOObjective{
		{Name: "availability", Kind: SLOAvailability, Target: 0.999},
		{Name: "tail-latency", Kind: SLOLatency, Target: 0.99, Threshold: 20 * time.Millisecond},
		{Name: "goodput-floor", Kind: SLOGoodput, Target: 0.99, MinOpsPerSec: 1000},
	}}
}

// sloHealthySpec is the chaos-test topology with no faults: resilient
// clients, a request deadline comfortably above the healthy tail, and
// the full objective set.
func sloHealthySpec() ClusterSpec {
	s := chaosClusterSpec()
	s.Name = "slo-healthy"
	s.Chaos = ChaosSpec{}
	s.Workload.RequestTimeout = 2 * time.Millisecond
	s.SLO = sloTestObjectives()
	return s
}

// sloCrashSpec injects exactly one whole-host crash. The 2ms deadline
// keeps the healthy phases timeout-free, so availability burns only
// while the crash outage is live and the alert must both fire and
// clear inside the window.
func sloCrashSpec() ClusterSpec {
	s := sloHealthySpec()
	s.Name = "slo-crash"
	s.Chaos = ChaosSpec{
		HostCrashes: 1,
		CrashDown:   3 * time.Millisecond,
		MinGap:      time.Millisecond,
		MaxGap:      2500 * time.Microsecond,
	}
	return s
}

// TestClusterSLOHealthySilent is the false-positive contract: a
// healthy rack evaluated against the default-shaped objectives must
// end with zero alert events and every objective met.
func TestClusterSLOHealthySilent(t *testing.T) {
	spec := sloHealthySpec()
	spec.Telemetry = true
	spec.TelemetryWindow = 5 * time.Millisecond
	res, err := RunCluster(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.SLO
	if rep == nil {
		t.Fatal("SLO spec set but ClusterResult.SLO is nil")
	}
	if rep.Ticks == 0 {
		t.Fatal("evaluator never ticked")
	}
	if len(rep.Events) != 0 || rep.Fires != 0 || rep.Clears != 0 || rep.ActiveAtEnd != 0 {
		t.Fatalf("healthy rack raised alerts: %s", rep.Render())
	}
	if len(rep.Objectives) != 3 {
		t.Fatalf("objectives = %d, want 3", len(rep.Objectives))
	}
	for _, o := range rep.Objectives {
		if o.Breached {
			t.Errorf("objective %s breached on a healthy rack (error_rate=%.5f)", o.Name, o.ErrorRate)
		}
		if o.Total == 0 {
			t.Errorf("objective %s observed no operations", o.Name)
		}
	}
	var om bytes.Buffer
	if err := res.TelemetryRecorder.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"es2_slo_burn_rate", "es2_slo_alerts_active",
		"es2_slo_alerts_fired", "es2_slo_alerts_cleared",
	} {
		if !bytes.Contains(om.Bytes(), []byte(series)) {
			t.Errorf("OpenMetrics export missing SLO series %s", series)
		}
	}
}

// TestClusterSLOCrashAlertReconcilesWithMTTR is the detection
// contract: a host crash must fire the availability alert inside the
// fault window, and the alert timeline must reconcile with the
// recovery report — the final clear lands within one telemetry window
// of the fault's recovery instant, and nothing is left firing.
func TestClusterSLOCrashAlertReconcilesWithMTTR(t *testing.T) {
	spec := sloCrashSpec()
	spec.Telemetry = true
	spec.TelemetryWindow = 5 * time.Millisecond
	res, err := RunCluster(spec)
	if err != nil {
		t.Fatal(err)
	}
	rec, rep := res.Recovery, res.SLO
	if rec == nil || len(rec.Faults) != 1 {
		t.Fatalf("want exactly one injected fault, got %+v", rec)
	}
	f := rec.Faults[0]
	if f.Kind != "host_crash" || f.MTTRMs < 0 {
		t.Fatalf("crash did not recover: %+v", f)
	}
	if rep == nil || rep.Fires == 0 {
		t.Fatalf("host crash raised no SLO alerts: %+v", rep)
	}

	var fires, clears []SLOEvent
	for _, e := range rep.Events {
		if e.Objective != "availability" {
			t.Errorf("objective %s alerted on a pure-outage fault: %+v", e.Objective, e)
			continue
		}
		if e.Type == "fire" {
			fires = append(fires, e)
		} else {
			clears = append(clears, e)
		}
	}
	if len(fires) == 0 || len(clears) == 0 {
		t.Fatalf("availability fire/clear missing: %s", rep.Render())
	}

	// Detection: the first fire lands after the fault starts and
	// before the outage (plus one evaluation window of latency) ends.
	winMs := rep.WindowMs
	first := fires[0]
	if first.AtMs < f.StartMs {
		t.Errorf("alert fired at %.2fms, before the fault started at %.2fms", first.AtMs, f.StartMs)
	}
	if first.AtMs > f.StartMs+f.OutageMs+winMs {
		t.Errorf("alert fired at %.2fms, after the outage ended at %.2fms",
			first.AtMs, f.StartMs+f.OutageMs)
	}
	if first.BurnRate < 8 {
		t.Errorf("first fire burn %.2f below the fast threshold 8", first.BurnRate)
	}

	// Reconciliation: the recovery instant is StartMs+MTTRMs; the last
	// clear must land within one telemetry window of it, and no rule
	// may still be firing at the end of the run.
	recoveredMs := f.StartMs + f.MTTRMs
	lastClear := clears[len(clears)-1]
	tolMs := spec.TelemetryWindow.Seconds() * 1e3
	if lastClear.AtMs > recoveredMs+tolMs {
		t.Errorf("last clear at %.2fms, more than one telemetry window (%.0fms) after recovery at %.2fms",
			lastClear.AtMs, tolMs, recoveredMs)
	}
	if rep.ActiveAtEnd != 0 {
		t.Errorf("%d rules still firing at end of run: %s", rep.ActiveAtEnd, rep.Render())
	}
	if rep.Recovered != rep.Clears || rep.Recovered == 0 {
		t.Errorf("recovered=%d clears=%d; every fire must have recovered", rep.Recovered, rep.Clears)
	}

	// The fire event must carry the correlated chaos context.
	var sawFaultCtx bool
	for _, e := range fires {
		for _, af := range e.ActiveFaults {
			if strings.HasPrefix(af, "host_crash ") {
				sawFaultCtx = true
			}
		}
	}
	if !sawFaultCtx {
		t.Errorf("no fire event carried the active host_crash fault: %+v", fires)
	}
}

// TestClusterSLODeterministicReplay pins the observability guarantee:
// with SLO evaluation, telemetry, the critical-path analyzer and the
// invariant checker all on, two runs of the same chaotic spec must
// produce byte-identical SLO reports and JSONL event logs.
func TestClusterSLODeterministicReplay(t *testing.T) {
	spec := sloCrashSpec()
	spec.Telemetry = true
	spec.TelemetryWindow = 5 * time.Millisecond
	spec.CritPath = true
	spec.Check = true

	run := func() ([]byte, []byte) {
		res, err := RunCluster(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.SLO == nil || res.SLO.Fires == 0 {
			t.Fatal("crash replay run raised no alerts")
		}
		sj, err := json.Marshal(res.SLO)
		if err != nil {
			t.Fatal(err)
		}
		var log bytes.Buffer
		if err := WriteEventLog(&log, res.SLO, res.Recovery); err != nil {
			t.Fatal(err)
		}
		return sj, log.Bytes()
	}
	s1, l1 := run()
	s2, l2 := run()
	if !bytes.Equal(s1, s2) {
		t.Errorf("SLO reports differ between identical runs:\n%s\n---\n%s", s1, s2)
	}
	if !bytes.Equal(l1, l2) {
		t.Errorf("event logs differ between identical runs:\n%s\n---\n%s", l1, l2)
	}

	// The JSONL stream must interleave fault and alert records, carry
	// no wall-clock timestamps, and order records by at_ms.
	lines := strings.Split(strings.TrimSpace(string(l1)), "\n")
	if len(lines) < 3 {
		t.Fatalf("event log too short: %s", l1)
	}
	seen := map[string]bool{}
	lastAt := -1.0
	for _, ln := range lines {
		var rec struct {
			Time *string `json:"time"`
			Msg  string  `json:"msg"`
			AtMs float64 `json:"at_ms"`
		}
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("malformed JSONL line %q: %v", ln, err)
		}
		if rec.Time != nil {
			t.Fatalf("event log line carries a wall-clock timestamp: %s", ln)
		}
		if rec.AtMs < lastAt {
			t.Errorf("event log out of order: %.2f after %.2f", rec.AtMs, lastAt)
		}
		lastAt = rec.AtMs
		seen[rec.Msg] = true
	}
	for _, typ := range []string{"fault_injected", "fault_recovered", "alert_fire", "alert_clear"} {
		if !seen[typ] {
			t.Errorf("event log missing %s records: %s", typ, l1)
		}
	}
}
