package es2

import (
	"fmt"
	"sort"
	"strings"

	"es2/internal/profile"
	"es2/internal/sim"
)

// reportTopN bounds the Top context list of CPUReport; the full tree
// stays available through Result.CPUProfile.
const reportTopN = 15

// buildCPUReport condenses the finalized attribution tree into the
// Result summary.
func buildCPUReport(p *profile.Profiler, spec ScenarioSpec, window sim.Time) *CPUReport {
	rep := &CPUReport{
		WindowSeconds: window.Seconds(),
		ExitNanos:     make(map[string]int64),
	}
	for i := 0; i < p.NumCores(); i++ {
		c := p.Core(i)
		cu := CoreUsage{Core: i, Occupants: make(map[string]float64)}
		var busy sim.Time
		for _, occ := range c.Children() {
			t := occ.Total()
			if t == 0 {
				continue
			}
			cu.Occupants[occ.Name()] = float64(t) / float64(window)
			if occ.Kind() != profile.KindIdle {
				busy += t
			}
		}
		cu.Busy = float64(busy) / float64(window)
		rep.Cores = append(rep.Cores, cu)
	}

	// Samples come out lexically sorted; a stable resort by value keeps
	// the lexical order among ties, so the report is deterministic.
	samples := p.Samples()
	sort.SliceStable(samples, func(i, j int) bool {
		return samples[i].Value > samples[j].Value
	})
	totalCoreTime := float64(window) * float64(p.NumCores())
	for i, s := range samples {
		if i >= reportTopN {
			break
		}
		rep.Top = append(rep.Top, CPUContext{
			Stack: strings.Join(s.Stack, ";"),
			Nanos: int64(s.Value),
			Share: float64(s.Value) / totalCoreTime,
		})
	}
	for name, t := range p.ExitTotals() {
		rep.ExitNanos[name] = int64(t)
	}
	rep.GuestShare = p.GuestShare(0)
	if spec.VhostCores > 0 && window > 0 {
		rep.VhostBusy = float64(p.VhostBusy()) / (float64(window) * float64(spec.VhostCores))
	}
	return rep
}

// Render returns the report as the human-readable block the CLIs print.
func (rep *CPUReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CPU profile (%.3fs window, exact attribution):\n", rep.WindowSeconds)
	fmt.Fprintf(&b, "  guest share %.4f  vhost busy %.4f\n", rep.GuestShare, rep.VhostBusy)
	for _, cu := range rep.Cores {
		fmt.Fprintf(&b, "  core%-2d busy %5.1f%%", cu.Core, cu.Busy*100)
		names := make([]string, 0, len(cu.Occupants))
		for n := range cu.Occupants {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool {
			if cu.Occupants[names[i]] != cu.Occupants[names[j]] {
				return cu.Occupants[names[i]] > cu.Occupants[names[j]]
			}
			return names[i] < names[j]
		})
		for _, n := range names {
			fmt.Fprintf(&b, "  %s %.1f%%", n, cu.Occupants[n]*100)
		}
		b.WriteByte('\n')
	}
	if len(rep.ExitNanos) > 0 {
		reasons := make([]string, 0, len(rep.ExitNanos))
		for name := range rep.ExitNanos {
			reasons = append(reasons, name)
		}
		sort.Strings(reasons)
		b.WriteString("  exit cycles:")
		for _, name := range reasons {
			fmt.Fprintf(&b, "  %s %.3fms", strings.TrimPrefix(name, "exit:"),
				float64(rep.ExitNanos[name])/1e6)
		}
		b.WriteByte('\n')
	}
	b.WriteString("  top contexts (self time):\n")
	for _, c := range rep.Top {
		fmt.Fprintf(&b, "    %6.2f%%  %s\n", c.Share*100, c.Stack)
	}
	return b.String()
}
