package es2

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"
)

// faultedSpec is a scenario with every fault class firing at once, used
// by the determinism and checker tests.
func faultedSpec() ScenarioSpec {
	s := short(Full(4), WorkloadSpec{Kind: NetperfTCPSend, MsgBytes: 1024})
	s.Warmup = 50 * time.Millisecond
	s.Duration = 150 * time.Millisecond
	s.VCPUs, s.VMCores, s.VhostCores = 2, 2, 1
	s.Faults = FaultSpec{
		PacketLossProb:    0.01,
		PacketDupProb:     0.005,
		LostKickProb:      0.02,
		LostSignalProb:    0.02,
		VhostStallEvery:   5 * time.Millisecond,
		VhostStall:        200 * time.Microsecond,
		PIOutageEvery:     10 * time.Millisecond,
		PIOutage:          time.Millisecond,
		PreemptStormEvery: 20 * time.Millisecond,
		PreemptStorm:      500 * time.Microsecond,
	}
	return s
}

// TestFaultedRunDeterministic is the replay guarantee: the same faulted
// spec and seed produce byte-identical results and timelines.
func TestFaultedRunDeterministic(t *testing.T) {
	run := func() ([]byte, []byte) {
		s := faultedSpec()
		s.Timeline = true
		s.Check = true
		res, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if res.Faults == nil || res.Faults.Injected == 0 {
			t.Fatal("fault report empty; the spec should inject across the window")
		}
		rj, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		var tl bytes.Buffer
		if err := res.Timeline.WriteJSON(&tl); err != nil {
			t.Fatal(err)
		}
		return rj, tl.Bytes()
	}
	r1, t1 := run()
	r2, t2 := run()
	if !bytes.Equal(r1, r2) {
		t.Errorf("results differ between identical faulted runs:\n%s\n---\n%s", r1, r2)
	}
	if !bytes.Equal(t1, t2) {
		t.Error("timelines differ between identical faulted runs")
	}
}

// TestLostKickRecovery is the headline robustness scenario: a
// window-limited TCP sender whose kicks are lost 10% of the time
// deadlocks permanently without recovery (the last kick before the
// window closes is lost, the segments are never processed, so the ACK
// that would reopen the window never comes), but the vhost re-poll
// brings throughput back to at least 90% of the fault-free run. Run
// with and without ES2 hybrid kick polling.
func TestLostKickRecovery(t *testing.T) {
	for _, cfg := range []Config{PIOnly(), PIH(4)} {
		base := short(cfg, WorkloadSpec{Kind: NetperfTCPSend, MsgBytes: 1024, Window: 4})
		base.Warmup = 100 * time.Millisecond
		base.Duration = 300 * time.Millisecond

		clean, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}

		faulted := base
		faulted.Faults = FaultSpec{LostKickProb: 0.1}
		rec, err := Run(faulted)
		if err != nil {
			t.Fatal(err)
		}

		noRec := faulted
		noRec.Faults.NoRecovery = true
		dead, err := Run(noRec)
		if err != nil {
			t.Fatal(err)
		}

		t.Logf("%s: clean=%.0f recovered=%.0f (lost=%d repolls=%d) norecovery=%.0f Mbps",
			cfg, clean.ThroughputMbps, rec.ThroughputMbps,
			rec.Faults.LostKicks, rec.Faults.VhostRePolls, dead.ThroughputMbps)
		if rec.Faults.LostKicks == 0 {
			t.Errorf("%s: no kicks were lost at p=0.1", cfg)
		}
		if rec.Faults.VhostRePolls == 0 {
			t.Errorf("%s: the vhost re-poll never recovered a lost kick", cfg)
		}
		if rec.ThroughputMbps < 0.9*clean.ThroughputMbps {
			t.Errorf("%s: recovered throughput %.0f < 90%% of clean %.0f Mbps",
				cfg, rec.ThroughputMbps, clean.ThroughputMbps)
		}
		if dead.ThroughputMbps > 0.5*clean.ThroughputMbps {
			t.Errorf("%s: without recovery expected collapse, got %.0f of %.0f Mbps",
				cfg, dead.ThroughputMbps, clean.ThroughputMbps)
		}
	}
}

// TestPIOutageFallback exercises ES2 graceful degradation: while a
// vCPU's posted-interrupt facility is down, deliveries fall back to the
// emulated path; when it recovers, the posted/redirected paths resume.
// The path breakdown must attribute both mechanisms.
func TestPIOutageFallback(t *testing.T) {
	s := short(Full(8), WorkloadSpec{Kind: NetperfUDPRecv, MsgBytes: 1024, UDPRatePPS: 100_000})
	s.Warmup = 100 * time.Millisecond
	s.Duration = 300 * time.Millisecond
	s.PathTrace = true
	s.Faults = FaultSpec{PIOutageEvery: 3 * time.Millisecond, PIOutage: 2 * time.Millisecond}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.PIOutages == 0 {
		t.Fatal("no PI outages injected")
	}
	if res.Faults.PIFallbacks == 0 {
		t.Error("no posted->emulated fallbacks despite PI outages")
	}
	// The signal stage carries the delivery-mechanism attribution:
	// emulated signals during outages, posted/redirected between them.
	var emulated, fast uint64
	for _, st := range res.PathBreakdown {
		if st.Stage != "signal" {
			continue
		}
		switch st.Mechanism {
		case "emulated":
			emulated += st.Count
		case "posted", "redirected":
			fast += st.Count
		}
	}
	t.Logf("signal: emulated=%d posted/redirected=%d fallbacks=%d outages=%d",
		emulated, fast, res.Faults.PIFallbacks, res.Faults.PIOutages)
	if emulated == 0 {
		t.Error("path breakdown shows no emulated signals during outages")
	}
	if fast == 0 {
		t.Error("path breakdown shows no posted/redirected signals between outages")
	}
}

// TestPacketLossRetransmit checks transport recovery in both stream
// directions: wire loss triggers retransmission timeouts and the
// connection keeps making progress.
func TestPacketLossRetransmit(t *testing.T) {
	for _, kind := range []WorkloadKind{NetperfTCPSend, NetperfTCPRecv} {
		s := short(PIOnly(), WorkloadSpec{Kind: kind, MsgBytes: 1024})
		s.Warmup = 100 * time.Millisecond
		s.Duration = 300 * time.Millisecond
		s.Faults = FaultSpec{PacketLossProb: 0.02}
		res, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%v: %.0f Mbps, drops=%d retransmits=%d",
			kind, res.ThroughputMbps, res.Faults.WireDrops, res.Faults.Retransmits)
		if res.Faults.WireDrops == 0 {
			t.Errorf("%v: no wire drops at p=0.02", kind)
		}
		if res.Faults.Retransmits == 0 {
			t.Errorf("%v: loss never triggered a retransmission timeout", kind)
		}
		if res.ThroughputMbps <= 0 {
			t.Errorf("%v: stream made no progress under 2%% loss", kind)
		}
	}
}

// TestCheckerRunsUnderFaults asserts the invariant checker actually
// sweeps (and therefore would catch violations) in the harshest
// scenario we can configure.
func TestCheckerRunsUnderFaults(t *testing.T) {
	s := faultedSpec()
	s.Check = true
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.InvariantChecks == 0 {
		t.Fatal("invariant checker never ticked despite Check: true")
	}
}

// TestRunRejectsInvalidSpecs: every malformed spec must surface as an
// error from Run (and from the exported Validate), never as a panic.
func TestRunRejectsInvalidSpecs(t *testing.T) {
	cases := []struct {
		name string
		spec ScenarioSpec
	}{
		{"too many VMs", ScenarioSpec{VMs: 1000}},
		{"too many vCPUs", ScenarioSpec{VCPUs: 1000, VMCores: 32}},
		{"overcommit", ScenarioSpec{VCPUs: 32, VMCores: 1}},
		{"sidecore+hybrid", ScenarioSpec{Sidecore: true, Config: Config{Hybrid: true, Quota: 4}}},
		{"bad kind", ScenarioSpec{Workload: WorkloadSpec{Kind: WorkloadKind(99)}}},
		{"negative coalesce", ScenarioSpec{CoalesceCount: -1}},
		{"huge msg", ScenarioSpec{Workload: WorkloadSpec{MsgBytes: 1 << 30}}},
		{"NaN rate", ScenarioSpec{Workload: WorkloadSpec{Kind: NetperfUDPSend, UDPRatePPS: math.NaN()}}},
		{"Inf rate", ScenarioSpec{Workload: WorkloadSpec{Kind: NetperfUDPSend, SendRatePPS: math.Inf(1)}}},
		{"bad fault prob", ScenarioSpec{Faults: FaultSpec{PacketLossProb: 1.5}}},
		{"fault pair missing", ScenarioSpec{Faults: FaultSpec{VhostStallEvery: time.Millisecond}}},
		{"storm core range", ScenarioSpec{VCPUs: 1, Faults: FaultSpec{
			PreemptStormEvery: time.Millisecond, PreemptStorm: time.Microsecond, StormCores: []int{99}}}},
		{"huge duration", ScenarioSpec{Duration: 48 * time.Hour}},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the spec", c.name)
		}
		res, err := Run(c.spec)
		if err == nil {
			t.Errorf("%s: Run accepted the spec", c.name)
		}
		if res != nil {
			t.Errorf("%s: Run returned a result alongside the error", c.name)
		}
		var se *SpecError
		if !errorsAs(err, &se) {
			t.Errorf("%s: error %v is not a *SpecError", c.name, err)
		}
	}
}

// errorsAs avoids importing errors just for one assertion.
func errorsAs(err error, target **SpecError) bool {
	se, ok := err.(*SpecError)
	if ok {
		*target = se
	}
	return ok
}
