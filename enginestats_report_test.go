package es2

// Engine self-observability: the wall-clock performance collector must
// never perturb the simulation (byte-identical Result JSON with stats
// on or off, including faulted and chaotic runs), must produce a sane
// EngineReport, and must stay cheap.

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// marshalResult renders the deterministic JSON surface of a result.
func marshalResult(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestEngineStatsNonPerturbing(t *testing.T) {
	spec := short(Full(4), WorkloadSpec{Kind: Memcached})
	spec.Faults = FaultSpec{LostKickProb: 0.05, PacketLossProb: 0.01}

	off := mustRun(t, spec)
	on := spec
	on.EngineStats = true
	onRes := mustRun(t, on)

	if onRes.EngineReport == nil {
		t.Fatalf("EngineStats run has no EngineReport")
	}
	if off.EngineReport != nil {
		t.Fatalf("stats-off run has an EngineReport")
	}
	// Clearing the report must make the structs identical; the JSON
	// surface must be byte-identical even without clearing, because the
	// report is excluded from it.
	if !bytes.Equal(marshalResult(t, off), marshalResult(t, onRes)) {
		t.Fatalf("Result JSON differs with engine stats enabled")
	}
}

func TestEngineStatsClusterNonPerturbing(t *testing.T) {
	spec := chaosClusterSpec()
	spec.Faults = FaultSpec{LostKickProb: 0.02}

	off, err := RunCluster(spec)
	if err != nil {
		t.Fatal(err)
	}
	on := spec
	on.EngineStats = true
	onRes, err := RunCluster(on)
	if err != nil {
		t.Fatal(err)
	}
	if onRes.EngineReport == nil {
		t.Fatalf("EngineStats cluster run has no EngineReport")
	}
	if !bytes.Equal(marshalResult(t, off), marshalResult(t, onRes)) {
		t.Fatalf("ClusterResult JSON differs with engine stats enabled")
	}
}

func TestEngineReportContents(t *testing.T) {
	spec := short(Full(4), WorkloadSpec{Kind: NetperfTCPSend, MsgBytes: 1024})
	spec.EngineStats = true
	r := mustRun(t, spec)
	er := r.EngineReport
	if er == nil {
		t.Fatalf("no EngineReport")
	}
	if er.WallNs <= 0 || er.EventsFired == 0 || er.EventsPerSec <= 0 {
		t.Fatalf("rates not populated: wall=%d fired=%d eps=%g", er.WallNs, er.EventsFired, er.EventsPerSec)
	}
	wantSim := (spec.Warmup + spec.Duration).Seconds()
	if er.SimSeconds != wantSim {
		t.Fatalf("SimSeconds = %g, want %g", er.SimSeconds, wantSim)
	}
	if er.SampleN != DefaultEngineStatsSampleN {
		t.Fatalf("SampleN = %d, want default %d", er.SampleN, DefaultEngineStatsSampleN)
	}
	if er.Heap.Pushes == 0 || er.Heap.Pops == 0 || er.Heap.MaxDepth <= 0 || er.Heap.MeanDepth <= 0 {
		t.Fatalf("heap stats not populated: %+v", er.Heap)
	}
	if er.Heap.Pops > er.Heap.Pushes {
		t.Fatalf("more pops than pushes: %+v", er.Heap)
	}
	if er.Ticks == 0 || len(er.EventsPerTick) == 0 {
		t.Fatalf("tick distribution empty: ticks=%d buckets=%d", er.Ticks, len(er.EventsPerTick))
	}
	var bucketTicks uint64
	for _, b := range er.EventsPerTick {
		bucketTicks += b.Ticks
	}
	if bucketTicks != er.Ticks {
		t.Fatalf("events-per-tick buckets sum to %d, want %d", bucketTicks, er.Ticks)
	}
	if er.SampledEvents == 0 || len(er.Subsystems) == 0 {
		t.Fatalf("no sampled subsystem attribution: sampled=%d rows=%d", er.SampledEvents, len(er.Subsystems))
	}
	for _, row := range er.Subsystems {
		if row.Name == "" || row.Samples == 0 {
			t.Fatalf("degenerate subsystem row: %+v", row)
		}
	}
	if er.AllocBytes == 0 || er.Mallocs == 0 {
		t.Fatalf("memstats deltas not populated: %+v", er)
	}
	if er.Render() == "" {
		t.Fatalf("empty Render")
	}
}

// TestEngineStatsOverhead checks that instrumentation stays cheap. The
// acceptance bar is <2% mean overhead (measured and recorded in
// EXPERIMENTS.md); the test bound is deliberately loose so scheduler
// noise on shared CI runners cannot flake it.
func TestEngineStatsOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead measurement skipped in -short")
	}
	spec := short(Full(4), WorkloadSpec{Kind: NetperfTCPSend, MsgBytes: 1024})
	spec.Duration = 800 * time.Millisecond

	run := func(stats bool) time.Duration {
		s := spec
		s.EngineStats = stats
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			mustRun(t, s)
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	run(false) // warm caches before timing
	off := run(false)
	on := run(true)
	overhead := float64(on-off) / float64(off)
	t.Logf("engine stats overhead: off=%v on=%v (%+.2f%%)", off, on, 100*overhead)
	if overhead > 0.15 {
		t.Fatalf("instrumentation overhead %.1f%% exceeds the 15%% test bound (target <2%%)", 100*overhead)
	}
}
