package experiments

import (
	"fmt"
	"strings"
	"time"

	"es2"
)

// ClusterExperiment is one rack-scale scenario set: the cluster
// analogue of Experiment, run with es2.RunManyCluster.
type ClusterExperiment struct {
	// ID is the short handle ("rack1").
	ID string
	// Title describes the experiment.
	Title string
	// PaperClaim summarizes the claim under test.
	PaperClaim string
	// Specs are the cluster scenarios to run (order matters to Render).
	Specs []es2.ClusterSpec
	// Render formats the results (same order as Specs).
	Render func(results []*es2.ClusterResult) string
}

// rack1Configs are the event-path configurations rack1 sweeps.
var rack1Configs = []struct {
	Name string
	Cfg  es2.Config
}{
	{"Baseline", es2.Baseline()},
	{"PI", es2.PIOnly()},
	{"PI+H+R", es2.Full(4)},
}

// Rack1 is the rack-scale scenario: eight hosts (four client, four
// server), four 2-vCPU VMs per host time-sharing two cores (4x vCPU
// multiplexing, the Section VI-D consolidation regime), vhost on two
// dedicated cores per host, and 2048 closed-loop RPC flows
// load-balanced from every client VM across every server VM through
// one 40G switch. Every request and response traverses the full
// virtual I/O event path on both ends plus the fabric, so the paper's
// per-host savings compound across the rack.
func Rack1() ClusterExperiment {
	var specs []es2.ClusterSpec
	for _, c := range rack1Configs {
		specs = append(specs, es2.ClusterSpec{
			Name:        "rack1/" + c.Name,
			Seed:        Seed,
			Config:      c.Cfg,
			Hosts:       8,
			ClientHosts: 4,
			VMsPerHost:  4,
			VCPUs:       2,
			VMCores:     2,
			VhostCores:  2,
			Workload:    es2.ClusterWorkloadSpec{Flows: 2048},
			Warmup:      80 * time.Millisecond,
			Duration:    150 * time.Millisecond,
		})
	}
	return ClusterExperiment{
		ID:    "rack1",
		Title: "Rack-scale: 8 hosts, 32 VMs, 2048 RPC flows through one switch",
		PaperClaim: "the conclusion aims at 'scalability in large cloud " +
			"infrastructures'; with both RPC endpoints virtualized, eliminating " +
			"exits and redirecting interrupts on every host should raise " +
			"cluster throughput and cut tail latency rack-wide",
		Specs: specs,
		Render: func(rs []*es2.ClusterResult) string {
			var b strings.Builder
			fmt.Fprintf(&b, "%-10s %12s %12s %12s %12s %8s %10s %10s\n",
				"Config", "RPCs/s", "p50", "p99", "Exits/s", "TIG", "VhostCPU", "Redirect")
			for i, c := range rack1Configs {
				a := rs[i].Aggregate
				fmt.Fprintf(&b, "%-10s %12.0f %12v %12v %12.0f %7.1f%% %9.1f%% %9.1f%%\n",
					c.Name, a.OpsPerSec,
					a.P50Latency.Round(time.Microsecond),
					a.P99Latency.Round(time.Microsecond),
					a.TotalExitRate, 100*a.TIG, 100*a.VhostCPU, 100*a.RedirectRate)
			}
			if ff := rs[len(rs)-1].FlowFairness; ff != nil {
				fmt.Fprintf(&b, "\nPI+H+R per-flow means: min %v / avg %v / max %v over %d flows\n",
					ff.MinMean.Round(time.Microsecond),
					ff.MeanOfMeans.Round(time.Microsecond),
					ff.MaxMean.Round(time.Microsecond), ff.Flows)
			}
			fb := rs[len(rs)-1].Fabric
			fmt.Fprintf(&b, "Fabric: %d frames forwarded, %d egress drops, %d route drops\n",
				fb.Forwarded, fb.EgressDrops, fb.RouteDrops)
			return b.String()
		},
	}
}

// DefaultChaos is the rack1-derived macro-fault timeline: one
// whole-host crash and two link flaps, spaced a few milliseconds
// apart. es2cluster's -chaos rack1 preset attaches it to any scenario.
func DefaultChaos() es2.ChaosSpec {
	return es2.ChaosSpec{
		HostCrashes: 1,
		CrashDown:   12 * time.Millisecond,
		LinkFlaps:   2,
		FlapDown:    3 * time.Millisecond,
		MinGap:      4 * time.Millisecond,
		MaxGap:      10 * time.Millisecond,
	}
}

// DefaultSLO is the rack1-derived objective set es2cluster's
// -slo default preset attaches to any scenario. The targets are tuned
// so the full-ES2 rack1 config stays silent (healthy runs at CI's
// -scale 4 are silent for every config) while a chaos run breaches
// promptly:
//
//   - availability 99.9%: request deadlines expired vs completions.
//     Healthy scenarios run without deadlines (zero timeouts, zero
//     burn); under chaos the outage-phase timeout rate exceeds the
//     0.1% budget by orders of magnitude, so the fast rule fires
//     within a few evaluation ticks of the fault.
//   - tail latency 99% under 75ms: rack1's healthy p99 sits in the
//     tens of milliseconds under 4x vCPU multiplexing, so the 75ms
//     ceiling fires only when the tail collapses beyond the healthy
//     envelope.
//   - goodput floor 1000 ops/s: a liveness objective — it burns only
//     when the rack effectively stops completing work. With the 1ms
//     tick the floor expects one completion per tick, so a rack-wide
//     completion gap one tick long already reads as a total local
//     stall; the unscaled rack1/PI config trips it once mid-run, a
//     genuine microstall the burn-rate rules are meant to surface.
func DefaultSLO() es2.SLOSpec {
	return es2.SLOSpec{
		Objectives: []es2.SLOObjective{
			{Name: "availability", Kind: es2.SLOAvailability, Target: 0.999},
			{Name: "tail-latency", Kind: es2.SLOLatency, Target: 0.99,
				Threshold: 75 * time.Millisecond},
			{Name: "goodput-floor", Kind: es2.SLOGoodput, Target: 0.99,
				MinOpsPerSec: 1000},
		},
	}
}

// Chaos is the robustness scenario: the rack1 topology under the full
// event path, with a macro-fault timeline — one whole-host crash and
// two fabric link flaps — injected during the measurement window.
// Clients run with request deadlines, backoff and failover, so the
// experiment measures how fast the rack re-converges (MTTR,
// availability, degraded-phase goodput) rather than whether it hangs.
func Chaos() ClusterExperiment {
	spec := es2.ClusterSpec{
		Name:        "chaos/PI+H+R",
		Seed:        Seed,
		Config:      es2.Full(4),
		Hosts:       8,
		ClientHosts: 4,
		// One vCPU per VM, pinned 1:1 onto VM cores (the paper's testbed
		// pins vCPUs too): chaos recovery depends on starved vCPUs
		// draining their retry backlogs promptly, and CPU-oversubscribed
		// cores under CFS rotate runnable threads on a multi-millisecond
		// period — longer than any sane request deadline.
		VMsPerHost: 4,
		VCPUs:      1,
		VMCores:    4,
		VhostCores: 2,
		Workload: es2.ClusterWorkloadSpec{
			Flows:           1024,
			RequestTimeout:  3 * time.Millisecond,
			RetryBackoff:    300 * time.Microsecond,
			RetryBackoffMax: 2 * time.Millisecond,
			FailoverAfter:   2,
		},
		Chaos:    DefaultChaos(),
		Warmup:   80 * time.Millisecond,
		Duration: 150 * time.Millisecond,
	}
	return ClusterExperiment{
		ID:    "chaos",
		Title: "Chaos: rack1 under a host crash and two link flaps",
		PaperClaim: "an optimal event path must stay optimal when the rack " +
			"misbehaves; resilient clients should ride out whole-host outages " +
			"and link flaps with bounded recovery time and no lost flows",
		Specs: []es2.ClusterSpec{spec},
		Render: func(rs []*es2.ClusterResult) string {
			var b strings.Builder
			r := rs[0]
			a := r.Aggregate
			fmt.Fprintf(&b, "%-10s %12s %12s %12s %10s %10s %10s\n",
				"Config", "RPCs/s", "p50", "p99", "Timeouts", "Retries", "Migrated")
			rec := r.Recovery
			fmt.Fprintf(&b, "%-10s %12.0f %12v %12v %10d %10d %10d\n",
				"PI+H+R", a.OpsPerSec,
				a.P50Latency.Round(time.Microsecond),
				a.P99Latency.Round(time.Microsecond),
				rec.Timeouts, rec.Retries, rec.MigratedFlows)
			fmt.Fprintf(&b, "\n%-18s %-8s %10s %10s %10s\n",
				"Fault", "Target", "Start", "Outage", "MTTR")
			for _, f := range rec.Faults {
				mttr := "never"
				if f.MTTRMs >= 0 {
					mttr = fmt.Sprintf("%.2fms", f.MTTRMs)
				}
				fmt.Fprintf(&b, "%-18s %-8s %8.2fms %8.2fms %10s\n",
					f.Kind, f.Target, f.StartMs, f.OutageMs, mttr)
			}
			fmt.Fprintf(&b, "\nAvailability: %.0f%% of %d windows; degraded %.1fms at %.0f ops/s vs %.0f ops/s healthy\n",
				100*rec.Availability, rec.TotalWindows,
				1e3*rec.DegradedSeconds, rec.DegradedOpsPerSec, rec.HealthyOpsPerSec)
			fmt.Fprintf(&b, "Drops: %d link, %d blackhole; flows unaccounted: %d\n",
				rec.LinkDrops, rec.BlackholeDrops, rec.FlowsUnaccounted)
			return b.String()
		},
	}
}

// ClusterExperiments returns every rack-scale experiment.
func ClusterExperiments() []ClusterExperiment {
	return []ClusterExperiment{Rack1(), Chaos(), Daycycle()}
}

// ClusterByID looks a cluster experiment up by its short handle.
func ClusterByID(id string) (ClusterExperiment, bool) {
	for _, e := range ClusterExperiments() {
		if e.ID == id {
			return e, true
		}
	}
	return ClusterExperiment{}, false
}

// ScaleCluster shrinks an experiment by the given factor (> 1 divides
// flow count and measurement window) for smoke runs on constrained CI;
// factor <= 1 returns the experiment unchanged. Chaos timelines and the
// client recovery knobs shrink with the window, so a scaled run keeps
// the same outages-per-window shape as the full one.
func ScaleCluster(e ClusterExperiment, factor float64) ClusterExperiment {
	if factor <= 1 {
		return e
	}
	div := func(d time.Duration) time.Duration {
		return time.Duration(float64(d) / factor)
	}
	for i := range e.Specs {
		s := &e.Specs[i]
		// Open-loop scenarios scale through the window alone: shrinking
		// it compresses the modeled day harder (TimeScale auto-fits), so
		// offered rates — and the knee they sweep — stay comparable.
		if !s.Workload.Load.Enabled() {
			s.Workload.Flows = int(float64(s.Workload.Flows) / factor)
			if s.Workload.Flows < 1 {
				s.Workload.Flows = 1
			}
		}
		s.Warmup = div(s.Warmup)
		s.Duration = div(s.Duration)
		if s.Chaos.Enabled() {
			c := &s.Chaos
			c.CrashDown = div(c.CrashDown)
			c.FreezeFor = div(c.FreezeFor)
			c.FlapDown = div(c.FlapDown)
			c.DegradeFor = div(c.DegradeFor)
			c.BlackholeFor = div(c.BlackholeFor)
			c.MinGap = div(c.MinGap)
			c.MaxGap = div(c.MaxGap)
		}
		w := &s.Workload
		w.RequestTimeout = div(w.RequestTimeout)
		if w.RequestTimeout > 0 && w.RequestTimeout < 10*time.Microsecond {
			w.RequestTimeout = 10 * time.Microsecond
		}
		w.RetryBackoff = div(w.RetryBackoff)
		w.RetryBackoffMax = div(w.RetryBackoffMax)
	}
	return e
}
