package experiments

import (
	"strings"
	"testing"

	"es2"
)

func TestClusterRegistryWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range ClusterExperiments() {
		if e.ID == "" || e.Title == "" || e.PaperClaim == "" {
			t.Fatalf("cluster experiment %q missing metadata", e.ID)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate cluster experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if len(e.Specs) == 0 || e.Render == nil {
			t.Fatalf("cluster experiment %q incomplete", e.ID)
		}
		for _, s := range e.Specs {
			if err := s.Validate(); err != nil {
				t.Fatalf("cluster experiment %q spec %q invalid: %v", e.ID, s.Name, err)
			}
		}
	}
	if _, ok := ClusterByID("rack1"); !ok {
		t.Fatal("ClusterByID(rack1) failed")
	}
	if _, ok := ClusterByID("nope"); ok {
		t.Fatal("ClusterByID should reject unknown ids")
	}
}

func TestScaleCluster(t *testing.T) {
	e := ScaleCluster(Rack1(), 4)
	orig := Rack1()
	for i, s := range e.Specs {
		if s.Workload.Flows != orig.Specs[i].Workload.Flows/4 {
			t.Errorf("spec %d flows = %d, want %d", i, s.Workload.Flows, orig.Specs[i].Workload.Flows/4)
		}
		if s.Duration != orig.Specs[i].Duration/4 {
			t.Errorf("spec %d duration = %v, want %v", i, s.Duration, orig.Specs[i].Duration/4)
		}
	}
	same := ScaleCluster(Rack1(), 1)
	if same.Specs[0].Workload.Flows != orig.Specs[0].Workload.Flows {
		t.Error("scale 1 must leave the experiment unchanged")
	}
	tiny := Rack1()
	tiny.Specs[0].Workload.Flows = 2
	if got := ScaleCluster(tiny, 100).Specs[0].Workload.Flows; got != 1 {
		t.Errorf("flows floored at %d, want 1", got)
	}
}

// TestRack1Improvement is the rack-scale headline: the full ES2
// configuration must cut the aggregate VM-exit rate and the p99 RPC
// latency versus Baseline across the 8-host, 32-VM rack. Run at
// reduced scale (the same shrink the CI smoke job uses); the seed is
// fixed, so the comparison is exact, not statistical.
func TestRack1Improvement(t *testing.T) {
	e := ScaleCluster(Rack1(), 4)
	rs, err := es2.RunManyCluster(e.Specs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Hosts < 8 || rs[0].VMs < 32 {
		t.Fatalf("rack1 runs %d hosts / %d VMs, want >= 8 / >= 32", rs[0].Hosts, rs[0].VMs)
	}
	base, full := rs[0].Aggregate, rs[len(rs)-1].Aggregate
	if full.TotalExitRate >= base.TotalExitRate {
		t.Errorf("Full exit rate %.0f/s not below Baseline %.0f/s",
			full.TotalExitRate, base.TotalExitRate)
	}
	if full.P99Latency >= base.P99Latency {
		t.Errorf("Full p99 %v not below Baseline %v", full.P99Latency, base.P99Latency)
	}
	if full.OpsPerSec <= base.OpsPerSec {
		t.Errorf("Full throughput %.0f/s not above Baseline %.0f/s",
			full.OpsPerSec, base.OpsPerSec)
	}
	if full.RedirectRate <= 0 {
		t.Error("Full config never redirected an interrupt")
	}
	out := e.Render(rs)
	for _, want := range []string{"Baseline", "PI+H+R", "Fabric", "per-flow means"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
