package experiments

import (
	"strings"
	"testing"
	"time"

	"es2"
)

func TestRegistryWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range append(All(), Extensions()...) {
		if e.ID == "" || e.Title == "" || e.PaperClaim == "" {
			t.Fatalf("experiment %q missing metadata", e.ID)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if len(e.Specs) == 0 {
			t.Fatalf("experiment %q has no scenarios", e.ID)
		}
		if e.Render == nil {
			t.Fatalf("experiment %q has no renderer", e.ID)
		}
		for _, s := range e.Specs {
			if s.Name == "" {
				t.Fatalf("experiment %q has an unnamed scenario", e.ID)
			}
			if s.Duration <= 0 && s.Warmup < 0 {
				t.Fatalf("experiment %q scenario %q has bad timing", e.ID, s.Name)
			}
		}
	}
	if len(seen) != 11+7 {
		t.Fatalf("expected 11 paper experiments + 7 extensions, got %d", len(seen))
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"table1", "fig4a", "fig9"} {
		if _, ok := ByID(id); !ok {
			t.Fatalf("ByID(%q) failed", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID should reject unknown ids")
	}
	if _, ok := ByIDWithExtensions("sriov"); !ok {
		t.Fatal("extensions must be addressable")
	}
	if _, ok := ByIDWithExtensions("table1"); !ok {
		t.Fatal("paper experiments must be addressable via the extended lookup")
	}
}

// shrink cuts an experiment down for a fast smoke test.
func shrink(e Experiment, maxSpecs int) Experiment {
	if len(e.Specs) > maxSpecs {
		e.Specs = e.Specs[:maxSpecs]
	}
	for i := range e.Specs {
		e.Specs[i].Warmup = 100 * time.Millisecond
		e.Specs[i].Duration = 200 * time.Millisecond
	}
	return e
}

func TestTableIRunsAndRenders(t *testing.T) {
	e := shrink(TableI(), 2)
	rs, err := es2.RunMany(e.Specs, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := e.Render(rs)
	for _, want := range []string{"Baseline", "PI", "I/O Request"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestQuotaSweepRenders(t *testing.T) {
	e := Fig4b()
	// Only the first three specs (off, 64, 32) for speed; the renderer
	// needs the full grid, so rebuild a tiny sweep instead.
	tiny := quotaSweep("tiny", "t", "c", es2.NetperfUDPSend, []int{256})
	tiny = shrink(tiny, len(tiny.Specs))
	rs, err := es2.RunMany(tiny.Specs, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := tiny.Render(rs)
	if !strings.Contains(out, "off") || !strings.Contains(out, "256") {
		t.Fatalf("render malformed:\n%s", out)
	}
	_ = e
}

func TestReplicateSeedsDiffer(t *testing.T) {
	base := upVM("x", es2.Baseline(), es2.WorkloadSpec{Kind: es2.IdleBurn})
	reps := replicate(base)
	if len(reps) != replicas {
		t.Fatalf("got %d replicas", len(reps))
	}
	seen := map[uint64]bool{}
	for _, r := range reps {
		if seen[r.Seed] {
			t.Fatal("replica seeds collide")
		}
		seen[r.Seed] = true
	}
}

func TestMeanOf(t *testing.T) {
	rs := []*es2.Result{{TIG: 0.5}, {TIG: 1.0}}
	if got := meanOf(rs, func(r *es2.Result) float64 { return r.TIG }); got != 0.75 {
		t.Fatalf("meanOf = %v", got)
	}
}

func TestStackingStudyRuns(t *testing.T) {
	e := StackingStudy()
	// Just the 4-VM point, shortened.
	e.Specs = e.Specs[len(e.Specs)-1:]
	e.Specs[0].Duration = 500 * time.Millisecond
	rs, err := es2.RunMany(e.Specs, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rs[0]
	// With 4 VMs on 4 cores, the no-online-sibling probability should
	// be in the neighbourhood of (3/4)^4.
	if r.OfflinePredictRate < 0.05 || r.OfflinePredictRate > 0.7 {
		t.Fatalf("OfflinePredictRate = %.2f, want ~0.3", r.OfflinePredictRate)
	}
}
