package experiments

import (
	"fmt"
	"strings"
	"time"

	"es2"
)

// Extensions returns the studies that go beyond the paper's evaluation:
// the Section VII SR-IOV discussion made concrete, and the ablations
// DESIGN.md calls out (redirection policy, interrupt moderation, and
// the vCPU-stacking statistic behind the redirection design).
func Extensions() []Experiment {
	return []Experiment{
		SRIOV(), PolicyAblation(), ModerationAblation(), StackingStudy(),
		SidecoreStudy(), MultiqueueStudy(), Critpath(),
	}
}

// MultiqueueStudy explores the scalability direction of the paper's
// conclusion: virtio-net multiqueue gives each queue pair its own
// MSI-X vectors, NAPI context and vhost worker (queue i affine to vCPU
// i), removing the single-queue serialization of the receive softirq
// and the single back-end worker.
func MultiqueueStudy() Experiment {
	qs := []int{1, 2, 4}
	var specs []es2.ScenarioSpec
	for _, q := range qs {
		// Dedicated-core 4-vCPU VM so the mq effect is isolated from
		// scheduling multiplexing; 8 flows hash across the queues.
		recv := es2.ScenarioSpec{
			Name: fmt.Sprintf("mq/recv/%dq", q), Seed: Seed, Config: es2.PIOnly(),
			Workload: es2.WorkloadSpec{
				Kind: es2.NetperfUDPRecv, MsgBytes: 1024, Threads: 8, UDPRatePPS: 1_600_000,
			},
			VMs: 1, VCPUs: 4, VMCores: 4, VhostCores: 4, Queues: q,
			Warmup: 300 * time.Millisecond, Duration: time.Second,
		}
		send := es2.ScenarioSpec{
			Name: fmt.Sprintf("mq/send/%dq", q), Seed: Seed, Config: es2.PIH(8),
			Workload: es2.WorkloadSpec{
				Kind: es2.NetperfUDPSend, MsgBytes: 1024, Threads: 4,
			},
			VMs: 1, VCPUs: 4, VMCores: 4, VhostCores: 4, Queues: q,
			Warmup: 300 * time.Millisecond, Duration: time.Second,
		}
		specs = append(specs, recv, send)
	}
	return Experiment{
		ID:    "multiqueue",
		Title: "Study: virtio-net multiqueue scalability (future-work direction)",
		PaperClaim: "the conclusion plans to 'guarantee scalability in large cloud " +
			"infrastructures'; a single queue serializes receive softirq and back-end " +
			"work, multiqueue parallelizes both",
		Specs: specs,
		Render: func(rs []*es2.Result) string {
			var b strings.Builder
			fmt.Fprintf(&b, "%-8s %16s %16s %14s %14s\n",
				"Queues", "RecvMbps", "SendMbps", "RecvDrops", "VhostCPU")
			for i, q := range qs {
				recv, send := rs[2*i], rs[2*i+1]
				fmt.Fprintf(&b, "%-8d %16.1f %16.1f %14d %13.1f%%\n",
					q, recv.ThroughputMbps, send.ThroughputMbps, recv.Drops, 100*send.VhostCPU)
			}
			return b.String()
		},
	}
}

// SidecoreStudy contrasts ES2's hybrid scheme with ELVIS-style
// dedicated-core polling across offered loads, quantifying the paper's
// Section III-B objection: "this kind of polling saturates the
// dedicated core even when the I/O load is at a very low level".
func SidecoreStudy() Experiment {
	loads := []float64{1_000, 20_000, 100_000, 0} // pps; 0 = unpaced (max)
	type mode struct {
		name     string
		cfg      es2.Config
		sidecore bool
	}
	modes := []mode{
		{"notification", es2.PIOnly(), false},
		{"sidecore", es2.PIOnly(), true},
		{"hybrid", es2.PIH(8), false},
	}
	var specs []es2.ScenarioSpec
	for _, load := range loads {
		for _, m := range modes {
			s := upVM(fmt.Sprintf("sidecore/load%.0f/%s", load, m.name), m.cfg,
				es2.WorkloadSpec{Kind: es2.NetperfUDPSend, MsgBytes: 256, SendRatePPS: load})
			s.Sidecore = m.sidecore
			specs = append(specs, s)
		}
	}
	return Experiment{
		ID:    "sidecore",
		Title: "Study: hybrid I/O handling vs ELVIS-style dedicated-core polling",
		PaperClaim: "host-side polling eliminates I/O-request exits but saturates " +
			"the dedicated core even at very low load; the hybrid scheme adapts, " +
			"paying exits only when they are cheaper than polling",
		Specs: specs,
		Render: func(rs []*es2.Result) string {
			var b strings.Builder
			fmt.Fprintf(&b, "%-12s %-14s %12s %12s %12s\n",
				"OfferedPPS", "Mode", "IOExits/s", "VhostCPU", "Mbps")
			i := 0
			for _, load := range loads {
				label := fmt.Sprintf("%.0f", load)
				if load == 0 {
					label = "max"
				}
				for _, m := range modes {
					r := rs[i]
					i++
					fmt.Fprintf(&b, "%-12s %-14s %12.0f %11.1f%% %12.1f\n",
						label, m.name, r.IOExitRate, 100*r.VhostCPU, r.ThroughputMbps)
				}
			}
			return b.String()
		},
	}
}

// byIDAll searches both the paper experiments and the extensions.
func byIDAll(id string) (Experiment, bool) {
	if e, ok := ByID(id); ok {
		return e, true
	}
	for _, e := range Extensions() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ByIDWithExtensions looks up an experiment across the paper set and
// the extension set.
func ByIDWithExtensions(id string) (Experiment, bool) { return byIDAll(id) }

// SRIOV concretizes Section VII: under direct device assignment the
// guest's doorbell writes bypass the hypervisor, so I/O-request exits
// vanish by construction; VT-d posted interrupts then remove the
// interrupt exits, and intelligent interrupt redirection still cures
// the multiplexing latency.
func SRIOV() Experiment {
	mk := func(name string, cfg es2.Config, w es2.WorkloadSpec, smp bool) es2.ScenarioSpec {
		var s es2.ScenarioSpec
		if smp {
			s = smpVM(name, cfg, w)
		} else {
			s = upVM(name, cfg, w)
		}
		s.DirectAssign = true
		return s
	}
	tcp := es2.WorkloadSpec{Kind: es2.NetperfTCPSend, MsgBytes: 1024}
	ping := es2.WorkloadSpec{Kind: es2.Ping, PingInterval: 50 * time.Millisecond}
	specs := []es2.ScenarioSpec{
		mk("sriov/tcp/Baseline", es2.Baseline(), tcp, false),
		mk("sriov/tcp/VT-d-PI", es2.PIOnly(), tcp, false),
		mk("sriov/ping/VT-d-PI", es2.PIOnly(), ping, true),
		mk("sriov/ping/VT-d-PI+R", es2.Config{PI: true, Redirect: true}, ping, true),
	}
	specs[2].Duration = 3 * time.Second
	specs[3].Duration = 3 * time.Second
	return Experiment{
		ID:    "sriov",
		Title: "Extension (Section VII): ES2 on SR-IOV direct device assignment",
		PaperClaim: "direct assignment avoids I/O-request exits; VT-d PI removes the " +
			"remaining interrupt exits; redirection still needed for responsiveness " +
			"under core multiplexing",
		Specs: specs,
		Render: func(rs []*es2.Result) string {
			var b strings.Builder
			fmt.Fprintf(&b, "%-22s %12s %12s %12s %8s %12s\n",
				"Scenario", "IOExits/s", "IntrExits/s", "Total/s", "TIG", "MeanRTT")
			for _, r := range rs {
				intr := r.ExitRates["ExternalInterrupt"] + r.ExitRates["APICAccess"]
				fmt.Fprintf(&b, "%-22s %12.0f %12.0f %12.0f %7.1f%% %12v\n",
					r.Name, r.IOExitRate, intr, r.TotalExitRate, 100*r.TIG,
					r.MeanLatency.Round(time.Microsecond))
			}
			b.WriteString("\nEven with the VF assigned, the unredirected ping RTT shows the\n")
			b.WriteString("vCPU-scheduling latency that VT-d PI alone cannot remove.\n")
			return b.String()
		},
	}
}

// PolicyAblation compares the redirection target policies on the Fig. 7
// responsiveness scenario: the paper's least-loaded+sticky design
// against round-robin, random, and an inverted offline prediction.
func PolicyAblation() Experiment {
	policies := []es2.Policy{
		es2.PolicyLeastLoaded, es2.PolicyRoundRobin, es2.PolicyRandom, es2.PolicyOfflineTail,
	}
	var specs []es2.ScenarioSpec
	for _, p := range policies {
		cfg := es2.Full(4)
		cfg.Policy = p
		s := smpVM(fmt.Sprintf("policy/%v", p), cfg,
			es2.WorkloadSpec{Kind: es2.Ping, PingInterval: 20 * time.Millisecond})
		s.Duration = 4 * time.Second
		specs = append(specs, s)

		m := smpVM(fmt.Sprintf("policy-mc/%v", p), cfg, es2.WorkloadSpec{Kind: es2.Memcached})
		m.Duration = 1500 * time.Millisecond
		specs = append(specs, m)
	}
	return Experiment{
		ID:    "policies",
		Title: "Ablation: redirection target-selection policies",
		PaperClaim: "ES2 picks the least-loaded online vCPU and sticks to it until " +
			"descheduled (workload balance + cache affinity); with none online it " +
			"predicts the head of the offline list",
		Specs: specs,
		Render: func(rs []*es2.Result) string {
			var b strings.Builder
			fmt.Fprintf(&b, "%-16s %12s %12s %12s %12s\n",
				"Policy", "PingMean", "PingP99", "MemcachedOps", "OfflineHits")
			for i, p := range policies {
				ping, mc := rs[2*i], rs[2*i+1]
				fmt.Fprintf(&b, "%-16v %12v %12v %12.0f %11.1f%%\n",
					p, ping.MeanLatency.Round(time.Microsecond),
					ping.P99Latency.Round(time.Microsecond),
					mc.OpsPerSec, 100*ping.OfflinePredictRate)
			}
			return b.String()
		},
	}
}

// ModerationAblation demonstrates the Section II-C argument against
// interrupt moderation: coalescing reduces interrupt (and baseline
// exit) load but inflates latency, whereas ES2 keeps every interrupt
// and removes the exits instead.
func ModerationAblation() Experiment {
	ping := es2.WorkloadSpec{Kind: es2.Ping, PingInterval: 10 * time.Millisecond}
	mkPing := func(name string, cfg es2.Config, coalesce bool) es2.ScenarioSpec {
		s := upVM(name, cfg, ping)
		s.Duration = 2 * time.Second
		if coalesce {
			s.CoalesceCount = 32
			s.CoalesceTimer = 2 * time.Millisecond
		}
		return s
	}
	// For throughput, coalesce the sender's inbound ACK interrupts:
	// delaying ACK processing stalls the congestion window.
	send := es2.WorkloadSpec{Kind: es2.NetperfTCPSend, MsgBytes: 1024, Window: 32}
	mkSend := func(name string, cfg es2.Config, coalesce bool) es2.ScenarioSpec {
		s := upVM(name, cfg, send)
		if coalesce {
			s.CoalesceCount = 64
			s.CoalesceTimer = 500 * time.Microsecond
		}
		return s
	}
	specs := []es2.ScenarioSpec{
		mkPing("moderation/ping/baseline", es2.Baseline(), false),
		mkPing("moderation/ping/coalesced", es2.Baseline(), true),
		mkPing("moderation/ping/es2", es2.Full(4), false),
		mkSend("moderation/send/baseline", es2.Baseline(), false),
		mkSend("moderation/send/coalesced", es2.Baseline(), true),
		mkSend("moderation/send/es2", es2.Full(4), false),
	}
	return Experiment{
		ID:    "moderation",
		Title: "Ablation (Section II-C): interrupt moderation vs retaining all interrupts",
		PaperClaim: "fewer interrupts mean fewer exits, but moderation is far from " +
			"trivial and may impede both latency and throughput; better to retain " +
			"all interrupts and eliminate the exits",
		Specs: specs,
		Render: func(rs []*es2.Result) string {
			var b strings.Builder
			fmt.Fprintf(&b, "%-28s %12s %12s %12s %12s\n",
				"Scenario", "IntrExits/s", "IRQ/s", "MeanLat", "Mbps")
			for _, r := range rs {
				intr := r.ExitRates["ExternalInterrupt"] + r.ExitRates["APICAccess"]
				fmt.Fprintf(&b, "%-28s %12.0f %12.0f %12v %12.1f\n",
					r.Name, intr, r.DevIRQRate,
					r.MeanLatency.Round(time.Microsecond), r.ThroughputMbps)
			}
			return b.String()
		},
	}
}

// StackingStudy measures the scheduling statistic the redirection
// design rests on (Section IV-C cites [22]: vCPU-stacking probability
// above 40% for two 4-vCPU VMs on four cores): how often an arriving
// interrupt finds no online sibling vCPU, across consolidation levels.
func StackingStudy() Experiment {
	levels := []int{2, 3, 4}
	var specs []es2.ScenarioSpec
	for _, vms := range levels {
		s := smpVM(fmt.Sprintf("stacking/%dvms", vms), es2.Full(4),
			es2.WorkloadSpec{Kind: es2.Ping, PingInterval: 5 * time.Millisecond})
		s.VMs = vms
		s.Duration = 4 * time.Second
		specs = append(specs, s)
	}
	return Experiment{
		ID:    "stacking",
		Title: "Study: probability that no sibling vCPU is online, by consolidation level",
		PaperClaim: "multiplexing makes it likely that some sibling vCPU is running " +
			"or will soon run; the offline-list prediction covers the rest",
		Specs: specs,
		Render: func(rs []*es2.Result) string {
			var b strings.Builder
			fmt.Fprintf(&b, "%-12s %22s %14s %14s\n",
				"VMs/4 cores", "P(no online sibling)", "PingMean", "PingP99")
			for i, vms := range levels {
				r := rs[i]
				fmt.Fprintf(&b, "%-12d %21.1f%% %14v %14v\n",
					vms, 100*r.OfflinePredictRate,
					r.MeanLatency.Round(time.Microsecond),
					r.P99Latency.Round(time.Microsecond))
			}
			b.WriteString("\nAt 4 VMs the independent-phase expectation is (3/4)^4 = 31.6%.\n")
			return b.String()
		},
	}
}
