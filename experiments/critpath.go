package experiments

import (
	"fmt"
	"strings"
	"time"

	"es2"
)

// critpathConfigs are the mechanism points whose blame profiles the
// analysis contrasts: each configuration moves latency between stages
// rather than only shrinking the total, and the per-stage shares make
// that movement visible.
var critpathConfigs = []struct {
	name string
	cfg  es2.Config
}{
	{"Baseline", es2.Baseline()},
	{"PI", es2.PIOnly()},
	{"Full", es2.Full(4)},
}

// Critpath runs the causal critical-path analysis across the
// mechanism configurations: per-stage blame for the Fig. 7 ping probe
// under Baseline/PI/Full, plus the memcached RPC path under Full with
// its what-if grid.
func Critpath() Experiment {
	var specs []es2.ScenarioSpec
	for _, c := range critpathConfigs {
		s := upVM("critpath/ping/"+c.name, c.cfg,
			es2.WorkloadSpec{Kind: es2.Ping, PingInterval: time.Millisecond})
		s.CritPath = true
		specs = append(specs, s)
	}
	m := upVM("critpath/memcached/Full", es2.Full(4), es2.WorkloadSpec{Kind: es2.Memcached})
	m.CritPath = true
	specs = append(specs, m)

	return Experiment{
		ID:    "critpath",
		Title: "Study: causal critical-path blame across event-path configurations",
		PaperClaim: "the virtual I/O event path spends its time in notifications and " +
			"interrupt delivery; PI removes the delivery exits and the hybrid scheme " +
			"the notification exits, shifting blame onto the wire and the application",
		Specs: specs,
		Render: func(rs []*es2.Result) string {
			var b strings.Builder
			b.WriteString(renderBlameTable(rs[:len(critpathConfigs)], func(i int) string {
				return critpathConfigs[i].name
			}))
			mc := rs[len(critpathConfigs)]
			fmt.Fprintf(&b, "\nMemcached under Full (p99 %v):\n",
				time.Duration(mc.CriticalPath.P99Ns).Round(time.Microsecond))
			b.WriteString(renderWhatIf(mc.CriticalPath, 3))
			return b.String()
		},
	}
}

// renderBlameTable formats one stage-share row set per result: stages
// are the union across results, rows in fixed stage order.
func renderBlameTable(rs []*es2.Result, label func(int) string) string {
	var stages []string
	seen := map[string]bool{}
	for _, r := range rs {
		if r.CriticalPath == nil {
			continue
		}
		for _, s := range r.CriticalPath.Stages {
			if !seen[s.Stage] {
				seen[s.Stage] = true
				stages = append(stages, s.Stage)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", "Stage")
	for i := range rs {
		fmt.Fprintf(&b, " %14s", label(i))
	}
	b.WriteString("\n")
	share := func(r *es2.Result, stage string) (float64, bool) {
		if r.CriticalPath == nil {
			return 0, false
		}
		for _, s := range r.CriticalPath.Stages {
			if s.Stage == stage {
				return s.Share, true
			}
		}
		return 0, false
	}
	for _, st := range stages {
		fmt.Fprintf(&b, "%-14s", st)
		for _, r := range rs {
			if v, ok := share(r, st); ok {
				fmt.Fprintf(&b, " %13.1f%%", 100*v)
			} else {
				fmt.Fprintf(&b, " %14s", "-")
			}
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-14s", "mean e2e")
	for _, r := range rs {
		if r.CriticalPath != nil {
			fmt.Fprintf(&b, " %14v", time.Duration(r.CriticalPath.MeanNs).Round(100*time.Nanosecond))
		} else {
			fmt.Fprintf(&b, " %14s", "-")
		}
	}
	b.WriteString("\n")
	return b.String()
}

// renderWhatIf formats the top-k what-if rows (largest predicted mean
// improvement first).
func renderWhatIf(cp *es2.CriticalPath, k int) string {
	if cp == nil || len(cp.WhatIf) == 0 {
		return ""
	}
	rows := append([]es2.CriticalPathWhatIf(nil), cp.WhatIf...)
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			if rows[j].MeanDeltaNs < rows[i].MeanDeltaNs {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
	if k > len(rows) {
		k = len(rows)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %8s %14s %14s\n", "WhatIf stage", "Speedup", "dP50", "dP99")
	for _, w := range rows[:k] {
		fmt.Fprintf(&b, "%-14s %7.0f%% %14v %14v\n",
			w.Stage, 100*w.Speedup,
			time.Duration(w.P50DeltaNs).Round(10*time.Nanosecond),
			time.Duration(w.P99DeltaNs).Round(10*time.Nanosecond))
	}
	return b.String()
}
