package experiments

import (
	"strings"
	"testing"

	"es2"
)

func TestMultiqueueStudyRenders(t *testing.T) {
	e := shrink(MultiqueueStudy(), len(MultiqueueStudy().Specs))
	// Throttle the offered loads so the smoke run stays fast; the
	// renderer and plumbing are what is under test, not the contention
	// levels.
	for i := range e.Specs {
		w := &e.Specs[i].Workload
		if w.UDPRatePPS > 0 {
			w.UDPRatePPS = 300_000
		}
		if w.Kind == es2.NetperfUDPSend {
			w.SendRatePPS = 300_000
		}
	}
	rs, err := es2.RunMany(e.Specs, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := e.Render(rs)
	for _, want := range []string{"Queues", "RecvMbps", "SendMbps", "VhostCPU"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// One header plus one row per queue count.
	if lines := strings.Count(strings.TrimSpace(out), "\n") + 1; lines != 4 {
		t.Fatalf("render has %d lines, want 4:\n%s", lines, out)
	}
	for _, r := range rs {
		if r.ThroughputMbps <= 0 {
			t.Errorf("%s moved no traffic", r.Name)
		}
	}
}

func TestSidecoreStudyRenders(t *testing.T) {
	e := shrink(SidecoreStudy(), len(SidecoreStudy().Specs))
	rs, err := es2.RunMany(e.Specs, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := e.Render(rs)
	for _, want := range []string{"OfferedPPS", "notification", "sidecore", "hybrid", "max"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// The study's point: dedicated-core polling burns its core even at
	// the lowest offered load, where the notification path is nearly
	// idle (rs[0] = 1k pps notification, rs[1] = 1k pps sidecore).
	if rs[1].VhostCPU < 0.5 {
		t.Errorf("sidecore VhostCPU at 1k pps = %.2f, want near-saturated", rs[1].VhostCPU)
	}
	if rs[0].VhostCPU > 0.5*rs[1].VhostCPU {
		t.Errorf("notification VhostCPU %.2f not clearly below sidecore %.2f",
			rs[0].VhostCPU, rs[1].VhostCPU)
	}
}

func TestByIDWithExtensionsLookup(t *testing.T) {
	for _, id := range []string{"sidecore", "multiqueue", "stacking", "table1"} {
		e, ok := ByIDWithExtensions(id)
		if !ok || e.ID != id {
			t.Fatalf("ByIDWithExtensions(%q) = (%q, %v)", id, e.ID, ok)
		}
	}
	if e, ok := ByIDWithExtensions("no-such-experiment"); ok {
		t.Fatalf("unknown id resolved to %q", e.ID)
	}
}
