// Package experiments packages every table and figure of the paper's
// evaluation (Section VI) as a ready-to-run scenario set plus a
// renderer that prints the same rows/series the paper reports.
//
// Usage:
//
//	exp, _ := experiments.ByID("fig6a")
//	results, _ := es2.RunMany(exp.Specs, 0)
//	fmt.Println(exp.Render(results))
//
// The cmd/es2bench tool and the repository's top-level benchmarks are
// thin wrappers over this package.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"es2"
	"es2/internal/stats"
)

// Experiment is one paper table or figure.
type Experiment struct {
	// ID is the short handle ("table1", "fig4a", ... "fig9").
	ID string
	// Title describes the experiment.
	Title string
	// PaperClaim summarizes what the paper reports, for side-by-side
	// comparison.
	PaperClaim string
	// Specs are the scenarios to run (order matters to Render).
	Specs []es2.ScenarioSpec
	// Render formats the results (same order as Specs) into the
	// paper-style table.
	Render func(results []*es2.Result) string
}

// Seed is the default seed for all experiment scenarios; change it to
// replicate under different stochastic phases.
const Seed uint64 = 2017

// fourConfigs returns the paper's four configurations with the given
// hybrid quota.
func fourConfigs(quota int) []es2.Config {
	return []es2.Config{es2.Baseline(), es2.PIOnly(), es2.PIH(quota), es2.Full(quota)}
}

// threeConfigs is Baseline/PI/PI+H (Fig. 5 uses a UP VM where
// redirection has no effect, as the paper notes).
func threeConfigs(quota int) []es2.Config {
	return []es2.Config{es2.Baseline(), es2.PIOnly(), es2.PIH(quota)}
}

// upVM configures the single-vCPU micro-benchmark topology of
// Sections VI-B/VI-C (one VM, one vCPU on its own core, vhost on a
// separate core).
func upVM(name string, cfg es2.Config, w es2.WorkloadSpec) es2.ScenarioSpec {
	return es2.ScenarioSpec{
		Name: name, Seed: Seed, Config: cfg, Workload: w,
		VMs: 1, VCPUs: 1, VMCores: 1, VhostCores: 1,
		Warmup: 300 * time.Millisecond, Duration: time.Second,
	}
}

// smpVM configures the multiplexed topology of Sections VI-D/VI-E:
// four 4-vCPU VMs time-sharing four cores, CPU-burn fillers in every
// VM, workload on the tested VM.
func smpVM(name string, cfg es2.Config, w es2.WorkloadSpec) es2.ScenarioSpec {
	return es2.ScenarioSpec{
		Name: name, Seed: Seed, Config: cfg, Workload: w,
		VMs: 4, VCPUs: 4, VMCores: 4, VhostCores: 4,
		Warmup: 400 * time.Millisecond, Duration: 1200 * time.Millisecond,
	}
}

// replicas is the number of independently seeded runs averaged for the
// multiplexed experiments: vCPU scheduling phases vary run to run
// (exactly as on a real host), so single runs of Figs. 6-9 are noisy.
const replicas = 3

// replicate expands one scenario into its seeded replicas.
func replicate(s es2.ScenarioSpec) []es2.ScenarioSpec {
	out := make([]es2.ScenarioSpec, replicas)
	for k := 0; k < replicas; k++ {
		c := s
		c.Seed = s.Seed + uint64(k)*7919
		c.Name = fmt.Sprintf("%s/run%d", s.Name, k)
		out[k] = c
	}
	return out
}

// meanOf averages f over one replica group.
func meanOf(rs []*es2.Result, f func(*es2.Result) float64) float64 {
	return describe(rs, f).Mean
}

// describe summarizes f over one replica group with dispersion.
func describe(rs []*es2.Result, f func(*es2.Result) float64) stats.Sample {
	xs := make([]float64, len(rs))
	for i, r := range rs {
		xs[i] = f(r)
	}
	return stats.Describe(xs)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		TableI(), Fig4a(), Fig4b(), Fig5a(), Fig5b(),
		Fig6a(), Fig6b(), Fig7(), Fig8a(), Fig8b(), Fig9(),
	}
}

// ByID looks an experiment up by its short handle.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// TableI reproduces the breakdown of VM exit causes for TCP sending
// (Section III-B).
func TableI() Experiment {
	w := es2.WorkloadSpec{Kind: es2.NetperfTCPSend, MsgBytes: 1024}
	return Experiment{
		ID:    "table1",
		Title: "Table I: breakdown of VM exit causes, TCP sending (1-vCPU VM)",
		PaperClaim: "Baseline 130,840 exits/s: 15.5% delivery, 29.3% completion, " +
			"53.6% I/O request, 1.6% others; PI removes interrupt exits, I/O-request " +
			"exits grow 70,082 -> 85,018 (+20%)",
		Specs: []es2.ScenarioSpec{
			upVM("table1/baseline", es2.Baseline(), w),
			upVM("table1/pi", es2.PIOnly(), w),
		},
		Render: func(rs []*es2.Result) string {
			var b strings.Builder
			fmt.Fprintf(&b, "%-14s %16s %18s %16s %10s %10s\n",
				"Config", "IntrDelivery/s", "IntrCompletion/s", "I/O Request/s", "Others/s", "Total/s")
			for _, r := range rs {
				fmt.Fprintf(&b, "%-14s %16.0f %18.0f %16.0f %10.0f %10.0f\n",
					r.Config.Name(),
					r.ExitRates["ExternalInterrupt"], r.ExitRates["APICAccess"],
					r.ExitRates["IOInstruction"],
					r.ExitRates["Other"]+r.ExitRates["HLT"], r.TotalExitRate)
			}
			base := rs[0]
			fmt.Fprintf(&b, "%-14s %15.1f%% %17.1f%% %15.1f%% %9.1f%%\n", "Baseline share",
				pct(base.ExitRates["ExternalInterrupt"], base.TotalExitRate),
				pct(base.ExitRates["APICAccess"], base.TotalExitRate),
				pct(base.ExitRates["IOInstruction"], base.TotalExitRate),
				pct(base.ExitRates["Other"]+base.ExitRates["HLT"], base.TotalExitRate))
			return b.String()
		},
	}
}

func pct(x, total float64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * x / total
}

// quotaSweep builds the Fig. 4 experiments.
func quotaSweep(id, title, claim string, kind es2.WorkloadKind, sizes []int) Experiment {
	quotas := []int{0, 64, 32, 16, 8, 4, 2} // 0 = notification only (PI)
	var specs []es2.ScenarioSpec
	for _, size := range sizes {
		for _, q := range quotas {
			cfg := es2.PIOnly()
			name := fmt.Sprintf("%s/size%d/notification", id, size)
			if q > 0 {
				cfg = es2.PIH(q)
				name = fmt.Sprintf("%s/size%d/quota%d", id, size, q)
			}
			specs = append(specs, upVM(name, cfg, es2.WorkloadSpec{Kind: kind, MsgBytes: size}))
		}
	}
	return Experiment{
		ID: id, Title: title, PaperClaim: claim, Specs: specs,
		Render: func(rs []*es2.Result) string {
			var b strings.Builder
			fmt.Fprintf(&b, "%-10s %12s %14s %10s\n", "MsgBytes", "Quota", "IOExits/s", "TIG")
			i := 0
			for _, size := range sizes {
				for _, q := range quotas {
					r := rs[i]
					i++
					qs := "off"
					if q > 0 {
						qs = fmt.Sprintf("%d", q)
					}
					fmt.Fprintf(&b, "%-10d %12s %14.0f %9.1f%%\n", size, qs, r.IOExitRate, 100*r.TIG)
				}
			}
			return b.String()
		},
	}
}

// Fig4a reproduces the UDP quota-selection sweep.
func Fig4a() Experiment {
	return quotaSweep("fig4a",
		"Fig. 4a: I/O-instruction exits vs quota, UDP send (256B and 1024B)",
		"~100k exits/s without polling; <10k at quota 32, ~1k at 16, <0.1k at 8 and below; "+
			"256B vs 1024B similar",
		es2.NetperfUDPSend, []int{256, 1024})
}

// Fig4b reproduces the TCP quota-selection sweep.
func Fig4b() Experiment {
	return quotaSweep("fig4b",
		"Fig. 4b: I/O-instruction exits vs quota, TCP send (1024B)",
		"gradual reduction from quota 64 to 4; quota 2 and 4 similar, keeping exits under 10k/s; "+
			"notification-mode time remains (bursty ACK-clocked load)",
		es2.NetperfTCPSend, []int{1024})
}

// exitBreakdown builds the Fig. 5 experiments.
func exitBreakdown(id, title, claim string, kinds []es2.WorkloadKind, kindNames []string) Experiment {
	var specs []es2.ScenarioSpec
	for ki, kind := range kinds {
		quota := 4
		if kind == es2.NetperfUDPSend || kind == es2.NetperfUDPRecv {
			quota = 8
		}
		for _, cfg := range threeConfigs(quota) {
			specs = append(specs, upVM(
				fmt.Sprintf("%s/%s/%s", id, kindNames[ki], cfg.Name()),
				cfg, es2.WorkloadSpec{Kind: kind, MsgBytes: 1024}))
		}
	}
	return Experiment{
		ID: id, Title: title, PaperClaim: claim, Specs: specs,
		Render: func(rs []*es2.Result) string {
			var b strings.Builder
			fmt.Fprintf(&b, "%-8s %-10s %10s %10s %10s %8s %10s %8s\n",
				"Stream", "Config", "ExtIntr/s", "APIC/s", "IOInstr/s", "Other/s", "Total/s", "TIG")
			i := 0
			for ki := range kinds {
				for range threeConfigs(4) {
					r := rs[i]
					i++
					fmt.Fprintf(&b, "%-8s %-10s %10.0f %10.0f %10.0f %8.0f %10.0f %7.1f%%\n",
						kindNames[ki], r.Config.Name(),
						r.ExitRates["ExternalInterrupt"], r.ExitRates["APICAccess"],
						r.ExitRates["IOInstruction"], r.ExitRates["Other"]+r.ExitRates["HLT"],
						r.TotalExitRate, 100*r.TIG)
				}
			}
			return b.String()
		},
	}
}

// Fig5a reproduces the exit breakdown for sending streams.
func Fig5a() Experiment {
	return exitBreakdown("fig5a",
		"Fig. 5a: VM exit breakdown, sending 1024B TCP/UDP streams",
		"TCP: baseline ~120k exits/s at 70% TIG -> PI+H <10k at 97.5%; "+
			"UDP: TIG 68.5% -> 99.7%, exits <1k",
		[]es2.WorkloadKind{es2.NetperfTCPSend, es2.NetperfUDPSend},
		[]string{"TCP", "UDP"})
}

// Fig5b reproduces the exit breakdown for receiving streams.
func Fig5b() Experiment {
	return exitBreakdown("fig5b",
		"Fig. 5b: VM exit breakdown, receiving 1024B TCP/UDP streams",
		"TCP: baseline TIG 91.1% -> PI 94.8%; residual I/O exits from ACK sending "+
			"not reducible by hybrid; UDP: no I/O exits, TIG >99% with PI",
		[]es2.WorkloadKind{es2.NetperfTCPRecv, es2.NetperfUDPRecv},
		[]string{"TCP", "UDP"})
}

// throughputSweep builds the Fig. 6 experiments.
func throughputSweep(id, title, claim string, kind es2.WorkloadKind) Experiment {
	sizes := []int{64, 256, 1024, 4096, 16384}
	var specs []es2.ScenarioSpec
	for _, size := range sizes {
		for _, cfg := range fourConfigs(4) {
			specs = append(specs, replicate(smpVM(
				fmt.Sprintf("%s/size%d/%s", id, size, cfg.Name()),
				cfg, es2.WorkloadSpec{Kind: kind, MsgBytes: size, Threads: 4}))...)
		}
	}
	return Experiment{
		ID: id, Title: title, PaperClaim: claim, Specs: specs,
		Render: func(rs []*es2.Result) string {
			var b strings.Builder
			fmt.Fprintf(&b, "%-10s %12s %12s %12s %12s %14s   (mean of %d runs)\n",
				"MsgBytes", "Baseline", "PI", "PI+H", "PI+H+R", "Full/Baseline", replicas)
			i := 0
			for _, size := range sizes {
				vals := make([]float64, 4)
				for j := range vals {
					vals[j] = meanOf(rs[i:i+replicas], func(r *es2.Result) float64 { return r.ThroughputMbps })
					i += replicas
				}
				ratio := 0.0
				if vals[0] > 0 {
					ratio = vals[3] / vals[0]
				}
				fmt.Fprintf(&b, "%-10d %9.1f Mb %9.1f Mb %9.1f Mb %9.1f Mb %13.2fx\n",
					size, vals[0], vals[1], vals[2], vals[3], ratio)
			}
			return b.String()
		},
	}
}

// Fig6a reproduces the netperf TCP send throughput sweep.
func Fig6a() Experiment {
	return throughputSweep("fig6a",
		"Fig. 6a: Netperf TCP send throughput vs message size (4 VMs x 4 vCPUs on 4 cores)",
		"PI +13-19% over baseline; hybrid up to +40%; redirection +15% more; full ES2 ~2x baseline",
		es2.NetperfTCPSend)
}

// Fig6b reproduces the netperf TCP receive throughput sweep.
func Fig6b() Experiment {
	return throughputSweep("fig6b",
		"Fig. 6b: Netperf TCP receive throughput vs message size (4 VMs x 4 vCPUs on 4 cores)",
		"PI ~+17%; hybrid no obvious effect; redirection up to +50% over PI+H",
		es2.NetperfTCPRecv)
}

// Fig7 reproduces the ping RTT trace.
func Fig7() Experiment {
	w := es2.WorkloadSpec{Kind: es2.Ping, PingInterval: 100 * time.Millisecond}
	// The paper presents Baseline, PI and full ES2 (PI+H is omitted:
	// polling has no effect at ping rates).
	cfgs := []es2.Config{es2.Baseline(), es2.PIOnly(), es2.Full(4)}
	var specs []es2.ScenarioSpec
	for _, cfg := range cfgs {
		s := smpVM("fig7/"+cfg.Name(), cfg, w)
		s.Duration = 5 * time.Second // ~50 probes, like the paper's trace
		specs = append(specs, s)
	}
	return Experiment{
		ID:    "fig7",
		Title: "Fig. 7: Ping RTT to the tested VM (4 VMs x 4 vCPUs on 4 cores)",
		PaperClaim: "baseline RTT varies widely, up to 18ms; PI slightly lower; " +
			"full ES2 keeps RTT under 0.5ms",
		Specs: specs,
		Render: func(rs []*es2.Result) string {
			var b strings.Builder
			fmt.Fprintf(&b, "%-10s %12s %12s %12s %8s\n", "Config", "MeanRTT", "P99RTT", "MaxRTT", "Probes")
			for _, r := range rs {
				fmt.Fprintf(&b, "%-10s %12v %12v %12v %8d\n",
					r.Config.Name(), r.MeanLatency.Round(time.Microsecond),
					r.P99Latency.Round(time.Microsecond), r.MaxLatency.Round(time.Microsecond),
					len(r.RTTSeries))
			}
			b.WriteString("\nRTT series (ms at each probe):\n")
			for _, r := range rs {
				fmt.Fprintf(&b, "%-10s", r.Config.Name())
				for _, p := range r.RTTSeries {
					fmt.Fprintf(&b, " %6.2f", p.Millis)
				}
				b.WriteString("\n")
			}
			return b.String()
		},
	}
}

// macroThroughput builds the Fig. 8 experiments.
func macroThroughput(id, title, claim string, kind es2.WorkloadKind) Experiment {
	cfgs := fourConfigs(4)
	var specs []es2.ScenarioSpec
	for _, cfg := range cfgs {
		s := smpVM(fmt.Sprintf("%s/%s", id, cfg.Name()), cfg, es2.WorkloadSpec{Kind: kind})
		s.Duration = 2 * time.Second
		specs = append(specs, replicate(s)...)
	}
	return Experiment{
		ID: id, Title: title, PaperClaim: claim, Specs: specs,
		Render: func(rs []*es2.Result) string {
			var b strings.Builder
			fmt.Fprintf(&b, "%-10s %12s %14s %12s %12s   (mean of %d runs)\n",
				"Config", "Ops/s", "Mbps", "MeanLat", "vs Baseline", replicas)
			var base float64
			for i, cfg := range cfgs {
				grp := rs[i*replicas : (i+1)*replicas]
				ops := describe(grp, func(r *es2.Result) float64 { return r.OpsPerSec })
				mbps := meanOf(grp, func(r *es2.Result) float64 { return r.ThroughputMbps })
				lat := time.Duration(meanOf(grp, func(r *es2.Result) float64 { return float64(r.MeanLatency) }))
				if i == 0 {
					base = ops.Mean
				}
				ratio := 0.0
				if base > 0 {
					ratio = ops.Mean / base
				}
				fmt.Fprintf(&b, "%-10s %12.0f %14.1f %12v %11.2fx   ±%.0f\n",
					cfg.Name(), ops.Mean, mbps, lat.Round(time.Microsecond), ratio, ops.CI95())
			}
			return b.String()
		},
	}
}

// Fig8a reproduces the Memcached throughput comparison.
func Fig8a() Experiment {
	return macroThroughput("fig8a",
		"Fig. 8a: Memcached throughput under memaslap (256 concurrent requests, 16 connections, 9:1 get/set)",
		"PI +18% over baseline; hybrid +21% more; full ES2 ~1.8x baseline",
		es2.Memcached)
}

// Fig8b reproduces the Apache throughput comparison.
func Fig8b() Experiment {
	return macroThroughput("fig8b",
		"Fig. 8b: Apache throughput under ApacheBench (8KB static pages, 16 concurrent)",
		"PI +19%; hybrid +18% more; full ES2 ~2x baseline",
		es2.Apache)
}

// Fig9 reproduces the Httperf connection-time sweep.
func Fig9() Experiment {
	rates := []float64{1000, 1400, 1800, 2200, 2600, 3000}
	var specs []es2.ScenarioSpec
	for _, rate := range rates {
		for _, cfg := range fourConfigs(4) {
			s := smpVM(fmt.Sprintf("fig9/rate%.0f/%s", rate, cfg.Name()),
				cfg, es2.WorkloadSpec{Kind: es2.Httperf, ConnRate: rate})
			s.Duration = 2500 * time.Millisecond
			specs = append(specs, replicate(s)...)
		}
	}
	return Experiment{
		ID:    "fig9",
		Title: "Fig. 9: average TCP connection time vs Httperf request rate",
		PaperClaim: "all configurations low under 1600 req/s; baseline grows rapidly " +
			"beyond 1800 (suspending-event overflow); full ES2 stays low until ~2600",
		Specs: specs,
		Render: func(rs []*es2.Result) string {
			var b strings.Builder
			fmt.Fprintf(&b, "%-10s %14s %14s %14s %14s   (mean of %d runs)\n",
				"Rate", "Baseline", "PI", "PI+H", "PI+H+R", replicas)
			i := 0
			for _, rate := range rates {
				fmt.Fprintf(&b, "%-10.0f", rate)
				for j := 0; j < 4; j++ {
					grp := rs[i : i+replicas]
					i += replicas
					lat := time.Duration(meanOf(grp, func(r *es2.Result) float64 { return float64(r.MeanLatency) }))
					fmt.Fprintf(&b, " %14v", lat.Round(10*time.Microsecond))
				}
				b.WriteString("\n")
			}
			return b.String()
		},
	}
}
