package experiments

import (
	"fmt"
	"strings"
	"time"

	"es2"
)

// daycycleConfigs are the event-path configurations daycycle compares
// under byte-identical offered load.
var daycycleConfigs = []struct {
	Name string
	Cfg  es2.Config
}{
	{"Baseline", es2.Baseline()},
	{"PI+H+R", es2.Full(4)},
}

// DefaultLoad is the rack1-derived datacenter-day open-loop load
// (es2cluster's -load rack1-day preset). Two client populations model
// a front-end fleet and an aggregation tier:
//
//   - "web": 64 streams of small request/response RPCs on a Weibull
//     burst train (shape 0.7 clumps arrivals), per-stream rates
//     Zipf-skewed (s=1.1) so a few hot clients dominate, as measured
//     client populations do.
//   - "fanout": 16 scatter/gather streams, each arrival fanning out to
//     4 server VMs and completing when all respond, on a burstier
//     Gamma train (shape 0.5).
//
// The profile replays a 24-hour day as a six-phase ramp — night 0.25x
// up to peak 1.5x in 0.25x steps every four modeled hours — under
// automatic time compression onto the measurement window. The ramp
// doubles as an offered-rate sweep: at multiplier 1.0 the rack sees
// ~344k RPC legs/s (275k web + 69k fan-out), sized so the Baseline
// event path collapses partway up the ramp (its delivery ratio falls
// below 0.95 from the evening phase on) while the full ES2 path
// sustains the evening Baseline cannot — shifting the collapse knee,
// not just the mean.
func DefaultLoad() es2.LoadSpec {
	return es2.LoadSpec{
		Classes: []es2.LoadClass{
			{
				Name: "web", Streams: 64, RatePerSec: 4300,
				ZipfS: 1.1, Process: "weibull", Shape: 0.7,
				ReqBytes: 128, RespBytes: 1024,
				FanOut: "single", MaxOutstanding: 64,
			},
			{
				Name: "fanout", Streams: 16, RatePerSec: 1075,
				Process: "gamma", Shape: 0.5,
				ReqBytes: 256, RespBytes: 512,
				FanOut: "scatter", FanWidth: 4, MaxOutstanding: 32,
			},
		},
		Profile: es2.LoadProfile{
			Day: 24 * time.Hour,
			Phases: []es2.LoadPhase{
				{Name: "night", Start: 0, Multiplier: 0.25},
				{Name: "dawn", Start: 4 * time.Hour, Multiplier: 0.5},
				{Name: "morning", Start: 8 * time.Hour, Multiplier: 0.75},
				{Name: "midday", Start: 12 * time.Hour, Multiplier: 1.0},
				{Name: "evening", Start: 16 * time.Hour, Multiplier: 1.25},
				{Name: "peak", Start: 20 * time.Hour, Multiplier: 1.5},
			},
		},
	}
}

// Daycycle is the open-loop datacenter-day scenario: the rack1
// topology driven by DefaultLoad instead of closed-loop flows. Because
// arrivals are armed on the clock and never wait for completions, both
// configurations face the exact same offered sequence; the comparison
// is where each one's delivery ratio collapses as the day ramps up
// (the knee), not how fast a closed loop can spin.
func Daycycle() ClusterExperiment {
	var specs []es2.ClusterSpec
	for _, c := range daycycleConfigs {
		specs = append(specs, es2.ClusterSpec{
			Name:   "daycycle/" + c.Name,
			Seed:   Seed,
			Config: c.Cfg,
			Hosts:  8,
			// One vCPU per VM pinned 1:1 onto VM cores, as in the chaos
			// scenario: under CPU oversubscription the multi-millisecond
			// CFS rotation dominates open-loop latency at any offered
			// rate, which would measure the scheduler, not the event
			// path. Pinned, the sweep isolates where each event path's
			// own capacity collapses.
			ClientHosts: 4,
			VMsPerHost:  4,
			VCPUs:       1,
			VMCores:     4,
			VhostCores:  2,
			Workload:    es2.ClusterWorkloadSpec{Load: DefaultLoad()},
			Warmup:      40 * time.Millisecond,
			Duration:    240 * time.Millisecond,
		})
	}
	return ClusterExperiment{
		ID:    "daycycle",
		Title: "Open-loop datacenter day: rack1 under a compressed 24h ramp",
		PaperClaim: "an optimal event path should raise the offered load a " +
			"virtualized rack sustains before queueing collapse, not just its " +
			"closed-loop ceiling; under identical open-loop arrivals, full ES2 " +
			"must push the collapse knee to a higher offered rate than baseline",
		Specs: specs,
		Render: func(rs []*es2.ClusterResult) string {
			var b strings.Builder
			fmt.Fprintf(&b, "%-10s %12s %12s %12s %10s %10s %12s\n",
				"Config", "Offered/s", "Done/s", "Delivery", "Shed", "Backlog", "Knee/s")
			for i, c := range daycycleConfigs {
				l := rs[i].Load
				if l == nil {
					continue
				}
				fmt.Fprintf(&b, "%-10s %12.0f %12.0f %11.1f%% %10d %10d %12.0f\n",
					c.Name, l.OfferedPerSec, l.CompletedPerSec,
					100*l.DeliveryRatio, l.Shed, l.BacklogEnd, l.KneeOfferedPerSec)
			}
			if l0 := rs[0].Load; l0 != nil {
				fmt.Fprintf(&b, "\n%-10s %6s %12s", "Phase", "Mult", "Offered/s")
				for _, c := range daycycleConfigs {
					fmt.Fprintf(&b, " %10s %10s", c.Name[:min(len(c.Name), 10)], "p99")
				}
				fmt.Fprintln(&b)
				for pi, ph := range l0.Phases {
					fmt.Fprintf(&b, "%-10s %5.2fx %12.0f", ph.Name, ph.Multiplier, ph.OfferedPerSec)
					for ci := range daycycleConfigs {
						p := rs[ci].Load.Phases[pi]
						fmt.Fprintf(&b, " %9.1f%% %10v", 100*p.DeliveryRatio,
							p.P99Latency.Round(time.Microsecond))
					}
					fmt.Fprintln(&b)
				}
			}
			return b.String()
		},
	}
}
