package es2

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"es2/internal/causal"
	"es2/internal/core"
	"es2/internal/enginestats"
	"es2/internal/fabric"
	"es2/internal/faults"
	"es2/internal/guest"
	"es2/internal/loadgen"
	"es2/internal/metrics"
	"es2/internal/netsim"
	"es2/internal/profile"
	"es2/internal/sched"
	"es2/internal/sim"
	"es2/internal/slo"
	"es2/internal/trace"
	"es2/internal/vhost"
	"es2/internal/vmm"
	"es2/internal/workloads"
)

// clusterHost is one fully wired machine of the rack: its own
// scheduler, KVM, ES2 installation, VMs, guest kernels and vhost
// back-end, attached to the fabric through one NIC port.
type clusterHost struct {
	index int
	cfg   Config

	sch      *sched.Scheduler
	k        *vmm.KVM
	es       *core.ES2
	vms      []*vmm.VM
	kerns    []*guest.Kernel
	devs     []*vhost.Device
	devsByVM [][]*vhost.Device
	ios      []*vhost.IOThread

	port  *fabric.Port
	demux *hostDemux

	// Client hosts run one RPC client (closed loop) or one open-loop
	// client (Workload.Load runs) per VM and aggregate their latency
	// into lat; server hosts run one Server per VM.
	clients []*workloads.RPCClient
	loads   []*workloads.OpenLoopClient
	servers []*workloads.Server
	lat     *metrics.LogHistogram

	prof *profile.Profiler
	path *trace.PathTracer

	// inj is this host's fault injector (one private RNG fork per
	// host), so warmup reset clears every host's tallies and per-host
	// fault activity stays attributable.
	inj *faults.Injector

	// Warmup-end baselines.
	vhostBusy0                             sim.Time
	redirBase, keptBase, onBase, offBase   uint64
	retransBase, wdBase, repollBase, piFbB uint64
}

// hostDemux is a host NIC's receive side: ingress frames are fanned to
// the owning VM's per-queue vhost device by the cluster flow table
// (receive-side steering with an exact-match table).
type hostDemux struct {
	byFlow map[int]*vhost.Device

	// Drops counts frames for unknown flows (none in a correctly wired
	// cluster).
	Drops uint64
}

// Receive implements netsim.Endpoint.
func (d *hostDemux) Receive(p *netsim.Packet) {
	if dev, ok := d.byFlow[p.Flow]; ok {
		dev.Receive(p)
		return
	}
	d.Drops++
}

// clusterBed is one fully wired rack.
type clusterBed struct {
	spec  ClusterSpec
	eng   *sim.Engine
	sw    *fabric.Switch
	hosts []*clusterHost

	// flowPorts maps flow id -> [client port index, server port index]
	// and drives the switch's routing decision.
	flowPorts map[int][2]int

	clusterLat *metrics.LogHistogram
	crit       *causal.Tracker

	// Open-loop load state (nil/zero unless Workload.Load is set): the
	// resolved profile runtime, the per-phase latency spectra shared by
	// every client, and the built stream/flow counts.
	loadRT         *loadgen.Runtime
	loadPhaseHists []*metrics.LogHistogram
	loadStreams    int
	loadFlows      int

	chaos   *chaosController
	chk     *faults.Checker
	tel     *clusterTelemetry
	perf    *enginestats.Collector
	sloEval *slo.Evaluator
}

// faultsOn reports whether micro-fault injection is active (per-host
// injectors exist).
func (cb *clusterBed) faultsOn() bool { return cb.spec.Faults.Enabled() }

// faultCounters sums the per-host injector tallies.
func (cb *clusterBed) faultCounters() faults.Counters {
	var c faults.Counters
	for _, h := range cb.hosts {
		if h.inj == nil {
			continue
		}
		hc := h.inj.Counters
		c.WireDrops += hc.WireDrops
		c.WireDups += hc.WireDups
		c.LostKicks += hc.LostKicks
		c.LostSignals += hc.LostSignals
		c.VhostStalls += hc.VhostStalls
		c.PIOutages += hc.PIOutages
		c.PreemptStorms += hc.PreemptStorms
	}
	return c
}

// hostConfig returns host i's event-path configuration.
func (s ClusterSpec) hostConfig(i int) Config {
	if len(s.HostConfigs) > 0 {
		return s.HostConfigs[i]
	}
	return s.Config
}

// RunCluster executes one cluster scenario to completion. All hosts
// share a single event engine, so cross-host timing (fabric
// contention, skewed schedulers) is exact; the same spec and seed
// yield byte-identical results.
func RunCluster(spec ClusterSpec) (*ClusterResult, error) {
	spec = spec.withClusterDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	cb, err := buildCluster(spec)
	if err != nil {
		return nil, err
	}
	if spec.Check || os.Getenv("ES2_CHECK") != "" {
		cb.chk = faults.NewChecker(cb.eng, checkerTick)
		cb.registerInvariants(cb.chk)
		cb.chk.Start()
	}

	warmup := sim.DurationOf(spec.Warmup)
	window := sim.DurationOf(spec.Duration)
	cb.perf.Start()
	cb.eng.Run(warmup)
	cb.resetAtWarmupEnd()
	if spec.SLO.Enabled() {
		// Bind at warmup end so baselines post-date the stat resets;
		// registered before telemetry so es2_slo_* series can probe it.
		cb.setupClusterSLO()
		cb.sloEval.Start(cb.eng, warmup, warmup+window)
	}
	if cb.tel != nil {
		cb.startTelemetry(warmup + window)
	}
	cb.eng.Run(warmup + window)
	cb.perf.Stop()
	if cb.tel != nil {
		cb.tel.rec.Finalize()
	}
	return cb.collect(window), nil
}

// RunManyCluster executes cluster scenarios concurrently (parallelism
// <= 0 selects GOMAXPROCS), preserving input order. Each scenario runs
// on its own engine, so results are identical to sequential runs.
func RunManyCluster(specs []ClusterSpec, parallelism int) ([]*ClusterResult, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	results := make([]*ClusterResult, len(specs))
	errs := make([]error, len(specs))
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i, s := range specs {
		i, s := i, s
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], errs[i] = RunCluster(s)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// buildCluster wires the rack in deterministic order: the switch, then
// each host (scheduler, KVM, ES2, VMs, kernels, vhost devices, NIC
// port), then the flow table and workloads, then fault injection.
func buildCluster(spec ClusterSpec) (*clusterBed, error) {
	eng := sim.NewEngine(spec.Seed)
	cb := &clusterBed{
		spec:       spec,
		eng:        eng,
		flowPorts:  make(map[int][2]int),
		clusterLat: metrics.NewLogHistogram(),
	}
	cb.sw = fabric.New(eng, fabric.Params{
		PortGbps:   spec.Fabric.PortGbps,
		UplinkGbps: spec.Fabric.UplinkGbps,
		Delay:      sim.DurationOf(spec.Fabric.Delay),
		QueueCap:   spec.Fabric.QueueCap,
	})
	cb.sw.SetRouter(func(src *fabric.Port, p *netsim.Packet) (int, bool) {
		pp, ok := cb.flowPorts[p.Flow]
		if !ok {
			return 0, false
		}
		if src.Index() == pp[0] {
			return pp[1], true
		}
		return pp[0], true
	})

	gcosts := guest.DefaultCosts()
	vparams := vhost.DefaultParams()
	totalCores := spec.VMCores + spec.VhostCores

	if spec.CritPath {
		cb.crit = causal.NewTracker(spec.CritPathExemplars)
		cb.crit.LabelHosts = true
	}
	if spec.EngineStats {
		// Attach before any host is wired so build-time registrations
		// sample like everything else; the wall clock starts at Run.
		cb.perf = enginestats.New(spec.EngineStatsSampleN)
		eng.SetStats(cb.perf)
	}

	for hi := 0; hi < spec.Hosts; hi++ {
		cfg := spec.hostConfig(hi)
		h := &clusterHost{index: hi, cfg: cfg}
		h.sch = sched.New(eng, totalCores, sched.DefaultParams())
		h.k = vmm.NewKVM(eng, h.sch, vmm.DefaultCosts())
		h.k.Causal = cb.crit.Probe(uint8(hi))
		h.es = core.Install(h.k, cfg)
		if spec.PathTrace {
			h.path = trace.NewPathTracer(nil)
			h.sch.SetPathTracer(h.path)
			h.k.Path = h.path
		}
		if spec.CPUProfile {
			h.prof = profile.New(totalCores)
			h.k.Prof = h.prof
		}
		h.demux = &hostDemux{byFlow: make(map[int]*vhost.Device)}
		h.port = cb.sw.AddPort(fmt.Sprintf("h%d", hi), h.demux)
		h.lat = metrics.NewLogHistogram()

		direct := spec.DirectAssign
		if len(spec.DirectHosts) > 0 {
			direct = spec.DirectHosts[hi]
		}
		// Under direct assignment the back-end stands in for the VF's
		// DMA engine; the hybrid kick-polling machinery is meaningless
		// there (there are no kick exits to eliminate).
		hybrid := cfg.Hybrid && !direct
		for vi := 0; vi < spec.VMsPerHost; vi++ {
			cores := make([]int, spec.VCPUs)
			for j := range cores {
				cores[j] = (vi + j) % spec.VMCores
			}
			vm := h.k.NewVM(fmt.Sprintf("h%d/vm%d", hi, vi), cores)
			kern := guest.NewKernelQueues(vm, gcosts, 1024, spec.Queues)
			kern.Dev.DoorbellNoExit = direct
			kern.StartBurnAll()
			h.es.AttachVM(vm)

			var vmDevs []*vhost.Device
			for qi, pair := range kern.Dev.Pairs {
				name := fmt.Sprintf("vhost-h%d.%d.%d", hi, vi, qi)
				io := vhost.NewIOThread(name, h.sch, spec.VMCores+((vi+qi)%spec.VhostCores), vparams)
				io.SetPath(h.path)
				if h.prof != nil {
					io.EnableProfiling(h.prof)
				}
				dev, err := vhost.NewDevice(name, io, pair.TX, pair.RX, h.port, hybrid, cfg.Quota)
				if err != nil {
					return nil, err
				}
				dev.Path = h.path
				dev.Causal = cb.crit.Probe(uint8(hi))
				vmDevs = append(vmDevs, dev)
				h.devs = append(h.devs, dev)
				h.ios = append(h.ios, io)
			}
			vm.Start()
			h.vms = append(h.vms, vm)
			h.kerns = append(h.kerns, kern)
			h.devsByVM = append(h.devsByVM, vmDevs)
		}
		cb.hosts = append(cb.hosts, h)
	}

	// Workloads: the first ClientHosts hosts run RPC clients, the rest
	// run servers. Flow f is issued by client VM f%nc and served by
	// server VM (f/nc)%ns, so each client fans out over all servers —
	// round-robin load balancing across hosts.
	srvCfg := workloads.DefaultServerConfig()
	srvCfg.ServiceCost = sim.DurationOf(spec.Workload.ServiceCost)
	type vmRef struct {
		h  *clusterHost
		vi int
	}
	var clientVMs, serverVMs []vmRef
	for _, h := range cb.hosts {
		for vi := range h.vms {
			if h.index < spec.ClientHosts {
				clientVMs = append(clientVMs, vmRef{h, vi})
			} else {
				serverVMs = append(serverVMs, vmRef{h, vi})
			}
		}
	}
	loadOn := spec.Workload.Load.Enabled()
	if !loadOn {
		for _, r := range clientVMs {
			c := workloads.NewRPCClient(r.h.kerns[r.vi], r.h.lat, cb.clusterLat)
			c.Causal = cb.crit.Probe(uint8(r.h.index))
			if w := spec.Workload; w.RequestTimeout > 0 {
				c.Timeout = sim.DurationOf(w.RequestTimeout)
				c.Backoff = sim.DurationOf(w.RetryBackoff)
				c.BackoffMax = sim.DurationOf(w.RetryBackoffMax)
				c.FailoverAfter = w.FailoverAfter
			}
			r.h.clients = append(r.h.clients, c)
		}
	}
	for _, r := range serverVMs {
		r.h.servers = append(r.h.servers, workloads.StartServer(r.h.kerns[r.vi], srvCfg))
	}

	var flowSrv map[int]int
	if spec.Chaos.Enabled() {
		flowSrv = make(map[int]int, spec.Workload.Flows)
	}
	var ids workloads.FlowIDs
	spread := sim.DurationOf(spec.Workload.StartSpread)
	nc, ns := len(clientVMs), len(serverVMs)
	if lspec := spec.Workload.Load; lspec.Enabled() {
		// Open-loop load: one open-loop client per client VM, streams
		// dealt round-robin over client VMs in deterministic order.
		// Arrival RNGs fork off a private root keyed by the seed — not
		// the engine stream — so the offered sequence is identical
		// across host configurations of the same spec.
		cb.loadRT = loadgen.NewRuntime(lspec.Profile,
			sim.DurationOf(spec.Warmup), sim.DurationOf(spec.Duration))
		cb.loadPhaseHists = make([]*metrics.LogHistogram, cb.loadRT.NumPhases())
		for i := range cb.loadPhaseHists {
			cb.loadPhaseHists[i] = metrics.NewLogHistogram()
		}
		for _, r := range clientVMs {
			c := workloads.NewOpenLoopClient(r.h.kerns[r.vi], cb.loadRT, cb.loadPhaseHists, r.h.lat, cb.clusterLat)
			c.Causal = cb.crit.Probe(uint8(r.h.index))
			r.h.loads = append(r.h.loads, c)
		}
		loadRng := sim.NewRand(spec.Seed ^ loadSeedSalt)
		streams := expandLoadStreams(lspec)
		cb.loadStreams = len(streams)
		for gs, st := range streams {
			rng := loadRng.Fork()
			cr := clientVMs[gs%nc]
			// Fan-out targets: single streams spread over all servers,
			// scatter streams hit FanWidth consecutive servers per
			// request, incast streams of one class converge on one hot
			// server VM.
			var targets []vmRef
			switch st.cls.FanOut {
			case "scatter":
				for j := 0; j < st.cls.FanWidth; j++ {
					targets = append(targets, serverVMs[(gs+j)%ns])
				}
			case "incast":
				targets = append(targets, serverVMs[st.class%ns])
			default:
				targets = append(targets, serverVMs[gs%ns])
			}
			var flowIDs []int
			for _, sr := range targets {
				flowID := ids.Next()
				qi := flowID % spec.Queues
				cr.h.demux.byFlow[flowID] = cr.h.devsByVM[cr.vi][qi]
				sr.h.demux.byFlow[flowID] = sr.h.devsByVM[sr.vi][qi]
				cb.flowPorts[flowID] = [2]int{cr.h.port.Index(), sr.h.port.Index()}
				flowIDs = append(flowIDs, flowID)
				cb.loadFlows++
			}
			start := spread * sim.Time(gs) / sim.Time(len(streams))
			cr.h.loads[cr.vi].AddStream(workloads.StreamConfig{
				Flows: flowIDs, RatePerSec: st.rate,
				Sampler:  newLoadSampler(st.cls, rng),
				ReqBytes: st.cls.ReqBytes, RespBytes: st.cls.RespBytes,
				MaxOutstanding: st.cls.MaxOutstanding, Start: start,
			})
		}
	} else {
		for f := 0; f < spec.Workload.Flows; f++ {
			flowID := ids.Next()
			cr := clientVMs[f%nc]
			sr := serverVMs[(f/nc)%ns]
			qi := flowID % spec.Queues
			cr.h.demux.byFlow[flowID] = cr.h.devsByVM[cr.vi][qi]
			sr.h.demux.byFlow[flowID] = sr.h.devsByVM[sr.vi][qi]
			cb.flowPorts[flowID] = [2]int{cr.h.port.Index(), sr.h.port.Index()}
			if flowSrv != nil {
				flowSrv[flowID] = (f / nc) % ns
			}
			start := spread * sim.Time(f) / sim.Time(spec.Workload.Flows)
			// The client for this VM was appended in clientVMs order; each
			// client VM has exactly one RPCClient.
			cr.h.clients[cr.vi].AddFlow(flowID, spec.Workload.ReqBytes, spec.Workload.RespBytes, start)
		}
	}

	if spec.Faults.Enabled() {
		// One injector — one private RNG fork — per host, forked in
		// deterministic host order: each host's fault stream is
		// independent and warmup reset clears every host's tallies.
		for _, h := range cb.hosts {
			h := h
			inj := faults.NewInjector(eng, eng.Rand(), spec.Faults)
			h.inj = inj
			inj.AttachWire(func(fault func() netsim.FaultAction) { h.port.SendFault = fault })
			for _, d := range h.devs {
				inj.AttachQueue(d.TXQ)
				inj.AttachQueue(d.RXQ)
			}
			for _, io := range h.ios {
				inj.AttachIOThread(io)
			}
			for _, vm := range h.vms {
				for _, v := range vm.VCPUs {
					inj.AttachVCPU(v)
				}
			}
			cores := spec.Faults.StormCores
			if len(cores) == 0 {
				for c := 0; c < spec.VMCores; c++ {
					cores = append(cores, c)
				}
			}
			inj.SetupStorms(h.sch, cores)
			if h.prof != nil {
				inj.EnableProfilingFor(h.sch, h.prof)
			}
			inj.Start()
		}
	}
	if (spec.Faults.Enabled() && !spec.Faults.NoRecovery) || spec.Chaos.Enabled() {
		for _, h := range cb.hosts {
			for _, kern := range h.kerns {
				kern.RetransmitRTO = retransmitRTO
				kern.Dev.StartTxWatchdog(txWatchdogTick)
			}
			for _, d := range h.devs {
				d.StartRePoll(vhostRePollTick)
			}
		}
	}
	if spec.Chaos.Enabled() {
		// The chaos controller forks its RNG after every injector, at a
		// fixed point in build order, and owns the failover flow table.
		cc := &chaosController{
			cb:         cb,
			hostDown:   make([]bool, spec.Hosts),
			flowServer: flowSrv,
		}
		for _, r := range serverVMs {
			cc.servers = append(cc.servers, serverRef{h: r.h, vi: r.vi})
		}
		cb.chaos = cc
		cc.install(eng.Rand().Fork(), sim.DurationOf(spec.Warmup), sim.DurationOf(spec.Duration))
		for _, h := range cb.hosts {
			for _, c := range h.clients {
				c.Failover = cc.failover
				c.NotifyComplete = cc.noteCompletion
			}
		}
		if cb.crit != nil {
			cb.crit.Degraded = func() bool { return cc.active > 0 }
		}
	}
	if spec.Telemetry {
		cb.setupClusterTelemetry()
	}
	return cb, nil
}

// registerInvariants wires every checkable structure of every host
// into the invariant checker.
func (cb *clusterBed) registerInvariants(chk *faults.Checker) {
	for _, h := range cb.hosts {
		for _, d := range h.devs {
			d := d
			chk.Add("virtqueue/"+d.Name+"/tx", d.TXQ.CheckInvariants)
			chk.Add("virtqueue/"+d.Name+"/rx", d.RXQ.CheckInvariants)
		}
		for _, vm := range h.vms {
			vm := vm
			for _, v := range vm.VCPUs {
				v := v
				chk.Add(fmt.Sprintf("apic/%s/vcpu%d", vm.Name, v.ID), v.VAPIC.CheckInvariants)
			}
			if h.es.Watcher != nil {
				w := h.es.Watcher
				chk.Add("schedwatcher/"+vm.Name, func() error {
					return w.CheckConsistency(vm)
				})
			}
		}
	}
}

// resetAtWarmupEnd zeroes every windowed statistic at the start of the
// measurement window.
func (cb *clusterBed) resetAtWarmupEnd() {
	for _, h := range cb.hosts {
		for _, vm := range h.vms {
			vm.ResetStats()
		}
		for _, d := range h.devs {
			d.ResetStats()
		}
		h.vhostBusy0 = 0
		for _, io := range h.ios {
			h.vhostBusy0 += io.Thread.SumExec()
		}
		if red := h.es.Redirector; red != nil {
			h.redirBase, h.keptBase = red.Redirected, red.KeptAffinity
			h.onBase, h.offBase = red.OnlineHits, red.OfflinePredicts
		}
		for _, c := range h.clients {
			c.ResetStats()
		}
		for _, c := range h.loads {
			c.ResetStats()
		}
		h.lat.Reset()
		if h.path != nil {
			h.path.Reset()
		}
		if h.prof != nil {
			h.prof.Reset()
		}
		if h.inj != nil || cb.chaos != nil {
			h.retransBase, h.wdBase = h.sumRetransmits(), h.sumWatchdogFires()
			h.repollBase, h.piFbB = h.sumRePolls(), h.k.PIFallbacks
		}
		// Every host's injector is cleared, so warmup-era faults never
		// leak into the measured window's counters.
		if h.inj != nil {
			h.inj.ResetCounters()
		}
	}
	cb.sw.ResetStats()
	cb.clusterLat.Reset()
	for _, h := range cb.loadPhaseHists {
		h.Reset()
	}
	cb.crit.Reset()
	if cb.chaos != nil {
		cb.chaos.reset()
	}
}

func (h *clusterHost) sumRetransmits() uint64 {
	var n uint64
	for _, kern := range h.kerns {
		n += kern.TCPRetransmits
	}
	return n
}

func (h *clusterHost) sumWatchdogFires() uint64 {
	var n uint64
	for _, kern := range h.kerns {
		n += kern.Dev.WatchdogFires
	}
	return n
}

func (h *clusterHost) sumRePolls() uint64 {
	var n uint64
	for _, d := range h.devs {
		n += d.RePolls
	}
	return n
}

// hostResult assembles host h's per-host Result over the window.
func (cb *clusterBed) hostResult(h *clusterHost, window sim.Time) *Result {
	spec := cb.spec
	r := &Result{
		Name:            fmt.Sprintf("%s/h%d", spec.Name, h.index),
		Config:          h.cfg,
		MeasuredSeconds: window.Seconds(),
		ExitRates:       make(map[string]float64),
	}
	var guestT, totalT sim.Time
	for _, vm := range h.vms {
		for i := 0; i < vmm.NumExitReasons; i++ {
			r.ExitRates[vmm.ExitReason(i).String()] += vm.Exits.Rate(i, window)
		}
		r.TotalExitRate += vm.Exits.TotalRate(window)
		r.IOExitRate += vm.Exits.Rate(int(vmm.ExitIOInstruction), window)
		r.DevIRQRate += vm.DevIRQDelivered.Rate(window)
		for _, v := range vm.VCPUs {
			guestT += v.GuestTime
			totalT += v.GuestTime + v.HostTime
		}
	}
	if totalT > 0 {
		r.TIG = float64(guestT) / float64(totalT)
	}
	var busy sim.Time
	for _, io := range h.ios {
		busy += io.Thread.SumExec()
	}
	if spec.VhostCores > 0 && window > 0 {
		r.VhostCPU = float64(busy-h.vhostBusy0) / (float64(window) * float64(spec.VhostCores))
	}
	if red := h.es.Redirector; red != nil {
		redir := red.Redirected - h.redirBase
		kept := red.KeptAffinity - h.keptBase
		if redir+kept > 0 {
			r.RedirectRate = float64(redir) / float64(redir+kept)
		}
		online := red.OnlineHits - h.onBase
		offline := red.OfflinePredicts - h.offBase
		if online+offline > 0 {
			r.OfflinePredictRate = float64(offline) / float64(online+offline)
		}
	}
	var done, bytes uint64
	for _, c := range h.clients {
		done += c.Completed
		bytes += c.BytesReceived
	}
	for _, c := range h.loads {
		done += c.Completed
		bytes += c.BytesReceived
	}
	if len(h.clients)+len(h.loads) > 0 {
		r.OpsPerSec = rate(done, window)
		r.ThroughputMbps = mbps(bytes, window)
		fillLatency(r, h.lat)
	}
	for _, d := range h.devs {
		r.TxPkts += d.TxPkts
		r.RxPkts += d.RxPkts
		r.Drops += d.BacklogDrops
	}
	for _, kern := range h.kerns {
		r.Drops += kern.Dev.LocalDrops
	}
	r.Drops += h.demux.Drops
	if h.path != nil {
		for _, st := range h.path.Stats() {
			r.PathBreakdown = append(r.PathBreakdown, PathStage{
				Stage: st.Stage.String(), Mechanism: st.Mechanism.String(),
				Count: st.Count, Mean: time.Duration(st.Mean),
				P50: time.Duration(st.P50), P99: time.Duration(st.P99),
				Max: time.Duration(st.Max),
			})
		}
	}
	if h.prof != nil {
		h.prof.Finalize(window)
		r.CPUProfile = h.prof
		r.CPUReport = buildCPUReport(h.prof, ScenarioSpec{VhostCores: spec.VhostCores}, window)
	}
	return r
}

// collect assembles the ClusterResult at the horizon.
func (cb *clusterBed) collect(window sim.Time) *ClusterResult {
	spec := cb.spec
	res := &ClusterResult{
		Name:            spec.Name,
		Config:          spec.Config,
		MeasuredSeconds: window.Seconds(),
		Hosts:           spec.Hosts,
		VMs:             spec.Hosts * spec.VMsPerHost,
		Flows:           spec.Workload.Flows,
	}
	if cb.loadRT != nil {
		res.Flows = cb.loadFlows
	}
	agg := &Result{
		Name:            spec.Name,
		Config:          spec.Config,
		MeasuredSeconds: window.Seconds(),
		ExitRates:       make(map[string]float64),
	}
	var guestT, totalT, busy sim.Time
	var redir, kept, online, offline uint64
	for _, h := range cb.hosts {
		hr := cb.hostResult(h, window)
		res.PerHost = append(res.PerHost, hr)
		for k, v := range hr.ExitRates {
			agg.ExitRates[k] += v
		}
		agg.TotalExitRate += hr.TotalExitRate
		agg.IOExitRate += hr.IOExitRate
		agg.DevIRQRate += hr.DevIRQRate
		agg.OpsPerSec += hr.OpsPerSec
		agg.ThroughputMbps += hr.ThroughputMbps
		agg.TxPkts += hr.TxPkts
		agg.RxPkts += hr.RxPkts
		agg.Drops += hr.Drops
		for _, vm := range h.vms {
			for _, v := range vm.VCPUs {
				guestT += v.GuestTime
				totalT += v.GuestTime + v.HostTime
			}
		}
		for _, io := range h.ios {
			busy += io.Thread.SumExec()
		}
		busy -= h.vhostBusy0
		if red := h.es.Redirector; red != nil {
			redir += red.Redirected - h.redirBase
			kept += red.KeptAffinity - h.keptBase
			online += red.OnlineHits - h.onBase
			offline += red.OfflinePredicts - h.offBase
		}
	}
	if totalT > 0 {
		agg.TIG = float64(guestT) / float64(totalT)
	}
	if spec.VhostCores > 0 && window > 0 {
		agg.VhostCPU = float64(busy) / (float64(window) * float64(spec.VhostCores*spec.Hosts))
	}
	if redir+kept > 0 {
		agg.RedirectRate = float64(redir) / float64(redir+kept)
	}
	if online+offline > 0 {
		agg.OfflinePredictRate = float64(offline) / float64(online+offline)
	}
	fillLatency(agg, cb.clusterLat)
	res.Aggregate = agg

	// Per-flow fairness over every client flow that completed work.
	ff := &FlowFairness{}
	var sumMeans sim.Time
	for _, h := range cb.hosts {
		for _, c := range h.clients {
			for _, f := range c.Flows() {
				if f.Completed == 0 {
					continue
				}
				mean := f.LatSum / sim.Time(f.Completed)
				if ff.Flows == 0 || time.Duration(mean) < ff.MinMean {
					ff.MinMean = time.Duration(mean)
				}
				if time.Duration(mean) > ff.MaxMean {
					ff.MaxMean = time.Duration(mean)
				}
				if time.Duration(f.LatMax) > ff.MaxMax {
					ff.MaxMax = time.Duration(f.LatMax)
				}
				sumMeans += mean
				ff.Flows++
			}
		}
	}
	if ff.Flows > 0 {
		ff.MeanOfMeans = time.Duration(sumMeans / sim.Time(ff.Flows))
		res.FlowFairness = ff
	}

	fr := &FabricReport{
		Ports:       cb.sw.NumPorts(),
		Forwarded:   cb.sw.Forwarded,
		RouteDrops:  cb.sw.RouteDrops,
		UplinkBytes: cb.sw.UplinkBytes,
	}
	if window > 0 && cb.spec.Fabric.UplinkGbps > 0 {
		fr.UplinkUtilization = float64(cb.sw.UplinkBusy) / float64(window)
	}
	for i := 0; i < cb.sw.NumPorts(); i++ {
		p := cb.sw.Port(i)
		fr.EgressDrops += p.EgressDrops
		fr.PerPort = append(fr.PerPort, FabricPortReport{
			Port: i, Name: p.Name(),
			TxPkts: p.TxPkts, TxBytes: p.TxBytes,
			RxPkts: p.RxPkts, RxBytes: p.RxBytes,
			EgressDrops: p.EgressDrops,
		})
	}
	res.Fabric = fr

	if cb.crit != nil {
		res.CriticalPath = cb.crit.Report()
	}

	if cb.faultsOn() || cb.chaos != nil {
		c := cb.faultCounters()
		var retrans, wd, repoll, piFb uint64
		for _, h := range cb.hosts {
			retrans += h.sumRetransmits() - h.retransBase
			wd += h.sumWatchdogFires() - h.wdBase
			repoll += h.sumRePolls() - h.repollBase
			piFb += h.k.PIFallbacks - h.piFbB
		}
		res.Faults = &FaultReport{
			Injected:      c.Injected(),
			WireDrops:     c.WireDrops,
			WireDups:      c.WireDups,
			LostKicks:     c.LostKicks,
			LostSignals:   c.LostSignals,
			VhostStalls:   c.VhostStalls,
			PIOutages:     c.PIOutages,
			PreemptStorms: c.PreemptStorms,
			Retransmits:   retrans,
			WatchdogFires: wd,
			VhostRePolls:  repoll,
			PIFallbacks:   piFb,
		}
	}
	if cb.chaos != nil {
		res.Recovery = cb.chaos.report(window)
	}
	if cb.sloEval != nil {
		res.SLO = cb.sloEval.Report()
	}
	if cb.loadRT != nil {
		t := loadTotals{
			phaseOffered:   make([]uint64, cb.loadRT.NumPhases()),
			phaseShed:      make([]uint64, cb.loadRT.NumPhases()),
			phaseCompleted: make([]uint64, cb.loadRT.NumPhases()),
		}
		for _, h := range cb.hosts {
			for _, c := range h.loads {
				t.arrivals += c.Arrivals()
				t.offered += c.Offered
				t.admitted += c.Admitted
				t.shed += c.Shed
				t.completed += c.Completed
				t.backlog += c.Backlog()
				for i := range c.PhaseOffered {
					t.phaseOffered[i] += c.PhaseOffered[i]
					t.phaseShed[i] += c.PhaseShed[i]
					t.phaseCompleted[i] += c.PhaseCompleted[i]
				}
			}
		}
		horizon := sim.DurationOf(spec.Warmup) + window
		res.Load = buildLoadReport(cb.loadRT, t, cb.loadPhaseHists, cb.loadStreams, window, horizon)
	}
	if cb.chk != nil {
		res.InvariantChecks = cb.chk.Ticks
	}
	if cb.tel != nil {
		cb.fillClusterTelemetry(res)
	}
	if cb.perf != nil {
		res.EngineReport = cb.perf.Report(cb.eng.EventsFired(), cb.eng.HeapStats(),
			cb.eng.Now().Seconds(), engineTopK)
	}
	return res
}
