package es2

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"es2/internal/faults"
	"es2/internal/sim"
)

// chaosClusterSpec is the rack1-derived robustness scenario at test
// scale: eight hosts with one vCPU per VM pinned 1:1 onto VM cores,
// resilient closed-loop clients, and a macro-fault timeline of one
// whole-host crash plus two link flaps inside the measurement window.
func chaosClusterSpec() ClusterSpec {
	return ClusterSpec{
		Name:        "chaos-test",
		Seed:        7,
		Config:      Full(4),
		Hosts:       8,
		ClientHosts: 4,
		VMsPerHost:  4,
		VCPUs:       1,
		VMCores:     4,
		VhostCores:  2,
		Workload: ClusterWorkloadSpec{
			Flows:           256,
			RequestTimeout:  time.Millisecond,
			RetryBackoff:    100 * time.Microsecond,
			RetryBackoffMax: 600 * time.Microsecond,
			FailoverAfter:   2,
		},
		Chaos: ChaosSpec{
			HostCrashes: 1,
			CrashDown:   3 * time.Millisecond,
			LinkFlaps:   2,
			FlapDown:    750 * time.Microsecond,
			MinGap:      time.Millisecond,
			MaxGap:      2500 * time.Microsecond,
		},
		Warmup:   20 * time.Millisecond,
		Duration: 37500 * time.Microsecond,
	}
}

// TestChaosRecoveryAccounting is the headline robustness contract: a
// host crash plus two link flaps during the window, and the run must
// end with every fault recovered (finite MTTR), every flow either
// completing or failed over, and the resilience counters populated.
func TestChaosRecoveryAccounting(t *testing.T) {
	res, err := RunCluster(chaosClusterSpec())
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Recovery
	if rec == nil {
		t.Fatal("chaos run produced no recovery report")
	}
	if got := len(rec.Faults); got != 3 {
		t.Fatalf("injected %d faults, want 3 (1 crash + 2 flaps)", got)
	}
	if rec.HostCrashes != 1 || rec.LinkFlaps != 2 {
		t.Errorf("fault tallies = %d crashes, %d flaps; want 1, 2",
			rec.HostCrashes, rec.LinkFlaps)
	}
	for _, f := range rec.Faults {
		if f.MTTRMs < 0 {
			t.Errorf("%s on %s (start %.2fms) never recovered: MTTR < 0",
				f.Kind, f.Target, f.StartMs)
		}
		if f.MTTRMs >= 0 && f.MTTRMs < f.OutageMs {
			t.Errorf("%s on %s: MTTR %.2fms shorter than its own outage %.2fms",
				f.Kind, f.Target, f.MTTRMs, f.OutageMs)
		}
	}
	if rec.FlowsUnaccounted != 0 {
		t.Errorf("%d flows neither completed nor failed over", rec.FlowsUnaccounted)
	}
	if rec.Timeouts == 0 || rec.Retries == 0 {
		t.Errorf("resilience counters empty (timeouts=%d retries=%d); a host "+
			"crash must force client deadlines to fire", rec.Timeouts, rec.Retries)
	}
	if rec.LinkDrops == 0 {
		t.Error("link flaps injected but no frames counted as link drops")
	}
	if rec.TotalWindows == 0 || rec.Availability <= 0 || rec.Availability > 1 {
		t.Errorf("availability %.3f over %d windows out of range",
			rec.Availability, rec.TotalWindows)
	}
	if rec.DegradedSeconds <= 0 {
		t.Error("three outage episodes but zero degraded time recorded")
	}
	if res.Aggregate.OpsPerSec <= 0 {
		t.Error("no RPCs completed in the measurement window")
	}
}

// TestChaosDeterministicReplay extends the cluster replay guarantee to
// chaotic runs: with the macro-fault timeline, telemetry, the causal
// critical-path analyzer and the invariant checker all enabled, two
// runs of the same spec must produce byte-identical JSON results and
// OpenMetrics exports.
func TestChaosDeterministicReplay(t *testing.T) {
	spec := chaosClusterSpec()
	spec.Telemetry = true
	spec.TelemetryWindow = 5 * time.Millisecond
	spec.CritPath = true
	spec.Check = true

	run := func() ([]byte, []byte) {
		res, err := RunCluster(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Recovery == nil || len(res.Recovery.Faults) == 0 {
			t.Fatal("chaos run produced no recovery report")
		}
		if res.InvariantChecks == 0 {
			t.Fatal("invariant checker never ran")
		}
		if res.CriticalPath == nil {
			t.Fatal("critical-path analyzer produced no report")
		}
		rj, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		var om bytes.Buffer
		if err := res.TelemetryRecorder.WriteOpenMetrics(&om); err != nil {
			t.Fatal(err)
		}
		return rj, om.Bytes()
	}
	r1, o1 := run()
	r2, o2 := run()
	if !bytes.Equal(r1, r2) {
		t.Errorf("results differ between identical chaos runs:\n%s\n---\n%s", r1, r2)
	}
	if !bytes.Equal(o1, o2) {
		t.Error("OpenMetrics exports differ between identical chaos runs")
	}
	for _, metric := range []string{
		"es2_chaos_injected", "es2_chaos_hosts_down", "es2_chaos_rpc_timeouts",
		"es2_chaos_rpc_retries", "es2_chaos_link_drops",
	} {
		if !bytes.Contains(o1, []byte(metric)) {
			t.Errorf("OpenMetrics export missing chaos series %s", metric)
		}
	}
}

// TestWarmupResetClearsFaultCounters is the warmup-hygiene regression:
// micro-faults injected during warmup must not leak into the measured
// window. After the warmup run every host's injector has tallied
// something; resetAtWarmupEnd must zero all of them plus the chaos
// controller's window-scoped state.
func TestWarmupResetClearsFaultCounters(t *testing.T) {
	spec := chaosClusterSpec()
	spec.Faults = FaultSpec{
		PacketLossProb:  0.02,
		LostKickProb:    0.02,
		VhostStallEvery: 5 * time.Millisecond,
		VhostStall:      200 * time.Microsecond,
	}
	spec = spec.withClusterDefaults()
	if err := spec.validate(); err != nil {
		t.Fatal(err)
	}
	cb, err := buildCluster(spec)
	if err != nil {
		t.Fatal(err)
	}
	cb.eng.Run(sim.DurationOf(spec.Warmup))

	var warm faults.Counters
	for _, h := range cb.hosts {
		if h.inj == nil {
			t.Fatal("fault spec enabled but host has no injector")
		}
		c := h.inj.Counters
		warm.WireDrops += c.WireDrops
		warm.LostKicks += c.LostKicks
		warm.VhostStalls += c.VhostStalls
	}
	if warm.WireDrops == 0 && warm.LostKicks == 0 && warm.VhostStalls == 0 {
		t.Fatal("warmup injected no micro-faults; the regression test is vacuous")
	}

	cb.resetAtWarmupEnd()
	for i, h := range cb.hosts {
		if h.inj.Counters != (faults.Counters{}) {
			t.Errorf("host %d injector counters not cleared at warmup end: %+v",
				i, h.inj.Counters)
		}
	}
	if cb.chaos == nil {
		t.Fatal("chaos spec enabled but no controller installed")
	}
	if cb.chaos.degradedNs != 0 || cb.chaos.degradedDone != 0 || cb.chaos.healthyDone != 0 {
		t.Error("chaos controller window state not cleared at warmup end")
	}
}
