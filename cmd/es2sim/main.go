// Command es2sim runs a single simulated scenario described by flags
// and prints its result as text or JSON. It is the exploratory
// companion to es2bench: sweep any knob without writing code.
//
// Examples:
//
//	es2sim -workload netperf-tcp-send -config full -quota 4 -msg 1024
//	es2sim -workload memcached -config baseline -vms 4 -vcpus 4 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"es2"
	"es2/internal/cliflags"
)

func main() {
	var (
		specFile = flag.String("spec", "", "load the scenario from a JSON ScenarioSpec file (scenario flags ignored; output flags still apply)")
		sloFile  = flag.String("slo", "", "load SLO objectives from a JSON SLOSpec file and evaluate them streamingly during the run")
		loadFile = flag.String("load", "", "load an open-loop LoadSpec from a JSON file, replacing the memcached workload's closed-loop generator")
		tScale   = flag.Float64("time-scale", 0, "with an open-loop load: override the profile's time compression factor (0 keeps the spec's)")
		critpath = flag.Bool("critpath", false, "enable the causal critical-path analyzer (blame profile, tail exemplars, what-if)")
		critEx   = flag.Int("critpath-exemplars", 0, "slowest-request exemplars to retain (0 = default 8)")
		name     = flag.String("name", "es2sim", "scenario name")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		cfgName  = flag.String("config", "full", "baseline|pi|pih|full")
		quota    = flag.Int("quota", 0, "hybrid quota (0 = per-protocol default)")
		workload = flag.String("workload", "netperf-tcp-send", "workload kind (see es2.WorkloadKind)")
		msg      = flag.Int("msg", 1024, "netperf message size in bytes")
		threads  = flag.Int("threads", 1, "concurrent netperf threads")
		window   = flag.Int("window", 0, "TCP window in segments (0 = default)")
		connRate = flag.Float64("connrate", 1000, "httperf connections per second")
		conc     = flag.Int("concurrency", 0, "closed-loop concurrency (0 = default)")
		vms      = flag.Int("vms", 1, "number of VMs")
		vcpus    = flag.Int("vcpus", 1, "vCPUs per VM")
		vmCores  = flag.Int("vmcores", 0, "cores shared by VMs (0 = vcpus)")
		queues   = flag.Int("queues", 1, "virtio-net queue pairs per VM")
		direct   = flag.Bool("direct", false, "SR-IOV direct assignment (exit-less doorbells)")
		sidecore = flag.Bool("sidecore", false, "ELVIS-style dedicated-core polling back-end")
		traceCap = flag.Int("trace", 0, "enable event tracing, retaining N events")
		pathOn   = flag.Bool("path", false, "enable event-path span tracing (per-stage latency breakdown)")
		timeline = flag.String("timeline", "", "write a Perfetto/Chrome-trace JSON timeline to FILE (implies -path)")
		cpuprof  = flag.String("cpuprofile", "", "write a pprof CPU profile of the simulated cores to FILE (go tool pprof / speedscope)")
		folded   = flag.String("folded", "", "write folded flamegraph stacks of the simulated cores to FILE")
		coalCnt  = flag.Int("coalesce-count", 0, "RX interrupt moderation: signal after N packets (0 = off)")
		coalTim  = flag.Duration("coalesce-timer", 0, "RX interrupt moderation: flush timer (0 = off)")
		sendRate = flag.Float64("sendrate", 0, "pace the UDP sender at N pkts/s (0 = CPU speed)")
		pingIvl  = flag.Duration("ping-interval", 0, "ping probe interval (0 = default)")
		svcCost  = flag.Duration("service-cost", 0, "server per-request CPU cost (0 = default)")
		dur      = flag.Duration("duration", time.Second, "measurement window (simulated)")
		warmup   = flag.Duration("warmup", 300*time.Millisecond, "warm-up (simulated)")
		asJSON   = flag.Bool("json", false, "print the result as JSON")
		telDir   = flag.String("telemetry-dir", "", "write windowed telemetry to DIR/metrics.prom and DIR/windows.csv")
		metrics  = flag.String("metrics", "", "write the OpenMetrics exposition to FILE")
		telWin   = flag.Duration("telemetry-window", 0, "telemetry sampling window, simulated (0 = 10ms default)")

		check    = flag.Bool("check", false, "enable the runtime invariant checker (also: ES2_CHECK=1)")
		engStats = flag.Bool("engine-stats", false, "measure the simulator itself (wall time, events/sec, heap, per-subsystem cost) and print the report")
	)
	faultFlags := cliflags.RegisterFaultFlags(flag.CommandLine)
	flag.Parse()

	if *specFile != "" {
		spec, err := es2.LoadScenarioSpec(*specFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "es2sim: %v\n", err)
			os.Exit(1)
		}
		run(spec, outputFlags{
			timeline: *timeline, cpuprof: *cpuprof, folded: *folded,
			telDir: *telDir, metrics: *metrics, telWin: *telWin,
			critpath: *critpath, critEx: *critEx, asJSON: *asJSON,
			engineStats: *engStats, sloFile: *sloFile,
			loadFile: *loadFile, timeScale: *tScale,
		})
		return
	}

	var cfg es2.Config
	switch *cfgName {
	case "baseline":
		cfg = es2.Baseline()
	case "pi":
		cfg = es2.PIOnly()
	case "pih":
		cfg = es2.PIH(*quota)
	case "full":
		cfg = es2.Full(*quota)
	default:
		fmt.Fprintf(os.Stderr, "es2sim: unknown config %q\n", *cfgName)
		os.Exit(2)
	}

	kinds := map[string]es2.WorkloadKind{
		"idle":             es2.IdleBurn,
		"netperf-tcp-send": es2.NetperfTCPSend,
		"netperf-tcp-recv": es2.NetperfTCPRecv,
		"netperf-udp-send": es2.NetperfUDPSend,
		"netperf-udp-recv": es2.NetperfUDPRecv,
		"ping":             es2.Ping,
		"memcached":        es2.Memcached,
		"apache":           es2.Apache,
		"httperf":          es2.Httperf,
	}
	kind, ok := kinds[*workload]
	if !ok {
		fmt.Fprintf(os.Stderr, "es2sim: unknown workload %q\n", *workload)
		os.Exit(2)
	}

	faultSpec, err := faultFlags.Spec()
	if err != nil {
		fmt.Fprintf(os.Stderr, "es2sim: %v\n", err)
		os.Exit(2)
	}

	spec := es2.ScenarioSpec{
		Name: *name, Seed: *seed, Config: cfg,
		Workload: es2.WorkloadSpec{
			Kind: kind, MsgBytes: *msg, Threads: *threads, Window: *window,
			ConnRate: *connRate, Concurrency: *conc,
			SendRatePPS: *sendRate, PingInterval: *pingIvl, ServiceCost: *svcCost,
		},
		VMs: *vms, VCPUs: *vcpus, VMCores: *vmCores, Queues: *queues,
		CoalesceCount: *coalCnt, CoalesceTimer: *coalTim,
		DirectAssign: *direct, Sidecore: *sidecore, TraceCapacity: *traceCap,
		PathTrace: *pathOn,
		Warmup:    *warmup, Duration: *dur,
		Check:  *check,
		Faults: faultSpec,
	}
	run(spec, outputFlags{
		timeline: *timeline, cpuprof: *cpuprof, folded: *folded,
		telDir: *telDir, metrics: *metrics, telWin: *telWin,
		critpath: *critpath, critEx: *critEx, asJSON: *asJSON,
		engineStats: *engStats, sloFile: *sloFile,
		loadFile: *loadFile, timeScale: *tScale,
	})
}

// outputFlags are the flags that select outputs rather than describe
// the scenario; they apply on top of a -spec file too.
type outputFlags struct {
	timeline, cpuprof, folded string
	telDir, metrics           string
	telWin                    time.Duration
	critpath                  bool
	critEx                    int
	asJSON                    bool
	engineStats               bool
	sloFile                   string
	loadFile                  string
	timeScale                 float64
}

func run(spec es2.ScenarioSpec, out outputFlags) {
	if out.sloFile != "" {
		sloSpec, err := es2.LoadSLOSpec(out.sloFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "es2sim: %v\n", err)
			os.Exit(1)
		}
		spec.SLO = sloSpec
	}
	if out.loadFile != "" {
		loadSpec, err := es2.LoadLoadSpec(out.loadFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "es2sim: %v\n", err)
			os.Exit(1)
		}
		spec.Load = loadSpec
	}
	if out.timeScale > 0 && spec.Load.Enabled() {
		spec.Load.Profile.TimeScale = out.timeScale
	}
	spec.Timeline = spec.Timeline || out.timeline != ""
	spec.CPUProfile = spec.CPUProfile || out.cpuprof != "" || out.folded != ""
	spec.Telemetry = spec.Telemetry || out.telDir != "" || out.metrics != "" || out.telWin > 0
	if out.telWin > 0 {
		spec.TelemetryWindow = out.telWin
	}
	spec.CritPath = spec.CritPath || out.critpath
	if out.critEx > 0 {
		spec.CritPathExemplars = out.critEx
	}
	spec.EngineStats = spec.EngineStats || out.engineStats

	res, err := es2.Run(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "es2sim: %v\n", err)
		os.Exit(1)
	}

	timeline, cpuprof, folded := &out.timeline, &out.cpuprof, &out.folded
	telDir, metrics, asJSON := &out.telDir, &out.metrics, &out.asJSON
	kind := spec.Workload.Kind

	if *timeline != "" {
		f, ferr := os.Create(*timeline)
		if ferr == nil {
			ferr = res.Timeline.WriteJSON(f)
			if cerr := f.Close(); ferr == nil {
				ferr = cerr
			}
		}
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "es2sim: writing timeline: %v\n", ferr)
			os.Exit(1)
		}
	}

	writeFile := func(path, what string, write func(f *os.File) error) {
		f, ferr := os.Create(path)
		if ferr == nil {
			ferr = write(f)
			if cerr := f.Close(); ferr == nil {
				ferr = cerr
			}
		}
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "es2sim: writing %s: %v\n", what, ferr)
			os.Exit(1)
		}
	}
	if *cpuprof != "" {
		writeFile(*cpuprof, "cpu profile", func(f *os.File) error { return res.CPUProfile.WritePprof(f) })
	}
	if *folded != "" {
		writeFile(*folded, "folded stacks", func(f *os.File) error { return res.CPUProfile.WriteFolded(f) })
	}
	if *telDir != "" {
		if err := os.MkdirAll(*telDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "es2sim: creating telemetry dir: %v\n", err)
			os.Exit(1)
		}
		rec := res.TelemetryRecorder
		writeFile(filepath.Join(*telDir, "metrics.prom"), "telemetry exposition",
			func(f *os.File) error { return rec.WriteOpenMetrics(f) })
		writeFile(filepath.Join(*telDir, "windows.csv"), "telemetry windows",
			func(f *os.File) error { return rec.WriteCSV(f) })
	}
	if *metrics != "" {
		writeFile(*metrics, "metrics exposition",
			func(f *os.File) error { return res.TelemetryRecorder.WriteOpenMetrics(f) })
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "es2sim: %v\n", err)
			os.Exit(1)
		}
		// The engine report is machine-dependent and excluded from the
		// deterministic JSON surface; print it on stderr instead.
		if res.EngineReport != nil {
			fmt.Fprint(os.Stderr, res.EngineReport.Render())
		}
		return
	}

	fmt.Printf("scenario   %s  (config %s, workload %s)\n", res.Name, res.Config, kind)
	fmt.Printf("exits/s    total=%.0f  io=%.0f  extintr=%.0f  apic=%.0f  other=%.0f\n",
		res.TotalExitRate, res.IOExitRate,
		res.ExitRates["ExternalInterrupt"], res.ExitRates["APICAccess"], res.ExitRates["Other"])
	fmt.Printf("TIG        %.1f%%\n", 100*res.TIG)
	fmt.Printf("interrupts %.0f/s delivered, %.0f%% redirected\n", res.DevIRQRate, 100*res.RedirectRate)
	if res.ThroughputMbps > 0 {
		fmt.Printf("throughput %.1f Mbps (%.0f pkt/s)\n", res.ThroughputMbps, res.PktRate)
	}
	if res.OpsPerSec > 0 {
		fmt.Printf("ops        %.0f/s\n", res.OpsPerSec)
	}
	if res.MeanLatency > 0 {
		fmt.Printf("latency    mean=%v p50=%v p90=%v p99=%v p99.9=%v max=%v\n",
			res.MeanLatency, res.P50Latency, res.P90Latency,
			res.P99Latency, res.P999Latency, res.MaxLatency)
	}
	if res.Drops > 0 {
		fmt.Printf("drops      %d\n", res.Drops)
	}
	if l := res.Load; l != nil {
		fmt.Printf("load       offered=%.0f/s done=%.0f/s delivery=%.1f%% shed=%d backlog=%d knee=%.0f/s (%d streams, %.0fx compression)\n",
			l.OfferedPerSec, l.CompletedPerSec, 100*l.DeliveryRatio,
			l.Shed, l.BacklogEnd, l.KneeOfferedPerSec, l.Streams, l.TimeScale)
		for _, p := range l.Phases {
			fmt.Printf("  %-10s %5.2fx offered=%.0f/s delivery=%.1f%% p99=%v\n",
				p.Name, p.Multiplier, p.OfferedPerSec, 100*p.DeliveryRatio,
				p.P99Latency.Round(time.Microsecond))
		}
	}
	if res.VhostCPU > 0 {
		fmt.Printf("vhost CPU  %.1f%%\n", 100*res.VhostCPU)
	}
	if f := res.Faults; f != nil {
		fmt.Printf("faults     %d injected: drops=%d dups=%d kicks=%d signals=%d stalls=%d pi=%d storms=%d\n",
			f.Injected, f.WireDrops, f.WireDups, f.LostKicks, f.LostSignals,
			f.VhostStalls, f.PIOutages, f.PreemptStorms)
		fmt.Printf("recovery   retransmits=%d watchdog=%d repolls=%d pi-fallbacks=%d\n",
			f.Retransmits, f.WatchdogFires, f.VhostRePolls, f.PIFallbacks)
	}
	if res.InvariantChecks > 0 {
		fmt.Printf("invariants %d checks passed\n", res.InvariantChecks)
	}
	if len(res.PathBreakdown) > 0 {
		fmt.Printf("event path stage breakdown:\n")
		fmt.Printf("  %-12s %-10s %10s %12s %12s %12s\n", "stage", "mech", "count", "mean", "p50", "p99")
		for _, st := range res.PathBreakdown {
			fmt.Printf("  %-12s %-10s %10d %12v %12v %12v\n",
				st.Stage, st.Mechanism, st.Count, st.Mean, st.P50, st.P99)
		}
	}
	if len(res.LatencyProfiles) > 0 {
		fmt.Printf("latency spectrum:\n")
		fmt.Printf("  %-14s %-10s %10s %12s %12s %12s %12s %12s\n",
			"class", "label", "count", "p50", "p90", "p99", "p99.9", "max")
		for _, p := range res.LatencyProfiles {
			fmt.Printf("  %-14s %-10s %10d %12v %12v %12v %12v %12v\n",
				p.Class, p.Label, p.Count, p.P50, p.P90, p.P99, p.P999, p.Max)
		}
	}
	if res.CriticalPath != nil {
		printCritPath(res.CriticalPath)
	}
	if res.SLO != nil {
		fmt.Print(res.SLO.Render())
	}
	if ti := res.Telemetry; ti != nil {
		fmt.Printf("telemetry  %d series over %d windows of %gms\n", ti.Series, ti.Windows, ti.WindowMs)
	}
	if res.EngineReport != nil {
		fmt.Print(res.EngineReport.Render())
	}
	if res.TraceSummary != "" {
		fmt.Print(res.TraceSummary)
	}
	if res.CPUReport != nil {
		fmt.Print(res.CPUReport.Render())
	}
	if *timeline != "" {
		fmt.Printf("timeline   %s (%d events; open in ui.perfetto.dev)\n", *timeline, res.Timeline.Len())
	}
	if *cpuprof != "" {
		fmt.Printf("cpuprofile %s (go tool pprof -top %s)\n", *cpuprof, *cpuprof)
	}
}

// printCritPath renders the causal critical-path report: blame
// profile, tail exemplars, and the what-if grid.
func printCritPath(cp *es2.CriticalPath) {
	fmt.Printf("critical path: %d requests, mean=%v p50=%v p99=%v max=%v (stage-sum err %.2g)\n",
		cp.Requests,
		time.Duration(cp.MeanNs), time.Duration(cp.P50Ns),
		time.Duration(cp.P99Ns), time.Duration(cp.MaxNs), cp.MaxSumRelErr)
	fmt.Printf("  %-14s %-4s %10s %12s %12s %7s\n", "stage", "host", "count", "total", "mean", "share")
	for _, s := range cp.Stages {
		fmt.Printf("  %-14s %-4s %10d %12v %12v %6.1f%%\n",
			s.Stage, "-", s.Count, time.Duration(s.TotalNs), time.Duration(s.MeanNs), 100*s.Share)
	}
	for _, s := range cp.HostStages {
		fmt.Printf("  %-14s %-4s %10d %12v %12v %6.1f%%\n",
			s.Stage, s.Host, s.Count, time.Duration(s.TotalNs), time.Duration(s.MeanNs), 100*s.Share)
	}
	if len(cp.WhatIf) > 0 {
		fmt.Printf("what-if (stage %.0f%% faster):\n", 100*es2.DefaultWhatIfSpeedup)
		fmt.Printf("  %-14s %12s %12s %12s\n", "stage", "dP50", "dP99", "dMean")
		for _, w := range cp.WhatIf {
			fmt.Printf("  %-14s %12v %12v %12v\n", w.Stage,
				time.Duration(w.P50DeltaNs), time.Duration(w.P99DeltaNs), time.Duration(w.MeanDeltaNs))
		}
	}
	for i, ex := range cp.Exemplars {
		fmt.Printf("exemplar %d: flow %d seq %d e2e=%v start=%v",
			i, ex.Flow, ex.Seq, time.Duration(ex.E2ENs), time.Duration(ex.StartNs))
		if ex.FabricHops > 0 {
			fmt.Printf(" hops=%d", ex.FabricHops)
		}
		fmt.Println()
		for _, m := range ex.Marks {
			host := m.Host
			if host == "" {
				host = "-"
			}
			fmt.Printf("  %-14s %-4s at=%-14v +%v\n", m.Stage, host, time.Duration(m.AtNs), time.Duration(m.DurNs))
		}
	}
}
