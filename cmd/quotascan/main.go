// Command quotascan reproduces the paper's quota-selection methodology
// (Section VI-B): sweep the poll_quota module parameter for a given
// protocol and message size and report the I/O-instruction exit rate,
// time-in-guest, and throughput at each setting.
//
//	quotascan -proto udp -msg 256
//	quotascan -proto tcp -msg 1024 -quotas 64,32,16,8,4,2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"es2"
)

func main() {
	proto := flag.String("proto", "udp", "tcp or udp")
	msg := flag.Int("msg", 256, "message size in bytes")
	quotasFlag := flag.String("quotas", "64,32,16,8,4,2", "comma-separated quota values")
	seed := flag.Uint64("seed", 2017, "simulation seed")
	dur := flag.Duration("duration", time.Second, "measurement window (simulated)")
	parallel := flag.Int("parallel", 0, "parallel runs (0 = GOMAXPROCS)")
	asJSON := flag.Bool("json", false, "print the sweep as machine-readable JSON (schema in EXPERIMENTS.md)")
	flag.Parse()

	var kind es2.WorkloadKind
	switch *proto {
	case "udp":
		kind = es2.NetperfUDPSend
	case "tcp":
		kind = es2.NetperfTCPSend
	default:
		fmt.Fprintln(os.Stderr, "quotascan: -proto must be tcp or udp")
		os.Exit(2)
	}

	var quotas []int
	for _, q := range strings.Split(*quotasFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(q))
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "quotascan: bad quota %q\n", q)
			os.Exit(2)
		}
		quotas = append(quotas, v)
	}

	specs := []es2.ScenarioSpec{{
		Name: "notification", Seed: *seed, Config: es2.PIOnly(),
		Workload: es2.WorkloadSpec{Kind: kind, MsgBytes: *msg},
		Duration: *dur,
	}}
	for _, q := range quotas {
		specs = append(specs, es2.ScenarioSpec{
			Name: fmt.Sprintf("quota %d", q), Seed: *seed, Config: es2.PIH(q),
			Workload: es2.WorkloadSpec{Kind: kind, MsgBytes: *msg},
			Duration: *dur,
		})
	}

	results, err := es2.RunMany(specs, *parallel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "quotascan: %v\n", err)
		os.Exit(1)
	}

	if *asJSON {
		out := struct {
			Schema   string        `json:"schema"`
			Proto    string        `json:"proto"`
			MsgBytes int           `json:"msg_bytes"`
			Seed     uint64        `json:"seed"`
			Results  []*es2.Result `json:"results"`
		}{Schema: "quotascan/v1", Proto: *proto, MsgBytes: *msg, Seed: *seed, Results: results}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "quotascan: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("quota sweep: %s send, %dB messages (PI enabled throughout)\n\n", *proto, *msg)
	fmt.Printf("%-14s %14s %8s %14s\n", "Mode", "IOExits/s", "TIG", "Throughput")
	for _, r := range results {
		fmt.Printf("%-14s %14.0f %7.1f%% %11.1f Mb\n", r.Name, r.IOExitRate, 100*r.TIG, r.ThroughputMbps)
	}
	fmt.Println("\nPick the largest quota whose exit rate is negligible — the paper")
	fmt.Println("settles on 8 for UDP streams and 4 for TCP streams.")
}
