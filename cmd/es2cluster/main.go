// Command es2cluster runs the rack-scale cluster scenarios: many
// simulated hosts — each with its own cores, scheduler, vhost back-end
// and VMs — joined by one switch fabric, with closed-loop RPC flows
// load-balanced across the server VMs.
//
// Usage:
//
//	es2cluster [-exp all|rack1] [-parallel N] [-seed S] [-scale F]
//	           [-list] [-json FILE] [-telemetry-dir DIR] [-check]
//	           [-engine-stats] [-soak N] [-progress]
//	           [-load rack1-day|FILE] [-time-scale F]
//	           [-slo default|FILE] [-slo-log FILE]
//	           [-serve ADDR [-serve-wait D]]
//
// -scale F (> 1) divides each scenario's flow count and measurement
// window by F, for smoke runs on constrained CI. -engine-stats prints
// the simulator's own wall-clock performance report per scenario;
// -progress emits a per-scenario (and per-seed, under -soak) stderr
// heartbeat with wall time and events/sec.
//
// -load replaces every scenario's closed-loop flows with an open-loop
// load generator (the 'rack1-day' datacenter-day preset or a JSON
// LoadSpec file); -time-scale overrides its profile's day-to-window
// compression factor.
//
// -slo attaches service-level objectives to every scenario and reports
// the streaming burn-rate alert timeline; -slo-log writes the merged
// fault/alert timeline as JSONL. -serve exposes the live ops plane —
// real-process Prometheus /metrics, /healthz, /progress JSON and
// /debug/pprof — while the scenarios run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"time"

	"es2"
	"es2/experiments"
	"es2/internal/cliflags"
	"es2/internal/ops"
)

func main() {
	expFlag := flag.String("exp", "all", "cluster experiment id or 'all'")
	specFile := flag.String("spec", "", "run one JSON ClusterSpec file instead of the named experiments")
	parallel := flag.Int("parallel", 0, "parallel scenario runs (0 = GOMAXPROCS)")
	seed := flag.Uint64("seed", 0, "override the experiment seed (0 keeps the default)")
	scale := flag.Float64("scale", 1, "shrink factor: divide flows and measurement window by F (CI smoke)")
	telemetryDir := flag.String("telemetry-dir", "", "write one OpenMetrics exposition (.prom) and windowed CSV (.csv) per scenario into DIR")
	metricsOut := flag.String("metrics", "", "write a single OpenMetrics exposition to FILE (the run must produce exactly one scenario)")
	critpath := flag.Bool("critpath", false, "enable the causal critical-path analyzer on every scenario")
	critDir := flag.String("critpath-dir", "", "write one critical-path JSON per scenario into DIR (implies -critpath)")
	jsonOut := flag.String("json", "", "write all cluster results as machine-readable JSON to FILE ('-' for stdout)")
	check := flag.Bool("check", false, "enable the runtime invariant checker on every host (also: ES2_CHECK=1)")
	chaosFlag := flag.String("chaos", "", "attach a chaos timeline to every scenario: 'rack1' (built-in host-crash + link-flap preset) or a JSON ChaosSpec file")
	soak := flag.Int("soak", 0, "chaos-soak mode: run each scenario N times on consecutive seeds with the invariant checker forced on, asserting every fault recovers and every flow is accounted for")
	progress := flag.Bool("progress", false, "print one stderr heartbeat line per scenario (per seed under -soak) with wall time and events/sec, so long runs are not silent")
	loadFlag := flag.String("load", "", "attach an open-loop load to every scenario, replacing closed-loop flows: 'rack1-day' (built-in datacenter-day preset) or a JSON LoadSpec file")
	timeScale := flag.Float64("time-scale", 0, "with an open-loop load: override the profile's time compression factor (modeled seconds per simulated second; 0 keeps the spec's, which defaults to auto-fit)")
	sloFlag := flag.String("slo", "", "attach SLO objectives to every scenario: 'default' (availability + tail-latency + goodput-floor preset) or a JSON SLOSpec file")
	sloLog := flag.String("slo-log", "", "write the merged fault/alert timeline as JSONL to FILE ('-' for stdout; the run must produce exactly one scenario)")
	serveFlag := flag.String("serve", "", "serve the live ops plane on ADDR (e.g. :9090): Prometheus /metrics, /healthz, /progress JSON, /debug/pprof")
	serveWait := flag.Duration("serve-wait", 0, "with -serve: keep serving this long after the runs finish, so scrapers can collect final state")
	engStats := flag.Bool("engine-stats", false, "measure the simulator itself (wall time, events/sec, heap, per-subsystem cost) and print the report per scenario")
	list := flag.Bool("list", false, "list cluster experiment ids and exit")
	faultFlags := cliflags.RegisterFaultFlags(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, e := range experiments.ClusterExperiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	for _, d := range []string{*telemetryDir, *critDir} {
		if d != "" {
			if err := os.MkdirAll(d, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "es2cluster: %v\n", err)
				os.Exit(1)
			}
		}
	}

	faultSpec, err := faultFlags.Spec()
	if err != nil {
		fmt.Fprintf(os.Stderr, "es2cluster: %v\n", err)
		os.Exit(2)
	}

	var chaosSpec es2.ChaosSpec
	if *chaosFlag != "" {
		switch *chaosFlag {
		case "rack1", "default":
			chaosSpec = experiments.DefaultChaos()
		default:
			cs, err := es2.LoadChaosSpec(*chaosFlag)
			if err != nil {
				fmt.Fprintf(os.Stderr, "es2cluster: %v\n", err)
				os.Exit(1)
			}
			chaosSpec = cs
		}
	}

	var loadSpec es2.LoadSpec
	if *loadFlag != "" {
		switch *loadFlag {
		case "rack1-day", "daycycle":
			loadSpec = experiments.DefaultLoad()
		default:
			ls, err := es2.LoadLoadSpec(*loadFlag)
			if err != nil {
				fmt.Fprintf(os.Stderr, "es2cluster: %v\n", err)
				os.Exit(1)
			}
			loadSpec = ls
		}
	}

	var sloSpec es2.SLOSpec
	if *sloFlag != "" {
		switch *sloFlag {
		case "default":
			sloSpec = experiments.DefaultSLO()
		default:
			ss, err := es2.LoadSLOSpec(*sloFlag)
			if err != nil {
				fmt.Fprintf(os.Stderr, "es2cluster: %v\n", err)
				os.Exit(1)
			}
			sloSpec = ss
		}
	}

	// applyInjection overlays the -chaos, -fault-* and -slo selections
	// onto a scenario; called before scaling so chaos timelines shrink
	// with the window.
	applyInjection := func(s *es2.ClusterSpec) {
		if *chaosFlag != "" {
			s.Chaos = chaosSpec
		}
		if faultSpec.Enabled() {
			s.Faults = faultSpec
		}
		if *sloFlag != "" {
			s.SLO = sloSpec
		}
		if *loadFlag != "" {
			s.Workload.Load = loadSpec
		}
		if *timeScale > 0 && s.Workload.Load.Enabled() {
			s.Workload.Load.Profile.TimeScale = *timeScale
		}
	}

	// The ops plane serves live process state over HTTP for the whole
	// run; the sim itself never sees it, so serving cannot perturb
	// results. finishServe lingers (-serve-wait) so external scrapers
	// can collect final state, then shuts the listener down.
	var plane *ops.Server
	if *serveFlag != "" {
		p, err := ops.Serve(*serveFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "es2cluster: %v\n", err)
			os.Exit(1)
		}
		plane = p
		fmt.Fprintf(os.Stderr, "es2cluster: ops plane on http://%s (/metrics /healthz /progress /debug/pprof)\n", p.Addr())
	}
	finishServe := func() {
		if plane == nil {
			return
		}
		if *serveWait > 0 {
			fmt.Fprintf(os.Stderr, "es2cluster: runs finished; ops plane stays up for %v\n", *serveWait)
			time.Sleep(*serveWait)
		}
		plane.Close()
	}

	if *specFile != "" {
		spec, err := es2.LoadClusterSpec(*specFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "es2cluster: %v\n", err)
			os.Exit(1)
		}
		if *seed != 0 {
			spec.Seed = *seed
		}
		applyInjection(&spec)
		spec.Telemetry = spec.Telemetry || *telemetryDir != "" || *metricsOut != ""
		spec.Check = spec.Check || *check
		spec.CritPath = spec.CritPath || *critpath || *critDir != ""
		spec.EngineStats = spec.EngineStats || *engStats || *progress || plane != nil
		if *soak > 0 {
			runSoak([]experiments.ClusterExperiment{{ID: "spec", Title: spec.Name,
				Specs: []es2.ClusterSpec{spec}}}, *soak, *seed, *parallel, *jsonOut, *progress, plane)
			finishServe()
			return
		}
		if plane != nil {
			plane.StartRun(spec.Name, int64(spec.Seed))
		}
		r, err := es2.RunCluster(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "es2cluster: %v\n", err)
			os.Exit(1)
		}
		progressLine(r, spec.Seed, *progress)
		reportRun(plane, r, spec.Seed)
		printClusterSummary(r)
		if *sloLog != "" {
			if err := writeEventLogFile(*sloLog, r); err != nil {
				fmt.Fprintf(os.Stderr, "es2cluster: %v\n", err)
				os.Exit(1)
			}
		}
		base := fmt.Sprintf("spec-00-%s", sanitize(r.Name))
		if *telemetryDir != "" {
			if err := writeTelemetry(filepath.Join(*telemetryDir, base), r); err != nil {
				fmt.Fprintf(os.Stderr, "es2cluster: %v\n", err)
				os.Exit(1)
			}
		}
		if *critDir != "" {
			if err := writeCritPath(filepath.Join(*critDir, base+".json"), r); err != nil {
				fmt.Fprintf(os.Stderr, "es2cluster: %v\n", err)
				os.Exit(1)
			}
		}
		if *metricsOut != "" {
			if err := writeMetricsFile(*metricsOut, r); err != nil {
				fmt.Fprintf(os.Stderr, "es2cluster: %v\n", err)
				os.Exit(1)
			}
		}
		if *jsonOut != "" {
			rep := jsonReport{Schema: "es2cluster/v1", Seed: *seed, Scale: 1,
				Experiments: []jsonExperiment{{ID: "spec", Title: spec.Name, Results: []*es2.ClusterResult{r}}}}
			if err := writeJSONReport(*jsonOut, rep); err != nil {
				fmt.Fprintf(os.Stderr, "es2cluster: %v\n", err)
				os.Exit(1)
			}
		}
		finishServe()
		return
	}

	var exps []experiments.ClusterExperiment
	if *expFlag == "all" {
		exps = experiments.ClusterExperiments()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := experiments.ClusterByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "es2cluster: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	for ei := range exps {
		for i := range exps[ei].Specs {
			applyInjection(&exps[ei].Specs[i])
		}
		exps[ei] = experiments.ScaleCluster(exps[ei], *scale)
	}

	if *soak > 0 {
		runSoak(exps, *soak, *seed, *parallel, *jsonOut, *progress, plane)
		finishServe()
		return
	}

	report := jsonReport{Schema: "es2cluster/v1", Seed: *seed, Scale: *scale}
	var allResults []*es2.ClusterResult
	for _, e := range exps {
		for i := range e.Specs {
			if *seed != 0 {
				e.Specs[i].Seed = *seed
			}
			if *telemetryDir != "" || *metricsOut != "" {
				e.Specs[i].Telemetry = true
			}
			if *critpath || *critDir != "" {
				e.Specs[i].CritPath = true
			}
			if *check {
				e.Specs[i].Check = true
			}
			if *engStats || *progress || plane != nil {
				e.Specs[i].EngineStats = true
			}
		}
		start := time.Now()
		if plane != nil {
			for i := range e.Specs {
				plane.StartRun(e.Specs[i].Name, int64(e.Specs[i].Seed))
			}
		}
		results, err := es2.RunManyCluster(e.Specs, *parallel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "es2cluster: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		for i, r := range results {
			progressLine(r, e.Specs[i].Seed, *progress)
			reportRun(plane, r, e.Specs[i].Seed)
		}
		allResults = append(allResults, results...)
		for i, r := range results {
			base := fmt.Sprintf("%s-%02d-%s", e.ID, i, sanitize(r.Name))
			if *telemetryDir != "" {
				if err := writeTelemetry(filepath.Join(*telemetryDir, base), r); err != nil {
					fmt.Fprintf(os.Stderr, "es2cluster: %v\n", err)
					os.Exit(1)
				}
			}
			if *critDir != "" {
				if err := writeCritPath(filepath.Join(*critDir, base+".json"), r); err != nil {
					fmt.Fprintf(os.Stderr, "es2cluster: %v\n", err)
					os.Exit(1)
				}
			}
		}
		if *jsonOut != "" {
			report.Experiments = append(report.Experiments, jsonExperiment{
				ID: e.ID, Title: e.Title, PaperClaim: e.PaperClaim, Results: results,
			})
		}
		fmt.Printf("=== %s — %s\n", e.ID, e.Title)
		fmt.Printf("    paper: %s\n\n", e.PaperClaim)
		fmt.Println(indent(e.Render(results), "    "))
		if *engStats {
			for _, r := range results {
				if r.EngineReport == nil {
					continue
				}
				fmt.Printf("    --- %s\n", r.Name)
				fmt.Println(indent(r.EngineReport.Render(), "    "))
			}
		}
		if *sloFlag != "" {
			for _, r := range results {
				if r.SLO == nil {
					continue
				}
				fmt.Printf("    --- %s\n", r.Name)
				fmt.Println(indent(r.SLO.Render(), "    "))
			}
		}
		if *loadFlag != "" {
			// Injected open-loop load: the experiment's own renderer
			// predates it, so print the offered-load tables here.
			for _, r := range results {
				if r.Load == nil {
					continue
				}
				fmt.Printf("    --- %s\n", r.Name)
				fmt.Println(indent(loadSummary(r.Load), "    "))
			}
		}
		fmt.Printf("    (%d scenarios in %v wall time)\n\n", len(e.Specs), time.Since(start).Round(time.Millisecond))
	}

	if *metricsOut != "" {
		if len(allResults) != 1 {
			fmt.Fprintf(os.Stderr, "es2cluster: -metrics needs exactly one scenario, got %d (narrow -exp or use -spec)\n", len(allResults))
			os.Exit(2)
		}
		if err := writeMetricsFile(*metricsOut, allResults[0]); err != nil {
			fmt.Fprintf(os.Stderr, "es2cluster: %v\n", err)
			os.Exit(1)
		}
	}

	if *sloLog != "" {
		if len(allResults) != 1 {
			fmt.Fprintf(os.Stderr, "es2cluster: -slo-log needs exactly one scenario, got %d (narrow -exp or use -spec)\n", len(allResults))
			os.Exit(2)
		}
		if err := writeEventLogFile(*sloLog, allResults[0]); err != nil {
			fmt.Fprintf(os.Stderr, "es2cluster: %v\n", err)
			os.Exit(1)
		}
	}

	if *jsonOut != "" {
		if err := writeJSONReport(*jsonOut, report); err != nil {
			fmt.Fprintf(os.Stderr, "es2cluster: %v\n", err)
			os.Exit(1)
		}
	}
	finishServe()
}

// progressLine prints the per-scenario stderr heartbeat (-progress).
func progressLine(r *es2.ClusterResult, seed uint64, on bool) {
	if !on || r.EngineReport == nil {
		return
	}
	er := r.EngineReport
	fmt.Fprintf(os.Stderr, "progress %-24s seed=%-6d wall=%v events/s=%.0f\n",
		r.Name, seed, time.Duration(er.WallNs).Round(time.Millisecond), er.EventsPerSec)
}

// reportRun folds one finished scenario into the ops plane.
func reportRun(plane *ops.Server, r *es2.ClusterResult, seed uint64) {
	if plane == nil {
		return
	}
	u := ops.RunUpdate{Name: r.Name, Seed: int64(seed)}
	if er := r.EngineReport; er != nil {
		u.EventsFired = er.EventsFired
		u.SimSeconds = er.SimSeconds
		u.WallSeconds = float64(er.WallNs) / 1e9
		u.EventsPerSec = er.EventsPerSec
	}
	if s := r.SLO; s != nil {
		u.AlertsFired = uint64(s.Fires)
		u.AlertsCleared = uint64(s.Clears)
		u.AlertsActive = uint64(s.ActiveAtEnd)
	}
	plane.FinishRun(u)
}

// writeEventLogFile writes the merged fault/alert JSONL timeline for
// one scenario ('-' for stdout).
func writeEventLogFile(path string, r *es2.ClusterResult) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	return es2.WriteEventLog(out, r.SLO, r.Recovery)
}

// runSoak is the -soak N harness: every scenario of every selected
// experiment runs N times on consecutive seeds with the invariant
// checker forced on. Any run must come back with every chaos fault
// recovered (finite MTTR) and every flow completed or migrated;
// violations are reported and exit the process non-zero. Invariant
// failures themselves panic inside the run, so a clean exit here means
// zero violations of either kind. With progress, every run also prints
// one stderr heartbeat line (seed, wall time, events/sec), so multi-
// minute soaks are never silent.
func runSoak(exps []experiments.ClusterExperiment, n int, seedOverride uint64, parallel int, jsonOut string, progress bool, plane *ops.Server) {
	type soakRun struct {
		Experiment      string              `json:"experiment"`
		Name            string              `json:"name"`
		Seed            uint64              `json:"seed"`
		InvariantChecks uint64              `json:"invariant_checks"`
		Recovery        *es2.RecoveryReport `json:"recovery,omitempty"`
		SLO             *es2.SLOReport      `json:"slo,omitempty"`
	}
	var runs []soakRun
	violations := 0
	bad := func(format string, args ...any) {
		violations++
		fmt.Fprintf(os.Stderr, "es2cluster: soak violation: "+format+"\n", args...)
	}
	for s := 0; s < n; s++ {
		for _, e := range exps {
			specs := make([]es2.ClusterSpec, len(e.Specs))
			copy(specs, e.Specs)
			for i := range specs {
				base := specs[i].Seed
				if seedOverride != 0 {
					base = seedOverride
				}
				specs[i].Seed = base + uint64(s)
				specs[i].Check = true
				if progress || plane != nil {
					specs[i].EngineStats = true
				}
			}
			if plane != nil {
				for i := range specs {
					plane.StartRun(specs[i].Name, int64(specs[i].Seed))
				}
			}
			results, err := es2.RunManyCluster(specs, parallel)
			if err != nil {
				fmt.Fprintf(os.Stderr, "es2cluster: soak %s iteration %d: %v\n", e.ID, s, err)
				os.Exit(1)
			}
			for i, r := range results {
				progressLine(r, specs[i].Seed, progress)
				reportRun(plane, r, specs[i].Seed)
				rec := r.Recovery
				runs = append(runs, soakRun{Experiment: e.ID, Name: r.Name,
					Seed: specs[i].Seed, InvariantChecks: r.InvariantChecks,
					Recovery: rec, SLO: r.SLO})
				if specs[i].Chaos.Enabled() && rec == nil {
					bad("%s seed %d: chaos enabled but no recovery report", r.Name, specs[i].Seed)
					continue
				}
				sloNote := ""
				if s := r.SLO; s != nil {
					sloNote = fmt.Sprintf(" alerts=%d/%d", s.Fires, s.Clears)
				}
				if rec == nil {
					fmt.Printf("soak %-24s seed=%-6d checks=%d%s\n", r.Name, specs[i].Seed, r.InvariantChecks, sloNote)
					continue
				}
				for _, f := range rec.Faults {
					if f.MTTRMs < 0 {
						bad("%s seed %d: %s on %s (outage %.2fms) never recovered",
							r.Name, specs[i].Seed, f.Kind, f.Target, f.OutageMs)
					}
				}
				if rec.FlowsUnaccounted > 0 {
					bad("%s seed %d: %d flows neither completed nor failed over",
						r.Name, specs[i].Seed, rec.FlowsUnaccounted)
				}
				fmt.Printf("soak %-24s seed=%-6d checks=%d faults=%d timeouts=%d retries=%d migrated=%d avail=%.0f%%%s\n",
					r.Name, specs[i].Seed, r.InvariantChecks, len(rec.Faults),
					rec.Timeouts, rec.Retries, rec.MigratedFlows, 100*rec.Availability, sloNote)
			}
		}
	}
	if jsonOut != "" {
		type soakReport struct {
			Schema string    `json:"schema"`
			Runs   []soakRun `json:"runs"`
		}
		if err := writeAnyJSON(jsonOut, soakReport{Schema: "es2cluster-soak/v1", Runs: runs}); err != nil {
			fmt.Fprintf(os.Stderr, "es2cluster: %v\n", err)
			os.Exit(1)
		}
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "es2cluster: soak: %d violations across %d runs\n", violations, len(runs))
		os.Exit(1)
	}
	fmt.Printf("soak ok: %d runs, zero violations\n", len(runs))
}

// printClusterSummary renders one -spec run: aggregate figures plus
// the critical-path blame tables when enabled.
// loadSummary renders the open-loop offered-vs-completed line and the
// per-phase windows of one result's LoadReport.
func loadSummary(l *es2.LoadReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "load       offered=%.0f/s done=%.0f/s delivery=%.1f%% shed=%d backlog=%d knee=%.0f/s (%d streams, %.0fx compression)\n",
		l.OfferedPerSec, l.CompletedPerSec, 100*l.DeliveryRatio,
		l.Shed, l.BacklogEnd, l.KneeOfferedPerSec, l.Streams, l.TimeScale)
	for _, p := range l.Phases {
		fmt.Fprintf(&b, "  %-10s %5.2fx offered=%.0f/s delivery=%.1f%% p99=%v\n",
			p.Name, p.Multiplier, p.OfferedPerSec, 100*p.DeliveryRatio,
			p.P99Latency.Round(time.Microsecond))
	}
	return strings.TrimRight(b.String(), "\n")
}

func printClusterSummary(r *es2.ClusterResult) {
	fmt.Printf("cluster    %s: hosts=%d vms=%d flows=%d window=%.3fs\n",
		r.Name, r.Hosts, r.VMs, r.Flows, r.MeasuredSeconds)
	if a := r.Aggregate; a != nil {
		fmt.Printf("aggregate  ops=%.0f/s tput=%.1fMbps mean=%v p99=%v drops=%d\n",
			a.OpsPerSec, a.ThroughputMbps, a.MeanLatency, a.P99Latency, a.Drops)
	}
	if l := r.Load; l != nil {
		fmt.Println(loadSummary(l))
	}
	if s := r.SLO; s != nil {
		fmt.Print(s.Render())
	}
	if rec := r.Recovery; rec != nil {
		fmt.Printf("chaos      %d faults, availability %.0f%%/%d windows, degraded %.1fms (%.0f ops/s vs %.0f healthy)\n",
			len(rec.Faults), 100*rec.Availability, rec.TotalWindows,
			1e3*rec.DegradedSeconds, rec.DegradedOpsPerSec, rec.HealthyOpsPerSec)
		fmt.Printf("  %-18s %-8s %10s %10s %10s\n", "fault", "target", "start", "outage", "mttr")
		for _, f := range rec.Faults {
			mttr := "never"
			if f.MTTRMs >= 0 {
				mttr = fmt.Sprintf("%.2fms", f.MTTRMs)
			}
			fmt.Printf("  %-18s %-8s %8.2fms %8.2fms %10s\n", f.Kind, f.Target, f.StartMs, f.OutageMs, mttr)
		}
		fmt.Printf("  rpc: timeouts=%d retries=%d migrated=%d unaccounted=%d; drops: link=%d blackhole=%d\n",
			rec.Timeouts, rec.Retries, rec.MigratedFlows, rec.FlowsUnaccounted,
			rec.LinkDrops, rec.BlackholeDrops)
	}
	if er := r.EngineReport; er != nil {
		fmt.Print(er.Render())
	}
	if cp := r.CriticalPath; cp != nil {
		fmt.Printf("critical path: %d requests, mean=%v p50=%v p99=%v max=%v (stage-sum err %.2g)\n",
			cp.Requests,
			time.Duration(cp.MeanNs), time.Duration(cp.P50Ns),
			time.Duration(cp.P99Ns), time.Duration(cp.MaxNs), cp.MaxSumRelErr)
		fmt.Printf("  %-14s %-4s %10s %12s %7s\n", "stage", "host", "count", "mean", "share")
		for _, s := range cp.Stages {
			fmt.Printf("  %-14s %-4s %10d %12v %6.1f%%\n",
				s.Stage, "-", s.Count, time.Duration(s.MeanNs), 100*s.Share)
		}
		for _, s := range cp.HostStages {
			fmt.Printf("  %-14s %-4s %10d %12v %6.1f%%\n",
				s.Stage, s.Host, s.Count, time.Duration(s.MeanNs), 100*s.Share)
		}
		if len(cp.DegradedStages) > 0 {
			fmt.Printf("degraded-phase blame (%d requests completed under active chaos):\n", cp.DegradedRequests)
			for _, s := range cp.DegradedStages {
				fmt.Printf("  %-14s %-8s %10d %12v %6.1f%%\n",
					s.Stage, s.Host, s.Count, time.Duration(s.MeanNs), 100*s.Share)
			}
		}
		if len(cp.WhatIf) > 0 {
			fmt.Println("what-if (stage 50% faster):")
			fmt.Printf("  %-14s %12s %12s\n", "stage", "dP50", "dP99")
			for _, w := range cp.WhatIf {
				fmt.Printf("  %-14s %12v %12v\n", w.Stage,
					time.Duration(w.P50DeltaNs), time.Duration(w.P99DeltaNs))
			}
		}
	}
}

// writeCritPath writes one scenario's critical-path report as JSON.
func writeCritPath(path string, r *es2.ClusterResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(r.CriticalPath)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeMetricsFile writes the single-scenario OpenMetrics exposition
// (the -metrics contract: one file, one scenario).
func writeMetricsFile(path string, r *es2.ClusterResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = r.TelemetryRecorder.WriteOpenMetrics(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// jsonReport is the -json envelope ("Cluster scenarios" in
// EXPERIMENTS.md).
type jsonReport struct {
	Schema string `json:"schema"`
	// Seed is the -seed override (0 = each experiment's default seed);
	// Scale is the -scale shrink factor the run used.
	Seed        uint64           `json:"seed"`
	Scale       float64          `json:"scale"`
	Experiments []jsonExperiment `json:"experiments"`
}

type jsonExperiment struct {
	ID         string               `json:"id"`
	Title      string               `json:"title"`
	PaperClaim string               `json:"paper_claim"`
	Results    []*es2.ClusterResult `json:"results"`
}

func writeJSONReport(path string, rep jsonReport) error {
	return writeAnyJSON(path, rep)
}

// writeAnyJSON writes v as indented JSON to path ('-' for stdout).
func writeAnyJSON(path string, v any) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// writeTelemetry writes base.prom (OpenMetrics exposition) and base.csv
// (windowed series) for one cluster result.
func writeTelemetry(base string, r *es2.ClusterResult) error {
	f, err := os.Create(base + ".prom")
	if err != nil {
		return err
	}
	err = r.TelemetryRecorder.WriteOpenMetrics(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	f, err = os.Create(base + ".csv")
	if err != nil {
		return err
	}
	err = r.TelemetryRecorder.WriteCSV(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// sanitize maps a scenario name to a safe file-name fragment. Names
// that differ only in remapped runes get distinct fragments (an FNV
// tag of the original), so no two scenarios share an artifact path.
func sanitize(s string) string {
	mapped := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
	if mapped == s {
		return mapped
	}
	h := fnv.New32a()
	h.Write([]byte(s))
	return fmt.Sprintf("%s-%08x", mapped, h.Sum32())
}

func indent(s, pre string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = pre + l
	}
	return strings.Join(lines, "\n")
}
