// Command es2cluster runs the rack-scale cluster scenarios: many
// simulated hosts — each with its own cores, scheduler, vhost back-end
// and VMs — joined by one switch fabric, with closed-loop RPC flows
// load-balanced across the server VMs.
//
// Usage:
//
//	es2cluster [-exp all|rack1] [-parallel N] [-seed S] [-scale F]
//	           [-list] [-json FILE] [-telemetry-dir DIR] [-check]
//
// -scale F (> 1) divides each scenario's flow count and measurement
// window by F, for smoke runs on constrained CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"time"

	"es2"
	"es2/experiments"
)

func main() {
	expFlag := flag.String("exp", "all", "cluster experiment id or 'all'")
	parallel := flag.Int("parallel", 0, "parallel scenario runs (0 = GOMAXPROCS)")
	seed := flag.Uint64("seed", 0, "override the experiment seed (0 keeps the default)")
	scale := flag.Float64("scale", 1, "shrink factor: divide flows and measurement window by F (CI smoke)")
	telemetryDir := flag.String("telemetry-dir", "", "write one OpenMetrics exposition (.prom) and windowed CSV (.csv) per scenario into DIR")
	jsonOut := flag.String("json", "", "write all cluster results as machine-readable JSON to FILE ('-' for stdout)")
	check := flag.Bool("check", false, "enable the runtime invariant checker on every host (also: ES2_CHECK=1)")
	list := flag.Bool("list", false, "list cluster experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.ClusterExperiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	var exps []experiments.ClusterExperiment
	if *expFlag == "all" {
		exps = experiments.ClusterExperiments()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := experiments.ClusterByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "es2cluster: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	if *telemetryDir != "" {
		if err := os.MkdirAll(*telemetryDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "es2cluster: %v\n", err)
			os.Exit(1)
		}
	}

	report := jsonReport{Schema: "es2cluster/v1", Seed: *seed, Scale: *scale}
	for _, e := range exps {
		e = experiments.ScaleCluster(e, *scale)
		for i := range e.Specs {
			if *seed != 0 {
				e.Specs[i].Seed = *seed
			}
			if *telemetryDir != "" {
				e.Specs[i].Telemetry = true
			}
			if *check {
				e.Specs[i].Check = true
			}
		}
		start := time.Now()
		results, err := es2.RunManyCluster(e.Specs, *parallel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "es2cluster: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *telemetryDir != "" {
			for i, r := range results {
				base := fmt.Sprintf("%s-%02d-%s", e.ID, i, sanitize(r.Name))
				if err := writeTelemetry(filepath.Join(*telemetryDir, base), r); err != nil {
					fmt.Fprintf(os.Stderr, "es2cluster: %v\n", err)
					os.Exit(1)
				}
			}
		}
		if *jsonOut != "" {
			report.Experiments = append(report.Experiments, jsonExperiment{
				ID: e.ID, Title: e.Title, PaperClaim: e.PaperClaim, Results: results,
			})
		}
		fmt.Printf("=== %s — %s\n", e.ID, e.Title)
		fmt.Printf("    paper: %s\n\n", e.PaperClaim)
		fmt.Println(indent(e.Render(results), "    "))
		fmt.Printf("    (%d scenarios in %v wall time)\n\n", len(e.Specs), time.Since(start).Round(time.Millisecond))
	}

	if *jsonOut != "" {
		if err := writeJSONReport(*jsonOut, report); err != nil {
			fmt.Fprintf(os.Stderr, "es2cluster: %v\n", err)
			os.Exit(1)
		}
	}
}

// jsonReport is the -json envelope ("Cluster scenarios" in
// EXPERIMENTS.md).
type jsonReport struct {
	Schema string `json:"schema"`
	// Seed is the -seed override (0 = each experiment's default seed);
	// Scale is the -scale shrink factor the run used.
	Seed        uint64           `json:"seed"`
	Scale       float64          `json:"scale"`
	Experiments []jsonExperiment `json:"experiments"`
}

type jsonExperiment struct {
	ID         string               `json:"id"`
	Title      string               `json:"title"`
	PaperClaim string               `json:"paper_claim"`
	Results    []*es2.ClusterResult `json:"results"`
}

func writeJSONReport(path string, rep jsonReport) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// writeTelemetry writes base.prom (OpenMetrics exposition) and base.csv
// (windowed series) for one cluster result.
func writeTelemetry(base string, r *es2.ClusterResult) error {
	f, err := os.Create(base + ".prom")
	if err != nil {
		return err
	}
	err = r.TelemetryRecorder.WriteOpenMetrics(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	f, err = os.Create(base + ".csv")
	if err != nil {
		return err
	}
	err = r.TelemetryRecorder.WriteCSV(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// sanitize maps a scenario name to a safe file-name fragment. Names
// that differ only in remapped runes get distinct fragments (an FNV
// tag of the original), so no two scenarios share an artifact path.
func sanitize(s string) string {
	mapped := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
	if mapped == s {
		return mapped
	}
	h := fnv.New32a()
	h.Write([]byte(s))
	return fmt.Sprintf("%s-%08x", mapped, h.Sum32())
}

func indent(s, pre string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = pre + l
	}
	return strings.Join(lines, "\n")
}
