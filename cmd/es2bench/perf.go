// Engine performance benchmarking: es2bench -perf runs scenarios
// repeatedly with engine stats on and emits a BENCH_engine.json
// envelope (per-rep wall times, mean, stddev, 95% CI); es2bench
// -compare old.json new.json prints benchstat-style per-scenario
// deltas with overlap-based significance verdicts and exits non-zero
// on confirmed regressions beyond the -threshold.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"es2"
	"es2/experiments"
	"es2/internal/stats"
)

// engineEnvelopeSchema versions the BENCH_engine.json format.
const engineEnvelopeSchema = "es2bench-engine/v1"

// perfSlowdownEnv is a test hook: when set to an integer N, every
// measured rep wall time is inflated by N nanoseconds before
// statistics. It exists so the -compare regression gate can be
// exercised against an artificially slowed engine without building a
// second binary.
const perfSlowdownEnv = "ES2BENCH_PERF_SLOWDOWN_NS"

// perfScenario is one scenario's replicated engine measurement.
type perfScenario struct {
	// Experiment and Name identify the scenario; -compare matches on
	// the pair.
	Experiment string `json:"experiment"`
	Name       string `json:"name"`
	// SimSeconds is the simulated span per rep; EventsFired the
	// per-rep executed-event count (identical across reps by
	// determinism).
	SimSeconds  float64 `json:"sim_seconds"`
	EventsFired uint64  `json:"events_fired"`
	// WallNs lists each rep's engine wall time; the summary statistics
	// below are over it (CI95Ns is the Student-t half-width).
	WallNs   []int64 `json:"wall_ns"`
	MeanNs   float64 `json:"mean_ns"`
	StdDevNs float64 `json:"stddev_ns"`
	CI95Ns   float64 `json:"ci95_ns"`
	// EventsPerSecMean is EventsFired over the mean wall time.
	EventsPerSecMean float64 `json:"events_per_sec_mean"`
	// Engine is the final rep's full report (heap behavior, subsystem
	// attribution, memory deltas).
	Engine *es2.EngineReport `json:"engine,omitempty"`
}

// engineEnvelope is the BENCH_engine.json artifact.
type engineEnvelope struct {
	Schema string  `json:"schema"`
	Reps   int     `json:"reps"`
	Seed   uint64  `json:"seed"`
	Scale  float64 `json:"scale"`
	// GoVersion and GOMAXPROCS pin the measurement environment.
	GoVersion  string         `json:"go_version"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Scenarios  []perfScenario `json:"scenarios"`
}

// perfTarget is one runnable scenario resolved from -exp: single-host
// and cluster experiments benchmark through the same closure.
type perfTarget struct {
	exp, name string
	run       func() (*es2.EngineReport, error)
}

// resolvePerfTargets expands -exp into runnable targets. Ids are
// looked up in the single-host registry first, then the cluster
// registry (where -scale applies); "all" selects every experiment of
// both. Every run is sequential with stats on, so subsystem
// attribution is per-engine accurate.
func resolvePerfTargets(expFlag string, seed uint64, scale float64) ([]perfTarget, error) {
	var targets []perfTarget
	addHost := func(exp experiments.Experiment) {
		for _, spec := range exp.Specs {
			spec := spec
			spec.EngineStats = true
			if seed != 0 {
				spec.Seed = seed
			}
			targets = append(targets, perfTarget{
				exp: exp.ID, name: spec.Name,
				run: func() (*es2.EngineReport, error) {
					res, err := es2.Run(spec)
					if err != nil {
						return nil, err
					}
					return res.EngineReport, nil
				},
			})
		}
	}
	addCluster := func(exp experiments.ClusterExperiment) {
		exp = experiments.ScaleCluster(exp, scale)
		for _, spec := range exp.Specs {
			spec := spec
			spec.EngineStats = true
			if seed != 0 {
				spec.Seed = seed
			}
			targets = append(targets, perfTarget{
				exp: exp.ID, name: spec.Name,
				run: func() (*es2.EngineReport, error) {
					res, err := es2.RunCluster(spec)
					if err != nil {
						return nil, err
					}
					return res.EngineReport, nil
				},
			})
		}
	}
	if expFlag == "all" {
		for _, e := range experiments.All() {
			addHost(e)
		}
		for _, e := range experiments.ClusterExperiments() {
			addCluster(e)
		}
		return targets, nil
	}
	for _, id := range strings.Split(expFlag, ",") {
		id = strings.TrimSpace(id)
		if e, ok := experiments.ByIDWithExtensions(id); ok {
			addHost(e)
			continue
		}
		if e, ok := experiments.ClusterByID(id); ok {
			addCluster(e)
			continue
		}
		return nil, fmt.Errorf("unknown experiment %q (use -list)", id)
	}
	return targets, nil
}

// perfSlowdownNs reads the test hook (0 when unset or malformed).
func perfSlowdownNs() int64 {
	v := os.Getenv(perfSlowdownEnv)
	if v == "" {
		return 0
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// runPerf executes every resolved scenario reps times and writes the
// engine envelope to jsonOut. With progress, every rep prints one
// stderr heartbeat line (wall time, events/sec) so long benchmark runs
// are never silent. Returns a non-nil error on any failed run.
func runPerf(expFlag string, reps int, seed uint64, scale float64, jsonOut string, progress bool) error {
	if reps < 1 {
		reps = 1
	}
	targets, err := resolvePerfTargets(expFlag, seed, scale)
	if err != nil {
		return err
	}
	slow := perfSlowdownNs()
	env := engineEnvelope{
		Schema: engineEnvelopeSchema, Reps: reps, Seed: seed, Scale: scale,
		GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, t := range targets {
		ps := perfScenario{Experiment: t.exp, Name: t.name}
		for r := 0; r < reps; r++ {
			rep, err := t.run()
			if err != nil {
				return fmt.Errorf("%s/%s rep %d: %w", t.exp, t.name, r+1, err)
			}
			if rep == nil {
				return fmt.Errorf("%s/%s rep %d: no engine report", t.exp, t.name, r+1)
			}
			ps.WallNs = append(ps.WallNs, rep.WallNs+slow)
			ps.SimSeconds = rep.SimSeconds
			ps.EventsFired = rep.EventsFired
			ps.Engine = rep
			if progress {
				fmt.Fprintf(os.Stderr, "progress %-28s rep=%d/%d wall=%v events/s=%.0f\n",
					t.exp+"/"+t.name, r+1, reps,
					time.Duration(rep.WallNs).Round(time.Millisecond), rep.EventsPerSec)
			}
		}
		xs := make([]float64, len(ps.WallNs))
		for i, w := range ps.WallNs {
			xs[i] = float64(w)
		}
		s := stats.Describe(xs)
		ps.MeanNs, ps.StdDevNs, ps.CI95Ns = s.Mean, s.StdDev, s.CI95()
		if ps.MeanNs > 0 {
			ps.EventsPerSecMean = float64(ps.EventsFired) / (ps.MeanNs / 1e9)
		}
		env.Scenarios = append(env.Scenarios, ps)
		fmt.Printf("perf %-28s %d reps  mean %8.1fms ± %5.1fms (95%% CI)  %8s events/s\n",
			t.exp+"/"+t.name, reps, ps.MeanNs/1e6, ps.CI95Ns/1e6,
			fmt.Sprintf("%.2fM", ps.EventsPerSecMean/1e6))
	}
	if jsonOut == "" {
		jsonOut = "BENCH_engine.json"
	}
	if err := writeEngineEnvelope(jsonOut, env); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s (%d scenarios x %d reps)\n", jsonOut, len(env.Scenarios), reps)
	return nil
}

func writeEngineEnvelope(path string, env engineEnvelope) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(env)
}

func readEngineEnvelope(path string) (engineEnvelope, error) {
	var env engineEnvelope
	data, err := os.ReadFile(path)
	if err != nil {
		return env, err
	}
	if err := json.Unmarshal(data, &env); err != nil {
		return env, fmt.Errorf("%s: %w", path, err)
	}
	if env.Schema != engineEnvelopeSchema {
		return env, fmt.Errorf("%s: schema %q, want %q", path, env.Schema, engineEnvelopeSchema)
	}
	return env, nil
}

// perfDelta is one scenario's old-vs-new comparison.
type perfDelta struct {
	exp, name              string
	oldS, newS             stats.Sample
	delta                  float64 // (new-old)/old
	significant            bool    // 95% CIs disjoint
	regression             bool    // significant slowdown beyond threshold
	missingOld, missingNew bool
}

// compareEnvelopes matches scenarios by (experiment, name) and judges
// each delta: significant when the two 95% confidence intervals do not
// overlap (the benchstat criterion), a regression when a significant
// slowdown also exceeds threshold (a fraction, e.g. 0.1 = +10%).
func compareEnvelopes(oldEnv, newEnv engineEnvelope, threshold float64) []perfDelta {
	type key struct{ exp, name string }
	olds := make(map[key]perfScenario, len(oldEnv.Scenarios))
	for _, s := range oldEnv.Scenarios {
		olds[key{s.Experiment, s.Name}] = s
	}
	var out []perfDelta
	seen := make(map[key]bool)
	for _, n := range newEnv.Scenarios {
		k := key{n.Experiment, n.Name}
		seen[k] = true
		d := perfDelta{exp: n.Experiment, name: n.Name, newS: describeWall(n.WallNs)}
		o, ok := olds[k]
		if !ok {
			d.missingOld = true
			out = append(out, d)
			continue
		}
		d.oldS = describeWall(o.WallNs)
		if d.oldS.Mean > 0 {
			d.delta = (d.newS.Mean - d.oldS.Mean) / d.oldS.Mean
		}
		oldLo, oldHi := d.oldS.Mean-d.oldS.CI95(), d.oldS.Mean+d.oldS.CI95()
		newLo, newHi := d.newS.Mean-d.newS.CI95(), d.newS.Mean+d.newS.CI95()
		d.significant = newLo > oldHi || newHi < oldLo
		d.regression = d.significant && d.delta > threshold
		out = append(out, d)
	}
	for _, o := range oldEnv.Scenarios {
		k := key{o.Experiment, o.Name}
		if !seen[k] {
			out = append(out, perfDelta{exp: o.Experiment, name: o.Name,
				oldS: describeWall(o.WallNs), missingNew: true})
		}
	}
	return out
}

func describeWall(wallNs []int64) stats.Sample {
	xs := make([]float64, len(wallNs))
	for i, w := range wallNs {
		xs[i] = float64(w)
	}
	return stats.Describe(xs)
}

// runCompare prints the comparison table and returns the number of
// confirmed regressions (the caller exits non-zero when > 0).
func runCompare(oldPath, newPath string, threshold float64) (int, error) {
	oldEnv, err := readEngineEnvelope(oldPath)
	if err != nil {
		return 0, err
	}
	newEnv, err := readEngineEnvelope(newPath)
	if err != nil {
		return 0, err
	}
	deltas := compareEnvelopes(oldEnv, newEnv, threshold)
	fmt.Printf("%-30s %18s %18s %8s  verdict\n", "scenario", "old", "new", "delta")
	regressions := 0
	for _, d := range deltas {
		id := d.exp + "/" + d.name
		switch {
		case d.missingOld:
			fmt.Printf("%-30s %18s %18s %8s  new scenario\n", id, "-", fmtMS(d.newS), "-")
			continue
		case d.missingNew:
			fmt.Printf("%-30s %18s %18s %8s  removed scenario\n", id, fmtMS(d.oldS), "-", "-")
			continue
		}
		verdict := "~ (no significant change)"
		if d.significant {
			if d.delta > 0 {
				verdict = "slower (significant)"
				if d.regression {
					verdict = fmt.Sprintf("REGRESSION (beyond %+.1f%% threshold)", 100*threshold)
					regressions++
				}
			} else {
				verdict = "faster (significant)"
			}
		}
		fmt.Printf("%-30s %18s %18s %+7.1f%%  %s\n", id, fmtMS(d.oldS), fmtMS(d.newS), 100*d.delta, verdict)
	}
	if regressions > 0 {
		fmt.Printf("\n%d confirmed regression(s) beyond %+.1f%%\n", regressions, 100*threshold)
	} else {
		fmt.Printf("\nno confirmed regressions (threshold %+.1f%%)\n", 100*threshold)
	}
	return regressions, nil
}

// fmtMS renders "mean ± ci95" in milliseconds.
func fmtMS(s stats.Sample) string {
	return fmt.Sprintf("%.1fms ± %.1fms", s.Mean/1e6, s.CI95()/1e6)
}

// engineWallSummary sums per-scenario engine wall time for the closing
// line of a normal (non-perf) es2bench run.
func engineWallSummary(results []*es2.Result) (wall time.Duration, events uint64) {
	for _, r := range results {
		if r.EngineReport == nil {
			continue
		}
		wall += time.Duration(r.EngineReport.WallNs)
		events += r.EngineReport.EventsFired
	}
	return wall, events
}
