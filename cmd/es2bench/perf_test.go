package main

import (
	"os"
	"path/filepath"
	"testing"
)

// env builds a synthetic envelope with one scenario whose reps are the
// given wall times.
func env(wallNs ...int64) engineEnvelope {
	return engineEnvelope{
		Schema: engineEnvelopeSchema, Reps: len(wallNs),
		Scenarios: []perfScenario{{Experiment: "table1", Name: "table1/baseline", WallNs: wallNs}},
	}
}

func TestCompareIdenticalIsNoChange(t *testing.T) {
	e := env(100e6, 102e6, 98e6, 101e6, 99e6)
	deltas := compareEnvelopes(e, e, 0.10)
	if len(deltas) != 1 {
		t.Fatalf("deltas = %d, want 1", len(deltas))
	}
	d := deltas[0]
	if d.significant || d.regression || d.delta != 0 {
		t.Fatalf("identical envelopes judged changed: %+v", d)
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	old := env(100e6, 102e6, 98e6, 101e6, 99e6)
	slow := env(130e6, 132e6, 128e6, 131e6, 129e6) // +30%, tight CI
	deltas := compareEnvelopes(old, slow, 0.10)
	d := deltas[0]
	if !d.significant || !d.regression {
		t.Fatalf("+30%% slowdown not flagged: %+v", d)
	}
	if d.delta < 0.25 || d.delta > 0.35 {
		t.Fatalf("delta = %v, want ~0.30", d.delta)
	}
}

func TestCompareSignificantButBelowThreshold(t *testing.T) {
	old := env(100e6, 100.5e6, 99.5e6, 100.2e6, 99.8e6)
	slow := env(105e6, 105.5e6, 104.5e6, 105.2e6, 104.8e6) // +5%, disjoint CIs
	d := compareEnvelopes(old, slow, 0.10)[0]
	if !d.significant {
		t.Fatalf("disjoint CIs not significant: %+v", d)
	}
	if d.regression {
		t.Fatalf("+5%% flagged as regression with 10%% threshold: %+v", d)
	}
}

func TestCompareNoisyOverlapNotSignificant(t *testing.T) {
	old := env(100e6, 140e6, 80e6, 120e6, 60e6)
	noisy := env(110e6, 150e6, 90e6, 130e6, 70e6) // +10% but CIs overlap
	d := compareEnvelopes(old, noisy, 0.05)
	if d[0].significant || d[0].regression {
		t.Fatalf("overlapping CIs judged significant: %+v", d[0])
	}
}

func TestCompareSpeedupIsNotRegression(t *testing.T) {
	old := env(130e6, 132e6, 128e6)
	fast := env(100e6, 102e6, 98e6)
	d := compareEnvelopes(old, fast, 0.10)[0]
	if !d.significant || d.regression {
		t.Fatalf("speedup misjudged: %+v", d)
	}
}

func TestCompareMissingScenarios(t *testing.T) {
	old := env(100e6)
	newer := engineEnvelope{Schema: engineEnvelopeSchema,
		Scenarios: []perfScenario{{Experiment: "rack1", Name: "rack1/es2", WallNs: []int64{5e6}}}}
	deltas := compareEnvelopes(old, newer, 0.10)
	if len(deltas) != 2 {
		t.Fatalf("deltas = %d, want 2 (one new, one removed)", len(deltas))
	}
	var sawNew, sawRemoved bool
	for _, d := range deltas {
		sawNew = sawNew || d.missingOld
		sawRemoved = sawRemoved || d.missingNew
		if d.regression {
			t.Fatalf("unmatched scenario counted as regression: %+v", d)
		}
	}
	if !sawNew || !sawRemoved {
		t.Fatalf("missing-scenario markers absent: %+v", deltas)
	}
}

func TestEnvelopeRoundTripAndSchemaCheck(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_engine.json")
	if err := writeEngineEnvelope(path, env(1e6, 2e6)); err != nil {
		t.Fatal(err)
	}
	got, err := readEngineEnvelope(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != engineEnvelopeSchema || len(got.Scenarios) != 1 || len(got.Scenarios[0].WallNs) != 2 {
		t.Fatalf("round trip mangled envelope: %+v", got)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"es2bench/v1"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readEngineEnvelope(bad); err == nil {
		t.Fatalf("wrong schema accepted")
	}
}

func TestPerfSlowdownHook(t *testing.T) {
	t.Setenv(perfSlowdownEnv, "2500000")
	if got := perfSlowdownNs(); got != 2500000 {
		t.Fatalf("slowdown = %d, want 2500000", got)
	}
	t.Setenv(perfSlowdownEnv, "junk")
	if got := perfSlowdownNs(); got != 0 {
		t.Fatalf("malformed hook = %d, want 0", got)
	}
	t.Setenv(perfSlowdownEnv, "-5")
	if got := perfSlowdownNs(); got != 0 {
		t.Fatalf("negative hook = %d, want 0", got)
	}
}

func TestResolvePerfTargets(t *testing.T) {
	targets, err := resolvePerfTargets("table1,rack1", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) < 3 {
		t.Fatalf("table1+rack1 resolved to %d targets, want >= 3", len(targets))
	}
	seenExp := map[string]bool{}
	for _, tg := range targets {
		seenExp[tg.exp] = true
		if tg.name == "" || tg.run == nil {
			t.Fatalf("degenerate target: %+v", tg)
		}
	}
	if !seenExp["table1"] || !seenExp["rack1"] {
		t.Fatalf("experiments missing from targets: %v", seenExp)
	}
	if _, err := resolvePerfTargets("nosuch", 0, 1); err == nil {
		t.Fatalf("unknown experiment accepted")
	}
}

// TestRunPerfEndToEnd runs one real rep of the smallest cluster target
// and validates the envelope on disk, including the slowdown hook's
// effect on recorded wall times.
func TestRunPerfEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real engine run skipped in -short")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_engine.json")
	// A huge slowdown dominates real wall time, making the hook's
	// presence in the recorded values unambiguous.
	t.Setenv(perfSlowdownEnv, "3600000000000")
	if err := runPerf("rack1", 1, 0, 64, path, false); err != nil {
		t.Fatal(err)
	}
	got, err := readEngineEnvelope(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Reps != 1 || got.Scale != 64 || got.GoVersion == "" || got.GOMAXPROCS < 1 {
		t.Fatalf("envelope header: %+v", got)
	}
	if len(got.Scenarios) == 0 {
		t.Fatalf("no scenarios in envelope")
	}
	for _, s := range got.Scenarios {
		if s.Experiment != "rack1" || s.Name == "" {
			t.Fatalf("bad scenario identity: %+v", s)
		}
		if len(s.WallNs) != 1 || s.WallNs[0] < 3600000000000 {
			t.Fatalf("slowdown hook not applied: %+v", s.WallNs)
		}
		if s.EventsFired == 0 || s.MeanNs <= 0 || s.Engine == nil {
			t.Fatalf("scenario stats not populated: %+v", s)
		}
		if s.Engine.Heap.Pushes == 0 {
			t.Fatalf("engine report missing heap stats: %+v", s.Engine)
		}
	}
}
