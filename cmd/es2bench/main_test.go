package main

import (
	"strings"
	"testing"
)

func TestSanitize(t *testing.T) {
	// Clean names pass through untouched (stable artifact names for the
	// common case).
	for _, s := range []string{"table1", "fig4a", "mq-recv.1q", "Run0"} {
		if got := sanitize(s); got != s {
			t.Errorf("sanitize(%q) = %q, want unchanged", s, got)
		}
	}
	// Remapped names stay filesystem-safe.
	for _, s := range []string{"sriov/tcp/Baseline", "policy/§", "a b"} {
		got := sanitize(s)
		if strings.ContainsAny(got, "/ §:") {
			t.Errorf("sanitize(%q) = %q still contains unsafe runes", s, got)
		}
	}
	// Names that collide after remapping must not collide after
	// sanitizing, or scenarios overwrite each other's artifacts.
	collisions := [][2]string{
		{"a/b", "a:b"},
		{"policy/v", "policy:v"},
		{"x y", "x/y"},
	}
	for _, c := range collisions {
		if sanitize(c[0]) == sanitize(c[1]) {
			t.Errorf("sanitize(%q) == sanitize(%q) == %q; artifact overwrite",
				c[0], c[1], sanitize(c[0]))
		}
	}
}
