// Command es2bench regenerates every table and figure of the paper's
// evaluation from the simulator.
//
// Usage:
//
//	es2bench [-exp all|table1|fig4a|fig4b|fig5a|fig5b|fig6a|fig6b|fig7|fig8a|fig8b|fig9]
//	         [-parallel N] [-seed S] [-list] [-json FILE] [-profile-dir DIR]
//	         [-timeline-dir DIR] [-telemetry-dir DIR] [-check] [-engine-stats]
//	es2bench -perf [-reps N] [-exp IDS] [-scale F] [-seed S] [-json FILE] [-progress]
//	es2bench -compare old.json new.json [-threshold F]
//
// Each experiment prints the paper's claim followed by the regenerated
// rows/series.
//
// -perf benchmarks the engine itself: every scenario (single-host and
// cluster ids both resolve; -scale shrinks cluster runs) executes
// -reps times sequentially with engine stats on, and the per-rep wall
// times with mean/stddev/95% CI land in a BENCH_engine.json envelope
// (schema es2bench-engine/v1). -compare judges two envelopes
// benchstat-style — a delta is significant when the 95% confidence
// intervals do not overlap — and exits non-zero when a significant
// slowdown exceeds -threshold.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"time"

	"es2"
	"es2/experiments"
)

func main() {
	expFlag := flag.String("exp", "all", "experiment id or 'all'")
	parallel := flag.Int("parallel", 0, "parallel scenario runs (0 = GOMAXPROCS)")
	seed := flag.Uint64("seed", 0, "override the experiment seed (0 keeps the default)")
	timelineDir := flag.String("timeline-dir", "", "write one Perfetto/Chrome-trace JSON timeline per scenario into DIR")
	profileDir := flag.String("profile-dir", "", "write one pprof CPU profile (.pb.gz) and folded stacks (.folded) per scenario into DIR")
	telemetryDir := flag.String("telemetry-dir", "", "write one OpenMetrics exposition (.prom) and windowed CSV (.csv) per scenario into DIR")
	critDir := flag.String("critpath-dir", "", "enable the causal critical-path analyzer and write one blame/exemplar/what-if JSON per scenario into DIR")
	jsonOut := flag.String("json", "", "write all experiment results as machine-readable JSON to FILE ('-' for stdout; schema in EXPERIMENTS.md)")
	check := flag.Bool("check", false, "enable the runtime invariant checker in every scenario (also: ES2_CHECK=1)")
	engineStats := flag.Bool("engine-stats", false, "print the engine performance report per scenario")
	perfMode := flag.Bool("perf", false, "benchmark the engine: run each scenario -reps times and emit BENCH_engine.json")
	reps := flag.Int("reps", 5, "repetitions per scenario in -perf mode")
	scale := flag.Float64("scale", 1, "shrink cluster experiments by this factor in -perf mode (see es2cluster -scale)")
	progress := flag.Bool("progress", false, "with -perf: print one stderr heartbeat line per rep (wall time, events/sec) so long benchmark runs are not silent")
	compareMode := flag.Bool("compare", false, "compare two BENCH_engine.json files (old new); exit non-zero on confirmed regressions")
	threshold := flag.Float64("threshold", 0.10, "relative slowdown beyond which a significant delta is a regression in -compare mode")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *compareMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "es2bench: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		regressions, err := runCompare(flag.Arg(0), flag.Arg(1), *threshold)
		if err != nil {
			fmt.Fprintf(os.Stderr, "es2bench: %v\n", err)
			os.Exit(2)
		}
		if regressions > 0 {
			os.Exit(1)
		}
		return
	}
	if *perfMode {
		if err := runPerf(*expFlag, *reps, *seed, *scale, *jsonOut, *progress); err != nil {
			fmt.Fprintf(os.Stderr, "es2bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		for _, e := range experiments.Extensions() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	var exps []experiments.Experiment
	if *expFlag == "all" {
		exps = experiments.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := experiments.ByIDWithExtensions(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "es2bench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	for _, dir := range []string{*timelineDir, *profileDir, *telemetryDir, *critDir} {
		if dir == "" {
			continue
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "es2bench: %v\n", err)
			os.Exit(1)
		}
	}

	report := jsonReport{Schema: "es2bench/v1", Seed: *seed}
	for _, e := range exps {
		if *seed != 0 {
			for i := range e.Specs {
				e.Specs[i].Seed = *seed
			}
		}
		for i := range e.Specs {
			if *timelineDir != "" {
				e.Specs[i].Timeline = true
			}
			if *profileDir != "" {
				e.Specs[i].CPUProfile = true
			}
			if *telemetryDir != "" {
				e.Specs[i].Telemetry = true
			}
			if *critDir != "" {
				e.Specs[i].CritPath = true
			}
			if *check {
				e.Specs[i].Check = true
			}
			// Engine stats are always on: they never perturb results,
			// cost <2% wall time, and put real wall time into the JSON
			// envelope instead of the old ad-hoc time.Since print.
			e.Specs[i].EngineStats = true
		}
		results, err := es2.RunMany(e.Specs, *parallel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "es2bench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		for i, r := range results {
			base := fmt.Sprintf("%s-%02d-%s", e.ID, i, sanitize(r.Name))
			if *timelineDir != "" {
				if err := writeTimeline(filepath.Join(*timelineDir, base+".json"), r); err != nil {
					fmt.Fprintf(os.Stderr, "es2bench: %v\n", err)
					os.Exit(1)
				}
			}
			if *profileDir != "" {
				if err := writeProfiles(filepath.Join(*profileDir, base), r); err != nil {
					fmt.Fprintf(os.Stderr, "es2bench: %v\n", err)
					os.Exit(1)
				}
			}
			if *telemetryDir != "" {
				if err := writeTelemetry(filepath.Join(*telemetryDir, base), r); err != nil {
					fmt.Fprintf(os.Stderr, "es2bench: %v\n", err)
					os.Exit(1)
				}
			}
			if *critDir != "" {
				if err := writeCritPath(filepath.Join(*critDir, base+".json"), r); err != nil {
					fmt.Fprintf(os.Stderr, "es2bench: %v\n", err)
					os.Exit(1)
				}
			}
		}
		wall, events := engineWallSummary(results)
		if *jsonOut != "" {
			report.Experiments = append(report.Experiments, jsonExperiment{
				ID: e.ID, Title: e.Title, PaperClaim: e.PaperClaim,
				WallNs: wall.Nanoseconds(), EventsFired: events, Results: results,
			})
		}
		fmt.Printf("=== %s — %s\n", e.ID, e.Title)
		fmt.Printf("    paper: %s\n\n", e.PaperClaim)
		fmt.Println(indent(e.Render(results), "    "))
		if *engineStats {
			for _, r := range results {
				if r.EngineReport == nil {
					continue
				}
				fmt.Printf("    --- %s\n", r.Name)
				fmt.Println(indent(r.EngineReport.Render(), "    "))
			}
		}
		fmt.Printf("    (%d scenarios, %v engine wall time, %d events)\n\n",
			len(e.Specs), wall.Round(time.Millisecond), events)
	}

	if *jsonOut != "" {
		if err := writeJSONReport(*jsonOut, report); err != nil {
			fmt.Fprintf(os.Stderr, "es2bench: %v\n", err)
			os.Exit(1)
		}
		// Table 1 is the headline reproduction: publish it as its own
		// artifact (BENCH_table1.json, same es2bench/v1 envelope) next to
		// the full report so dashboards can fetch it without parsing the
		// whole run.
		if *jsonOut != "-" {
			if err := writeTable1Report(*jsonOut, report); err != nil {
				fmt.Fprintf(os.Stderr, "es2bench: %v\n", err)
				os.Exit(1)
			}
			// Likewise the critical-path study: BENCH_critpath.json is the
			// artifact CI's blame-share regression gate validates.
			if err := writeCritpathReport(*jsonOut, report); err != nil {
				fmt.Fprintf(os.Stderr, "es2bench: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

// jsonReport is the -json envelope ("Machine-readable results" in
// EXPERIMENTS.md).
type jsonReport struct {
	Schema string `json:"schema"`
	// Seed is the -seed override (0 = each experiment's default seed).
	Seed        uint64           `json:"seed"`
	Experiments []jsonExperiment `json:"experiments"`
}

type jsonExperiment struct {
	ID         string `json:"id"`
	Title      string `json:"title"`
	PaperClaim string `json:"paper_claim"`
	// WallNs and EventsFired sum the per-scenario engine measurements
	// (real wall time inside Engine.Run; machine-dependent).
	WallNs      int64         `json:"wall_ns"`
	EventsFired uint64        `json:"events_fired"`
	Results     []*es2.Result `json:"results"`
}

func writeJSONReport(path string, rep jsonReport) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// writeTable1Report extracts the table1 experiment from the full report
// and writes it as BENCH_table1.json in the same directory as the -json
// output. A run that did not include table1 writes nothing.
func writeTable1Report(jsonPath string, rep jsonReport) error {
	sub := jsonReport{Schema: rep.Schema, Seed: rep.Seed}
	for _, e := range rep.Experiments {
		if e.ID == "table1" {
			sub.Experiments = append(sub.Experiments, e)
		}
	}
	if len(sub.Experiments) == 0 {
		return nil
	}
	return writeJSONReport(filepath.Join(filepath.Dir(jsonPath), "BENCH_table1.json"), sub)
}

// writeCritpathReport extracts the critpath experiment from the full
// report and writes it as BENCH_critpath.json next to the -json
// output. A run that did not include critpath writes nothing.
func writeCritpathReport(jsonPath string, rep jsonReport) error {
	sub := jsonReport{Schema: rep.Schema, Seed: rep.Seed}
	for _, e := range rep.Experiments {
		if e.ID == "critpath" {
			sub.Experiments = append(sub.Experiments, e)
		}
	}
	if len(sub.Experiments) == 0 {
		return nil
	}
	return writeJSONReport(filepath.Join(filepath.Dir(jsonPath), "BENCH_critpath.json"), sub)
}

// writeCritPath writes one scenario's critical-path report as JSON.
func writeCritPath(path string, r *es2.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(r.CriticalPath)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeTelemetry writes base.prom (OpenMetrics exposition) and base.csv
// (windowed series) for one scenario result.
func writeTelemetry(base string, r *es2.Result) error {
	f, err := os.Create(base + ".prom")
	if err != nil {
		return err
	}
	err = r.TelemetryRecorder.WriteOpenMetrics(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	f, err = os.Create(base + ".csv")
	if err != nil {
		return err
	}
	err = r.TelemetryRecorder.WriteCSV(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeProfiles writes base.pb.gz (pprof) and base.folded (flamegraph
// stacks) for one scenario result.
func writeProfiles(base string, r *es2.Result) error {
	f, err := os.Create(base + ".pb.gz")
	if err != nil {
		return err
	}
	err = r.CPUProfile.WritePprof(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	f, err = os.Create(base + ".folded")
	if err != nil {
		return err
	}
	err = r.CPUProfile.WriteFolded(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// sanitize maps a scenario name to a safe file-name fragment. Names
// that differ only in remapped runes (e.g. "a/b" and "a:b") get
// distinct fragments — an FNV tag of the original is appended whenever
// any rune was remapped — so no two scenarios can overwrite each
// other's artifacts.
func sanitize(s string) string {
	mapped := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
	if mapped == s {
		return mapped
	}
	h := fnv.New32a()
	h.Write([]byte(s))
	return fmt.Sprintf("%s-%08x", mapped, h.Sum32())
}

func writeTimeline(path string, r *es2.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = r.Timeline.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func indent(s, pre string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = pre + l
	}
	return strings.Join(lines, "\n")
}
