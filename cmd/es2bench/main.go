// Command es2bench regenerates every table and figure of the paper's
// evaluation from the simulator.
//
// Usage:
//
//	es2bench [-exp all|table1|fig4a|fig4b|fig5a|fig5b|fig6a|fig6b|fig7|fig8a|fig8b|fig9]
//	         [-parallel N] [-seed S] [-list]
//
// Each experiment prints the paper's claim followed by the regenerated
// rows/series.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"es2"
	"es2/experiments"
)

func main() {
	expFlag := flag.String("exp", "all", "experiment id or 'all'")
	parallel := flag.Int("parallel", 0, "parallel scenario runs (0 = GOMAXPROCS)")
	seed := flag.Uint64("seed", 0, "override the experiment seed (0 keeps the default)")
	timelineDir := flag.String("timeline-dir", "", "write one Perfetto/Chrome-trace JSON timeline per scenario into DIR")
	check := flag.Bool("check", false, "enable the runtime invariant checker in every scenario (also: ES2_CHECK=1)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		for _, e := range experiments.Extensions() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	var exps []experiments.Experiment
	if *expFlag == "all" {
		exps = experiments.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := experiments.ByIDWithExtensions(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "es2bench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	if *timelineDir != "" {
		if err := os.MkdirAll(*timelineDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "es2bench: %v\n", err)
			os.Exit(1)
		}
	}

	for _, e := range exps {
		if *seed != 0 {
			for i := range e.Specs {
				e.Specs[i].Seed = *seed
			}
		}
		if *timelineDir != "" {
			for i := range e.Specs {
				e.Specs[i].Timeline = true
			}
		}
		if *check {
			for i := range e.Specs {
				e.Specs[i].Check = true
			}
		}
		start := time.Now()
		results, err := es2.RunMany(e.Specs, *parallel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "es2bench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *timelineDir != "" {
			for i, r := range results {
				name := fmt.Sprintf("%s-%02d-%s.json", e.ID, i, sanitize(r.Name))
				if err := writeTimeline(filepath.Join(*timelineDir, name), r); err != nil {
					fmt.Fprintf(os.Stderr, "es2bench: %v\n", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("=== %s — %s\n", e.ID, e.Title)
		fmt.Printf("    paper: %s\n\n", e.PaperClaim)
		fmt.Println(indent(e.Render(results), "    "))
		fmt.Printf("    (%d scenarios in %v wall time)\n\n", len(e.Specs), time.Since(start).Round(time.Millisecond))
	}
}

// sanitize maps a scenario name to a safe file-name fragment.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}

func writeTimeline(path string, r *es2.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = r.Timeline.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func indent(s, pre string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = pre + l
	}
	return strings.Join(lines, "\n")
}
