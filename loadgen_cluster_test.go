package es2

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
	"time"
)

// loadTestSpec is a fast three-host rack driven by a small open-loop
// load exercising all three fan-out patterns and both burst-train
// arrival processes across a three-phase profile with a diurnal curve.
func loadTestSpec(cfg Config) ClusterSpec {
	return ClusterSpec{
		Name:        "load-smoke",
		Seed:        11,
		Config:      cfg,
		Hosts:       3,
		ClientHosts: 1,
		VMsPerHost:  2,
		Workload: ClusterWorkloadSpec{Load: LoadSpec{
			Classes: []LoadClass{
				{Name: "web", Streams: 4, RatePerSec: 3000, ZipfS: 0.8,
					Process: "weibull", Shape: 0.7, MaxOutstanding: 64},
				{Name: "scatter", Streams: 2, RatePerSec: 800,
					Process: "gamma", Shape: 0.5,
					FanOut: "scatter", FanWidth: 2, MaxOutstanding: 32},
				{Name: "incast", Streams: 2, RatePerSec: 800,
					FanOut: "incast", MaxOutstanding: 32},
			},
			Profile: LoadProfile{
				Phases: []LoadPhase{
					{Name: "low", Start: 0, Multiplier: 0.5},
					{Name: "high", Start: 8 * time.Hour, Multiplier: 1},
					{Name: "burst", Start: 16 * time.Hour, Multiplier: 1.5},
				},
				DiurnalAmplitude: 0.2,
				DiurnalPeak:      0.5,
			},
		}},
		Warmup:   10 * time.Millisecond,
		Duration: 40 * time.Millisecond,
	}
}

// checkLoadInvariants asserts the counter arithmetic every load report
// must satisfy, including the offered-rate reconciliation: the
// independently-accumulated per-stream arrival count equals Offered
// exactly.
func checkLoadInvariants(t *testing.T, l *LoadReport) {
	t.Helper()
	if l == nil {
		t.Fatal("load spec set but result carries no LoadReport")
	}
	if l.Arrivals != l.Offered {
		t.Errorf("per-stream arrivals %d != offered %d; the open-loop counters must reconcile exactly",
			l.Arrivals, l.Offered)
	}
	if l.Offered != l.Admitted+l.Shed {
		t.Errorf("offered %d != admitted %d + shed %d", l.Offered, l.Admitted, l.Shed)
	}
	if l.Completed > l.Admitted {
		t.Errorf("completed %d exceeds admitted %d", l.Completed, l.Admitted)
	}
	var po, ps, pc uint64
	for _, p := range l.Phases {
		po += p.Offered
		ps += p.Shed
		pc += p.Completed
		if p.Completed > p.Offered {
			t.Errorf("phase %s completed %d > offered %d (completions are billed to their arrival's phase)",
				p.Name, p.Completed, p.Offered)
		}
	}
	if po != l.Offered || ps != l.Shed || pc != l.Completed {
		t.Errorf("phase sums (%d/%d/%d) != totals (%d/%d/%d)",
			po, ps, pc, l.Offered, l.Shed, l.Completed)
	}
}

func TestClusterLoadSmoke(t *testing.T) {
	res, err := RunCluster(loadTestSpec(Full(4)))
	if err != nil {
		t.Fatal(err)
	}
	l := res.Load
	checkLoadInvariants(t, l)
	if l.Completed == 0 {
		t.Fatal("open-loop load completed nothing")
	}
	if l.Streams != 8 {
		t.Errorf("Streams = %d, want 8", l.Streams)
	}
	// Fan-out legs: 4 web singles + 2 scatter pairs + 2 incast singles.
	if res.Flows != 4+2*2+2 {
		t.Errorf("Flows = %d, want 10 fan-out legs", res.Flows)
	}
	if len(l.Phases) != 3 {
		t.Fatalf("Phases = %d, want 3", len(l.Phases))
	}
	// TimeScale auto-fits the default 24h day onto the 40ms window.
	if want := (24 * time.Hour).Seconds() / (40 * time.Millisecond).Seconds(); l.TimeScale != want {
		t.Errorf("TimeScale = %g, want auto-fit %g", l.TimeScale, want)
	}
	// The ramp must actually ramp: each phase offers more per second
	// than the one before (multipliers 0.5 -> 1 -> 1.5).
	for i := 1; i < len(l.Phases); i++ {
		if l.Phases[i].OfferedPerSec <= l.Phases[i-1].OfferedPerSec {
			t.Errorf("phase %s offered %.0f/s, not above %s's %.0f/s",
				l.Phases[i].Name, l.Phases[i].OfferedPerSec,
				l.Phases[i-1].Name, l.Phases[i-1].OfferedPerSec)
		}
	}
	if res.Aggregate.OpsPerSec <= 0 || res.Aggregate.P99Latency <= 0 {
		t.Error("aggregate RPC rate and latency spectrum should be populated under load")
	}
}

// TestClusterLoadOfferedIdentical is the fairness contract behind every
// open-loop comparison: arrivals never observe the system under test,
// so two configurations at the same seed face the exact same offered
// sequence — equal arrival counts, totals and per-phase splits.
func TestClusterLoadOfferedIdentical(t *testing.T) {
	rb, err := RunCluster(loadTestSpec(Baseline()))
	if err != nil {
		t.Fatal(err)
	}
	rf, err := RunCluster(loadTestSpec(Full(4)))
	if err != nil {
		t.Fatal(err)
	}
	lb, lf := rb.Load, rf.Load
	checkLoadInvariants(t, lb)
	checkLoadInvariants(t, lf)
	if lb.Offered != lf.Offered || lb.Arrivals != lf.Arrivals {
		t.Fatalf("offered load differs across configs: baseline %d/%d vs full %d/%d",
			lb.Arrivals, lb.Offered, lf.Arrivals, lf.Offered)
	}
	for i := range lb.Phases {
		if lb.Phases[i].Offered != lf.Phases[i].Offered {
			t.Errorf("phase %s offered differs across configs: %d vs %d",
				lb.Phases[i].Name, lb.Phases[i].Offered, lf.Phases[i].Offered)
		}
	}
}

// TestClusterLoadDeterministicReplay is the open-loop replay guarantee:
// a daycycle-style run with telemetry, critical-path analysis, SLO
// evaluation and the invariant checker all enabled produces
// byte-identical JSON, OpenMetrics and SLO event-log output when run
// twice.
func TestClusterLoadDeterministicReplay(t *testing.T) {
	spec := loadTestSpec(Full(4))
	spec.Name = "load-replay"
	spec.Telemetry = true
	spec.TelemetryWindow = 5 * time.Millisecond
	spec.CritPath = true
	spec.Check = true
	spec.SLO = SLOSpec{Objectives: []SLOObjective{
		{Name: "availability", Kind: SLOAvailability, Target: 0.9},
		{Name: "tail-latency", Kind: SLOLatency, Target: 0.99, Threshold: 50 * time.Millisecond},
		{Name: "goodput-floor", Kind: SLOGoodput, Target: 0.9, MinOpsPerSec: 100},
	}}
	run := func() ([]byte, []byte, []byte) {
		res, err := RunCluster(spec)
		if err != nil {
			t.Fatal(err)
		}
		checkLoadInvariants(t, res.Load)
		if res.InvariantChecks == 0 {
			t.Fatal("invariant checker never ran")
		}
		if res.SLO == nil || res.SLO.Ticks == 0 {
			t.Fatal("SLO evaluator never ticked")
		}
		if res.CriticalPath == nil || res.CriticalPath.Requests == 0 {
			t.Fatal("critical-path analyzer saw no requests")
		}
		rj, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		var om, lg bytes.Buffer
		if err := res.TelemetryRecorder.WriteOpenMetrics(&om); err != nil {
			t.Fatal(err)
		}
		if err := WriteEventLog(&lg, res.SLO, res.Recovery); err != nil {
			t.Fatal(err)
		}
		for _, series := range []string{
			"es2_loadgen_offered_total", "es2_loadgen_admitted_total",
			"es2_loadgen_shed_total", "es2_loadgen_completed_total",
			"es2_loadgen_backlog", "es2_loadgen_multiplier", "es2_loadgen_phase",
		} {
			if !bytes.Contains(om.Bytes(), []byte(series)) {
				t.Errorf("OpenMetrics export missing load series %s", series)
			}
		}
		return rj, om.Bytes(), lg.Bytes()
	}
	r1, o1, l1 := run()
	r2, o2, l2 := run()
	if !bytes.Equal(r1, r2) {
		t.Errorf("JSON results differ between identical load runs:\n%s\n---\n%s", r1, r2)
	}
	if !bytes.Equal(o1, o2) {
		t.Error("OpenMetrics exports differ between identical load runs")
	}
	if !bytes.Equal(l1, l2) {
		t.Error("SLO event logs differ between identical load runs")
	}
}

// TestClusterDirectAssign: SR-IOV hosts run with exit-less doorbells,
// so a direct host's I/O exit rate collapses while everything still
// completes; DirectHosts mixes assignment per host.
func TestClusterDirectAssign(t *testing.T) {
	base := smallCluster(Baseline())
	rn, err := RunCluster(base)
	if err != nil {
		t.Fatal(err)
	}
	all := base
	all.DirectAssign = true
	ra, err := RunCluster(all)
	if err != nil {
		t.Fatal(err)
	}
	mixed := base
	mixed.DirectHosts = []bool{true, false, false}
	rm, err := RunCluster(mixed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rn.PerHost {
		if rn.PerHost[i].IOExitRate <= 0 {
			t.Fatalf("baseline host %d shows no I/O exits; doorbells should exit", i)
		}
		if ra.PerHost[i].IOExitRate != 0 {
			t.Errorf("direct-assigned host %d still shows %.0f I/O exits/s",
				i, ra.PerHost[i].IOExitRate)
		}
	}
	if ra.Aggregate.OpsPerSec <= 0 {
		t.Fatal("direct-assigned rack completed no RPCs")
	}
	if rm.PerHost[0].IOExitRate != 0 {
		t.Errorf("DirectHosts[0] host still shows %.0f I/O exits/s", rm.PerHost[0].IOExitRate)
	}
	for i := 1; i < 3; i++ {
		if rm.PerHost[i].IOExitRate <= 0 {
			t.Errorf("non-direct host %d shows no I/O exits under mixed assignment", i)
		}
	}
}

// TestClusterLoadValidation covers the spec-surface rules the open-loop
// generator adds at cluster scope.
func TestClusterLoadValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*ClusterSpec)
	}{
		{"chaos and load are exclusive", func(s *ClusterSpec) {
			s.Chaos = ChaosSpec{HostCrashes: 1, CrashDown: 5 * time.Millisecond,
				MinGap: time.Millisecond, MaxGap: 2 * time.Millisecond}
		}},
		{"request timeouts and load are exclusive", func(s *ClusterSpec) {
			s.Workload.RequestTimeout = time.Millisecond
		}},
		{"DirectHosts must match host count", func(s *ClusterSpec) {
			s.DirectHosts = []bool{true}
		}},
		{"unknown fan-out", func(s *ClusterSpec) {
			s.Workload.Load.Classes[0].FanOut = "broadcast"
		}},
		{"unknown arrival process", func(s *ClusterSpec) {
			s.Workload.Load.Classes[0].Process = "pareto"
		}},
		{"unsorted phases", func(s *ClusterSpec) {
			s.Workload.Load.Profile.Phases[2].Start = time.Hour
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := loadTestSpec(Full(4))
			tc.mutate(&spec)
			_, err := RunCluster(spec)
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("RunCluster = %v, want *SpecError", err)
			}
			if spec.Validate() == nil {
				t.Fatal("Validate accepted what RunCluster rejected")
			}
		})
	}
}

// TestSingleHostLoad: the memcached workload under a LoadSpec swaps the
// closed-loop memaslap for the open-loop peer generator, reports the
// same load surface as the cluster runner, and replays byte-identically.
func TestSingleHostLoad(t *testing.T) {
	spec := ScenarioSpec{
		Name: "single-load", Seed: 5, Config: Full(4),
		Workload: WorkloadSpec{Kind: Memcached},
		VMs:      1, VCPUs: 2,
		Load: LoadSpec{
			Classes: []LoadClass{
				{Name: "web", Streams: 6, RatePerSec: 2000, ZipfS: 1.0,
					Process: "weibull", Shape: 0.7, MaxOutstanding: 32},
			},
			Profile: LoadProfile{
				Phases: []LoadPhase{
					{Name: "low", Start: 0, Multiplier: 0.5},
					{Name: "high", Start: 12 * time.Hour, Multiplier: 1.5},
				},
			},
		},
		Warmup:   5 * time.Millisecond,
		Duration: 30 * time.Millisecond,
	}
	run := func() []byte {
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		checkLoadInvariants(t, res.Load)
		if res.Load.Completed == 0 {
			t.Fatal("open-loop peer completed nothing")
		}
		if res.OpsPerSec <= 0 || res.P99Latency <= 0 {
			t.Error("ops rate and latency spectrum should be populated under load")
		}
		if len(res.Load.Phases) != 2 {
			t.Fatalf("Phases = %d, want 2", len(res.Load.Phases))
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if r1, r2 := run(), run(); !bytes.Equal(r1, r2) {
		t.Errorf("single-host load results differ between identical runs:\n%s\n---\n%s", r1, r2)
	}

	bad := spec
	bad.Workload.Kind = Ping
	if _, err := Run(bad); err == nil {
		t.Error("open-loop load should require the memcached workload on a single host")
	}
	bad = spec
	bad.Load.Classes = append([]LoadClass{}, spec.Load.Classes...)
	bad.Load.Classes[0].FanOut = "scatter"
	bad.Load.Classes[0].FanWidth = 2
	if _, err := Run(bad); err == nil {
		t.Error("single-host load should reject scatter fan-out")
	}
}
