package es2

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"
)

// profSpec is short() with CPU profiling enabled.
func profSpec(cfg Config, w WorkloadSpec) ScenarioSpec {
	s := short(cfg, w)
	s.CPUProfile = true
	return s
}

// TestProfileDeterministic: same seed, same spec — byte-identical pprof
// and folded exports, including under fault injection.
func TestProfileDeterministic(t *testing.T) {
	specs := map[string]ScenarioSpec{
		"clean": profSpec(Full(4), WorkloadSpec{Kind: NetperfTCPSend, MsgBytes: 1024}),
		"faulted": func() ScenarioSpec {
			s := profSpec(Baseline(), WorkloadSpec{Kind: NetperfUDPSend, MsgBytes: 256})
			s.Faults = FaultSpec{
				PacketLossProb:  0.02,
				LostKickProb:    0.01,
				VhostStallEvery: 50 * time.Millisecond, VhostStall: 2 * time.Millisecond,
				PreemptStormEvery: 80 * time.Millisecond, PreemptStorm: time.Millisecond,
			}
			return s
		}(),
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			export := func() (pprof, folded []byte) {
				r := mustRun(t, spec)
				if r.CPUProfile == nil {
					t.Fatal("CPUProfile not populated despite spec.CPUProfile")
				}
				var pb, fb bytes.Buffer
				if err := r.CPUProfile.WritePprof(&pb); err != nil {
					t.Fatal(err)
				}
				if err := r.CPUProfile.WriteFolded(&fb); err != nil {
					t.Fatal(err)
				}
				return pb.Bytes(), fb.Bytes()
			}
			p1, f1 := export()
			p2, f2 := export()
			if !bytes.Equal(p1, p2) {
				t.Error("pprof export differs across same-seed runs")
			}
			if !bytes.Equal(f1, f2) {
				t.Error("folded export differs across same-seed runs")
			}
		})
	}
}

// TestProfileReconciles: the profiler's guest-occupant share must match
// Result.TIG and its vhost busy share Result.VhostCPU — the attribution
// is exact, not sampled, so the issue's 0.1% bound is loose.
func TestProfileReconciles(t *testing.T) {
	for _, cfg := range []struct {
		name string
		c    Config
	}{{"baseline", Baseline()}, {"full", Full(4)}} {
		t.Run(cfg.name, func(t *testing.T) {
			r := mustRun(t, profSpec(cfg.c, WorkloadSpec{Kind: NetperfTCPSend, MsgBytes: 1024}))
			rep := r.CPUReport
			if rep == nil {
				t.Fatal("CPUReport not populated")
			}
			if d := math.Abs(rep.GuestShare - r.TIG); d > 1e-3 {
				t.Errorf("guest share %.6f vs TIG %.6f (|d|=%.2g > 0.1%%)", rep.GuestShare, r.TIG, d)
			}
			if d := math.Abs(rep.VhostBusy - r.VhostCPU); d > 1e-3 {
				t.Errorf("vhost busy %.6f vs VhostCPU %.6f (|d|=%.2g > 0.1%%)", rep.VhostBusy, r.VhostCPU, d)
			}
			// The window must be fully attributed: busy + idle covers every
			// core-window. A chunk straddling the window start can spill a
			// sub-microsecond excess in (idle clamps at zero), so the sum may
			// sit a hair above the core count but never below it.
			var accounted float64
			for _, cu := range rep.Cores {
				for _, share := range cu.Occupants {
					accounted += share
				}
			}
			if n := float64(len(rep.Cores)); accounted < n-1e-9 || accounted > n+1e-3 {
				t.Errorf("attributed %.9f core-windows across %d cores", accounted, len(rep.Cores))
			}
		})
	}
}

// TestProfileShowsExitReduction: the headline use of the profiler — an
// ES2-vs-baseline diff shows the exit-handling cycles Algorithm 1
// eliminates.
func TestProfileShowsExitReduction(t *testing.T) {
	w := WorkloadSpec{Kind: NetperfTCPSend, MsgBytes: 1024}
	base := mustRun(t, profSpec(Baseline(), w)).CPUReport
	es2 := mustRun(t, profSpec(Full(4), w)).CPUReport

	sum := func(rep *CPUReport) (total int64) {
		for _, ns := range rep.ExitNanos {
			total += ns
		}
		return
	}
	b, e := sum(base), sum(es2)
	if b == 0 {
		t.Fatal("baseline profile attributes no exit-handling time")
	}
	if e >= b {
		t.Errorf("ES2 exit cycles %dns not below baseline %dns", e, b)
	}
	// PI removes EOI handling entirely: no APICAccess context survives.
	if ns, ok := es2.ExitNanos["exit:APICAccess"]; ok {
		t.Errorf("ES2 profile still attributes %dns to exit:APICAccess", ns)
	}
}

// TestProfileDoesNotPerturb: enabling the profiler must not change the
// simulation — it observes charge boundaries that exist anyway.
func TestProfileDoesNotPerturb(t *testing.T) {
	spec := short(Full(4), WorkloadSpec{Kind: NetperfTCPSend, MsgBytes: 1024})
	plain := mustRun(t, spec)
	profiled := mustRun(t, profSpec(Full(4), WorkloadSpec{Kind: NetperfTCPSend, MsgBytes: 1024}))

	if plain.TxPkts != profiled.TxPkts || plain.RxPkts != profiled.RxPkts ||
		plain.TIG != profiled.TIG || plain.TotalExitRate != profiled.TotalExitRate ||
		plain.ThroughputMbps != profiled.ThroughputMbps || plain.VhostCPU != profiled.VhostCPU {
		t.Fatalf("profiling perturbed the run:\nplain    %+v\nprofiled %+v", plain, profiled)
	}
	if plain.CPUProfile != nil || plain.CPUReport != nil {
		t.Fatal("profile populated without spec.CPUProfile")
	}
}

// TestResultJSONStable: the Result JSON schema the CLIs emit is part of
// the tool contract (EXPERIMENTS.md "Machine-readable results") — keys
// are snake_case, durations are _ns, and internal handles stay hidden.
func TestResultJSONStable(t *testing.T) {
	s := profSpec(Full(4), WorkloadSpec{Kind: Ping})
	s.PathTrace = true
	r := mustRun(t, s)
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"name", "config", "measured_seconds", "exit_rates", "total_exit_rate",
		"io_exit_rate", "tig", "vhost_cpu", "dev_irq_rate", "redirect_rate",
		"throughput_mbps", "pkt_rate", "mean_latency_ns", "p99_latency_ns",
		"tx_pkts", "rx_pkts", "drops", "cpu_report",
	} {
		if _, ok := doc[key]; !ok {
			t.Errorf("Result JSON lacks %q; got keys %v", key, keysOf(doc))
		}
	}
	for _, key := range []string{"Timeline", "CPUProfile", "TIG", "ExitRates"} {
		if _, ok := doc[key]; ok {
			t.Errorf("Result JSON leaks non-schema key %q", key)
		}
	}
	rep, ok := doc["cpu_report"].(map[string]any)
	if !ok {
		t.Fatal("cpu_report is not an object")
	}
	for _, key := range []string{"window_seconds", "cores", "top", "exit_ns", "guest_share", "vhost_busy"} {
		if _, ok := rep[key]; !ok {
			t.Errorf("cpu_report lacks %q; got keys %v", key, keysOf(rep))
		}
	}
	if rtts, ok := doc["rtt_series"].([]any); !ok || len(rtts) == 0 {
		t.Fatal("ping run produced no rtt_series")
	} else if pt, ok := rtts[0].(map[string]any); !ok {
		t.Fatal("rtt_series element is not an object")
	} else {
		for _, key := range []string{"at", "ms"} {
			if _, ok := pt[key]; !ok {
				t.Errorf("rtt point lacks %q; got keys %v", key, keysOf(pt))
			}
		}
	}
}

func keysOf(m map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
