package es2

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"
)

// smallCluster is a fast three-host rack (one client host, two server
// hosts) for functional tests.
func smallCluster(cfg Config) ClusterSpec {
	return ClusterSpec{
		Name:        "smoke",
		Seed:        7,
		Config:      cfg,
		Hosts:       3,
		ClientHosts: 1,
		VMsPerHost:  2,
		Workload:    ClusterWorkloadSpec{Flows: 64},
		Warmup:      20 * time.Millisecond,
		Duration:    50 * time.Millisecond,
	}
}

func TestClusterSmoke(t *testing.T) {
	res, err := RunCluster(smallCluster(Full(4)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Hosts != 3 || res.VMs != 6 || res.Flows != 64 {
		t.Fatalf("topology = %d hosts / %d VMs / %d flows, want 3/6/64",
			res.Hosts, res.VMs, res.Flows)
	}
	if len(res.PerHost) != 3 {
		t.Fatalf("PerHost has %d entries, want 3", len(res.PerHost))
	}
	for i, hr := range res.PerHost {
		want := fmt.Sprintf("smoke/h%d", i)
		if hr.Name != want {
			t.Errorf("PerHost[%d].Name = %q, want %q", i, hr.Name, want)
		}
		if hr.TotalExitRate <= 0 {
			t.Errorf("host %d shows no exits; its VMs should be running I/O", i)
		}
	}
	// Host 0 is the only client host: RPC metrics live there and only
	// there.
	if res.PerHost[0].OpsPerSec <= 0 {
		t.Error("client host reports no completed RPCs")
	}
	if res.PerHost[1].OpsPerSec != 0 || res.PerHost[2].OpsPerSec != 0 {
		t.Error("server hosts should not report client-side RPC rates")
	}
	if res.Aggregate.OpsPerSec != res.PerHost[0].OpsPerSec {
		t.Error("aggregate RPC rate should equal the sum over client hosts")
	}
	if res.Aggregate.P99Latency <= 0 {
		t.Error("aggregate latency spectrum is empty")
	}
	if res.Fabric == nil || res.Fabric.Forwarded == 0 {
		t.Fatal("fabric forwarded nothing; all RPC traffic crosses the switch")
	}
	if res.Fabric.RouteDrops != 0 {
		t.Errorf("fabric dropped %d frames for lack of a route; the flow table should cover all flows",
			res.Fabric.RouteDrops)
	}
	if res.FlowFairness == nil || res.FlowFairness.Flows != 64 {
		t.Fatalf("flow fairness = %+v, want all 64 flows completing", res.FlowFairness)
	}
	if ff := res.FlowFairness; ff.MinMean > ff.MaxMean || ff.MaxMean > ff.MaxMax {
		t.Errorf("fairness ordering violated: %+v", ff)
	}
}

// TestClusterUplinkContention: making the shared backplane the
// bottleneck must show up as uplink utilization and reduced throughput
// versus a non-blocking switch.
func TestClusterUplinkContention(t *testing.T) {
	free := smallCluster(Baseline())
	free.Workload.RespBytes = 8192
	constrained := free
	constrained.Fabric.UplinkGbps = 0.5

	rf, err := RunCluster(free)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := RunCluster(constrained)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Fabric.UplinkUtilization < 0.5 {
		t.Errorf("uplink utilization = %.2f; a 0.5 Gb/s backplane should be busy",
			rc.Fabric.UplinkUtilization)
	}
	if rf.Fabric.UplinkUtilization != 0 {
		t.Errorf("non-blocking switch reports uplink utilization %.2f, want 0",
			rf.Fabric.UplinkUtilization)
	}
	if rc.Aggregate.ThroughputMbps >= rf.Aggregate.ThroughputMbps {
		t.Errorf("constrained uplink (%.0f Mb/s) should deliver less than non-blocking (%.0f Mb/s)",
			rc.Aggregate.ThroughputMbps, rf.Aggregate.ThroughputMbps)
	}
}

// faultedClusterSpec enables every observability and fault subsystem at
// once, the strongest replay claim the cluster runner makes.
func faultedClusterSpec() ClusterSpec {
	s := smallCluster(Full(4))
	s.Name = "faulted"
	s.Seed = 23
	s.Telemetry = true
	s.TelemetryWindow = 5 * time.Millisecond
	s.CPUProfile = true
	s.PathTrace = true
	s.Check = true
	s.Faults = FaultSpec{
		PacketLossProb:    0.01,
		PacketDupProb:     0.005,
		LostKickProb:      0.02,
		LostSignalProb:    0.02,
		VhostStallEvery:   5 * time.Millisecond,
		VhostStall:        200 * time.Microsecond,
		PIOutageEvery:     10 * time.Millisecond,
		PIOutage:          time.Millisecond,
		PreemptStormEvery: 20 * time.Millisecond,
		PreemptStorm:      500 * time.Microsecond,
	}
	return s
}

// TestClusterDeterministicReplay is the cluster replay guarantee: the
// same spec and seed produce byte-identical JSON results and
// OpenMetrics exports, with telemetry, profiling, tracing, checking and
// fault injection all enabled.
func TestClusterDeterministicReplay(t *testing.T) {
	run := func() ([]byte, []byte) {
		res, err := RunCluster(faultedClusterSpec())
		if err != nil {
			t.Fatal(err)
		}
		if res.Faults == nil || res.Faults.Injected == 0 {
			t.Fatal("fault report empty; the spec should inject across the window")
		}
		if res.InvariantChecks == 0 {
			t.Fatal("invariant checker never ran")
		}
		rj, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		var om bytes.Buffer
		if err := res.TelemetryRecorder.WriteOpenMetrics(&om); err != nil {
			t.Fatal(err)
		}
		return rj, om.Bytes()
	}
	r1, o1 := run()
	r2, o2 := run()
	if !bytes.Equal(r1, r2) {
		t.Errorf("results differ between identical cluster runs:\n%s\n---\n%s", r1, r2)
	}
	if !bytes.Equal(o1, o2) {
		t.Error("OpenMetrics exports differ between identical cluster runs")
	}
}

// TestClusterTelemetryAndProfiles: the optional subsystems must surface
// in the result the same way the single-host runner surfaces them.
func TestClusterTelemetryAndProfiles(t *testing.T) {
	res, err := RunCluster(faultedClusterSpec())
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry == nil || res.Telemetry.Windows == 0 || res.Telemetry.Series == 0 {
		t.Fatalf("telemetry info = %+v, want recorded windows and series", res.Telemetry)
	}
	// RPC latency profiles: one per client host plus the cluster-wide
	// spectrum, on the aggregate.
	var rpcProfiles int
	for _, lp := range res.Aggregate.LatencyProfiles {
		if lp.Class == "rpc" {
			rpcProfiles++
		}
	}
	if rpcProfiles != 2 { // 1 client host + "cluster"
		t.Errorf("aggregate carries %d rpc latency profiles, want 2", rpcProfiles)
	}
	for i, hr := range res.PerHost {
		if hr.CPUReport == nil {
			t.Errorf("host %d missing CPU report", i)
		}
		if len(hr.PathBreakdown) == 0 {
			t.Errorf("host %d missing path breakdown", i)
		}
	}
	var om bytes.Buffer
	if err := res.TelemetryRecorder.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`es2_cluster_exits_total{host="h0"}`,
		`es2_cluster_rpc_latency_seconds`,
		`es2_fabric_forwarded_total`,
	} {
		if !bytes.Contains(om.Bytes(), []byte(want)) {
			t.Errorf("OpenMetrics export missing %q", want)
		}
	}
}

// TestRunManyClusterParallelism: parallel execution must not perturb
// results or order.
func TestRunManyClusterParallelism(t *testing.T) {
	specs := []ClusterSpec{smallCluster(Baseline()), smallCluster(Full(4))}
	specs[1].Name = "smoke-full"
	seq, err := RunManyCluster(specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunManyCluster(specs, 8)
	if err != nil {
		t.Fatal(err)
	}
	js := func(rs []*ClusterResult) []byte {
		b, err := json.Marshal(rs)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !bytes.Equal(js(seq), js(par)) {
		t.Error("RunManyCluster results differ between parallelism 1 and 8")
	}
	if seq[0].Name != "smoke" || seq[1].Name != "smoke-full" {
		t.Errorf("results out of input order: %q, %q", seq[0].Name, seq[1].Name)
	}
}

func TestClusterValidation(t *testing.T) {
	cases := []struct {
		name  string
		field string
		mut   func(*ClusterSpec)
	}{
		{"too many hosts", "Hosts", func(s *ClusterSpec) { s.Hosts = 65 }},
		{"no server host", "ClientHosts", func(s *ClusterSpec) { s.ClientHosts = 3 }},
		{"host config mismatch", "HostConfigs", func(s *ClusterSpec) { s.HostConfigs = []Config{{}} }},
		{"too many cluster VMs", "VMsPerHost", func(s *ClusterSpec) { s.Hosts = 32; s.VMsPerHost = 9 }},
		{"oversubscription", "VCPUs", func(s *ClusterSpec) { s.VCPUs = 9; s.VMCores = 2 }},
		{"bad port rate", "Fabric.PortGbps", func(s *ClusterSpec) { s.Fabric.PortGbps = 2000 }},
		{"bad uplink rate", "Fabric.UplinkGbps", func(s *ClusterSpec) { s.Fabric.UplinkGbps = -1 }},
		{"too many flows", "Workload.Flows", func(s *ClusterSpec) { s.Workload.Flows = 1 << 17 }},
		{"storm core out of range", "Faults.StormCores", func(s *ClusterSpec) {
			s.Faults = FaultSpec{PreemptStormEvery: time.Millisecond, PreemptStorm: time.Millisecond,
				StormCores: []int{99}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := smallCluster(Baseline())
			tc.mut(&s)
			_, err := RunCluster(s)
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("err = %v, want *SpecError", err)
			}
			if se.Field != tc.field {
				t.Errorf("err field = %q, want %q (%v)", se.Field, tc.field, err)
			}
		})
	}
}
