package es2

// Windowed-telemetry wiring: the hooks installed at build time (latency
// histograms at the three instrumented points) and the recorder
// assembled at the start of the measurement window. Everything here is
// purely observational — the probes snapshot counters the simulation
// already maintains, and the recorder's boundary events draw no
// randomness — so a telemetry run is bit-identical to a plain run.

import (
	"fmt"
	"time"

	"es2/internal/metrics"
	"es2/internal/sim"
	"es2/internal/slo"
	"es2/internal/telemetry"
	"es2/internal/vmm"
)

// telemetryState holds the recorder and the latency histograms hooked
// into the simulation layers for the tested VM.
type telemetryState struct {
	rec *telemetry.Recorder

	irqPosted   *metrics.LogHistogram   // APIC injection → handler entry, posted path
	irqEmulated *metrics.LogHistogram   // same span, emulated-injection path
	resLats     []*metrics.LogHistogram // TX avail-publish → vhost dequeue, per queue
	wakeLat     *metrics.LogHistogram   // scheduler wakeup → running, vm0 vCPUs
	vhostWake   *metrics.LogHistogram   // same span for the vhost I/O threads
}

// setupTelemetry installs the latency hooks during the deterministic
// build, before any workload runs: the histograms must exist before the
// first interrupt is injected or descriptor posted so every observation
// has a matching stamp. The histograms are reset at warmup end.
func (tb *testbed) setupTelemetry() {
	tel := &telemetryState{
		irqPosted:   metrics.NewLogHistogram(),
		irqEmulated: metrics.NewLogHistogram(),
		wakeLat:     metrics.NewLogHistogram(),
		vhostWake:   metrics.NewLogHistogram(),
	}
	tb.k.IRQLatPosted = tel.irqPosted
	tb.k.IRQLatEmulated = tel.irqEmulated
	for _, pair := range tb.kerns[0].Dev.Pairs {
		h := metrics.NewLogHistogram()
		pair.TX.SetResidencyProbe(h, tb.eng.Now)
		tel.resLats = append(tel.resLats, h)
	}
	for _, v := range tb.vms[0].VCPUs {
		v.Thread.WakeLat = tel.wakeLat
	}
	// vCPU threads sleep only when they run out of guest tasks (the burn
	// filler usually keeps them runnable); the vhost I/O threads are the
	// hot wakeup path — every kick on an idle queue is one — so they get
	// their own spectrum.
	for _, io := range tb.ios {
		io.Thread.WakeLat = tel.vhostWake
	}
	tb.tel = tel
}

// startTelemetry begins the windowed recording at the start of the
// measurement window: the latency histograms drop their warm-up
// observations and every headline counter is registered as a series,
// base-lined at this instant so windowed deltas integrate exactly to
// the end-of-run scalars.
func (tb *testbed) startTelemetry(end sim.Time) {
	tel := tb.tel
	tel.irqPosted.Reset()
	tel.irqEmulated.Reset()
	for _, h := range tel.resLats {
		h.Reset()
	}
	tel.wakeLat.Reset()
	tel.vhostWake.Reset()

	rec := telemetry.New(tb.eng, sim.DurationOf(tb.spec.TelemetryWindow))
	tel.rec = rec
	vm := tb.vms[0]

	for i := 0; i < vmm.NumExitReasons; i++ {
		i := i
		rec.Counter("es2_exits", "VM exits of the tested VM by reason.",
			[]telemetry.Label{{Key: "reason", Value: vmm.ExitReason(i).String()}},
			func() float64 { return float64(vm.Exits.Count(i)) })
	}
	guestSec := func() float64 {
		var g sim.Time
		for _, v := range vm.VCPUs {
			g += v.GuestTime
		}
		return g.Seconds()
	}
	modeSec := func() float64 {
		var t sim.Time
		for _, v := range vm.VCPUs {
			t += v.GuestTime + v.HostTime
		}
		return t.Seconds()
	}
	rec.Counter("es2_guest_seconds", "Guest-mode (VMX non-root) CPU seconds of the tested VM.",
		nil, guestSec)
	rec.Counter("es2_host_seconds", "Host-mode CPU seconds charged to the tested VM's vCPU threads.",
		nil, func() float64 { return modeSec() - guestSec() })
	rec.Fraction("es2_tig", "Time-in-guest fraction of the tested VM over the window.",
		nil, guestSec, modeSec)

	busySec := func() float64 {
		var b sim.Time
		for _, io := range tb.ios {
			b += io.Thread.SumExec()
		}
		return b.Seconds()
	}
	rec.Counter("es2_vhost_busy_seconds", "CPU seconds consumed by all vhost I/O threads.",
		nil, busySec)
	if tb.spec.VhostCores > 0 {
		cores := float64(tb.spec.VhostCores)
		rec.Fraction("es2_vhost_busy", "Vhost core busy fraction over the window.",
			nil, busySec, func() float64 { return tb.eng.Now().Seconds() * cores })
	}
	rec.Counter("es2_dev_irqs", "Device interrupts delivered to the tested VM.",
		nil, func() float64 { return float64(vm.DevIRQDelivered.Value()) })
	if red := tb.es.Redirector; red != nil {
		rec.Counter("es2_irq_redirected", "Device interrupts redirected to an online vCPU.",
			nil, func() float64 { return float64(red.Redirected) })
		rec.Counter("es2_irq_kept_affinity", "Device interrupts that kept their configured affinity.",
			nil, func() float64 { return float64(red.KeptAffinity) })
		rec.Counter("es2_offline_predicts", "Redirector target choices predicted from the offline list.",
			nil, func() float64 { return float64(red.OfflinePredicts) })
		rec.Counter("es2_online_hits", "Redirector target choices satisfied from the online list.",
			nil, func() float64 { return float64(red.OnlineHits) })
	}
	rec.Counter("es2_tcp_retransmits", "TCP retransmission timeouts on both ends of the wire.",
		nil, func() float64 { return float64(tb.sumRetransmits()) })

	for qi, d := range tb.devsByVM[0] {
		d := d
		ql := []telemetry.Label{{Key: "queue", Value: fmt.Sprintf("%d", qi)}}
		rec.Gauge("es2_vq_avail", "TX descriptors awaiting vhost, sampled at window end.",
			ql, func() float64 { return float64(d.TXQ.AvailLen()) })
		rec.Gauge("es2_vq_used", "RX completions awaiting the guest driver, sampled at window end.",
			ql, func() float64 { return float64(d.RXQ.UsedLen()) })
		rec.Gauge("es2_vhost_backlog", "Packets queued inside the vhost device, sampled at window end.",
			ql, func() float64 { return float64(d.Backlog()) })
	}

	if inj := tb.inj; inj != nil {
		for _, fc := range []struct {
			kind string
			get  func() uint64
		}{
			{"wire_drop", func() uint64 { return inj.Counters.WireDrops }},
			{"wire_dup", func() uint64 { return inj.Counters.WireDups }},
			{"lost_kick", func() uint64 { return inj.Counters.LostKicks }},
			{"lost_signal", func() uint64 { return inj.Counters.LostSignals }},
			{"vhost_stall", func() uint64 { return inj.Counters.VhostStalls }},
			{"pi_outage", func() uint64 { return inj.Counters.PIOutages }},
			{"preempt_storm", func() uint64 { return inj.Counters.PreemptStorms }},
		} {
			get := fc.get
			rec.Counter("es2_faults_injected", "Faults injected, by kind.",
				[]telemetry.Label{{Key: "kind", Value: fc.kind}},
				func() float64 { return float64(get()) })
		}
		for _, rc := range []struct {
			kind string
			get  func() uint64
		}{
			{"retransmit", tb.sumRetransmits},
			{"watchdog", tb.sumWatchdogFires},
			{"repoll", tb.sumRePolls},
			{"pi_fallback", func() uint64 { return tb.k.PIFallbacks }},
		} {
			get := rc.get
			rec.Counter("es2_recoveries", "Recovery-mechanism activations, by mechanism.",
				[]telemetry.Label{{Key: "kind", Value: rc.kind}},
				func() float64 { return float64(get()) })
		}
		rec.Gauge("es2_pi_unavailable_vcpus", "vCPUs whose posted-interrupt descriptor is currently unavailable (active PI outage).",
			nil, func() float64 {
				n := 0
				for _, m := range tb.vms {
					for _, v := range m.VCPUs {
						if !v.PID.Available() {
							n++
						}
					}
				}
				return float64(n)
			})
	}

	rec.Histogram("es2_irq_delivery_latency_seconds",
		"Interrupt delivery latency, APIC injection to guest handler entry.",
		[]telemetry.Label{{Key: "path", Value: "posted"}}, tel.irqPosted)
	rec.Histogram("es2_irq_delivery_latency_seconds",
		"Interrupt delivery latency, APIC injection to guest handler entry.",
		[]telemetry.Label{{Key: "path", Value: "emulated"}}, tel.irqEmulated)
	for qi, h := range tel.resLats {
		rec.Histogram("es2_vq_residency_seconds",
			"TX descriptor residency, avail-publish to vhost dequeue.",
			[]telemetry.Label{{Key: "queue", Value: fmt.Sprintf("%d", qi)}}, h)
	}
	rec.Histogram("es2_vcpu_wakeup_seconds",
		"vCPU thread wakeup-to-run delay on the tested VM.",
		nil, tel.wakeLat)
	rec.Histogram("es2_vhost_wakeup_seconds",
		"vhost I/O thread wakeup-to-run delay.",
		nil, tel.vhostWake)

	registerSLOSeries(rec, tb.sloEval)

	rec.Start(end)
}

// registerSLOSeries registers the live es2_slo_* series on a
// recorder: per-objective long-window burn rates (one gauge per
// rule), the number of rules currently firing, and cumulative
// fire/clear counters. Shared by the single-host and cluster
// telemetry paths; no-op when the run has no SLO evaluator.
func registerSLOSeries(rec *telemetry.Recorder, ev *slo.Evaluator) {
	if ev == nil {
		return
	}
	for i := 0; i < ev.NumObjectives(); i++ {
		i := i
		name := ev.ObjectiveName(i)
		for ri := 0; ri < 2; ri++ {
			ri := ri
			rec.Gauge("es2_slo_burn_rate", "Long-window error-budget burn rate, per objective and rule.",
				[]telemetry.Label{{Key: "objective", Value: name}, {Key: "rule", Value: ev.RuleName(ri)}},
				func() float64 { return ev.Burn(i, ri) })
		}
		rec.Gauge("es2_slo_alerts_active", "Burn-rate rules currently firing, per objective.",
			[]telemetry.Label{{Key: "objective", Value: name}},
			func() float64 { return float64(ev.Firing(i)) })
	}
	rec.Counter("es2_slo_alerts_fired", "SLO alert fire events across all objectives.",
		nil, ev.Fires)
	rec.Counter("es2_slo_alerts_cleared", "SLO alert clear events across all objectives.",
		nil, ev.Clears)
}

// fillTelemetry publishes the finalized recording into the result.
func (tb *testbed) fillTelemetry(r *Result) {
	tel := tb.tel
	r.TelemetryRecorder = tel.rec
	r.Telemetry = &TelemetryInfo{
		WindowMs: tb.spec.TelemetryWindow.Seconds() * 1e3,
		Windows:  len(tel.rec.Windows()),
		Series:   tel.rec.SeriesCount(),
	}
	r.LatencyProfiles = append(r.LatencyProfiles,
		latencyProfile("irq-delivery", "posted", tel.irqPosted),
		latencyProfile("irq-delivery", "emulated", tel.irqEmulated))
	for qi, h := range tel.resLats {
		r.LatencyProfiles = append(r.LatencyProfiles,
			latencyProfile("vq-residency", fmt.Sprintf("txq%d", qi), h))
	}
	r.LatencyProfiles = append(r.LatencyProfiles,
		latencyProfile("vcpu-wakeup", "", tel.wakeLat),
		latencyProfile("vhost-wakeup", "", tel.vhostWake))
}

func latencyProfile(class, label string, h *metrics.LogHistogram) LatencyProfile {
	return LatencyProfile{
		Class: class,
		Label: label,
		Count: h.Count(),
		Mean:  time.Duration(h.Mean()),
		P50:   time.Duration(h.Quantile(0.5)),
		P90:   time.Duration(h.Quantile(0.9)),
		P99:   time.Duration(h.Quantile(0.99)),
		P999:  time.Duration(h.Quantile(0.999)),
		Max:   time.Duration(h.Max()),
	}
}
