package es2

import (
	"math"
	"time"

	"es2/internal/enginestats"
	"es2/internal/telemetry"
)

// FabricSpec configures the rack fabric (see internal/fabric). Zero
// fields take the defaults noted per field.
type FabricSpec struct {
	// PortGbps is the per-host NIC/switch-port line rate (default 40).
	PortGbps float64
	// UplinkGbps is the switch's shared backplane rate; every
	// host-to-host frame crosses it once. Zero (the default) models a
	// non-blocking switch; a finite value models oversubscription.
	UplinkGbps float64
	// Delay is the port-to-port forwarding latency (default 4µs).
	Delay time.Duration
	// QueueCap bounds each egress port queue in frames (tail drop
	// beyond it; default 4096).
	QueueCap int
}

// ClusterWorkloadSpec parameterizes the cluster's scale workload:
// closed-loop RPC flows issued from client VMs and load-balanced
// round-robin across the server VMs on the remaining hosts, every
// request and response crossing the fabric.
type ClusterWorkloadSpec struct {
	// Flows is the total number of client flows (default 64 per client
	// VM). Each keeps one request outstanding.
	Flows int
	// ReqBytes and RespBytes size the messages (defaults 128 and
	// 1024).
	ReqBytes  int
	RespBytes int
	// ServiceCost is the server's per-request application CPU
	// (default 6µs).
	ServiceCost time.Duration
	// StartSpread staggers first requests uniformly over this span so
	// the warmup ramp is not a synchronized burst (default 2ms).
	StartSpread time.Duration

	// RequestTimeout arms a per-request deadline on every flow: an
	// expired request is retried with exponential backoff and
	// deterministic jitter. Zero disables deadlines — the legacy
	// closed loop — unless chaos is enabled, in which case it defaults
	// to 5ms (a chaotic cluster without client deadlines would wedge
	// every flow bound to a crashed host). Minimum 10µs when set.
	RequestTimeout time.Duration
	// RetryBackoff is the first retry delay (default RequestTimeout/4)
	// and doubles per consecutive timeout up to RetryBackoffMax
	// (default 8x RetryBackoff). Both require RequestTimeout.
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// FailoverAfter is the consecutive-timeout threshold at which a
	// flow is re-balanced from its (presumed dead) server host to a
	// surviving server VM (default 3 under chaos; requires
	// RequestTimeout and only acts when chaos is enabled, since only
	// the chaos controller knows which hosts are impaired).
	FailoverAfter int

	// Load, when non-zero, replaces the closed-loop RPC flows with the
	// open-loop generator: client VMs arm arrivals on the sim clock per
	// Load's classes and day profile, regardless of completions, so
	// offered load can exceed capacity and the rack can exhibit
	// queueing collapse. Flows, ReqBytes, RespBytes, StartSpread and
	// the retry knobs are ignored under load (sizes and stream counts
	// come from the load classes; open-loop requests are never
	// retried); ServiceCost still applies to the servers.
	// ClusterResult.Load reports offered-vs-completed, shed, backlog,
	// per-phase spectra and the collapse knee.
	Load LoadSpec
}

// ClusterSpec describes one simulated rack: Hosts independent machines
// — each with its own cores, CFS scheduler, KVM, vhost back-end and
// VMs — connected by one switch, with VM-to-VM RPC traffic between
// them. The same spec and seed reproduce bit-identical results.
type ClusterSpec struct {
	// Name labels the run in results.
	Name string
	// Seed drives all randomness.
	Seed uint64

	// Config is the event-path configuration installed on every host.
	Config Config
	// HostConfigs, when non-empty, overrides Config per host (length
	// must equal Hosts) — for mixed-fleet studies.
	HostConfigs []Config

	// DirectAssign models SR-IOV direct device assignment on every
	// host, exactly as ScenarioSpec.DirectAssign does for the single
	// host: guest doorbell writes reach the assigned VF without VM
	// exits, and the hybrid kick-polling machinery is ignored (there
	// are no kick exits to eliminate). Interrupt delivery still follows
	// each host's Config.
	DirectAssign bool
	// DirectHosts, when non-empty, selects direct assignment per host
	// (length must equal Hosts), overriding DirectAssign — for mixed
	// fleets where only some racks have VFs to hand out.
	DirectHosts []bool

	// Hosts is the number of machines (default 2). The first
	// ClientHosts run client VMs; the rest run server VMs.
	Hosts int
	// ClientHosts is the number of client machines (default Hosts/2,
	// at least 1; must leave at least one server host).
	ClientHosts int

	// VMsPerHost, VCPUs, VMCores, VhostCores and Queues mirror the
	// single-host ScenarioSpec fields, applied to every host
	// (defaults: 2 VMs, 1 vCPU, VMCores=VCPUs, VhostCores=min(VMs,4),
	// 1 queue).
	VMsPerHost int
	VCPUs      int
	VMCores    int
	VhostCores int
	Queues     int

	// Fabric configures the switch.
	Fabric FabricSpec
	// Workload configures the RPC scale workload.
	Workload ClusterWorkloadSpec

	// Telemetry enables the windowed recorder across the cluster: the
	// headline per-host series carry a host="hN" label, fabric-level
	// series cover the switch, and per-host RPC latency spectra are
	// reported in the aggregate Result's LatencyProfiles. Exports are
	// byte-identical under a fixed seed.
	Telemetry bool
	// TelemetryWindow is the sampling window (default 10ms).
	TelemetryWindow time.Duration
	// CPUProfile enables one simulated-CPU profiler per host
	// (PerHost[i].CPUProfile / CPUReport).
	CPUProfile bool
	// PathTrace enables per-host event-path span tracing
	// (PerHost[i].PathBreakdown).
	PathTrace bool
	// CritPath enables the causal critical-path analyzer across the
	// rack: every completed RPC threads one chain through both hosts
	// and the fabric, and ClusterResult.CriticalPath reports the
	// aggregate blame profile plus per-(stage, host) rows labeled
	// "hN", tail exemplars and what-if estimates. Purely
	// observational; results replay byte-identically.
	CritPath bool
	// CritPathExemplars is the number of slowest RPCs retained with
	// full cross-host timelines (default 8, max 1024).
	CritPathExemplars int
	// EngineStats enables wall-clock performance telemetry of the
	// simulator itself (event-loop throughput, heap behaviour, sampled
	// per-subsystem wall/allocation attribution) on the shared cluster
	// engine. It measures real time, not simulated time, so the
	// resulting ClusterResult.EngineReport is machine-dependent and
	// excluded from the deterministic JSON surface; simulated results
	// are byte-identical with it on or off.
	EngineStats bool
	// EngineStatsSampleN is the 1-in-N event sampling rate for the
	// per-subsystem attribution (default enginestats.DefaultSampleN).
	EngineStatsSampleN int

	// Faults configures deterministic micro-fault injection (wire
	// loss, lost kicks, stalls, …), applied per host from one forked
	// injector stream each.
	Faults FaultSpec
	// SLO declares service-level objectives over the rack's RPC
	// workload (latency vs. threshold, availability =
	// completions-vs-timeouts, goodput vs. floor), evaluated
	// streamingly with multi-window multi-burn-rate alert rules.
	// ClusterResult.SLO carries the compliance report and the
	// deterministic fire/clear alert timeline, with active chaos
	// faults and the top critical-path blame stage attached to each
	// alert as correlated context. Zero value: no SLOs.
	SLO SLOSpec
	// Chaos configures rack-scale macro-fault timelines: whole-host
	// crash/freeze windows, fabric link flaps and rate degradation,
	// and switch egress blackholing, drawn deterministically from the
	// seed and injected inside the measurement window. Chaos runs
	// report ClusterResult.Recovery.
	Chaos ChaosSpec
	// Check enables the runtime invariant checker on every host's
	// structures (also via ES2_CHECK).
	Check bool

	// Warmup precedes measurement (default 100ms of simulated time);
	// Duration is the measurement window (default 300ms).
	Warmup   time.Duration
	Duration time.Duration
}

// withClusterDefaults fills zero fields.
func (s ClusterSpec) withClusterDefaults() ClusterSpec {
	if s.Hosts <= 0 {
		s.Hosts = 2
	}
	if s.ClientHosts <= 0 {
		s.ClientHosts = s.Hosts / 2
		if s.ClientHosts < 1 {
			s.ClientHosts = 1
		}
	}
	if s.VMsPerHost <= 0 {
		s.VMsPerHost = 2
	}
	if s.VCPUs <= 0 {
		s.VCPUs = 1
	}
	if s.VMCores <= 0 {
		s.VMCores = s.VCPUs
	}
	if s.VhostCores <= 0 {
		s.VhostCores = s.VMsPerHost
		if s.VhostCores > 4 {
			s.VhostCores = 4
		}
	}
	if s.Queues <= 0 {
		s.Queues = 1
	}
	if s.Fabric.PortGbps <= 0 {
		s.Fabric.PortGbps = 40
	}
	if s.Fabric.Delay <= 0 {
		s.Fabric.Delay = 4 * time.Microsecond
	}
	if s.Fabric.QueueCap <= 0 {
		s.Fabric.QueueCap = 4096
	}
	w := &s.Workload
	if w.Load.Enabled() {
		w.Load = w.Load.WithDefaults()
		// Open-loop load replaces the closed-loop flows entirely; Flows
		// stays zero and the result reports the stream count instead.
		w.Flows = 0
	} else if w.Flows <= 0 {
		w.Flows = 64 * s.ClientHosts * s.VMsPerHost
	}
	if w.ReqBytes <= 0 {
		w.ReqBytes = 128
	}
	if w.RespBytes <= 0 {
		w.RespBytes = 1024
	}
	if w.ServiceCost <= 0 {
		w.ServiceCost = 6 * time.Microsecond
	}
	if w.StartSpread <= 0 {
		w.StartSpread = 2 * time.Millisecond
	}
	if s.Chaos.Enabled() {
		if w.RequestTimeout == 0 {
			w.RequestTimeout = 5 * time.Millisecond
		}
		if s.Chaos.MinGap == 0 && s.Chaos.MaxGap == 0 {
			s.Chaos.MinGap = 2 * time.Millisecond
			s.Chaos.MaxGap = 8 * time.Millisecond
		}
	}
	if w.RequestTimeout > 0 {
		if w.RetryBackoff == 0 {
			w.RetryBackoff = w.RequestTimeout / 4
		}
		if w.RetryBackoffMax == 0 {
			w.RetryBackoffMax = 8 * w.RetryBackoff
		}
		if w.FailoverAfter == 0 && s.Chaos.Enabled() {
			w.FailoverAfter = 3
		}
	}
	if s.Telemetry && s.TelemetryWindow <= 0 {
		s.TelemetryWindow = 10 * time.Millisecond
	}
	if s.CritPath && s.CritPathExemplars <= 0 {
		s.CritPathExemplars = 8
	}
	if s.EngineStats && s.EngineStatsSampleN <= 0 {
		s.EngineStatsSampleN = enginestats.DefaultSampleN
	}
	if s.Config.Hybrid && s.Config.Quota <= 0 {
		s.Config.Quota = 4
	}
	for i := range s.HostConfigs {
		if s.HostConfigs[i].Hybrid && s.HostConfigs[i].Quota <= 0 {
			s.HostConfigs[i].Quota = 4
		}
	}
	s.SLO = s.SLO.WithDefaults()
	if s.Warmup <= 0 {
		s.Warmup = 100 * time.Millisecond
	}
	if s.Duration <= 0 {
		s.Duration = 300 * time.Millisecond
	}
	return s
}

// Cluster-scale resource caps, on top of the per-host caps shared with
// ScenarioSpec.
const (
	maxHosts      = 64
	maxClusterVMs = 256
)

// validate checks a defaulted cluster spec.
func (s ClusterSpec) validate() error {
	if s.Hosts > maxHosts {
		return specErr("Hosts", "%d exceeds the supported maximum %d", s.Hosts, maxHosts)
	}
	if s.Hosts < 2 {
		return specErr("Hosts", "a cluster needs at least 2 hosts, got %d", s.Hosts)
	}
	if s.ClientHosts >= s.Hosts {
		return specErr("ClientHosts", "%d leaves no server host (Hosts=%d)", s.ClientHosts, s.Hosts)
	}
	if len(s.HostConfigs) > 0 && len(s.HostConfigs) != s.Hosts {
		return specErr("HostConfigs", "length %d does not match Hosts=%d", len(s.HostConfigs), s.Hosts)
	}
	if len(s.DirectHosts) > 0 && len(s.DirectHosts) != s.Hosts {
		return specErr("DirectHosts", "length %d does not match Hosts=%d", len(s.DirectHosts), s.Hosts)
	}
	if s.Hosts*s.VMsPerHost > maxClusterVMs {
		return specErr("VMsPerHost", "%d hosts x %d VMs exceeds the supported maximum %d",
			s.Hosts, s.VMsPerHost, maxClusterVMs)
	}
	if s.VMsPerHost > maxVMs {
		return specErr("VMsPerHost", "%d exceeds the supported maximum %d", s.VMsPerHost, maxVMs)
	}
	if s.VCPUs > maxVCPUs {
		return specErr("VCPUs", "%d exceeds the supported maximum %d", s.VCPUs, maxVCPUs)
	}
	if s.VMCores > maxCores {
		return specErr("VMCores", "%d exceeds the supported maximum %d", s.VMCores, maxCores)
	}
	if s.VhostCores > maxCores {
		return specErr("VhostCores", "%d exceeds the supported maximum %d", s.VhostCores, maxCores)
	}
	if s.VCPUs > s.VMCores*4 {
		return specErr("VCPUs", "%d vCPUs over %d cores exceeds supported multiplexing", s.VCPUs, s.VMCores)
	}
	if s.Queues > maxQueues {
		return specErr("Queues", "%d exceeds the supported maximum %d", s.Queues, maxQueues)
	}
	if s.CritPathExemplars < 0 || s.CritPathExemplars > 1024 {
		return specErr("CritPathExemplars", "%d outside [0, 1024]", s.CritPathExemplars)
	}
	if s.EngineStatsSampleN < 0 || s.EngineStatsSampleN > 1<<20 {
		return specErr("EngineStatsSampleN", "%d outside [0, %d]", s.EngineStatsSampleN, 1<<20)
	}

	f := s.Fabric
	if math.IsNaN(f.PortGbps) || math.IsInf(f.PortGbps, 0) || f.PortGbps > 1000 {
		return specErr("Fabric.PortGbps", "%g outside (0, 1000]", f.PortGbps)
	}
	if math.IsNaN(f.UplinkGbps) || math.IsInf(f.UplinkGbps, 0) || f.UplinkGbps < 0 || f.UplinkGbps > 100_000 {
		return specErr("Fabric.UplinkGbps", "%g outside [0, 100000]", f.UplinkGbps)
	}
	if f.Delay > time.Second {
		return specErr("Fabric.Delay", "%v exceeds the supported maximum 1s", f.Delay)
	}
	if f.QueueCap > maxBytes {
		return specErr("Fabric.QueueCap", "%d exceeds the supported maximum %d", f.QueueCap, maxBytes)
	}

	w := s.Workload
	if err := w.Load.Validate(); err != nil {
		return &SpecError{Field: "Workload.Load", Reason: err.Error()}
	}
	if w.Load.Enabled() {
		if s.Chaos.Enabled() {
			// Chaos recovery (timeouts, retries, failover) lives in the
			// closed-loop client; the open-loop generator never retries.
			return specErr("Workload.Load", "open-loop load and chaos are mutually exclusive")
		}
		if w.RequestTimeout > 0 {
			return specErr("Workload.RequestTimeout", "request deadlines apply to the closed-loop client only; open-loop load never retries")
		}
		// Every class's streams-times-fan-width flows must fit the
		// cluster flow budget.
		total := 0
		for i, cls := range w.Load.Classes {
			width := 1
			if cls.FanOut == "scatter" {
				width = cls.FanWidth
			}
			total += cls.Streams * width
			if total > maxCount {
				return specErr("Workload.Load", "Classes[%d]: total flow count exceeds the supported maximum %d", i, maxCount)
			}
		}
	}
	if w.Flows > maxCount {
		return specErr("Workload.Flows", "%d exceeds the supported maximum %d", w.Flows, maxCount)
	}
	if w.ReqBytes > maxBytes {
		return specErr("Workload.ReqBytes", "%d exceeds the supported maximum %d", w.ReqBytes, maxBytes)
	}
	if w.RespBytes > maxBytes {
		return specErr("Workload.RespBytes", "%d exceeds the supported maximum %d", w.RespBytes, maxBytes)
	}
	if w.ServiceCost > time.Second {
		return specErr("Workload.ServiceCost", "%v exceeds the supported maximum 1s", w.ServiceCost)
	}
	if w.StartSpread > maxDuration {
		return specErr("Workload.StartSpread", "%v exceeds the supported maximum %v", w.StartSpread, maxDuration)
	}
	if w.RequestTimeout != 0 && (w.RequestTimeout < 10*time.Microsecond || w.RequestTimeout > maxDuration) {
		return specErr("Workload.RequestTimeout", "%v outside [10µs, %v]", w.RequestTimeout, maxDuration)
	}
	if w.RetryBackoff < 0 || w.RetryBackoff > maxDuration {
		return specErr("Workload.RetryBackoff", "%v outside [0, %v]", w.RetryBackoff, maxDuration)
	}
	if w.RetryBackoffMax < 0 || w.RetryBackoffMax > maxDuration {
		return specErr("Workload.RetryBackoffMax", "%v outside [0, %v]", w.RetryBackoffMax, maxDuration)
	}
	if w.RequestTimeout == 0 && (w.RetryBackoff > 0 || w.RetryBackoffMax > 0) {
		return specErr("Workload.RetryBackoff", "retry backoff is set but RequestTimeout is zero")
	}
	if w.RetryBackoffMax > 0 && w.RetryBackoff > w.RetryBackoffMax {
		return specErr("Workload.RetryBackoffMax", "%v below RetryBackoff %v", w.RetryBackoffMax, w.RetryBackoff)
	}
	if w.FailoverAfter < 0 || w.FailoverAfter > maxCount {
		return specErr("Workload.FailoverAfter", "%d outside [0, %d]", w.FailoverAfter, maxCount)
	}
	if w.FailoverAfter > 0 && w.RequestTimeout == 0 {
		return specErr("Workload.FailoverAfter", "failover requires RequestTimeout")
	}

	if s.Warmup > maxDuration {
		return specErr("Warmup", "%v exceeds the supported maximum %v", s.Warmup, maxDuration)
	}
	if s.Duration > maxDuration {
		return specErr("Duration", "%v exceeds the supported maximum %v", s.Duration, maxDuration)
	}
	if s.Telemetry {
		if s.TelemetryWindow < 100*time.Microsecond {
			return specErr("TelemetryWindow", "%v below the supported minimum 100µs", s.TelemetryWindow)
		}
		if s.TelemetryWindow > maxDuration {
			return specErr("TelemetryWindow", "%v exceeds the supported maximum %v", s.TelemetryWindow, maxDuration)
		}
	}
	if err := s.Faults.Validate(); err != nil {
		return &SpecError{Field: "Faults", Reason: err.Error()}
	}
	totalCores := s.VMCores + s.VhostCores
	for _, c := range s.Faults.StormCores {
		if c < 0 || c >= totalCores {
			return specErr("Faults.StormCores", "core %d outside [0, %d) (per-host cores)", c, totalCores)
		}
	}
	if err := s.SLO.Validate(); err != nil {
		return &SpecError{Field: "SLO", Reason: err.Error()}
	}
	if err := s.Chaos.Validate(); err != nil {
		return &SpecError{Field: "Chaos", Reason: err.Error()}
	}
	if s.Chaos.Enabled() {
		// The whole timeline — every fault injected and recovered —
		// must fit the measurement window even in the worst draw, or
		// MTTR would be unmeasurable by construction.
		if end := s.Chaos.MaxTimelineEnd(); end > s.Duration {
			return specErr("Chaos", "worst-case fault timeline (%v) does not fit the %v measurement window", end, s.Duration)
		}
	}
	return nil
}

// Validate reports whether the cluster spec (after defaulting) is
// runnable; RunCluster calls it internally.
func (s ClusterSpec) Validate() error {
	return s.withClusterDefaults().validate()
}

// FabricPortReport is one switch port's traffic over the measurement
// window (port i is host i's NIC).
type FabricPortReport struct {
	Port        int    `json:"port"`
	Name        string `json:"name"`
	TxPkts      uint64 `json:"tx_pkts"`
	TxBytes     uint64 `json:"tx_bytes"`
	RxPkts      uint64 `json:"rx_pkts"`
	RxBytes     uint64 `json:"rx_bytes"`
	EgressDrops uint64 `json:"egress_drops"`
}

// FabricReport summarizes the switch over the measurement window.
type FabricReport struct {
	// Ports is the port count (= hosts).
	Ports int `json:"ports"`
	// Forwarded counts frames that reached an egress wire.
	Forwarded uint64 `json:"forwarded"`
	// RouteDrops and EgressDrops count frames lost in the fabric.
	RouteDrops  uint64 `json:"route_drops"`
	EgressDrops uint64 `json:"egress_drops"`
	// UplinkBytes is backplane traffic; UplinkUtilization is the
	// shared uplink's busy fraction of the window (0 when the switch
	// is non-blocking).
	UplinkBytes       uint64  `json:"uplink_bytes"`
	UplinkUtilization float64 `json:"uplink_utilization"`
	// PerPort lists per-host port traffic in host order.
	PerPort []FabricPortReport `json:"per_port"`
}

// FlowFairness summarizes the per-flow latency scalars across all
// client flows — the tail-vs-median spread the load balancer achieves.
type FlowFairness struct {
	// Flows is the number of flows that completed at least one request
	// in the window.
	Flows int `json:"flows"`
	// MeanOfMeans averages the per-flow mean latencies; MinMean and
	// MaxMean bound them; MaxMax is the worst single request anywhere.
	MeanOfMeans time.Duration `json:"mean_of_means_ns"`
	MinMean     time.Duration `json:"min_mean_ns"`
	MaxMean     time.Duration `json:"max_mean_ns"`
	MaxMax      time.Duration `json:"max_max_ns"`
}

// RecoveryFault is one injected chaos fault with its measured
// recovery. Times are milliseconds relative to the start of the
// measurement window.
type RecoveryFault struct {
	// Kind is the fault class (host_crash, host_freeze, link_flap,
	// link_degrade, egress_blackhole); Target names the victim ("h3"
	// for host faults, "port2" for fabric faults).
	Kind   string `json:"kind"`
	Target string `json:"target"`
	// StartMs/OutageMs locate the injected outage window.
	StartMs  float64 `json:"start_ms"`
	OutageMs float64 `json:"outage_ms"`
	// MTTRMs is the service-level mean-time-to-recover: fault start to
	// the first cluster-wide RPC completion at or after the outage
	// end. -1 when service never recovered inside the window.
	MTTRMs float64 `json:"mttr_ms"`
}

// RecoveryReport summarizes a chaos run's failure and recovery
// behaviour (ClusterResult.Recovery).
type RecoveryReport struct {
	// Faults lists every injected fault in timeline order.
	Faults []RecoveryFault `json:"faults"`

	// Injected tallies by kind.
	HostCrashes  uint64 `json:"host_crashes"`
	HostFreezes  uint64 `json:"host_freezes"`
	LinkFlaps    uint64 `json:"link_flaps"`
	LinkDegrades uint64 `json:"link_degrades"`
	Blackholes   uint64 `json:"blackholes"`

	// LinkDrops counts frames lost to down links across all ports;
	// BlackholeDrops frames silently discarded at blackholed egresses.
	LinkDrops      uint64 `json:"link_drops"`
	BlackholeDrops uint64 `json:"blackhole_drops"`

	// Availability is the fraction of 100 equal sub-windows of the
	// measurement window in which at least one RPC completed
	// cluster-wide; AvailableWindows/TotalWindows are the raw counts.
	Availability     float64 `json:"availability"`
	AvailableWindows int     `json:"available_windows"`
	TotalWindows     int     `json:"total_windows"`

	// DegradedSeconds is total simulated time with at least one fault
	// in effect; the goodput split reports completions per second
	// inside and outside those windows.
	DegradedSeconds   float64 `json:"degraded_seconds"`
	DegradedOpsPerSec float64 `json:"degraded_ops_per_sec"`
	HealthyOpsPerSec  float64 `json:"healthy_ops_per_sec"`

	// Client resilience totals across all flows.
	Timeouts      uint64 `json:"timeouts"`
	Retries       uint64 `json:"retries"`
	MigratedFlows uint64 `json:"migrated_flows"`
	// FlowsUnaccounted counts flows that neither completed a request
	// in the window nor migrated to a survivor — zero in any run whose
	// recovery machinery is keeping up.
	FlowsUnaccounted int `json:"flows_unaccounted"`
}

// ClusterResult carries the outcome of one cluster run: the aggregate
// over all hosts, one Result per host (client hosts carry the latency
// and throughput fields; every host carries its exit/TIG/vhost/IRQ
// metrics), and the fabric's view of the traffic.
type ClusterResult struct {
	Name   string `json:"name"`
	Config Config `json:"config"`
	// MeasuredSeconds is the measurement window length.
	MeasuredSeconds float64 `json:"measured_seconds"`
	// Hosts, VMs and Flows describe the built topology.
	Hosts int `json:"hosts"`
	VMs   int `json:"vms"`
	Flows int `json:"flows"`

	// Aggregate sums/merges across all hosts: exit rates and TIG over
	// every VM, vhost busy over every vhost core, RPC throughput and
	// the cluster-wide latency spectrum.
	Aggregate *Result `json:"aggregate"`
	// PerHost holds one Result per host, in host order, named
	// "<name>/hN".
	PerHost []*Result `json:"per_host"`
	// Fabric summarizes the switch.
	Fabric *FabricReport `json:"fabric"`
	// FlowFairness summarizes the per-flow latency spread.
	FlowFairness *FlowFairness `json:"flow_fairness,omitempty"`

	// CriticalPath is the rack-wide causal critical-path analysis
	// (CritPath runs): aggregate blame, per-(stage, host) rows labeled
	// "hN", tail exemplars with cross-host timelines, and what-if
	// estimates.
	CriticalPath *CriticalPath `json:"critical_path,omitempty"`

	// EngineReport carries wall-clock performance telemetry of the
	// simulator itself (EngineStats runs). It is machine-dependent by
	// nature, so — like the telemetry recorder — it is excluded from
	// the deterministic JSON surface.
	EngineReport *EngineReport `json:"-"`

	// Faults reports cluster-wide injection/recovery activity (nil for
	// fault-free runs); InvariantChecks counts checker sweeps.
	Faults          *FaultReport `json:"faults,omitempty"`
	InvariantChecks uint64       `json:"invariant_checks,omitempty"`

	// Recovery reports chaos-fault recovery behaviour (chaos runs
	// only): per-fault MTTR, availability windows, degraded-window
	// goodput and client resilience totals.
	Recovery *RecoveryReport `json:"recovery,omitempty"`

	// SLO is the service-level-objective report (SLO runs): run-wide
	// compliance per objective plus the deterministic fire/clear alert
	// timeline with correlated chaos/critical-path context. Part of
	// the deterministic JSON surface.
	SLO *SLOReport `json:"slo,omitempty"`

	// Load is the open-loop load report (Workload.Load runs):
	// offered-vs-completed totals, shed and backlog counts, per-phase
	// windows and the collapse knee. Part of the deterministic JSON
	// surface.
	Load *LoadReport `json:"load,omitempty"`

	// Telemetry summarizes the windowed recording (Telemetry runs);
	// the recorder itself is exported separately.
	Telemetry         *TelemetryInfo      `json:"telemetry,omitempty"`
	TelemetryRecorder *telemetry.Recorder `json:"-"`
}
