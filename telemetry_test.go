package es2

import (
	"bytes"
	"math"
	"testing"
	"time"
)

// telSpec is the canonical telemetry test scenario.
func telSpec() ScenarioSpec {
	s := short(Full(4), WorkloadSpec{Kind: NetperfTCPSend, MsgBytes: 1024})
	s.Telemetry = true
	return s
}

// faultedTelSpec adds deterministic fault injection on top.
func faultedTelSpec() ScenarioSpec {
	s := telSpec()
	s.Faults = FaultSpec{
		PacketLossProb: 0.002,
		LostKickProb:   0.001,
		PIOutageEvery:  40 * time.Millisecond,
		PIOutage:       2 * time.Millisecond,
	}
	return s
}

// exports renders both telemetry exports of one run.
func exports(t *testing.T, s ScenarioSpec) (prom, csv string) {
	t.Helper()
	r := mustRun(t, s)
	var p, c bytes.Buffer
	if err := r.TelemetryRecorder.WriteOpenMetrics(&p); err != nil {
		t.Fatal(err)
	}
	if err := r.TelemetryRecorder.WriteCSV(&c); err != nil {
		t.Fatal(err)
	}
	return p.String(), c.String()
}

func TestTelemetryExportsByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec ScenarioSpec
	}{
		{"plain", telSpec()},
		{"faulted", faultedTelSpec()},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p1, c1 := exports(t, tc.spec)
			p2, c2 := exports(t, tc.spec)
			if p1 != p2 {
				t.Error("OpenMetrics exposition differs between same-seed runs")
			}
			if c1 != c2 {
				t.Error("CSV export differs between same-seed runs")
			}
			if len(p1) == 0 || len(c1) == 0 {
				t.Fatal("empty export")
			}
		})
	}
}

func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	plain := telSpec()
	plain.Telemetry = false
	a := mustRun(t, plain)
	b := mustRun(t, telSpec())
	if a.TotalExitRate != b.TotalExitRate || a.TIG != b.TIG ||
		a.ThroughputMbps != b.ThroughputMbps || a.TxPkts != b.TxPkts ||
		a.RxPkts != b.RxPkts || a.VhostCPU != b.VhostCPU ||
		a.DevIRQRate != b.DevIRQRate {
		t.Fatalf("telemetry perturbed the simulation:\nplain: %+v\ntelem: %+v", a, b)
	}
	if a.TelemetryRecorder != nil || a.Telemetry != nil {
		t.Error("plain run carries telemetry state")
	}
	if b.TelemetryRecorder == nil || b.Telemetry == nil {
		t.Error("telemetry run lacks recorder or summary")
	}
}

// TestTelemetryReconcilesWithScalars checks the acceptance bar: the
// windowed series integrate to the Result's scalar aggregates within
// 0.1% — exit counts by reason against ExitRates x window, and the TIG
// scalar against the guest/host second series.
func TestTelemetryReconcilesWithScalars(t *testing.T) {
	r := mustRun(t, telSpec())
	rec := r.TelemetryRecorder
	window := r.MeasuredSeconds

	cols := rec.Columns()
	kinds := rec.Kinds()
	wins := rec.Windows()
	if len(wins) == 0 {
		t.Fatal("no telemetry windows")
	}
	sums := make([]float64, len(cols))
	for _, w := range wins {
		for i, v := range w.Values {
			sums[i] += v
		}
	}
	within := func(name string, got, want, tol float64) {
		t.Helper()
		if want == 0 {
			if got != 0 {
				t.Errorf("%s: series integrate to %v, scalar is 0", name, got)
			}
			return
		}
		if rel := math.Abs(got-want) / math.Abs(want); rel > tol {
			t.Errorf("%s: series integrate to %v, scalar implies %v (rel err %.4f)", name, got, want, rel)
		}
	}

	var guestSum, hostSum float64
	matched := 0
	for i, col := range cols {
		if kinds[i] != 0 { // only counters integrate
			switch col {
			case "es2_guest_seconds", "es2_host_seconds":
				t.Errorf("%s registered as non-counter", col)
			}
			continue
		}
		switch {
		case col == "es2_guest_seconds":
			guestSum = sums[i]
		case col == "es2_host_seconds":
			hostSum = sums[i]
		case col == "es2_dev_irqs":
			within(col, sums[i], r.DevIRQRate*window, 0.001)
		case len(col) > len("es2_exits{") && col[:len("es2_exits{")] == "es2_exits{":
			reason := col[len(`es2_exits{reason="`) : len(col)-2]
			rate, ok := r.ExitRates[reason]
			if !ok {
				t.Fatalf("series %q has no ExitRates entry", col)
			}
			within(col, sums[i], rate*window, 0.001)
			matched++
		}
		// Every counter's windowed deltas must also sum to its own
		// cumulative total — exactly, not within tolerance.
		if diff := math.Abs(sums[i] - rec.Total(col)); diff > 1e-9*math.Abs(rec.Total(col))+1e-12 {
			t.Errorf("%s: deltas sum to %v, Total is %v", col, sums[i], rec.Total(col))
		}
	}
	if matched == 0 {
		t.Fatal("no es2_exits series found")
	}
	tig := guestSum / (guestSum + hostSum)
	within("es2_tig", tig, r.TIG, 0.001)
}

func TestTelemetryLatencyProfiles(t *testing.T) {
	r := mustRun(t, telSpec())
	classes := map[string]bool{}
	for _, p := range r.LatencyProfiles {
		classes[p.Class] = true
		if p.Count > 0 {
			if p.P50 > p.P90 || p.P90 > p.P99 || p.P99 > p.P999 || p.P999 > p.Max {
				t.Errorf("%s/%s: percentiles not monotone: %+v", p.Class, p.Label, p)
			}
			if p.Mean <= 0 && p.Max > 0 {
				t.Errorf("%s/%s: zero mean with nonzero max", p.Class, p.Label)
			}
		}
	}
	for _, want := range []string{"irq-delivery", "vq-residency", "vcpu-wakeup", "vhost-wakeup"} {
		if !classes[want] {
			t.Errorf("latency class %q missing from profiles", want)
		}
	}
	// The ES2 full configuration posts interrupts and streams TCP: the
	// posted-IRQ and residency spectra must carry real observations.
	counts := map[string]uint64{}
	for _, p := range r.LatencyProfiles {
		counts[p.Class+"/"+p.Label] += p.Count
	}
	if counts["irq-delivery/posted"] == 0 {
		t.Error("posted irq-delivery spectrum is empty under the full config")
	}
	if counts["vq-residency/txq0"] == 0 {
		t.Error("vq-residency spectrum is empty under a TCP stream")
	}
	// Workload latency percentiles (satellite of the same histograms).
	m := mustRun(t, short(Full(4), WorkloadSpec{Kind: Memcached}))
	if m.P50Latency <= 0 || m.P50Latency > m.P90Latency ||
		m.P90Latency > m.P99Latency || m.P99Latency > m.P999Latency ||
		m.P999Latency > m.MaxLatency {
		t.Errorf("workload latency spectrum not monotone: p50=%v p90=%v p99=%v p99.9=%v max=%v",
			m.P50Latency, m.P90Latency, m.P99Latency, m.P999Latency, m.MaxLatency)
	}
}

func TestTelemetryWindowValidation(t *testing.T) {
	s := telSpec()
	s.TelemetryWindow = 10 * time.Microsecond
	if _, err := Run(s); err == nil {
		t.Error("sub-100µs telemetry window accepted")
	}
	s.TelemetryWindow = 50 * time.Millisecond
	r := mustRun(t, s)
	if r.Telemetry.WindowMs != 50 {
		t.Errorf("window %vms, want 50", r.Telemetry.WindowMs)
	}
	if r.Telemetry.Windows != 8 {
		t.Errorf("got %d windows over 400ms at 50ms, want 8", r.Telemetry.Windows)
	}
}
