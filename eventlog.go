package es2

import (
	"io"
	"log/slog"
	"sort"
)

// The ops event log: one JSON object per line (JSONL via log/slog),
// merging the run's chaos timeline with its SLO alert timeline into a
// single stream ordered by simulated time. Wall-clock timestamps are
// deliberately dropped — every record carries at_ms, milliseconds since
// the start of the measurement window — so the log is byte-identical
// across replays of the same spec and seed.

// logEvent is one merged record before rendering.
type logEvent struct {
	atMs  float64
	seq   int // input order, for a stable sort among ties
	level slog.Level
	typ   string
	attrs []slog.Attr
}

// WriteEventLog writes the merged fault/alert/recovery timeline as
// JSONL. Either report may be nil; an empty timeline writes nothing.
// Event types: fault_injected, fault_recovered (from the chaos recovery
// report) and alert_fire, alert_clear (from the SLO report).
func WriteEventLog(w io.Writer, slr *SLOReport, rec *RecoveryReport) error {
	var evs []logEvent
	if rec != nil {
		for _, f := range rec.Faults {
			evs = append(evs, logEvent{
				atMs:  f.StartMs,
				level: slog.LevelWarn,
				typ:   "fault_injected",
				attrs: []slog.Attr{
					slog.String("kind", f.Kind),
					slog.String("target", f.Target),
					slog.Float64("outage_ms", f.OutageMs),
				},
			})
			end := logEvent{
				atMs:  f.StartMs + f.OutageMs,
				level: slog.LevelInfo,
				typ:   "fault_recovered",
				attrs: []slog.Attr{
					slog.String("kind", f.Kind),
					slog.String("target", f.Target),
					slog.Float64("mttr_ms", f.MTTRMs),
				},
			}
			if f.MTTRMs < 0 {
				// The outage ended but no completion confirmed recovery
				// inside the window.
				end.level = slog.LevelWarn
			}
			evs = append(evs, end)
		}
	}
	if slr != nil {
		for _, e := range slr.Events {
			le := logEvent{
				atMs:  e.AtMs,
				level: slog.LevelInfo,
				typ:   "alert_" + e.Type,
				attrs: []slog.Attr{
					slog.String("objective", e.Objective),
					slog.String("kind", e.Kind),
					slog.String("rule", e.Rule),
					slog.Float64("burn_rate", e.BurnRate),
					slog.Float64("burn_short", e.BurnShort),
				},
			}
			if e.Type == "fire" {
				le.level = slog.LevelError
			}
			if len(e.ActiveFaults) > 0 {
				faults := make([]any, len(e.ActiveFaults))
				for i, f := range e.ActiveFaults {
					faults[i] = f
				}
				le.attrs = append(le.attrs, slog.Any("active_faults", faults))
			}
			if e.BlameStage != "" {
				le.attrs = append(le.attrs, slog.String("blame_stage", e.BlameStage))
			}
			evs = append(evs, le)
		}
	}
	for i := range evs {
		evs[i].seq = i
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].atMs != evs[j].atMs {
			return evs[i].atMs < evs[j].atMs
		}
		return evs[i].seq < evs[j].seq
	})

	var werr error
	cw := &countingWriter{w: w, err: &werr}
	lg := slog.New(slog.NewJSONHandler(cw, &slog.HandlerOptions{
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			// Drop the wall-clock timestamp: simulated time (at_ms) is
			// the only clock, keeping replays byte-identical.
			if len(groups) == 0 && a.Key == slog.TimeKey {
				return slog.Attr{}
			}
			return a
		},
	}))
	for _, e := range evs {
		attrs := append([]slog.Attr{slog.Float64("at_ms", e.atMs)}, e.attrs...)
		lg.LogAttrs(nil, e.level, e.typ, attrs...)
		if werr != nil {
			return werr
		}
	}
	return werr
}

// countingWriter latches the first write error (slog's handler drops
// them on the floor).
type countingWriter struct {
	w   io.Writer
	err *error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	if err != nil && *c.err == nil {
		*c.err = err
	}
	return n, err
}
