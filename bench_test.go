package es2_test

// One benchmark per table and figure of the paper's evaluation. Each
// runs the corresponding experiment scenario set (with a shortened
// measurement window so the full suite stays tractable) and reports
// the headline quantities via b.ReportMetric:
//
//	go test -bench=. -benchmem
//
// For the full-length regeneration with the paper-style tables, use
// cmd/es2bench instead.

import (
	"testing"
	"time"

	"es2"
	"es2/experiments"
)

// trim shortens an experiment's scenarios for benchmarking.
func trim(e experiments.Experiment) experiments.Experiment {
	for i := range e.Specs {
		e.Specs[i].Warmup = 200 * time.Millisecond
		if e.Specs[i].Duration > 600*time.Millisecond {
			e.Specs[i].Duration = 600 * time.Millisecond
		}
	}
	return e
}

// runExperiment executes the experiment once per benchmark iteration
// and returns the last iteration's results.
func runExperiment(b *testing.B, e experiments.Experiment) []*es2.Result {
	b.Helper()
	var results []*es2.Result
	var err error
	for i := 0; i < b.N; i++ {
		results, err = es2.RunMany(e.Specs, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	return results
}

// find returns the first result whose scenario name contains the
// substring; substrings that equal a configuration label ("Baseline",
// "PI", "PI+H", "PI+H+R") match on the configuration name exactly.
func find(b *testing.B, rs []*es2.Result, sub string) *es2.Result {
	b.Helper()
	switch sub {
	case "Baseline", "PI", "PI+H", "PI+H+R":
		for _, r := range rs {
			if r.Config.Name() == sub {
				return r
			}
		}
	default:
		for _, r := range rs {
			if contains(r.Name, sub) {
				return r
			}
		}
	}
	b.Fatalf("no result named *%s*", sub)
	return nil
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// BenchmarkTableI regenerates Table I: the VM-exit-cause breakdown for
// TCP sending, Baseline vs PI.
func BenchmarkTableI(b *testing.B) {
	rs := runExperiment(b, trim(experiments.TableI()))
	base, pi := rs[0], rs[1]
	b.ReportMetric(base.TotalExitRate, "base-exits/s")
	b.ReportMetric(base.IOExitRate/base.TotalExitRate*100, "base-io-share-%")
	b.ReportMetric(pi.IOExitRate, "pi-io-exits/s")
	b.ReportMetric(pi.ExitRates["APICAccess"], "pi-apic-exits/s")
}

// BenchmarkFig4aQuotaUDP regenerates the UDP quota sweep.
func BenchmarkFig4aQuotaUDP(b *testing.B) {
	rs := runExperiment(b, trim(experiments.Fig4a()))
	b.ReportMetric(find(b, rs, "size256/notification").IOExitRate, "io-exits-off/s")
	b.ReportMetric(find(b, rs, "size256/quota32").IOExitRate, "io-exits-q32/s")
	b.ReportMetric(find(b, rs, "size256/quota8").IOExitRate, "io-exits-q8/s")
}

// BenchmarkFig4bQuotaTCP regenerates the TCP quota sweep.
func BenchmarkFig4bQuotaTCP(b *testing.B) {
	rs := runExperiment(b, trim(experiments.Fig4b()))
	b.ReportMetric(find(b, rs, "notification").IOExitRate, "io-exits-off/s")
	b.ReportMetric(find(b, rs, "quota8").IOExitRate, "io-exits-q8/s")
	b.ReportMetric(find(b, rs, "quota4").IOExitRate, "io-exits-q4/s")
}

// BenchmarkFig5aSendExits regenerates the send-side exit breakdown.
func BenchmarkFig5aSendExits(b *testing.B) {
	rs := runExperiment(b, trim(experiments.Fig5a()))
	b.ReportMetric(100*find(b, rs, "TCP/Baseline").TIG, "tcp-base-tig-%")
	b.ReportMetric(100*find(b, rs, "TCP/PI+H").TIG, "tcp-pih-tig-%")
	b.ReportMetric(100*find(b, rs, "UDP/PI+H").TIG, "udp-pih-tig-%")
}

// BenchmarkFig5bReceiveExits regenerates the receive-side breakdown.
func BenchmarkFig5bReceiveExits(b *testing.B) {
	rs := runExperiment(b, trim(experiments.Fig5b()))
	b.ReportMetric(100*find(b, rs, "TCP/Baseline").TIG, "tcp-base-tig-%")
	b.ReportMetric(100*find(b, rs, "TCP/PI").TIG, "tcp-pi-tig-%")
	b.ReportMetric(find(b, rs, "TCP/PI+H").IOExitRate, "tcp-pih-io/s")
	b.ReportMetric(100*find(b, rs, "UDP/PI").TIG, "udp-pi-tig-%")
}

// BenchmarkFig6aThroughputSend regenerates the send throughput sweep
// (1024B column).
func BenchmarkFig6aThroughputSend(b *testing.B) {
	e := trim(experiments.Fig6a())
	// Keep only the 1024B column for benchmark time.
	var specs []es2.ScenarioSpec
	for _, s := range e.Specs {
		if contains(s.Name, "size1024") {
			specs = append(specs, s)
		}
	}
	e.Specs = specs
	rs := runExperiment(b, e)
	base := find(b, rs, "Baseline")
	full := find(b, rs, "PI+H+R")
	b.ReportMetric(base.ThroughputMbps, "base-Mbps")
	b.ReportMetric(full.ThroughputMbps, "full-Mbps")
	b.ReportMetric(full.ThroughputMbps/base.ThroughputMbps, "speedup-x")
}

// BenchmarkFig6bThroughputReceive regenerates the receive throughput
// sweep (1024B column).
func BenchmarkFig6bThroughputReceive(b *testing.B) {
	e := trim(experiments.Fig6b())
	var specs []es2.ScenarioSpec
	for _, s := range e.Specs {
		if contains(s.Name, "size1024") {
			specs = append(specs, s)
		}
	}
	e.Specs = specs
	rs := runExperiment(b, e)
	pih := find(b, rs, "PI+H")
	full := find(b, rs, "PI+H+R")
	b.ReportMetric(pih.ThroughputMbps, "pih-Mbps")
	b.ReportMetric(full.ThroughputMbps, "full-Mbps")
	b.ReportMetric(full.ThroughputMbps/pih.ThroughputMbps, "redir-gain-x")
}

// BenchmarkFig7PingRTT regenerates the ping RTT comparison.
func BenchmarkFig7PingRTT(b *testing.B) {
	e := experiments.Fig7()
	for i := range e.Specs {
		e.Specs[i].Duration = 2 * time.Second
		e.Specs[i].Workload.PingInterval = 25 * time.Millisecond
	}
	rs := runExperiment(b, e)
	base := find(b, rs, "Baseline")
	full := find(b, rs, "PI+H+R")
	b.ReportMetric(float64(base.MeanLatency)/1e6, "base-rtt-ms")
	b.ReportMetric(float64(base.MaxLatency)/1e6, "base-max-ms")
	b.ReportMetric(float64(full.MeanLatency)/1e6, "full-rtt-ms")
}

// BenchmarkFig8aMemcached regenerates the Memcached comparison.
func BenchmarkFig8aMemcached(b *testing.B) {
	rs := runExperiment(b, trim(experiments.Fig8a()))
	base := find(b, rs, "Baseline")
	full := find(b, rs, "PI+H+R")
	b.ReportMetric(base.OpsPerSec, "base-ops/s")
	b.ReportMetric(full.OpsPerSec, "full-ops/s")
	b.ReportMetric(full.OpsPerSec/base.OpsPerSec, "speedup-x")
}

// BenchmarkFig8bApache regenerates the Apache comparison.
func BenchmarkFig8bApache(b *testing.B) {
	rs := runExperiment(b, trim(experiments.Fig8b()))
	base := find(b, rs, "Baseline")
	full := find(b, rs, "PI+H+R")
	b.ReportMetric(base.OpsPerSec, "base-req/s")
	b.ReportMetric(full.OpsPerSec, "full-req/s")
	b.ReportMetric(full.OpsPerSec/base.OpsPerSec, "speedup-x")
}

// BenchmarkFig9Httperf regenerates the connection-time crossover (the
// 2200 conn/s column, where the baseline has collapsed and ES2 has
// not).
func BenchmarkFig9Httperf(b *testing.B) {
	e := trim(experiments.Fig9())
	var specs []es2.ScenarioSpec
	for _, s := range e.Specs {
		if contains(s.Name, "rate2200") {
			specs = append(specs, s)
		}
	}
	e.Specs = specs
	rs := runExperiment(b, e)
	base := find(b, rs, "Baseline")
	full := find(b, rs, "PI+H+R")
	b.ReportMetric(float64(base.MeanLatency)/1e6, "base-conn-ms")
	b.ReportMetric(float64(full.MeanLatency)/1e6, "full-conn-ms")
}

// --- extension / ablation benchmarks (beyond the paper's figures) ---

// BenchmarkSRIOV runs the Section VII extension: ES2 on direct device
// assignment.
func BenchmarkSRIOV(b *testing.B) {
	rs := runExperiment(b, trim(experiments.SRIOV()))
	b.ReportMetric(find(b, rs, "sriov/tcp/Baseline").ExitRates["APICAccess"], "base-eoi-exits/s")
	b.ReportMetric(find(b, rs, "sriov/tcp/VT-d-PI").TotalExitRate, "vtdpi-exits/s")
	b.ReportMetric(float64(find(b, rs, "sriov/ping/VT-d-PI+R").MeanLatency)/1e6, "redir-rtt-ms")
}

// BenchmarkRedirectPolicies compares the redirection target policies.
func BenchmarkRedirectPolicies(b *testing.B) {
	e := experiments.PolicyAblation()
	for i := range e.Specs {
		e.Specs[i].Warmup = 200 * time.Millisecond
		e.Specs[i].Duration = time.Second
	}
	rs := runExperiment(b, e)
	b.ReportMetric(float64(find(b, rs, "policy/least-loaded").MeanLatency)/1e6, "least-loaded-ms")
	b.ReportMetric(float64(find(b, rs, "policy/offline-tail").MeanLatency)/1e6, "offline-tail-ms")
}

// BenchmarkModeration runs the Section II-C interrupt-moderation
// trade-off.
func BenchmarkModeration(b *testing.B) {
	rs := runExperiment(b, trim(experiments.ModerationAblation()))
	b.ReportMetric(float64(find(b, rs, "moderation/ping/coalesced").MeanLatency)/1e6, "coalesced-rtt-ms")
	b.ReportMetric(find(b, rs, "moderation/send/coalesced").ThroughputMbps, "coalesced-Mbps")
	b.ReportMetric(find(b, rs, "moderation/send/es2").ThroughputMbps, "es2-Mbps")
}

// BenchmarkStacking measures the no-online-sibling probability that
// motivates the offline-list prediction.
func BenchmarkStacking(b *testing.B) {
	e := experiments.StackingStudy()
	for i := range e.Specs {
		e.Specs[i].Duration = time.Second
	}
	rs := runExperiment(b, e)
	b.ReportMetric(100*rs[len(rs)-1].OfflinePredictRate, "4vm-no-online-%")
}

// BenchmarkPathTraceOff / BenchmarkPathTraceOn measure the wall-clock
// cost of the event-path span tracer on the same scenario. The Off
// variant establishes that a disabled tracer is free (every hook is a
// nil-receiver no-op); compare:
//
//	go test -bench=PathTrace -benchtime=5x
func benchPathTrace(b *testing.B, on bool) {
	spec := es2.ScenarioSpec{
		Name: "bench", Seed: 7, Config: es2.Full(0),
		Workload: es2.WorkloadSpec{Kind: es2.NetperfUDPSend, MsgBytes: 1024},
		Warmup:   200 * time.Millisecond, Duration: 600 * time.Millisecond,
		PathTrace: on,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := es2.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		if on && len(r.PathBreakdown) == 0 {
			b.Fatal("tracer on but no breakdown")
		}
		if !on && len(r.PathBreakdown) != 0 {
			b.Fatal("tracer off but breakdown filled")
		}
	}
}

func BenchmarkPathTraceOff(b *testing.B) { benchPathTrace(b, false) }
func BenchmarkPathTraceOn(b *testing.B)  { benchPathTrace(b, true) }
