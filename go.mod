module es2

go 1.22
