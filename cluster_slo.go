package es2

import (
	"es2/internal/sim"
	"es2/internal/slo"
	"es2/internal/workloads"
)

// Cluster SLO wiring: the evaluator watches rack-wide counters the
// simulation already maintains — the cluster latency spectrum and the
// RPC clients' completion/timeout tallies — so an SLO run replays
// byte-identically to a plain run of the same spec.
//
// SLI mapping for a cluster:
//
//   - latency:       bad = cluster-wide RPCs slower than Threshold
//   - availability:  bad = client request deadlines expired (timeouts),
//     total = completions + timeouts
//   - goodput:       completions per second vs MinOpsPerSec
//
// Under open-loop load (Workload.Load) the closed-loop client does not
// exist, so the availability SLI becomes shed-vs-offered — the
// generator's drop counter is exactly the "request the system turned
// away" a datacenter availability SLO measures — and goodput counts
// open-loop completions. The latency mapping is unchanged (the
// open-loop clients observe into the same cluster spectrum).
//
// When chaos is on, alert events carry the list of macro-faults in
// effect at fire/clear time, correlating each breach with its probable
// cause.

// sumClusterClients folds one RPCClient counter across every client VM
// of the rack.
func (cb *clusterBed) sumClusterClients(get func(*workloads.RPCClient) uint64) float64 {
	var n uint64
	for _, h := range cb.hosts {
		for _, c := range h.clients {
			n += get(c)
		}
	}
	return float64(n)
}

// sumClusterLoads folds one open-loop client counter across every
// client VM of the rack.
func (cb *clusterBed) sumClusterLoads(get func(*workloads.OpenLoopClient) uint64) float64 {
	var n uint64
	for _, h := range cb.hosts {
		for _, c := range h.loads {
			n += get(c)
		}
	}
	return float64(n)
}

// setupClusterSLO builds and binds the streaming evaluator. Called at
// warmup end (before telemetry registration); Start snapshots counter
// baselines, so warmup-era traffic never charges the error budget.
func (cb *clusterBed) setupClusterSLO() {
	ctx := slo.Context{BlameStage: cb.crit.TopStage}
	if cb.chaos != nil {
		ctx.ActiveFaults = cb.chaos.activeFaults
	}
	ev := slo.New(cb.spec.SLO, ctx)
	for i, o := range cb.spec.SLO.Objectives {
		switch o.Kind {
		case slo.KindLatency:
			h, thr := cb.clusterLat, sim.DurationOf(o.Threshold)
			ev.BindCounters(i,
				func() float64 { return float64(h.Count()) },
				func() float64 { return float64(h.CountAbove(thr)) })
		case slo.KindAvailability:
			if cb.loadRT != nil {
				ev.BindCounters(i, func() float64 {
					return cb.sumClusterLoads(func(c *workloads.OpenLoopClient) uint64 { return c.Offered })
				}, func() float64 {
					return cb.sumClusterLoads(func(c *workloads.OpenLoopClient) uint64 { return c.Shed })
				})
				break
			}
			bad := func() float64 {
				return cb.sumClusterClients(func(c *workloads.RPCClient) uint64 { return c.Timeouts })
			}
			ev.BindCounters(i, func() float64 {
				return cb.sumClusterClients(func(c *workloads.RPCClient) uint64 { return c.Completed }) + bad()
			}, bad)
		case slo.KindGoodput:
			if cb.loadRT != nil {
				ev.BindGoodput(i, func() float64 {
					return cb.sumClusterLoads(func(c *workloads.OpenLoopClient) uint64 { return c.Completed })
				})
				break
			}
			ev.BindGoodput(i, func() float64 {
				return cb.sumClusterClients(func(c *workloads.RPCClient) uint64 { return c.Completed })
			})
		}
	}
	cb.sloEval = ev
}
