package es2

import (
	"fmt"
	"math"
	"time"
)

// SpecError describes one invalid ScenarioSpec field. Run returns it
// (wrapped in nothing) for every bad spec; internal invariant
// violations, by contrast, remain panics.
type SpecError struct {
	Field  string
	Reason string
}

// Error implements error.
func (e *SpecError) Error() string {
	return fmt.Sprintf("es2: invalid spec: %s: %s", e.Field, e.Reason)
}

func specErr(field, format string, args ...any) error {
	return &SpecError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// Resource caps. They bound simulation memory and run time, not the
// model: a spec inside these limits always builds.
const (
	maxVMs      = 32
	maxVCPUs    = 32
	maxCores    = 32
	maxQueues   = 16
	maxThreads  = 64
	maxBytes    = 1 << 20
	maxCount    = 1 << 16
	maxRate     = 1e9 // events/s; keeps pacing intervals >= 1ns
	maxDuration = time.Hour
)

// validate checks a defaulted spec. It is called by Run after
// withDefaults, so zero-value fields have already been filled; what
// remains invalid here is genuinely out of range (negative sizes
// cannot occur — withDefaults replaces non-positive values).
func (s ScenarioSpec) validate() error {
	if s.VMs > maxVMs {
		return specErr("VMs", "%d exceeds the supported maximum %d", s.VMs, maxVMs)
	}
	if s.VCPUs > maxVCPUs {
		return specErr("VCPUs", "%d exceeds the supported maximum %d", s.VCPUs, maxVCPUs)
	}
	if s.VMCores > maxCores {
		return specErr("VMCores", "%d exceeds the supported maximum %d", s.VMCores, maxCores)
	}
	if s.VhostCores > maxCores {
		return specErr("VhostCores", "%d exceeds the supported maximum %d", s.VhostCores, maxCores)
	}
	if s.VCPUs > s.VMCores*4 {
		return specErr("VCPUs", "%d vCPUs over %d cores exceeds supported multiplexing", s.VCPUs, s.VMCores)
	}
	if s.Queues > maxQueues {
		return specErr("Queues", "%d exceeds the supported maximum %d", s.Queues, maxQueues)
	}
	if s.Sidecore && s.Config.Hybrid {
		return specErr("Sidecore", "sidecore polling and the hybrid scheme are mutually exclusive")
	}
	if s.Config.Hybrid && s.Config.Quota > maxCount {
		return specErr("Config.Quota", "%d exceeds the supported maximum %d", s.Config.Quota, maxCount)
	}
	if s.CoalesceCount < 0 || s.CoalesceCount > 4096 {
		return specErr("CoalesceCount", "%d outside [0, 4096]", s.CoalesceCount)
	}
	if s.CoalesceTimer < 0 || s.CoalesceTimer > time.Second {
		return specErr("CoalesceTimer", "%v outside [0, 1s]", s.CoalesceTimer)
	}
	if s.TraceCapacity < 0 || s.TraceCapacity > maxBytes {
		return specErr("TraceCapacity", "%d outside [0, %d]", s.TraceCapacity, maxBytes)
	}
	if s.CritPathExemplars < 0 || s.CritPathExemplars > 1024 {
		return specErr("CritPathExemplars", "%d outside [0, 1024]", s.CritPathExemplars)
	}
	if s.EngineStatsSampleN < 0 || s.EngineStatsSampleN > 1<<20 {
		return specErr("EngineStatsSampleN", "%d outside [0, %d]", s.EngineStatsSampleN, 1<<20)
	}
	if s.Warmup > maxDuration {
		return specErr("Warmup", "%v exceeds the supported maximum %v", s.Warmup, maxDuration)
	}
	if s.Duration > maxDuration {
		return specErr("Duration", "%v exceeds the supported maximum %v", s.Duration, maxDuration)
	}
	if s.Telemetry {
		// The floor keeps the number of windows (and export size)
		// bounded; withDefaults has already filled the zero value.
		if s.TelemetryWindow < 100*time.Microsecond {
			return specErr("TelemetryWindow", "%v below the supported minimum 100µs", s.TelemetryWindow)
		}
		if s.TelemetryWindow > maxDuration {
			return specErr("TelemetryWindow", "%v exceeds the supported maximum %v", s.TelemetryWindow, maxDuration)
		}
	}

	w := s.Workload
	if w.Kind < IdleBurn || w.Kind > Httperf {
		return specErr("Workload.Kind", "unknown workload kind %d", w.Kind)
	}
	if w.MsgBytes > maxBytes {
		return specErr("Workload.MsgBytes", "%d exceeds the supported maximum %d", w.MsgBytes, maxBytes)
	}
	if w.Threads > maxThreads {
		return specErr("Workload.Threads", "%d exceeds the supported maximum %d", w.Threads, maxThreads)
	}
	if w.Window > maxBytes {
		return specErr("Workload.Window", "%d exceeds the supported maximum %d", w.Window, maxBytes)
	}
	if w.PageBytes > maxBytes {
		return specErr("Workload.PageBytes", "%d exceeds the supported maximum %d", w.PageBytes, maxBytes)
	}
	if w.Concurrency > maxCount {
		return specErr("Workload.Concurrency", "%d exceeds the supported maximum %d", w.Concurrency, maxCount)
	}
	if w.Conns > maxCount {
		return specErr("Workload.Conns", "%d exceeds the supported maximum %d", w.Conns, maxCount)
	}
	// Rates must be finite and small enough that a pacing interval of
	// 1e9/rate nanoseconds stays positive — a zero interval would spin
	// the event loop at one instant forever. NaN slips through the
	// withDefaults <=0 checks (NaN compares false), so test explicitly.
	for _, rc := range []struct {
		name string
		v    float64
	}{
		{"Workload.UDPRatePPS", w.UDPRatePPS},
		{"Workload.ConnRate", w.ConnRate},
		{"Workload.SendRatePPS", w.SendRatePPS},
	} {
		if math.IsNaN(rc.v) || math.IsInf(rc.v, 0) {
			return specErr(rc.name, "must be finite, got %v", rc.v)
		}
		if rc.v > maxRate {
			return specErr(rc.name, "%g exceeds the supported maximum %g", rc.v, maxRate)
		}
	}
	if w.PingInterval > maxDuration {
		return specErr("Workload.PingInterval", "%v exceeds the supported maximum %v", w.PingInterval, maxDuration)
	}
	if w.ServiceCost > time.Second {
		return specErr("Workload.ServiceCost", "%v exceeds the supported maximum 1s", w.ServiceCost)
	}

	if err := s.SLO.Validate(); err != nil {
		return &SpecError{Field: "SLO", Reason: err.Error()}
	}
	if s.SLO.Enabled() {
		// Latency and goodput objectives need a workload that measures
		// request completions; availability needs wire traffic at all.
		for i, o := range s.SLO.Objectives {
			switch o.Kind {
			case SLOLatency, SLOGoodput:
				switch w.Kind {
				case Ping, Memcached, Apache, Httperf:
				default:
					return specErr("SLO", "Objectives[%d]: %s objectives need a request workload (ping, memcached, apache, httperf), got %v", i, o.Kind, w.Kind)
				}
			case SLOAvailability:
				if w.Kind == IdleBurn {
					return specErr("SLO", "Objectives[%d]: availability objectives need an I/O workload, got %v", i, w.Kind)
				}
			}
		}
	}
	if err := s.Load.Validate(); err != nil {
		return &SpecError{Field: "Load", Reason: err.Error()}
	}
	if s.Load.Enabled() {
		// The open-loop generator replaces Memcached's closed-loop
		// memaslap; other workloads keep their own generators. Fan-out
		// needs multiple server VMs — there is one host under test.
		if w.Kind != Memcached {
			return specErr("Load", "open-loop load requires the memcached workload, got %v", w.Kind)
		}
		for i, cls := range s.Load.Classes {
			if cls.FanOut != "" && cls.FanOut != "single" {
				return specErr("Load", "Classes[%d]: fan-out %q needs a cluster of server VMs; single-host runs support \"single\" only", i, cls.FanOut)
			}
		}
		if s.Load.TotalStreams() > maxCount {
			return specErr("Load", "total stream count %d exceeds the supported maximum %d", s.Load.TotalStreams(), maxCount)
		}
	}
	if err := s.Faults.Validate(); err != nil {
		return &SpecError{Field: "Faults", Reason: err.Error()}
	}
	totalCores := s.VMCores + s.VhostCores
	for _, c := range s.Faults.StormCores {
		if c < 0 || c >= totalCores {
			return specErr("Faults.StormCores", "core %d outside [0, %d)", c, totalCores)
		}
	}
	return nil
}
