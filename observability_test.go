package es2

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// shortPath returns a fast spec with event-path span tracing enabled.
func shortPath(cfg Config, w WorkloadSpec) ScenarioSpec {
	s := short(cfg, w)
	s.Warmup, s.Duration = 100*time.Millisecond, 200*time.Millisecond
	s.PathTrace = true
	return s
}

func findStage(r *Result, stage, mech string) *PathStage {
	for i := range r.PathBreakdown {
		if r.PathBreakdown[i].Stage == stage && r.PathBreakdown[i].Mechanism == mech {
			return &r.PathBreakdown[i]
		}
	}
	return nil
}

func TestPathBreakdownMechanismSplit(t *testing.T) {
	// The breakdown's point: showing WHICH mechanism served each stage.
	// Under the baseline every doorbell kick traps, so the notify stage
	// is exit-driven; under ES2's hybrid polling the worker picks kicks
	// up without exits, so the same stage flips to polled.
	w := WorkloadSpec{Kind: NetperfUDPSend, MsgBytes: 1024}
	base := mustRun(t, shortPath(Baseline(), w))
	full := mustRun(t, shortPath(Full(0), w))

	if len(base.PathBreakdown) == 0 || len(full.PathBreakdown) == 0 {
		t.Fatal("PathTrace produced no breakdown")
	}
	be := findStage(base, "notify", "exit")
	if be == nil || be.Count == 0 {
		t.Fatalf("baseline lacks exit-driven notify spans: %+v", base.PathBreakdown)
	}
	if be.Mean <= 0 || be.P99 < be.P50 || be.Max < be.P99 {
		t.Fatalf("implausible notify/exit stats: %+v", *be)
	}
	if fp := findStage(full, "notify", "polled"); fp == nil || fp.Count == 0 {
		t.Fatalf("full config lacks polled notify spans: %+v", full.PathBreakdown)
	}
	if fe := findStage(full, "notify", "exit"); fe != nil {
		t.Fatalf("full config still shows exit-driven kicks: %+v", *fe)
	}

	// Stage coverage: the TX path must at least cross notify and
	// backend-tx, and the breakdown must not repeat a cell.
	if findStage(base, "backend-tx", "") == nil {
		t.Fatalf("baseline lacks backend-tx spans: %+v", base.PathBreakdown)
	}
	seen := map[[2]string]bool{}
	for _, st := range base.PathBreakdown {
		k := [2]string{st.Stage, st.Mechanism}
		if seen[k] {
			t.Fatalf("duplicate breakdown cell %v", k)
		}
		seen[k] = true
	}
}

func TestPathBreakdownSignalMechanisms(t *testing.T) {
	// RX-heavy workload exercises the interrupt-delivery stages: the
	// baseline injects via the emulated LAPIC, ES2 posts in hardware.
	w := WorkloadSpec{Kind: NetperfUDPRecv, MsgBytes: 1024}
	base := mustRun(t, shortPath(Baseline(), w))
	full := mustRun(t, shortPath(Full(0), w))

	if s := findStage(base, "signal", "emulated"); s == nil || s.Count == 0 {
		t.Fatalf("baseline lacks emulated signal spans: %+v", base.PathBreakdown)
	}
	if s := findStage(full, "signal", "posted"); s == nil || s.Count == 0 {
		t.Fatalf("full config lacks posted signal spans: %+v", full.PathBreakdown)
	}
	for _, want := range []string{"backend-rx", "ring-wait", "deliver"} {
		if s := findStage(full, want, ""); s == nil || s.Count == 0 {
			t.Fatalf("full config lacks %s spans: %+v", want, full.PathBreakdown)
		}
	}
}

func TestObservabilityOffByDefault(t *testing.T) {
	r := mustRun(t, short(Full(0), WorkloadSpec{Kind: NetperfUDPSend, MsgBytes: 1024}))
	if len(r.PathBreakdown) != 0 {
		t.Fatalf("PathBreakdown filled without PathTrace: %+v", r.PathBreakdown)
	}
	if len(r.Probes) != 0 {
		t.Fatal("Probes filled without PathTrace")
	}
	if r.Timeline != nil {
		t.Fatal("Timeline filled without Timeline flag")
	}
}

func TestTimelineDeterministicAndValid(t *testing.T) {
	spec := shortPath(Full(0), WorkloadSpec{Kind: NetperfUDPRecv, MsgBytes: 1024})
	spec.Timeline = true

	serialize := func() []byte {
		t.Helper()
		r := mustRun(t, spec)
		if r.Timeline == nil || r.Timeline.Len() == 0 {
			t.Fatal("timeline empty")
		}
		var buf bytes.Buffer
		if err := r.Timeline.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := serialize()
	b := serialize()
	if !bytes.Equal(a, b) {
		t.Fatal("identical spec+seed produced different timeline bytes")
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	// The export must carry track metadata plus the three event types
	// the instrumentation emits: exit/worker slices, irq instants, and
	// probe counters.
	var meta, slices, instants, counters int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "M":
			meta++
		case "X":
			slices++
		case "i":
			instants++
		case "C":
			counters++
		}
	}
	if meta == 0 || slices == 0 || instants == 0 || counters == 0 {
		t.Fatalf("timeline lacks event types: meta=%d slices=%d instants=%d counters=%d",
			meta, slices, instants, counters)
	}
}

func TestTimelineImpliesPathTrace(t *testing.T) {
	spec := short(Full(0), WorkloadSpec{Kind: NetperfUDPSend, MsgBytes: 1024})
	spec.Warmup, spec.Duration = 100*time.Millisecond, 200*time.Millisecond
	spec.Timeline = true // PathTrace left false: Timeline implies it
	r := mustRun(t, spec)
	if len(r.PathBreakdown) == 0 {
		t.Fatal("Timeline should imply PathTrace")
	}
	if r.Timeline == nil || r.Timeline.Len() == 0 {
		t.Fatal("timeline missing")
	}
}

func TestProbesRecorded(t *testing.T) {
	r := mustRun(t, shortPath(Full(0), WorkloadSpec{Kind: NetperfUDPRecv, MsgBytes: 1024}))
	if len(r.Probes) == 0 {
		t.Fatal("no probe series recorded")
	}
	names := map[string]bool{}
	for _, s := range r.Probes {
		names[s.Name] = true
		if len(s.Points) == 0 {
			t.Fatalf("probe %s has no samples", s.Name)
		}
		last := -1.0
		for _, pt := range s.Points {
			if pt.AtSeconds <= last {
				t.Fatalf("probe %s timestamps not strictly increasing: %v then %v",
					s.Name, last, pt.AtSeconds)
			}
			last = pt.AtSeconds
		}
	}
	for _, want := range []string{"vm0.txq_avail", "vm0.vhost_backlog", "core0.runnable"} {
		if !names[want] {
			t.Fatalf("probe %q missing (got %v)", want, names)
		}
	}
}

func TestTraceRingWraparound(t *testing.T) {
	// A deliberately tiny capacity forces the ring to wrap many times;
	// the exported events must be the LAST N, in chronological order.
	spec := short(Baseline(), WorkloadSpec{Kind: NetperfTCPSend, MsgBytes: 1024})
	spec.TraceCapacity = 64
	r := mustRun(t, spec)
	if len(r.TraceEvents) != 64 {
		t.Fatalf("got %d events, want the full ring of 64", len(r.TraceEvents))
	}
	for i := 1; i < len(r.TraceEvents); i++ {
		if r.TraceEvents[i].AtSeconds < r.TraceEvents[i-1].AtSeconds {
			t.Fatalf("wrapped ring out of order at %d: %v after %v",
				i, r.TraceEvents[i].AtSeconds, r.TraceEvents[i-1].AtSeconds)
		}
	}
	// The retained tail must come from the end of the run (warmup
	// 200ms + 400ms window = 600ms total), not the start.
	if r.TraceEvents[0].AtSeconds < 0.3 {
		t.Fatalf("ring retained early events: first at %vs", r.TraceEvents[0].AtSeconds)
	}
}
