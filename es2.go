// Package es2 is a deterministic discrete-event simulator of the
// virtual I/O event path in a KVM-style virtualized host, built to
// reproduce the ICPP 2017 paper "ES2: Aiming at an Optimal Virtual I/O
// Event Path" (Hu, Zhang, Li, Ma, Wu, Guan).
//
// The simulator models the complete event path — physical cores
// multiplexed by a CFS-style scheduler, VM exits with a calibrated
// cost model, the software-emulated Local-APIC and the hardware
// Posted-Interrupt facility, virtio virtqueues with both directions of
// event suppression, the vhost-net back-end worker, and a guest OS
// with NAPI and TCP/UDP transports. On top of this substrate, ES2
// itself is implemented as published: the hybrid I/O handling scheme
// (Algorithm 1) in the back-end and intelligent interrupt redirection
// over the scheduler's online/offline vCPU lists.
//
// The public API is scenario-oriented:
//
//	res, err := es2.Run(es2.ScenarioSpec{
//	    Name:     "quickstart",
//	    Config:   es2.Full(8),
//	    Workload: es2.WorkloadSpec{Kind: es2.NetperfUDPSend, MsgBytes: 256},
//	})
//
// See the experiments package for ready-made scenario sets that
// regenerate every table and figure of the paper.
package es2

import (
	"time"

	"es2/internal/causal"
	"es2/internal/core"
	"es2/internal/enginestats"
	"es2/internal/faults"
	"es2/internal/profile"
	"es2/internal/slo"
	"es2/internal/telemetry"
	"es2/internal/trace"
	"es2/internal/vmm"
)

// Config selects the event-path configuration, mirroring the paper's
// four evaluated setups (Baseline, PI, PI+H, PI+H+R).
type Config = core.Config

// Policy selects the redirection target policy (ablation knob).
type Policy = core.Policy

// Redirection policies.
const (
	PolicyLeastLoaded = core.PolicyLeastLoaded
	PolicyRoundRobin  = core.PolicyRoundRobin
	PolicyRandom      = core.PolicyRandom
	PolicyOfflineTail = core.PolicyOfflineTail
)

// Baseline returns KVM with posted interrupts disabled.
func Baseline() Config { return core.Baseline() }

// PIOnly returns KVM with posted interrupts enabled.
func PIOnly() Config { return core.PIOnly() }

// PIH returns PI plus hybrid I/O handling with the given quota.
func PIH(quota int) Config { return core.PIH(quota) }

// Full returns the complete ES2 (PI + hybrid + redirection).
func Full(quota int) Config { return core.Full(quota) }

// WorkloadKind enumerates the paper's benchmark workloads.
type WorkloadKind int

const (
	// IdleBurn runs only the CPU-burn fillers (no I/O).
	IdleBurn WorkloadKind = iota
	// NetperfTCPSend streams TCP from the tested VM to the peer.
	NetperfTCPSend
	// NetperfTCPRecv streams TCP from the peer to the tested VM.
	NetperfTCPRecv
	// NetperfUDPSend streams UDP from the tested VM to the peer.
	NetperfUDPSend
	// NetperfUDPRecv streams UDP from the peer to the tested VM.
	NetperfUDPRecv
	// Ping probes the tested VM at a fixed interval (Fig. 7).
	Ping
	// Memcached serves a memaslap-style closed loop (Fig. 8a).
	Memcached
	// Apache serves an ApacheBench-style closed loop (Fig. 8b).
	Apache
	// Httperf serves an open-loop connection-rate sweep (Fig. 9).
	Httperf
)

// String names the workload.
func (k WorkloadKind) String() string {
	switch k {
	case IdleBurn:
		return "idle"
	case NetperfTCPSend:
		return "netperf-tcp-send"
	case NetperfTCPRecv:
		return "netperf-tcp-recv"
	case NetperfUDPSend:
		return "netperf-udp-send"
	case NetperfUDPRecv:
		return "netperf-udp-recv"
	case Ping:
		return "ping"
	case Memcached:
		return "memcached"
	case Apache:
		return "apache"
	case Httperf:
		return "httperf"
	default:
		return "unknown"
	}
}

// WorkloadSpec parameterizes the workload on the tested VM. Zero
// fields take kind-appropriate defaults.
type WorkloadSpec struct {
	Kind WorkloadKind

	// MsgBytes is the netperf message size (default 1024).
	MsgBytes int
	// Threads is the number of concurrent netperf processes (default
	// 1; the Fig. 6 experiments use 4 to load all four vCPUs).
	Threads int
	// Window is the TCP window in segments (default 128).
	Window int
	// UDPRatePPS is the peer's UDP send rate for receive tests
	// (default 450_000).
	UDPRatePPS float64
	// PingInterval is the probe interval (default 100ms — denser than
	// the paper's 1s to gather more samples per simulated second; each
	// probe is independent, so the distribution is unchanged).
	PingInterval time.Duration
	// Concurrency is the closed-loop outstanding-request count
	// (memaslap 256, ApacheBench 16).
	Concurrency int
	// Conns is the memaslap connection count (default 16).
	Conns int
	// PageBytes is the HTTP response size (Apache default 8192,
	// Httperf default 1024).
	PageBytes int
	// ConnRate is the Httperf connection rate per second.
	ConnRate float64
	// SendRatePPS, when positive, paces the netperf UDP sender at a
	// fixed offered rate instead of CPU speed (the low-load regime of
	// the sidecore-polling comparison).
	SendRatePPS float64
	// ServiceCost overrides the server's per-request CPU cost.
	ServiceCost time.Duration
}

// FaultSpec configures deterministic fault injection for a scenario
// (see internal/faults for the knob semantics). The zero value injects
// nothing. All faults draw from the scenario seed, so a faulted run
// replays bit-identically.
type FaultSpec = faults.Spec

// ChaosSpec configures rack-scale macro-fault timelines for a cluster
// run — host crash/freeze windows, link flaps and degradation, egress
// blackholing (see internal/faults for the knob semantics). The zero
// value injects nothing; timelines draw from the cluster seed, so a
// chaotic run replays bit-identically.
type ChaosSpec = faults.ChaosSpec

// SLOSpec declares service-level objectives for a run — latency
// versus a threshold, availability, goodput versus a floor — each
// evaluated streamingly on sim time with Google SRE-style
// multi-window multi-burn-rate alert rules (see internal/slo for the
// knob semantics). The zero value disables SLO evaluation.
// Evaluation is purely observational: results are bit-identical with
// and without it, and the alert timeline replays byte-identically
// under a fixed seed.
type SLOSpec = slo.Spec

// SLOObjective is one declared objective of an SLOSpec.
type SLOObjective = slo.Objective

// SLOReport is the deterministic SLO outcome of a run: run-wide
// compliance per objective plus the fire/clear alert timeline with
// correlated context (Result.SLO / ClusterResult.SLO).
type SLOReport = slo.Report

// SLOEvent is one fire/clear entry of the alert timeline.
type SLOEvent = slo.Event

// SLO objective kinds.
const (
	SLOLatency      = slo.KindLatency
	SLOAvailability = slo.KindAvailability
	SLOGoodput      = slo.KindGoodput
)

// ScenarioSpec describes one simulated testbed run.
type ScenarioSpec struct {
	// Name labels the run in results.
	Name string
	// Seed drives all randomness; the same spec and seed reproduce
	// bit-identical results.
	Seed uint64

	// Config is the event-path configuration under test.
	Config Config
	// Workload runs on the tested VM (VM 0).
	Workload WorkloadSpec

	// VMs is the number of virtual machines (default 1). All VMs run
	// the CPU-burn fillers; only VM 0 runs the workload, following the
	// paper's methodology.
	VMs int
	// VCPUs is the per-VM vCPU count (default 1).
	VCPUs int
	// VMCores is the number of physical cores the VMs time-share
	// (default VCPUs, i.e. no multiplexing with a single VM).
	VMCores int
	// VhostCores is the number of cores for vhost workers (default:
	// one per VM, at most 4 — the paper's testbed had 8 cores, 4 for
	// VMs).
	VhostCores int
	// Queues is the number of virtio-net queue pairs per VM (default
	// 1). Multiqueue gives each pair its own MSI-X vectors, NAPI
	// context and vhost worker, with queue i affine to vCPU i — the
	// scalability direction the paper's conclusion points at.
	Queues int

	// CoalesceCount / CoalesceTimer enable receive interrupt moderation
	// in the back-end (the vIC-style alternative of Section II-C):
	// the guest is interrupted only after CoalesceCount packets or
	// CoalesceTimer, whichever first. Zero disables moderation. Used
	// by the moderation ablation to demonstrate the latency cost the
	// paper argues motivates retaining all interrupts.
	CoalesceCount int
	CoalesceTimer time.Duration

	// DirectAssign models SR-IOV direct device assignment (the paper's
	// Section VII): the guest's doorbell writes reach the assigned VF
	// without VM exits, so I/O-request exits disappear by construction;
	// interrupt delivery still follows Config (VT-d PI when Config.PI,
	// redirection when Config.Redirect). Config.Hybrid is meaningless
	// here and ignored.
	DirectAssign bool

	// Sidecore replaces the notification/hybrid back-end with
	// ELVIS-style dedicated-core polling (Section II-C "Others"):
	// exit-less I/O requests at the price of a busy worker core even
	// when idle. Mutually exclusive with Config.Hybrid.
	Sidecore bool

	// TraceCapacity, when positive, enables perf-kvm-style event
	// tracing on the tested host: the last TraceCapacity events are
	// retained, and Result.TraceSummary/TraceEvents report them.
	TraceCapacity int

	// PathTrace enables event-path span tracing: every notification
	// unit's stage transitions (notify, back-end service, signal,
	// pi-wait, sched-in, ring-wait, deliver) are timed over the
	// measurement window and reported as Result.PathBreakdown, split by
	// traversal mechanism. Periodic state probes (queue depths, backlog,
	// online/offline list lengths, runqueue lengths) are sampled into
	// Result.Probes. Off by default; when off, the instrumentation
	// compiles to nil-receiver no-ops and costs nothing.
	PathTrace bool

	// Timeline additionally records an execution timeline — one track
	// per physical core, vCPU and vhost worker — exported as
	// Chrome-trace JSON via Result.Timeline.WriteJSON (loadable in
	// Perfetto). Implies PathTrace. Identical spec and seed produce a
	// byte-identical timeline.
	Timeline bool

	// CPUProfile enables the simulated-CPU profiler: every simulated
	// nanosecond of every core over the measurement window is
	// attributed to a hierarchical context (core → occupant → guest
	// task / exit reason / vhost activity), exactly at event boundaries
	// — no statistical sampling. Result.CPUProfile holds the full tree
	// (export with WritePprof for `go tool pprof`/speedscope or
	// WriteFolded for flamegraph tooling); Result.CPUReport is the
	// compact summary. Attribution is exact: the profiler's guest share
	// equals Result.TIG and its vhost busy share equals Result.VhostCPU.
	// Off by default; profiling never perturbs the simulation — results
	// are bit-identical with and without it.
	CPUProfile bool

	// Telemetry enables the windowed telemetry recorder: every
	// TelemetryWindow of simulated time, the headline metrics —
	// per-reason exit rates, TIG, vhost busy fraction, per-queue
	// virtqueue depth, device-IRQ/redirect/offline-predict rates, TCP
	// retransmits, active-fault state — are sampled as named series by
	// snapshotting the existing counters and deriving windowed deltas.
	// Three latency classes are additionally instrumented at their
	// natural points (interrupt delivery split posted vs. emulated,
	// TX virtqueue residency, vCPU wakeup-to-run delay) and reported
	// as full percentile spectra in Result.LatencyProfiles. Export the
	// series with Result.TelemetryRecorder.WriteOpenMetrics/WriteCSV
	// (or es2sim -telemetry-dir / -metrics, es2bench -telemetry-dir).
	// Off by default; recording never perturbs the simulation —
	// results are bit-identical with and without it, and exports are
	// byte-identical under a fixed seed.
	Telemetry bool
	// TelemetryWindow is the sampling window (default 10ms of
	// simulated time). Smaller windows resolve faster transients at
	// the cost of proportionally more rows in the exports.
	TelemetryWindow time.Duration

	// CritPath enables the causal critical-path analyzer: every
	// completed request/response pair of the Ping and Memcached
	// workloads (and of the cluster runner's RPC flows) threads a
	// causal chain through the full event
	// path (TX doorbell → vhost dequeue → wire → service → return →
	// interrupt delivery → wakeup → guest RX), and Result.CriticalPath
	// reports the per-stage blame profile, the slowest requests with
	// their full stage timelines, and Coz-style what-if estimates of
	// the end-to-end effect of speeding any one stage up. Per-stage
	// durations telescope to exactly the measured end-to-end latency.
	// Off by default; tracking is purely observational — results are
	// bit-identical with and without it, and the report replays
	// byte-identically under a fixed seed.
	CritPath bool
	// CritPathExemplars is the number of slowest requests retained with
	// full timelines (default 8, max 1024).
	CritPathExemplars int

	// SLO declares service-level objectives evaluated streamingly over
	// the measurement window (latency vs. threshold, availability,
	// goodput vs. floor) with multi-window multi-burn-rate alert
	// rules; Result.SLO carries the compliance report and the
	// deterministic fire/clear alert timeline. Latency and goodput
	// objectives require a workload that measures request completions
	// (Ping, Memcached, Apache, Httperf); availability objectives use
	// delivered-vs-lost wire traffic and work for every I/O workload.
	// Zero value: no SLOs.
	SLO SLOSpec

	// Load, when non-zero, replaces the closed-loop generator of a
	// Memcached workload with the open-loop load generator: the
	// external peer arms arrivals on the sim clock per Load's classes
	// and day profile regardless of completions, so offered load can
	// exceed the host's capacity and queueing collapse becomes
	// observable. Requires Workload.Kind == Memcached and single
	// fan-out (there is one host under test); Result.Load reports
	// offered-vs-completed, shed, backlog, per-phase spectra and the
	// collapse knee.
	Load LoadSpec

	// EngineStats enables wall-clock performance telemetry of the
	// simulation engine itself: real time and allocations spent running
	// the event loop, heap push/pop counts and depth, the
	// events-per-sim-tick distribution, and sampled per-subsystem
	// wall/allocation attribution charged at event-callback boundaries
	// (1-in-EngineStatsSampleN sampling keeps overhead under 2%).
	// Result.EngineReport carries the report. Stats never perturb the
	// simulation: simulated results are byte-identical with and without
	// them, only real-world timings are read. Wall-clock values are
	// machine-dependent, so the report is excluded from Result's
	// deterministic JSON; es2bench -perf publishes it separately.
	EngineStats bool
	// EngineStatsSampleN is the 1-in-N event-callback sampling interval
	// (default 128).
	EngineStatsSampleN int

	// testCosts, when non-nil, overrides the hypervisor cost model.
	// Unexported: only the what-if validation tests use it, to compare
	// a predicted speedup against an actually-cheapened mechanism.
	testCosts *vmm.CostModel

	// Faults configures deterministic fault injection: wire loss and
	// duplication, lost kicks/signals, vhost stalls, PI outages and
	// preemption storms, each paired with the recovery mechanism the
	// real stack has (TX watchdog, retransmission, vhost re-poll, PI
	// fallback). Zero value: fault-free.
	Faults FaultSpec

	// Check enables the runtime invariant checker: a periodic sweep
	// verifying virtqueue accounting, APIC ISR/IRR discipline,
	// scheduler online/offline list consistency and sim-clock
	// monotonicity. Violations panic (they are simulator bugs, not
	// scenario outcomes). Also enabled by the ES2_CHECK environment
	// variable, which is how CI turns it on globally.
	Check bool

	// Warmup precedes measurement (default 300ms of simulated time);
	// Duration is the measurement window (default 1s).
	Warmup   time.Duration
	Duration time.Duration
}

// Validate reports whether the spec (after defaulting) is runnable.
// Run calls it internally; it is exported so front-ends can reject bad
// specs before committing to a run.
func (s ScenarioSpec) Validate() error {
	return s.withDefaults().validate()
}

// TraceEvent is one recorded event-path event (see ScenarioSpec.
// TraceCapacity).
type TraceEvent struct {
	// AtSeconds is the simulated timestamp.
	AtSeconds float64 `json:"at"`
	// Kind is the event kind name ("exit", "irq-deliver", "sched-in"...).
	Kind string `json:"kind"`
	// VM and VCPU identify the subject.
	VM   int `json:"vm"`
	VCPU int `json:"vcpu"`
	// Detail is kind-specific (exit reason name, vector, core id).
	Detail string `json:"detail"`
}

// PathStage is one (stage, mechanism) cell of the event-path latency
// breakdown (see ScenarioSpec.PathTrace). Stages appear in path order:
// notify, backend-tx, backend-rx, signal, pi-wait, sched-in, ring-wait,
// deliver.
type PathStage struct {
	// Stage names the event-path stage.
	Stage string `json:"stage"`
	// Mechanism tags how the units traversed the stage (empty for
	// single-mechanism stages): "exit" vs "polled" for notify,
	// "emulated" vs "posted" vs "redirected" for signal.
	Mechanism string `json:"mechanism,omitempty"`
	// Count is the number of traversals observed in the window.
	Count uint64 `json:"count"`
	// Mean, P50, P99 and Max summarize the stage latency.
	Mean time.Duration `json:"mean"`
	P50  time.Duration `json:"p50"`
	P99  time.Duration `json:"p99"`
	Max  time.Duration `json:"max"`
}

// ProbePoint is one sample of a periodic state probe.
type ProbePoint struct {
	// AtSeconds is the sample's simulated timestamp.
	AtSeconds float64 `json:"at"`
	// Value is the sampled quantity.
	Value float64 `json:"value"`
}

// ProbeSeries is one periodically sampled state variable (virtqueue
// depth, vhost backlog, online/offline list length, runqueue length).
type ProbeSeries struct {
	Name   string       `json:"name"`
	Points []ProbePoint `json:"points"`
}

// RTTPoint is one ping sample of the Fig. 7 series.
type RTTPoint struct {
	// AtSeconds is the sample's simulated timestamp.
	AtSeconds float64 `json:"at"`
	// Millis is the round-trip time in milliseconds.
	Millis float64 `json:"ms"`
}

// Result carries everything the paper's evaluation reports, measured
// over the scenario's measurement window on the tested VM.
//
// The JSON encoding uses stable snake_case keys (documented under
// "Machine-readable results" in EXPERIMENTS.md); duration fields
// serialize as integer nanoseconds with an explicit _ns suffix in the
// key. Fields excluded from JSON (Timeline, CPUProfile) have their own
// export formats.
type Result struct {
	Name   string `json:"name"`
	Config Config `json:"config"`
	// MeasuredSeconds is the measurement window length.
	MeasuredSeconds float64 `json:"measured_seconds"`

	// ExitRates maps exit reason → exits per second; TotalExitRate and
	// IOExitRate are the headline aggregates.
	ExitRates     map[string]float64 `json:"exit_rates"`
	TotalExitRate float64            `json:"total_exit_rate"`
	IOExitRate    float64            `json:"io_exit_rate"`
	// TIG is the time-in-guest fraction (0..1).
	TIG float64 `json:"tig"`
	// VhostCPU is the fraction of the vhost worker cores' time spent
	// busy over the window (1.0 = a fully burned core; the
	// wasted-cycles metric of the sidecore-polling comparison).
	VhostCPU float64 `json:"vhost_cpu"`

	// DevIRQRate is delivered device interrupts per second;
	// RedirectRate is the fraction of eligible interrupts that were
	// redirected away from their affinity vCPU; OfflinePredictRate is
	// the fraction of routed interrupts that found no online vCPU and
	// fell back to the offline-list prediction (the vCPU-stacking
	// statistic of Section IV-C).
	DevIRQRate         float64 `json:"dev_irq_rate"`
	RedirectRate       float64 `json:"redirect_rate"`
	OfflinePredictRate float64 `json:"offline_predict_rate"`

	// ThroughputMbps is goodput for stream/HTTP workloads.
	ThroughputMbps float64 `json:"throughput_mbps"`
	// PktRate is packets per second at the measuring end.
	PktRate float64 `json:"pkt_rate"`
	// OpsPerSec is request throughput for Memcached/Apache.
	OpsPerSec float64 `json:"ops_per_sec"`

	// Latency statistics: request latency (Memcached), connection time
	// (Httperf/Apache) or RTT (Ping), depending on the workload. Mean
	// and Max are exact; the percentiles carry the log-bucketed
	// histogram's sub-1% relative error.
	MeanLatency time.Duration `json:"mean_latency_ns"`
	P50Latency  time.Duration `json:"p50_latency_ns"`
	P90Latency  time.Duration `json:"p90_latency_ns"`
	P99Latency  time.Duration `json:"p99_latency_ns"`
	P999Latency time.Duration `json:"p999_latency_ns"`
	MaxLatency  time.Duration `json:"max_latency_ns"`

	// RTTSeries is the per-probe trace for Ping workloads.
	RTTSeries []RTTPoint `json:"rtt_series,omitempty"`

	// TraceSummary and TraceEvents are filled when
	// ScenarioSpec.TraceCapacity > 0.
	TraceSummary string       `json:"trace_summary,omitempty"`
	TraceEvents  []TraceEvent `json:"trace_events,omitempty"`

	// PathBreakdown attributes event-path latency to stages (filled
	// when ScenarioSpec.PathTrace or Timeline is set), ordered
	// stage-major in path order.
	PathBreakdown []PathStage `json:"path_breakdown,omitempty"`
	// Probes holds the periodic state-probe series (PathTrace runs).
	Probes []ProbeSeries `json:"probes,omitempty"`
	// Timeline is the recorded execution timeline (Timeline runs);
	// serialize it with WriteJSON. Excluded from JSON results.
	Timeline *trace.Timeline `json:"-"`

	// CPUProfile is the full CPU-attribution tree (CPUProfile runs);
	// export it with WritePprof (pprof protobuf, gzip) or WriteFolded
	// (folded stacks). Excluded from JSON results — use CPUReport.
	CPUProfile *profile.Profiler `json:"-"`
	// CPUReport is the compact CPU-attribution summary (CPUProfile
	// runs): top contexts, per-core utilization, exit-cycle totals.
	CPUReport *CPUReport `json:"cpu_report,omitempty"`

	// Telemetry summarizes the windowed recording (Telemetry runs);
	// LatencyProfiles carries the full percentile spectrum of each
	// instrumented latency class. TelemetryRecorder is the recorder
	// itself — export with WriteOpenMetrics (Prometheus/OpenMetrics
	// text) or WriteCSV (per-window series); excluded from JSON.
	Telemetry         *TelemetryInfo      `json:"telemetry,omitempty"`
	LatencyProfiles   []LatencyProfile    `json:"latency_profiles,omitempty"`
	TelemetryRecorder *telemetry.Recorder `json:"-"`

	// CriticalPath is the causal critical-path analysis (CritPath
	// runs): per-stage blame, tail exemplars and what-if estimates.
	CriticalPath *CriticalPath `json:"critical_path,omitempty"`

	// EngineReport is the engine's wall-clock performance report
	// (EngineStats runs): real time, events/sec, heap behavior,
	// per-subsystem wall/allocation attribution and GC activity.
	// Excluded from JSON — wall-clock values are machine-dependent and
	// nondeterministic, and Result's JSON surface stays byte-identical
	// across identical-seed runs; the CLIs render it and es2bench -perf
	// publishes it in the BENCH_engine.json envelope.
	EngineReport *EngineReport `json:"-"`

	// SLO is the service-level-objective report (SLO runs): run-wide
	// compliance per objective plus the deterministic fire/clear alert
	// timeline. Part of the deterministic JSON surface.
	SLO *SLOReport `json:"slo,omitempty"`

	// Load is the open-loop load report (ScenarioSpec.Load runs):
	// offered-vs-completed totals, shed and backlog counts, per-phase
	// windows and the collapse knee. Part of the deterministic JSON
	// surface.
	Load *LoadReport `json:"load,omitempty"`

	// Faults reports fault-injection and recovery activity over the
	// window (nil for fault-free runs).
	Faults *FaultReport `json:"faults,omitempty"`
	// InvariantChecks is the number of invariant sweeps that passed
	// (zero unless ScenarioSpec.Check or ES2_CHECK enabled the checker).
	InvariantChecks uint64 `json:"invariant_checks,omitempty"`

	// Raw counters over the window (wire side of the tested VM).
	TxPkts uint64 `json:"tx_pkts"`
	RxPkts uint64 `json:"rx_pkts"`
	Drops  uint64 `json:"drops"`
}

// CPUContext is one attributed context of the CPU report: a full stack
// path ("core0;vm0/vcpu0;guest;user;burn") with the simulated time
// charged directly to it (excluding children).
type CPUContext struct {
	Stack string `json:"stack"`
	Nanos int64  `json:"nanos"`
	// Share is Nanos over the total core-time of the window
	// (window × cores).
	Share float64 `json:"share"`
}

// CoreUsage summarizes one core's measurement window.
type CoreUsage struct {
	Core int `json:"core"`
	// Busy is the non-idle fraction of the window.
	Busy float64 `json:"busy"`
	// Occupants maps occupant name (vCPU thread, vhost worker, storm,
	// idle) to its fraction of the window.
	Occupants map[string]float64 `json:"occupants"`
}

// CPUReport is the compact summary of a CPU profile (see
// ScenarioSpec.CPUProfile).
type CPUReport struct {
	// WindowSeconds is the profiled window length.
	WindowSeconds float64 `json:"window_seconds"`
	// Cores is per-core utilization, in core order.
	Cores []CoreUsage `json:"cores"`
	// Top lists the largest contexts by self time, descending.
	Top []CPUContext `json:"top"`
	// ExitNanos totals VM-exit handling time by exit reason across all
	// vCPUs — the wasted cycles ES2's Algorithm 1 eliminates.
	ExitNanos map[string]int64 `json:"exit_ns"`
	// GuestShare is the profiler's guest-mode share of VM 0's vCPU
	// time; equals Result.TIG by construction.
	GuestShare float64 `json:"guest_share"`
	// VhostBusy is the profiler's vhost busy fraction of the vhost
	// cores; equals Result.VhostCPU by construction.
	VhostBusy float64 `json:"vhost_busy"`
}

// TelemetryInfo summarizes a windowed telemetry recording (see
// ScenarioSpec.Telemetry).
type TelemetryInfo struct {
	// WindowMs is the sampling window in simulated milliseconds.
	WindowMs float64 `json:"window_ms"`
	// Windows is the number of closed sampling windows.
	Windows int `json:"windows"`
	// Series is the number of recorded series (probes + histograms).
	Series int `json:"series"`
}

// LatencyProfile is the full percentile spectrum of one instrumented
// latency class over the measurement window (see
// ScenarioSpec.Telemetry). Classes: "irq-delivery" (APIC injection →
// guest handler entry; labels "posted"/"emulated"), "vq-residency"
// (avail-publish → vhost dequeue; one profile per TX queue) and
// "vcpu-wakeup" (scheduler wakeup → running). Mean and Max are exact;
// percentiles carry the histogram's sub-1% bucket error.
type LatencyProfile struct {
	Class string        `json:"class"`
	Label string        `json:"label,omitempty"`
	Count uint64        `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
	P999  time.Duration `json:"p999_ns"`
	Max   time.Duration `json:"max_ns"`
}

// CriticalPath is the causal critical-path analysis of one run (see
// ScenarioSpec.CritPath): the per-stage blame profile (with per-host
// rows in cluster runs), the slowest requests with their full stage
// timelines, and Coz-style what-if speedup estimates. JSON keys are
// stable snake_case with _ns duration suffixes, like the rest of
// Result.
type CriticalPath = causal.Report

// CriticalPathStage is one (stage[, host]) blame row.
type CriticalPathStage = causal.StageBlame

// CriticalPathExemplar is one retained slowest request with its full
// stage timeline.
type CriticalPathExemplar = causal.Exemplar

// CriticalPathWhatIf is one Coz-style what-if estimate: the predicted
// end-to-end percentile shifts from speeding one stage up.
type CriticalPathWhatIf = causal.WhatIf

// DefaultWhatIfSpeedup is the virtual speedup Report evaluates for
// every traversed stage.
const DefaultWhatIfSpeedup = causal.DefaultWhatIfSpeedup

// EngineReport is the engine's wall-clock performance report (see
// ScenarioSpec.EngineStats): real time and allocation cost of running
// the event loop, heap behavior, the events-per-sim-tick distribution
// and sampled per-subsystem attribution. JSON keys are stable
// snake_case; values are machine-dependent real-world measurements.
type EngineReport = enginestats.Report

// EngineHeapStats summarizes event-queue behavior inside an
// EngineReport.
type EngineHeapStats = enginestats.HeapStats

// EngineSubsystemRow is one sampled wall/allocation attribution row of
// an EngineReport, labeled by the scheduling Go package.
type EngineSubsystemRow = enginestats.SubsystemRow

// DefaultEngineStatsSampleN is the default 1-in-N event sampling
// interval behind EngineStats (see ScenarioSpec.EngineStatsSampleN).
const DefaultEngineStatsSampleN = enginestats.DefaultSampleN

// FaultReport summarizes injected faults and the recovery work they
// triggered, measured over the scenario's measurement window.
type FaultReport struct {
	// Injected is the total number of fault events.
	Injected uint64 `json:"injected"`
	// Per-fault tallies.
	WireDrops     uint64 `json:"wire_drops"`
	WireDups      uint64 `json:"wire_dups"`
	LostKicks     uint64 `json:"lost_kicks"`
	LostSignals   uint64 `json:"lost_signals"`
	VhostStalls   uint64 `json:"vhost_stalls"`
	PIOutages     uint64 `json:"pi_outages"`
	PreemptStorms uint64 `json:"preempt_storms"`
	// Recovery-side tallies: transport retransmission timeouts (guest
	// and peer), guest TX-watchdog re-kicks, vhost re-poll recoveries,
	// and posted→emulated delivery fallbacks.
	Retransmits   uint64 `json:"retransmits"`
	WatchdogFires uint64 `json:"watchdog_fires"`
	VhostRePolls  uint64 `json:"vhost_repolls"`
	PIFallbacks   uint64 `json:"pi_fallbacks"`
}
