// Package es2 is a deterministic discrete-event simulator of the
// virtual I/O event path in a KVM-style virtualized host, built to
// reproduce the ICPP 2017 paper "ES2: Aiming at an Optimal Virtual I/O
// Event Path" (Hu, Zhang, Li, Ma, Wu, Guan).
//
// The simulator models the complete event path — physical cores
// multiplexed by a CFS-style scheduler, VM exits with a calibrated
// cost model, the software-emulated Local-APIC and the hardware
// Posted-Interrupt facility, virtio virtqueues with both directions of
// event suppression, the vhost-net back-end worker, and a guest OS
// with NAPI and TCP/UDP transports. On top of this substrate, ES2
// itself is implemented as published: the hybrid I/O handling scheme
// (Algorithm 1) in the back-end and intelligent interrupt redirection
// over the scheduler's online/offline vCPU lists.
//
// The public API is scenario-oriented:
//
//	res, err := es2.Run(es2.ScenarioSpec{
//	    Name:     "quickstart",
//	    Config:   es2.Full(8),
//	    Workload: es2.WorkloadSpec{Kind: es2.NetperfUDPSend, MsgBytes: 256},
//	})
//
// See the experiments package for ready-made scenario sets that
// regenerate every table and figure of the paper.
package es2

import (
	"time"

	"es2/internal/core"
	"es2/internal/faults"
	"es2/internal/trace"
)

// Config selects the event-path configuration, mirroring the paper's
// four evaluated setups (Baseline, PI, PI+H, PI+H+R).
type Config = core.Config

// Policy selects the redirection target policy (ablation knob).
type Policy = core.Policy

// Redirection policies.
const (
	PolicyLeastLoaded = core.PolicyLeastLoaded
	PolicyRoundRobin  = core.PolicyRoundRobin
	PolicyRandom      = core.PolicyRandom
	PolicyOfflineTail = core.PolicyOfflineTail
)

// Baseline returns KVM with posted interrupts disabled.
func Baseline() Config { return core.Baseline() }

// PIOnly returns KVM with posted interrupts enabled.
func PIOnly() Config { return core.PIOnly() }

// PIH returns PI plus hybrid I/O handling with the given quota.
func PIH(quota int) Config { return core.PIH(quota) }

// Full returns the complete ES2 (PI + hybrid + redirection).
func Full(quota int) Config { return core.Full(quota) }

// WorkloadKind enumerates the paper's benchmark workloads.
type WorkloadKind int

const (
	// IdleBurn runs only the CPU-burn fillers (no I/O).
	IdleBurn WorkloadKind = iota
	// NetperfTCPSend streams TCP from the tested VM to the peer.
	NetperfTCPSend
	// NetperfTCPRecv streams TCP from the peer to the tested VM.
	NetperfTCPRecv
	// NetperfUDPSend streams UDP from the tested VM to the peer.
	NetperfUDPSend
	// NetperfUDPRecv streams UDP from the peer to the tested VM.
	NetperfUDPRecv
	// Ping probes the tested VM at a fixed interval (Fig. 7).
	Ping
	// Memcached serves a memaslap-style closed loop (Fig. 8a).
	Memcached
	// Apache serves an ApacheBench-style closed loop (Fig. 8b).
	Apache
	// Httperf serves an open-loop connection-rate sweep (Fig. 9).
	Httperf
)

// String names the workload.
func (k WorkloadKind) String() string {
	switch k {
	case IdleBurn:
		return "idle"
	case NetperfTCPSend:
		return "netperf-tcp-send"
	case NetperfTCPRecv:
		return "netperf-tcp-recv"
	case NetperfUDPSend:
		return "netperf-udp-send"
	case NetperfUDPRecv:
		return "netperf-udp-recv"
	case Ping:
		return "ping"
	case Memcached:
		return "memcached"
	case Apache:
		return "apache"
	case Httperf:
		return "httperf"
	default:
		return "unknown"
	}
}

// WorkloadSpec parameterizes the workload on the tested VM. Zero
// fields take kind-appropriate defaults.
type WorkloadSpec struct {
	Kind WorkloadKind

	// MsgBytes is the netperf message size (default 1024).
	MsgBytes int
	// Threads is the number of concurrent netperf processes (default
	// 1; the Fig. 6 experiments use 4 to load all four vCPUs).
	Threads int
	// Window is the TCP window in segments (default 64).
	Window int
	// UDPRatePPS is the peer's UDP send rate for receive tests
	// (default 450_000).
	UDPRatePPS float64
	// PingInterval is the probe interval (default 100ms — denser than
	// the paper's 1s to gather more samples per simulated second; each
	// probe is independent, so the distribution is unchanged).
	PingInterval time.Duration
	// Concurrency is the closed-loop outstanding-request count
	// (memaslap 256, ApacheBench 16).
	Concurrency int
	// Conns is the memaslap connection count (default 16).
	Conns int
	// PageBytes is the HTTP response size (Apache default 8192,
	// Httperf default 1024).
	PageBytes int
	// ConnRate is the Httperf connection rate per second.
	ConnRate float64
	// SendRatePPS, when positive, paces the netperf UDP sender at a
	// fixed offered rate instead of CPU speed (the low-load regime of
	// the sidecore-polling comparison).
	SendRatePPS float64
	// ServiceCost overrides the server's per-request CPU cost.
	ServiceCost time.Duration
}

// FaultSpec configures deterministic fault injection for a scenario
// (see internal/faults for the knob semantics). The zero value injects
// nothing. All faults draw from the scenario seed, so a faulted run
// replays bit-identically.
type FaultSpec = faults.Spec

// ScenarioSpec describes one simulated testbed run.
type ScenarioSpec struct {
	// Name labels the run in results.
	Name string
	// Seed drives all randomness; the same spec and seed reproduce
	// bit-identical results.
	Seed uint64

	// Config is the event-path configuration under test.
	Config Config
	// Workload runs on the tested VM (VM 0).
	Workload WorkloadSpec

	// VMs is the number of virtual machines (default 1). All VMs run
	// the CPU-burn fillers; only VM 0 runs the workload, following the
	// paper's methodology.
	VMs int
	// VCPUs is the per-VM vCPU count (default 1).
	VCPUs int
	// VMCores is the number of physical cores the VMs time-share
	// (default VCPUs, i.e. no multiplexing with a single VM).
	VMCores int
	// VhostCores is the number of cores for vhost workers (default:
	// one per VM, at most 4 — the paper's testbed had 8 cores, 4 for
	// VMs).
	VhostCores int
	// Queues is the number of virtio-net queue pairs per VM (default
	// 1). Multiqueue gives each pair its own MSI-X vectors, NAPI
	// context and vhost worker, with queue i affine to vCPU i — the
	// scalability direction the paper's conclusion points at.
	Queues int

	// CoalesceCount / CoalesceTimer enable receive interrupt moderation
	// in the back-end (the vIC-style alternative of Section II-C):
	// the guest is interrupted only after CoalesceCount packets or
	// CoalesceTimer, whichever first. Zero disables moderation. Used
	// by the moderation ablation to demonstrate the latency cost the
	// paper argues motivates retaining all interrupts.
	CoalesceCount int
	CoalesceTimer time.Duration

	// DirectAssign models SR-IOV direct device assignment (the paper's
	// Section VII): the guest's doorbell writes reach the assigned VF
	// without VM exits, so I/O-request exits disappear by construction;
	// interrupt delivery still follows Config (VT-d PI when Config.PI,
	// redirection when Config.Redirect). Config.Hybrid is meaningless
	// here and ignored.
	DirectAssign bool

	// Sidecore replaces the notification/hybrid back-end with
	// ELVIS-style dedicated-core polling (Section II-C "Others"):
	// exit-less I/O requests at the price of a busy worker core even
	// when idle. Mutually exclusive with Config.Hybrid.
	Sidecore bool

	// TraceCapacity, when positive, enables perf-kvm-style event
	// tracing on the tested host: the last TraceCapacity events are
	// retained, and Result.TraceSummary/TraceEvents report them.
	TraceCapacity int

	// PathTrace enables event-path span tracing: every notification
	// unit's stage transitions (notify, back-end service, signal,
	// pi-wait, sched-in, ring-wait, deliver) are timed over the
	// measurement window and reported as Result.PathBreakdown, split by
	// traversal mechanism. Periodic state probes (queue depths, backlog,
	// online/offline list lengths, runqueue lengths) are sampled into
	// Result.Probes. Off by default; when off, the instrumentation
	// compiles to nil-receiver no-ops and costs nothing.
	PathTrace bool

	// Timeline additionally records an execution timeline — one track
	// per physical core, vCPU and vhost worker — exported as
	// Chrome-trace JSON via Result.Timeline.WriteJSON (loadable in
	// Perfetto). Implies PathTrace. Identical spec and seed produce a
	// byte-identical timeline.
	Timeline bool

	// Faults configures deterministic fault injection: wire loss and
	// duplication, lost kicks/signals, vhost stalls, PI outages and
	// preemption storms, each paired with the recovery mechanism the
	// real stack has (TX watchdog, retransmission, vhost re-poll, PI
	// fallback). Zero value: fault-free.
	Faults FaultSpec

	// Check enables the runtime invariant checker: a periodic sweep
	// verifying virtqueue accounting, APIC ISR/IRR discipline,
	// scheduler online/offline list consistency and sim-clock
	// monotonicity. Violations panic (they are simulator bugs, not
	// scenario outcomes). Also enabled by the ES2_CHECK environment
	// variable, which is how CI turns it on globally.
	Check bool

	// Warmup precedes measurement (default 300ms of simulated time);
	// Duration is the measurement window (default 1s).
	Warmup   time.Duration
	Duration time.Duration
}

// Validate reports whether the spec (after defaulting) is runnable.
// Run calls it internally; it is exported so front-ends can reject bad
// specs before committing to a run.
func (s ScenarioSpec) Validate() error {
	return s.withDefaults().validate()
}

// TraceEvent is one recorded event-path event (see ScenarioSpec.
// TraceCapacity).
type TraceEvent struct {
	// AtSeconds is the simulated timestamp.
	AtSeconds float64
	// Kind is the event kind name ("exit", "irq-deliver", "sched-in"...).
	Kind string
	// VM and VCPU identify the subject.
	VM, VCPU int
	// Detail is kind-specific (exit reason name, vector, core id).
	Detail string
}

// PathStage is one (stage, mechanism) cell of the event-path latency
// breakdown (see ScenarioSpec.PathTrace). Stages appear in path order:
// notify, backend-tx, backend-rx, signal, pi-wait, sched-in, ring-wait,
// deliver.
type PathStage struct {
	// Stage names the event-path stage.
	Stage string `json:"stage"`
	// Mechanism tags how the units traversed the stage (empty for
	// single-mechanism stages): "exit" vs "polled" for notify,
	// "emulated" vs "posted" vs "redirected" for signal.
	Mechanism string `json:"mechanism,omitempty"`
	// Count is the number of traversals observed in the window.
	Count uint64 `json:"count"`
	// Mean, P50, P99 and Max summarize the stage latency.
	Mean time.Duration `json:"mean"`
	P50  time.Duration `json:"p50"`
	P99  time.Duration `json:"p99"`
	Max  time.Duration `json:"max"`
}

// ProbePoint is one sample of a periodic state probe.
type ProbePoint struct {
	// AtSeconds is the sample's simulated timestamp.
	AtSeconds float64 `json:"at"`
	// Value is the sampled quantity.
	Value float64 `json:"value"`
}

// ProbeSeries is one periodically sampled state variable (virtqueue
// depth, vhost backlog, online/offline list length, runqueue length).
type ProbeSeries struct {
	Name   string       `json:"name"`
	Points []ProbePoint `json:"points"`
}

// RTTPoint is one ping sample of the Fig. 7 series.
type RTTPoint struct {
	// AtSeconds is the sample's simulated timestamp.
	AtSeconds float64
	// Millis is the round-trip time in milliseconds.
	Millis float64
}

// Result carries everything the paper's evaluation reports, measured
// over the scenario's measurement window on the tested VM.
type Result struct {
	Name   string
	Config Config
	// MeasuredSeconds is the measurement window length.
	MeasuredSeconds float64

	// ExitRates maps exit reason → exits per second; TotalExitRate and
	// IOExitRate are the headline aggregates.
	ExitRates     map[string]float64
	TotalExitRate float64
	IOExitRate    float64
	// TIG is the time-in-guest fraction (0..1).
	TIG float64
	// VhostCPU is the fraction of the vhost worker cores' time spent
	// busy over the window (1.0 = a fully burned core; the
	// wasted-cycles metric of the sidecore-polling comparison).
	VhostCPU float64

	// DevIRQRate is delivered device interrupts per second;
	// RedirectRate is the fraction of eligible interrupts that were
	// redirected away from their affinity vCPU; OfflinePredictRate is
	// the fraction of routed interrupts that found no online vCPU and
	// fell back to the offline-list prediction (the vCPU-stacking
	// statistic of Section IV-C).
	DevIRQRate         float64
	RedirectRate       float64
	OfflinePredictRate float64

	// ThroughputMbps is goodput for stream/HTTP workloads.
	ThroughputMbps float64
	// PktRate is packets per second at the measuring end.
	PktRate float64
	// OpsPerSec is request throughput for Memcached/Apache.
	OpsPerSec float64

	// Latency statistics: request latency (Memcached), connection time
	// (Httperf/Apache) or RTT (Ping), depending on the workload.
	MeanLatency time.Duration
	P99Latency  time.Duration
	MaxLatency  time.Duration

	// RTTSeries is the per-probe trace for Ping workloads.
	RTTSeries []RTTPoint

	// TraceSummary and TraceEvents are filled when
	// ScenarioSpec.TraceCapacity > 0.
	TraceSummary string
	TraceEvents  []TraceEvent

	// PathBreakdown attributes event-path latency to stages (filled
	// when ScenarioSpec.PathTrace or Timeline is set), ordered
	// stage-major in path order.
	PathBreakdown []PathStage
	// Probes holds the periodic state-probe series (PathTrace runs).
	Probes []ProbeSeries
	// Timeline is the recorded execution timeline (Timeline runs);
	// serialize it with WriteJSON. Excluded from JSON results.
	Timeline *trace.Timeline `json:"-"`

	// Faults reports fault-injection and recovery activity over the
	// window (nil for fault-free runs).
	Faults *FaultReport `json:"Faults,omitempty"`
	// InvariantChecks is the number of invariant sweeps that passed
	// (zero unless ScenarioSpec.Check or ES2_CHECK enabled the checker).
	InvariantChecks uint64 `json:",omitempty"`

	// Raw counters over the window (wire side of the tested VM).
	TxPkts, RxPkts uint64
	Drops          uint64
}

// FaultReport summarizes injected faults and the recovery work they
// triggered, measured over the scenario's measurement window.
type FaultReport struct {
	// Injected is the total number of fault events.
	Injected uint64
	// Per-fault tallies.
	WireDrops     uint64
	WireDups      uint64
	LostKicks     uint64
	LostSignals   uint64
	VhostStalls   uint64
	PIOutages     uint64
	PreemptStorms uint64
	// Recovery-side tallies: transport retransmission timeouts (guest
	// and peer), guest TX-watchdog re-kicks, vhost re-poll recoveries,
	// and posted→emulated delivery fallbacks.
	Retransmits   uint64
	WatchdogFires uint64
	VhostRePolls  uint64
	PIFallbacks   uint64
}
