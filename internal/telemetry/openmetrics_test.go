package telemetry

// The OpenMetrics lint gate: a small strict parser for the exposition
// format, asserting the structural rules Prometheus-family scrapers
// rely on — # TYPE and # HELP precede a family's samples, counter
// samples carry the _total suffix, label values round-trip through
// escaping, counters are monotone across expositions, and the document
// terminates with # EOF. CI runs these tests (-run TestOpenMetrics) as
// a dedicated lint step.

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"es2/internal/metrics"
	"es2/internal/sim"
)

// omSample is one parsed sample line.
type omSample struct {
	name   string
	labels map[string]string
	value  float64
}

// key renders the sample's identity (name plus labels in order) for
// cross-exposition comparison.
func (s omSample) key() string {
	var b strings.Builder
	b.WriteString(s.name)
	keys := make([]string, 0, len(s.labels))
	for k := range s.labels {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%s", k, s.labels[k])
	}
	return b.String()
}

// omFamily is one parsed metric family.
type omFamily struct {
	name    string
	typ     string
	help    string
	samples []omSample
}

// parseOpenMetrics validates the exposition's structure and returns its
// families in order. Any violation fails the test immediately.
func parseOpenMetrics(t *testing.T, text string) []omFamily {
	t.Helper()
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Fatalf("exposition does not terminate with %q", "# EOF\n")
	}
	lines := strings.Split(strings.TrimSuffix(text, "\n"), "\n")
	if lines[len(lines)-1] != "# EOF" {
		t.Fatalf("last line is %q, want %q", lines[len(lines)-1], "# EOF")
	}
	var fams []omFamily
	var cur *omFamily
	seen := map[string]bool{}
	for i, line := range lines[:len(lines)-1] {
		switch {
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE line %q", i+1, line)
			}
			name, typ := parts[0], parts[1]
			if seen[name] {
				t.Fatalf("line %d: family %q declared twice", i+1, name)
			}
			seen[name] = true
			switch typ {
			case "counter", "gauge", "summary":
			default:
				t.Fatalf("line %d: family %q has unknown type %q", i+1, name, typ)
			}
			fams = append(fams, omFamily{name: name, typ: typ})
			cur = &fams[len(fams)-1]
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if cur == nil || parts[0] != cur.name {
				t.Fatalf("line %d: HELP for %q outside its family block", i+1, parts[0])
			}
			if len(cur.samples) > 0 {
				t.Fatalf("line %d: HELP for %q after its samples", i+1, cur.name)
			}
			if cur.help != "" {
				t.Fatalf("line %d: duplicate HELP for %q", i+1, cur.name)
			}
			if len(parts) != 2 || parts[1] == "" {
				t.Fatalf("line %d: family %q has empty help text", i+1, cur.name)
			}
			cur.help = parts[1]
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment %q", i+1, line)
		default:
			s := parseSampleLine(t, i+1, line)
			if cur == nil {
				t.Fatalf("line %d: sample %q before any TYPE line", i+1, s.name)
			}
			if cur.help == "" {
				t.Fatalf("line %d: sample %q before its family's HELP", i+1, s.name)
			}
			checkSampleName(t, i+1, cur, s)
			cur.samples = append(cur.samples, s)
		}
	}
	for _, f := range fams {
		if len(f.samples) == 0 {
			t.Fatalf("family %q declares TYPE/HELP but has no samples", f.name)
		}
	}
	return fams
}

// checkSampleName enforces the per-type naming rules.
func checkSampleName(t *testing.T, lineNo int, f *omFamily, s omSample) {
	t.Helper()
	switch f.typ {
	case "counter":
		if s.name != f.name+"_total" {
			t.Fatalf("line %d: counter sample %q must be %q", lineNo, s.name, f.name+"_total")
		}
	case "gauge":
		if s.name != f.name {
			t.Fatalf("line %d: gauge sample %q must be %q", lineNo, s.name, f.name)
		}
	case "summary":
		switch s.name {
		case f.name:
			if _, ok := s.labels["quantile"]; !ok {
				t.Fatalf("line %d: summary sample %q lacks a quantile label", lineNo, s.name)
			}
		case f.name + "_sum", f.name + "_count":
		default:
			t.Fatalf("line %d: summary sample %q not in {%s, %s_sum, %s_count}",
				lineNo, s.name, f.name, f.name, f.name)
		}
	}
}

// parseSampleLine parses `name{k="v",...} value`, honoring the label
// escape sequences.
func parseSampleLine(t *testing.T, lineNo int, line string) omSample {
	t.Helper()
	s := omSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		t.Fatalf("line %d: malformed sample %q", lineNo, line)
	} else {
		s.name = rest[:i]
		rest = rest[i:]
	}
	if rest[0] == '{' {
		rest = rest[1:]
		for rest[0] != '}' {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				t.Fatalf("line %d: malformed labels in %q", lineNo, line)
			}
			key := rest[:eq]
			rest = rest[eq+2:]
			var raw strings.Builder
			for {
				if len(rest) == 0 {
					t.Fatalf("line %d: unterminated label value in %q", lineNo, line)
				}
				c := rest[0]
				if c == '\\' {
					if len(rest) < 2 {
						t.Fatalf("line %d: dangling escape in %q", lineNo, line)
					}
					raw.WriteByte(rest[0])
					raw.WriteByte(rest[1])
					rest = rest[2:]
					continue
				}
				if c == '"' {
					rest = rest[1:]
					break
				}
				if c == '\n' {
					t.Fatalf("line %d: unescaped newline in label value", lineNo)
				}
				raw.WriteByte(c)
				rest = rest[1:]
			}
			s.labels[key] = UnescapeLabel(raw.String())
			if rest[0] == ',' {
				rest = rest[1:]
			}
		}
		rest = rest[1:]
	}
	if len(rest) == 0 || rest[0] != ' ' {
		t.Fatalf("line %d: missing value separator in %q", lineNo, line)
	}
	v, err := strconv.ParseFloat(rest[1:], 64)
	if err != nil {
		t.Fatalf("line %d: unparseable value in %q: %v", lineNo, line, err)
	}
	s.value = v
	return s
}

const nastyLabel = "cls \"a\\b\"\nend"

// lintRig builds a recorder whose exposition exercises every family
// type and the label escapes.
func lintRig() (*testRig, func(float64)) {
	rig := newTestRig(10 * sim.Millisecond)
	var extra float64
	rig.rec.Counter("t_escaped", "Counter with a hostile label value.",
		[]Label{{Key: "cls", Value: nastyLabel}}, func() float64 { return extra })
	labeled := metrics.NewLogHistogram()
	labeled.Observe(5 * sim.Microsecond)
	rig.rec.Histogram("t_lab_seconds", "Labeled latency spectrum.",
		[]Label{{Key: "path", Value: "posted"}}, labeled)
	return rig, func(v float64) { extra = v }
}

func TestOpenMetricsStructure(t *testing.T) {
	rig, setExtra := lintRig()
	setExtra(7)
	rig.run(t, 25*sim.Millisecond)
	var buf bytes.Buffer
	if err := rig.rec.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	fams := parseOpenMetrics(t, buf.String())

	byName := map[string]omFamily{}
	for _, f := range fams {
		byName[f.name] = f
	}
	for name, typ := range map[string]string{
		"t_ops":         "counter",
		"t_escaped":     "counter",
		"t_depth":       "gauge",
		"t_busy":        "gauge",
		"t_lat_seconds": "summary",
		"t_lab_seconds": "summary",
	} {
		f, ok := byName[name]
		if !ok {
			t.Fatalf("family %q missing from exposition", name)
		}
		if f.typ != typ {
			t.Errorf("family %q has type %q, want %q", name, f.typ, typ)
		}
	}
	// Summaries expose the full quantile spectrum plus _sum/_count.
	lat := byName["t_lat_seconds"]
	var quantiles []string
	for _, s := range lat.samples {
		if q, ok := s.labels["quantile"]; ok {
			quantiles = append(quantiles, q)
		}
	}
	want := []string{"0.5", "0.9", "0.99", "0.999"}
	if fmt.Sprint(quantiles) != fmt.Sprint(want) {
		t.Errorf("quantile spectrum %v, want %v", quantiles, want)
	}
}

func TestOpenMetricsLabelEscapingRoundTrip(t *testing.T) {
	rig, setExtra := lintRig()
	setExtra(1)
	rig.run(t, 25*sim.Millisecond)
	var buf bytes.Buffer
	if err := rig.rec.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	for _, f := range parseOpenMetrics(t, buf.String()) {
		if f.name != "t_escaped" {
			continue
		}
		got := f.samples[0].labels["cls"]
		if got != nastyLabel {
			t.Fatalf("label value round-tripped to %q, want %q", got, nastyLabel)
		}
		return
	}
	t.Fatal("t_escaped family missing")
}

func TestOpenMetricsCounterMonotonicity(t *testing.T) {
	rig, setExtra := lintRig()
	setExtra(3)
	rig.run(t, 25*sim.Millisecond)

	render := func() map[string]float64 {
		var buf bytes.Buffer
		if err := rig.rec.WriteOpenMetrics(&buf); err != nil {
			t.Fatal(err)
		}
		out := map[string]float64{}
		for _, f := range parseOpenMetrics(t, buf.String()) {
			if f.typ != "counter" {
				continue
			}
			for _, s := range f.samples {
				out[s.key()] = s.value
			}
		}
		return out
	}
	first := render()
	setExtra(9) // counters advance between scrapes
	second := render()
	if len(first) == 0 {
		t.Fatal("no counter samples found")
	}
	for k, v1 := range first {
		v2, ok := second[k]
		if !ok {
			t.Fatalf("counter %q vanished between expositions", k)
		}
		if v2 < v1 {
			t.Errorf("counter %q regressed: %v -> %v", k, v1, v2)
		}
	}
	// Counters report the total since Start: the pre-Start value 3 is
	// baselined away, so the scrape shows 9-3 = 6.
	if second["t_escaped_total|cls="+nastyLabel] != 6 {
		t.Errorf("escaped counter value %v, want 6", second["t_escaped_total|cls="+nastyLabel])
	}
}
