package telemetry

// The OpenMetrics lint gate: the strict exposition parser (lint.go)
// run over a recorder that exercises every family type and the label
// escapes — # TYPE and # HELP precede a family's samples, counter
// samples carry the _total suffix, label values round-trip through
// escaping, counters are monotone across expositions, and the document
// terminates with # EOF. CI runs these tests (-run TestOpenMetrics) as
// a dedicated lint step.

import (
	"bytes"
	"fmt"
	"testing"

	"es2/internal/metrics"
	"es2/internal/sim"
)

// parseOpenMetrics runs the exported lint parser, failing the test on
// the first structural violation.
func parseOpenMetrics(t *testing.T, text string) []ExpositionFamily {
	t.Helper()
	fams, err := ParseExposition(text)
	if err != nil {
		t.Fatalf("exposition lint: %v", err)
	}
	return fams
}

const nastyLabel = "cls \"a\\b\"\nend"

// lintRig builds a recorder whose exposition exercises every family
// type and the label escapes.
func lintRig() (*testRig, func(float64)) {
	rig := newTestRig(10 * sim.Millisecond)
	var extra float64
	rig.rec.Counter("t_escaped", "Counter with a hostile label value.",
		[]Label{{Key: "cls", Value: nastyLabel}}, func() float64 { return extra })
	labeled := metrics.NewLogHistogram()
	labeled.Observe(5 * sim.Microsecond)
	rig.rec.Histogram("t_lab_seconds", "Labeled latency spectrum.",
		[]Label{{Key: "path", Value: "posted"}}, labeled)
	return rig, func(v float64) { extra = v }
}

func TestOpenMetricsStructure(t *testing.T) {
	rig, setExtra := lintRig()
	setExtra(7)
	rig.run(t, 25*sim.Millisecond)
	var buf bytes.Buffer
	if err := rig.rec.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	fams := parseOpenMetrics(t, buf.String())

	byName := map[string]ExpositionFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	for name, typ := range map[string]string{
		"t_ops":         "counter",
		"t_escaped":     "counter",
		"t_depth":       "gauge",
		"t_busy":        "gauge",
		"t_lat_seconds": "summary",
		"t_lab_seconds": "summary",
	} {
		f, ok := byName[name]
		if !ok {
			t.Fatalf("family %q missing from exposition", name)
		}
		if f.Type != typ {
			t.Errorf("family %q has type %q, want %q", name, f.Type, typ)
		}
	}
	// Summaries expose the full quantile spectrum plus _sum/_count.
	lat := byName["t_lat_seconds"]
	var quantiles []string
	for _, s := range lat.Samples {
		if q, ok := s.Labels["quantile"]; ok {
			quantiles = append(quantiles, q)
		}
	}
	want := []string{"0.5", "0.9", "0.99", "0.999"}
	if fmt.Sprint(quantiles) != fmt.Sprint(want) {
		t.Errorf("quantile spectrum %v, want %v", quantiles, want)
	}
}

func TestOpenMetricsLabelEscapingRoundTrip(t *testing.T) {
	rig, setExtra := lintRig()
	setExtra(1)
	rig.run(t, 25*sim.Millisecond)
	var buf bytes.Buffer
	if err := rig.rec.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	for _, f := range parseOpenMetrics(t, buf.String()) {
		if f.Name != "t_escaped" {
			continue
		}
		got := f.Samples[0].Labels["cls"]
		if got != nastyLabel {
			t.Fatalf("label value round-tripped to %q, want %q", got, nastyLabel)
		}
		return
	}
	t.Fatal("t_escaped family missing")
}

func TestOpenMetricsCounterMonotonicity(t *testing.T) {
	rig, setExtra := lintRig()
	setExtra(3)
	rig.run(t, 25*sim.Millisecond)

	render := func() map[string]float64 {
		var buf bytes.Buffer
		if err := rig.rec.WriteOpenMetrics(&buf); err != nil {
			t.Fatal(err)
		}
		out := map[string]float64{}
		for _, f := range parseOpenMetrics(t, buf.String()) {
			if f.Type != "counter" {
				continue
			}
			for _, s := range f.Samples {
				out[s.Key()] = s.Value
			}
		}
		return out
	}
	first := render()
	setExtra(9) // counters advance between scrapes
	second := render()
	if len(first) == 0 {
		t.Fatal("no counter samples found")
	}
	for k, v1 := range first {
		v2, ok := second[k]
		if !ok {
			t.Fatalf("counter %q vanished between expositions", k)
		}
		if v2 < v1 {
			t.Errorf("counter %q regressed: %v -> %v", k, v1, v2)
		}
	}
	// Counters report the total since Start: the pre-Start value 3 is
	// baselined away, so the scrape shows 9-3 = 6.
	if second["t_escaped_total|cls="+nastyLabel] != 6 {
		t.Errorf("escaped counter value %v, want 6", second["t_escaped_total|cls="+nastyLabel])
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	for _, tc := range []struct {
		name string
		text string
	}{
		{"no eof", "# TYPE a gauge\n# HELP a x.\na 1\n"},
		{"sample before type", "a 1\n# EOF\n"},
		{"sample before help", "# TYPE a gauge\na 1\n# EOF\n"},
		{"counter without total", "# TYPE a counter\n# HELP a x.\na 1\n# EOF\n"},
		{"duplicate family", "# TYPE a gauge\n# HELP a x.\na 1\n# TYPE a gauge\n# HELP a x.\na 2\n# EOF\n"},
		{"unknown type", "# TYPE a widget\n# HELP a x.\na 1\n# EOF\n"},
		{"empty family", "# TYPE a gauge\n# HELP a x.\n# EOF\n"},
		{"bad value", "# TYPE a gauge\n# HELP a x.\na pear\n# EOF\n"},
		{"unterminated labels", "# TYPE a gauge\n# HELP a x.\na{k=\"v\" 1\n# EOF\n"},
	} {
		if _, err := ParseExposition(tc.text); err == nil {
			t.Errorf("%s: parser accepted malformed exposition", tc.name)
		}
	}
}
