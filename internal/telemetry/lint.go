package telemetry

// A strict lint parser for the OpenMetrics text exposition format,
// asserting the structural rules Prometheus-family scrapers rely on:
// # TYPE and # HELP precede a family's samples, counter samples carry
// the _total suffix, summary samples are quantile/_sum/_count, label
// values honor the escape sequences, and the document terminates with
// # EOF. The telemetry tests run it as a CI lint gate, and the ops
// server's tests lint the live /metrics endpoint with the same parser.

import (
	"fmt"
	"strconv"
	"strings"
)

// ExpositionSample is one parsed sample line.
type ExpositionSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Key renders the sample's identity (name plus labels in sorted order)
// for cross-exposition comparison.
func (s ExpositionSample) Key() string {
	var b strings.Builder
	b.WriteString(s.Name)
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%s", k, s.Labels[k])
	}
	return b.String()
}

// ExpositionFamily is one parsed metric family.
type ExpositionFamily struct {
	Name    string
	Type    string
	Help    string
	Samples []ExpositionSample
}

// ParseExposition validates an OpenMetrics exposition's structure and
// returns its families in order. The first violation is returned as an
// error naming the offending line.
func ParseExposition(text string) ([]ExpositionFamily, error) {
	if !strings.HasSuffix(text, "# EOF\n") {
		return nil, fmt.Errorf("exposition does not terminate with %q", "# EOF\n")
	}
	lines := strings.Split(strings.TrimSuffix(text, "\n"), "\n")
	if lines[len(lines)-1] != "# EOF" {
		return nil, fmt.Errorf("last line is %q, want %q", lines[len(lines)-1], "# EOF")
	}
	var fams []ExpositionFamily
	var cur *ExpositionFamily
	seen := map[string]bool{}
	for i, line := range lines[:len(lines)-1] {
		switch {
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", i+1, line)
			}
			name, typ := parts[0], parts[1]
			if seen[name] {
				return nil, fmt.Errorf("line %d: family %q declared twice", i+1, name)
			}
			seen[name] = true
			switch typ {
			case "counter", "gauge", "summary":
			default:
				return nil, fmt.Errorf("line %d: family %q has unknown type %q", i+1, name, typ)
			}
			fams = append(fams, ExpositionFamily{Name: name, Type: typ})
			cur = &fams[len(fams)-1]
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if cur == nil || parts[0] != cur.Name {
				return nil, fmt.Errorf("line %d: HELP for %q outside its family block", i+1, parts[0])
			}
			if len(cur.Samples) > 0 {
				return nil, fmt.Errorf("line %d: HELP for %q after its samples", i+1, cur.Name)
			}
			if cur.Help != "" {
				return nil, fmt.Errorf("line %d: duplicate HELP for %q", i+1, cur.Name)
			}
			if len(parts) != 2 || parts[1] == "" {
				return nil, fmt.Errorf("line %d: family %q has empty help text", i+1, cur.Name)
			}
			cur.Help = parts[1]
		case strings.HasPrefix(line, "#"):
			return nil, fmt.Errorf("line %d: unexpected comment %q", i+1, line)
		default:
			s, err := parseExpositionSample(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", i+1, err)
			}
			if cur == nil {
				return nil, fmt.Errorf("line %d: sample %q before any TYPE line", i+1, s.Name)
			}
			if cur.Help == "" {
				return nil, fmt.Errorf("line %d: sample %q before its family's HELP", i+1, s.Name)
			}
			if err := checkExpositionName(cur, s); err != nil {
				return nil, fmt.Errorf("line %d: %w", i+1, err)
			}
			cur.Samples = append(cur.Samples, s)
		}
	}
	for _, f := range fams {
		if len(f.Samples) == 0 {
			return nil, fmt.Errorf("family %q declares TYPE/HELP but has no samples", f.Name)
		}
	}
	return fams, nil
}

// checkExpositionName enforces the per-type sample naming rules.
func checkExpositionName(f *ExpositionFamily, s ExpositionSample) error {
	switch f.Type {
	case "counter":
		if s.Name != f.Name+"_total" {
			return fmt.Errorf("counter sample %q must be %q", s.Name, f.Name+"_total")
		}
	case "gauge":
		if s.Name != f.Name {
			return fmt.Errorf("gauge sample %q must be %q", s.Name, f.Name)
		}
	case "summary":
		switch s.Name {
		case f.Name:
			if _, ok := s.Labels["quantile"]; !ok {
				return fmt.Errorf("summary sample %q lacks a quantile label", s.Name)
			}
		case f.Name + "_sum", f.Name + "_count":
		default:
			return fmt.Errorf("summary sample %q not in {%s, %s_sum, %s_count}",
				s.Name, f.Name, f.Name, f.Name)
		}
	}
	return nil
}

// parseExpositionSample parses `name{k="v",...} value`, honoring the
// label escape sequences.
func parseExpositionSample(line string) (ExpositionSample, error) {
	s := ExpositionSample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if rest[0] == '{' {
		rest = rest[1:]
		for len(rest) > 0 && rest[0] != '}' {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				return s, fmt.Errorf("malformed labels in %q", line)
			}
			key := rest[:eq]
			rest = rest[eq+2:]
			var raw strings.Builder
			for {
				if len(rest) == 0 {
					return s, fmt.Errorf("unterminated label value in %q", line)
				}
				c := rest[0]
				if c == '\\' {
					if len(rest) < 2 {
						return s, fmt.Errorf("dangling escape in %q", line)
					}
					raw.WriteByte(rest[0])
					raw.WriteByte(rest[1])
					rest = rest[2:]
					continue
				}
				if c == '"' {
					rest = rest[1:]
					break
				}
				raw.WriteByte(c)
				rest = rest[1:]
			}
			s.Labels[key] = UnescapeLabel(raw.String())
			if len(rest) > 0 && rest[0] == ',' {
				rest = rest[1:]
			}
		}
		if len(rest) == 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		rest = rest[1:]
	}
	if len(rest) == 0 || rest[0] != ' ' {
		return s, fmt.Errorf("missing value separator in %q", line)
	}
	v, err := strconv.ParseFloat(rest[1:], 64)
	if err != nil {
		return s, fmt.Errorf("unparseable value in %q: %v", line, err)
	}
	s.Value = v
	return s, nil
}
