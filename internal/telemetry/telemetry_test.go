package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"es2/internal/metrics"
	"es2/internal/sim"
)

// testRig is a small deterministic simulation: a counter that gains 2
// every 3ms, a gauge mirroring the event count, and a fraction whose
// numerator advances at half the denominator's rate.
type testRig struct {
	eng  *sim.Engine
	rec  *Recorder
	n    float64 // cumulative counter
	g    float64 // gauge level
	num  float64
	den  float64
	hist *metrics.LogHistogram
}

func newTestRig(window sim.Time) *testRig {
	rig := &testRig{eng: sim.NewEngine(1), hist: metrics.NewLogHistogram()}
	rig.rec = New(rig.eng, window)
	rig.rec.Counter("t_ops", "Operations completed.",
		[]Label{{Key: "cls", Value: "a,b"}}, func() float64 { return rig.n })
	rig.rec.Gauge("t_depth", "Queue depth.", nil, func() float64 { return rig.g })
	rig.rec.Fraction("t_busy", "Busy fraction.", nil,
		func() float64 { return rig.num }, func() float64 { return rig.den })
	rig.rec.Histogram("t_lat_seconds", "Latency spectrum.", nil, rig.hist)
	var tick func()
	tick = func() {
		rig.n += 2
		rig.g = rig.n / 2
		rig.num += 1
		rig.den += 2
		rig.hist.Observe(sim.Time(1000 + int64(rig.n)*100))
		rig.eng.After(3*sim.Millisecond, tick)
	}
	rig.eng.After(3*sim.Millisecond, tick)
	return rig
}

func (rig *testRig) run(t *testing.T, end sim.Time) {
	t.Helper()
	rig.rec.Start(end)
	rig.eng.Run(end)
	rig.rec.Finalize()
}

func TestRecorderWindowsAndDeltas(t *testing.T) {
	rig := newTestRig(10 * sim.Millisecond)
	rig.run(t, 25*sim.Millisecond)

	wins := rig.rec.Windows()
	if len(wins) != 3 {
		t.Fatalf("got %d windows, want 3", len(wins))
	}
	wantBounds := [][2]sim.Time{
		{0, 10 * sim.Millisecond},
		{10 * sim.Millisecond, 20 * sim.Millisecond},
		{20 * sim.Millisecond, 25 * sim.Millisecond},
	}
	for i, w := range wins {
		if w.Start != wantBounds[i][0] || w.End != wantBounds[i][1] {
			t.Errorf("window %d spans [%v, %v], want [%v, %v]",
				i, w.Start, w.End, wantBounds[i][0], wantBounds[i][1])
		}
	}

	cols := rig.rec.Columns()
	if cols[0] != `t_ops{cls="a,b"}` {
		t.Errorf("counter column %q", cols[0])
	}
	var sum float64
	for _, w := range wins {
		sum += w.Values[0]
	}
	if total := rig.rec.Total(cols[0]); sum != total {
		t.Errorf("windowed deltas sum to %v, Total reports %v", sum, total)
	}
	if rig.n == 0 || sum != rig.n {
		t.Errorf("deltas sum to %v, cumulative counter is %v", sum, rig.n)
	}
	// The gauge's final sample is the level at the horizon; the fraction
	// is Δnum/Δden = 0.5 in every window with events.
	if got := wins[2].Values[1]; got != rig.g {
		t.Errorf("final gauge sample %v, level is %v", got, rig.g)
	}
	for i, w := range wins {
		if w.Values[2] != 0.5 {
			t.Errorf("window %d fraction %v, want 0.5", i, w.Values[2])
		}
	}
}

func TestRecorderBaselinesAtStart(t *testing.T) {
	rig := newTestRig(10 * sim.Millisecond)
	// Let activity accumulate before Start: the recorder must baseline
	// it away so windows only see in-measurement deltas.
	rig.eng.Run(9 * sim.Millisecond)
	pre := rig.n
	if pre == 0 {
		t.Fatal("no pre-measurement activity")
	}
	rig.run(t, 29*sim.Millisecond)
	var sum float64
	for _, w := range rig.rec.Windows() {
		sum += w.Values[0]
	}
	if sum != rig.n-pre {
		t.Errorf("deltas sum to %v, want %v (cumulative %v minus baseline %v)",
			sum, rig.n-pre, rig.n, pre)
	}
}

func TestRecorderCSV(t *testing.T) {
	rig := newTestRig(10 * sim.Millisecond)
	rig.run(t, 25*sim.Millisecond)
	var buf bytes.Buffer
	if err := rig.rec.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 1+3 {
		t.Fatalf("got %d CSV lines, want header + 3 windows:\n%s", len(lines), buf.String())
	}
	// The counter column's comma-bearing label forces RFC 4180 quoting.
	wantHeader := `window,start_s,end_s,"t_ops{cls=""a,b""}",t_depth,t_busy`
	if lines[0] != wantHeader {
		t.Errorf("header %q, want %q", lines[0], wantHeader)
	}
	// Counter cells are per-second rates: window 0 spans 10ms and saw
	// deltas of 2 every 3ms (3ms, 6ms, 9ms) = 6 ops -> 600 ops/s.
	if !strings.HasPrefix(lines[1], "0,0,0.01,600,") {
		t.Errorf("window 0 row %q, want prefix %q", lines[1], "0,0,0.01,600,")
	}
}

func TestRecorderDeterministicExports(t *testing.T) {
	render := func() (string, string) {
		rig := newTestRig(7 * sim.Millisecond)
		rig.run(t, 40*sim.Millisecond)
		var prom, csv bytes.Buffer
		if err := rig.rec.WriteOpenMetrics(&prom); err != nil {
			t.Fatal(err)
		}
		if err := rig.rec.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		return prom.String(), csv.String()
	}
	p1, c1 := render()
	p2, c2 := render()
	if p1 != p2 {
		t.Error("OpenMetrics exposition differs between identical runs")
	}
	if c1 != c2 {
		t.Error("CSV export differs between identical runs")
	}
}

func TestRecorderFinalizeIdempotent(t *testing.T) {
	rig := newTestRig(10 * sim.Millisecond)
	rig.run(t, 25*sim.Millisecond)
	n := len(rig.rec.Windows())
	rig.rec.Finalize()
	if len(rig.rec.Windows()) != n {
		t.Error("second Finalize appended a window")
	}
}

func TestRecorderExactBoundaryNoPartialWindow(t *testing.T) {
	// A horizon landing exactly on a boundary must not produce an empty
	// trailing window.
	rig := newTestRig(10 * sim.Millisecond)
	rig.run(t, 30*sim.Millisecond)
	wins := rig.rec.Windows()
	if len(wins) != 3 {
		t.Fatalf("got %d windows, want 3", len(wins))
	}
	if last := wins[2]; last.Start != 20*sim.Millisecond || last.End != 30*sim.Millisecond {
		t.Errorf("last window [%v, %v], want [20ms, 30ms]", last.Start, last.End)
	}
}
