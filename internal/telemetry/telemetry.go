// Package telemetry implements the windowed telemetry recorder: a set
// of named probes over the simulation's existing counters, sampled at
// fixed simulated-time window boundaries, plus full-spectrum latency
// histograms, exported deterministically as OpenMetrics text and CSV.
//
// The recorder is strictly observational. Probes read model state and
// never mutate it; boundary events draw no randomness; the same spec
// and seed therefore produce byte-identical exports, and enabling the
// recorder changes no simulation outcome.
//
// Cumulative counters are snapshotted at every boundary and reported
// as per-window deltas, so the windowed series integrate exactly to
// the end-of-run totals: the final partial window is closed by
// Finalize, which the harness calls after the engine stops at the
// measurement horizon — the same instant the scalar results are read.
package telemetry

import (
	"fmt"
	"io"
	"strconv"

	"es2/internal/metrics"
	"es2/internal/sim"
)

// Kind classifies a probe.
type Kind uint8

const (
	// KindCounter probes read a cumulative monotone count; windows
	// report deltas, the exposition reports the total since Start.
	KindCounter Kind = iota
	// KindGauge probes read an instantaneous level, sampled at each
	// window's end.
	KindGauge
	// KindFraction probes are a ratio of two cumulative quantities;
	// windows report Δnum/Δden (0 when Δden is 0).
	KindFraction
)

// Label is one OpenMetrics label pair.
type Label struct{ Key, Value string }

// probe is one registered series.
type probe struct {
	family string
	help   string
	kind   Kind
	labels []Label
	get    func() float64 // cumulative (counter/fraction num) or level (gauge)
	den    func() float64 // fraction denominator (cumulative); nil otherwise

	base, baseDen   float64 // snapshot at the current window's start
	start, startDen float64 // snapshot at recorder Start
}

// column renders the probe's CSV column / series identity:
// family{k="v",...}.
func (p *probe) column() string {
	if len(p.labels) == 0 {
		return p.family
	}
	s := p.family + "{"
	for i, l := range p.labels {
		if i > 0 {
			s += ","
		}
		s += l.Key + "=\"" + escapeLabel(l.Value) + "\""
	}
	return s + "}"
}

// histProbe is one registered latency histogram, exported as an
// OpenMetrics summary with the full quantile spectrum.
type histProbe struct {
	family string
	help   string
	labels []Label
	h      *metrics.LogHistogram
}

// Window is one closed sampling window. Values align with Columns():
// per-window deltas for counters, end-of-window samples for gauges,
// Δnum/Δden for fractions.
type Window struct {
	Start, End sim.Time
	Values     []float64
}

// Recorder is the windowed telemetry recorder. Register probes during
// deterministic build, call Start at the beginning of the measurement
// window and Finalize after the engine reaches the horizon, then
// export with WriteOpenMetrics / WriteCSV.
type Recorder struct {
	eng    *sim.Engine
	window sim.Time

	probes []*probe
	hists  []*histProbe

	windows      []Window
	startT, endT sim.Time
	lastBoundary sim.Time
	started      bool
	finalized    bool
}

// New creates a recorder sampling every window of simulated time.
func New(eng *sim.Engine, window sim.Time) *Recorder {
	if window <= 0 {
		panic("telemetry: window must be positive")
	}
	return &Recorder{eng: eng, window: window}
}

// Counter registers a cumulative monotone series. get returns the
// current cumulative value; the recorder derives windowed deltas.
func (r *Recorder) Counter(family, help string, labels []Label, get func() float64) {
	r.add(&probe{family: family, help: help, kind: KindCounter, labels: labels, get: get})
}

// Gauge registers an instantaneous level, sampled at window ends.
func (r *Recorder) Gauge(family, help string, labels []Label, get func() float64) {
	r.add(&probe{family: family, help: help, kind: KindGauge, labels: labels, get: get})
}

// Fraction registers a ratio of two cumulative quantities (e.g. TIG =
// guest time over guest+host time). Each window reports the ratio of
// the in-window deltas.
func (r *Recorder) Fraction(family, help string, labels []Label, num, den func() float64) {
	r.add(&probe{family: family, help: help, kind: KindFraction, labels: labels, get: num, den: den})
}

// Histogram registers a latency histogram for summary exposition. The
// histogram accumulates over the whole measurement window; the caller
// resets it at Start time.
func (r *Recorder) Histogram(family, help string, labels []Label, h *metrics.LogHistogram) {
	r.hists = append(r.hists, &histProbe{family: family, help: help, labels: labels, h: h})
}

func (r *Recorder) add(p *probe) {
	if r.started {
		panic("telemetry: probe registered after Start")
	}
	r.probes = append(r.probes, p)
}

// Start begins recording: the current engine time becomes the first
// window's start, and boundary samples are scheduled every window
// strictly before end. The final (possibly partial) window is closed
// by Finalize, not by an engine event, so its end coincides exactly
// with the instant the harness reads its scalar results.
func (r *Recorder) Start(end sim.Time) {
	if r.started {
		panic("telemetry: Start called twice")
	}
	r.started = true
	r.startT = r.eng.Now()
	r.endT = end
	r.lastBoundary = r.startT
	for _, p := range r.probes {
		p.start = p.get()
		p.base = p.start
		if p.den != nil {
			p.startDen = p.den()
			p.baseDen = p.startDen
		}
	}
	r.scheduleNext()
}

func (r *Recorder) scheduleNext() {
	next := r.lastBoundary + r.window
	if next >= r.endT {
		return // Finalize closes the remainder
	}
	r.eng.At(next, func() {
		r.closeWindow(next)
		r.scheduleNext()
	})
}

// closeWindow snapshots every probe and appends the finished window.
func (r *Recorder) closeWindow(end sim.Time) {
	w := Window{Start: r.lastBoundary, End: end, Values: make([]float64, len(r.probes))}
	for i, p := range r.probes {
		switch p.kind {
		case KindCounter:
			v := p.get()
			w.Values[i] = v - p.base
			p.base = v
		case KindGauge:
			w.Values[i] = p.get()
		case KindFraction:
			num, den := p.get(), p.den()
			if d := den - p.baseDen; d != 0 {
				w.Values[i] = (num - p.base) / d
			}
			p.base, p.baseDen = num, den
		}
	}
	r.windows = append(r.windows, w)
	r.lastBoundary = end
}

// Finalize closes the final partial window at the measurement horizon.
// Call it after the engine's Run returns (the clock then reads exactly
// the horizon), before reading windows or writing exports.
func (r *Recorder) Finalize() {
	if !r.started || r.finalized {
		return
	}
	r.finalized = true
	if r.endT > r.lastBoundary {
		r.closeWindow(r.endT)
	}
}

// Columns returns the per-probe series identities, in registration
// order (the CSV column order).
func (r *Recorder) Columns() []string {
	cols := make([]string, len(r.probes))
	for i, p := range r.probes {
		cols[i] = p.column()
	}
	return cols
}

// Kinds returns the per-probe kinds, aligned with Columns.
func (r *Recorder) Kinds() []Kind {
	ks := make([]Kind, len(r.probes))
	for i, p := range r.probes {
		ks[i] = p.kind
	}
	return ks
}

// Windows returns the closed windows in time order.
func (r *Recorder) Windows() []Window { return r.windows }

// SeriesCount returns the number of registered series (probes plus
// histograms).
func (r *Recorder) SeriesCount() int { return len(r.probes) + len(r.hists) }

// Total returns a counter probe's cumulative value since Start (the
// value its windowed deltas sum to). It panics on unknown columns.
func (r *Recorder) Total(column string) float64 {
	for _, p := range r.probes {
		if p.column() == column {
			return p.get() - p.start
		}
	}
	panic(fmt.Sprintf("telemetry: unknown column %q", column))
}

// WriteCSV writes the per-window series: one row per window with the
// window index, start/end in seconds, and one column per probe —
// counters as per-second rates within the window, gauges and fractions
// as sampled. Output is byte-deterministic for a fixed spec and seed.
func (r *Recorder) WriteCSV(w io.Writer) error {
	bw := newErrWriter(w)
	bw.str("window,start_s,end_s")
	for _, p := range r.probes {
		bw.str(",")
		bw.str(csvQuote(p.column()))
	}
	bw.str("\n")
	for i, win := range r.windows {
		bw.str(strconv.Itoa(i))
		bw.str(",")
		bw.str(formatFloat(win.Start.Seconds()))
		bw.str(",")
		bw.str(formatFloat(win.End.Seconds()))
		secs := (win.End - win.Start).Seconds()
		for j, p := range r.probes {
			v := win.Values[j]
			if p.kind == KindCounter && secs > 0 {
				v /= secs
			}
			bw.str(",")
			bw.str(formatFloat(v))
		}
		bw.str("\n")
	}
	return bw.err
}

// csvQuote wraps a field in double quotes when it contains a comma or
// quote (label values can), doubling embedded quotes per RFC 4180.
func csvQuote(s string) string {
	need := false
	for i := 0; i < len(s); i++ {
		if s[i] == ',' || s[i] == '"' || s[i] == '\n' {
			need = true
			break
		}
	}
	if !need {
		return s
	}
	out := make([]byte, 0, len(s)+2)
	out = append(out, '"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' {
			out = append(out, '"')
		}
		out = append(out, s[i])
	}
	return string(append(out, '"'))
}

// formatFloat renders a float64 with the shortest round-trip
// representation — deterministic across runs and platforms.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// errWriter folds write errors so export code stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func newErrWriter(w io.Writer) *errWriter { return &errWriter{w: w} }

func (e *errWriter) str(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}
