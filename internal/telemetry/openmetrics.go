package telemetry

import (
	"io"
	"strings"
)

// Quantiles exposed for every latency histogram (the full spectrum the
// telemetry reports: p50/p90/p99/p99.9).
var summaryQuantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.5},
	{"0.9", 0.9},
	{"0.99", 0.99},
	{"0.999", 0.999},
}

// WriteOpenMetrics writes a single OpenMetrics text exposition of the
// recorder's state: counters as totals since Start, gauges at their
// final sample, fractions as the overall ratio, and histograms as
// summaries with the quantile spectrum plus _sum/_count. Families are
// emitted in registration order, each introduced by its # TYPE and
// # HELP lines, and the exposition ends with # EOF. Output is
// byte-deterministic for a fixed spec and seed.
func (r *Recorder) WriteOpenMetrics(w io.Writer) error {
	bw := newErrWriter(w)
	done := make(map[string]bool)
	for _, p := range r.probes {
		if done[p.family] {
			continue
		}
		done[p.family] = true
		r.writeFamily(bw, p.family)
	}
	for _, h := range r.hists {
		if done[h.family] {
			continue
		}
		done[h.family] = true
		r.writeSummaryFamily(bw, h.family)
	}
	bw.str("# EOF\n")
	return bw.err
}

// writeFamily emits one probe family: the TYPE/HELP header from its
// first registration, then every sample with that family name.
func (r *Recorder) writeFamily(bw *errWriter, family string) {
	var kind Kind
	var help string
	for _, p := range r.probes {
		if p.family == family {
			kind, help = p.kind, p.help
			break
		}
	}
	typ := "gauge"
	if kind == KindCounter {
		typ = "counter"
	}
	bw.str("# TYPE " + family + " " + typ + "\n")
	bw.str("# HELP " + family + " " + help + "\n")
	for _, p := range r.probes {
		if p.family != family {
			continue
		}
		name := family
		var v float64
		switch p.kind {
		case KindCounter:
			name += "_total"
			v = p.get() - p.start
		case KindGauge:
			v = p.get()
		case KindFraction:
			num := p.get() - p.start
			if den := p.den() - p.startDen; den != 0 {
				v = num / den
			}
		}
		bw.str(name)
		bw.str(renderLabels(p.labels, "", ""))
		bw.str(" ")
		bw.str(formatFloat(v))
		bw.str("\n")
	}
}

// writeSummaryFamily emits one histogram family as an OpenMetrics
// summary: quantile samples in seconds, then _sum and _count.
func (r *Recorder) writeSummaryFamily(bw *errWriter, family string) {
	var help string
	for _, h := range r.hists {
		if h.family == family {
			help = h.help
			break
		}
	}
	bw.str("# TYPE " + family + " summary\n")
	bw.str("# HELP " + family + " " + help + "\n")
	for _, h := range r.hists {
		if h.family != family {
			continue
		}
		for _, sq := range summaryQuantiles {
			bw.str(family)
			bw.str(renderLabels(h.labels, "quantile", sq.label))
			bw.str(" ")
			bw.str(formatFloat(h.h.Quantile(sq.q).Seconds()))
			bw.str("\n")
		}
		bw.str(family + "_sum")
		bw.str(renderLabels(h.labels, "", ""))
		bw.str(" ")
		bw.str(formatFloat(h.h.Sum().Seconds()))
		bw.str("\n")
		bw.str(family + "_count")
		bw.str(renderLabels(h.labels, "", ""))
		bw.str(" ")
		bw.str(formatFloat(float64(h.h.Count())))
		bw.str("\n")
	}
}

// renderLabels renders {k="v",...}, optionally appending one extra
// pair (the summary quantile), with OpenMetrics value escaping. An
// empty label set renders as nothing.
func renderLabels(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString("=\"")
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString("=\"")
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the OpenMetrics label-value escapes: backslash,
// double quote and line feed.
func escapeLabel(v string) string {
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// UnescapeLabel reverses escapeLabel (used by the exposition lint
// test's parser).
func UnescapeLabel(v string) string {
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' && i+1 < len(v) {
			i++
			switch v[i] {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(v[i])
			}
			continue
		}
		b.WriteByte(v[i])
	}
	return b.String()
}
