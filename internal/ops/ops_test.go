package ops

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"

	"es2/internal/telemetry"
)

// startPlane boots a server on a free port and tears it down with the
// test.
func startPlane(t *testing.T) *Server {
	t.Helper()
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func get(t *testing.T, s *Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s%s", s.Addr(), path))
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestHealthz(t *testing.T) {
	s := startPlane(t)
	code, body := get(t, s, "/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("healthz: code %d body %q", code, body)
	}
}

func TestProgressJSON(t *testing.T) {
	s := startPlane(t)
	s.StartRun("rack1/pi", 42)
	s.FinishRun(RunUpdate{
		Name: "rack1/pi", Seed: 42,
		EventsFired: 1000, SimSeconds: 0.15, WallSeconds: 0.5,
		AlertsFired: 2, AlertsCleared: 2,
	})
	s.StartRun("rack1/baseline", 43)

	code, body := get(t, s, "/progress")
	if code != http.StatusOK {
		t.Fatalf("progress: code %d", code)
	}
	var p Progress
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("progress JSON: %v\n%s", err, body)
	}
	if p.RunsStarted != 2 || p.RunsFinished != 1 {
		t.Errorf("runs started/finished = %d/%d, want 2/1", p.RunsStarted, p.RunsFinished)
	}
	if p.CurrentRun != "rack1/baseline" || p.CurrentSeed != 43 {
		t.Errorf("current run %q seed %d, want rack1/baseline 43", p.CurrentRun, p.CurrentSeed)
	}
	if p.EventsFired != 1000 || p.AlertsFired != 2 {
		t.Errorf("events/alerts = %d/%d, want 1000/2", p.EventsFired, p.AlertsFired)
	}
	if p.EventsPerSec != 2000 {
		t.Errorf("events_per_sec = %v, want 2000 (derived from wall seconds)", p.EventsPerSec)
	}
	if len(p.Recent) != 1 || p.Recent[0].Seed != 42 {
		t.Errorf("recent = %+v, want one entry for seed 42", p.Recent)
	}
}

// TestMetricsLint scrapes the live endpoint and runs the strict
// OpenMetrics parser over it — the same gate CI applies to the
// simulated-telemetry expositions.
func TestMetricsLint(t *testing.T) {
	s := startPlane(t)
	s.StartRun(`soak "odd\name"`+"\n", 7)
	s.FinishRun(RunUpdate{Name: `soak "odd\name"` + "\n", Seed: 7,
		EventsFired: 500, WallSeconds: 0.25, AlertsActive: 1})

	code, body := get(t, s, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: code %d", code)
	}
	fams, err := telemetry.ParseExposition(body)
	if err != nil {
		t.Fatalf("metrics lint: %v\n%s", err, body)
	}
	byName := map[string]telemetry.ExpositionFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	for name, typ := range map[string]string{
		"es2_ops_uptime_seconds":     "gauge",
		"es2_ops_runs_started":       "counter",
		"es2_ops_runs_finished":      "counter",
		"es2_ops_engine_events":      "counter",
		"es2_ops_events_per_sec":     "gauge",
		"es2_slo_alerts_fired":       "counter",
		"es2_slo_alerts_active":      "gauge",
		"es2_ops_run_events_per_sec": "gauge",
	} {
		f, ok := byName[name]
		if !ok {
			t.Fatalf("family %q missing from /metrics", name)
		}
		if f.Type != typ {
			t.Errorf("family %q has type %q, want %q", name, f.Type, typ)
		}
	}
	// The hostile run label round-trips through escaping.
	perRun := byName["es2_ops_run_events_per_sec"]
	if got := perRun.Samples[0].Labels["run"]; got != `soak "odd\name"`+"\n" {
		t.Errorf("run label round-tripped to %q", got)
	}
	if v := perRun.Samples[0].Value; v != 2000 {
		t.Errorf("per-run events_per_sec = %v, want 2000", v)
	}
}

func TestPprofIndex(t *testing.T) {
	s := startPlane(t)
	code, body := get(t, s, "/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("pprof index: code %d", code)
	}
	if len(body) == 0 {
		t.Fatal("pprof index: empty body")
	}
}
