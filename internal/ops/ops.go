// Package ops is the live operations plane for long-running drivers:
// a real HTTP server (the only wall-clock component in the tree)
// exposing Prometheus-style /metrics, a /healthz liveness probe, a
// /progress JSON snapshot, and net/http/pprof for profiling the
// simulator process itself.
//
// The server never touches a running engine. Drivers report progress
// between runs (StartRun/FinishRun) or from their own heartbeat
// goroutine; every handler reads a mutex-guarded copy. Serving is
// therefore purely observational: a soak with -serve produces
// byte-identical simulation results to one without.
package ops

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// maxRecentRuns bounds the per-run history kept for /progress.
const maxRecentRuns = 64

// RunUpdate is one finished run's contribution to the plane's totals.
type RunUpdate struct {
	Name          string  `json:"name"`
	Seed          int64   `json:"seed"`
	EventsFired   uint64  `json:"events_fired"`
	SimSeconds    float64 `json:"sim_seconds"`
	WallSeconds   float64 `json:"wall_seconds"`
	EventsPerSec  float64 `json:"events_per_sec"`
	AlertsFired   uint64  `json:"alerts_fired"`
	AlertsCleared uint64  `json:"alerts_cleared"`
	AlertsActive  uint64  `json:"alerts_active"`
}

// Progress is the /progress JSON document.
type Progress struct {
	UptimeSeconds float64     `json:"uptime_seconds"`
	RunsStarted   uint64      `json:"runs_started"`
	RunsFinished  uint64      `json:"runs_finished"`
	CurrentRun    string      `json:"current_run,omitempty"`
	CurrentSeed   int64       `json:"current_seed,omitempty"`
	EventsFired   uint64      `json:"events_fired"`
	SimSeconds    float64     `json:"sim_seconds"`
	EventsPerSec  float64     `json:"events_per_sec"`
	AlertsFired   uint64      `json:"alerts_fired"`
	AlertsCleared uint64      `json:"alerts_cleared"`
	AlertsActive  uint64      `json:"alerts_active"`
	Recent        []RunUpdate `json:"recent,omitempty"`
}

// Server is the ops plane. Create with Serve, stop with Close.
type Server struct {
	mu      sync.Mutex
	start   time.Time
	started uint64
	done    uint64
	curName string
	curSeed int64

	events     uint64
	simSec     float64
	wallSec    float64
	fired      uint64
	cleared    uint64
	active     uint64
	lastEvRate float64
	recent     []RunUpdate

	lis net.Listener
	srv *http.Server
}

// Serve starts the plane on addr (":0" picks a free port). The
// listener is bound synchronously, so a non-error return means the
// endpoints are live; serving then proceeds on a background goroutine.
func Serve(addr string) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ops: listen %s: %w", addr, err)
	}
	s := &Server{start: time.Now(), lis: lis}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(lis) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr is the bound listen address ("127.0.0.1:43210").
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close stops the listener and all handlers.
func (s *Server) Close() error { return s.srv.Close() }

// StartRun records that a run began. Call between runs only — never
// from inside a simulation.
func (s *Server) StartRun(name string, seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.started++
	s.curName, s.curSeed = name, seed
}

// FinishRun folds one finished run into the totals.
func (s *Server) FinishRun(u RunUpdate) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done++
	s.curName, s.curSeed = "", 0
	s.events += u.EventsFired
	s.simSec += u.SimSeconds
	s.wallSec += u.WallSeconds
	s.fired += u.AlertsFired
	s.cleared += u.AlertsCleared
	s.active += u.AlertsActive
	if u.EventsPerSec == 0 && u.WallSeconds > 0 {
		u.EventsPerSec = float64(u.EventsFired) / u.WallSeconds
	}
	s.lastEvRate = u.EventsPerSec
	s.recent = append(s.recent, u)
	if len(s.recent) > maxRecentRuns {
		s.recent = s.recent[len(s.recent)-maxRecentRuns:]
	}
}

// snapshot copies the guarded state.
func (s *Server) snapshot() Progress {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := Progress{
		UptimeSeconds: time.Since(s.start).Seconds(),
		RunsStarted:   s.started,
		RunsFinished:  s.done,
		CurrentRun:    s.curName,
		CurrentSeed:   s.curSeed,
		EventsFired:   s.events,
		SimSeconds:    s.simSec,
		EventsPerSec:  s.lastEvRate,
		AlertsFired:   s.fired,
		AlertsCleared: s.cleared,
		AlertsActive:  s.active,
	}
	p.Recent = append(p.Recent, s.recent...)
	return p
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.snapshot()) //nolint:errcheck // best-effort HTTP response
}

// handleMetrics hand-renders a lint-clean OpenMetrics exposition:
// every family introduced by # TYPE then # HELP, counter samples with
// the _total suffix, and a terminating # EOF.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	p := s.snapshot()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	var b strings.Builder
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# TYPE %s gauge\n# HELP %s %s\n%s %g\n", name, name, help, name, v)
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# TYPE %s counter\n# HELP %s %s\n%s_total %g\n", name, name, help, name, v)
	}
	gauge("es2_ops_uptime_seconds", "Wall-clock seconds since the ops plane started.", p.UptimeSeconds)
	counter("es2_ops_runs_started", "Simulation runs started by this process.", float64(p.RunsStarted))
	counter("es2_ops_runs_finished", "Simulation runs finished by this process.", float64(p.RunsFinished))
	gauge("es2_ops_run_active", "Whether a simulation run is in flight (0 or 1).",
		float64(p.RunsStarted-p.RunsFinished))
	counter("es2_ops_engine_events", "Engine events fired across finished runs.", float64(p.EventsFired))
	counter("es2_ops_sim_seconds", "Simulated seconds completed across finished runs.", p.SimSeconds)
	gauge("es2_ops_events_per_sec", "Engine events per wall second of the most recent finished run.", p.EventsPerSec)
	counter("es2_slo_alerts_fired", "SLO alert fire events across finished runs.", float64(p.AlertsFired))
	counter("es2_slo_alerts_cleared", "SLO alert clear events across finished runs.", float64(p.AlertsCleared))
	gauge("es2_slo_alerts_active", "SLO alerts still firing at the end of the most recent runs.", float64(p.AlertsActive))
	gauge("es2_ops_goroutines", "Goroutines in the simulator process.", float64(runtime.NumGoroutine()))
	gauge("es2_ops_heap_bytes", "Live heap bytes in the simulator process.", float64(ms.HeapAlloc))

	// Per-run progress for the most recent runs, labeled by name/seed.
	// Deduplicated by (name, seed), last report winning, so a re-run
	// scenario never emits two samples with identical labels.
	if len(p.Recent) > 0 {
		b.WriteString("# TYPE es2_ops_run_events_per_sec gauge\n")
		b.WriteString("# HELP es2_ops_run_events_per_sec Engine events per wall second, per recent run.\n")
		last := map[string]RunUpdate{}
		var keys []string
		for _, u := range p.Recent {
			k := fmt.Sprintf("%s|%d", u.Name, u.Seed)
			if _, ok := last[k]; !ok {
				keys = append(keys, k)
			}
			last[k] = u
		}
		sort.Strings(keys)
		for _, k := range keys {
			u := last[k]
			fmt.Fprintf(&b, "es2_ops_run_events_per_sec{run=\"%s\",seed=\"%d\"} %g\n",
				escapeLabelValue(u.Name), u.Seed, u.EventsPerSec)
		}
	}
	b.WriteString("# EOF\n")

	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	fmt.Fprint(w, b.String()) //nolint:errcheck // best-effort HTTP response
}

// escapeLabelValue applies the OpenMetrics label-value escapes:
// backslash, double quote and line feed.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}
