package vhost

import (
	"fmt"

	"es2/internal/causal"
	"es2/internal/netsim"
	"es2/internal/sim"
	"es2/internal/trace"
	"es2/internal/virtio"
)

// Device is one vhost-net instance: the in-kernel back-end of a guest's
// paravirtual NIC, with a TX and an RX handler scheduled by the
// device's I/O thread. It implements netsim.Endpoint for the host side
// of the wire.
type Device struct {
	Name   string
	IO     *IOThread
	TXQ    *virtio.Virtqueue
	RXQ    *virtio.Virtqueue
	Port   netsim.Sender
	Params Params

	// Hybrid enables ES2's hybrid I/O handling (Algorithm 1) with the
	// given Quota; otherwise the handlers run vanilla notification
	// mode.
	Hybrid bool
	Quota  int

	// Path, when non-nil, attributes event-path stage latencies
	// (notify, backend-tx, backend-rx). Nil costs nothing.
	Path *trace.PathTracer

	// Causal, when non-nil, stamps per-request causal chains at the
	// back-end transitions (notify close, wire send, used-ring
	// publish). Nil costs nothing.
	Causal *causal.Probe

	// Sidecore enables ELVIS-style dedicated-core polling (Har'El et
	// al., ATC'13 — the paper's Section II-C "Others"): the TX handler
	// never re-enables guest notifications and never sleeps, busy-
	// polling the virtqueue instead. Guest I/O requests are exit-less,
	// but the worker burns its core even when the queue is empty.
	Sidecore bool

	// CoalesceCount and CoalesceTimer enable receive interrupt
	// moderation (the vIC-style alternative the paper's Section II-C
	// argues against): the guest is signaled only after CoalesceCount
	// packets have accumulated or CoalesceTimer has elapsed since the
	// first unsignaled packet. Zero values disable moderation (signal
	// per handler turn, the vhost default).
	CoalesceCount int
	CoalesceTimer sim.Time

	coalesced   int
	coalesceEvt *sim.Handle
	// CoalesceFlushes counts timer-driven signals.
	CoalesceFlushes uint64

	tx  *txHandler
	rx  *rxHandler
	rng *sim.Rand

	backlog []*netsim.Packet

	// Wire-side statistics.
	TxPkts, TxBytes uint64
	RxPkts, RxBytes uint64
	// RxRingStarved counts turns that found no guest RX buffer;
	// BacklogDrops counts ingress packets dropped at the tap buffer.
	RxRingStarved uint64
	BacklogDrops  uint64
	// RePolls counts recovery re-enqueues of a handler that appeared
	// stuck behind a lost notification (see StartRePoll).
	RePolls uint64
}

// rxBudget is the per-turn packet budget of the RX handler (vhost's
// handle_rx weight).
const rxBudget = 64

// NewDevice wires a vhost device to its virtqueues, worker thread and
// wire port. quota is only meaningful with hybrid=true; the paper's
// poll_quota module parameter.
func NewDevice(name string, io *IOThread, txq, rxq *virtio.Virtqueue, port netsim.Sender, hybrid bool, quota int) (*Device, error) {
	if hybrid && quota <= 0 {
		return nil, fmt.Errorf("vhost: hybrid mode requires a positive quota")
	}
	if err := txq.Claim(); err != nil {
		return nil, err
	}
	if err := rxq.Claim(); err != nil {
		return nil, err
	}
	d := &Device{
		Name: name, IO: io, TXQ: txq, RXQ: rxq, Port: port,
		Params: io.params, Hybrid: hybrid, Quota: quota,
		rng: io.s.Engine().Rand().Fork(),
	}
	d.tx = &txHandler{dev: d}
	d.rx = &rxHandler{dev: d}
	txq.OnKick(d.tx.kicked)
	rxq.OnKick(d.rx.kicked)
	// vhost keeps RX-refill notifications suppressed unless starved for
	// guest buffers.
	rxq.SetNoNotify(true)
	return d, nil
}

// Receive implements netsim.Endpoint: ingress from the wire lands in
// the tap backlog and schedules the RX handler.
func (d *Device) Receive(p *netsim.Packet) {
	if len(d.backlog) >= d.Params.BacklogCap {
		d.BacklogDrops++
		return
	}
	if d.Path != nil {
		p.SpanT = d.IO.s.Now() // wire arrival: backend-rx span opens
	}
	// Wire/fabric transit (plus any peer turnaround) closes here.
	d.Causal.Mark(p.Chain, causal.StageWire, d.IO.s.Now())
	d.backlog = append(d.backlog, p)
	d.IO.enqueue(d.rx)
}

// Backlog returns the current ingress backlog length.
func (d *Device) Backlog() int { return len(d.backlog) }

// DropBacklog discards every queued ingress frame, counting them as
// backlog drops. Used by host-crash injection: the tap buffer does not
// survive the outage, while guest-RAM-resident state (the virtqueues)
// does. In-flight RX handler plans notice the head changed and abort
// safely.
func (d *Device) DropBacklog() int {
	n := len(d.backlog)
	for i := range d.backlog {
		d.backlog[i] = nil
	}
	d.backlog = d.backlog[:0]
	d.BacklogDrops += uint64(n)
	return n
}

// jitter perturbs a nominal handler cost by ±30% (copy-path and cache variance).
func (d *Device) jitter(c sim.Time) sim.Time { return d.rng.Jitter(c, 0.30) }

// moderated reports whether receive interrupt moderation is enabled.
func (d *Device) moderated() bool { return d.CoalesceCount > 1 || d.CoalesceTimer > 0 }

// noteRxPacket accumulates one packet toward the coalescing threshold
// and arms the flush timer on the first unsignaled packet.
func (d *Device) noteRxPacket() {
	if !d.moderated() {
		return
	}
	d.coalesced++
	if d.coalesced == 1 && d.CoalesceTimer > 0 {
		d.coalesceEvt = d.IO.s.Engine().After(d.CoalesceTimer, d.flushCoalesce)
	}
}

// flushCoalesce is the moderation timer: signal whatever accumulated.
func (d *Device) flushCoalesce() {
	d.coalesceEvt = nil
	if d.coalesced == 0 {
		return
	}
	d.coalesced = 0
	d.CoalesceFlushes++
	d.RXQ.Signal()
}

// takeSignal decides whether the turn-end signal should be emitted now
// under the active moderation policy (always true without moderation).
func (d *Device) takeSignal() bool {
	if !d.moderated() {
		return true
	}
	if d.coalesced >= d.CoalesceCount && d.CoalesceCount > 0 {
		d.coalesced = 0
		if d.coalesceEvt != nil {
			d.coalesceEvt.Cancel()
			d.coalesceEvt = nil
		}
		return true
	}
	return false
}

// TXPolling reports whether the TX handler currently holds guest
// notifications disabled (ES2 polling mode engaged or mid-service).
func (d *Device) TXPolling() bool { return d.TXQ.KickSuppressed() }

// EnableSidecore switches the device to ELVIS-style dedicated-core
// polling: guest TX notifications are permanently suppressed and the
// TX handler starts busy-polling immediately. Mutually exclusive with
// the hybrid scheme.
func (d *Device) EnableSidecore() {
	if d.Hybrid {
		panic("vhost: sidecore polling and the hybrid scheme are mutually exclusive")
	}
	d.Sidecore = true
	d.TXQ.SetNoNotify(true)
	d.IO.enqueue(d.tx)
}

// ResetStats zeroes the wire statistics.
func (d *Device) ResetStats() {
	d.TxPkts, d.TxBytes, d.RxPkts, d.RxBytes = 0, 0, 0, 0
	d.RxRingStarved, d.BacklogDrops = 0, 0
}

// StartRePoll arms the lost-kick recovery poller: a periodic check
// that re-enqueues a handler when work is demonstrably waiting but no
// progress has been made for two consecutive periods. This models the
// defensive re-poll real vhost performs on queue state changes — a
// suspected lost ioeventfd must not wedge the queue forever.
//
// Two strikes are required because a single stale observation is
// normal: the worker may simply not have been scheduled yet.
func (d *Device) StartRePoll(period sim.Time) {
	if period <= 0 {
		panic("vhost: re-poll period must be positive")
	}
	var txStrikes, rxStrikes int
	var lastTxPopped, lastRxPkts uint64
	eng := d.IO.s.Engine()
	var tick func()
	tick = func() {
		// TX: descriptors are available, the guest is not suppressed
		// from kicking (so vhost believes it is idle and waiting for a
		// kick), yet nothing has been consumed.
		if d.TXQ.AvailLen() > 0 && !d.TXQ.KickSuppressed() && d.TXQ.Popped == lastTxPopped {
			txStrikes++
		} else {
			txStrikes = 0
		}
		lastTxPopped = d.TXQ.Popped
		if txStrikes >= 2 && !d.IO.queued[d.tx] {
			txStrikes = 0
			d.RePolls++
			d.IO.enqueue(d.tx)
		}
		// RX: wire packets wait in the backlog, guest buffers exist,
		// yet nothing has been delivered.
		if len(d.backlog) > 0 && d.RXQ.AvailLen() > 0 && d.RxPkts == lastRxPkts {
			rxStrikes++
		} else {
			rxStrikes = 0
		}
		lastRxPkts = d.RxPkts
		if rxStrikes >= 2 && !d.IO.queued[d.rx] {
			rxStrikes = 0
			d.RePolls++
			d.IO.enqueue(d.rx)
		}
		eng.After(period, tick)
	}
	eng.After(period, tick)
}

// --- TX handler: Algorithm 1 ---

type txHandler struct {
	dev      *Device
	workload int
	requeued bool
}

// kicked is the ioeventfd callback: the guest's I/O request wakes the
// handler.
func (h *txHandler) kicked() { h.dev.IO.enqueue(h) }

func (h *txHandler) label() string { return "tx" }

// turnStart is Algorithm 1 lines 8-11: disable guest notifications if
// needed and reset the workload counter.
func (h *txHandler) turnStart() {
	h.workload = 0
	h.requeued = false
	if !h.dev.TXQ.KickSuppressed() {
		h.dev.TXQ.SetNoNotify(true)
	}
}

func (h *txHandler) plan() (sim.Time, func()) {
	dev := h.dev
	q := dev.TXQ
	if h.requeued {
		// Quota exhausted last step: the turn is over; we are already
		// back on the work queue with notifications still disabled.
		return 0, nil
	}
	desc, ok := q.Pop()
	if ok && dev.Path != nil {
		// Notify stage closes: the guest's doorbell (or suppressed-kick
		// post) has reached the back-end handler. The mechanism tag was
		// stamped by the guest at Add time.
		dev.Path.Observe(trace.StageNotify, trace.Mechanism(desc.SpanMech), dev.IO.s.Now()-desc.SpanT)
	}
	if ok {
		// The chain remembers whether its doorbell took an exit, so the
		// notify span lands on notify-exit or notify-poll accordingly.
		dev.Causal.MarkNotify(desc.CausalChain(), dev.IO.s.Now())
	}
	if !ok {
		if dev.Sidecore {
			// ELVIS-style polling never yields to notifications: pay
			// an empty-poll round and stay scheduled. This is the
			// wasted-cycles behaviour the paper contrasts the hybrid
			// scheme against.
			h.requeued = true
			dev.IO.requeue(h)
			dev.IO.act = actPoll
			return dev.Params.EmptyCheck, func() {}
		}
		// Queue drained before the quota: leave polling mode
		// (Algorithm 1 line 19): re-enable notifications, with the
		// standard race check against a concurrent guest add.
		q.SetNoNotify(false)
		if q.AvailLen() > 0 {
			q.SetNoNotify(true)
			dev.IO.act = actPoll
			return dev.Params.EmptyCheck, func() {}
		}
		return 0, nil
	}
	cost := dev.jitter(dev.Params.txCost(desc.Len))
	dev.IO.act = actTX
	var popT sim.Time
	if dev.Path != nil {
		popT = dev.IO.s.Now()
	}
	return cost, func() {
		if pkt, okP := desc.Payload.(*netsim.Packet); okP {
			if dev.Path != nil {
				dev.Path.Observe(trace.StageBackendTX, trace.MechNone, dev.IO.s.Now()-popT)
			}
			dev.Causal.Mark(pkt.Chain, causal.StageBackendTX, dev.IO.s.Now())
			dev.Port.Send(pkt)
			dev.TxPkts++
			dev.TxBytes += uint64(pkt.Bytes)
		}
		q.PushUsed(desc)
		q.Signal() // TX completion; normally suppressed by the guest
		h.workload++
		if dev.Hybrid && h.workload >= dev.Quota {
			// Algorithm 1 line 16: wait for the next turn, keeping the
			// guest's notifications disabled (polling mode persists).
			h.requeued = true
			dev.IO.requeue(h)
		}
	}
}

// --- RX handler ---

type rxHandler struct {
	dev           *Device
	served        int
	requeued      bool
	pendingSignal bool
}

// kicked is the guest's RX-refill notification.
func (h *rxHandler) kicked() { h.dev.IO.enqueue(h) }

func (h *rxHandler) label() string { return "rx" }

func (h *rxHandler) turnStart() {
	h.served = 0
	h.requeued = false
	if !h.dev.RXQ.KickSuppressed() {
		h.dev.RXQ.SetNoNotify(true)
	}
}

func (h *rxHandler) plan() (sim.Time, func()) {
	dev := h.dev
	if h.requeued || len(dev.backlog) == 0 || dev.RXQ.AvailLen() == 0 {
		// The turn is ending (quota, drained, or buffer-starved):
		// signal the guest once for the whole batch, as
		// vhost_signal does at the end of handle_rx — unless interrupt
		// moderation is holding the signal back.
		if h.pendingSignal {
			h.pendingSignal = false
			if dev.takeSignal() {
				dev.IO.act = actSignal
				return dev.Params.SignalCost, func() { dev.RXQ.Signal() }
			}
		}
		if h.requeued || len(dev.backlog) == 0 {
			return 0, nil // wake on next Receive (or next turn)
		}
		// No guest buffers: ask the guest to kick us after refilling.
		dev.RxRingStarved++
		dev.RXQ.SetNoNotify(false)
		if dev.RXQ.AvailLen() > 0 {
			dev.RXQ.SetNoNotify(true)
			dev.IO.act = actPoll
			return dev.Params.EmptyCheck, func() {}
		}
		return 0, nil
	}
	pkt := dev.backlog[0]
	cost := dev.jitter(dev.Params.rxCost(pkt.Bytes))
	dev.IO.act = actRX
	return cost, func() {
		if len(dev.backlog) == 0 || dev.backlog[0] != pkt {
			return // raced with a drop; nothing to do
		}
		copy(dev.backlog, dev.backlog[1:])
		dev.backlog[len(dev.backlog)-1] = nil
		dev.backlog = dev.backlog[:len(dev.backlog)-1]
		desc, ok := dev.RXQ.Pop()
		if !ok {
			dev.BacklogDrops++
			return
		}
		desc.Len = pkt.Bytes
		desc.Payload = pkt
		if dev.Path != nil {
			now := dev.IO.s.Now()
			// Backend-rx closes (tap backlog wait + copy into the guest
			// buffer); the ring-wait span opens on the used descriptor.
			dev.Path.Observe(trace.StageBackendRX, trace.MechNone, now-pkt.SpanT)
			desc.SpanT = now
		}
		dev.Causal.Mark(pkt.Chain, causal.StageBackendRX, dev.IO.s.Now())
		dev.RXQ.PushUsed(desc)
		h.pendingSignal = true
		dev.noteRxPacket()
		dev.RxPkts++
		dev.RxBytes += uint64(pkt.Bytes)
		h.served++
		// The ES2 quota governs guest I/O-request polling (the TX
		// virtqueue); wire ingress keeps vhost's own handle_rx budget
		// so receive batching is unaffected by the hybrid scheme.
		if h.served >= rxBudget && len(dev.backlog) > 0 {
			h.requeued = true
			dev.IO.requeue(h)
		}
	}
}
