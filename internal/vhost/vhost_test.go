package vhost

import (
	"testing"

	"es2/internal/netsim"
	"es2/internal/sched"
	"es2/internal/sim"
	"es2/internal/virtio"
)

// rig wires an IOThread + Device with a capturing wire endpoint. The
// guest side is driven by hand through the virtqueues.
type rig struct {
	eng  *sim.Engine
	s    *sched.Scheduler
	io   *IOThread
	dev  *Device
	wire []*netsim.Packet
}

func newRig(hybrid bool, quota int) *rig {
	eng := sim.NewEngine(1)
	s := sched.New(eng, 1, sched.DefaultParams())
	r := &rig{eng: eng, s: s}
	link := netsim.NewLink(eng, 40, sim.Microsecond)
	link.Attach(
		netsim.EndpointFunc(func(p *netsim.Packet) {}), // device side unused here
		netsim.EndpointFunc(func(p *netsim.Packet) { r.wire = append(r.wire, p) }),
	)
	txq := virtio.New("tx", 256)
	rxq := virtio.New("rx", 256)
	for i := 0; i < 256; i++ {
		rxq.Add(virtio.Desc{})
	}
	r.io = NewIOThread("io", s, 0, DefaultParams())
	dev, err := NewDevice("dev", r.io, txq, rxq, link.PortA(), hybrid, quota)
	if err != nil {
		panic(err)
	}
	r.dev = dev
	return r
}

// guestSend adds a packet to the TX queue and kicks (returning whether
// the kick was actually delivered).
func (r *rig) guestSend(bytes int) bool {
	if !r.dev.TXQ.Add(virtio.Desc{Len: bytes, Payload: &netsim.Packet{Bytes: bytes}}) {
		return false
	}
	return r.dev.TXQ.Kick()
}

func TestTXPathDeliversToWire(t *testing.T) {
	r := newRig(false, 0)
	for i := 0; i < 50; i++ {
		r.guestSend(1000)
	}
	r.eng.Run(10 * sim.Millisecond)
	if len(r.wire) != 50 {
		t.Fatalf("wire got %d packets, want 50", len(r.wire))
	}
	if r.dev.TxPkts != 50 || r.dev.TxBytes != 50_000 {
		t.Fatalf("device stats: %d pkts %d bytes", r.dev.TxPkts, r.dev.TxBytes)
	}
	// All descriptors must be completed back to the driver.
	if got := r.dev.TXQ.UsedLen(); got != 50 {
		t.Fatalf("used ring has %d descs, want 50", got)
	}
}

func TestVanillaSuppressesKicksWhileServicing(t *testing.T) {
	r := newRig(false, 0)
	// First kick wakes the handler; while it is servicing the initial
	// batch, further guest adds see NO_NOTIFY and are coalesced.
	r.guestSend(1000)
	r.dev.TXQ.Add(virtio.Desc{Len: 1000, Payload: &netsim.Packet{Bytes: 1000}})
	r.dev.TXQ.Add(virtio.Desc{Len: 1000, Payload: &netsim.Packet{Bytes: 1000}})
	r.eng.Run(5 * sim.Microsecond) // wake+switch done, mid-service of pkt 1 of 3
	delivered := 0
	for i := 0; i < 20; i++ {
		if r.guestSend(1000) {
			delivered++
		}
	}
	if delivered != 0 {
		t.Fatalf("%d kicks delivered during active service, want 0 (suppressed)", delivered)
	}
	r.eng.Run(10 * sim.Millisecond)
	if len(r.wire) != 23 {
		t.Fatalf("wire got %d packets, want 23", len(r.wire))
	}
	// After draining, notifications are re-enabled.
	if r.dev.TXQ.KickSuppressed() {
		t.Fatal("vanilla handler must re-enable notifications when idle")
	}
}

func TestHybridHoldsPollingAcrossTurns(t *testing.T) {
	r := newRig(true, 4)
	// Saturate: keep the queue non-empty so quota requeues happen.
	feed := 0
	var pump func()
	pump = func() {
		if feed < 200 {
			r.dev.TXQ.Add(virtio.Desc{Len: 500, Payload: &netsim.Packet{Bytes: 500}})
			if feed == 0 {
				r.dev.TXQ.Kick()
			}
			feed++
			r.eng.After(sim.Microsecond, pump)
		}
	}
	r.eng.After(0, pump)
	r.eng.Run(150 * sim.Microsecond)
	// Mid-load: polling mode engaged (notifications held disabled).
	if !r.dev.TXPolling() {
		t.Fatal("hybrid handler should hold polling mode under load")
	}
	r.eng.Run(10 * sim.Millisecond)
	if len(r.wire) != 200 {
		t.Fatalf("wire got %d packets, want 200", len(r.wire))
	}
	// Idle again: back to notification mode (Algorithm 1 line 19).
	if r.dev.TXPolling() {
		t.Fatal("handler should return to notification mode when the queue drains")
	}
	if r.dev.TXQ.Kicks != 1 {
		t.Fatalf("delivered kicks = %d, want 1 (single wake for the whole burst)", r.dev.TXQ.Kicks)
	}
}

func TestRXPathFillsGuestRing(t *testing.T) {
	r := newRig(false, 0)
	for i := 0; i < 30; i++ {
		r.dev.Receive(&netsim.Packet{Bytes: 800, Seq: int64(i)})
	}
	r.eng.Run(10 * sim.Millisecond)
	if r.dev.RxPkts != 30 {
		t.Fatalf("RxPkts = %d, want 30", r.dev.RxPkts)
	}
	if got := r.dev.RXQ.UsedLen(); got != 30 {
		t.Fatalf("guest used ring has %d entries, want 30", got)
	}
	if r.dev.Backlog() != 0 {
		t.Fatal("backlog should drain")
	}
}

func TestRXBatchSignaling(t *testing.T) {
	r := newRig(false, 0)
	signals := 0
	r.dev.RXQ.OnInterrupt(func() { signals++ })
	for i := 0; i < 30; i++ {
		r.dev.Receive(&netsim.Packet{Bytes: 800})
	}
	r.eng.Run(10 * sim.Millisecond)
	if signals == 0 {
		t.Fatal("no interrupt raised")
	}
	if signals > 5 {
		t.Fatalf("%d signals for one 30-packet burst, want batched (<=5)", signals)
	}
}

func TestRXRingStarvation(t *testing.T) {
	r := newRig(false, 0)
	// Drain the guest's posted buffers (complete + reclaim so the ring
	// is empty but free).
	for {
		d, ok := r.dev.RXQ.Pop()
		if !ok {
			break
		}
		r.dev.RXQ.PushUsed(d)
	}
	r.dev.RXQ.CollectUsed(0)
	r.dev.Receive(&netsim.Packet{Bytes: 800})
	r.eng.Run(5 * sim.Millisecond)
	if r.dev.RxRingStarved == 0 {
		t.Fatal("starvation not detected")
	}
	// The handler must have enabled refill notifications.
	if r.dev.RXQ.KickSuppressed() {
		t.Fatal("starved handler must enable guest refill kicks")
	}
	// Guest reposts buffers and kicks: delivery resumes.
	for i := 0; i < 8; i++ {
		r.dev.RXQ.Add(virtio.Desc{})
	}
	r.dev.RXQ.Kick()
	r.eng.Run(10 * sim.Millisecond)
	if r.dev.RxPkts != 1 {
		t.Fatalf("RxPkts = %d, want 1 after refill", r.dev.RxPkts)
	}
}

func TestBacklogCapDrops(t *testing.T) {
	r := newRig(false, 0)
	// Stop the io thread from running by flooding within one instant.
	n := r.dev.Params.BacklogCap + 50
	for i := 0; i < n; i++ {
		r.dev.Receive(&netsim.Packet{Bytes: 100})
	}
	if r.dev.BacklogDrops != 50 {
		t.Fatalf("BacklogDrops = %d, want 50", r.dev.BacklogDrops)
	}
}

func TestHybridRequiresQuota(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("hybrid without quota should panic")
		}
	}()
	newRig(true, 0)
}

func TestIOThreadSleepsWhenIdle(t *testing.T) {
	r := newRig(false, 0)
	r.guestSend(100)
	r.eng.Run(10 * sim.Millisecond)
	if r.io.Thread.State() != sched.Sleeping {
		t.Fatalf("idle IOThread state = %v, want sleeping", r.io.Thread.State())
	}
	busy := r.io.Thread.SumExec()
	r.eng.Run(20 * sim.Millisecond)
	if r.io.Thread.SumExec() != busy {
		t.Fatal("idle IOThread must not consume CPU")
	}
}

func TestDeviceResetStats(t *testing.T) {
	r := newRig(false, 0)
	r.guestSend(100)
	r.dev.Receive(&netsim.Packet{Bytes: 100})
	r.eng.Run(10 * sim.Millisecond)
	r.dev.ResetStats()
	if r.dev.TxPkts != 0 || r.dev.RxPkts != 0 || r.dev.BacklogDrops != 0 {
		t.Fatal("ResetStats incomplete")
	}
}

func TestParamsCostHelpers(t *testing.T) {
	p := DefaultParams()
	if p.txCost(1500) <= p.txCost(64) {
		t.Fatal("tx cost must grow with size")
	}
	if p.rxCost(1500) <= p.rxCost(64) {
		t.Fatal("rx cost must grow with size")
	}
}

func TestInterruptModeration(t *testing.T) {
	r := newRig(false, 0)
	r.dev.CoalesceCount = 8
	r.dev.CoalesceTimer = 500 * sim.Microsecond
	signals := 0
	r.dev.RXQ.OnInterrupt(func() { signals++ })
	// Deliver 4 packets: below the count threshold, so only the timer
	// may signal.
	for i := 0; i < 4; i++ {
		r.dev.Receive(&netsim.Packet{Bytes: 500})
	}
	r.eng.Run(200 * sim.Microsecond)
	if signals != 0 {
		t.Fatalf("signaled %d times before threshold/timer", signals)
	}
	r.eng.Run(2 * sim.Millisecond)
	if signals != 1 {
		t.Fatalf("timer flush should signal exactly once, got %d", signals)
	}
	if r.dev.CoalesceFlushes != 1 {
		t.Fatalf("CoalesceFlushes = %d, want 1", r.dev.CoalesceFlushes)
	}
	// A fast burst of >= count packets signals without the timer.
	for i := 0; i < 8; i++ {
		r.dev.Receive(&netsim.Packet{Bytes: 500})
	}
	r.eng.Run(3 * sim.Millisecond)
	if signals != 2 {
		t.Fatalf("count-triggered signal missing: got %d", signals)
	}
	if r.dev.CoalesceFlushes != 1 {
		t.Fatal("count-triggered signal must not count as a timer flush")
	}
}

func TestModerationDisabledByDefault(t *testing.T) {
	r := newRig(false, 0)
	signals := 0
	r.dev.RXQ.OnInterrupt(func() { signals++ })
	r.dev.Receive(&netsim.Packet{Bytes: 500})
	r.eng.Run(sim.Millisecond)
	if signals != 1 {
		t.Fatalf("unmoderated single packet should signal once, got %d", signals)
	}
}

// TestSecondDeviceOnClaimedQueuesRefused guards the avail/used
// accounting: attaching a second back-end to a queue pair that already
// has one must fail cleanly (previously the corruption surfaced later
// as a "PushUsed without matching Pop" panic).
func TestSecondDeviceOnClaimedQueuesRefused(t *testing.T) {
	r := newRig(false, 0)
	io2 := NewIOThread("io2", r.s, 0, DefaultParams())
	link := netsim.NewLink(r.eng, 40, sim.Microsecond)
	link.Attach(netsim.EndpointFunc(func(*netsim.Packet) {}), netsim.EndpointFunc(func(*netsim.Packet) {}))
	_, err := NewDevice("dev2", io2, r.dev.TXQ, r.dev.RXQ, link.PortA(), false, 0)
	if err == nil {
		t.Fatal("second device on claimed queues must be refused")
	}
}

// TestRePollRecoversLostKick drives the re-poll mechanism directly: a
// kick swallowed by the fault hook leaves descriptors stranded until
// StartRePoll notices the frozen queue and re-enqueues the handler.
func TestRePollRecoversLostKick(t *testing.T) {
	r := newRig(false, 0)
	r.dev.TXQ.DropKick = func() bool { return true } // every kick lost
	r.dev.StartRePoll(10 * sim.Microsecond)
	r.guestSend(1000)
	r.eng.Run(sim.Millisecond)
	if len(r.wire) != 1 {
		t.Fatalf("re-poll did not recover the stranded descriptor: wire=%d", len(r.wire))
	}
	if r.dev.RePolls == 0 {
		t.Fatal("RePolls counter not incremented")
	}
}
