package vhost

import (
	"es2/internal/profile"
	"es2/internal/sched"
	"es2/internal/sim"
	"es2/internal/trace"
)

// activity classifies what the worker's current effect chunk is doing,
// for CPU attribution. Handlers stamp it in plan() alongside the
// returned effect; it is read only by the profiler leaf resolver.
type activity uint8

const (
	// actTX: copying a guest TX descriptor and putting it on the wire.
	actTX activity = iota
	// actRX: copying a wire packet into a guest RX buffer.
	actRX
	// actSignal: raising the guest's receive interrupt (irqfd write).
	actSignal
	// actPoll: empty-poll rounds and notification race re-checks — the
	// "wasted cycles" of polling that the paper's quota bounds.
	actPoll
	// actStall: injected worker stalls (fault scenarios).
	actStall

	numActivities = iota
)

// handler is the scheduling interface of a virtqueue handler as seen by
// the I/O thread's work queue.
type handler interface {
	// turnStart is called when the handler's turn begins.
	turnStart()
	// plan returns the next unit of work for the current turn: a CPU
	// cost and an effect to apply at its end. Returning a nil effect
	// with zero cost ends the turn.
	plan() (cost sim.Time, effect func())
	// label names the handler on timeline turn slices ("tx", "rx").
	label() string
}

// IOThread is the vhost worker: one host thread draining a FIFO work
// queue of handlers, exactly one turn at a time.
type IOThread struct {
	Name string

	s      *sched.Scheduler
	Thread *sched.Thread
	params Params

	work []handler
	// queued tracks membership in work (or the running slot) so a
	// handler is never double-queued.
	queued map[handler]bool

	cur       handler
	inSwitch  bool // the HandlerSwitch overhead chunk is in flight
	curEffect func()
	remaining sim.Time // remaining time of the in-flight chunk
	needWake  bool
	act       activity // what the in-flight effect chunk is doing

	// Profiling contexts (all nil unless EnableProfiling was called).
	profOcc    *profile.Node
	profSwitch *profile.Node
	profActs   [numActivities]*profile.Node

	// tl/track/turnT export handler turns as timeline slices (SetPath).
	tl    *trace.Timeline
	track trace.TrackID
	turnT sim.Time

	// Turns counts handler turns; Switches counts handler dispatches.
	Turns uint64

	// Stalls and StallTime count injected worker stalls (fault
	// injection; see InjectStall).
	Stalls    uint64
	StallTime sim.Time
}

// NewIOThread creates the worker pinned to the given core.
func NewIOThread(name string, s *sched.Scheduler, core int, params Params) *IOThread {
	t := &IOThread{Name: name, s: s, params: params, queued: make(map[handler]bool), track: trace.NoTrack}
	t.Thread = s.NewThread(name, core, 0, t)
	return t
}

// SetPath attaches the span tracer's timeline: each handler turn
// becomes a slice on the worker's track. Call during deterministic
// build; a nil tracer (or one without a timeline) is a no-op.
func (t *IOThread) SetPath(p *trace.PathTracer) {
	if tl := p.TL(); tl != nil {
		t.tl = tl
		t.track = tl.Track("vhost", t.Name)
	}
}

// EnableProfiling interns the worker's context subtree under its home
// core and installs the charge-time resolver. Call during
// deterministic build, after NewIOThread.
//
//	coreN
//	└── <worker>         (occupant; KindVhost)
//	    ├── switch       (handler dispatch + wakeup overhead)
//	    ├── handler:tx   (TX descriptor copy + wire send)
//	    ├── handler:rx   (wire packet copy into guest buffers)
//	    ├── signal       (guest receive-interrupt injection)
//	    ├── poll         (empty polls and notification race checks)
//	    └── stall        (injected worker stalls)
func (t *IOThread) EnableProfiling(p *profile.Profiler) {
	t.profOcc = p.Core(t.Thread.Core()).ChildKind(t.Name, profile.KindVhost, -1)
	t.profSwitch = t.profOcc.Child("switch")
	t.profActs[actTX] = t.profOcc.Child("handler:tx")
	t.profActs[actRX] = t.profOcc.Child("handler:rx")
	t.profActs[actSignal] = t.profOcc.Child("signal")
	t.profActs[actPoll] = t.profOcc.Child("poll")
	t.profActs[actStall] = t.profOcc.Child("stall")
	t.Thread.Prof = t.profLeaf
}

// profLeaf resolves the worker's current charge context; consulted by
// the scheduler before Ran, while inSwitch/curEffect/act still
// describe the span being charged.
func (t *IOThread) profLeaf() *profile.Node {
	if t.inSwitch {
		return t.profSwitch
	}
	if t.curEffect != nil {
		return t.profActs[t.act]
	}
	return t.profOcc
}

// enqueue appends h to the work queue (idempotent) and wakes the
// thread.
func (t *IOThread) enqueue(h handler) {
	if t.queued[h] {
		return
	}
	t.queued[h] = true
	t.work = append(t.work, h)
	if t.Thread.State() == sched.Sleeping {
		t.needWake = true
		t.s.Wake(t.Thread)
	} else {
		t.s.Requery(t.Thread)
	}
}

// NextChunk implements sched.WorkSource.
func (t *IOThread) NextChunk() sim.Time {
	for {
		if t.curEffect != nil {
			// An effect chunk is in flight (we were preempted or
			// requeried): its remaining time is managed by Ran. Clamp
			// to the minimum chunk when a preemption landed exactly on
			// the boundary, so the effect still fires.
			return clampChunk(t.remaining)
		}
		if t.inSwitch {
			return clampChunk(t.remaining)
		}
		if t.cur != nil {
			cost, effect := t.cur.plan()
			if effect == nil {
				// Turn over.
				if t.tl != nil {
					t.tl.Slice(t.track, t.cur.label(), t.turnT, t.s.Now())
				}
				t.cur = nil
				continue
			}
			t.curEffect = effect
			t.remaining = cost
			if t.remaining <= 0 {
				t.remaining = 1 // effects always take nonzero time
			}
			return t.remaining
		}
		if len(t.work) == 0 {
			return 0 // sleep
		}
		// Dispatch the next handler turn.
		next := t.work[0]
		copy(t.work, t.work[1:])
		t.work[len(t.work)-1] = nil
		t.work = t.work[:len(t.work)-1]
		delete(t.queued, next)
		t.cur = next
		t.Turns++
		if t.tl != nil {
			t.turnT = t.s.Now()
		}
		t.inSwitch = true
		t.remaining = t.params.HandlerSwitch
		if t.needWake {
			t.needWake = false
			t.remaining += t.params.WakeCost
		}
		return t.remaining
	}
}

// Ran implements sched.WorkSource.
func (t *IOThread) Ran(d sim.Time) { t.remaining -= d }

// ChunkDone implements sched.WorkSource.
func (t *IOThread) ChunkDone() {
	if t.inSwitch {
		t.inSwitch = false
		if t.cur != nil {
			t.cur.turnStart()
		}
		return
	}
	if eff := t.curEffect; eff != nil {
		t.curEffect = nil
		eff()
	}
}

// InjectStall blocks the worker for d of CPU time: a one-shot handler
// that burns d at the head of the queue, modeling the worker stuck in
// a kernel allocation or host softirq. Work already queued waits
// behind it, exactly as it would behind a stuck vhost worker. A
// non-positive d is a no-op.
func (t *IOThread) InjectStall(d sim.Time) {
	if d <= 0 {
		return
	}
	t.Stalls++
	t.StallTime += d
	t.enqueue(&stallHandler{io: t, d: d})
}

// stallHandler burns a fixed amount of worker CPU once.
type stallHandler struct {
	io     *IOThread
	d      sim.Time
	burned bool
}

func (h *stallHandler) turnStart() {}

func (h *stallHandler) plan() (sim.Time, func()) {
	if h.burned {
		return 0, nil
	}
	h.burned = true
	h.io.act = actStall
	return h.d, func() {}
}

func (h *stallHandler) label() string { return "stall" }

// requeue puts the current handler back at the tail of the work queue
// (Algorithm 1's "goto schedule").
func (t *IOThread) requeue(h handler) {
	if !t.queued[h] {
		t.queued[h] = true
		t.work = append(t.work, h)
	}
}

// clampChunk guards a zero remainder after a boundary-exact preemption.
func clampChunk(r sim.Time) sim.Time {
	if r <= 0 {
		return 1
	}
	return r
}
