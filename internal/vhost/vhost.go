// Package vhost models the in-kernel virtio back-end (vhost-net): one
// I/O worker thread per device scheduling per-virtqueue handlers from a
// FIFO work queue.
//
// Two handler disciplines are provided:
//
//   - notification mode (vanilla vhost): a handler sleeps until the
//     guest's kick (a VM exit) wakes it, disables further notifications
//     while servicing, drains the queue, re-enables notifications and
//     sleeps;
//   - hybrid mode (ES2, Algorithm 1): on wake-up the handler enters a
//     polling mode that persists across handler turns — it processes up
//     to quota packets per turn and requeues itself with notifications
//     still disabled, falling back to notification mode only when it
//     observes an empty queue before exhausting its quota.
package vhost

import "es2/internal/sim"

// Params are the host-side back-end costs (calibrated; see
// EXPERIMENTS.md).
type Params struct {
	// PerPacketTX is the base cost of moving one guest TX packet to
	// the wire (descriptor translation, copy, tap sendmsg).
	PerPacketTX sim.Time
	// PerByteTX adds the copy cost, per byte (nanoseconds per byte).
	PerByteTX float64
	// PerPacketRX is the base cost of moving one wire packet into the
	// guest RX ring.
	PerPacketRX sim.Time
	// PerByteRX adds the RX copy cost, per byte.
	PerByteRX float64
	// HandlerSwitch is the per-turn overhead of dispatching a handler
	// from the work queue (dequeue, state reload, cache effects). The
	// paper's quota trade-off — "smaller quota also means higher
	// frequency of switching among the handlers" — is priced here.
	HandlerSwitch sim.Time
	// WakeCost is the extra latency of waking the sleeping I/O thread
	// (wakeup IPI + context switch on its core).
	WakeCost sim.Time
	// SignalCost is the cost of raising a guest interrupt (irqfd write
	// plus delivery bookkeeping).
	SignalCost sim.Time
	// EmptyCheck is the cost of one empty-queue poll.
	EmptyCheck sim.Time
	// BacklogCap bounds the ingress backlog (the tap socket buffer);
	// packets beyond it are dropped.
	BacklogCap int
}

// DefaultParams returns the calibrated back-end cost parameters.
func DefaultParams() Params {
	return Params{
		PerPacketTX:   1740 * sim.Nanosecond,
		PerByteTX:     0.20,
		PerPacketRX:   800 * sim.Nanosecond,
		PerByteRX:     0.50,
		HandlerSwitch: 1900 * sim.Nanosecond,
		WakeCost:      1200 * sim.Nanosecond,
		SignalCost:    300 * sim.Nanosecond,
		EmptyCheck:    500 * sim.Nanosecond,
		BacklogCap:    1024,
	}
}

// txCost returns the full TX cost for a packet of the given size.
func (p Params) txCost(bytes int) sim.Time {
	return p.PerPacketTX + sim.Time(p.PerByteTX*float64(bytes))
}

// rxCost returns the full RX cost for a packet of the given size.
func (p Params) rxCost(bytes int) sim.Time {
	return p.PerPacketRX + sim.Time(p.PerByteRX*float64(bytes))
}
