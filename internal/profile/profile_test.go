package profile

import (
	"bytes"
	"compress/gzip"
	"io"
	"reflect"
	"strings"
	"testing"

	"es2/internal/sim"
)

func TestInterning(t *testing.T) {
	p := New(2)
	a := p.Core(0).Child("worker")
	b := p.Core(0).Child("worker")
	if a != b {
		t.Fatal("Child did not intern: two nodes for the same name")
	}
	if p.Core(0) == p.Core(1) {
		t.Fatal("distinct cores interned to the same node")
	}
	k := p.Core(0).ChildKind("worker", KindVhost, 3)
	if k != a {
		t.Fatal("ChildKind re-interned an existing name")
	}
	if a.Kind() != KindOther || a.VM() != -1 {
		t.Fatal("ChildKind overwrote kind/vm of an interned node")
	}
}

func TestAddTotalPath(t *testing.T) {
	p := New(1)
	occ := p.Core(0).ChildKind("vm0/vcpu0", KindVCPU, 0)
	guest := occ.ChildKind("guest", KindGuestMode, 0)
	leaf := guest.Child("user")
	leaf.Add(100)
	guest.Add(20)
	leaf.Add(-5) // negative charges are dropped
	(*Node)(nil).Add(10)
	if leaf.Self() != 100 || guest.Self() != 20 {
		t.Fatalf("self: leaf=%d guest=%d", leaf.Self(), guest.Self())
	}
	if occ.Total() != 120 {
		t.Fatalf("occ.Total() = %d, want 120", occ.Total())
	}
	if got := leaf.Path(); got != "core0;vm0/vcpu0;guest;user" {
		t.Fatalf("Path() = %q", got)
	}
}

func TestResetAndFinalizeIdle(t *testing.T) {
	p := New(2)
	w := p.Core(0).ChildKind("vhost", KindVhost, -1)
	w.Add(300)
	p.Reset()
	if w.Self() != 0 {
		t.Fatal("Reset did not zero accumulated time")
	}
	if p.Core(0).Child("vhost") != w {
		t.Fatal("Reset dropped interned contexts")
	}
	w.Add(300)
	p.Finalize(1000)
	p.Finalize(2000) // idempotent: second call must not re-synthesize
	if p.Window() != 1000 {
		t.Fatalf("Window() = %d, want 1000", p.Window())
	}
	var idle0, idle1 sim.Time
	for _, c := range p.Core(0).Children() {
		if c.Kind() == KindIdle {
			idle0 = c.Self()
		}
	}
	for _, c := range p.Core(1).Children() {
		if c.Kind() == KindIdle {
			idle1 = c.Self()
		}
	}
	if idle0 != 700 || idle1 != 1000 {
		t.Fatalf("idle: core0=%d core1=%d, want 700/1000", idle0, idle1)
	}
	// A core whose busy time spills past the window clamps idle at 0.
	p.Reset()
	w.Add(1500)
	p.Finalize(1000)
	for _, c := range p.Core(0).Children() {
		if c.Kind() == KindIdle && c.Self() != 0 {
			t.Fatalf("over-busy core synthesized idle %d", c.Self())
		}
	}
}

func TestSharesAndExitTotals(t *testing.T) {
	p := New(2)
	occ := p.Core(0).ChildKind("vm0/vcpu0", KindVCPU, 0)
	guest := occ.ChildKind("guest", KindGuestMode, 0)
	guest.Child("user").Add(600)
	occ.ChildKind("exit:HLT", KindExit, 0).Add(400)
	w := p.Core(1).ChildKind("vhost", KindVhost, -1)
	w.Child("poll").Add(250)
	p.Finalize(1000)

	if got := p.GuestShare(0); got != 0.6 {
		t.Fatalf("GuestShare(0) = %v, want 0.6", got)
	}
	if got := p.GuestShare(7); got != 1 {
		t.Fatalf("GuestShare(unknown vm) = %v, want 1", got)
	}
	if got := p.VhostBusy(); got != 250 {
		t.Fatalf("VhostBusy() = %d, want 250", got)
	}
	exits := p.ExitTotals()
	if len(exits) != 1 || exits["exit:HLT"] != 400 {
		t.Fatalf("ExitTotals() = %v", exits)
	}
	if got := p.TotalBusy(); got != 1250 {
		t.Fatalf("TotalBusy() = %d, want 1250", got)
	}
}

func TestSamplesSortedAndFolded(t *testing.T) {
	p := New(2)
	// Build in non-lexical order on purpose.
	p.Core(1).ChildKind("z-worker", KindVhost, -1).Child("poll").Add(5)
	occ := p.Core(0).ChildKind("vm0/vcpu0", KindVCPU, 0)
	occ.ChildKind("exit:HLT", KindExit, 0).Add(7)
	occ.ChildKind("guest", KindGuestMode, 0).Child("user").Add(11)
	p.Finalize(20)

	var buf bytes.Buffer
	if err := p.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"core0;idle 2",
		"core0;vm0/vcpu0;exit:HLT 7",
		"core0;vm0/vcpu0;guest;user 11",
		"core1;idle 15",
		"core1;z-worker;poll 5",
	}, "\n") + "\n"
	if buf.String() != want {
		t.Fatalf("folded output:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestPprofRoundTrip(t *testing.T) {
	p := New(1)
	occ := p.Core(0).ChildKind("vm0/vcpu0", KindVCPU, 0)
	occ.ChildKind("guest", KindGuestMode, 0).Child("user").Add(750)
	occ.ChildKind("exit:HLT", KindExit, 0).Add(150)
	p.Finalize(1000)

	var buf bytes.Buffer
	if err := p.WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	prof := decodePprof(t, buf.Bytes())

	if prof.duration != 1000 {
		t.Fatalf("duration_nanos = %d, want 1000", prof.duration)
	}
	// One sample per nonzero context: user 750, exit:HLT 150, idle 100.
	var total int64
	for _, s := range prof.samples {
		total += s.value
	}
	if total != 1000 || len(prof.samples) != 3 {
		t.Fatalf("samples: n=%d sum=%d, want 3 summing to 1000", len(prof.samples), total)
	}
	// Every referenced location resolves to a named function; the
	// leaf-first stack of the "user" sample reads back root-last.
	found := false
	for _, s := range prof.samples {
		names := make([]string, len(s.locs))
		for i, l := range s.locs {
			fn, ok := prof.locFunc[l]
			if !ok {
				t.Fatalf("sample references unknown location %d", l)
			}
			names[i] = prof.funcName[fn]
		}
		if s.value == 750 {
			found = true
			want := []string{"user", "guest", "vm0/vcpu0", "core0"}
			if !reflect.DeepEqual(names, want) {
				t.Fatalf("user stack = %v, want %v", names, want)
			}
		}
	}
	if !found {
		t.Fatal("no sample carried the 750ns user context")
	}
}

func TestPprofDeterministic(t *testing.T) {
	build := func() []byte {
		p := New(2)
		occ := p.Core(0).ChildKind("vm0/vcpu0", KindVCPU, 0)
		occ.ChildKind("guest", KindGuestMode, 0).Child("user").Add(3)
		p.Core(1).ChildKind("w", KindVhost, -1).Child("poll").Add(4)
		p.Finalize(10)
		var buf bytes.Buffer
		if err := p.WritePprof(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("two identical profiles serialized to different bytes")
	}
}

// --- minimal profile.proto decoder (tests only) ---

type decodedProfile struct {
	samples  []decodedSample
	locFunc  map[uint64]uint64 // location id -> function id
	funcName map[uint64]string // function id -> name
	duration int64
}

type decodedSample struct {
	locs  []uint64
	value int64
}

func decodePprof(t *testing.T, gz []byte) *decodedProfile {
	t.Helper()
	zr, err := gzip.NewReader(bytes.NewReader(gz))
	if err != nil {
		t.Fatalf("profile is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	p := &decodedProfile{locFunc: map[uint64]uint64{}, funcName: map[uint64]string{}}
	var strtab []string
	type fn struct {
		id   uint64
		name int64
	}
	var fns []fn
	forEachField(t, raw, func(field int, varint uint64, body []byte) {
		switch field {
		case profSample:
			var s decodedSample
			forEachField(t, body, func(f int, v uint64, b []byte) {
				switch f {
				case sampleLocationID:
					forEachVarint(t, b, func(v uint64) { s.locs = append(s.locs, v) })
				case sampleValue:
					forEachVarint(t, b, func(v uint64) { s.value += int64(v) })
				}
			})
			p.samples = append(p.samples, s)
		case profLocation:
			var id, fnID uint64
			forEachField(t, body, func(f int, v uint64, b []byte) {
				switch f {
				case locID:
					id = v
				case locLine:
					forEachField(t, b, func(f2 int, v2 uint64, _ []byte) {
						if f2 == lineFunctionID {
							fnID = v2
						}
					})
				}
			})
			p.locFunc[id] = fnID
		case profFunction:
			var f fn
			forEachField(t, body, func(f2 int, v uint64, _ []byte) {
				switch f2 {
				case fnID:
					f.id = v
				case fnName:
					f.name = int64(v)
				}
			})
			fns = append(fns, f)
		case profStringTable:
			strtab = append(strtab, string(body))
		case profDurationNano:
			p.duration = int64(varint)
		}
	})
	if len(strtab) == 0 || strtab[0] != "" {
		t.Fatal("string table index 0 is not the empty string")
	}
	for _, f := range fns {
		if f.name < 0 || int(f.name) >= len(strtab) {
			t.Fatalf("function %d names string %d outside the table", f.id, f.name)
		}
		p.funcName[f.id] = strtab[f.name]
	}
	return p
}

// forEachField walks a protobuf message's top-level fields. varint is
// set for wire type 0, body for wire type 2.
func forEachField(t *testing.T, raw []byte, fn func(field int, varint uint64, body []byte)) {
	t.Helper()
	for len(raw) > 0 {
		key, n := readUvarint(t, raw)
		raw = raw[n:]
		field, wire := int(key>>3), key&7
		switch wire {
		case 0:
			v, n := readUvarint(t, raw)
			raw = raw[n:]
			fn(field, v, nil)
		case 2:
			l, n := readUvarint(t, raw)
			raw = raw[n:]
			fn(field, 0, raw[:l])
			raw = raw[l:]
		default:
			t.Fatalf("unexpected wire type %d for field %d", wire, field)
		}
	}
}

func forEachVarint(t *testing.T, raw []byte, fn func(v uint64)) {
	t.Helper()
	for len(raw) > 0 {
		v, n := readUvarint(t, raw)
		raw = raw[n:]
		fn(v)
	}
}

func readUvarint(t *testing.T, raw []byte) (uint64, int) {
	t.Helper()
	var v uint64
	for i := 0; i < len(raw); i++ {
		v |= uint64(raw[i]&0x7f) << (7 * i)
		if raw[i] < 0x80 {
			return v, i + 1
		}
	}
	t.Fatal("truncated varint")
	return 0, 0
}
