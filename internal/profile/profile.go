// Package profile implements a deterministic simulated-CPU profiler:
// every nanosecond of simulated CPU time consumed on every core is
// attributed to a hierarchical context stack
//
//	core -> occupant -> activity [-> sub-activity ...]
//
// where an occupant is a guest vCPU, a vhost worker, a fault-injection
// storm burner, or (synthesized at finalization) idle, and the
// activities below it name what the occupant was doing: guest user or
// kernel work, VM-exit handling by reason, vhost packet handling,
// polling, signalling, and so on.
//
// Unlike a wall-clock profiler there is no statistical sampling: the
// discrete-event scheduler charges CPU time at exact event boundaries
// (see sched.Thread.Prof), so the attribution is exact — the profiler's
// guest-occupant share reconciles with Result.TIG, and the vhost busy
// share with Result.VhostCPU, to the nanosecond.
//
// Three export forms are provided: pprof-compatible protobuf
// (WritePprof, readable by `go tool pprof` and speedscope), folded
// stacks for flamegraph tooling (WriteFolded), and in-memory accessors
// the runner turns into the compact Result.CPUReport summary.
package profile

import (
	"sort"
	"strings"

	"es2/internal/sim"
)

// Kind classifies a context node so reports can reason about the tree
// without parsing names.
type Kind uint8

const (
	// KindOther is an unclassified context (activities, storm burners).
	KindOther Kind = iota
	// KindCore is a physical-core node (direct child of the root).
	KindCore
	// KindVCPU is a guest-vCPU occupant node.
	KindVCPU
	// KindGuestMode is the guest-mode (non-root) subtree root under a
	// vCPU occupant; its siblings of KindExit are root-mode time.
	KindGuestMode
	// KindExit is a VM-exit-handling leaf ("exit:<reason>") under a
	// vCPU occupant.
	KindExit
	// KindVhost is a vhost-worker occupant node.
	KindVhost
	// KindIdle is the synthesized idle occupant added by Finalize.
	KindIdle
)

// Node is one context in the attribution tree. Nodes are interned:
// Child returns the same node for the same name, so instrumentation
// sites can resolve their context once at build time and charge it
// with no allocation on the hot path.
type Node struct {
	name     string
	kind     Kind
	vm       int // owning VM index for vCPU subtrees, -1 otherwise
	parent   *Node
	children map[string]*Node
	order    []*Node // children in creation order (deterministic)
	self     sim.Time
}

// Name returns the node's own frame name.
func (n *Node) Name() string { return n.name }

// Kind returns the node's classification.
func (n *Node) Kind() Kind { return n.kind }

// VM returns the owning VM index (-1 for non-guest contexts).
func (n *Node) VM() int { return n.vm }

// Self returns the time charged directly to this context (excluding
// children).
func (n *Node) Self() sim.Time { return n.self }

// Total returns the subtree sum: self plus all descendants.
func (n *Node) Total() sim.Time {
	t := n.self
	for _, c := range n.order {
		t += c.Total()
	}
	return t
}

// Children returns the child nodes in creation order.
func (n *Node) Children() []*Node { return n.order }

// Child interns and returns the named child (KindOther, no VM).
func (n *Node) Child(name string) *Node {
	return n.ChildKind(name, KindOther, -1)
}

// ChildKind interns and returns the named child with the given
// classification. The kind and vm of an already-interned child are not
// changed.
func (n *Node) ChildKind(name string, kind Kind, vm int) *Node {
	if c, ok := n.children[name]; ok {
		return c
	}
	c := &Node{name: name, kind: kind, vm: vm, parent: n, children: make(map[string]*Node)}
	n.children[name] = c
	n.order = append(n.order, c)
	return c
}

// Add charges d of CPU time to this context. Nil-safe so call sites
// can hold an optional node.
func (n *Node) Add(d sim.Time) {
	if n == nil || d <= 0 {
		return
	}
	n.self += d
}

// Path returns the full context stack "core0;vm0/vcpu1;guest;user;burn"
// (root excluded).
func (n *Node) Path() string {
	var frames []string
	for m := n; m.parent != nil; m = m.parent {
		frames = append(frames, m.name)
	}
	// Reverse into root-first order.
	for i, j := 0, len(frames)-1; i < j; i, j = i+1, j-1 {
		frames[i], frames[j] = frames[j], frames[i]
	}
	return strings.Join(frames, ";")
}

// frames returns the stack root-first (excluding the tree root).
func (n *Node) frames() []string {
	var fs []string
	for m := n; m.parent != nil; m = m.parent {
		fs = append(fs, m.name)
	}
	for i, j := 0, len(fs)-1; i < j; i, j = i+1, j-1 {
		fs[i], fs[j] = fs[j], fs[i]
	}
	return fs
}

// Profiler is the attribution tree for one simulated host. All state
// is owned by one simulation engine; no locking.
type Profiler struct {
	root      *Node
	cores     []*Node
	window    sim.Time
	finalized bool
}

// New creates a profiler for a host with nCores physical cores.
func New(nCores int) *Profiler {
	p := &Profiler{root: &Node{vm: -1, children: make(map[string]*Node)}}
	for i := 0; i < nCores; i++ {
		p.cores = append(p.cores, p.root.ChildKind(coreName(i), KindCore, -1))
	}
	return p
}

func coreName(i int) string {
	// Hand-rolled to avoid fmt in the build path; core counts are small.
	if i < 10 {
		return "core" + string(rune('0'+i))
	}
	return "core" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// NumCores returns the core count.
func (p *Profiler) NumCores() int { return len(p.cores) }

// Core returns core i's node.
func (p *Profiler) Core(i int) *Node { return p.cores[i] }

// Window returns the measurement window set by Finalize (zero before).
func (p *Profiler) Window() sim.Time { return p.window }

// Reset zeroes every accumulated time in the tree; contexts stay
// interned. Called at the measurement-window start so only window time
// is attributed.
func (p *Profiler) Reset() {
	p.window, p.finalized = 0, false
	var walk func(n *Node)
	walk = func(n *Node) {
		n.self = 0
		for _, c := range n.order {
			walk(c)
		}
	}
	walk(p.root)
}

// Finalize closes the window: each core's unattributed remainder
// (window minus busy time) becomes an "idle" occupant. A core's busy
// time can exceed the window by less than one scheduling chunk —
// charging happens at event boundaries, so a chunk straddling the
// window start spills in — in which case idle is clamped to zero.
// TIG/VhostCPU reconciliation is unaffected: those metrics are charged
// at the same boundaries and see the same spill.
func (p *Profiler) Finalize(window sim.Time) {
	if p.finalized {
		return
	}
	p.finalized = true
	p.window = window
	for _, c := range p.cores {
		idle := window - c.Total()
		if idle > 0 {
			c.ChildKind("idle", KindIdle, -1).self = idle
		}
	}
}

// Sample is one attributed context: a stack (root-first) and the time
// charged directly to it.
type Sample struct {
	Stack []string
	Value sim.Time
}

// Samples returns every context with nonzero self time, sorted
// lexically by stack path. The order is independent of build order, so
// two profiles of the same run are byte-identical and profiles of
// different configurations diff cleanly.
func (p *Profiler) Samples() []Sample {
	var out []Sample
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.self > 0 {
			out = append(out, Sample{Stack: n.frames(), Value: n.self})
		}
		for _, c := range n.order {
			walk(c)
		}
	}
	walk(p.root)
	sort.Slice(out, func(i, j int) bool {
		return lessStacks(out[i].Stack, out[j].Stack)
	})
	return out
}

func lessStacks(a, b []string) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// GuestShare returns the fraction of the given VM's vCPU-occupant time
// spent in guest mode (non-root), the profiler-side analogue of
// Result.TIG. Returns 1 when the VM's vCPUs consumed no CPU, matching
// VM.TIG's convention.
func (p *Profiler) GuestShare(vm int) float64 {
	var guest, total sim.Time
	for _, c := range p.cores {
		for _, occ := range c.order {
			if occ.kind != KindVCPU || occ.vm != vm {
				continue
			}
			total += occ.Total()
			for _, sub := range occ.order {
				if sub.kind == KindGuestMode {
					guest += sub.Total()
				}
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(guest) / float64(total)
}

// VhostBusy returns the total CPU time consumed by vhost-worker
// occupants, the profiler-side analogue of the Result.VhostCPU
// numerator.
func (p *Profiler) VhostBusy() sim.Time {
	var busy sim.Time
	for _, c := range p.cores {
		for _, occ := range c.order {
			if occ.kind == KindVhost {
				busy += occ.Total()
			}
		}
	}
	return busy
}

// ExitTotals sums VM-exit-handling time by exit leaf name
// ("exit:<reason>") across all vCPUs of all VMs: the wasted-cycles
// totals that Algorithm 1 attacks.
func (p *Profiler) ExitTotals() map[string]sim.Time {
	out := make(map[string]sim.Time)
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.kind == KindExit && n.self > 0 {
			out[n.name] += n.self
		}
		for _, c := range n.order {
			walk(c)
		}
	}
	walk(p.root)
	return out
}

// TotalBusy returns all attributed (non-idle) time across cores.
func (p *Profiler) TotalBusy() sim.Time {
	var busy sim.Time
	for _, c := range p.cores {
		for _, occ := range c.order {
			if occ.kind != KindIdle {
				busy += occ.Total()
			}
		}
	}
	return busy
}
