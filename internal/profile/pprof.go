package profile

import (
	"bytes"
	"compress/gzip"
	"io"
)

// WritePprof serializes the profile in pprof's profile.proto wire
// format, gzip-compressed, as produced by runtime/pprof and consumed
// by `go tool pprof` and speedscope. The encoder is hand-rolled
// (protobuf is a simple TLV format and the repo takes no external
// dependencies) and fully deterministic: samples are emitted in
// Samples() order, strings and frames are interned in first-use order,
// and the gzip header carries no timestamp, so two profiles of the
// same run are byte-identical.
//
// Each context becomes one sample whose location stack is leaf-first
// (pprof convention), with a single "cpu"/"nanoseconds" value. The
// profile's period type mirrors the sample type and duration_nanos is
// the measurement window.
func (p *Profiler) WritePprof(w io.Writer) error {
	var body bytes.Buffer
	enc := &protoEncoder{buf: &body}
	enc.encodeProfile(p)

	zw, err := gzip.NewWriterLevel(w, gzip.BestCompression)
	if err != nil {
		return err
	}
	// Leave ModTime zero and Name/Comment empty: deterministic bytes.
	if _, err := zw.Write(body.Bytes()); err != nil {
		return err
	}
	return zw.Close()
}

// profile.proto field numbers (message Profile).
const (
	profSampleType   = 1
	profSample       = 2
	profLocation     = 4
	profFunction     = 5
	profStringTable  = 6
	profDurationNano = 10
	profPeriodType   = 11
	profPeriod       = 12
)

// message ValueType
const (
	vtType = 1
	vtUnit = 2
)

// message Sample
const (
	sampleLocationID = 1
	sampleValue      = 2
)

// message Location
const (
	locID   = 1
	locLine = 4
)

// message Line
const (
	lineFunctionID = 1
)

// message Function
const (
	fnID   = 1
	fnName = 2
)

type protoEncoder struct {
	buf     *bytes.Buffer
	strings []string
	strIdx  map[string]int64
	// frame name -> function/location id (1-based; ids are shared:
	// location i has exactly line{function: i}).
	frameIdx map[string]uint64
	frames   []string
}

func (e *protoEncoder) str(s string) int64 {
	if e.strIdx == nil {
		e.strIdx = make(map[string]int64)
		// String table index 0 must be "".
		e.strings = []string{""}
		e.strIdx[""] = 0
	}
	if i, ok := e.strIdx[s]; ok {
		return i
	}
	i := int64(len(e.strings))
	e.strings = append(e.strings, s)
	e.strIdx[s] = i
	return i
}

func (e *protoEncoder) frame(name string) uint64 {
	if e.frameIdx == nil {
		e.frameIdx = make(map[string]uint64)
	}
	if id, ok := e.frameIdx[name]; ok {
		return id
	}
	id := uint64(len(e.frames) + 1)
	e.frames = append(e.frames, name)
	e.frameIdx[name] = id
	e.str(name) // intern eagerly so table order tracks frame order
	return id
}

func (e *protoEncoder) encodeProfile(p *Profiler) {
	samples := p.Samples()

	// sample_type: one ValueType{type:"cpu", unit:"nanoseconds"}.
	var vt bytes.Buffer
	writeVarintField(&vt, vtType, uint64(e.str("cpu")))
	writeVarintField(&vt, vtUnit, uint64(e.str("nanoseconds")))
	writeBytesField(e.buf, profSampleType, vt.Bytes())

	// samples, interning frames as we go.
	for _, s := range samples {
		var sb bytes.Buffer
		// Leaf-first location ids, packed.
		var locs bytes.Buffer
		for i := len(s.Stack) - 1; i >= 0; i-- {
			writeUvarint(&locs, e.frame(s.Stack[i]))
		}
		writeBytesField(&sb, sampleLocationID, locs.Bytes())
		var vals bytes.Buffer
		writeUvarint(&vals, uint64(s.Value))
		writeBytesField(&sb, sampleValue, vals.Bytes())
		writeBytesField(e.buf, profSample, sb.Bytes())
	}

	// locations and functions: one of each per unique frame.
	for i, name := range e.frames {
		id := uint64(i + 1)

		var ln bytes.Buffer
		writeVarintField(&ln, lineFunctionID, id)

		var loc bytes.Buffer
		writeVarintField(&loc, locID, id)
		writeBytesField(&loc, locLine, ln.Bytes())
		writeBytesField(e.buf, profLocation, loc.Bytes())

		var fn bytes.Buffer
		writeVarintField(&fn, fnID, id)
		writeVarintField(&fn, fnName, uint64(e.strIdx[name]))
		writeBytesField(e.buf, profFunction, fn.Bytes())
	}

	// string_table (order fixed by interning above; index 0 is "").
	for _, s := range e.strings {
		writeBytesField(e.buf, profStringTable, []byte(s))
	}

	writeVarintField(e.buf, profDurationNano, uint64(p.Window()))

	// period_type + period: nominal 1ns sampling period (exact charge).
	var pt bytes.Buffer
	writeVarintField(&pt, vtType, uint64(e.strIdx["cpu"]))
	writeVarintField(&pt, vtUnit, uint64(e.strIdx["nanoseconds"]))
	writeBytesField(e.buf, profPeriodType, pt.Bytes())
	writeVarintField(e.buf, profPeriod, 1)
}

// --- protobuf wire helpers ---

func writeUvarint(b *bytes.Buffer, v uint64) {
	for v >= 0x80 {
		b.WriteByte(byte(v) | 0x80)
		v >>= 7
	}
	b.WriteByte(byte(v))
}

// writeVarintField writes field with wire type 0 (varint).
func writeVarintField(b *bytes.Buffer, field int, v uint64) {
	if v == 0 {
		return // proto3 default, omitted
	}
	writeUvarint(b, uint64(field)<<3|0)
	writeUvarint(b, v)
}

// writeBytesField writes field with wire type 2 (length-delimited):
// sub-messages, strings, and packed repeated scalars.
func writeBytesField(b *bytes.Buffer, field int, payload []byte) {
	writeUvarint(b, uint64(field)<<3|2)
	writeUvarint(b, uint64(len(payload)))
	b.Write(payload)
}
