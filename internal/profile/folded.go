package profile

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// WriteFolded emits the profile in folded-stack format, one context
// per line:
//
//	core0;vm0/vcpu0;guest;user;burn 123456789
//
// the input format of Brendan Gregg's flamegraph.pl and of speedscope.
// Lines are sorted lexically by stack (Samples order), so same-seed
// runs produce byte-identical files and two configurations can be
// diffed with standard difffolded tooling.
func (p *Profiler) WriteFolded(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, s := range p.Samples() {
		bw.WriteString(strings.Join(s.Stack, ";"))
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatInt(int64(s.Value), 10))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
