package netsim

import (
	"testing"

	"es2/internal/sim"
)

func TestLinkDelivery(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, 40, 2*sim.Microsecond) // 40 Gbps, 2us propagation
	var got []*Packet
	var gotAt []sim.Time
	sink := EndpointFunc(func(p *Packet) { got = append(got, p); gotAt = append(gotAt, eng.Now()) })
	l.Attach(EndpointFunc(func(*Packet) {}), sink)

	l.PortA().Send(&Packet{Bytes: 1500})
	eng.RunAll()
	if len(got) != 1 {
		t.Fatalf("delivered %d packets", len(got))
	}
	// 1500B at 40Gbps = 1500/5 = 300ns serialization + 2us propagation.
	want := 300*sim.Nanosecond + 2*sim.Microsecond
	if gotAt[0] != want {
		t.Fatalf("delivered at %v, want %v", gotAt[0], want)
	}
	if got[0].Sent != 0 {
		t.Fatalf("Sent stamp = %v, want 0", got[0].Sent)
	}
}

func TestLinkSerializationQueue(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, 40, 0)
	var at []sim.Time
	l.Attach(EndpointFunc(func(*Packet) {}), EndpointFunc(func(p *Packet) { at = append(at, eng.Now()) }))
	// Two back-to-back frames: second must wait for the first's
	// serialization.
	l.PortA().Send(&Packet{Bytes: 1500})
	l.PortA().Send(&Packet{Bytes: 1500})
	if d := l.PortA().QueueDelay(); d != 600*sim.Nanosecond {
		t.Fatalf("QueueDelay = %v, want 600ns", d)
	}
	eng.RunAll()
	if len(at) != 2 || at[0] != 300 || at[1] != 600 {
		t.Fatalf("arrivals = %v, want [300ns 600ns]", at)
	}
}

func TestLinkFullDuplex(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, 40, 0)
	var aGot, bGot int
	l.Attach(
		EndpointFunc(func(*Packet) { aGot++ }),
		EndpointFunc(func(*Packet) { bGot++ }),
	)
	// Opposite directions must not contend.
	l.PortA().Send(&Packet{Bytes: 1500})
	l.PortB().Send(&Packet{Bytes: 1500})
	eng.RunAll()
	if aGot != 1 || bGot != 1 {
		t.Fatalf("aGot=%d bGot=%d", aGot, bGot)
	}
	if eng.Now() != 300*sim.Nanosecond {
		t.Fatalf("finished at %v, want 300ns (no cross-direction contention)", eng.Now())
	}
}

func TestPortStats(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, 10, 0)
	l.Attach(EndpointFunc(func(*Packet) {}), EndpointFunc(func(*Packet) {}))
	for i := 0; i < 7; i++ {
		l.PortA().Send(&Packet{Bytes: 100})
	}
	eng.RunAll()
	if l.PortA().PacketsSent != 7 || l.PortA().BytesSent != 700 {
		t.Fatalf("stats: %d pkts %d bytes", l.PortA().PacketsSent, l.PortA().BytesSent)
	}
}

func TestTinyPacketMinimumSerialization(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, 1000, 0) // absurdly fast
	var at sim.Time
	l.Attach(EndpointFunc(func(*Packet) {}), EndpointFunc(func(p *Packet) { at = eng.Now() }))
	l.PortA().Send(&Packet{Bytes: 1})
	eng.RunAll()
	if at < 1 {
		t.Fatal("serialization must take at least 1ns")
	}
}

func TestSendValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("Send without endpoint should panic")
		}
	}()
	NewLink(eng, 40, 0).PortA().Send(&Packet{Bytes: 1})
}

func TestNewLinkValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive rate should panic")
		}
	}()
	NewLink(sim.NewEngine(1), 0, 0)
}

func TestQueueDelayDrainsOverTime(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, 8, 0) // 1 byte/ns
	l.Attach(EndpointFunc(func(*Packet) {}), EndpointFunc(func(*Packet) {}))
	l.PortA().Send(&Packet{Bytes: 1000})
	l.PortA().Send(&Packet{Bytes: 1000})
	if d := l.PortA().QueueDelay(); d != 2000 {
		t.Fatalf("QueueDelay = %v, want 2us", d)
	}
	eng.Run(1500)
	if d := l.PortA().QueueDelay(); d != 500 {
		t.Fatalf("QueueDelay after 1.5us = %v, want 500ns", d)
	}
	eng.RunAll()
	if d := l.PortA().QueueDelay(); d != 0 {
		t.Fatalf("QueueDelay when idle = %v, want 0", d)
	}
}

func TestPacketFieldsPreserved(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, 40, 0)
	var got *Packet
	l.Attach(EndpointFunc(func(*Packet) {}), EndpointFunc(func(p *Packet) { got = p }))
	sent := &Packet{Bytes: 512, Kind: 3, Flow: 7, Seq: 99, Payload: "x"}
	l.PortA().Send(sent)
	eng.RunAll()
	if got != sent || got.Kind != 3 || got.Flow != 7 || got.Seq != 99 || got.Payload != "x" {
		t.Fatalf("packet mangled: %+v", got)
	}
}
