// Package netsim provides the physical-network substrate: packets and
// full-duplex point-to-point links with serialization and propagation
// delay. It stands in for the testbed's back-to-back 40GbE NICs; the
// protocol endpoints (guest network stack, external traffic generator)
// live in the guest and workloads packages.
package netsim

import (
	"es2/internal/causal"
	"es2/internal/sim"
)

// Packet is one frame on the wire. Protocol semantics are carried by
// Kind/Flow/Payload and interpreted by the endpoints.
type Packet struct {
	// Bytes is the frame length used for serialization timing.
	Bytes int
	// Kind tags the protocol meaning (endpoint-defined).
	Kind int
	// Flow identifies the connection/stream the packet belongs to.
	Flow int
	// Seq is an endpoint-defined sequence number.
	Seq int64
	// Payload carries an arbitrary model object.
	Payload any
	// Sent records when the packet entered the wire (stamped by Port.Send).
	Sent sim.Time
	// SpanT carries event-path span-tracing state: the instant the
	// packet entered its current stage (see internal/trace). Zero when
	// tracing is disabled; restamped at each stage boundary.
	SpanT sim.Time
	// Chain is the per-request causal chain riding this packet (nil
	// when causal tracking is off). Shallow copies made for duplicate
	// delivery share the pointer; Chain marks tolerate that.
	Chain *causal.Chain
}

// FaultAction is the wire-fault decision for one frame (see the
// SendFault hook on Port).
type FaultAction uint8

const (
	// FaultNone delivers the frame normally.
	FaultNone FaultAction = iota
	// FaultDrop loses the frame after serialization: the sender paid
	// the wire time, the receiver sees nothing.
	FaultDrop
	// FaultDup delivers the frame twice (link-level duplication).
	FaultDup
)

// Endpoint receives packets from a link.
type Endpoint interface {
	Receive(p *Packet)
}

// Sender transmits packets onto a wire: a point-to-point link Port or
// a switch-fabric ingress port (internal/fabric). The vhost back-end
// holds a Sender for its egress, so the same device works back-to-back
// and rack-scale.
type Sender interface {
	Send(p *Packet)
}

// EndpointFunc adapts a function to the Endpoint interface.
type EndpointFunc func(p *Packet)

// Receive implements Endpoint.
func (f EndpointFunc) Receive(p *Packet) { f(p) }

// Link is a full-duplex point-to-point link: two independent directed
// channels, each with a serialization rate and propagation delay.
type Link struct {
	eng *sim.Engine
	a2b *Port
	b2a *Port
}

// Port is one directed channel of a link; model code holds the Port for
// its sending direction.
type Port struct {
	eng       *sim.Engine
	rate      float64 // bytes per nanosecond
	delay     sim.Time
	busyUntil sim.Time
	dst       Endpoint

	// PacketsSent and BytesSent count traffic through this port.
	PacketsSent uint64
	BytesSent   uint64

	// SendFault, when non-nil, is consulted once per frame after the
	// send is counted; the fault injector (internal/faults) owns the
	// closure and its accounting. Nil in normal operation.
	SendFault func() FaultAction
}

// NewLink creates a link with the given rate in gigabits per second and
// one-way propagation delay. Endpoints are attached with Attach.
func NewLink(eng *sim.Engine, gbps float64, delay sim.Time) *Link {
	if gbps <= 0 {
		panic("netsim: rate must be positive")
	}
	bytesPerNs := gbps / 8.0 // Gbit/s == bit/ns; /8 for bytes
	l := &Link{eng: eng}
	l.a2b = &Port{eng: eng, rate: bytesPerNs, delay: delay}
	l.b2a = &Port{eng: eng, rate: bytesPerNs, delay: delay}
	return l
}

// Attach wires endpoint a to one side and b to the other. PortA sends
// toward b; PortB sends toward a.
func (l *Link) Attach(a, b Endpoint) {
	l.a2b.dst = b
	l.b2a.dst = a
}

// PortA returns the sending port of side A (delivers to B).
func (l *Link) PortA() *Port { return l.a2b }

// PortB returns the sending port of side B (delivers to A).
func (l *Link) PortB() *Port { return l.b2a }

// Send transmits p: it is serialized after any frames already queued on
// this direction, then propagates, then is delivered to the remote
// endpoint.
func (p *Port) Send(pkt *Packet) {
	if p.dst == nil {
		panic("netsim: port has no attached endpoint")
	}
	now := p.eng.Now()
	start := now
	if p.busyUntil > start {
		start = p.busyUntil
	}
	ser := sim.Time(float64(pkt.Bytes) / p.rate)
	if ser < 1 {
		ser = 1
	}
	done := start + ser
	p.busyUntil = done
	pkt.Sent = now
	p.PacketsSent++
	p.BytesSent += uint64(pkt.Bytes)
	dst := p.dst
	if p.SendFault != nil {
		switch p.SendFault() {
		case FaultDrop:
			return
		case FaultDup:
			q := *pkt
			p.eng.At(done+p.delay, func() { dst.Receive(&q) })
		}
	}
	p.eng.At(done+p.delay, func() { dst.Receive(pkt) })
}

// QueueDelay reports how long a packet sent now would wait before its
// serialization starts (backlog on this direction).
func (p *Port) QueueDelay() sim.Time {
	if d := p.busyUntil - p.eng.Now(); d > 0 {
		return d
	}
	return 0
}
