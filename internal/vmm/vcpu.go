package vmm

import (
	"fmt"

	"es2/internal/apic"
	"es2/internal/profile"
	"es2/internal/sched"
	"es2/internal/sim"
	"es2/internal/trace"
)

// chunkKind distinguishes what a vCPU's thread is executing.
type chunkKind uint8

const (
	kindNone  chunkKind = iota
	kindGuest           // non-root mode: guest code
	kindHost            // root mode: hypervisor handling a VM exit
)

// hostInterval is one queued VM-exit handling span.
type hostInterval struct {
	reason    ExitReason
	remaining sim.Time
	onDone    func()
	start     sim.Time // when handling began (timeline slice; traced runs only)
}

// VCPU is a virtual CPU: a host schedulable thread that alternates
// between guest-mode work (its Task queues) and host-mode work (VM exit
// handling intervals). It implements sched.WorkSource.
type VCPU struct {
	VM *VM
	ID int
	// Thread is the host thread backing this vCPU.
	Thread *sched.Thread

	// VAPIC is the virtual APIC state: the software-emulated Local-APIC
	// in the baseline, the hardware vAPIC page under posted interrupts.
	VAPIC apic.LocalAPIC
	// PID is the posted-interrupt descriptor (used when the KVM has
	// UsePI set).
	PID apic.PIDescriptor

	hostCur *hostInterval
	hostQ   []*hostInterval
	tasks   [numPrios][]*Task
	curTask *Task
	mode    chunkKind

	// GuestTime and HostTime accumulate non-root and root mode CPU
	// consumption; TIG = GuestTime / (GuestTime + HostTime).
	GuestTime sim.Time
	HostTime  sim.Time

	// IRQAccepted counts virtual interrupts delivered to this vCPU
	// (ES2's redirection balances on this). IRQCompleted counts EOIs.
	IRQAccepted  uint64
	IRQCompleted uint64

	schedInHooks  []func(coreID int)
	schedOutHooks []func()

	// needEntrySync marks that the next transition to guest execution
	// is a genuine VM entry (after a sched-in or after exit handling),
	// where pending PIR bits must be synchronized. Mid-guest task
	// boundaries are not VM entries: there, only the notification IPI
	// can sync.
	needEntrySync bool

	// piPostT/piPostPending track the earliest unsynchronized PIR post
	// for the pi-wait span (set only while tracing).
	piPostT       sim.Time
	piPostPending bool

	// irqStamps carries the per-vector injection timestamps for the
	// interrupt-delivery latency histograms and the causal analyzer
	// (stamped only when K.IRQLatPosted/IRQLatEmulated or K.Causal
	// are set).
	irqStamps apic.VectorStamps

	// lastSchedIn is the instant of the most recent sched-in, and
	// lastInject* snapshot the injection stamp consumed by the current
	// startHandler — together they let an IRQ handler split the
	// injection→entry span into wakeup-to-run and delivery (see
	// internal/causal).
	lastSchedIn    sim.Time
	lastInjectT    sim.Time
	lastInjectMech apic.StampMech
	lastInjectOK   bool

	// track is this vCPU's timeline track (NoTrack when no timeline).
	track trace.TrackID

	// Profiling contexts, interned at build time when K.Prof is set
	// (all nil otherwise; see profile.go in this package).
	profOcc   *profile.Node
	profGuest *profile.Node
	profPrio  [numPrios]*profile.Node
	profExit  [NumExitReasons]*profile.Node

	otherExitEvt *sim.Handle
}

// newVCPU wires a vCPU to its host thread on the given core.
func newVCPU(vm *VM, id, coreID int) *VCPU {
	v := &VCPU{VM: vm, ID: id, needEntrySync: true, track: trace.NoTrack}
	if tl := vm.K.Timeline; tl != nil {
		v.track = tl.Track(vm.Name, fmt.Sprintf("vcpu%d", id))
	}
	v.Thread = vm.K.Sched.NewThread(fmt.Sprintf("%s/vcpu%d", vm.Name, id), coreID, 0, v)
	v.Thread.SchedIn = v.schedIn
	v.Thread.SchedOut = v.schedOut
	if vm.K.Prof != nil {
		v.enableProfiling(vm.K.Prof, coreID)
	}
	v.PID.NotificationVector = PINotificationVector
	return v
}

// PINotificationVector is the host vector reserved for posted-interrupt
// notifications (Linux's POSTED_INTR_VECTOR).
const PINotificationVector apic.Vector = 0xF2

// AddSchedInHook registers fn to run whenever the vCPU thread is
// scheduled onto a core (the kvm_sched_in preemption notifier).
func (v *VCPU) AddSchedInHook(fn func(coreID int)) {
	v.schedInHooks = append(v.schedInHooks, fn)
}

// AddSchedOutHook registers fn to run whenever the vCPU thread is
// descheduled (the kvm_sched_out preemption notifier).
func (v *VCPU) AddSchedOutHook(fn func()) {
	v.schedOutHooks = append(v.schedOutHooks, fn)
}

func (v *VCPU) schedIn(coreID int) {
	// VM entry housekeeping: posted interrupts pending in the PIR will
	// be synced by the next NextChunk; clear suppress-notification.
	v.PID.SetSuppress(false)
	v.needEntrySync = true
	v.lastSchedIn = v.VM.K.Eng.Now()
	v.VM.K.Trace.Record(v.VM.K.Eng.Now(), trace.KindSchedIn, v.VM.Index, v.ID, int64(coreID))
	for _, fn := range v.schedInHooks {
		fn(coreID)
	}
}

func (v *VCPU) schedOut() {
	v.PID.SetSuppress(true)
	v.VM.K.Trace.Record(v.VM.K.Eng.Now(), trace.KindSchedOut, v.VM.Index, v.ID, int64(v.Thread.Core()))
	for _, fn := range v.schedOutHooks {
		fn()
	}
}

// Online reports whether the vCPU thread currently owns a core.
func (v *VCPU) Online() bool { return v.Thread.State() == sched.Running }

// Track returns the vCPU's timeline track (NoTrack without a timeline).
func (v *VCPU) Track() trace.TrackID { return v.track }

// InGuestMode reports whether the vCPU is, right now, executing guest
// code in non-root mode on a core.
func (v *VCPU) InGuestMode() bool {
	return v.Thread.State() == sched.Running && v.mode == kindGuest
}

// EnqueueTask adds guest work to the vCPU and pokes the scheduler so
// higher-priority work preempts promptly.
func (v *VCPU) EnqueueTask(t *Task) {
	v.tasks[t.Prio] = append(v.tasks[t.Prio], t)
	v.poke()
}

// enqueueTaskFront pushes guest work at the head of its priority queue
// (used for interrupt handlers, which nest LIFO).
func (v *VCPU) enqueueTaskFront(t *Task) {
	q := v.tasks[t.Prio]
	q = append(q, nil)
	copy(q[1:], q)
	q[0] = t
	v.tasks[t.Prio] = q
}

// QueuedTasks returns the number of queued guest tasks at prio
// (including a partially executed head task).
func (v *VCPU) QueuedTasks(p Prio) int { return len(v.tasks[p]) }

// BeginExit queues a VM exit of the given reason on this vCPU: the
// thread will spend the cost-model-defined interval in root mode before
// returning to guest execution. onDone (optional) runs when the
// hypervisor finishes handling the exit — e.g. signaling an ioeventfd.
//
// BeginExit must be called from this vCPU's own execution (guest code
// in task callbacks) or from KVM delivery paths that immediately poke.
func (v *VCPU) BeginExit(reason ExitReason, onDone func()) {
	cost := v.VM.K.exitCost(reason)
	v.hostQ = append(v.hostQ, &hostInterval{reason: reason, remaining: cost, onDone: onDone})
	v.VM.recordExit(v, reason)
}

// poke makes the scheduler re-evaluate this vCPU: wake it if sleeping,
// requery its work if running.
func (v *VCPU) poke() {
	switch v.Thread.State() {
	case sched.Sleeping:
		v.VM.K.Sched.Wake(v.Thread)
	case sched.Running:
		v.VM.K.Sched.Requery(v.Thread)
	}
}

// NextChunk implements sched.WorkSource. Priority order mirrors real
// execution: in-flight exit handling, queued exits, interrupt delivery
// at VM entry, then guest work by priority.
func (v *VCPU) NextChunk() sim.Time {
	for {
		if v.hostCur != nil {
			v.mode = kindHost
			return clampChunk(v.hostCur.remaining)
		}
		if len(v.hostQ) > 0 {
			v.hostCur = v.hostQ[0]
			copy(v.hostQ, v.hostQ[1:])
			v.hostQ[len(v.hostQ)-1] = nil
			v.hostQ = v.hostQ[:len(v.hostQ)-1]
			if v.VM.K.Timeline != nil {
				v.hostCur.start = v.VM.K.Eng.Now()
			}
			continue
		}
		// VM entry: sync any posted interrupts into the vAPIC page.
		// Only genuine entries sync — ordinary guest task boundaries
		// stay in non-root mode, where only the notification IPI can
		// trigger the hardware sync.
		if v.needEntrySync {
			v.needEntrySync = false
			if v.VM.K.UsePI && v.PID.HasPending() {
				v.syncPIR()
			}
		}
		// Deliver the highest-priority pending virtual interrupt.
		if vec, ok := v.VAPIC.PendingIRQ(); ok {
			v.startHandler(vec)
			continue
		}
		for p := 0; p < numPrios; p++ {
			if len(v.tasks[p]) > 0 {
				v.curTask = v.tasks[p][0]
				v.mode = kindGuest
				return clampChunk(v.curTask.Remaining)
			}
		}
		v.mode = kindNone
		v.curTask = nil
		return 0
	}
}

// clampChunk guards against a zero remainder: a preemption landing
// exactly on a chunk boundary charges the work to completion without
// running its ChunkDone; returning the minimum chunk lets the
// completion fire instead of being mistaken for "no work: block".
func clampChunk(r sim.Time) sim.Time {
	if r <= 0 {
		return 1
	}
	return r
}

// startHandler accepts vector vec and queues its guest interrupt
// handler at PrioIRQ.
func (v *VCPU) startHandler(vec apic.Vector) {
	v.VAPIC.Accept(vec)
	if k := v.VM.K; k.IRQLatPosted != nil || k.Causal != nil {
		if t0, mech, ok := v.irqStamps.Take(vec); ok {
			if k.IRQLatPosted != nil {
				d := k.Eng.Now() - t0
				if mech == apic.StampPosted {
					k.IRQLatPosted.Observe(d)
				} else {
					k.IRQLatEmulated.Observe(d)
				}
			}
			v.lastInjectT, v.lastInjectMech, v.lastInjectOK = t0, mech, true
		} else {
			v.lastInjectOK = false
		}
	}
	v.IRQAccepted++
	v.VM.noteAccepted(v, vec)
	h := v.VM.idt[vec]
	var cost sim.Time
	var fn func()
	if h != nil {
		cost, fn = h(v)
	}
	total := v.VM.K.Cost.IRQEntryExit + cost
	v.enqueueTaskFront(&Task{
		Name:      fmt.Sprintf("irq%#x", vec),
		Prio:      PrioIRQ,
		Remaining: total,
		OnComplete: func() {
			if fn != nil {
				fn()
			}
			v.completeIRQ()
		},
	})
}

// LastInjection returns the injection stamp consumed by the current
// interrupt-handler dispatch: the APIC injection instant and delivery
// mechanism. Meaningful only inside an IDT handler invocation, and
// only while injection stamps are enabled (telemetry or causal runs).
func (v *VCPU) LastInjection() (t sim.Time, mech apic.StampMech, ok bool) {
	return v.lastInjectT, v.lastInjectMech, v.lastInjectOK
}

// LastSchedIn returns the instant this vCPU's thread last went
// on-core.
func (v *VCPU) LastSchedIn() sim.Time { return v.lastSchedIn }

// completeIRQ performs the EOI write at handler exit. Without posted
// interrupts this is the trap-and-emulate APIC access — the paper's
// "interrupt completion" exit.
func (v *VCPU) completeIRQ() {
	vec := v.VAPIC.EOI()
	v.IRQCompleted++
	v.VM.noteCompleted(v, vec)
	if !v.VM.K.UsePI {
		v.BeginExit(ExitAPICAccess, nil)
	}
}

// Ran implements sched.WorkSource: charge consumed CPU to the mode and
// to the in-flight work item.
func (v *VCPU) Ran(d sim.Time) {
	switch v.mode {
	case kindHost:
		v.HostTime += d
		if v.hostCur != nil {
			v.hostCur.remaining -= d
		}
	case kindGuest:
		v.GuestTime += d
		if v.curTask != nil {
			v.curTask.Remaining -= d
		}
	}
}

// syncPIR performs the hardware PIR->vIRR synchronization, closing any
// open pi-wait span: the latency from the first unprocessed post to the
// moment the vector became visible in the virtual APIC page.
func (v *VCPU) syncPIR() {
	v.PID.Sync(&v.VAPIC)
	if v.piPostPending {
		v.piPostPending = false
		v.VM.K.Path.Observe(trace.StagePIWait, trace.MechPosted, v.VM.K.Eng.Now()-v.piPostT)
	}
}

// SetPIAvailable marks this vCPU's posted-interrupt facility working or
// broken (fault injection). On a break, any vectors already latched in
// the PIR are flushed into the virtual APIC immediately — the hardware
// can no longer be trusted to sync them at the next entry, and losing
// them would wedge the guest.
func (v *VCPU) SetPIAvailable(ok bool) {
	if ok == v.PID.Available() {
		return
	}
	v.PID.SetAvailable(ok)
	if !ok && v.PID.HasPending() {
		v.syncPIR()
		v.poke()
	}
}

// ChunkDone implements sched.WorkSource.
func (v *VCPU) ChunkDone() {
	switch v.mode {
	case kindHost:
		hi := v.hostCur
		v.hostCur = nil
		v.mode = kindNone
		v.needEntrySync = true // exit handling done: next guest run is a VM entry
		if tl := v.VM.K.Timeline; tl.Active() && hi != nil {
			tl.Slice(v.track, "exit:"+hi.reason.String(), hi.start, v.VM.K.Eng.Now())
		}
		if hi != nil && hi.onDone != nil {
			hi.onDone()
		}
	case kindGuest:
		t := v.curTask
		v.curTask = nil
		v.mode = kindNone
		if t == nil {
			return
		}
		q := v.tasks[t.Prio]
		if len(q) == 0 || q[0] != t {
			panic("vmm: completed task is not at its queue head")
		}
		copy(q, q[1:])
		q[len(q)-1] = nil
		v.tasks[t.Prio] = q[:len(q)-1]
		if t.OnComplete != nil {
			t.OnComplete()
		}
	}
}

// TIG returns this vCPU's time-in-guest fraction (1 when it never ran).
func (v *VCPU) TIG() float64 {
	total := v.GuestTime + v.HostTime
	if total == 0 {
		return 1
	}
	return float64(v.GuestTime) / float64(total)
}

// ResetStats zeroes the accumulated time and interrupt counters.
func (v *VCPU) ResetStats() {
	v.GuestTime, v.HostTime = 0, 0
	v.IRQAccepted, v.IRQCompleted = 0, 0
}

// startBackgroundExits arms the Poisson background of miscellaneous
// exits (EPT violations etc.) defined by the cost model.
func (v *VCPU) startBackgroundExits() {
	k := v.VM.K
	period := k.Cost.OtherExitPeriod
	if period == 0 {
		return
	}
	if k.UsePI {
		period *= 2 // APICv removes interrupt-window/TPR background exits
	}
	var arm func()
	arm = func() {
		d := k.rng.ExpDuration(period)
		if d < sim.Microsecond {
			d = sim.Microsecond
		}
		v.otherExitEvt = k.Eng.After(d, func() {
			if v.InGuestMode() {
				v.BeginExit(ExitOther, nil)
				v.poke()
			}
			arm()
		})
	}
	arm()
}
