package vmm

import "es2/internal/sim"

// CostModel centralizes every hardware timing constant in the
// simulator. The values are calibrated so that the paper's baseline
// measurements are reproduced in magnitude (see EXPERIMENTS.md for the
// calibration table); everything else in the repository derives its
// timing from this one struct.
//
// All exit costs are the full guest-visible stall: VM exit transition +
// hypervisor handling + VM entry transition. The paper cites "hundreds
// or thousands of cycles" for the bare transition [18], to which KVM's
// handler work and the indirect cache-pollution cost add; low
// single-digit microseconds per exit on the paper's 2.3 GHz Xeon is the
// established ballpark (ELI reports ~1-2k cycles bare, 3-8k with
// handling).
type CostModel struct {
	// IOInstrExit is the cost of an I/O-instruction exit: the virtio
	// kick trapped and routed to an ioeventfd. This is KVM's cheapest
	// I/O exit path (no userspace round trip).
	IOInstrExit sim.Time
	// ExtIntrExit is the cost of an external-interrupt exit, the kick
	// IPI that forces a running vCPU out so a virtual interrupt can be
	// injected at the following entry.
	ExtIntrExit sim.Time
	// APICAccessExit is the cost of the trap-and-emulate EOI write.
	APICAccessExit sim.Time
	// OtherExit is the cost of a background exit (EPT violation etc.).
	OtherExit sim.Time
	// InjectionEntry is the extra VM-entry work when an interrupt is
	// injected during the entry.
	InjectionEntry sim.Time
	// IPILatency is the physical inter-processor-interrupt flight time
	// from the signaling core to the target core.
	IPILatency sim.Time
	// PINotifyLatency is the posted-interrupt notification flight time
	// (an IPI with the special notification vector, processed entirely
	// in hardware/microcode on the target).
	PINotifyLatency sim.Time
	// IRQEntryExit is the guest-side interrupt prologue + epilogue
	// (vector dispatch through the IDT, register save/restore, the EOI
	// write instruction itself).
	IRQEntryExit sim.Time
	// TimerTickPeriod is the guest kernel tick. 4ms = CONFIG_HZ_250,
	// the Ubuntu 14.04 default. Zero disables guest timer ticks.
	TimerTickPeriod sim.Time
	// OtherExitPeriod is the mean interval between background exits
	// while a vCPU runs (EPT violations, MSR traps, interrupt
	// windows...). Zero disables them. When posted interrupts are
	// enabled the effective period is doubled: APICv removes the
	// interrupt-window and TPR-related components of this background.
	OtherExitPeriod sim.Time
}

// DefaultCosts returns the calibrated cost model. The calibration
// anchors (paper Table I / Fig. 5) are reproduced with these values:
// a TCP-send baseline around 120-130k exits/s at ~70% time-in-guest.
func DefaultCosts() CostModel {
	return CostModel{
		IOInstrExit:     2200 * sim.Nanosecond,
		ExtIntrExit:     2600 * sim.Nanosecond,
		APICAccessExit:  1900 * sim.Nanosecond,
		OtherExit:       2500 * sim.Nanosecond,
		InjectionEntry:  600 * sim.Nanosecond,
		IPILatency:      400 * sim.Nanosecond,
		PINotifyLatency: 250 * sim.Nanosecond,
		IRQEntryExit:    700 * sim.Nanosecond,
		TimerTickPeriod: 4 * sim.Millisecond,
		OtherExitPeriod: 600 * sim.Microsecond,
	}
}
