package vmm

import (
	"testing"

	"es2/internal/apic"
	"es2/internal/sched"
	"es2/internal/sim"
)

type env struct {
	eng *sim.Engine
	s   *sched.Scheduler
	k   *KVM
}

func newEnv(cores int, usePI bool) *env {
	eng := sim.NewEngine(1)
	s := sched.New(eng, cores, sched.DefaultParams())
	cost := DefaultCosts()
	cost.TimerTickPeriod = 0 // keep unit tests quiet unless enabled
	cost.OtherExitPeriod = 0
	k := NewKVM(eng, s, cost)
	k.UsePI = usePI
	return &env{eng: eng, s: s, k: k}
}

// burn keeps a vCPU always-runnable at idle priority.
func addBurn(v *VCPU) {
	var loop func()
	loop = func() {
		v.EnqueueTask(NewTask("burn", PrioIdle, 50*sim.Microsecond, loop))
	}
	loop()
}

func TestGuestTaskPriorities(t *testing.T) {
	e := newEnv(1, false)
	vm := e.k.NewVM("vm", []int{0})
	v := vm.VCPUs[0]
	var order []string
	v.EnqueueTask(NewTask("low", PrioTask, 100*sim.Microsecond, func() { order = append(order, "task") }))
	v.EnqueueTask(NewTask("soft", PrioSoftirq, 50*sim.Microsecond, func() { order = append(order, "softirq") }))
	v.EnqueueTask(NewTask("idle", PrioIdle, 10*sim.Microsecond, func() { order = append(order, "idle") }))
	e.eng.RunAll()
	if len(order) != 3 || order[0] != "softirq" || order[1] != "task" || order[2] != "idle" {
		t.Fatalf("order = %v, want [softirq task idle]", order)
	}
	if v.GuestTime != 160*sim.Microsecond {
		t.Fatalf("GuestTime = %v, want 160us", v.GuestTime)
	}
	if v.HostTime != 0 {
		t.Fatalf("HostTime = %v, want 0", v.HostTime)
	}
}

func TestHigherPrioPreemptsLower(t *testing.T) {
	e := newEnv(1, false)
	vm := e.k.NewVM("vm", []int{0})
	v := vm.VCPUs[0]
	var softAt, taskAt sim.Time
	v.EnqueueTask(NewTask("long", PrioTask, sim.Millisecond, func() { taskAt = e.eng.Now() }))
	// 100us in, a softirq is raised: it must preempt the long task.
	e.eng.After(100*sim.Microsecond, func() {
		v.EnqueueTask(NewTask("soft", PrioSoftirq, 10*sim.Microsecond, func() { softAt = e.eng.Now() }))
	})
	e.eng.RunAll()
	if softAt != 110*sim.Microsecond {
		t.Fatalf("softirq done at %v, want 110us", softAt)
	}
	if taskAt != sim.Millisecond+10*sim.Microsecond {
		t.Fatalf("task done at %v, want 1.01ms (resumed after softirq)", taskAt)
	}
}

func TestBeginExitAccounting(t *testing.T) {
	e := newEnv(1, false)
	vm := e.k.NewVM("vm", []int{0})
	v := vm.VCPUs[0]
	handled := false
	v.EnqueueTask(NewTask("io", PrioTask, 10*sim.Microsecond, func() {
		v.BeginExit(ExitIOInstruction, func() { handled = true })
	}))
	e.eng.RunAll()
	if !handled {
		t.Fatal("exit onDone never ran")
	}
	if vm.Exits.Count(int(ExitIOInstruction)) != 1 {
		t.Fatal("IOInstruction exit not recorded")
	}
	if v.HostTime != e.k.Cost.IOInstrExit {
		t.Fatalf("HostTime = %v, want %v", v.HostTime, e.k.Cost.IOInstrExit)
	}
	if v.GuestTime != 10*sim.Microsecond {
		t.Fatalf("GuestTime = %v", v.GuestTime)
	}
	wantTIG := float64(10*sim.Microsecond) / float64(10*sim.Microsecond+e.k.Cost.IOInstrExit)
	if got := v.TIG(); got < wantTIG-1e-9 || got > wantTIG+1e-9 {
		t.Fatalf("TIG = %v, want %v", got, wantTIG)
	}
}

// registerCountingIRQ registers a device vector whose handler counts.
func registerCountingIRQ(vm *VM, cost sim.Time, count *int) apic.Vector {
	return vm.AllocVector(ClassDevice, func(*VCPU) (sim.Time, func()) {
		return cost, func() { *count++ }
	})
}

func TestBaselineInjectionToRunningVCPU(t *testing.T) {
	e := newEnv(1, false)
	vm := e.k.NewVM("vm", []int{0})
	v := vm.VCPUs[0]
	handled := 0
	vec := registerCountingIRQ(vm, 2*sim.Microsecond, &handled)
	addBurn(v)
	e.eng.After(100*sim.Microsecond, func() {
		e.k.InjectMSI(vm, apic.MSIMessage{Vector: vec, Dest: 0, Mode: apic.LowestPriority})
	})
	e.eng.Run(sim.Millisecond)
	if handled != 1 {
		t.Fatalf("handled = %d, want 1", handled)
	}
	// Baseline to a running vCPU: exactly one ExternalInterrupt exit
	// (the kick) and one APICAccess exit (the EOI).
	if got := vm.Exits.Count(int(ExitExternalInterrupt)); got != 1 {
		t.Fatalf("ExternalInterrupt exits = %d, want 1", got)
	}
	if got := vm.Exits.Count(int(ExitAPICAccess)); got != 1 {
		t.Fatalf("APICAccess exits = %d, want 1", got)
	}
	if vm.DevIRQDelivered.Value() != 1 || vm.DevIRQCompleted.Value() != 1 {
		t.Fatal("device IRQ counters wrong")
	}
}

func TestPIDeliveryNoExits(t *testing.T) {
	e := newEnv(1, true)
	vm := e.k.NewVM("vm", []int{0})
	v := vm.VCPUs[0]
	handled := 0
	vec := registerCountingIRQ(vm, 2*sim.Microsecond, &handled)
	addBurn(v)
	var injectAt, handledAt sim.Time
	e.eng.After(100*sim.Microsecond, func() {
		injectAt = e.eng.Now()
		e.k.InjectMSI(vm, apic.MSIMessage{Vector: vec, Dest: 0, Mode: apic.LowestPriority})
	})
	e.eng.Run(sim.Millisecond)
	_ = injectAt
	_ = handledAt
	if handled != 1 {
		t.Fatalf("handled = %d, want 1", handled)
	}
	if total := vm.Exits.Total(); total != 0 {
		t.Fatalf("PI delivery caused %d exits, want 0", total)
	}
	if v.PID.Posts != 1 || v.PID.Notifications != 1 {
		t.Fatalf("PID counters: posts=%d notifications=%d", v.PID.Posts, v.PID.Notifications)
	}
}

func TestPIDeliveryLatencyToRunningVCPU(t *testing.T) {
	e := newEnv(1, true)
	vm := e.k.NewVM("vm", []int{0})
	v := vm.VCPUs[0]
	var handledAt sim.Time
	vec := vm.AllocVector(ClassDevice, func(*VCPU) (sim.Time, func()) {
		return 1 * sim.Microsecond, func() { handledAt = e.eng.Now() }
	})
	addBurn(v)
	e.eng.After(100*sim.Microsecond, func() {
		e.k.InjectMSI(vm, apic.MSIMessage{Vector: vec, Dest: 0})
	})
	e.eng.Run(sim.Millisecond)
	want := 100*sim.Microsecond + e.k.Cost.PINotifyLatency + e.k.Cost.IRQEntryExit + 1*sim.Microsecond
	if handledAt != want {
		t.Fatalf("handledAt = %v, want %v", handledAt, want)
	}
}

// offlinePair builds two single-vCPU VMs sharing core 0 with burn
// loads, registers a counting device vector in each, and returns a
// picker that yields the currently offline VM and its vector.
func offlinePair(t *testing.T, e *env, handled *int) func() (*VM, apic.Vector) {
	t.Helper()
	vmA := e.k.NewVM("a", []int{0})
	vmB := e.k.NewVM("b", []int{0})
	addBurn(vmA.VCPUs[0])
	addBurn(vmB.VCPUs[0])
	vecA := registerCountingIRQ(vmA, 2*sim.Microsecond, handled)
	vecB := registerCountingIRQ(vmB, 2*sim.Microsecond, handled)
	return func() (*VM, apic.Vector) {
		if !vmA.VCPUs[0].Online() {
			return vmA, vecA
		}
		if !vmB.VCPUs[0].Online() {
			return vmB, vecB
		}
		t.Fatal("both vCPUs online on one core — impossible")
		return nil, 0
	}
}

func TestBaselineInjectionToDescheduledVCPU(t *testing.T) {
	// Two always-busy vCPUs share one core; inject to the one that is
	// currently descheduled: no ExternalInterrupt exit should occur
	// (injection piggybacks on the natural VM entry), but the EOI exit
	// remains.
	e := newEnv(1, false)
	handled := 0
	pick := offlinePair(t, e, &handled)
	var target *VM
	e.eng.After(sim.Millisecond, func() {
		vm, vec := pick()
		target = vm
		e.k.InjectMSI(vm, apic.MSIMessage{Vector: vec, Dest: 0})
	})
	e.eng.Run(100 * sim.Millisecond)
	if handled != 1 {
		t.Fatalf("handled = %d, want 1", handled)
	}
	if got := target.Exits.Count(int(ExitExternalInterrupt)); got != 0 {
		t.Fatalf("ExternalInterrupt exits = %d, want 0 for descheduled target", got)
	}
	if got := target.Exits.Count(int(ExitAPICAccess)); got != 1 {
		t.Fatalf("APICAccess exits = %d, want 1", got)
	}
}

func TestPIToDescheduledVCPUWaitsForEntry(t *testing.T) {
	e := newEnv(1, true)
	handled := 0
	pick := offlinePair(t, e, &handled)
	var injectAt sim.Time
	var target *VM
	e.eng.After(sim.Millisecond, func() {
		vm, vec := pick()
		target = vm
		injectAt = e.eng.Now()
		e.k.InjectMSI(vm, apic.MSIMessage{Vector: vec, Dest: 0})
	})
	var handledAt sim.Time
	// Poll for the handler completion time via a watcher task: record
	// when handled flips.
	var watch func()
	watch = func() {
		if handled > 0 && handledAt == 0 {
			handledAt = e.eng.Now()
		}
		if handledAt == 0 {
			e.eng.After(10*sim.Microsecond, watch)
		}
	}
	e.eng.After(sim.Millisecond, watch)
	e.eng.Run(200 * sim.Millisecond)
	if handledAt == 0 {
		t.Fatal("interrupt never handled")
	}
	delay := handledAt - injectAt
	// The delay must be a scheduling-scale delay (ms), not an IPI-scale
	// one — this is the latency gap ES2's redirection closes.
	if delay < sim.Millisecond {
		t.Fatalf("delay = %v, want >= 1ms (vCPU scheduling delay)", delay)
	}
	if target.Exits.Total() != 0 {
		t.Fatalf("PI path caused %d exits", target.Exits.Total())
	}
}

func TestInterruptCoalescing(t *testing.T) {
	// Two injections of the same vector while the target vCPU is
	// descheduled (another VM holds the core): both latch the same IRR
	// bit and coalesce into a single handler invocation.
	e := newEnv(1, false)
	handled := 0
	pick := offlinePair(t, e, &handled)
	e.eng.After(sim.Millisecond, func() {
		vm, vec := pick()
		e.k.InjectMSI(vm, apic.MSIMessage{Vector: vec, Dest: 0})
		e.k.InjectMSI(vm, apic.MSIMessage{Vector: vec, Dest: 0})
	})
	e.eng.Run(100 * sim.Millisecond)
	if handled != 1 {
		t.Fatalf("handled = %d, want 1 (coalesced)", handled)
	}
}

func TestSleepingVCPUWokenByInterrupt(t *testing.T) {
	for _, usePI := range []bool{false, true} {
		e := newEnv(1, usePI)
		vm := e.k.NewVM("vm", []int{0})
		handled := 0
		vec := registerCountingIRQ(vm, sim.Microsecond, &handled)
		// No burn: vCPU sleeps with no work.
		e.eng.After(10*sim.Microsecond, func() {
			e.k.InjectMSI(vm, apic.MSIMessage{Vector: vec, Dest: 0})
		})
		e.eng.RunAll()
		if handled != 1 {
			t.Fatalf("usePI=%t: handled = %d, want 1", usePI, handled)
		}
	}
}

type fixedRouter struct{ target *VCPU }

func (r fixedRouter) Route(vm *VM, msi apic.MSIMessage) *VCPU { return r.target }

func TestRouterInterceptsMSI(t *testing.T) {
	e := newEnv(2, true)
	vm := e.k.NewVM("vm", []int{0, 1})
	handledOn := -1
	vec := vm.AllocVector(ClassDevice, func(v *VCPU) (sim.Time, func()) {
		return sim.Microsecond, func() { handledOn = v.ID }
	})
	addBurn(vm.VCPUs[0])
	addBurn(vm.VCPUs[1])
	e.k.Router = fixedRouter{target: vm.VCPUs[1]}
	e.eng.After(50*sim.Microsecond, func() {
		// Affinity says vCPU 0, router redirects to vCPU 1.
		e.k.InjectMSI(vm, apic.MSIMessage{Vector: vec, Dest: 0, Mode: apic.LowestPriority})
	})
	e.eng.Run(sim.Millisecond)
	if handledOn != 1 {
		t.Fatalf("handled on vCPU %d, want 1 (redirected)", handledOn)
	}
}

func TestTimerTickDelivery(t *testing.T) {
	e := newEnv(1, false)
	e.k.Cost.TimerTickPeriod = 4 * sim.Millisecond
	vm := e.k.NewVM("vm", []int{0})
	addBurn(vm.VCPUs[0])
	vm.Start()
	vm.ResetStats()
	e.eng.Run(1 * sim.Second)
	ticks := vm.VCPUs[0].IRQAccepted
	if ticks < 240 || ticks > 260 {
		t.Fatalf("timer ticks = %d, want ~250", ticks)
	}
	// Timer vector is ClassLocal: not counted as device IRQ.
	if vm.DevIRQDelivered.Value() != 0 {
		t.Fatal("timer ticks must not count as device IRQs")
	}
	// Baseline timer ticks trigger delivery + completion exits.
	if vm.Exits.Count(int(ExitAPICAccess)) == 0 {
		t.Fatal("baseline timer EOIs should trap")
	}
}

func TestBackgroundOtherExits(t *testing.T) {
	e := newEnv(1, false)
	e.k.Cost.OtherExitPeriod = 500 * sim.Microsecond
	vm := e.k.NewVM("vm", []int{0})
	addBurn(vm.VCPUs[0])
	vm.Start()
	e.eng.Run(1 * sim.Second)
	rate := vm.Exits.Rate(int(ExitOther), sim.Second)
	if rate < 1000 || rate > 3500 {
		t.Fatalf("Other exit rate = %.0f/s, want ~2000", rate)
	}
}

func TestResetStats(t *testing.T) {
	e := newEnv(1, false)
	vm := e.k.NewVM("vm", []int{0})
	v := vm.VCPUs[0]
	v.EnqueueTask(NewTask("io", PrioTask, 10*sim.Microsecond, func() {
		v.BeginExit(ExitIOInstruction, nil)
	}))
	e.eng.RunAll()
	if vm.Exits.Total() == 0 {
		t.Fatal("setup: no exits recorded")
	}
	vm.ResetStats()
	if vm.Exits.Total() != 0 || v.GuestTime != 0 || v.HostTime != 0 {
		t.Fatal("ResetStats incomplete")
	}
}

func TestExitReasonStrings(t *testing.T) {
	if ExitIOInstruction.String() != "IOInstruction" {
		t.Fatal("exit name wrong")
	}
	labels := ExitLabels()
	if len(labels) != NumExitReasons {
		t.Fatalf("labels = %v", labels)
	}
	if ExitReason(99).String() == "" {
		t.Fatal("unknown reason should format")
	}
}

func TestAllocVectorClasses(t *testing.T) {
	e := newEnv(1, false)
	vm := e.k.NewVM("vm", []int{0})
	dev := vm.AllocVector(ClassDevice, nil)
	loc := vm.AllocVector(ClassLocal, nil)
	if !vm.IsDeviceVector(dev) {
		t.Fatal("device vector misclassified")
	}
	if vm.IsDeviceVector(loc) {
		t.Fatal("local vector misclassified")
	}
	if dev == loc {
		t.Fatal("vectors must be distinct")
	}
}

func TestVMStringAndCounts(t *testing.T) {
	e := newEnv(2, false)
	vm := e.k.NewVM("web", []int{0, 1})
	if vm.NumVCPUs() != 2 {
		t.Fatal("NumVCPUs wrong")
	}
	if vm.String() == "" {
		t.Fatal("String empty")
	}
	if len(e.k.VMs()) != 1 {
		t.Fatal("KVM.VMs wrong")
	}
}

func TestHigherClassInterruptNestsOverHandler(t *testing.T) {
	// A device handler (vector ~0x31, class 3) is preempted by the
	// local timer (vector 0xEF, class 14); completions unwind LIFO.
	e := newEnv(1, true)
	vm := e.k.NewVM("vm", []int{0})
	v := vm.VCPUs[0]
	var order []string
	dev := vm.AllocVector(ClassDevice, func(*VCPU) (sim.Time, func()) {
		return 100 * sim.Microsecond, func() { order = append(order, "dev-done") }
	})
	vm.RegisterIDT(TimerVector, ClassLocal, func(*VCPU) (sim.Time, func()) {
		return 2 * sim.Microsecond, func() { order = append(order, "timer-done") }
	})
	addBurn(v)
	e.eng.After(10*sim.Microsecond, func() {
		e.k.InjectMSI(vm, apic.MSIMessage{Vector: dev, Dest: 0})
	})
	// Mid-handler, the timer fires.
	e.eng.After(50*sim.Microsecond, func() {
		e.k.DeliverLocal(v, TimerVector)
	})
	e.eng.Run(5 * sim.Millisecond)
	if len(order) != 2 || order[0] != "timer-done" || order[1] != "dev-done" {
		t.Fatalf("order = %v, want [timer-done dev-done] (nested preemption)", order)
	}
	if v.IRQAccepted != 2 || v.IRQCompleted != 2 {
		t.Fatalf("accepted=%d completed=%d", v.IRQAccepted, v.IRQCompleted)
	}
}

func TestSameClassInterruptDefersUntilEOI(t *testing.T) {
	// Two device vectors in the same priority class: the second must
	// wait for the first handler's EOI.
	e := newEnv(1, true)
	vm := e.k.NewVM("vm", []int{0})
	v := vm.VCPUs[0]
	var order []string
	mk := func(tag string, cost sim.Time) apic.Vector {
		return vm.AllocVector(ClassDevice, func(*VCPU) (sim.Time, func()) {
			return cost, func() { order = append(order, tag) }
		})
	}
	// Allocate in the same 16-vector class (0x31, 0x32).
	v1 := mk("first", 100*sim.Microsecond)
	v2 := mk("second", 5*sim.Microsecond)
	if v1.Class() != v2.Class() {
		t.Skipf("vectors landed in different classes: %#x %#x", v1, v2)
	}
	addBurn(v)
	e.eng.After(10*sim.Microsecond, func() {
		e.k.InjectMSI(vm, apic.MSIMessage{Vector: v1, Dest: 0})
	})
	e.eng.After(50*sim.Microsecond, func() {
		e.k.InjectMSI(vm, apic.MSIMessage{Vector: v2, Dest: 0})
	})
	e.eng.Run(5 * sim.Millisecond)
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("order = %v, want [first second] (same-class deferral)", order)
	}
}

func TestSleepingIdleVCPUConsumesNoCPU(t *testing.T) {
	e := newEnv(1, true)
	vm := e.k.NewVM("vm", []int{0})
	v := vm.VCPUs[0]
	e.eng.Run(100 * sim.Millisecond)
	if v.GuestTime != 0 || v.HostTime != 0 || v.Thread.SumExec() != 0 {
		t.Fatalf("idle vCPU consumed CPU: guest=%v host=%v", v.GuestTime, v.HostTime)
	}
}

func TestVCPUTigAggregation(t *testing.T) {
	e := newEnv(2, false)
	vm := e.k.NewVM("vm", []int{0, 1})
	for _, v := range vm.VCPUs {
		vv := v
		vv.EnqueueTask(NewTask("io", PrioTask, 10*sim.Microsecond, func() {
			vv.BeginExit(ExitIOInstruction, nil)
		}))
	}
	e.eng.RunAll()
	want := float64(20*sim.Microsecond) / float64(20*sim.Microsecond+2*e.k.Cost.IOInstrExit)
	if got := vm.TIG(); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("VM TIG = %v, want %v", got, want)
	}
}
