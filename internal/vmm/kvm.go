package vmm

import (
	"es2/internal/apic"
	"es2/internal/causal"
	"es2/internal/metrics"
	"es2/internal/profile"
	"es2/internal/sched"
	"es2/internal/sim"
	"es2/internal/trace"
)

// MSIRouter intercepts device-interrupt routing, the kvm_set_msi_irq
// hook that ES2's intelligent interrupt redirection plugs into.
// Returning nil keeps the affinity-selected destination.
type MSIRouter interface {
	Route(vm *VM, msi apic.MSIMessage) *VCPU
}

// KVM is the hypervisor: it owns the host scheduler and delivers
// virtual interrupts by one of two paths, software-emulated APIC
// injection (baseline) or hardware posted interrupts (UsePI).
type KVM struct {
	Eng   *sim.Engine
	Sched *sched.Scheduler
	Cost  CostModel
	// UsePI selects the posted-interrupt delivery path (exit-less
	// delivery and completion).
	UsePI bool
	// Router, when non-nil, intercepts MSI routing (ES2 redirection).
	Router MSIRouter
	// Trace, when non-nil, records event-path activity (perf-kvm
	// style). A nil buffer costs nothing.
	Trace *trace.Buffer
	// Path, when non-nil, attributes per-stage event-path latency
	// (signal delivery, pi-wait). Nil costs nothing.
	Path *trace.PathTracer
	// Timeline, when non-nil, receives per-vCPU exit slices and
	// interrupt-delivery instants. Set before creating VMs so vCPU
	// tracks register in deterministic build order.
	Timeline *trace.Timeline
	// Prof, when non-nil, receives exact CPU attribution for every
	// vCPU (guest task vs. exit handling by reason). Set before
	// creating VMs so contexts intern in deterministic build order.
	Prof *profile.Profiler
	// IRQLatPosted / IRQLatEmulated, when non-nil (telemetry runs),
	// record the interrupt-delivery latency — APIC injection to guest
	// handler entry — split by delivery path. Both are set together;
	// nil costs nothing.
	IRQLatPosted   *metrics.LogHistogram
	IRQLatEmulated *metrics.LogHistogram

	// Causal, when non-nil, enables per-request causal-chain tracking
	// for this host: injection stamps are kept even without telemetry,
	// and the guest layers stamp chains through this probe. Purely
	// observational; nil costs nothing.
	Causal *causal.Probe

	rng *sim.Rand
	vms []*VM

	// IPIsSent counts kick IPIs (baseline) and PI notification IPIs.
	IPIsSent uint64
	// PIFallbacks counts deliveries that wanted the posted path but
	// fell back to emulated injection because the target vCPU's PI
	// facility was unavailable (fault injection).
	PIFallbacks uint64
}

// NewKVM creates the hypervisor on the given engine and scheduler.
func NewKVM(eng *sim.Engine, s *sched.Scheduler, cost CostModel) *KVM {
	return &KVM{Eng: eng, Sched: s, Cost: cost, rng: eng.Rand().Fork()}
}

// VMs returns all created VMs.
func (k *KVM) VMs() []*VM { return k.vms }

func (k *KVM) exitCost(r ExitReason) sim.Time {
	switch r {
	case ExitIOInstruction:
		return k.Cost.IOInstrExit
	case ExitExternalInterrupt:
		return k.Cost.ExtIntrExit
	case ExitAPICAccess:
		return k.Cost.APICAccessExit
	default:
		return k.Cost.OtherExit
	}
}

// InjectMSI delivers a device MSI to a VM, applying interrupt routing
// (guest affinity or the installed Router) and then the configured
// delivery path. This is the entry point back-end devices use to raise
// virtual interrupts.
func (k *KVM) InjectMSI(vm *VM, msi apic.MSIMessage) {
	target := vm.VCPUs[msi.Dest]
	redirected := false
	if k.Router != nil {
		if t := k.Router.Route(vm, msi); t != nil {
			redirected = t != target
			target = t
		}
	}
	if k.Path != nil {
		mech := trace.MechEmulated
		switch {
		case k.UsePI && !target.PID.Available():
			// PI outage: delivery will fall back to the emulated path.
		case redirected:
			mech = trace.MechRedirected
		case k.UsePI:
			mech = trace.MechPosted
		}
		k.Path.OpenSignal(vm.Index, uint8(msi.Vector), mech, k.Eng.Now())
	}
	k.DeliverLocal(target, msi.Vector)
}

// DeliverLocal delivers vector vec directly to the given vCPU without
// routing (used for per-vCPU interrupts such as the local timer, and by
// InjectMSI after routing).
func (k *KVM) DeliverLocal(v *VCPU, vec apic.Vector) {
	stamp := k.IRQLatPosted != nil || k.Causal != nil
	if k.UsePI {
		if v.PID.Available() {
			if stamp {
				v.irqStamps.Mark(vec, apic.StampPosted, k.Eng.Now())
			}
			k.postInterrupt(v, vec)
			return
		}
		// Graceful degradation: the PI facility is down for this vCPU,
		// so deliver through the emulated LAPIC until it recovers.
		k.PIFallbacks++
	}
	if stamp {
		v.irqStamps.Mark(vec, apic.StampEmulated, k.Eng.Now())
	}
	k.injectEmulated(v, vec)
}

// postInterrupt implements the PI path: post to the PIR; when the
// target is executing guest code, a notification IPI triggers the
// hardware sync + exit-less delivery. Otherwise the PIR is synced at
// the next VM entry.
func (k *KVM) postInterrupt(v *VCPU, vec apic.Vector) {
	notify, newly := v.PID.Post(vec)
	if k.Path != nil && newly && !v.piPostPending {
		v.piPostPending = true
		v.piPostT = k.Eng.Now()
	}
	if notify {
		k.IPIsSent++
		k.Eng.After(k.Cost.PINotifyLatency, func() {
			if v.InGuestMode() {
				v.syncPIR()
				v.poke()
			}
			// Not in guest mode: the posted bits stay in the PIR and
			// are synchronized at the next VM entry.
		})
	}
	if v.Thread.State() == sched.Sleeping {
		k.Sched.Wake(v.Thread)
	}
}

// injectEmulated implements the baseline path through the
// software-emulated Local-APIC: latch the IRR; if the target is in
// guest mode it must be kicked out with an IPI (an External Interrupt
// exit) so the interrupt can be injected at the following VM entry.
// The guest handler's EOI will then trap (APIC Access exit).
func (k *KVM) injectEmulated(v *VCPU, vec apic.Vector) {
	v.VAPIC.RequestIRQ(vec)
	switch {
	case v.InGuestMode():
		k.IPIsSent++
		k.Eng.After(k.Cost.IPILatency, func() {
			// The kick only causes an exit if the vCPU is still in
			// guest mode when the IPI lands; it may have exited for
			// another reason meanwhile (then injection piggybacks on
			// that exit's VM entry, costing nothing extra).
			if v.InGuestMode() {
				v.BeginExit(ExitExternalInterrupt, nil)
				v.poke()
			}
		})
	case v.Thread.State() == sched.Sleeping:
		k.Sched.Wake(v.Thread)
	default:
		// Runnable (descheduled) or already handling an exit: the
		// pending interrupt is injected at the next VM entry with no
		// dedicated exit — this is why the paper's Table I shows fewer
		// delivery exits than completion exits.
	}
}
