package vmm

import "es2/internal/sim"

// Prio is the priority of guest work inside one vCPU. It models the
// guest kernel's execution contexts: hardware interrupt handlers
// preempt softirq, softirq preempts process context, and the idle class
// only runs when nothing else is runnable (the paper's lowest-priority
// CPU-burn script lives there).
type Prio int

const (
	// PrioIRQ is hardware-interrupt context.
	PrioIRQ Prio = iota
	// PrioSoftirq is softirq/bottom-half context (NAPI polling).
	PrioSoftirq
	// PrioTask is ordinary process context.
	PrioTask
	// PrioIdle is the idle class (CPU-burn fillers).
	PrioIdle

	numPrios = iota
)

// Task is a unit of guest CPU work executed on a vCPU. Tasks are
// one-shot: long-running guest activities re-enqueue themselves from
// OnComplete. A task preempted by a higher-priority task (or by the
// host scheduler) keeps its remaining time and resumes later.
type Task struct {
	Name      string
	Prio      Prio
	Remaining sim.Time
	// OnComplete runs when the task's time is fully consumed. It runs
	// in guest context: it may enqueue tasks, send packets, trigger
	// exits, and so on.
	OnComplete func()
}

// NewTask is a convenience constructor.
func NewTask(name string, prio Prio, d sim.Time, fn func()) *Task {
	return &Task{Name: name, Prio: prio, Remaining: d, OnComplete: fn}
}
