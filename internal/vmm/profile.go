package vmm

import "es2/internal/profile"

// enableProfiling interns this vCPU's context subtree under its home
// core and installs the thread's charge-time resolver. Called from
// newVCPU (deterministic build order), only when K.Prof is set.
//
// The subtree mirrors how a host-side profiler would decompose a vCPU
// thread's cycles:
//
//	coreN
//	└── vmX/vcpuY            (occupant; KindVCPU)
//	    ├── guest            (non-root mode; KindGuestMode)
//	    │   ├── kernel
//	    │   │   ├── irq      (hardirq context: virtio handlers)
//	    │   │   └── softirq  (NAPI poll, TCP rx processing)
//	    │   └── user         (process context + idle-class burners)
//	    └── exit:<reason>    (root mode, per exit reason; KindExit)
//
// GuestTime/HostTime are charged from the same scheduler deltas, so
// the guest subtree total equals GuestTime and the exit leaves sum to
// HostTime exactly.
func (v *VCPU) enableProfiling(p *profile.Profiler, coreID int) {
	v.profOcc = p.Core(coreID).ChildKind(v.Thread.Name, profile.KindVCPU, v.VM.Index)
	v.profGuest = v.profOcc.ChildKind("guest", profile.KindGuestMode, v.VM.Index)
	kernel := v.profGuest.Child("kernel")
	irq := kernel.Child("irq")
	softirq := kernel.Child("softirq")
	user := v.profGuest.Child("user")
	v.profPrio[PrioIRQ] = irq
	v.profPrio[PrioSoftirq] = softirq
	v.profPrio[PrioTask] = user
	v.profPrio[PrioIdle] = user
	for r := 0; r < NumExitReasons; r++ {
		v.profExit[r] = v.profOcc.ChildKind("exit:"+ExitReason(r).String(), profile.KindExit, v.VM.Index)
	}
	v.Thread.Prof = v.profLeaf
}

// profLeaf resolves the context the vCPU is consuming CPU in right
// now. Invoked by the scheduler at every charge point, before Ran, so
// mode/curTask/hostCur still describe the span being charged.
func (v *VCPU) profLeaf() *profile.Node {
	switch v.mode {
	case kindHost:
		if v.hostCur != nil {
			return v.profExit[v.hostCur.reason]
		}
	case kindGuest:
		if v.curTask != nil {
			// Interned per task name: the name set is small and static
			// (irq vectors, workload task names).
			return v.profPrio[v.curTask.Prio].Child(v.curTask.Name)
		}
		return v.profGuest
	}
	// kindNone never accumulates time (dispatch and NextChunk happen at
	// the same instant); charge the occupant if it somehow does.
	return v.profOcc
}
