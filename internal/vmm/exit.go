// Package vmm models the hypervisor: virtual machines whose vCPUs are
// host threads, the VM exit/entry machinery with a calibrated cost
// model, both virtual-interrupt delivery paths (software-emulated APIC
// with IPI kick + injection, and hardware Posted-Interrupt), and the
// exit-cause/time-in-guest accounting that the paper's evaluation is
// built on.
package vmm

import "fmt"

// ExitReason identifies why a VM exit occurred, following the
// categories the paper reports (Section VI-C): the three most frequent
// causes in the virtual I/O event path plus an Others bucket.
type ExitReason int

const (
	// ExitExternalInterrupt: an external interrupt (here: the IPI used
	// to kick a running vCPU for virtual interrupt injection, or a
	// device interrupt arriving while in guest mode with EIE set).
	ExitExternalInterrupt ExitReason = iota
	// ExitAPICAccess: the guest touched its Local-APIC; in the I/O
	// event path this is almost exclusively the EOI write.
	ExitAPICAccess
	// ExitIOInstruction: the guest issued an I/O request (the virtio
	// kick, trapped via PIO/MMIO and routed to ioeventfd).
	ExitIOInstruction
	// ExitHLT: the guest idled. The paper's methodology pins a
	// lowest-priority CPU-burn script in every VM to suppress these;
	// the simulator supports them for completeness.
	ExitHLT
	// ExitOther aggregates infrequent causes (EPT violations, pending
	// interrupt windows, MSR accesses, ...).
	ExitOther

	NumExitReasons = iota
)

// String returns the perf-kvm style name of the exit reason.
func (r ExitReason) String() string {
	switch r {
	case ExitExternalInterrupt:
		return "ExternalInterrupt"
	case ExitAPICAccess:
		return "APICAccess"
	case ExitIOInstruction:
		return "IOInstruction"
	case ExitHLT:
		return "HLT"
	case ExitOther:
		return "Other"
	default:
		return fmt.Sprintf("ExitReason(%d)", int(r))
	}
}

// ExitLabels returns the labels in ExitReason order, for breakdowns.
func ExitLabels() []string {
	ls := make([]string, NumExitReasons)
	for i := 0; i < NumExitReasons; i++ {
		ls[i] = ExitReason(i).String()
	}
	return ls
}
