package vmm

import (
	"fmt"

	"es2/internal/apic"
	"es2/internal/metrics"
	"es2/internal/sim"
	"es2/internal/trace"
)

// IRQHandler is a guest interrupt handler registered in the IDT: it
// returns the CPU cost of the handler body and a completion callback
// that runs in guest context just before the EOI.
type IRQHandler func(v *VCPU) (cost sim.Time, fn func())

// VectorClass categorizes guest vectors for redirection validity: only
// device interrupts may be redirected; per-vCPU vectors (timer,
// reschedule IPIs...) must reach exactly their destination or the guest
// would crash (Section V-C).
type VectorClass uint8

const (
	// ClassLocal marks per-vCPU vectors that must never be redirected.
	ClassLocal VectorClass = iota
	// ClassDevice marks external device vectors, eligible for
	// redirection under the lowest-priority delivery mode.
	ClassDevice
)

// TimerVector is the guest local-APIC timer vector (Linux's
// LOCAL_TIMER_VECTOR).
const TimerVector apic.Vector = 0xEF

// VM is one guest virtual machine.
type VM struct {
	Name  string
	Index int
	K     *KVM
	VCPUs []*VCPU

	idt     map[apic.Vector]IRQHandler
	vclass  map[apic.Vector]VectorClass
	nextVec apic.Vector

	// Exits tallies VM exits by reason across all vCPUs.
	Exits *metrics.Breakdown
	// DevIRQDelivered / DevIRQCompleted count device-vector interrupt
	// deliveries and EOIs.
	DevIRQDelivered metrics.Counter
	DevIRQCompleted metrics.Counter

	timerEvts []*sim.Handle
}

// NewVM creates a VM with nvcpus vCPUs pinned to cores[i]. len(cores)
// must equal nvcpus.
func (k *KVM) NewVM(name string, cores []int) *VM {
	vm := &VM{
		Name:    name,
		Index:   len(k.vms),
		K:       k,
		idt:     make(map[apic.Vector]IRQHandler),
		vclass:  make(map[apic.Vector]VectorClass),
		nextVec: 0x31, // Linux external vectors start above 0x30
		Exits:   metrics.NewBreakdown(ExitLabels()...),
	}
	for i, c := range cores {
		vm.VCPUs = append(vm.VCPUs, newVCPU(vm, i, c))
	}
	k.vms = append(k.vms, vm)
	return vm
}

// NumVCPUs returns the vCPU count.
func (vm *VM) NumVCPUs() int { return len(vm.VCPUs) }

// AllocVector allocates a fresh guest vector of the given class and
// registers its handler, mirroring Linux's strict vector allocation
// that lets ES2 distinguish device interrupts from local ones.
func (vm *VM) AllocVector(class VectorClass, h IRQHandler) apic.Vector {
	vec := vm.nextVec
	if vec >= TimerVector {
		panic("vmm: guest vector space exhausted")
	}
	vm.nextVec++
	vm.idt[vec] = h
	vm.vclass[vec] = class
	return vec
}

// RegisterIDT installs a handler for a specific vector (used for the
// timer vector and tests).
func (vm *VM) RegisterIDT(vec apic.Vector, class VectorClass, h IRQHandler) {
	vm.idt[vec] = h
	vm.vclass[vec] = class
}

// IsDeviceVector reports whether vec is a redirectable device vector.
func (vm *VM) IsDeviceVector(vec apic.Vector) bool {
	return vm.vclass[vec] == ClassDevice
}

// Start arms per-vCPU background machinery: guest timer ticks and the
// miscellaneous-exit background. Call once after guest setup.
func (vm *VM) Start() {
	if _, ok := vm.idt[TimerVector]; !ok {
		vm.RegisterIDT(TimerVector, ClassLocal, func(*VCPU) (sim.Time, func()) {
			return 1200 * sim.Nanosecond, nil
		})
	}
	period := vm.K.Cost.TimerTickPeriod
	for i, v := range vm.VCPUs {
		v.startBackgroundExits()
		if period > 0 {
			vm.startTimer(v, period, sim.Time(i)*period/sim.Time(len(vm.VCPUs)))
		}
	}
}

func (vm *VM) startTimer(v *VCPU, period, phase sim.Time) {
	var tick func()
	tick = func() {
		vm.K.DeliverLocal(v, TimerVector)
		vm.timerEvts[v.ID] = vm.K.Eng.After(period, tick)
	}
	if len(vm.timerEvts) < len(vm.VCPUs) {
		vm.timerEvts = make([]*sim.Handle, len(vm.VCPUs))
	}
	vm.timerEvts[v.ID] = vm.K.Eng.After(period+phase, tick)
}

func (vm *VM) recordExit(v *VCPU, r ExitReason) {
	vm.Exits.Inc(int(r))
	vm.K.Trace.Record(vm.K.Eng.Now(), trace.KindExit, vm.Index, v.ID, int64(r))
}

func (vm *VM) noteAccepted(v *VCPU, vec apic.Vector) {
	if vm.IsDeviceVector(vec) {
		vm.DevIRQDelivered.Inc()
	}
	vm.K.Trace.Record(vm.K.Eng.Now(), trace.KindIRQDeliver, vm.Index, v.ID, int64(vec))
	if vm.K.Path != nil {
		vm.K.Path.CloseSignal(vm.Index, uint8(vec), vm.K.Eng.Now())
	}
	if tl := vm.K.Timeline; tl.Active() {
		tl.Instant(v.track, fmt.Sprintf("irq%#x", vec), vm.K.Eng.Now())
	}
}

func (vm *VM) noteCompleted(v *VCPU, vec apic.Vector) {
	if vm.IsDeviceVector(vec) {
		vm.DevIRQCompleted.Inc()
	}
	vm.K.Trace.Record(vm.K.Eng.Now(), trace.KindIRQEOI, vm.Index, v.ID, int64(vec))
}

// TIG returns the VM-wide time-in-guest fraction.
func (vm *VM) TIG() float64 {
	var g, h sim.Time
	for _, v := range vm.VCPUs {
		g += v.GuestTime
		h += v.HostTime
	}
	if g+h == 0 {
		return 1
	}
	return float64(g) / float64(g+h)
}

// ResetStats zeroes exit and interrupt statistics (used at the end of
// the measurement warm-up).
func (vm *VM) ResetStats() {
	vm.Exits.Reset()
	vm.DevIRQDelivered.Reset()
	vm.DevIRQCompleted.Reset()
	for _, v := range vm.VCPUs {
		v.ResetStats()
	}
}

// String identifies the VM.
func (vm *VM) String() string { return fmt.Sprintf("VM(%s,%d vCPUs)", vm.Name, len(vm.VCPUs)) }
