package workloads

import (
	"es2/internal/causal"
	"es2/internal/guest"
	"es2/internal/metrics"
	"es2/internal/netsim"
	"es2/internal/sim"
)

// Memaslap reproduces the paper's Memcached load: a closed-loop
// generator keeping a fixed number of requests outstanding over a pool
// of pre-established connections, with a get/set ratio of 9:1
// (Section VI-E: 256 concurrent requests from 16 threads).
type Memaslap struct {
	peer  *Peer
	conns []int
	seq   int64
	count int64

	// Causal, when non-nil, opens a causal chain per request and
	// records it at the response's last segment.
	Causal *causal.Probe

	// Completed counts responses; Lat aggregates request latencies.
	Completed uint64
	Lat       *metrics.LogHistogram

	started map[int64]sim.Time

	// Request/response sizes (memaslap defaults: 64B keys, 1KB values).
	GetReqBytes, GetRespBytes int
	SetReqBytes, SetRespBytes int
	// GetEvery is the get:set cycle length (10 → 9 gets, 1 set).
	GetEvery int
}

// StartMemaslap opens conns pre-established connections and keeps
// concurrency requests outstanding.
func StartMemaslap(pe *Peer, ids *FlowIDs, conns, concurrency int) *Memaslap {
	m := &Memaslap{
		peer: pe, Lat: metrics.NewLogHistogram(), started: make(map[int64]sim.Time),
		GetReqBytes: 105, GetRespBytes: 1088,
		SetReqBytes: 1130, SetRespBytes: 71,
		GetEvery: 10,
	}
	for i := 0; i < conns; i++ {
		fid := ids.Next()
		m.conns = append(m.conns, fid)
		pe.Register(fid, m)
	}
	for i := 0; i < concurrency; i++ {
		m.sendNext(m.conns[i%len(m.conns)])
	}
	return m
}

func (m *Memaslap) sendNext(flow int) {
	m.count++
	isSet := m.count%int64(m.GetEvery) == 0
	reqBytes, respBytes := m.GetReqBytes, m.GetRespBytes
	if isSet {
		reqBytes, respBytes = m.SetReqBytes, m.SetRespBytes
	}
	id := m.seq
	m.seq++
	m.started[id] = m.peer.Eng.Now()
	m.peer.Send(&netsim.Packet{
		Bytes: reqBytes, Kind: guest.KindRequest, Flow: flow,
		Payload: &Req{ID: id, RespBytes: respBytes},
		Chain:   m.Causal.Start(flow, id, m.peer.Eng.Now()),
	})
}

// PeerReceive implements PeerFlow: a response completes one request and
// immediately issues the next on the same connection (closed loop).
func (m *Memaslap) PeerReceive(p *netsim.Packet) {
	if p.Kind != guest.KindResponse {
		return
	}
	r, _ := p.Payload.(*Resp)
	if r == nil || r.Seg != r.Segs-1 {
		return // wait for the last segment
	}
	if t0, ok := m.started[r.ReqID]; ok {
		delete(m.started, r.ReqID)
		// The response's wire leg back to the generator closes the chain.
		m.Causal.Complete(p.Chain, causal.StageWire, m.peer.Eng.Now())
		m.Lat.Observe(m.peer.Eng.Now() - t0)
		m.Completed++
		m.sendNext(p.Flow)
	}
}

// ApacheBench reproduces the paper's Apache load: N concurrent workers
// each looping connect → GET → full 8KB response → next (Section VI-E:
// 16 concurrent threads, 8KB static pages).
type ApacheBench struct {
	peer *Peer

	// Completed counts full responses; BytesReceived counts payload.
	Completed     uint64
	BytesReceived uint64
	ConnTime      *metrics.LogHistogram

	PageBytes   int
	ReqBytes    int
	SYNTimeout  sim.Time
	seq         int64
	workerState []*abWorker
}

type abWorker struct {
	ab        *ApacheBench
	flow      int
	connSeq   int64
	reqID     int64
	synSent   sim.Time
	gotBytes  int
	state     int // 0 idle, 1 awaiting SYNACK, 2 awaiting response
	retxTimer *sim.Handle
}

// StartApacheBench launches the load generator with the given
// concurrency.
func StartApacheBench(pe *Peer, ids *FlowIDs, concurrency, pageBytes int) *ApacheBench {
	ab := &ApacheBench{
		peer: pe, PageBytes: pageBytes, ReqBytes: 120,
		SYNTimeout: 1 * sim.Second, ConnTime: metrics.NewLogHistogram(),
	}
	for i := 0; i < concurrency; i++ {
		w := &abWorker{ab: ab, flow: ids.Next()}
		ab.workerState = append(ab.workerState, w)
		pe.Register(w.flow, w)
		w.connect()
	}
	return ab
}

func (w *abWorker) connect() {
	w.state = 1
	w.gotBytes = 0
	w.connSeq++
	w.synSent = w.ab.peer.Eng.Now()
	w.sendSYN()
}

func (w *abWorker) sendSYN() {
	seq := w.connSeq
	w.ab.peer.Port.Send(&netsim.Packet{Bytes: 74, Kind: guest.KindSYN, Flow: w.flow, Seq: seq})
	w.retxTimer = w.ab.peer.Eng.After(w.ab.SYNTimeout, func() {
		if w.state == 1 && w.connSeq == seq {
			w.sendSYN() // SYN lost or unanswered: retransmit
		}
	})
}

// PeerReceive implements PeerFlow.
func (w *abWorker) PeerReceive(p *netsim.Packet) {
	switch p.Kind {
	case guest.KindSYNACK:
		if w.state != 1 || p.Seq != w.connSeq {
			return
		}
		w.state = 2
		if w.retxTimer != nil {
			w.retxTimer.Cancel()
		}
		w.ab.ConnTime.Observe(w.ab.peer.Eng.Now() - w.synSent)
		w.reqID = w.ab.seq
		w.ab.seq++
		w.ab.peer.Send(&netsim.Packet{
			Bytes: w.ab.ReqBytes, Kind: guest.KindRequest, Flow: w.flow,
			Payload: &Req{ID: w.reqID, RespBytes: w.ab.PageBytes},
		})
	case guest.KindResponse:
		if w.state != 2 {
			return
		}
		r, _ := p.Payload.(*Resp)
		if r == nil || r.ReqID != w.reqID {
			return
		}
		w.gotBytes += p.Bytes
		w.ab.BytesReceived += uint64(p.Bytes)
		if r.Seg == r.Segs-1 {
			w.ab.Completed++
			w.connect() // next request, new connection (ab default)
		}
	}
}

// Httperf reproduces the Fig. 9 experiment: connections initiated
// open-loop at a fixed rate; the connection time (SYN to SYN/ACK,
// including any retransmission delays) is the metric. Only the
// connection train is open-loop — each established connection then
// runs one closed-loop request like the other clients here. Sustained
// open-loop request load (arrivals armed on the clock regardless of
// completions, bursty processes, day-shaped profiles) is OpenLoopPeer
// and OpenLoopClient in openloop.go, driven by internal/loadgen.
type Httperf struct {
	peer *Peer

	Rate       float64 // connections per second
	PageBytes  int
	SYNTimeout sim.Time

	// ConnTime aggregates per-connection establishment times.
	ConnTime *metrics.LogHistogram
	// Initiated and Established count connections.
	Initiated   uint64
	Established uint64
	Responses   uint64

	ids     *FlowIDs
	stopped bool
	seq     int64
}

type httperfConn struct {
	h       *Httperf
	flow    int
	synSent sim.Time
	state   int
	reqID   int64
}

// StartHttperf begins initiating connections at rate per second.
func StartHttperf(pe *Peer, ids *FlowIDs, rate float64, pageBytes int) *Httperf {
	h := &Httperf{
		peer: pe, Rate: rate, PageBytes: pageBytes,
		SYNTimeout: 1 * sim.Second, ConnTime: metrics.NewLogHistogram(), ids: ids,
	}
	interval := sim.Time(1e9 / rate)
	var tick func()
	tick = func() {
		if h.stopped {
			return
		}
		h.initiate()
		pe.Eng.After(interval, tick)
	}
	pe.Eng.After(interval, tick)
	return h
}

// Stop halts new connection initiation.
func (h *Httperf) Stop() { h.stopped = true }

func (h *Httperf) initiate() {
	c := &httperfConn{h: h, flow: h.ids.Next(), state: 1, synSent: h.peer.Eng.Now()}
	h.peer.Register(c.flow, c)
	h.Initiated++
	c.sendSYN()
}

func (c *httperfConn) sendSYN() {
	c.h.peer.Port.Send(&netsim.Packet{Bytes: 74, Kind: guest.KindSYN, Flow: c.flow, Seq: 1})
	c.h.peer.Eng.After(c.h.SYNTimeout, func() {
		if c.state == 1 {
			c.sendSYN()
		}
	})
}

// PeerReceive implements PeerFlow.
func (c *httperfConn) PeerReceive(p *netsim.Packet) {
	switch p.Kind {
	case guest.KindSYNACK:
		if c.state != 1 {
			return
		}
		c.state = 2
		c.h.Established++
		c.h.ConnTime.Observe(c.h.peer.Eng.Now() - c.synSent)
		c.reqID = c.h.seq
		c.h.seq++
		c.h.peer.Send(&netsim.Packet{
			Bytes: 110, Kind: guest.KindRequest, Flow: c.flow,
			Payload: &Req{ID: c.reqID, RespBytes: c.h.PageBytes},
		})
	case guest.KindResponse:
		if c.state != 2 {
			return
		}
		if r, _ := p.Payload.(*Resp); r != nil && r.ReqID == c.reqID && r.Seg == r.Segs-1 {
			c.state = 3
			c.h.Responses++
		}
	}
}
