package workloads

import (
	"es2/internal/causal"
	"es2/internal/guest"
	"es2/internal/metrics"
	"es2/internal/netsim"
	"es2/internal/sim"
	"es2/internal/vmm"
)

// RPCClient drives closed-loop request/response flows from inside a
// guest VM toward server VMs (which run the ordinary Server) reached
// across the wire — in the cluster runner, through the switch fabric.
// Each flow keeps exactly one request outstanding: the response's last
// segment triggers the next request. Unlike the external generators
// (Memaslap, ApacheBench), the client's side of the event path is
// itself virtualized, so ES2's savings apply on both ends of every
// RPC.
type RPCClient struct {
	Kern *guest.Kernel

	// Causal, when non-nil, opens a causal chain per request and
	// records it at completion (set before the first request fires).
	Causal *causal.Probe

	// Completed and Sent count requests across all flows;
	// BytesReceived counts response payload.
	Completed     uint64
	Sent          uint64
	BytesReceived uint64

	// hists receive every completed request's latency (the per-host
	// and cluster-wide spectra in the cluster runner).
	hists []*metrics.LogHistogram

	flows []*RPCFlow
}

// RPCFlow is one closed-loop connection. It implements
// guest.FlowHandler for the response direction and keeps per-flow
// latency scalars (count/sum/max), cheap enough to hold for thousands
// of flows where a full histogram per flow would not be.
type RPCFlow struct {
	c  *RPCClient
	ID int
	v  *vmm.VCPU

	reqBytes  int
	respBytes int

	reqID   int64
	started sim.Time
	chain   *causal.Chain

	// Completed counts this flow's finished requests; LatSum and
	// LatMax summarize its latency over the measurement window.
	Completed uint64
	LatSum    sim.Time
	LatMax    sim.Time
}

// NewRPCClient creates a client on kern whose completions observe into
// every given histogram.
func NewRPCClient(kern *guest.Kernel, hists ...*metrics.LogHistogram) *RPCClient {
	return &RPCClient{Kern: kern, hists: hists}
}

// AddFlow registers one closed-loop flow issuing reqBytes requests and
// expecting respBytes responses, pinned to the vCPU flows hash to
// (flow id modulo vCPU count, mirroring how connections hash to
// processes). The first request is issued `start` after creation;
// staggering flow starts avoids a synthetic thundering herd at t=0.
func (c *RPCClient) AddFlow(id, reqBytes, respBytes int, start sim.Time) *RPCFlow {
	vcpus := c.Kern.VM.VCPUs
	f := &RPCFlow{
		c: c, ID: id, v: vcpus[id%len(vcpus)],
		reqBytes: reqBytes, respBytes: respBytes,
	}
	c.Kern.RegisterFlow(id, f)
	c.flows = append(c.flows, f)
	eng := c.Kern.Engine()
	eng.After(start+1, f.sendNext)
	return f
}

// Flows returns the registered flows in creation order.
func (c *RPCClient) Flows() []*RPCFlow { return c.flows }

// ResetStats zeroes the client-side counters and per-flow scalars
// (called at warmup end; the histograms are reset by their owner).
func (c *RPCClient) ResetStats() {
	c.Completed, c.Sent, c.BytesReceived = 0, 0, 0
	for _, f := range c.flows {
		f.Completed, f.LatSum, f.LatMax = 0, 0, 0
	}
}

// sendNext issues the flow's next request: the latency clock starts
// here (request initiation), so the measured RPC time includes the
// client's own stack and scheduling delays — the end-to-end view a
// user of the cluster would see.
func (f *RPCFlow) sendNext() {
	kern := f.c.Kern
	f.reqID++
	id := f.reqID
	f.started = kern.Engine().Now()
	f.chain = f.c.Causal.Start(f.ID, id, f.started)
	cost := kern.JitterCost(kern.Costs.TXCost(f.reqBytes, true))
	f.v.EnqueueTask(vmm.NewTask("rpc-req", vmm.PrioTask, cost, func() {
		f.transmit(id)
	}))
}

// transmit posts the request, resuming via WaitTX on a full ring.
func (f *RPCFlow) transmit(id int64) {
	pkt := &netsim.Packet{
		Bytes: f.reqBytes, Kind: guest.KindRequest, Flow: f.ID,
		Payload: &Req{ID: id, RespBytes: f.respBytes},
		Chain:   f.chain,
	}
	if !f.c.Kern.Dev.Transmit(f.v, pkt) {
		f.c.Kern.Dev.WaitTXFlow(f.ID, func() { f.transmit(id) })
		return
	}
	f.c.Sent++
}

// RXCost implements guest.FlowHandler.
func (f *RPCFlow) RXCost(p *netsim.Packet) sim.Time {
	return f.c.Kern.Costs.RXCost(p.Bytes)
}

// HandleRX implements guest.FlowHandler: the response's last segment
// completes the request and immediately issues the next (closed loop).
func (f *RPCFlow) HandleRX(p *netsim.Packet, v *vmm.VCPU) {
	if p.Kind != guest.KindResponse {
		return
	}
	f.c.BytesReceived += uint64(p.Bytes)
	r, _ := p.Payload.(*Resp)
	if r == nil || r.ReqID != f.reqID || r.Seg != r.Segs-1 {
		return
	}
	now := f.c.Kern.Engine().Now()
	// The response rode the request's chain back; the final guest-rx
	// segment closes at the same instant the latency clock stops.
	f.c.Causal.Complete(p.Chain, causal.StageGuestRX, now)
	d := now - f.started
	f.Completed++
	f.LatSum += d
	if d > f.LatMax {
		f.LatMax = d
	}
	f.c.Completed++
	for _, h := range f.c.hists {
		h.Observe(d)
	}
	f.sendNext()
}
