package workloads

import (
	"es2/internal/causal"
	"es2/internal/guest"
	"es2/internal/metrics"
	"es2/internal/netsim"
	"es2/internal/sim"
	"es2/internal/vmm"
)

// RPCClient drives closed-loop request/response flows from inside a
// guest VM toward server VMs (which run the ordinary Server) reached
// across the wire — in the cluster runner, through the switch fabric.
// Each flow keeps exactly one request outstanding: the response's last
// segment triggers the next request. Unlike the external generators
// (Memaslap, ApacheBench), the client's side of the event path is
// itself virtualized, so ES2's savings apply on both ends of every
// RPC.
type RPCClient struct {
	Kern *guest.Kernel

	// Causal, when non-nil, opens a causal chain per request and
	// records it at completion (set before the first request fires).
	Causal *causal.Probe

	// Timeout arms a per-request deadline: an expired request is
	// retried with exponential backoff and deterministic jitter. Zero
	// (the default) keeps the legacy closed loop, which wedges forever
	// if the server dies — only chaos-aware runs should pay the
	// deadline bookkeeping.
	Timeout sim.Time
	// Backoff is the first retry delay (default Timeout/4) and doubles
	// per consecutive timeout up to BackoffMax (default 8x Backoff);
	// each delay is jittered ±50% so retrying flows desynchronize.
	Backoff    sim.Time
	BackoffMax sim.Time
	// FailoverAfter is the consecutive-timeout threshold at which the
	// flow asks Failover to re-bind it to a surviving server; the
	// counter restarts after a successful migration. Zero disables.
	FailoverAfter int
	// Failover, when non-nil, re-routes the flow to another server and
	// reports whether it did (the cluster's chaos controller owns the
	// flow table).
	Failover func(flowID int) bool
	// NotifyComplete, when non-nil, observes every completed request
	// (the chaos controller's availability and MTTR bookkeeping).
	NotifyComplete func(at sim.Time)

	// Completed and Sent count requests across all flows;
	// BytesReceived counts response payload.
	Completed     uint64
	Sent          uint64
	BytesReceived uint64
	// Timeouts counts expired request deadlines, Retries re-issued
	// requests, and Migrated flows failed over to another server.
	Timeouts uint64
	Retries  uint64
	Migrated uint64

	// hists receive every completed request's latency (the per-host
	// and cluster-wide spectra in the cluster runner).
	hists []*metrics.LogHistogram

	flows []*RPCFlow
	rng   *sim.Rand
}

// minRetryBackoff floors the retry delay so a degenerate spec (a
// timeout shorter than any achievable RTT) burns bounded events, not
// an unbounded same-instant retry storm.
const minRetryBackoff = sim.Microsecond

// RPCFlow is one closed-loop connection. It implements
// guest.FlowHandler for the response direction and keeps per-flow
// latency scalars (count/sum/max), cheap enough to hold for thousands
// of flows where a full histogram per flow would not be.
type RPCFlow struct {
	c  *RPCClient
	ID int
	v  *vmm.VCPU

	reqBytes  int
	respBytes int

	reqID   int64
	started sim.Time
	chain   *causal.Chain

	// Retry machinery (active only with a client Timeout).
	// attemptBase is the first attempt id of the in-flight logical
	// request: a response to ANY attempt in [attemptBase, reqID]
	// completes it. Accepting a late original response after a retry
	// went out is what keeps a timeout shorter than a transient RTT
	// from livelocking the flow (every attempt's response arriving
	// "stale" forever — retry-storm congestion collapse).
	attemptBase int64
	deadline    *sim.Handle
	attempts    int
	backoff     sim.Time

	// Completed counts this flow's finished requests; LatSum and
	// LatMax summarize its latency over the measurement window.
	Completed uint64
	LatSum    sim.Time
	LatMax    sim.Time
	// Timeouts and Retries count this flow's expired deadlines and
	// re-issued requests; Migrated marks a flow re-bound to a
	// surviving server during the window.
	Timeouts uint64
	Retries  uint64
	Migrated bool
}

// NewRPCClient creates a client on kern whose completions observe into
// every given histogram. The retry jitter generator forks off the
// engine's RNG here, during deterministic build.
func NewRPCClient(kern *guest.Kernel, hists ...*metrics.LogHistogram) *RPCClient {
	return &RPCClient{Kern: kern, hists: hists, rng: kern.Engine().Rand().Fork()}
}

// AddFlow registers one closed-loop flow issuing reqBytes requests and
// expecting respBytes responses, pinned to the vCPU flows hash to
// (flow id modulo vCPU count, mirroring how connections hash to
// processes). The first request is issued `start` after creation;
// staggering flow starts avoids a synthetic thundering herd at t=0.
func (c *RPCClient) AddFlow(id, reqBytes, respBytes int, start sim.Time) *RPCFlow {
	vcpus := c.Kern.VM.VCPUs
	f := &RPCFlow{
		c: c, ID: id, v: vcpus[id%len(vcpus)],
		reqBytes: reqBytes, respBytes: respBytes,
	}
	c.Kern.RegisterFlow(id, f)
	c.flows = append(c.flows, f)
	eng := c.Kern.Engine()
	eng.After(start+1, f.sendNext)
	return f
}

// Flows returns the registered flows in creation order.
func (c *RPCClient) Flows() []*RPCFlow { return c.flows }

// ResetStats zeroes the client-side counters and per-flow scalars
// (called at warmup end; the histograms are reset by their owner).
func (c *RPCClient) ResetStats() {
	c.Completed, c.Sent, c.BytesReceived = 0, 0, 0
	c.Timeouts, c.Retries, c.Migrated = 0, 0, 0
	for _, f := range c.flows {
		f.Completed, f.LatSum, f.LatMax = 0, 0, 0
		f.Timeouts, f.Retries, f.Migrated = 0, 0, false
	}
}

// sendNext starts the flow's next request: the latency clock starts
// here (request initiation), so the measured RPC time includes the
// client's own stack and scheduling delays — and, across retries, the
// full outage-recovery time: the end-to-end view a user of the
// cluster would see.
func (f *RPCFlow) sendNext() {
	f.started = f.c.Kern.Engine().Now()
	f.attempts = 0
	f.backoff = 0
	f.attemptBase = f.reqID + 1
	f.issue()
}

// issue sends one attempt of the current request. The attempt's
// deadline is armed when the request actually reaches the wire
// (transmit), not here: like a real RTO, the timer starts at send, so
// time spent waiting in the vCPU's task queue under load cannot burn
// the timeout and spawn retries of requests that never left the host —
// the self-amplifying half of a retry storm. Each attempt opens a
// fresh causal chain (a retried attempt's stages telescope from its
// own issue instant, keeping stage sums exact); chains of attempts
// that never complete are simply never recorded.
func (f *RPCFlow) issue() {
	kern := f.c.Kern
	f.reqID++
	id := f.reqID
	f.chain = f.c.Causal.Start(f.ID, id, kern.Engine().Now())
	cost := kern.JitterCost(kern.Costs.TXCost(f.reqBytes, true))
	f.v.EnqueueTask(vmm.NewTask("rpc-req", vmm.PrioTask, cost, func() {
		f.transmit(id)
	}))
}

// expired fires when attempt id's deadline lapses without a response:
// count the timeout, consider failing the flow over, and schedule a
// retry after the (jittered, doubling) backoff.
func (f *RPCFlow) expired(id int64) {
	if id != f.reqID {
		return // stale deadline for a completed attempt
	}
	f.deadline = nil
	f.Timeouts++
	f.c.Timeouts++
	f.attempts++
	if f.c.FailoverAfter > 0 && f.attempts >= f.c.FailoverAfter &&
		f.c.Failover != nil && f.c.Failover(f.ID) {
		if !f.Migrated {
			f.Migrated = true
			f.c.Migrated++
		}
		f.attempts = 0
	}
	if f.backoff <= 0 {
		f.backoff = f.c.Backoff
		if f.backoff <= 0 {
			f.backoff = f.c.Timeout / 4
		}
	} else {
		f.backoff *= 2
	}
	if max := f.c.BackoffMax; max > 0 && f.backoff > max {
		f.backoff = max
	}
	if f.backoff < minRetryBackoff {
		f.backoff = minRetryBackoff
	}
	delay := f.c.rng.Jitter(f.backoff, 0.5)
	f.c.Kern.Engine().After(delay, func() {
		if id != f.reqID {
			return // a late response won the race against the retry
		}
		f.Retries++
		f.c.Retries++
		f.issue()
	})
}

// transmit posts the request, resuming via WaitTX on a full ring, and
// arms the attempt's deadline once the send succeeds. A superseded
// attempt (a newer one was issued while this task waited) is dropped
// rather than transmitted: sending it would only feed the server
// already-abandoned work.
func (f *RPCFlow) transmit(id int64) {
	if id != f.reqID {
		return
	}
	pkt := &netsim.Packet{
		Bytes: f.reqBytes, Kind: guest.KindRequest, Flow: f.ID,
		Payload: &Req{ID: id, RespBytes: f.respBytes},
		Chain:   f.chain,
	}
	if !f.c.Kern.Dev.Transmit(f.v, pkt) {
		f.c.Kern.Dev.WaitTXFlow(f.ID, func() { f.transmit(id) })
		return
	}
	f.c.Sent++
	if f.c.Timeout > 0 {
		f.deadline = f.c.Kern.Engine().After(f.c.Timeout, func() { f.expired(id) })
	}
}

// RXCost implements guest.FlowHandler.
func (f *RPCFlow) RXCost(p *netsim.Packet) sim.Time {
	return f.c.Kern.Costs.RXCost(p.Bytes)
}

// HandleRX implements guest.FlowHandler: the response's last segment
// completes the request and immediately issues the next (closed loop).
func (f *RPCFlow) HandleRX(p *netsim.Packet, v *vmm.VCPU) {
	if p.Kind != guest.KindResponse {
		return
	}
	f.c.BytesReceived += uint64(p.Bytes)
	r, _ := p.Payload.(*Resp)
	if r == nil || r.ReqID < f.attemptBase || r.ReqID > f.reqID || r.Seg != r.Segs-1 {
		return
	}
	if f.deadline != nil {
		f.deadline.Cancel()
		f.deadline = nil
	}
	now := f.c.Kern.Engine().Now()
	// The response rode the request's chain back; the final guest-rx
	// segment closes at the same instant the latency clock stops.
	f.c.Causal.Complete(p.Chain, causal.StageGuestRX, now)
	d := now - f.started
	f.Completed++
	f.LatSum += d
	if d > f.LatMax {
		f.LatMax = d
	}
	f.c.Completed++
	for _, h := range f.c.hists {
		h.Observe(d)
	}
	if f.c.NotifyComplete != nil {
		f.c.NotifyComplete(now)
	}
	f.sendNext()
}
