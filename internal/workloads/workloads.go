// Package workloads implements the benchmark applications of the
// paper's evaluation on both sides of the wire: the guest-side
// processes (netperf send loops, Memcached/Apache-style servers) and
// the external traffic generator/terminator that the second testbed
// server ran (netperf peers, ping, memaslap, ApacheBench, Httperf).
//
// The external peer is not under test: it models an unloaded machine
// whose per-action latency is a small constant, while all guest-side
// work is charged to vCPUs through the vmm task model.
package workloads

import (
	"es2/internal/netsim"
	"es2/internal/sim"
)

// Peer is the external server: the far endpoint of the testbed link.
// It dispatches incoming packets to per-flow protocol engines.
type Peer struct {
	Eng *sim.Engine
	// Port sends toward the guest host.
	Port *netsim.Port
	// Delay is the peer's per-action processing latency (stack +
	// application on an unloaded machine).
	Delay sim.Time

	flows map[int]PeerFlow

	// RetransmitRTO, when positive, enables go-back-N loss recovery in
	// peer-side TCP senders created afterwards (see TCPSource). Zero
	// models the lossless testbed.
	RetransmitRTO sim.Time
	// Retransmits counts retransmission timeouts across peer senders.
	Retransmits uint64

	// Unclaimed counts packets for unknown flows.
	Unclaimed uint64
}

// PeerFlow is the peer-side protocol engine of one flow.
type PeerFlow interface {
	PeerReceive(p *netsim.Packet)
}

// NewPeer creates the external endpoint. Attach it to the link's far
// side and set Port to the direction toward the host under test.
func NewPeer(eng *sim.Engine, port *netsim.Port, delay sim.Time) *Peer {
	return &Peer{Eng: eng, Port: port, Delay: delay, flows: make(map[int]PeerFlow)}
}

// Register binds a flow id to its peer-side engine.
func (pe *Peer) Register(id int, f PeerFlow) { pe.flows[id] = f }

// Receive implements netsim.Endpoint.
func (pe *Peer) Receive(p *netsim.Packet) {
	if f, ok := pe.flows[p.Flow]; ok {
		f.PeerReceive(p)
		return
	}
	pe.Unclaimed++
}

// Send transmits a packet toward the guest after the peer's processing
// delay.
func (pe *Peer) Send(p *netsim.Packet) {
	pe.Eng.After(pe.Delay, func() { pe.Port.Send(p) })
}

// FlowIDs hands out unique flow identifiers within a scenario.
type FlowIDs struct{ next int }

// Next returns a fresh flow id.
func (f *FlowIDs) Next() int {
	f.next++
	return f.next
}
