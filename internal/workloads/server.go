package workloads

import (
	"es2/internal/causal"
	"es2/internal/guest"
	"es2/internal/netsim"
	"es2/internal/sim"
	"es2/internal/vmm"
)

// Req is the application payload of a KindRequest packet.
type Req struct {
	ID int64
	// RespBytes is the size of the response the server must produce.
	RespBytes int
	// Service overrides the server's default per-request service cost
	// when non-zero.
	Service sim.Time
}

// Resp is the application payload of a KindResponse packet.
type Resp struct {
	ReqID int64
	Seg   int
	Segs  int
}

// ServerConfig parameterizes the guest request/response server that
// stands in for Memcached, Apache, and the Httperf target.
type ServerConfig struct {
	// ServiceCost is the default application CPU per request.
	ServiceCost sim.Time
	// SegBytes is the MSS used to segment responses.
	SegBytes int
	// SYNCost is the extra softirq CPU to establish a connection.
	SYNCost sim.Time
	// Backlog bounds connections accepted by the stack but not yet
	// picked up by a worker (the listen(2) backlog). A SYN arriving
	// with the backlog full is dropped — the client's retransmission
	// timer turns such drops into the connection-time blow-up of
	// Fig. 9 ("suspending event overflow").
	Backlog int
}

// DefaultServerConfig returns sane defaults (MSS 1448, backlog 48).
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		ServiceCost: 8 * sim.Microsecond,
		SegBytes:    1448,
		SYNCost:     1500 * sim.Nanosecond,
		Backlog:     48,
	}
}

// Server is a guest application serving request/response traffic with
// one worker process per vCPU. Connections hash to workers by flow id,
// as a multi-threaded server with per-CPU workers would behave.
//
// It installs itself as the kernel's default flow handler: SYNs are
// answered from softirq context (as the TCP stack does) and requests
// are queued to process-context workers.
type Server struct {
	Kern *guest.Kernel
	Cfg  ServerConfig

	workers []*worker
	pending map[int]bool // accepted-not-yet-served connections, by flow

	// Conns counts accepted connections; Served counts responses sent;
	// SynAcks counts handshakes answered; SYNDrops counts SYNs dropped
	// at a full backlog.
	Conns    uint64
	Served   uint64
	SynAcks  uint64
	SYNDrops uint64
}

// StartServer installs the server on the guest.
func StartServer(kern *guest.Kernel, cfg ServerConfig) *Server {
	if cfg.SegBytes <= 0 {
		cfg.SegBytes = 1448
	}
	if cfg.Backlog <= 0 {
		cfg.Backlog = 48
	}
	s := &Server{Kern: kern, Cfg: cfg, pending: make(map[int]bool)}
	for _, v := range kern.VM.VCPUs {
		s.workers = append(s.workers, &worker{srv: s, v: v})
	}
	kern.SetDefaultHandler(s)
	return s
}

// RXCost implements guest.FlowHandler.
func (s *Server) RXCost(p *netsim.Packet) sim.Time {
	switch p.Kind {
	case guest.KindSYN:
		return s.Kern.Costs.RXBase + s.Cfg.SYNCost + s.Kern.Costs.AckTX
	case guest.KindTCPAck:
		return s.Kern.Costs.AckRX
	default:
		return s.Kern.Costs.RXCost(p.Bytes)
	}
}

// HandleRX implements guest.FlowHandler.
func (s *Server) HandleRX(p *netsim.Packet, v *vmm.VCPU) {
	switch p.Kind {
	case guest.KindSYN:
		// SYN handled in softirq. A fresh connection needs a backlog
		// slot; with the backlog full the SYN is silently dropped and
		// the client's retransmission timer governs recovery. A
		// retransmitted SYN for a still-pending connection just gets
		// its SYN/ACK again.
		if !s.pending[p.Flow] {
			if len(s.pending) >= s.Cfg.Backlog {
				s.SYNDrops++
				return
			}
			s.pending[p.Flow] = true
			s.Conns++
		}
		ack := &netsim.Packet{Bytes: 66, Kind: guest.KindSYNACK, Flow: p.Flow, Seq: p.Seq}
		if s.Kern.Dev.Transmit(v, ack) {
			s.SynAcks++
		}
	case guest.KindRequest:
		w := s.workers[p.Flow%len(s.workers)]
		w.enqueue(p)
	}
}

// QueuedRequests reports requests waiting in worker queues.
func (s *Server) QueuedRequests() int {
	n := 0
	for _, w := range s.workers {
		n += len(w.q)
		if w.busy {
			n++
		}
	}
	return n
}

// worker is one per-vCPU application process.
type worker struct {
	srv  *Server
	v    *vmm.VCPU
	q    []*netsim.Packet
	busy bool
}

func (w *worker) enqueue(p *netsim.Packet) {
	w.q = append(w.q, p)
	if !w.busy {
		w.busy = true
		w.next()
	}
}

func (w *worker) next() {
	if len(w.q) == 0 {
		w.busy = false
		return
	}
	p := w.q[0]
	copy(w.q, w.q[1:])
	w.q[len(w.q)-1] = nil
	w.q = w.q[:len(w.q)-1]

	// The worker accepting the request frees the connection's backlog
	// slot (accept(2) semantics).
	delete(w.srv.pending, p.Flow)

	req, _ := p.Payload.(*Req)
	if req == nil {
		req = &Req{RespBytes: 128}
	}
	service := w.srv.Cfg.ServiceCost
	if req.Service > 0 {
		service = req.Service
	}
	segBytes := w.srv.Cfg.SegBytes
	segs := (req.RespBytes + segBytes - 1) / segBytes
	if segs == 0 {
		segs = 1
	}
	// Application service plus the stack cost of producing the
	// response segments, charged as one process-context task.
	cost := service
	rem := req.RespBytes
	for i := 0; i < segs; i++ {
		n := segBytes
		if rem < n {
			n = rem
		}
		cost += w.srv.Kern.Costs.TXCost(n, true)
		rem -= n
	}
	w.v.EnqueueTask(vmm.NewTask("serve", vmm.PrioTask, cost, func() {
		w.sendResponse(p.Flow, p.Chain, req, segs, 0)
	}))
}

// sendResponse transmits the response segments, resuming via WaitTX on
// a full ring. The request's causal chain (if any) rides the last
// segment back — the one whose arrival completes the request.
func (w *worker) sendResponse(flow int, chain *causal.Chain, req *Req, segs, from int) {
	segBytes := w.srv.Cfg.SegBytes
	for i := from; i < segs; i++ {
		n := req.RespBytes - i*segBytes
		if n > segBytes {
			n = segBytes
		}
		if n <= 0 {
			n = 1
		}
		pkt := &netsim.Packet{
			Bytes: n, Kind: guest.KindResponse, Flow: flow, Seq: int64(i),
			Payload: &Resp{ReqID: req.ID, Seg: i, Segs: segs},
		}
		if i == segs-1 {
			pkt.Chain = chain
		}
		if !w.srv.Kern.Dev.Transmit(w.v, pkt) {
			i := i
			// Park on the pair the flow actually hashes to: the pair-0
			// convenience would never wake on a multi-queue device.
			w.srv.Kern.Dev.WaitTXFlow(flow, func() { w.sendResponse(flow, chain, req, segs, i) })
			return
		}
	}
	w.srv.Served++
	w.next()
}
