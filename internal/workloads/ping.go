package workloads

import (
	"es2/internal/causal"
	"es2/internal/guest"
	"es2/internal/metrics"
	"es2/internal/netsim"
	"es2/internal/sim"
)

// Pinger reproduces the Fig. 7 experiment: the external server pings
// the tested VM at a fixed interval and records each round-trip time.
type Pinger struct {
	peer     *Peer
	flowID   int
	interval sim.Time
	bytes    int
	stopped  bool

	// Causal, when non-nil, opens a causal chain per probe and records
	// it at the reply's arrival.
	Causal *causal.Probe

	nextSeq int64
	sentAt  map[int64]sim.Time

	// RTTs is the time series of round-trip times, in milliseconds
	// (one point per reply, timestamped at the reply's arrival).
	RTTs metrics.Series
	// Hist aggregates the same RTTs for percentile reporting.
	Hist *metrics.LogHistogram
	// Lost counts echo requests with no reply by the end of the run
	// (still outstanding when inspected).
	Sent uint64
}

// StartPing installs a responder in the guest and begins probing every
// interval. ICMP payload is 56+8 bytes in a 98-byte frame, as ping
// defaults.
func StartPing(kern *guest.Kernel, pe *Peer, flowID int, interval sim.Time) *Pinger {
	guest.NewPingResponder(kern, flowID)
	p := &Pinger{
		peer: pe, flowID: flowID, interval: interval, bytes: 98,
		sentAt: make(map[int64]sim.Time),
		Hist:   metrics.NewLogHistogram(),
	}
	pe.Register(flowID, p)
	p.tick()
	return p
}

func (p *Pinger) tick() {
	if p.stopped {
		return
	}
	seq := p.nextSeq
	p.nextSeq++
	p.sentAt[seq] = p.peer.Eng.Now()
	p.Sent++
	pkt := &netsim.Packet{Bytes: p.bytes, Kind: guest.KindEcho, Flow: p.flowID, Seq: seq}
	pkt.Chain = p.Causal.Start(p.flowID, seq, p.peer.Eng.Now())
	p.peer.Port.Send(pkt)
	p.peer.Eng.After(p.interval, func() { p.tick() })
}

// Stop halts probing.
func (p *Pinger) Stop() { p.stopped = true }

// PeerReceive implements PeerFlow: match the reply and record the RTT.
func (p *Pinger) PeerReceive(pkt *netsim.Packet) {
	if pkt.Kind != guest.KindEchoReply {
		return
	}
	t0, ok := p.sentAt[pkt.Seq]
	if !ok {
		return
	}
	delete(p.sentAt, pkt.Seq)
	// The reply's wire leg back to the prober closes the chain.
	p.Causal.Complete(pkt.Chain, causal.StageWire, p.peer.Eng.Now())
	rtt := p.peer.Eng.Now() - t0
	p.RTTs.Append(p.peer.Eng.Now(), rtt.Millis())
	p.Hist.Observe(rtt)
}

// Outstanding reports unanswered probes.
func (p *Pinger) Outstanding() int { return len(p.sentAt) }
