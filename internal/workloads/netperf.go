package workloads

import (
	"es2/internal/guest"
	"es2/internal/netsim"
	"es2/internal/sim"
	"es2/internal/vmm"
)

// Netperf reproduces the netperf micro-benchmark: TCP_STREAM and
// UDP_STREAM in both directions with configurable message sizes.

// NetperfSendTCP runs a netperf TCP_STREAM sender as a guest process on
// vCPU v, streaming toward the external peer. It returns the guest flow
// (for progress stats) and the peer sink (for goodput).
func NetperfSendTCP(kern *guest.Kernel, v *vmm.VCPU, pe *Peer, flowID, msgBytes, window int) (*guest.TCPSender, *TCPSink) {
	f := guest.NewTCPSender(kern, flowID, msgBytes, window)
	sink := &TCPSink{peer: pe, flowID: flowID, ackEvery: 4}
	pe.Register(flowID, sink)

	dev := kern.Dev
	prep := kern.Costs.TXCost(msgBytes, true)
	var pending *netsim.Packet
	var loop func()
	loop = func() {
		if pending != nil {
			if !dev.Transmit(v, pending) {
				dev.WaitTX(loop)
				return
			}
			pending = nil
		}
		if !f.CanSend() {
			f.WaitWindow(loop) // netperf blocks in send(): window closed
			return
		}
		if dev.TX.Full() {
			dev.WaitTX(loop)
			return
		}
		v.EnqueueTask(vmm.NewTask("netperf-tcp-tx", vmm.PrioTask, kern.JitterCost(prep), func() {
			seg := f.NextSegment()
			if !dev.Transmit(v, seg) {
				pending = seg
				dev.WaitTX(loop)
				return
			}
			loop()
		}))
	}
	loop()
	return f, sink
}

// NetperfSendUDP runs a netperf UDP_STREAM sender as a guest process on
// vCPU v. UDP never blocks: a full ring drops locally, as a full qdisc
// would.
func NetperfSendUDP(kern *guest.Kernel, v *vmm.VCPU, pe *Peer, flowID, msgBytes int) (*guest.UDPSender, *UDPSink) {
	f := guest.NewUDPSender(kern, flowID, msgBytes)
	sink := &UDPSink{}
	pe.Register(flowID, sink)

	dev := kern.Dev
	prep := kern.Costs.TXCost(msgBytes, false)
	var loop func()
	loop = func() {
		v.EnqueueTask(vmm.NewTask("netperf-udp-tx", vmm.PrioTask, kern.JitterCost(prep), func() {
			dev.TransmitOrDrop(v, f.NextPacket())
			loop()
		}))
	}
	loop()
	return f, sink
}

// NetperfSendUDPPaced is NetperfSendUDP at a fixed offered rate instead
// of CPU speed — the "low I/O load" regime where the paper argues
// dedicated-core polling wastes cycles and notification mode is
// preferable.
func NetperfSendUDPPaced(kern *guest.Kernel, v *vmm.VCPU, pe *Peer, flowID, msgBytes int, pps float64) (*guest.UDPSender, *UDPSink) {
	f := guest.NewUDPSender(kern, flowID, msgBytes)
	sink := &UDPSink{}
	pe.Register(flowID, sink)

	dev := kern.Dev
	prep := kern.Costs.TXCost(msgBytes, false)
	interval := sim.Time(1e9 / pps)
	eng := kern.Engine()
	var tick func()
	tick = func() {
		v.EnqueueTask(vmm.NewTask("netperf-udp-paced", vmm.PrioTask, kern.JitterCost(prep), func() {
			dev.TransmitOrDrop(v, f.NextPacket())
		}))
		eng.After(interval, tick)
	}
	eng.After(interval, tick)
	return f, sink
}

// TCPSink is the peer-side terminator of a guest-to-peer TCP stream: it
// counts goodput and generates one cumulative stretch ACK per ackEvery
// segments (a GRO-enabled receiver NIC acknowledges coalesced chunks).
type TCPSink struct {
	peer     *Peer
	flowID   int
	ackEvery int

	pending int
	// expected is the next in-order sequence number; out-of-order
	// segments (after a wire loss) are not buffered and draw an
	// immediate duplicate cumulative ACK so the sender learns where the
	// stream stands.
	expected int64

	// Bytes and Segs are receiver-side goodput (what netperf reports).
	Bytes uint64
	Segs  uint64
}

// PeerReceive implements PeerFlow.
func (s *TCPSink) PeerReceive(p *netsim.Packet) {
	if p.Kind != guest.KindTCPData {
		return
	}
	if p.Seq != s.expected {
		s.peer.Send(&netsim.Packet{Bytes: 66, Kind: guest.KindTCPAck, Flow: s.flowID, Seq: s.expected})
		return
	}
	s.expected++
	s.Bytes += uint64(p.Bytes)
	s.Segs++
	s.pending++
	if s.pending >= s.ackEvery {
		s.pending = 0
		s.peer.Send(&netsim.Packet{Bytes: 66, Kind: guest.KindTCPAck, Flow: s.flowID, Seq: s.expected})
	}
}

// UDPSink counts a guest-to-peer UDP stream at the receiver.
type UDPSink struct {
	Bytes uint64
	Pkts  uint64
}

// PeerReceive implements PeerFlow.
func (s *UDPSink) PeerReceive(p *netsim.Packet) {
	if p.Kind != guest.KindUDP {
		return
	}
	s.Bytes += uint64(p.Bytes)
	s.Pkts++
}

// NetperfRecvTCP runs a netperf TCP_STREAM receive test: the peer
// streams toward the guest with the given in-flight window, clocked by
// the guest's delayed ACKs. It returns the guest receiver (goodput is
// counted there, as netperf does).
func NetperfRecvTCP(kern *guest.Kernel, pe *Peer, flowID, msgBytes, window int) (*guest.TCPReceiver, *TCPSource) {
	r := guest.NewTCPReceiver(kern, flowID)
	src := &TCPSource{peer: pe, flowID: flowID, segBytes: msgBytes, window: window}
	src.rto = pe.RetransmitRTO
	src.curRTO = src.rto
	pe.Register(flowID, src)
	src.pump()
	return r, src
}

// TCPSource is the peer-side sender of a peer-to-guest TCP stream.
type TCPSource struct {
	peer     *Peer
	flowID   int
	segBytes int
	window   int

	nextSeq  int64
	acked    int64
	inFlight int

	// rto/curRTO/rtoEvt implement go-back-N loss recovery, mirroring
	// the guest-side TCPSender (zero rto disables it).
	rto    sim.Time
	curRTO sim.Time
	rtoEvt *sim.Handle

	// SentSegs counts transmitted segments; Retransmits counts
	// retransmission timeouts.
	SentSegs    uint64
	Retransmits uint64
}

// pump sends while the window admits.
func (s *TCPSource) pump() {
	for s.inFlight < s.window {
		s.peer.Send(&netsim.Packet{Bytes: s.segBytes, Kind: guest.KindTCPData, Flow: s.flowID, Seq: s.nextSeq})
		s.nextSeq++
		s.inFlight++
		s.SentSegs++
	}
	s.armRTO()
}

func (s *TCPSource) armRTO() {
	if s.rto <= 0 || s.rtoEvt != nil || s.inFlight == 0 {
		return
	}
	s.rtoEvt = s.peer.Eng.After(s.curRTO, s.onRTO)
}

// onRTO is the go-back-N retransmission timeout: rewind to the last
// cumulative ACK and back off exponentially (capped at 8x base).
func (s *TCPSource) onRTO() {
	s.rtoEvt = nil
	if s.inFlight == 0 {
		return
	}
	s.Retransmits++
	s.peer.Retransmits++
	s.nextSeq = s.acked
	s.inFlight = 0
	s.curRTO *= 2
	if max := 8 * s.rto; s.curRTO > max {
		s.curRTO = max
	}
	s.pump()
}

// PeerReceive implements PeerFlow: guest ACKs open the window.
func (s *TCPSource) PeerReceive(p *netsim.Packet) {
	if p.Kind != guest.KindTCPAck {
		return
	}
	if p.Seq <= s.acked {
		return
	}
	s.inFlight -= int(p.Seq - s.acked)
	if s.inFlight < 0 {
		s.inFlight = 0
	}
	s.acked = p.Seq
	// Forward progress: reset the backoff and re-time what remains.
	if s.rto > 0 {
		s.curRTO = s.rto
		if s.rtoEvt != nil {
			s.rtoEvt.Cancel()
			s.rtoEvt = nil
		}
	}
	s.pump()
}

// NetperfRecvUDP runs a netperf UDP_STREAM receive test: the peer
// blasts datagrams at the given packet rate (an unloaded sender is wire
// or CPU bound; the rate parameter stands for its capability).
func NetperfRecvUDP(kern *guest.Kernel, pe *Peer, flowID, msgBytes int, pps float64) (*guest.UDPReceiver, *UDPSource) {
	r := guest.NewUDPReceiver(kern, flowID)
	src := &UDPSource{peer: pe, flowID: flowID, pktBytes: msgBytes, interval: sim.Time(1e9 / pps)}
	pe.Register(flowID, src)
	src.start()
	return r, src
}

// UDPSource sends a constant-rate UDP stream from the peer.
type UDPSource struct {
	peer     *Peer
	flowID   int
	pktBytes int
	interval sim.Time
	nextSeq  int64
	stopped  bool

	SentPkts uint64
}

func (s *UDPSource) start() {
	var tick func()
	tick = func() {
		if s.stopped {
			return
		}
		s.peer.Port.Send(&netsim.Packet{Bytes: s.pktBytes, Kind: guest.KindUDP, Flow: s.flowID, Seq: s.nextSeq})
		s.nextSeq++
		s.SentPkts++
		s.peer.Eng.After(s.interval, tick)
	}
	s.peer.Eng.After(s.interval, tick)
}

// Stop halts the source.
func (s *UDPSource) Stop() { s.stopped = true }

// PeerReceive implements PeerFlow (nothing flows back on UDP).
func (s *UDPSource) PeerReceive(p *netsim.Packet) {}
