package workloads

import (
	"testing"

	"es2/internal/guest"
	"es2/internal/netsim"
	"es2/internal/sched"
	"es2/internal/sim"
	"es2/internal/vhost"
	"es2/internal/vmm"
)

// rig is a complete single-VM testbed: guest kernel + vhost device +
// link + peer, with the vCPU on core 0 and the vhost worker on core 1.
type rig struct {
	eng  *sim.Engine
	k    *vmm.KVM
	vm   *vmm.VM
	kern *guest.Kernel
	dev  *vhost.Device
	peer *Peer
	ids  FlowIDs
}

func newRig(t *testing.T, usePI bool, vcpus int) *rig {
	t.Helper()
	eng := sim.NewEngine(9)
	s := sched.New(eng, vcpus+1, sched.DefaultParams())
	k := vmm.NewKVM(eng, s, vmm.DefaultCosts())
	k.UsePI = usePI
	cores := make([]int, vcpus)
	for i := range cores {
		cores[i] = i
	}
	vm := k.NewVM("vm", cores)
	kern := guest.NewKernel(vm, guest.DefaultCosts(), 1024)
	kern.StartBurnAll()

	link := netsim.NewLink(eng, 40, 2*sim.Microsecond)
	peer := NewPeer(eng, link.PortB(), 2*sim.Microsecond)
	io := vhost.NewIOThread("io", s, vcpus, vhost.DefaultParams())
	dev, err := vhost.NewDevice("dev", io, kern.Dev.TX, kern.Dev.RX, link.PortA(), false, 0)
	if err != nil {
		t.Fatal(err)
	}
	link.Attach(dev, peer)
	vm.Start()
	return &rig{eng: eng, k: k, vm: vm, kern: kern, dev: dev, peer: peer}
}

func TestNetperfTCPSendEndToEnd(t *testing.T) {
	r := newRig(t, true, 1)
	flow, sink := NetperfSendTCP(r.kern, r.vm.VCPUs[0], r.peer, r.ids.Next(), 1024, 64)
	r.eng.Run(200 * sim.Millisecond)
	if sink.Segs < 1000 {
		t.Fatalf("peer received %d segments, want >1000", sink.Segs)
	}
	if sink.Bytes != sink.Segs*1024 {
		t.Fatalf("byte accounting wrong: %d bytes for %d segs", sink.Bytes, sink.Segs)
	}
	if flow.InFlight() > flow.Window() {
		t.Fatalf("in-flight %d exceeds window %d", flow.InFlight(), flow.Window())
	}
	if flow.AckedSegs == 0 {
		t.Fatal("ACK clock never ticked")
	}
}

func TestNetperfUDPSendEndToEnd(t *testing.T) {
	r := newRig(t, true, 1)
	_, sink := NetperfSendUDP(r.kern, r.vm.VCPUs[0], r.peer, r.ids.Next(), 256)
	r.eng.Run(100 * sim.Millisecond)
	if sink.Pkts < 5000 {
		t.Fatalf("peer received %d packets, want >5000", sink.Pkts)
	}
}

func TestNetperfTCPRecvEndToEnd(t *testing.T) {
	r := newRig(t, true, 1)
	recv, src := NetperfRecvTCP(r.kern, r.peer, r.ids.Next(), 1024, 64)
	r.eng.Run(200 * sim.Millisecond)
	if recv.Segs < 1000 {
		t.Fatalf("guest received %d segments, want >1000", recv.Segs)
	}
	if src.SentSegs < recv.Segs {
		t.Fatal("peer sent fewer segments than guest received")
	}
	if recv.AcksSent == 0 {
		t.Fatal("guest never ACKed")
	}
}

func TestNetperfUDPRecvEndToEnd(t *testing.T) {
	r := newRig(t, true, 1)
	recv, src := NetperfRecvUDP(r.kern, r.peer, r.ids.Next(), 1024, 100_000)
	r.eng.Run(100 * sim.Millisecond)
	if recv.Pkts < 5000 {
		t.Fatalf("guest received %d packets, want ~10000", recv.Pkts)
	}
	src.Stop()
	at := recv.Pkts
	r.eng.Run(120 * sim.Millisecond)
	if recv.Pkts-at > 100 {
		t.Fatal("source kept sending after Stop")
	}
}

func TestPingEndToEnd(t *testing.T) {
	r := newRig(t, true, 1)
	p := StartPing(r.kern, r.peer, r.ids.Next(), 5*sim.Millisecond)
	r.eng.Run(200 * sim.Millisecond)
	if p.Hist.Count() < 30 {
		t.Fatalf("only %d replies", p.Hist.Count())
	}
	if p.Outstanding() > 2 {
		t.Fatalf("%d probes unanswered on an idle VM", p.Outstanding())
	}
	// A dedicated, mostly idle vCPU answers in tens of microseconds.
	if mean := p.Hist.Mean(); mean > sim.Millisecond {
		t.Fatalf("mean RTT %v too high for a dedicated vCPU", mean)
	}
	p.Stop()
	n := p.Sent
	r.eng.Run(50 * sim.Millisecond)
	if p.Sent != n {
		t.Fatal("pinger kept probing after Stop")
	}
}

func TestMemcachedClosedLoop(t *testing.T) {
	r := newRig(t, true, 2)
	srv := StartServer(r.kern, DefaultServerConfig())
	m := StartMemaslap(r.peer, &r.ids, 4, 32)
	r.eng.Run(300 * sim.Millisecond)
	if m.Completed < 1000 {
		t.Fatalf("completed %d ops, want >1000", m.Completed)
	}
	if srv.Served < m.Completed {
		t.Fatal("server served fewer than client completed")
	}
	if m.Lat.Count() != m.Completed {
		t.Fatal("latency histogram count mismatch")
	}
	// Closed loop: outstanding never exceeds concurrency.
	if len(m.started) > 32 {
		t.Fatalf("%d outstanding, concurrency 32", len(m.started))
	}
}

func TestMemaslapGetSetMix(t *testing.T) {
	r := newRig(t, true, 1)
	StartServer(r.kern, DefaultServerConfig())
	m := StartMemaslap(r.peer, &r.ids, 2, 8)
	r.eng.Run(200 * sim.Millisecond)
	// 9:1 get/set — the cycle counter guarantees the ratio exactly.
	if m.count < 100 {
		t.Fatal("too few requests to check the mix")
	}
}

func TestApacheBenchEndToEnd(t *testing.T) {
	r := newRig(t, true, 2)
	StartServer(r.kern, DefaultServerConfig())
	ab := StartApacheBench(r.peer, &r.ids, 8, 8192)
	r.eng.Run(400 * sim.Millisecond)
	if ab.Completed < 200 {
		t.Fatalf("completed %d requests, want >200", ab.Completed)
	}
	if ab.BytesReceived < ab.Completed*8192 {
		t.Fatalf("bytes %d < completed %d x 8192", ab.BytesReceived, ab.Completed)
	}
	if ab.ConnTime.Count() == 0 {
		t.Fatal("no connection times recorded")
	}
}

func TestHttperfOpenLoop(t *testing.T) {
	r := newRig(t, true, 2)
	srv := StartServer(r.kern, DefaultServerConfig())
	h := StartHttperf(r.peer, &r.ids, 2000, 1024)
	r.eng.Run(500 * sim.Millisecond)
	if h.Initiated < 900 {
		t.Fatalf("initiated %d connections, want ~1000", h.Initiated)
	}
	if h.Established < h.Initiated*8/10 {
		t.Fatalf("established %d of %d", h.Established, h.Initiated)
	}
	if h.Responses == 0 {
		t.Fatal("no responses")
	}
	_ = srv
	h.Stop()
	n := h.Initiated
	r.eng.Run(100 * sim.Millisecond)
	if h.Initiated != n {
		t.Fatal("httperf kept initiating after Stop")
	}
}

func TestServerBacklogOverflowTriggersRetransmits(t *testing.T) {
	r := newRig(t, true, 1)
	cfg := DefaultServerConfig()
	cfg.Backlog = 2
	cfg.ServiceCost = 3 * sim.Millisecond // slow accept drain
	srv := StartServer(r.kern, cfg)
	h := StartHttperf(r.peer, &r.ids, 3000, 256)
	r.eng.Run(400 * sim.Millisecond)
	if srv.SYNDrops == 0 {
		t.Fatal("expected SYN drops with backlog 2 under 3000 conn/s")
	}
	// Retransmission recovery must still establish some connections.
	if h.Established == 0 {
		t.Fatal("no connections established at all")
	}
	_ = h
}

func TestPeerUnclaimedPackets(t *testing.T) {
	eng := sim.NewEngine(1)
	link := netsim.NewLink(eng, 40, 0)
	pe := NewPeer(eng, link.PortB(), 0)
	pe.Receive(&netsim.Packet{Flow: 999})
	if pe.Unclaimed != 1 {
		t.Fatal("unclaimed packet not counted")
	}
}

func TestFlowIDsUnique(t *testing.T) {
	var ids FlowIDs
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		id := ids.Next()
		if seen[id] {
			t.Fatal("duplicate flow id")
		}
		seen[id] = true
	}
}
