package workloads

import (
	"es2/internal/causal"
	"es2/internal/guest"
	"es2/internal/loadgen"
	"es2/internal/metrics"
	"es2/internal/netsim"
	"es2/internal/sim"
	"es2/internal/vmm"
)

// OpenLoopClient drives open-loop request streams from inside a guest
// VM. Unlike RPCClient's closed loop — where each completion triggers
// the next request, so the system can never be offered more load than
// it absorbs — arrivals here are armed on the simulation clock by a
// loadgen arrival process and fire regardless of outstanding work.
// Offered load that the system cannot keep up with becomes backlog and,
// past each stream's outstanding cap, shed requests: the generator can
// push the host into queueing collapse and measure where that happens.
//
// Determinism: every stream samples interarrivals from a private RNG
// fork that is independent of the engine's RNG and never observes
// completions, so the arrival sequence is a pure function of the load
// spec and seed — identical across configurations under test.
type OpenLoopClient struct {
	Kern *guest.Kernel

	// Causal, when non-nil, opens a causal chain per sub-request and
	// records it at completion.
	Causal *causal.Probe

	// RT resolves phase multipliers and diurnal scaling against the sim
	// clock; shared by every client of a run.
	RT *loadgen.Runtime

	// Offered counts arrivals, Admitted those that entered the system,
	// Shed those dropped at a full outstanding cap, Completed finished
	// logical requests (all fan-out legs gathered). Sent counts
	// sub-requests reaching the wire; BytesReceived counts response
	// payload.
	Offered       uint64
	Admitted      uint64
	Shed          uint64
	Completed     uint64
	Sent          uint64
	BytesReceived uint64

	// Per-phase slices of the counters above, indexed by profile phase.
	// A request is attributed to the phase of its arrival instant.
	PhaseOffered   []uint64
	PhaseShed      []uint64
	PhaseCompleted []uint64

	// hists receive every completion's latency (per-host and
	// cluster-wide spectra); phaseHists are the shared per-phase
	// spectra, both owned and reset by the test bed.
	hists      []*metrics.LogHistogram
	phaseHists []*metrics.LogHistogram

	streams []*OpenLoopStream
}

// StreamConfig describes one open-loop stream: an arrival process
// driving a fixed fan-out of flows at a (multiplier-scaled) base rate.
type StreamConfig struct {
	// Flows are the stream's flow ids, one per fan-out leg; a logical
	// request issues one sub-request on every flow and completes when
	// all responses have gathered.
	Flows []int
	// RatePerSec is the stream's base arrival rate before profile
	// multipliers.
	RatePerSec float64
	// Sampler draws interarrival gaps (owns its private RNG fork).
	Sampler *loadgen.Sampler
	// ReqBytes/RespBytes size each sub-request and its response.
	ReqBytes, RespBytes int
	// MaxOutstanding sheds arrivals beyond this many logical requests
	// in flight (0 = unbounded).
	MaxOutstanding int
	// Start delays the first arrival draw, staggering streams.
	Start sim.Time
}

// NewOpenLoopClient creates an open-loop client on kern. Completions
// observe into phaseHists (indexed by phase, shared across clients) and
// into every hist.
func NewOpenLoopClient(kern *guest.Kernel, rt *loadgen.Runtime, phaseHists []*metrics.LogHistogram, hists ...*metrics.LogHistogram) *OpenLoopClient {
	return &OpenLoopClient{
		Kern: kern, RT: rt,
		phaseHists:     phaseHists,
		hists:          hists,
		PhaseOffered:   make([]uint64, rt.NumPhases()),
		PhaseShed:      make([]uint64, rt.NumPhases()),
		PhaseCompleted: make([]uint64, rt.NumPhases()),
	}
}

// openReq is one logical in-flight request: fan-out legs still
// outstanding, the arrival instant, and the phase it is billed to.
type openReq struct {
	remaining int
	started   sim.Time
	phase     int
}

// OpenLoopStream is one arrival process. It implements
// guest.FlowHandler for the response direction of all its flows.
type OpenLoopStream struct {
	c *OpenLoopClient
	v *vmm.VCPU

	flows          []int
	rate           float64
	sampler        *loadgen.Sampler
	reqBytes       int
	respBytes      int
	maxOutstanding int

	// Arrivals counts this stream's arrival events (the reconciliation
	// invariant: the sum over streams equals the client's Offered).
	Arrivals uint64

	outstanding int
	seq         int64
	pending     map[int64]*openReq
}

// AddStream registers one open-loop stream, pinned to the vCPU its
// first flow hashes to, and arms its first arrival draw.
func (c *OpenLoopClient) AddStream(cfg StreamConfig) *OpenLoopStream {
	vcpus := c.Kern.VM.VCPUs
	s := &OpenLoopStream{
		c: c, v: vcpus[cfg.Flows[0]%len(vcpus)],
		flows: cfg.Flows, rate: cfg.RatePerSec, sampler: cfg.Sampler,
		reqBytes: cfg.ReqBytes, respBytes: cfg.RespBytes,
		maxOutstanding: cfg.MaxOutstanding,
		pending:        make(map[int64]*openReq),
	}
	for _, fid := range cfg.Flows {
		c.Kern.RegisterFlow(fid, s)
	}
	c.streams = append(c.streams, s)
	c.Kern.Engine().After(cfg.Start+1, s.scheduleNext)
	return s
}

// Streams returns the registered streams in creation order.
func (c *OpenLoopClient) Streams() []*OpenLoopStream { return c.streams }

// Arrivals sums the per-stream arrival counts. Streams count arrivals
// independently of the client's Offered counter, so the two reconcile
// exactly (the offered-rate invariant the report exposes).
func (c *OpenLoopClient) Arrivals() uint64 {
	var n uint64
	for _, s := range c.streams {
		n += s.Arrivals
	}
	return n
}

// Backlog is the number of logical requests currently in flight across
// all streams — the open-loop queue the closed-loop client cannot grow.
func (c *OpenLoopClient) Backlog() int {
	n := 0
	for _, s := range c.streams {
		n += s.outstanding
	}
	return n
}

// ResetStats zeroes the window counters (called at warmup end).
// In-flight requests are kept — their queue pressure is real — but
// marked so their completions are not billed to the window: counted
// completions stay a subset of counted arrivals, mirroring the
// window-end truncation of late arrivals.
func (c *OpenLoopClient) ResetStats() {
	c.Offered, c.Admitted, c.Shed, c.Completed, c.Sent, c.BytesReceived = 0, 0, 0, 0, 0, 0
	for i := range c.PhaseOffered {
		c.PhaseOffered[i], c.PhaseShed[i], c.PhaseCompleted[i] = 0, 0, 0
	}
	for _, s := range c.streams {
		s.Arrivals = 0
		for _, r := range s.pending {
			r.phase = -1
		}
	}
}

// scheduleNext arms the next arrival. The effective rate is the base
// rate scaled by the profile multiplier at the draw instant; a dormant
// stream (multiplier zero) re-polls on the runtime's tick instead of
// dividing by zero.
func (s *OpenLoopStream) scheduleNext() {
	eng := s.c.Kern.Engine()
	mult := s.c.RT.Multiplier(eng.Now())
	if mult <= 0 {
		eng.After(s.c.RT.DormantTick(), s.scheduleNext)
		return
	}
	mean := sim.Time(1e9 / (s.rate * mult))
	d := s.sampler.Interarrival(mean)
	eng.After(d, func() {
		s.arrive()
		s.scheduleNext()
	})
}

// arrive is one open-loop arrival: count it against the phase in
// effect, shed it if the stream's outstanding cap is full, otherwise
// admit and issue a sub-request on every fan-out leg.
func (s *OpenLoopStream) arrive() {
	c := s.c
	now := c.Kern.Engine().Now()
	ph := c.RT.PhaseIndexAt(now)
	s.Arrivals++
	c.Offered++
	if ph < len(c.PhaseOffered) {
		c.PhaseOffered[ph]++
	}
	if s.maxOutstanding > 0 && s.outstanding >= s.maxOutstanding {
		c.Shed++
		if ph < len(c.PhaseShed) {
			c.PhaseShed[ph]++
		}
		return
	}
	c.Admitted++
	s.outstanding++
	s.seq++
	id := s.seq
	s.pending[id] = &openReq{remaining: len(s.flows), started: now, phase: ph}
	for _, fid := range s.flows {
		s.issue(fid, id)
	}
}

// issue charges one sub-request's TX cost to the stream's vCPU and
// opens its causal chain at initiation, mirroring RPCFlow.
func (s *OpenLoopStream) issue(flowID int, id int64) {
	kern := s.c.Kern
	chain := s.c.Causal.Start(flowID, id, kern.Engine().Now())
	cost := kern.JitterCost(kern.Costs.TXCost(s.reqBytes, true))
	s.v.EnqueueTask(vmm.NewTask("openloop-req", vmm.PrioTask, cost, func() {
		s.transmit(flowID, id, chain)
	}))
}

// transmit posts the sub-request, resuming via WaitTX on a full ring.
// There is no supersession: open-loop requests are never retried, a
// full ring simply delays them (and the backlog shows it).
func (s *OpenLoopStream) transmit(flowID int, id int64, chain *causal.Chain) {
	pkt := &netsim.Packet{
		Bytes: s.reqBytes, Kind: guest.KindRequest, Flow: flowID,
		Payload: &Req{ID: id, RespBytes: s.respBytes},
		Chain:   chain,
	}
	if !s.c.Kern.Dev.Transmit(s.v, pkt) {
		s.c.Kern.Dev.WaitTXFlow(flowID, func() { s.transmit(flowID, id, chain) })
		return
	}
	s.c.Sent++
}

// RXCost implements guest.FlowHandler.
func (s *OpenLoopStream) RXCost(p *netsim.Packet) sim.Time {
	return s.c.Kern.Costs.RXCost(p.Bytes)
}

// HandleRX implements guest.FlowHandler: a response's last segment
// closes one fan-out leg; the last leg gathers the logical request and
// records its latency against the arrival's phase.
func (s *OpenLoopStream) HandleRX(p *netsim.Packet, v *vmm.VCPU) {
	if p.Kind != guest.KindResponse {
		return
	}
	c := s.c
	c.BytesReceived += uint64(p.Bytes)
	r, _ := p.Payload.(*Resp)
	if r == nil || r.Seg != r.Segs-1 {
		return
	}
	req, ok := s.pending[r.ReqID]
	if !ok {
		return
	}
	now := c.Kern.Engine().Now()
	c.Causal.Complete(p.Chain, causal.StageGuestRX, now)
	req.remaining--
	if req.remaining > 0 {
		return // scatter/gather: wait for the other legs
	}
	delete(s.pending, r.ReqID)
	s.outstanding--
	if req.phase < 0 {
		return // admitted before the window: drains without billing
	}
	d := now - req.started
	c.Completed++
	if req.phase < len(c.PhaseCompleted) {
		c.PhaseCompleted[req.phase]++
	}
	for _, h := range c.hists {
		h.Observe(d)
	}
	if req.phase < len(c.phaseHists) && c.phaseHists[req.phase] != nil {
		c.phaseHists[req.phase].Observe(d)
	}
}

// OpenLoopPeer is the single-host analogue of OpenLoopClient: the
// external generator (the testbed's second server) initiating requests
// open-loop toward the guest, replacing the closed-loop Memaslap when a
// load spec is active. Fan-out is always single — there is one host
// under test.
type OpenLoopPeer struct {
	peer *Peer

	// Causal, when non-nil, opens a causal chain per request.
	Causal *causal.Probe

	// RT resolves phase multipliers against the sim clock.
	RT *loadgen.Runtime

	// Counters as in OpenLoopClient.
	Offered   uint64
	Admitted  uint64
	Shed      uint64
	Completed uint64

	PhaseOffered   []uint64
	PhaseShed      []uint64
	PhaseCompleted []uint64

	// Lat aggregates all completions; PhaseLat splits them by the
	// arrival's phase.
	Lat      *metrics.LogHistogram
	PhaseLat []*metrics.LogHistogram

	streams []*olPeerStream
}

// olPeerStream is one peer-side arrival process on one connection.
type olPeerStream struct {
	o              *OpenLoopPeer
	flow           int
	rate           float64
	sampler        *loadgen.Sampler
	reqBytes       int
	respBytes      int
	maxOutstanding int

	Arrivals uint64

	outstanding int
	seq         int64
	pending     map[int64]*openReq
}

// NewOpenLoopPeer creates the generator on pe with rt's profile.
func NewOpenLoopPeer(pe *Peer, rt *loadgen.Runtime) *OpenLoopPeer {
	o := &OpenLoopPeer{
		peer: pe, RT: rt,
		Lat:            metrics.NewLogHistogram(),
		PhaseOffered:   make([]uint64, rt.NumPhases()),
		PhaseShed:      make([]uint64, rt.NumPhases()),
		PhaseCompleted: make([]uint64, rt.NumPhases()),
	}
	o.PhaseLat = make([]*metrics.LogHistogram, rt.NumPhases())
	for i := range o.PhaseLat {
		o.PhaseLat[i] = metrics.NewLogHistogram()
	}
	return o
}

// AddStream opens one connection driven by cfg's arrival process
// (cfg.Flows must hold exactly one id: single fan-out).
func (o *OpenLoopPeer) AddStream(cfg StreamConfig) {
	s := &olPeerStream{
		o: o, flow: cfg.Flows[0], rate: cfg.RatePerSec, sampler: cfg.Sampler,
		reqBytes: cfg.ReqBytes, respBytes: cfg.RespBytes,
		maxOutstanding: cfg.MaxOutstanding,
		pending:        make(map[int64]*openReq),
	}
	o.peer.Register(s.flow, s)
	o.streams = append(o.streams, s)
	o.peer.Eng.After(cfg.Start+1, s.scheduleNext)
}

// Backlog is the number of requests currently in flight.
func (o *OpenLoopPeer) Backlog() int {
	n := 0
	for _, s := range o.streams {
		n += s.outstanding
	}
	return n
}

// Arrivals sums the per-stream arrival counts (reconciles with
// Offered).
func (o *OpenLoopPeer) Arrivals() uint64 {
	var n uint64
	for _, s := range o.streams {
		n += s.Arrivals
	}
	return n
}

// ResetStats zeroes the window counters and latency spectra. In-flight
// requests are kept but unbilled, as in OpenLoopClient.ResetStats.
func (o *OpenLoopPeer) ResetStats() {
	o.Offered, o.Admitted, o.Shed, o.Completed = 0, 0, 0, 0
	for i := range o.PhaseOffered {
		o.PhaseOffered[i], o.PhaseShed[i], o.PhaseCompleted[i] = 0, 0, 0
	}
	o.Lat.Reset()
	for _, h := range o.PhaseLat {
		h.Reset()
	}
	for _, s := range o.streams {
		s.Arrivals = 0
		for _, r := range s.pending {
			r.phase = -1
		}
	}
}

func (s *olPeerStream) scheduleNext() {
	eng := s.o.peer.Eng
	mult := s.o.RT.Multiplier(eng.Now())
	if mult <= 0 {
		eng.After(s.o.RT.DormantTick(), s.scheduleNext)
		return
	}
	mean := sim.Time(1e9 / (s.rate * mult))
	d := s.sampler.Interarrival(mean)
	eng.After(d, func() {
		s.arrive()
		s.scheduleNext()
	})
}

func (s *olPeerStream) arrive() {
	o := s.o
	now := o.peer.Eng.Now()
	ph := o.RT.PhaseIndexAt(now)
	s.Arrivals++
	o.Offered++
	if ph < len(o.PhaseOffered) {
		o.PhaseOffered[ph]++
	}
	if s.maxOutstanding > 0 && s.outstanding >= s.maxOutstanding {
		o.Shed++
		if ph < len(o.PhaseShed) {
			o.PhaseShed[ph]++
		}
		return
	}
	o.Admitted++
	s.outstanding++
	s.seq++
	id := s.seq
	s.pending[id] = &openReq{remaining: 1, started: now, phase: ph}
	o.peer.Send(&netsim.Packet{
		Bytes: s.reqBytes, Kind: guest.KindRequest, Flow: s.flow,
		Payload: &Req{ID: id, RespBytes: s.respBytes},
		Chain:   o.Causal.Start(s.flow, id, now),
	})
}

// PeerReceive implements PeerFlow.
func (s *olPeerStream) PeerReceive(p *netsim.Packet) {
	if p.Kind != guest.KindResponse {
		return
	}
	r, _ := p.Payload.(*Resp)
	if r == nil || r.Seg != r.Segs-1 {
		return
	}
	req, ok := s.pending[r.ReqID]
	if !ok {
		return
	}
	o := s.o
	now := o.peer.Eng.Now()
	o.Causal.Complete(p.Chain, causal.StageWire, now)
	delete(s.pending, r.ReqID)
	s.outstanding--
	if req.phase < 0 {
		return // admitted before the window: drains without billing
	}
	d := now - req.started
	o.Completed++
	if req.phase < len(o.PhaseCompleted) {
		o.PhaseCompleted[req.phase]++
	}
	o.Lat.Observe(d)
	if req.phase < len(o.PhaseLat) {
		o.PhaseLat[req.phase].Observe(d)
	}
}
