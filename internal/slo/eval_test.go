package slo

import (
	"encoding/json"
	"testing"
	"time"

	"es2/internal/sim"
)

// fakeCounters drives an evaluator with a scripted error stream: cum
// counters advanced by the test between engine ticks.
type fakeCounters struct {
	tot, bad float64
}

// availEval builds a one-objective availability evaluator ticking
// every 1ms with a 5ms fast window (short = 1 tick) and 20ms slow
// window, bound to fc.
func availEval(fc *fakeCounters, ctx Context) *Evaluator {
	spec := Spec{
		Window: time.Millisecond,
		Objectives: []Objective{{
			Name: "avail", Kind: KindAvailability, Target: 0.99, MinSamples: 1,
		}},
	}
	ev := New(spec, ctx)
	ev.BindCounters(0, func() float64 { return fc.tot }, func() float64 { return fc.bad })
	return ev
}

// drive runs the evaluator over len(script) ticks; script[i] is the
// (dtot, dbad) added during tick i.
func drive(t *testing.T, ev *Evaluator, script [][2]float64, fc *fakeCounters) {
	t.Helper()
	eng := sim.NewEngine(1)
	tick := sim.DurationOf(time.Millisecond)
	for i, s := range script {
		s := s
		// Counters advance just before the evaluator's tick fires: the
		// engine orders same-instant events by schedule order.
		eng.At(sim.Time(i+1)*tick, func() { fc.tot += s[0]; fc.bad += s[1] })
	}
	ev.Start(eng, 0, sim.Time(len(script))*tick)
	eng.RunAll()
}

func TestFireAndClear(t *testing.T) {
	fc := &fakeCounters{}
	ev := availEval(fc, Context{})
	// 100 ops/tick; budget 0.01, fast thr 8 → fast fires above 8% errors.
	// Ticks 1-4 healthy, 5-8 at 50% errors, 9-15 healthy again.
	var script [][2]float64
	for i := 0; i < 15; i++ {
		switch {
		case i >= 4 && i < 8:
			script = append(script, [2]float64{100, 50})
		default:
			script = append(script, [2]float64{100, 0})
		}
	}
	drive(t, ev, script, fc)
	rep := ev.Report()
	if rep.Ticks != 15 {
		t.Fatalf("ticks = %d, want 15", rep.Ticks)
	}
	var fires, clears []Event
	for _, e := range rep.Events {
		if e.Type == "fire" {
			fires = append(fires, e)
		} else {
			clears = append(clears, e)
		}
	}
	if len(fires) == 0 {
		t.Fatal("50% error burst never fired")
	}
	if len(clears) != len(fires) {
		t.Fatalf("%d fires but %d clears; errors stopped at tick 8 so every rule must clear",
			len(fires), len(clears))
	}
	if rep.ActiveAtEnd != 0 {
		t.Errorf("%d rules still firing after 7 clean ticks", rep.ActiveAtEnd)
	}
	if rep.Recovered != rep.Clears {
		t.Errorf("recovered %d != clears %d", rep.Recovered, rep.Clears)
	}
	// The fast rule (short window = 1 tick) must fire on the first
	// errored tick: burn there is 0.5/0.01 = 50 >> 8.
	f := fires[0]
	if f.AtMs != 5 || f.Rule != "fast" {
		t.Errorf("first fire = %+v, want fast at 5ms", f)
	}
	if f.BurnRate < 8 || f.BurnShort < 8 {
		t.Errorf("fire burns %v/%v below threshold 8", f.BurnRate, f.BurnShort)
	}
	// And clear on the first clean tick after the burst (short window
	// burn drops to 0 at tick 9).
	var fastClear *Event
	for i := range clears {
		if clears[i].Rule == "fast" {
			fastClear = &clears[i]
			break
		}
	}
	if fastClear == nil || fastClear.AtMs != 9 {
		t.Errorf("fast clear = %+v, want 9ms", fastClear)
	}
}

func TestQuietRunEmitsNothing(t *testing.T) {
	fc := &fakeCounters{}
	ev := availEval(fc, Context{})
	script := make([][2]float64, 30)
	for i := range script {
		script[i] = [2]float64{100, 0}
	}
	drive(t, ev, script, fc)
	rep := ev.Report()
	if len(rep.Events) != 0 || rep.Fires != 0 || rep.ActiveAtEnd != 0 {
		t.Fatalf("healthy stream produced events: %+v", rep)
	}
	if rep.Objectives[0].Breached {
		t.Error("zero-error objective reported breached")
	}
	if rep.Objectives[0].Total != 3000 {
		t.Errorf("run-wide total = %g, want 3000", rep.Objectives[0].Total)
	}
}

func TestMinSamplesSuppression(t *testing.T) {
	fc := &fakeCounters{}
	spec := Spec{
		Window: time.Millisecond,
		Objectives: []Objective{{
			Name: "avail", Kind: KindAvailability, Target: 0.99, MinSamples: 50,
		}},
	}
	ev := New(spec, Context{})
	ev.BindCounters(0, func() float64 { return fc.tot }, func() float64 { return fc.bad })
	// One lone failed op per tick: 100% error rate but far under
	// MinSamples, so no rule may fire.
	script := make([][2]float64, 10)
	for i := range script {
		script[i] = [2]float64{1, 1}
	}
	drive(t, ev, script, fc)
	if rep := ev.Report(); rep.Fires != 0 {
		t.Fatalf("under-sampled window fired: %+v", rep.Events)
	}
}

func TestGoodputShortfallFires(t *testing.T) {
	fc := &fakeCounters{}
	spec := Spec{
		Window: time.Millisecond,
		Objectives: []Objective{{
			Name: "floor", Kind: KindGoodput, Target: 0.99,
			// 100k ops/s = 100 expected completions per 1ms tick.
			MinOpsPerSec: 100000,
		}},
	}
	ev := New(spec, Context{})
	ev.BindGoodput(0, func() float64 { return fc.tot })
	// Ticks 1-5 meet the floor, 6-9 complete nothing, 10-20 recover.
	var script [][2]float64
	for i := 0; i < 20; i++ {
		if i >= 5 && i < 9 {
			script = append(script, [2]float64{0, 0})
		} else {
			script = append(script, [2]float64{120, 0})
		}
	}
	drive(t, ev, script, fc)
	rep := ev.Report()
	if rep.Fires == 0 {
		t.Fatal("total goodput stall never fired")
	}
	if rep.ActiveAtEnd != 0 {
		t.Errorf("%d rules firing after recovery: %+v", rep.ActiveAtEnd, rep.Events)
	}
	// Overshoot above the floor must not count as negative badness.
	if o := rep.Objectives[0]; o.Bad != 4*100 {
		t.Errorf("shortfall = %g, want 400 (4 stalled ticks x 100 expected)", o.Bad)
	}
}

func TestEventContextSnapshot(t *testing.T) {
	fc := &fakeCounters{}
	ev := availEval(fc, Context{
		ActiveFaults: func() []string { return []string{"host_crash h3", "link_flap port1"} },
		BlameStage:   func() string { return "wire" },
	})
	script := [][2]float64{{100, 0}, {100, 0}, {100, 90}}
	drive(t, ev, script, fc)
	rep := ev.Report()
	if len(rep.Events) == 0 {
		t.Fatal("90% error tick never fired")
	}
	e := rep.Events[0]
	if len(e.ActiveFaults) != 2 || e.ActiveFaults[0] != "host_crash h3" {
		t.Errorf("fault snapshot = %v", e.ActiveFaults)
	}
	if e.BlameStage != "wire" {
		t.Errorf("blame stage = %q, want wire", e.BlameStage)
	}
}

func TestReportJSONShape(t *testing.T) {
	fc := &fakeCounters{}
	ev := availEval(fc, Context{})
	drive(t, ev, [][2]float64{{100, 0}, {100, 50}, {100, 0}}, fc)
	b, err := json.Marshal(ev.Report())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"window_ms", "ticks", "objectives", "events", "fires", "clears", "recovered", "active_at_end"} {
		if _, ok := m[k]; !ok {
			t.Errorf("report JSON missing %q: %s", k, b)
		}
	}
}

func TestLiveAccessors(t *testing.T) {
	fc := &fakeCounters{}
	ev := availEval(fc, Context{})
	if ev.NumObjectives() != 1 || ev.ObjectiveName(0) != "avail" {
		t.Fatalf("objective accessors broken")
	}
	if ev.RuleName(0) != "fast" || ev.RuleName(1) != "slow" {
		t.Fatalf("rule names broken")
	}
	script := [][2]float64{{100, 0}, {100, 90}}
	drive(t, ev, script, fc)
	if ev.Firing(0) == 0 {
		t.Error("no rule firing after a 90% error tick")
	}
	if ev.Fires() == 0 {
		t.Error("cumulative fire counter empty")
	}
	if ev.Burn(0, 0) <= 0 {
		t.Error("fast long-window burn not positive")
	}
}
