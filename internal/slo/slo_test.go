package slo

import (
	"strings"
	"testing"
	"time"
)

func validSpec() Spec {
	return Spec{Objectives: []Objective{
		{Name: "avail", Kind: KindAvailability, Target: 0.999},
		{Name: "tail", Kind: KindLatency, Target: 0.99, Threshold: time.Millisecond},
		{Name: "floor", Kind: KindGoodput, Target: 0.99, MinOpsPerSec: 100},
	}}
}

func TestWithDefaultsFillsAndIsIdempotent(t *testing.T) {
	s := Spec{Objectives: []Objective{{Kind: KindAvailability}}}.WithDefaults()
	if s.Window != time.Millisecond {
		t.Errorf("Window default = %v, want 1ms", s.Window)
	}
	o := s.Objectives[0]
	if o.Name != KindAvailability || o.Target != 0.99 {
		t.Errorf("name/target defaults: %+v", o)
	}
	if o.FastWindow != 5*time.Millisecond || o.SlowWindow != 20*time.Millisecond {
		t.Errorf("window defaults: fast=%v slow=%v", o.FastWindow, o.SlowWindow)
	}
	if o.FastBurn != 8 || o.SlowBurn != 2 || o.MinSamples != 10 {
		t.Errorf("burn/sample defaults: %+v", o)
	}
	if again := s.WithDefaults(); len(again.Objectives) != 1 || again.Objectives[0] != o {
		t.Errorf("WithDefaults not idempotent: %+v", again)
	}
}

func TestWithDefaultsDoesNotAliasInput(t *testing.T) {
	in := Spec{Objectives: []Objective{{Kind: KindAvailability}}}
	_ = in.WithDefaults()
	if in.Objectives[0].Target != 0 {
		t.Error("WithDefaults mutated the caller's objective slice")
	}
}

func TestValidateAcceptsGoodSpec(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if err := (Spec{}).Validate(); err != nil {
		t.Fatalf("disabled spec rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	mut := func(f func(*Spec)) Spec {
		s := validSpec()
		f(&s)
		return s
	}
	cases := []struct {
		name string
		spec Spec
		frag string // expected error fragment
	}{
		{"bad kind", mut(func(s *Spec) { s.Objectives[0].Kind = "uptime" }), "unknown kind"},
		{"latency without threshold", mut(func(s *Spec) { s.Objectives[1].Threshold = 0 }), "Threshold"},
		{"threshold on availability", mut(func(s *Spec) { s.Objectives[0].Threshold = time.Second }), "Threshold"},
		{"goodput without floor", mut(func(s *Spec) { s.Objectives[2].MinOpsPerSec = 0 }), "MinOpsPerSec"},
		{"floor on latency", mut(func(s *Spec) { s.Objectives[1].MinOpsPerSec = 5 }), "MinOpsPerSec"},
		{"target one", mut(func(s *Spec) { s.Objectives[0].Target = 1 }), "Target"},
		{"target negative", mut(func(s *Spec) { s.Objectives[0].Target = -0.5 }), "Target"},
		{"duplicate names", mut(func(s *Spec) { s.Objectives[1].Name = "avail" }), "duplicate"},
		{"window too small", mut(func(s *Spec) { s.Window = time.Microsecond }), "Window"},
		{"fast window under tick", mut(func(s *Spec) {
			s.Window = 10 * time.Millisecond
			s.Objectives[0].FastWindow = time.Millisecond
		}), "FastWindow"},
		{"slow window under fast", mut(func(s *Spec) {
			s.Objectives[0].FastWindow = 20 * time.Millisecond
			s.Objectives[0].SlowWindow = 10 * time.Millisecond
		}), "SlowWindow"},
		{"zero burn stays zero after defaults? no: negative burn", mut(func(s *Spec) {
			s.Objectives[0].FastBurn = -1
		}), "FastBurn"},
		{"negative min samples", mut(func(s *Spec) { s.Objectives[0].MinSamples = -1 }), "MinSamples"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.frag)
		}
	}
}

func TestValidateRejectsTooManyObjectives(t *testing.T) {
	var s Spec
	for i := 0; i < 17; i++ {
		s.Objectives = append(s.Objectives, Objective{
			Name: string(rune('a' + i)), Kind: KindAvailability,
		})
	}
	if err := s.Validate(); err == nil {
		t.Error("17 objectives accepted, max is 16")
	}
}
