// Package slo evaluates declarative service-level objectives
// streamingly on simulated time.
//
// A Spec names objectives over the signals the simulation already
// measures — request latency versus a threshold, availability
// (failed versus attempted operations), and goodput (completions
// versus a declared floor) — and the Evaluator turns each objective
// into Google SRE-style multi-window multi-burn-rate alert rules: a
// fast rule (short windows, high burn threshold) that catches sharp
// outages quickly, and a slow rule (long windows, low threshold) that
// catches sustained slow burns. Burn rate is the error rate divided
// by the error budget rate (1 - Target), so burn 1.0 consumes exactly
// the budget over the objective's compliance period.
//
// Evaluation is purely observational and engine-ordered: the
// evaluator ticks on sim time, reads cumulative counters the
// simulation maintains anyway, draws no randomness, and never mutates
// simulation state — so a run with SLO evaluation enabled is
// bit-identical to a plain run, and the emitted alert timeline
// replays byte-identically across runs of the same seed.
package slo

import (
	"fmt"
	"math"
	"time"
)

// Objective kinds.
const (
	KindLatency      = "latency"      // bad = requests slower than Threshold
	KindAvailability = "availability" // bad = failed operations (timeouts, losses)
	KindGoodput      = "goodput"      // bad = shortfall below MinOpsPerSec
)

// Objective declares one service-level objective. Target is the
// good fraction (e.g. 0.999 = "99.9% of requests under Threshold");
// the error budget rate is 1 - Target.
type Objective struct {
	// Name labels the objective in alerts, telemetry and reports.
	// Defaults to Kind; names must be unique within a Spec.
	Name string
	// Kind is one of KindLatency, KindAvailability, KindGoodput.
	Kind string
	// Target is the objective's good fraction in (0, 1). Default 0.99.
	Target float64
	// Threshold classifies a request as bad when its latency exceeds
	// it. Required for latency objectives, forbidden otherwise.
	Threshold time.Duration
	// MinOpsPerSec is the goodput floor: each evaluation tick expects
	// MinOpsPerSec * tick completions, and the shortfall is the bad
	// count. Required for goodput objectives, forbidden otherwise.
	MinOpsPerSec float64
	// FastWindow and SlowWindow are the long windows of the fast and
	// slow burn-rate rules; each rule also checks a short window of
	// one third the long window (floored at one tick) so alerts clear
	// promptly once the error stream stops. Defaults: 5x and 20x the
	// evaluation tick.
	FastWindow time.Duration
	SlowWindow time.Duration
	// FastBurn and SlowBurn are the burn-rate thresholds of the two
	// rules. Defaults 8 and 2 (wider budgets than Google's canonical
	// 14.4/6 because simulated runs are short).
	FastBurn float64
	SlowBurn float64
	// MinSamples suppresses burn evaluation for latency and
	// availability windows holding fewer than this many operations,
	// so a lone slow request right after warmup cannot fire a 100%
	// error-rate alert. Ignored for goodput (its totals are
	// synthetic). Default 10.
	MinSamples int
}

// Spec declares the SLOs of one scenario or cluster run.
type Spec struct {
	// Objectives lists the declared objectives; an empty list
	// disables SLO evaluation entirely.
	Objectives []Objective
	// Window is the evaluation tick: counters are sampled and rules
	// re-evaluated every Window of sim time. Default 1ms.
	Window time.Duration
}

// Enabled reports whether the spec declares any objective.
func (s Spec) Enabled() bool { return len(s.Objectives) > 0 }

// WithDefaults fills zero-valued fields. Idempotent; a disabled spec
// is returned unchanged.
func (s Spec) WithDefaults() Spec {
	if !s.Enabled() {
		return s
	}
	if s.Window == 0 {
		s.Window = time.Millisecond
	}
	objs := make([]Objective, len(s.Objectives))
	copy(objs, s.Objectives)
	for i := range objs {
		o := &objs[i]
		if o.Name == "" {
			o.Name = o.Kind
		}
		if o.Target == 0 {
			o.Target = 0.99
		}
		if o.FastWindow == 0 {
			o.FastWindow = 5 * s.Window
		}
		if o.SlowWindow == 0 {
			o.SlowWindow = 20 * s.Window
		}
		if o.FastBurn == 0 {
			o.FastBurn = 8
		}
		if o.SlowBurn == 0 {
			o.SlowBurn = 2
		}
		if o.MinSamples == 0 {
			o.MinSamples = 10
		}
	}
	s.Objectives = objs
	return s
}

// Validate checks the spec (after applying defaults). The returned
// errors are plain; callers embedding a Spec wrap them with their own
// field context.
func (s Spec) Validate() error {
	s = s.WithDefaults()
	if !s.Enabled() {
		return nil
	}
	if len(s.Objectives) > 16 {
		return fmt.Errorf("Objectives: %d exceeds the supported maximum 16", len(s.Objectives))
	}
	if s.Window < 100*time.Microsecond || s.Window > time.Hour {
		return fmt.Errorf("Window: %v outside [100µs, 1h]", s.Window)
	}
	seen := make(map[string]bool, len(s.Objectives))
	for i, o := range s.Objectives {
		f := func(field, format string, args ...any) error {
			return fmt.Errorf("Objectives[%d].%s: %s", i, field, fmt.Sprintf(format, args...))
		}
		switch o.Kind {
		case KindLatency:
			if o.Threshold <= 0 || o.Threshold > time.Hour {
				return f("Threshold", "%v outside (0, 1h] (required for latency objectives)", o.Threshold)
			}
			if o.MinOpsPerSec != 0 {
				return f("MinOpsPerSec", "set on a latency objective")
			}
		case KindAvailability:
			if o.Threshold != 0 {
				return f("Threshold", "set on an availability objective")
			}
			if o.MinOpsPerSec != 0 {
				return f("MinOpsPerSec", "set on an availability objective")
			}
		case KindGoodput:
			if o.Threshold != 0 {
				return f("Threshold", "set on a goodput objective")
			}
			if math.IsNaN(o.MinOpsPerSec) || o.MinOpsPerSec <= 0 || o.MinOpsPerSec > 1e9 {
				return f("MinOpsPerSec", "%g outside (0, 1e9] (required for goodput objectives)", o.MinOpsPerSec)
			}
		default:
			return f("Kind", "unknown kind %q (want latency, availability or goodput)", o.Kind)
		}
		if seen[o.Name] {
			return f("Name", "duplicate objective name %q", o.Name)
		}
		seen[o.Name] = true
		if !(o.Target > 0 && o.Target < 1) { // also rejects NaN
			return f("Target", "%g outside (0, 1)", o.Target)
		}
		if o.FastWindow < s.Window || o.FastWindow > time.Hour {
			return f("FastWindow", "%v outside [Window=%v, 1h]", o.FastWindow, s.Window)
		}
		if o.SlowWindow < o.FastWindow || o.SlowWindow > time.Hour {
			return f("SlowWindow", "%v outside [FastWindow=%v, 1h]", o.SlowWindow, o.FastWindow)
		}
		for _, b := range []struct {
			name string
			v    float64
		}{{"FastBurn", o.FastBurn}, {"SlowBurn", o.SlowBurn}} {
			if math.IsNaN(b.v) || math.IsInf(b.v, 0) || b.v <= 0 || b.v > 1e6 {
				return f(b.name, "%g outside (0, 1e6]", b.v)
			}
		}
		if o.MinSamples < 0 || o.MinSamples > 1<<20 {
			return f("MinSamples", "%d outside [0, %d]", o.MinSamples, 1<<20)
		}
	}
	return nil
}
