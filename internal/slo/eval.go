package slo

import (
	"fmt"
	"sort"
	"strings"

	"es2/internal/sim"
)

// Context supplies correlated run state attached to alert events at
// the instant they fire. Both hooks are optional and must be purely
// observational.
type Context struct {
	// ActiveFaults returns the chaos faults active right now (e.g.
	// "host_crash h3"), or nil outside fault windows.
	ActiveFaults func() []string
	// BlameStage returns the critical-path stage carrying the most
	// blame so far (e.g. "wire"), or "" when no analyzer is attached.
	BlameStage func() string
}

// Event is one entry of the deterministic alert timeline. AtMs is
// sim time in milliseconds since measurement start (the same clock
// RecoveryReport fault timestamps use).
type Event struct {
	AtMs      float64 `json:"at_ms"`
	Type      string  `json:"type"` // "fire" | "clear"
	Objective string  `json:"objective"`
	Kind      string  `json:"kind"`
	Rule      string  `json:"rule"` // "fast" | "slow"
	// BurnRate is the long-window burn rate at the event instant;
	// BurnShort the short-window burn.
	BurnRate  float64 `json:"burn_rate"`
	BurnShort float64 `json:"burn_short"`
	// ActiveFaults and BlameStage snapshot Context at fire time
	// (cleared events carry them too when still relevant).
	ActiveFaults []string `json:"active_faults,omitempty"`
	BlameStage   string   `json:"blame_stage,omitempty"`
}

// RuleReport summarizes one burn-rate rule over the run.
type RuleReport struct {
	Rule          string  `json:"rule"`
	WindowMs      float64 `json:"window_ms"`
	ShortWindowMs float64 `json:"short_window_ms"`
	Threshold     float64 `json:"threshold"`
	Fires         int     `json:"fires"`
	Clears        int     `json:"clears"`
	FiringAtEnd   bool    `json:"firing_at_end"`
}

// ObjectiveReport summarizes one objective over the run.
type ObjectiveReport struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Target float64 `json:"target"`
	// Total and Bad are the run-wide operation counts (goodput: the
	// expected-completion total and the shortfall).
	Total     float64 `json:"total"`
	Bad       float64 `json:"bad"`
	ErrorRate float64 `json:"error_rate"`
	// BudgetBurn is the run-wide burn rate: ErrorRate divided by the
	// error budget rate (1 - Target). Burn > 1 means the objective
	// missed its target over the whole run.
	BudgetBurn float64      `json:"budget_burn"`
	Breached   bool         `json:"breached"`
	Rules      []RuleReport `json:"rules"`
}

// Report is the deterministic SLO outcome of one run, exported as
// Result.SLO / ClusterResult.SLO.
type Report struct {
	WindowMs   float64           `json:"window_ms"`
	Ticks      int               `json:"ticks"`
	Objectives []ObjectiveReport `json:"objectives"`
	Events     []Event           `json:"events"`
	Fires      int               `json:"fires"`
	Clears     int               `json:"clears"`
	// Recovered counts fires whose matching clear happened before the
	// run ended; ActiveAtEnd counts rules still firing at the end.
	Recovered   int `json:"recovered"`
	ActiveAtEnd int `json:"active_at_end"`
}

// Render formats the report for the CLI summary.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "slo: %d objectives, %d fires / %d clears (%d active at end) over %d ticks of %gms\n",
		len(r.Objectives), r.Fires, r.Clears, r.ActiveAtEnd, r.Ticks, r.WindowMs)
	for _, o := range r.Objectives {
		state := "met"
		if o.Breached {
			state = "BREACHED"
		}
		fmt.Fprintf(&b, "  %-14s %-12s target=%g error_rate=%.5f burn=%.2f %s\n",
			o.Name, o.Kind, o.Target, o.ErrorRate, o.BudgetBurn, state)
	}
	for _, e := range r.Events {
		ctx := ""
		if len(e.ActiveFaults) > 0 {
			ctx = " faults=" + strings.Join(e.ActiveFaults, ",")
		}
		if e.BlameStage != "" {
			ctx += " blame=" + e.BlameStage
		}
		fmt.Fprintf(&b, "  %8.2fms %-5s %s/%s burn=%.2f%s\n",
			e.AtMs, e.Type, e.Objective, e.Rule, e.BurnRate, ctx)
	}
	return b.String()
}

// rule is the live state of one burn-rate rule.
type rule struct {
	name       string
	longTicks  int
	shortTicks int
	thr        float64
	firing     bool
	fires      int
	clears     int
	burnLong   float64
	burnShort  float64
}

// objState is the live state of one objective: cumulative-counter
// snapshots plus per-tick delta rings sized to the slow rule's long
// window.
type objState struct {
	o       Objective
	budget  float64
	goodput bool
	// total/bad are cumulative counters (latency, availability);
	// completed is the cumulative completion counter (goodput).
	total, bad, completed func() float64
	expectedPerTick       float64
	lastTot, lastBad      float64

	dtot, dbad []float64 // rings of per-tick deltas
	head       int
	filled     int

	cumTot, cumBad float64
	rules          [2]rule
}

// sumLast sums the most recent n entries of a ring.
func (s *objState) sumLast(ring []float64, n int) float64 {
	if n > s.filled {
		n = s.filled
	}
	sum := 0.0
	idx := s.head // head points at the next write slot; head-1 is newest
	for i := 0; i < n; i++ {
		idx--
		if idx < 0 {
			idx = len(ring) - 1
		}
		sum += ring[idx]
	}
	return sum
}

// burnOver computes the burn rate over the last n ticks: the window's
// error rate divided by the budget rate. Empty or under-sampled
// windows burn 0.
func (s *objState) burnOver(n int) float64 {
	tot := s.sumLast(s.dtot, n)
	if tot <= 0 {
		return 0
	}
	if !s.goodput && tot < float64(s.o.MinSamples) {
		return 0
	}
	return (s.sumLast(s.dbad, n) / tot) / s.budget
}

// Evaluator streams SLO evaluation over a run. Construct with New,
// bind each objective to its counters, then Start it on the engine;
// Report assembles the outcome after the run.
type Evaluator struct {
	spec   Spec
	ctx    Context
	tick   sim.Time
	start  sim.Time
	ticks  int
	objs   []*objState
	events []Event
}

// New builds an evaluator for a validated spec (defaults are applied
// here too, so callers may pass the raw spec).
func New(spec Spec, ctx Context) *Evaluator {
	spec = spec.WithDefaults()
	e := &Evaluator{spec: spec, ctx: ctx, tick: sim.DurationOf(spec.Window)}
	for _, o := range spec.Objectives {
		s := &objState{
			o:       o,
			budget:  1 - o.Target,
			goodput: o.Kind == KindGoodput,
		}
		if s.goodput {
			s.expectedPerTick = o.MinOpsPerSec * sim.DurationOf(spec.Window).Seconds()
		}
		ticksOf := func(w sim.Time) int {
			n := int((w + e.tick - 1) / e.tick)
			if n < 1 {
				n = 1
			}
			return n
		}
		fastLong := ticksOf(sim.DurationOf(o.FastWindow))
		slowLong := ticksOf(sim.DurationOf(o.SlowWindow))
		shortOf := func(long int) int {
			n := long / 3
			if n < 1 {
				n = 1
			}
			return n
		}
		s.rules[0] = rule{name: "fast", longTicks: fastLong, shortTicks: shortOf(fastLong), thr: o.FastBurn}
		s.rules[1] = rule{name: "slow", longTicks: slowLong, shortTicks: shortOf(slowLong), thr: o.SlowBurn}
		s.dtot = make([]float64, slowLong)
		s.dbad = make([]float64, slowLong)
		e.objs = append(e.objs, s)
	}
	return e
}

// BindCounters attaches cumulative total/bad counters to objective i
// (latency: observations / observations above threshold;
// availability: attempts / failures).
func (e *Evaluator) BindCounters(i int, total, bad func() float64) {
	e.objs[i].total, e.objs[i].bad = total, bad
}

// BindGoodput attaches a cumulative completion counter to goodput
// objective i.
func (e *Evaluator) BindGoodput(i int, completed func() float64) {
	e.objs[i].completed = completed
}

// Start snapshots counter baselines at `from` (measurement start,
// immediately after warm-up resets) and schedules self-rechaining
// evaluation ticks up to and including `until`. Purely observational:
// ticks read counters and never touch simulation state.
func (e *Evaluator) Start(eng *sim.Engine, from, until sim.Time) {
	e.start = from
	for _, s := range e.objs {
		s.lastTot, s.lastBad = e.read(s)
	}
	next := from + e.tick
	var step func()
	step = func() {
		e.tickAt(eng.Now())
		next += e.tick
		if next <= until {
			eng.At(next, step)
		}
	}
	if next <= until {
		eng.At(next, step)
	}
}

// read returns the cumulative (total, bad) of one objective right
// now. Goodput totals are synthesized per tick, not read, so it
// returns the completion counter in both slots.
func (e *Evaluator) read(s *objState) (tot, bad float64) {
	if s.goodput {
		c := 0.0
		if s.completed != nil {
			c = s.completed()
		}
		return c, c
	}
	if s.total != nil {
		tot = s.total()
	}
	if s.bad != nil {
		bad = s.bad()
	}
	return tot, bad
}

// tickAt advances every objective by one evaluation tick and
// re-evaluates its rules at sim instant now.
func (e *Evaluator) tickAt(now sim.Time) {
	e.ticks++
	for _, s := range e.objs {
		tot, bad := e.read(s)
		var dtot, dbad float64
		if s.goodput {
			completed := tot - s.lastTot
			dtot = s.expectedPerTick
			dbad = s.expectedPerTick - completed
			if dbad < 0 {
				dbad = 0
			}
		} else {
			dtot = tot - s.lastTot
			dbad = bad - s.lastBad
		}
		s.lastTot, s.lastBad = tot, bad
		s.dtot[s.head] = dtot
		s.dbad[s.head] = dbad
		s.head++
		if s.head == len(s.dtot) {
			s.head = 0
		}
		if s.filled < len(s.dtot) {
			s.filled++
		}
		s.cumTot += dtot
		s.cumBad += dbad

		for ri := range s.rules {
			r := &s.rules[ri]
			r.burnLong = s.burnOver(r.longTicks)
			r.burnShort = s.burnOver(r.shortTicks)
			switch {
			// A rule may not fire before its short window has fully
			// filled: with less history than the window claims, one early
			// transient reads as a sustained burn. Clears are ungated.
			case !r.firing && s.filled >= r.shortTicks &&
				r.burnLong >= r.thr && r.burnShort >= r.thr:
				r.firing = true
				r.fires++
				e.emit(now, "fire", s, r)
			case r.firing && r.burnShort < r.thr:
				r.firing = false
				r.clears++
				e.emit(now, "clear", s, r)
			}
		}
	}
}

// emit appends one timeline event, snapshotting the correlation
// context at this instant.
func (e *Evaluator) emit(now sim.Time, typ string, s *objState, r *rule) {
	ev := Event{
		AtMs:      (now - e.start).Millis(),
		Type:      typ,
		Objective: s.o.Name,
		Kind:      s.o.Kind,
		Rule:      r.name,
		BurnRate:  r.burnLong,
		BurnShort: r.burnShort,
	}
	if e.ctx.ActiveFaults != nil {
		if f := e.ctx.ActiveFaults(); len(f) > 0 {
			ev.ActiveFaults = append([]string(nil), f...)
			sort.Strings(ev.ActiveFaults)
		}
	}
	if e.ctx.BlameStage != nil {
		ev.BlameStage = e.ctx.BlameStage()
	}
	e.events = append(e.events, ev)
}

// Live accessors for telemetry probes (sampled at window boundaries).

// NumObjectives returns the number of objectives under evaluation.
func (e *Evaluator) NumObjectives() int { return len(e.objs) }

// ObjectiveName returns objective i's name.
func (e *Evaluator) ObjectiveName(i int) string { return e.objs[i].o.Name }

// Burn returns objective i's most recent long-window burn rate for
// rule 0 (fast) or 1 (slow).
func (e *Evaluator) Burn(i, rule int) float64 { return e.objs[i].rules[rule].burnLong }

// RuleName returns the name of rule 0 or 1.
func (e *Evaluator) RuleName(rule int) string { return [...]string{"fast", "slow"}[rule] }

// Firing returns how many of objective i's rules are firing.
func (e *Evaluator) Firing(i int) int {
	n := 0
	for _, r := range e.objs[i].rules {
		if r.firing {
			n++
		}
	}
	return n
}

// Fires and Clears return cumulative event counts across all
// objectives (monotonic; telemetry counters).
func (e *Evaluator) Fires() float64 { return float64(e.count("fire")) }

// Clears is the clear-event counterpart of Fires.
func (e *Evaluator) Clears() float64 { return float64(e.count("clear")) }

func (e *Evaluator) count(typ string) int {
	n := 0
	for _, ev := range e.events {
		if ev.Type == typ {
			n++
		}
	}
	return n
}

// Report assembles the deterministic run outcome.
func (e *Evaluator) Report() *Report {
	rep := &Report{
		WindowMs: sim.DurationOf(e.spec.Window).Millis(),
		Ticks:    e.ticks,
		Events:   append([]Event(nil), e.events...),
	}
	for _, s := range e.objs {
		or := ObjectiveReport{
			Name:   s.o.Name,
			Kind:   s.o.Kind,
			Target: s.o.Target,
			Total:  s.cumTot,
			Bad:    s.cumBad,
		}
		if s.cumTot > 0 {
			or.ErrorRate = s.cumBad / s.cumTot
			or.BudgetBurn = or.ErrorRate / s.budget
		}
		or.Breached = or.ErrorRate > s.budget
		for _, r := range s.rules {
			or.Rules = append(or.Rules, RuleReport{
				Rule:          r.name,
				WindowMs:      (sim.Time(r.longTicks) * e.tick).Millis(),
				ShortWindowMs: (sim.Time(r.shortTicks) * e.tick).Millis(),
				Threshold:     r.thr,
				Fires:         r.fires,
				Clears:        r.clears,
				FiringAtEnd:   r.firing,
			})
			rep.Fires += r.fires
			rep.Clears += r.clears
			if r.firing {
				rep.ActiveAtEnd++
			}
		}
		rep.Objectives = append(rep.Objectives, or)
	}
	rep.Recovered = rep.Clears
	return rep
}
