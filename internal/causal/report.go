package causal

import (
	"fmt"
	"sort"

	"es2/internal/sim"
)

// Report is the blame profile of one scenario: per-stage critical-path
// contributions aggregated over every completed request, the slowest-k
// exemplars with their full stage timelines, and Coz-style what-if
// estimates. Field order and slice ordering are fixed, so the JSON
// encoding is byte-identical across replays of the same scenario.
type Report struct {
	// Requests is the number of completed request/response chains in
	// the measurement window; TotalNs is the sum of their end-to-end
	// latencies (the denominator of every Share).
	Requests int   `json:"requests"`
	TotalNs  int64 `json:"total_ns"`
	MeanNs   int64 `json:"mean_ns"`
	P50Ns    int64 `json:"p50_ns"`
	P99Ns    int64 `json:"p99_ns"`
	MaxNs    int64 `json:"max_ns"`

	// MaxSumRelErr is the largest relative difference between a
	// chain's stage-duration sum and its measured end-to-end latency.
	// By construction it is 0; the acceptance bound is 1e-3.
	MaxSumRelErr float64 `json:"max_stage_sum_rel_err"`

	// Stages is the aggregate blame profile in fixed stage order
	// (stages never traversed are omitted).
	Stages []StageBlame `json:"stages"`
	// HostStages splits the blame per simulated host ("h0", "h1", …)
	// in (stage, host) order. Only the cluster runner labels hosts.
	HostStages []StageBlame `json:"host_stages,omitempty"`

	// DegradedRequests counts chains the tracker's Degraded classifier
	// flagged (completed while a chaos fault was active);
	// DegradedStages is their own blame profile, every row labeled
	// host "degraded", with Share relative to DegradedTotalNs. Empty
	// on fault-free runs.
	DegradedRequests int          `json:"degraded_requests,omitempty"`
	DegradedTotalNs  int64        `json:"degraded_total_ns,omitempty"`
	DegradedStages   []StageBlame `json:"degraded_stages,omitempty"`

	// Exemplars are the k slowest requests, slowest first.
	Exemplars []Exemplar `json:"exemplars,omitempty"`
	// WhatIf estimates, for every traversed stage, the end-to-end
	// p50/p99 shift if that stage ran `speedup` faster.
	WhatIf []WhatIf `json:"what_if,omitempty"`
}

// StageBlame is one row of the blame profile.
type StageBlame struct {
	Stage string `json:"stage"`
	Host  string `json:"host,omitempty"`
	// Count is the number of traversals (a stage can appear once per
	// direction per request).
	Count   uint64  `json:"count"`
	TotalNs int64   `json:"total_ns"`
	MeanNs  int64   `json:"mean_ns"`
	Share   float64 `json:"share"`
}

// Exemplar is one tail request with its full stage timeline. AtNs
// values are simulation-clock nanoseconds — the same clock the
// Perfetto timeline export uses, so an exemplar window can be located
// in a -timeline trace directly.
type Exemplar struct {
	Flow       int            `json:"flow"`
	Seq        int64          `json:"seq"`
	StartNs    int64          `json:"start_ns"`
	E2ENs      int64          `json:"e2e_ns"`
	FabricHops uint32         `json:"fabric_hops,omitempty"`
	Marks      []ExemplarMark `json:"marks"`
}

// ExemplarMark is one stamped point of an exemplar: DurNs is the time
// attributed to Stage (the gap since the previous mark).
type ExemplarMark struct {
	Stage string `json:"stage"`
	Host  string `json:"host,omitempty"`
	AtNs  int64  `json:"at_ns"`
	DurNs int64  `json:"dur_ns"`
}

// WhatIf is one virtual-speedup estimate: the recorded chains are
// replayed offline with Stage's contribution scaled by (1-Speedup)
// and the percentiles recomputed — zero perturbation of the run.
type WhatIf struct {
	Stage   string  `json:"stage"`
	Speedup float64 `json:"speedup"`
	// P50Ns/P99Ns are the predicted percentiles after the speedup;
	// the deltas are predicted-minus-measured (negative = faster).
	P50Ns       int64 `json:"p50_ns"`
	P99Ns       int64 `json:"p99_ns"`
	P50DeltaNs  int64 `json:"p50_delta_ns"`
	P99DeltaNs  int64 `json:"p99_delta_ns"`
	MeanDeltaNs int64 `json:"mean_delta_ns"`
}

// DefaultWhatIfSpeedup is the virtual speedup evaluated for every
// traversed stage in Report (Coz's classic "what if 50% faster").
const DefaultWhatIfSpeedup = 0.5

func hostLabel(labeled bool, host uint8) string {
	if !labeled {
		return ""
	}
	return fmt.Sprintf("h%d", host)
}

// Report aggregates everything recorded since the last Reset. Safe on
// a nil tracker (returns nil).
func (t *Tracker) Report() *Report {
	if t == nil {
		return nil
	}
	r := &Report{Requests: len(t.recs)}

	// Percentiles over the measured end-to-end latencies.
	e2es := make([]sim.Time, len(t.recs))
	var total sim.Time
	for i, rec := range t.recs {
		e2es[i] = rec.e2e
		total += rec.e2e
	}
	sort.Slice(e2es, func(i, j int) bool { return e2es[i] < e2es[j] })
	r.TotalNs = int64(total)
	if n := len(e2es); n > 0 {
		r.MeanNs = int64(total) / int64(n)
		r.P50Ns = int64(quantile(e2es, 0.5))
		r.P99Ns = int64(quantile(e2es, 0.99))
		r.MaxNs = int64(e2es[n-1])
	}

	// Aggregate blame in fixed stage order. Stage sums telescope to
	// the end-to-end latency exactly (marks are clamped monotonic and
	// Complete stamps the final segment), so MaxSumRelErr stays 0;
	// compute it anyway as the exported reconciliation check.
	for s := Stage(0); s < NumStages; s++ {
		if t.stageCount[s] == 0 {
			continue
		}
		b := StageBlame{
			Stage:   s.String(),
			Count:   t.stageCount[s],
			TotalNs: int64(t.stageTotal[s]),
			MeanNs:  int64(t.stageTotal[s]) / int64(t.stageCount[s]),
		}
		if total > 0 {
			b.Share = float64(b.TotalNs) / float64(total)
		}
		r.Stages = append(r.Stages, b)
	}
	for _, rec := range t.recs {
		var sum sim.Time
		for s := Stage(0); s < NumStages; s++ {
			sum += rec.durs[s]
		}
		if rec.e2e > 0 {
			err := float64(sum-rec.e2e) / float64(rec.e2e)
			if err < 0 {
				err = -err
			}
			if err > r.MaxSumRelErr {
				r.MaxSumRelErr = err
			}
		}
	}

	// Per-host blame, (stage, host)-ordered.
	if t.LabelHosts && len(t.hostDurs) > 0 {
		keys := make([]uint16, 0, len(t.hostDurs))
		for k := range t.hostDurs {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			agg := t.hostDurs[k]
			b := StageBlame{
				Stage:   Stage(k >> 8).String(),
				Host:    hostLabel(true, uint8(k)),
				Count:   agg.count,
				TotalNs: int64(agg.total),
				MeanNs:  int64(agg.total) / int64(agg.count),
			}
			if total > 0 {
				b.Share = float64(b.TotalNs) / float64(total)
			}
			r.HostStages = append(r.HostStages, b)
		}
	}

	// Degraded blame rows: the same profile restricted to requests
	// that completed inside a fault window, so an outage's tail shows
	// up as labeled rows instead of polluting the healthy shares.
	if t.degReqs > 0 {
		r.DegradedRequests = t.degReqs
		r.DegradedTotalNs = int64(t.degE2E)
		for s := Stage(0); s < NumStages; s++ {
			if t.degCount[s] == 0 {
				continue
			}
			b := StageBlame{
				Stage:   s.String(),
				Host:    "degraded",
				Count:   t.degCount[s],
				TotalNs: int64(t.degTotal[s]),
				MeanNs:  int64(t.degTotal[s]) / int64(t.degCount[s]),
			}
			if t.degE2E > 0 {
				b.Share = float64(b.TotalNs) / float64(t.degE2E)
			}
			r.DegradedStages = append(r.DegradedStages, b)
		}
	}

	// Tail exemplars, slowest first.
	for i, c := range t.tail {
		ex := Exemplar{
			Flow: c.flow, Seq: c.seq,
			StartNs: int64(c.start), E2ENs: int64(t.tailE2E[i]),
			FabricHops: c.hops,
		}
		prev := c.start
		for _, m := range c.marks {
			ex.Marks = append(ex.Marks, ExemplarMark{
				Stage: m.Stage.String(),
				Host:  hostLabel(t.LabelHosts, m.Host),
				AtNs:  int64(m.T),
				DurNs: int64(m.T - prev),
			})
			prev = m.T
		}
		r.Exemplars = append(r.Exemplars, ex)
	}

	// What-if grid: every traversed stage at the default speedup.
	for s := Stage(0); s < NumStages; s++ {
		if t.stageCount[s] == 0 {
			continue
		}
		r.WhatIf = append(r.WhatIf, t.whatIf(s, DefaultWhatIfSpeedup, r))
	}
	return r
}

// WhatIf predicts the end-to-end percentile shift if stage ran
// `speedup` (0..1) faster, by replaying the recorded chains with that
// stage's contribution scaled down. Safe on a nil tracker.
func (t *Tracker) WhatIf(stage Stage, speedup float64) WhatIf {
	if t == nil {
		return WhatIf{Stage: stage.String(), Speedup: speedup}
	}
	return t.whatIf(stage, speedup, t.Report())
}

func (t *Tracker) whatIf(stage Stage, speedup float64, base *Report) WhatIf {
	w := WhatIf{Stage: stage.String(), Speedup: speedup}
	n := len(t.recs)
	if n == 0 {
		return w
	}
	adj := make([]sim.Time, n)
	var total sim.Time
	for i, rec := range t.recs {
		saved := sim.Time(float64(rec.durs[stage]) * speedup)
		adj[i] = rec.e2e - saved
		total += adj[i]
	}
	sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
	w.P50Ns = int64(quantile(adj, 0.5))
	w.P99Ns = int64(quantile(adj, 0.99))
	w.P50DeltaNs = w.P50Ns - base.P50Ns
	w.P99DeltaNs = w.P99Ns - base.P99Ns
	w.MeanDeltaNs = int64(total)/int64(n) - base.MeanNs
	return w
}

// quantile returns the nearest-rank q-quantile of sorted values.
func quantile(sorted []sim.Time, q float64) sim.Time {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(float64(len(sorted)-1)*q + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
