// Package causal reconstructs the causal chain of every completed
// request/response pair threaded through the virtual I/O event path:
// guest TX virtqueue → vhost handler → netsim/fabric transit → peer
// service → return path → posted/emulated interrupt → wakeup-to-run →
// guest RX completion.
//
// Each layer stamps the chain riding on the packet with a
// (stage, host, time) mark at the instant the request leaves that
// layer. Stage durations are the differences between consecutive
// marks, so the per-stage contributions of a chain telescope to
// exactly the end-to-end latency the workload measures — the
// reconciliation invariant the tests assert. The closed-loop
// request/response workloads are strictly sequential, so the chain is
// the critical path.
//
// Everything here is observational: marks are clock reads at instants
// the simulation already reaches, draw no randomness, and never
// change behavior, so a run with causal tracking enabled is
// bit-identical to a plain run. Like trace.PathTracer, every entry
// point is a safe no-op on a nil receiver or nil chain, so call sites
// need no guards.
package causal

import "es2/internal/sim"

// Stage identifies the event-path segment ending at a mark, in path
// order. A request-direction and a response-direction traversal both
// contribute to the same stage (e.g. backend-tx on the client's host
// for the request and on the server's host for the response).
type Stage uint8

const (
	// StageGuestTX is request initiation to the TX doorbell on a fresh
	// chain: the client guest's stack and scheduling delays.
	StageGuestTX Stage = iota
	// StageService is guest RX dispatch to the response TX doorbell:
	// application queueing, service time and response build.
	StageService
	// StageNotifyExit is TX doorbell to vhost dequeue when the kick
	// took an I/O-instruction exit. Lost-kick recovery (the netdev TX
	// watchdog) lands here, so faulted runs shift blame into it.
	StageNotifyExit
	// StageNotifyPoll is the same span with the kick suppressed
	// (vhost polling mode or exit-less doorbells).
	StageNotifyPoll
	// StageBackendTX is vhost dequeue to wire transmit.
	StageBackendTX
	// StageWire is wire/fabric transit, including switch queueing and
	// the external peer's turnaround where one is involved.
	StageWire
	// StageBackendRX is wire arrival to the RX used-ring publish.
	StageBackendRX
	// StageSignal is used-ring publish to interrupt injection: the
	// vhost turn-end signal batching and any interrupt moderation.
	StageSignal
	// StageWakeup is injection to the target vCPU getting back on a
	// core; zero when the vCPU was already running.
	StageWakeup
	// StageIRQPosted is on-core to guest handler entry via posted
	// interrupts (no exit).
	StageIRQPosted
	// StageIRQEmulated is the same span via emulated injection
	// (external-interrupt exit + re-entry). PI-outage fallback moves
	// blame from StageIRQPosted to here.
	StageIRQEmulated
	// StageRingWait is handler entry to NAPI collecting the buffer
	// (softirq scheduling and earlier-batch processing).
	StageRingWait
	// StageGuestRX is NAPI collect to protocol dispatch: the guest
	// receive stack.
	StageGuestRX

	// NumStages bounds the stage enum.
	NumStages
)

var stageNames = [NumStages]string{
	"guest-tx", "service", "notify-exit", "notify-poll", "backend-tx",
	"wire", "backend-rx", "signal", "wakeup", "irq-posted",
	"irq-emulated", "ring-wait", "guest-rx",
}

// String returns the stable snake/kebab-case stage name used in JSON
// exports and rendered tables.
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return "?"
}

// Mark is one stamped point of a chain: the segment since the
// previous mark (or the chain start) is attributed to Stage on Host.
type Mark struct {
	Stage Stage
	Host  uint8
	T     sim.Time
}

// Chain is the causal record of one in-flight request. It rides the
// request across layers as netsim.Packet.Chain; fault-injected
// duplicate deliveries share the pointer, which is safe because marks
// clamp to monotonic time and completion freezes the chain.
type Chain struct {
	flow  int
	seq   int64
	start sim.Time
	marks []Mark
	done  bool

	// kickExit records whether the most recent TX doorbell took an
	// I/O-instruction exit, deciding StageNotifyExit vs
	// StageNotifyPoll at the matching vhost dequeue.
	kickExit bool
	// hops counts fabric traversals (annotation only; transit time is
	// part of StageWire).
	hops uint32
}

// Mark stamps stage on host at t, clamped so mark times never run
// backwards (duplicate deliveries and coalesced interrupts may replay
// an earlier instant). No-op on a nil or completed chain.
func (c *Chain) Mark(stage Stage, host uint8, t sim.Time) {
	if c == nil || c.done {
		return
	}
	if last := c.lastT(); t < last {
		t = last
	}
	if n := len(c.marks); n > 0 && c.marks[n-1].Stage == stage && c.marks[n-1].Host == host {
		// Consecutive marks of the same stage on the same host merge
		// into one segment (e.g. guest-rx stamped at dispatch and again
		// at the workload's completion instant).
		c.marks[n-1].T = t
		return
	}
	c.marks = append(c.marks, Mark{Stage: stage, Host: host, T: t})
}

// MarkSend stamps the TX doorbell: StageGuestTX on a fresh chain (the
// client's first transmit), StageService on a continued one (the
// responder's reply), remembering the kick mechanism for the matching
// vhost-side MarkNotify.
func (c *Chain) MarkSend(host uint8, t sim.Time, exitKick bool) {
	if c == nil || c.done {
		return
	}
	stage := StageGuestTX
	if len(c.marks) > 0 {
		stage = StageService
	}
	c.kickExit = exitKick
	c.Mark(stage, host, t)
}

// MarkNotify stamps the vhost dequeue with the notify stage matching
// the doorbell's kick mechanism.
func (c *Chain) MarkNotify(host uint8, t sim.Time) {
	if c == nil {
		return
	}
	stage := StageNotifyPoll
	if c.kickExit {
		stage = StageNotifyExit
	}
	c.Mark(stage, host, t)
}

// AddHop counts one fabric traversal.
func (c *Chain) AddHop() {
	if c == nil || c.done {
		return
	}
	c.hops++
}

// LastT returns the time of the most recent mark, or the chain start.
func (c *Chain) LastT() sim.Time {
	if c == nil {
		return 0
	}
	return c.lastT()
}

func (c *Chain) lastT() sim.Time {
	if n := len(c.marks); n > 0 {
		return c.marks[n-1].T
	}
	return c.start
}

// Probe is a host-bound handle layers use to stamp chains; the
// single-host runner hands every layer host 0, the cluster runner one
// probe per simulated host. All methods are nil-safe.
type Probe struct {
	t    *Tracker
	host uint8
}

// Mark stamps stage at t on the probe's host.
func (p *Probe) Mark(c *Chain, stage Stage, t sim.Time) {
	if p == nil {
		return
	}
	c.Mark(stage, p.host, t)
}

// MarkSend stamps the TX doorbell (see Chain.MarkSend).
func (p *Probe) MarkSend(c *Chain, t sim.Time, exitKick bool) {
	if p == nil {
		return
	}
	c.MarkSend(p.host, t, exitKick)
}

// MarkNotify stamps the vhost dequeue (see Chain.MarkNotify).
func (p *Probe) MarkNotify(c *Chain, t sim.Time) {
	if p == nil {
		return
	}
	c.MarkNotify(p.host, t)
}

// Start opens a chain for one request at its latency-clock start.
// Returns nil (a valid no-op chain) when the probe is disabled.
func (p *Probe) Start(flow int, seq int64, now sim.Time) *Chain {
	if p == nil || p.t == nil {
		return nil
	}
	p.t.started++
	return &Chain{flow: flow, seq: seq, start: now}
}

// Complete closes a chain at the workload's completion instant,
// stamping the final segment as stage so the per-stage durations sum
// exactly to now - start, and records it with the tracker.
func (p *Probe) Complete(c *Chain, stage Stage, now sim.Time) {
	if p == nil || p.t == nil || c == nil || c.done {
		return
	}
	c.Mark(stage, p.host, now)
	c.done = true
	p.t.record(c, now)
}

// Tracker collects completed chains and builds the blame profile,
// tail exemplars and what-if estimates. One tracker serves a whole
// scenario (all hosts of a cluster); it is engine-ordered like the
// rest of the simulation and needs no locking.
type Tracker struct {
	// LabelHosts enables "hN" host labels in reports (the cluster
	// runner); the single-host runner leaves labels empty.
	LabelHosts bool

	// Degraded, when non-nil, classifies each chain at completion:
	// returning true additionally accounts its stage durations into
	// the report's degraded blame rows (the cluster runner flags
	// requests completing while a chaos fault is active, so
	// outage-tinted tails are separable from healthy blame). Purely
	// observational.
	Degraded func() bool

	exemplars int // retained slowest chains
	started   uint64
	recs      []record
	tail      []*Chain // k slowest completed chains, sorted slowest-first
	tailE2E   []sim.Time

	// Aggregate accumulators, updated at completion so reports need no
	// second pass over the chains. hostDurs is keyed stage<<8|host and
	// iterated in sorted key order, so reports stay deterministic.
	stageTotal [NumStages]sim.Time
	stageCount [NumStages]uint64
	hostDurs   map[uint16]*hostAgg

	// Degraded-request accumulators (chaos runs only).
	degTotal [NumStages]sim.Time
	degCount [NumStages]uint64
	degReqs  int
	degE2E   sim.Time
}

// hostAgg accumulates one (stage, host) blame cell.
type hostAgg struct {
	total sim.Time
	count uint64
}

// record is the compact per-chain summary kept for every completed
// request: enough for exact percentiles and Coz-style what-if replay
// without retaining the full mark list.
type record struct {
	e2e  sim.Time
	durs [NumStages]sim.Time
}

// NewTracker creates a tracker retaining the `exemplars` slowest
// chains with their full timelines.
func NewTracker(exemplars int) *Tracker {
	if exemplars < 0 {
		exemplars = 0
	}
	return &Tracker{exemplars: exemplars}
}

// Probe returns a stamping handle bound to host. Safe on a nil
// tracker (returns a nil, no-op probe).
func (t *Tracker) Probe(host uint8) *Probe {
	if t == nil {
		return nil
	}
	return &Probe{t: t, host: host}
}

// Reset drops everything recorded so far (called at warmup end).
// Chains still in flight keep their warm-up marks and are recorded on
// completion, mirroring how the latency histograms treat them.
func (t *Tracker) Reset() {
	if t == nil {
		return
	}
	t.started = 0
	t.recs = t.recs[:0]
	t.tail = t.tail[:0]
	t.tailE2E = t.tailE2E[:0]
	t.stageTotal = [NumStages]sim.Time{}
	t.stageCount = [NumStages]uint64{}
	t.hostDurs = nil
	t.degTotal = [NumStages]sim.Time{}
	t.degCount = [NumStages]uint64{}
	t.degReqs = 0
	t.degE2E = 0
}

// Started returns the number of chains opened since the last Reset.
func (t *Tracker) Started() uint64 {
	if t == nil {
		return 0
	}
	return t.started
}

// Completed returns the number of chains recorded since the last
// Reset.
func (t *Tracker) Completed() int {
	if t == nil {
		return 0
	}
	return len(t.recs)
}

func (t *Tracker) record(c *Chain, now sim.Time) {
	e2e := now - c.start
	if e2e < 0 {
		e2e = 0
	}
	deg := t.Degraded != nil && t.Degraded()
	if deg {
		t.degReqs++
		t.degE2E += e2e
	}
	var rec record
	rec.e2e = e2e
	prev := c.start
	for _, m := range c.marks {
		d := m.T - prev
		prev = m.T
		rec.durs[m.Stage] += d
		t.stageTotal[m.Stage] += d
		t.stageCount[m.Stage]++
		if deg {
			t.degTotal[m.Stage] += d
			t.degCount[m.Stage]++
		}
		if t.LabelHosts {
			if t.hostDurs == nil {
				t.hostDurs = make(map[uint16]*hostAgg)
			}
			key := uint16(m.Stage)<<8 | uint16(m.Host)
			agg := t.hostDurs[key]
			if agg == nil {
				agg = &hostAgg{}
				t.hostDurs[key] = agg
			}
			agg.total += d
			agg.count++
		}
	}
	t.recs = append(t.recs, rec)
	t.offerTail(c, e2e)
}

// TopStage returns the name of the stage carrying the most total
// blame so far, or "" when nothing has been recorded. Nil-safe; used
// as live correlation context on SLO alert events.
func (t *Tracker) TopStage() string {
	if t == nil {
		return ""
	}
	best, total := Stage(0), sim.Time(0)
	for s := Stage(0); s < NumStages; s++ {
		if t.stageTotal[s] > total {
			best, total = s, t.stageTotal[s]
		}
	}
	if total == 0 {
		return ""
	}
	return best.String()
}

// offerTail inserts c into the slowest-k list. Ordering is fully
// deterministic: larger end-to-end first; ties broken by earlier
// start, then smaller flow, then smaller seq — so replayed runs
// select identical exemplars.
func (t *Tracker) offerTail(c *Chain, e2e sim.Time) {
	if t.exemplars == 0 {
		return
	}
	slower := func(i int) bool {
		if t.tailE2E[i] != e2e {
			return t.tailE2E[i] > e2e
		}
		o := t.tail[i]
		if o.start != c.start {
			return o.start < c.start
		}
		if o.flow != c.flow {
			return o.flow < c.flow
		}
		return o.seq <= c.seq
	}
	pos := 0
	for pos < len(t.tail) && slower(pos) {
		pos++
	}
	if pos >= t.exemplars {
		return
	}
	t.tail = append(t.tail, nil)
	t.tailE2E = append(t.tailE2E, 0)
	copy(t.tail[pos+1:], t.tail[pos:])
	copy(t.tailE2E[pos+1:], t.tailE2E[pos:])
	t.tail[pos] = c
	t.tailE2E[pos] = e2e
	if len(t.tail) > t.exemplars {
		t.tail = t.tail[:t.exemplars]
		t.tailE2E = t.tailE2E[:t.exemplars]
	}
}
