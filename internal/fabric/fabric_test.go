package fabric

import (
	"testing"

	"es2/internal/netsim"
	"es2/internal/sim"
)

// sink records delivered packets with their arrival times.
type sink struct {
	eng  *sim.Engine
	pkts []*netsim.Packet
	at   []sim.Time
}

func (s *sink) Receive(p *netsim.Packet) {
	s.pkts = append(s.pkts, p)
	s.at = append(s.at, s.eng.Now())
}

// crossbar routes flow f to port f%N — enough for the tests here.
func crossbar(n int) Router {
	return func(src *Port, p *netsim.Packet) (int, bool) {
		return p.Flow % n, true
	}
}

func newTestSwitch(t *testing.T, params Params, nPorts int) (*sim.Engine, *Switch, []*sink) {
	t.Helper()
	eng := sim.NewEngine(1)
	sw := New(eng, params)
	sinks := make([]*sink, nPorts)
	for i := 0; i < nPorts; i++ {
		sinks[i] = &sink{eng: eng}
		sw.AddPort("h", sinks[i])
	}
	sw.SetRouter(crossbar(nPorts))
	return eng, sw, sinks
}

func TestForwardAndDelay(t *testing.T) {
	p := DefaultParams()
	p.Delay = 10 * sim.Microsecond
	eng, sw, sinks := newTestSwitch(t, p, 2)

	sw.Port(0).Send(&netsim.Packet{Bytes: 1500, Flow: 1})
	eng.Run(sim.Second)

	if len(sinks[1].pkts) != 1 || len(sinks[0].pkts) != 0 {
		t.Fatalf("want 1 packet at port 1, got %d/%d", len(sinks[0].pkts), len(sinks[1].pkts))
	}
	// 40Gbps = 5 bytes/ns: 1500B serializes in 300ns, twice (ingress +
	// egress), plus the 10µs forwarding delay.
	want := sim.Time(300+300) + p.Delay
	if got := sinks[1].at[0]; got != want {
		t.Fatalf("delivery at %v, want %v", got, want)
	}
	if sw.Forwarded != 1 {
		t.Fatalf("Forwarded = %d, want 1", sw.Forwarded)
	}
}

// Two senders targeting the same egress port must serialize on its
// wire: the second frame's delivery is pushed behind the first.
func TestEgressContention(t *testing.T) {
	p := DefaultParams()
	p.Delay = 0
	eng, sw, sinks := newTestSwitch(t, p, 3)

	sw.Port(0).Send(&netsim.Packet{Bytes: 1500, Flow: 2, Seq: 0})
	sw.Port(1).Send(&netsim.Packet{Bytes: 1500, Flow: 2, Seq: 1})
	eng.Run(sim.Second)

	if len(sinks[2].pkts) != 2 {
		t.Fatalf("want 2 packets, got %d", len(sinks[2].pkts))
	}
	// FIFO in event order: the port-0 frame was sent first.
	if sinks[2].pkts[0].Seq != 0 || sinks[2].pkts[1].Seq != 1 {
		t.Fatalf("out-of-order delivery: %d then %d", sinks[2].pkts[0].Seq, sinks[2].pkts[1].Seq)
	}
	if d := sinks[2].at[1] - sinks[2].at[0]; d != 300 {
		t.Fatalf("egress spacing %v, want 300ns (one 1500B slot at 40G)", d)
	}
}

// A finite uplink serializes frames that would not contend on any
// port, modeling an oversubscribed backplane.
func TestUplinkContention(t *testing.T) {
	p := DefaultParams()
	p.Delay = 0
	p.UplinkGbps = 40
	eng, sw, sinks := newTestSwitch(t, p, 4)

	// Disjoint ingress (0,1) and egress (2,3) ports: only the uplink is
	// shared.
	sw.Port(0).Send(&netsim.Packet{Bytes: 1500, Flow: 2})
	sw.Port(1).Send(&netsim.Packet{Bytes: 1500, Flow: 3})
	eng.Run(sim.Second)

	if len(sinks[2].pkts) != 1 || len(sinks[3].pkts) != 1 {
		t.Fatalf("want one packet each, got %d/%d", len(sinks[2].pkts), len(sinks[3].pkts))
	}
	// First frame: 300 ingress + 300 uplink + 300 egress. Second frame
	// finishes ingress at 300 but waits for the uplink until 600.
	if got, want := sinks[2].at[0], sim.Time(900); got != want {
		t.Fatalf("first delivery at %v, want %v", got, want)
	}
	if got, want := sinks[3].at[0], sim.Time(1200); got != want {
		t.Fatalf("second delivery at %v, want %v", got, want)
	}
	if sw.UplinkBusy != 600 {
		t.Fatalf("UplinkBusy = %v, want 600ns", sw.UplinkBusy)
	}
}

func TestEgressQueueCapDrops(t *testing.T) {
	p := DefaultParams()
	p.QueueCap = 4
	eng, sw, sinks := newTestSwitch(t, p, 2)

	for i := 0; i < 10; i++ {
		sw.Port(0).Send(&netsim.Packet{Bytes: 1500, Flow: 1, Seq: int64(i)})
	}
	eng.Run(sim.Second)

	if got := len(sinks[1].pkts); got != 4 {
		t.Fatalf("delivered %d, want 4 (QueueCap)", got)
	}
	if sw.Port(1).EgressDrops != 6 {
		t.Fatalf("EgressDrops = %d, want 6", sw.Port(1).EgressDrops)
	}
	if sw.Port(1).EgressQueued() != 0 {
		t.Fatalf("egressQueued = %d after drain, want 0", sw.Port(1).EgressQueued())
	}
}

func TestRouteDrop(t *testing.T) {
	eng := sim.NewEngine(1)
	sw := New(eng, DefaultParams())
	s := &sink{eng: eng}
	sw.AddPort("h0", s)
	sw.SetRouter(func(src *Port, p *netsim.Packet) (int, bool) { return 0, p.Flow != 99 })

	sw.Port(0).Send(&netsim.Packet{Bytes: 100, Flow: 99})
	sw.Port(0).Send(&netsim.Packet{Bytes: 100, Flow: 1})
	eng.Run(sim.Second)

	if sw.RouteDrops != 1 || len(s.pkts) != 1 {
		t.Fatalf("RouteDrops=%d delivered=%d, want 1/1", sw.RouteDrops, len(s.pkts))
	}
}

func TestSendFaultHook(t *testing.T) {
	eng, sw, sinks := newTestSwitch(t, DefaultParams(), 2)
	actions := []netsim.FaultAction{netsim.FaultDrop, netsim.FaultDup, netsim.FaultNone}
	i := 0
	sw.Port(0).SendFault = func() netsim.FaultAction {
		a := actions[i%len(actions)]
		i++
		return a
	}
	for j := 0; j < 3; j++ {
		sw.Port(0).Send(&netsim.Packet{Bytes: 100, Flow: 1, Seq: int64(j)})
	}
	eng.Run(sim.Second)

	// Frame 0 dropped, frame 1 duplicated, frame 2 normal: 3 arrivals.
	if got := len(sinks[1].pkts); got != 3 {
		t.Fatalf("delivered %d, want 3 (drop + dup + normal)", got)
	}
	if sinks[1].pkts[0].Seq != 1 || sinks[1].pkts[1].Seq != 1 || sinks[1].pkts[2].Seq != 2 {
		t.Fatalf("unexpected sequence: %d %d %d",
			sinks[1].pkts[0].Seq, sinks[1].pkts[1].Seq, sinks[1].pkts[2].Seq)
	}
}

// The same send pattern must produce identical delivery times on a
// fresh switch — the determinism contract the cluster layer builds on.
func TestDeterministicReplay(t *testing.T) {
	run := func() []sim.Time {
		p := DefaultParams()
		p.UplinkGbps = 10
		eng, sw, sinks := newTestSwitch(t, p, 4)
		for i := 0; i < 64; i++ {
			src := i % 4
			sw.Port(src).Send(&netsim.Packet{Bytes: 200 + 37*i, Flow: (i * 7) % 4, Seq: int64(i)})
			eng.Run(sim.Time(i) * 100)
		}
		eng.Run(sim.Second)
		var all []sim.Time
		for _, s := range sinks {
			all = append(all, s.at...)
		}
		return all
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay delivered %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d at %v vs %v", i, a[i], b[i])
		}
	}
}

func TestResetStats(t *testing.T) {
	eng, sw, _ := newTestSwitch(t, DefaultParams(), 2)
	sw.Port(0).Send(&netsim.Packet{Bytes: 1500, Flow: 1})
	eng.Run(sim.Second)
	sw.ResetStats()
	if sw.Forwarded != 0 || sw.Port(0).TxPkts != 0 || sw.Port(1).RxPkts != 0 || sw.UplinkBusy != 0 {
		t.Fatal("ResetStats left counters non-zero")
	}
}
