// Package fabric models a rack-scale switched network: an
// output-queued top-of-rack switch connecting many host NICs, with
// per-port serialization, optional shared-uplink (backplane)
// contention, bounded egress queues and deterministic FIFO
// arbitration. It generalizes netsim's two-endpoint point-to-point
// Link to N endpoints; a fabric Port satisfies netsim.Sender, so the
// vhost back-end transmits through it exactly as through a Link port.
//
// The switch is output-queued: a frame arriving on an ingress port is
// serialized at the ingress line rate, optionally crosses the shared
// uplink (whose finite rate models an oversubscribed backplane), is
// routed to an egress port, and then waits for that port's wire. All
// contention is resolved at Send time through per-resource busy-until
// bookkeeping — the same technique netsim.Port uses — so arbitration
// is FIFO in event order and the whole fabric stays deterministic
// under the engine's (time, seq) ordering.
package fabric

import (
	"fmt"

	"es2/internal/netsim"
	"es2/internal/sim"
)

// Params configures the switch.
type Params struct {
	// PortGbps is the per-port line rate in gigabits per second
	// (default 40, matching the paper's 40GbE NICs).
	PortGbps float64
	// UplinkGbps is the shared backplane rate crossed by every
	// forwarded frame. Zero (the default) models a non-blocking
	// switch; a finite value models oversubscription.
	UplinkGbps float64
	// Delay is the port-to-port forwarding latency (propagation plus
	// switch pipeline; default 4µs — two NIC hops and a store-and-
	// forward stage).
	Delay sim.Time
	// QueueCap bounds each egress port's queue in frames; a frame
	// routed to a full egress queue is dropped (tail drop, default
	// 4096).
	QueueCap int
}

// DefaultParams returns the defaults described on Params.
func DefaultParams() Params {
	return Params{PortGbps: 40, Delay: 4 * sim.Microsecond, QueueCap: 4096}
}

// Router decides the egress port index for a frame arriving from src.
// Returning ok=false drops the frame (no route).
type Router func(src *Port, p *netsim.Packet) (egress int, ok bool)

// Switch is one output-queued switch.
type Switch struct {
	eng    *sim.Engine
	params Params
	// rates in bytes per nanosecond (uplinkRate 0 = non-blocking).
	portRate   float64
	uplinkRate float64
	ports      []*Port
	router     Router

	uplinkBusyUntil sim.Time

	// Forwarded counts frames that reached an egress wire; RouteDrops
	// counts frames the router refused; UplinkBytes counts traffic
	// crossing the backplane; UplinkBusy accumulates backplane
	// serialization time (utilization = UplinkBusy / window after a
	// ResetStats at window start).
	Forwarded   uint64
	RouteDrops  uint64
	UplinkBytes uint64
	UplinkBusy  sim.Time
}

// New creates a switch. Ports are added with AddPort and the
// forwarding decision installed with SetRouter before traffic flows.
func New(eng *sim.Engine, params Params) *Switch {
	if params.PortGbps <= 0 {
		params.PortGbps = 40
	}
	if params.QueueCap <= 0 {
		params.QueueCap = 4096
	}
	sw := &Switch{
		eng:      eng,
		params:   params,
		portRate: params.PortGbps / 8.0, // Gbit/s == bit/ns; /8 for bytes
	}
	if params.UplinkGbps > 0 {
		sw.uplinkRate = params.UplinkGbps / 8.0
	}
	return sw
}

// SetRouter installs the forwarding decision.
func (sw *Switch) SetRouter(r Router) { sw.router = r }

// AddPort attaches an endpoint (a host NIC's receive side) and returns
// its port, whose Send is the NIC's transmit side. Ports are indexed
// in creation order.
func (sw *Switch) AddPort(name string, dst netsim.Endpoint) *Port {
	p := &Port{sw: sw, index: len(sw.ports), name: name, dst: dst}
	sw.ports = append(sw.ports, p)
	return p
}

// NumPorts returns the port count.
func (sw *Switch) NumPorts() int { return len(sw.ports) }

// Port returns port i.
func (sw *Switch) Port(i int) *Port { return sw.ports[i] }

// Params returns the configured parameters (after defaulting).
func (sw *Switch) Params() Params { return sw.params }

// ResetStats zeroes the switch-level and per-port counters (called at
// the start of the measurement window). Busy-until bookkeeping is
// untouched: in-flight frames keep their timing.
func (sw *Switch) ResetStats() {
	sw.Forwarded, sw.RouteDrops, sw.UplinkBytes, sw.UplinkBusy = 0, 0, 0, 0
	for _, p := range sw.ports {
		p.TxPkts, p.TxBytes, p.RxPkts, p.RxBytes, p.EgressDrops = 0, 0, 0, 0, 0
		p.LinkDrops, p.BlackholeDrops = 0, 0
	}
}

// Port is one switch port: a host NIC's attachment point. Send is the
// host's transmit direction; frames routed here are delivered to the
// attached endpoint.
type Port struct {
	sw    *Switch
	index int
	name  string
	dst   netsim.Endpoint

	ingressBusyUntil sim.Time
	egressBusyUntil  sim.Time
	egressQueued     int

	// Chaos impairment windows (see SetLinkDown/SetDegraded/
	// SetBlackhole). Each is an absolute instant; the impairment is
	// active while the clock is before it.
	downUntil      sim.Time
	degradeUntil   sim.Time
	degradeFactor  float64
	blackholeUntil sim.Time

	// TxPkts/TxBytes count frames sent into the switch by this port's
	// host; RxPkts/RxBytes count frames delivered out to it;
	// EgressDrops counts tail drops at this port's egress queue.
	TxPkts, TxBytes uint64
	RxPkts, RxBytes uint64
	EgressDrops     uint64

	// LinkDrops counts frames lost to a down link (either direction,
	// including frames already in flight toward this port when it went
	// down); BlackholeDrops counts frames silently discarded at this
	// port's egress during a blackhole window.
	LinkDrops      uint64
	BlackholeDrops uint64

	// SendFault, when non-nil, is consulted once per frame after the
	// send is counted — the same wire-fault hook netsim.Port exposes;
	// the fault injector owns the closure and its accounting.
	SendFault func() netsim.FaultAction
}

// Index returns the port's index in creation order.
func (p *Port) Index() int { return p.index }

// Name returns the port's label.
func (p *Port) Name() string { return p.name }

// SetLinkDown takes the port's link down until the given instant:
// frames the host sends and frames routed toward it — including
// frames already serialized and in flight when the link drops — are
// discarded and counted in LinkDrops. Repeated calls extend, never
// shorten, the window.
func (p *Port) SetLinkDown(until sim.Time) {
	if until > p.downUntil {
		p.downUntil = until
	}
}

// SetDegraded runs the port's wire at factor (in (0, 1)) of its line
// rate until the given instant, in both directions.
func (p *Port) SetDegraded(until sim.Time, factor float64) {
	p.degradeUntil = until
	p.degradeFactor = factor
}

// SetBlackhole silently discards frames routed to this port's egress
// until the given instant — the switch-side failure mode where the
// host's own transmissions still pass. Repeated calls extend the
// window.
func (p *Port) SetBlackhole(until sim.Time) {
	if until > p.blackholeUntil {
		p.blackholeUntil = until
	}
}

// LinkDown reports whether the port's link is down right now.
func (p *Port) LinkDown() bool { return p.sw.eng.Now() < p.downUntil }

// Impaired reports whether frames routed to this port are currently
// being discarded (down link or blackholed egress). A degraded port is
// slow, not impaired.
func (p *Port) Impaired() bool {
	now := p.sw.eng.Now()
	return now < p.downUntil || now < p.blackholeUntil
}

// lineRate returns the port's effective line rate at the given
// instant, honoring an active degradation window.
func (p *Port) lineRate(at sim.Time) float64 {
	if at < p.degradeUntil {
		return p.sw.portRate * p.degradeFactor
	}
	return p.sw.portRate
}

// serTime returns the serialization time of n bytes at rate bytes/ns,
// floored at 1ns like netsim.
func serTime(n int, rate float64) sim.Time {
	t := sim.Time(float64(n) / rate)
	if t < 1 {
		t = 1
	}
	return t
}

// Send implements netsim.Sender: the frame is serialized at the
// ingress wire, crosses the shared uplink, is routed, queues at the
// egress port, is serialized there and delivered after the forwarding
// delay. All resource bookkeeping happens synchronously here, so
// frames arbitrate FIFO in event order.
func (p *Port) Send(pkt *netsim.Packet) {
	sw := p.sw
	if sw.router == nil {
		panic("fabric: switch has no router")
	}
	now := sw.eng.Now()
	pkt.Sent = now
	p.TxPkts++
	p.TxBytes += uint64(pkt.Bytes)

	// A down link cannot transmit at all: the frame dies in the NIC
	// without occupying the wire.
	if now < p.downUntil {
		p.LinkDrops++
		return
	}

	// Ingress serialization at the sending NIC's line rate. The wire
	// time is paid before the fault hook fires, mirroring netsim.Port:
	// a dropped frame still occupied the sender's wire.
	start := now
	if p.ingressBusyUntil > start {
		start = p.ingressBusyUntil
	}
	inDone := start + serTime(pkt.Bytes, p.lineRate(now))
	p.ingressBusyUntil = inDone

	dup := false
	if p.SendFault != nil {
		switch p.SendFault() {
		case netsim.FaultDrop:
			return
		case netsim.FaultDup:
			dup = true
		}
	}

	// Shared uplink: every forwarded frame crosses the backplane once.
	upDone := inDone
	if sw.uplinkRate > 0 {
		us := upDone
		if sw.uplinkBusyUntil > us {
			us = sw.uplinkBusyUntil
		}
		ut := serTime(pkt.Bytes, sw.uplinkRate)
		upDone = us + ut
		sw.uplinkBusyUntil = upDone
		sw.UplinkBusy += ut
	}
	sw.UplinkBytes += uint64(pkt.Bytes)

	ei, ok := sw.router(p, pkt)
	if !ok || ei < 0 || ei >= len(sw.ports) {
		sw.RouteDrops++
		return
	}
	out := sw.ports[ei]
	if out.dst == nil {
		panic(fmt.Sprintf("fabric: port %d (%s) has no attached endpoint", ei, out.name))
	}

	// Chaos impairments at the egress: a down link drops visibly (the
	// counter is the flap's blast radius), a blackhole drops silently
	// at the switch.
	if now < out.downUntil {
		out.LinkDrops++
		return
	}
	if now < out.blackholeUntil {
		out.BlackholeDrops++
		return
	}

	// Egress admission: tail drop at a full output queue.
	if out.egressQueued >= sw.params.QueueCap {
		out.EgressDrops++
		return
	}
	out.egressQueued++

	es := upDone
	if out.egressBusyUntil > es {
		es = out.egressBusyUntil
	}
	outDone := es + serTime(pkt.Bytes, out.lineRate(now))
	out.egressBusyUntil = outDone
	sw.Forwarded++

	// Annotate the causal chain with the fabric traversal; the transit
	// time itself lands in the chain's wire segment at delivery.
	pkt.Chain.AddHop()
	if dup {
		pkt.Chain.AddHop()
	}

	deliverAt := outDone + sw.params.Delay
	dst := out.dst
	if dup {
		// Link-level duplication: the copy rides the same egress slot.
		q := *pkt
		sw.eng.At(deliverAt, func() {
			if deliverAt < out.downUntil {
				out.LinkDrops++
				return
			}
			out.RxPkts++
			out.RxBytes += uint64(q.Bytes)
			dst.Receive(&q)
		})
	}
	sw.eng.At(deliverAt, func() {
		out.egressQueued--
		// The link may have dropped while the frame was in flight on
		// the egress wire; those bits are lost too.
		if deliverAt < out.downUntil {
			out.LinkDrops++
			return
		}
		out.RxPkts++
		out.RxBytes += uint64(pkt.Bytes)
		dst.Receive(pkt)
	})
}

// QueueDelay reports how long a frame sent now would wait before its
// ingress serialization starts.
func (p *Port) QueueDelay() sim.Time {
	if d := p.ingressBusyUntil - p.sw.eng.Now(); d > 0 {
		return d
	}
	return 0
}

// EgressQueued reports frames currently committed to this port's
// egress queue (scheduled but not yet delivered).
func (p *Port) EgressQueued() int { return p.egressQueued }
