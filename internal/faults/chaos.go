package faults

import (
	"fmt"
	"math"
	"time"

	"es2/internal/sim"
)

// ChaosSpec configures rack-scale fault timelines for a cluster run.
// Where Spec injects micro-faults (a dropped frame, a lost kick),
// ChaosSpec injects macro-faults: whole-host crash and freeze windows,
// fabric link flaps and rate degradation, and switch egress
// blackholing. The zero value injects nothing.
//
// Each configured kind contributes its count of events to one shared
// timeline. Event order is shuffled, inter-fault gaps are drawn
// uniformly from [MinGap, MaxGap], and each event's duration is drawn
// uniformly from [0.5, 1.5) times the kind's configured mean — all off
// a generator forked once from the cluster seed, so a chaotic run
// replays byte-identically.
type ChaosSpec struct {
	// HostCrashes fail-stops a uniformly chosen host: its scheduler
	// freezes (vCPUs and vhost workers preempted and not re-dispatched),
	// its fabric port goes down both directions, and every device
	// backlog is discarded. After CrashDown (mean) the host recovers
	// warm: RAM-resident state (virtqueues, flow tables) survives.
	HostCrashes int
	CrashDown   time.Duration

	// HostFreezes halts a host's scheduler without touching its link
	// or backlogs — the VM-exit storm / hard-lockup case where frames
	// keep arriving and pile up until the host thaws after FreezeFor
	// (mean).
	HostFreezes int
	FreezeFor   time.Duration

	// LinkFlaps take a uniformly chosen port's link down for FlapDown
	// (mean): frames in both directions are dropped and counted, the
	// host itself keeps running.
	LinkFlaps int
	FlapDown  time.Duration

	// LinkDegrades run a chosen port at DegradeFactor of its line rate
	// for DegradeFor (mean). DegradeFactor must be in (0, 1).
	LinkDegrades  int
	DegradeFor    time.Duration
	DegradeFactor float64

	// Blackholes silently discard frames routed toward a chosen
	// port's egress for BlackholeFor (mean) — the switch-side failure
	// where the host's own transmissions still pass.
	Blackholes   int
	BlackholeFor time.Duration

	// MinGap and MaxGap bound the inter-fault gap along the timeline.
	// The first fault starts one gap after the warmup boundary.
	MinGap time.Duration
	MaxGap time.Duration
}

// Per-kind event counts and episode means are capped so a validated
// timeline always fits a sane measurement window and fuzzing cannot
// request unbounded schedules.
const (
	maxChaosPerKind = 16
	maxChaosDur     = time.Hour
)

// Enabled reports whether any chaos event is configured.
func (s ChaosSpec) Enabled() bool {
	return s.HostCrashes > 0 || s.HostFreezes > 0 || s.LinkFlaps > 0 ||
		s.LinkDegrades > 0 || s.Blackholes > 0
}

// Events returns the total number of timeline events the spec injects.
func (s ChaosSpec) Events() int {
	return s.HostCrashes + s.HostFreezes + s.LinkFlaps + s.LinkDegrades + s.Blackholes
}

// Validate checks the spec's internal consistency. Whether the
// worst-case timeline fits the measurement window needs the cluster
// duration and lives in the es2 package's spec validation.
func (s ChaosSpec) Validate() error {
	kinds := []struct {
		name  string
		count int
		mean  time.Duration
	}{
		{"HostCrash", s.HostCrashes, s.CrashDown},
		{"HostFreeze", s.HostFreezes, s.FreezeFor},
		{"LinkFlap", s.LinkFlaps, s.FlapDown},
		{"LinkDegrade", s.LinkDegrades, s.DegradeFor},
		{"Blackhole", s.Blackholes, s.BlackholeFor},
	}
	for _, k := range kinds {
		if k.count < 0 {
			return fmt.Errorf("faults: %s count must be non-negative, got %d", k.name, k.count)
		}
		if k.count > maxChaosPerKind {
			return fmt.Errorf("faults: at most %d %s events per run, got %d", maxChaosPerKind, k.name, k.count)
		}
		if k.mean < 0 || k.mean > maxChaosDur {
			return fmt.Errorf("faults: %s duration must be in [0, %v], got %v", k.name, maxChaosDur, k.mean)
		}
		if k.count > 0 && k.mean <= 0 {
			return fmt.Errorf("faults: %d %s events configured but the episode duration is zero", k.count, k.name)
		}
		if k.mean > 0 && k.count == 0 {
			return fmt.Errorf("faults: %s duration is set but the event count is zero", k.name)
		}
	}
	if s.LinkDegrades > 0 {
		if math.IsNaN(s.DegradeFactor) || s.DegradeFactor <= 0 || s.DegradeFactor >= 1 {
			return fmt.Errorf("faults: DegradeFactor must be in (0, 1), got %v", s.DegradeFactor)
		}
	} else if s.DegradeFactor != 0 {
		return fmt.Errorf("faults: DegradeFactor is set but LinkDegrades is zero")
	}
	if s.MinGap < 0 || s.MinGap > maxChaosDur {
		return fmt.Errorf("faults: MinGap must be in [0, %v], got %v", maxChaosDur, s.MinGap)
	}
	if s.MaxGap < 0 || s.MaxGap > maxChaosDur {
		return fmt.Errorf("faults: MaxGap must be in [0, %v], got %v", maxChaosDur, s.MaxGap)
	}
	if s.Enabled() && s.MaxGap < s.MinGap {
		return fmt.Errorf("faults: MaxGap (%v) must be at least MinGap (%v)", s.MaxGap, s.MinGap)
	}
	if !s.Enabled() && (s.MinGap != 0 || s.MaxGap != 0) {
		return fmt.Errorf("faults: chaos gaps are set but no chaos events are configured")
	}
	return nil
}

// MaxTimelineEnd bounds the latest instant (relative to warmup end) at
// which any event of a valid timeline can still be in effect: every
// gap at MaxGap plus the largest possible episode length. Counts and
// durations are capped, so this cannot overflow.
func (s ChaosSpec) MaxTimelineEnd() time.Duration {
	end := time.Duration(s.Events()) * s.MaxGap
	longest := time.Duration(0)
	for _, mean := range []time.Duration{s.CrashDown, s.FreezeFor, s.FlapDown, s.DegradeFor, s.BlackholeFor} {
		if d := maxEpisode(mean); d > longest {
			longest = d
		}
	}
	return end + longest
}

// maxEpisode is the upper bound of episodeLen's draw for a mean.
func maxEpisode(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	d := mean/2 + mean // exclusive upper bound of uniform [0.5, 1.5)*mean
	if d < time.Duration(minEpisode) {
		d = time.Duration(minEpisode)
	}
	return d
}

// ChaosKind identifies one macro-fault class.
type ChaosKind int

const (
	ChaosHostCrash ChaosKind = iota
	ChaosHostFreeze
	ChaosLinkFlap
	ChaosLinkDegrade
	ChaosBlackhole
)

// String returns the stable snake_case name used in reports, metric
// labels and blame rows.
func (k ChaosKind) String() string {
	switch k {
	case ChaosHostCrash:
		return "host_crash"
	case ChaosHostFreeze:
		return "host_freeze"
	case ChaosLinkFlap:
		return "link_flap"
	case ChaosLinkDegrade:
		return "link_degrade"
	case ChaosBlackhole:
		return "egress_blackhole"
	}
	return fmt.Sprintf("chaos(%d)", int(k))
}

// ChaosEvent is one scheduled macro-fault. At is relative to warmup
// end; Target is a host (and therefore port) index.
type ChaosEvent struct {
	At       sim.Time
	Kind     ChaosKind
	Target   int
	Duration sim.Time
	Factor   float64 // degrade only
}

// BuildTimeline materializes the spec into a concrete, time-ordered
// event list for a cluster of the given host count. All draws come
// from rng, which the caller forks exactly once from the cluster seed.
func (s ChaosSpec) BuildTimeline(rng *sim.Rand, hosts int) []ChaosEvent {
	kinds := make([]ChaosKind, 0, s.Events())
	for i := 0; i < s.HostCrashes; i++ {
		kinds = append(kinds, ChaosHostCrash)
	}
	for i := 0; i < s.HostFreezes; i++ {
		kinds = append(kinds, ChaosHostFreeze)
	}
	for i := 0; i < s.LinkFlaps; i++ {
		kinds = append(kinds, ChaosLinkFlap)
	}
	for i := 0; i < s.LinkDegrades; i++ {
		kinds = append(kinds, ChaosLinkDegrade)
	}
	for i := 0; i < s.Blackholes; i++ {
		kinds = append(kinds, ChaosBlackhole)
	}
	order := rng.Perm(len(kinds))
	events := make([]ChaosEvent, 0, len(kinds))
	t := sim.Time(0)
	for _, ki := range order {
		kind := kinds[ki]
		gap := sim.DurationOf(s.MinGap)
		if span := s.MaxGap - s.MinGap; span > 0 {
			gap += rng.Duration(sim.DurationOf(span) + 1)
		}
		t += gap
		if t == 0 {
			// Keep every event strictly after the warmup boundary so
			// warmup reset always precedes the first fault.
			t = 1
		}
		var mean time.Duration
		switch kind {
		case ChaosHostCrash:
			mean = s.CrashDown
		case ChaosHostFreeze:
			mean = s.FreezeFor
		case ChaosLinkFlap:
			mean = s.FlapDown
		case ChaosLinkDegrade:
			mean = s.DegradeFor
		case ChaosBlackhole:
			mean = s.BlackholeFor
		}
		ev := ChaosEvent{
			At:       t,
			Kind:     kind,
			Target:   rng.Intn(hosts),
			Duration: episodeLen(rng, mean),
		}
		if kind == ChaosLinkDegrade {
			ev.Factor = s.DegradeFactor
		}
		events = append(events, ev)
	}
	return events
}

// episodeLen draws a bounded episode length: uniform in [0.5, 1.5) of
// the mean (a crash that could last 20x its mean, as an exponential
// draw allows, would not fit any validated window), floored at the
// injector-wide minimum episode.
func episodeLen(rng *sim.Rand, mean time.Duration) sim.Time {
	m := sim.DurationOf(mean)
	d := m/2 + rng.Duration(m)
	if d < minEpisode {
		d = minEpisode
	}
	return d
}
