package faults

import (
	"strings"
	"testing"
	"time"

	"es2/internal/netsim"
	"es2/internal/sim"
	"es2/internal/virtio"
)

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"zero", Spec{}, true},
		{"probs", Spec{PacketLossProb: 0.1, PacketDupProb: 0.1, LostKickProb: 1, LostSignalProb: 0.5}, true},
		{"episodes", Spec{VhostStallEvery: time.Millisecond, VhostStall: 100 * time.Microsecond,
			PIOutageEvery: time.Millisecond, PIOutage: 100 * time.Microsecond,
			PreemptStormEvery: time.Millisecond, PreemptStorm: 100 * time.Microsecond}, true},
		{"loss>1", Spec{PacketLossProb: 1.5}, false},
		{"loss<0", Spec{PacketLossProb: -0.1}, false},
		{"loss NaN", Spec{PacketLossProb: nan()}, false},
		{"loss+dup>1", Spec{PacketLossProb: 0.7, PacketDupProb: 0.7}, false},
		{"kick>1", Spec{LostKickProb: 2}, false},
		{"signal NaN", Spec{LostSignalProb: nan()}, false},
		{"stall without every", Spec{VhostStall: time.Millisecond}, false},
		{"every without stall", Spec{VhostStallEvery: time.Millisecond}, false},
		{"negative every", Spec{VhostStallEvery: -time.Millisecond, VhostStall: time.Millisecond}, false},
		{"pi without every", Spec{PIOutage: time.Millisecond}, false},
		{"storm without every", Spec{PreemptStorm: time.Millisecond}, false},
		{"cores without storm", Spec{StormCores: []int{0}}, false},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected an error", c.name)
		}
	}
}

func nan() float64 {
	var z float64
	return z / z
}

func TestSpecEnabled(t *testing.T) {
	if (Spec{}).Enabled() {
		t.Fatal("zero spec must be disabled")
	}
	if (Spec{NoRecovery: true}).Enabled() {
		t.Fatal("NoRecovery alone must not enable injection")
	}
	for _, s := range []Spec{
		{PacketLossProb: 0.1},
		{PacketDupProb: 0.1},
		{LostKickProb: 0.1},
		{LostSignalProb: 0.1},
		{VhostStallEvery: time.Millisecond, VhostStall: time.Microsecond},
		{PIOutageEvery: time.Millisecond, PIOutage: time.Microsecond},
		{PreemptStormEvery: time.Millisecond, PreemptStorm: time.Microsecond},
	} {
		if !s.Enabled() {
			t.Fatalf("spec %+v should be enabled", s)
		}
	}
}

// TestInjectorDrawsAreIsolated verifies that attaching the injector
// forks the RNG exactly once: the parent stream continues from the
// same point whether or not the injector draws from its fork.
func TestInjectorDrawsAreIsolated(t *testing.T) {
	seq := func(draw bool) []float64 {
		eng := sim.NewEngine(7)
		inj := NewInjector(eng, eng.Rand(), Spec{PacketLossProb: 0.5})
		if draw {
			q := virtio.New("q", 8)
			inj.AttachQueue(q)
			for i := 0; i < 100; i++ {
				inj.rng.Float64()
			}
		}
		out := make([]float64, 8)
		for i := range out {
			out[i] = eng.Rand().Float64()
		}
		return out
	}
	a, b := seq(false), seq(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("parent stream diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPortFaultCounting(t *testing.T) {
	eng := sim.NewEngine(3)
	link := netsim.NewLink(eng, 40, sim.Microsecond)
	var got int
	link.Attach(
		netsim.EndpointFunc(func(p *netsim.Packet) {}),
		netsim.EndpointFunc(func(p *netsim.Packet) { got++ }),
	)
	inj := NewInjector(eng, eng.Rand(), Spec{PacketLossProb: 0.5})
	inj.AttachPort(link.PortA())
	const n = 2000
	for i := 0; i < n; i++ {
		link.PortA().Send(&netsim.Packet{Bytes: 100})
	}
	eng.Run(sim.Second)
	if inj.Counters.WireDrops == 0 {
		t.Fatal("no drops injected at 50% loss")
	}
	if got+int(inj.Counters.WireDrops) != n {
		t.Fatalf("delivered %d + dropped %d != sent %d", got, inj.Counters.WireDrops, n)
	}
	// Loss rate should be in the right ballpark for 2000 trials.
	if inj.Counters.WireDrops < n/4 || inj.Counters.WireDrops > 3*n/4 {
		t.Fatalf("drop count %d implausible for p=0.5", inj.Counters.WireDrops)
	}
}

func TestQueueFaultCounting(t *testing.T) {
	eng := sim.NewEngine(4)
	q := virtio.New("q", 64)
	kicked := 0
	q.OnKick(func() { kicked++ })
	inj := NewInjector(eng, eng.Rand(), Spec{LostKickProb: 0.5})
	inj.AttachQueue(q)
	const n = 1000
	for i := 0; i < n; i++ {
		q.Add(virtio.Desc{Len: 1})
		q.Kick()
		for {
			if _, ok := q.Pop(); !ok {
				break
			}
			q.PushUsed(virtio.Desc{Len: 1})
		}
	}
	if q.Kicks != n {
		t.Fatalf("kicks counted %d, want %d (faults must fire after counting)", q.Kicks, n)
	}
	if kicked+int(inj.Counters.LostKicks) != n {
		t.Fatalf("delivered %d + lost %d != %d", kicked, inj.Counters.LostKicks, n)
	}
	if inj.Counters.LostKicks == 0 {
		t.Fatal("no kicks lost at p=0.5")
	}
}

func TestForceKickBypassesFault(t *testing.T) {
	eng := sim.NewEngine(5)
	q := virtio.New("q", 8)
	kicked := 0
	q.OnKick(func() { kicked++ })
	inj := NewInjector(eng, eng.Rand(), Spec{LostKickProb: 1})
	inj.AttachQueue(q)
	q.Add(virtio.Desc{Len: 1})
	if !q.Kick() {
		t.Fatal("kick must still report delivered (the guest paid the exit)")
	}
	if kicked != 0 {
		t.Fatal("lost kick must not invoke the callback")
	}
	q.ForceKick()
	if kicked != 1 {
		t.Fatal("ForceKick must bypass the fault hook")
	}
}

func TestCheckerTicksAndPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	chk := NewChecker(eng, sim.Millisecond)
	chk.Add("ok", func() error { return nil })
	chk.Start()
	eng.Run(10 * sim.Millisecond)
	if chk.Ticks == 0 {
		t.Fatal("checker never ticked")
	}

	eng2 := sim.NewEngine(1)
	chk2 := NewChecker(eng2, sim.Millisecond)
	fail := false
	chk2.Add("bad", func() error {
		if fail {
			return errTest
		}
		return nil
	})
	chk2.Start()
	eng2.Run(2 * sim.Millisecond)
	fail = true
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("violated invariant must panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "[bad]") || !strings.Contains(msg, "invariant violated") {
			t.Fatalf("panic message %v missing check name", r)
		}
	}()
	eng2.Run(10 * sim.Millisecond)
}

var errTest = &checkErr{}

type checkErr struct{}

func (*checkErr) Error() string { return "boom" }
