package faults

import (
	"fmt"

	"es2/internal/sim"
)

// Checker is an opt-in runtime invariant checker. It runs as a
// periodic engine event so it sees quiescent inter-event state, calls
// every registered check, and panics on the first violation: an
// invariant failure is a simulator bug, not a scenario outcome.
//
// The checker itself verifies sim-clock monotonicity; layer-specific
// invariants (virtqueue accounting, APIC ISR/IRR discipline, scheduler
// list consistency) are registered by the runner via Add.
type Checker struct {
	eng    *sim.Engine
	period sim.Time
	checks []namedCheck
	last   sim.Time
	// Ticks counts completed check sweeps (all checks passed).
	Ticks uint64
}

type namedCheck struct {
	name string
	fn   func() error
}

// NewChecker creates a checker that sweeps every period.
func NewChecker(eng *sim.Engine, period sim.Time) *Checker {
	if period <= 0 {
		panic("faults: checker period must be positive")
	}
	return &Checker{eng: eng, period: period}
}

// Add registers a named invariant. Call during deterministic build.
func (c *Checker) Add(name string, fn func() error) {
	c.checks = append(c.checks, namedCheck{name, fn})
}

// Start arms the periodic sweep.
func (c *Checker) Start() {
	c.last = c.eng.Now()
	c.eng.After(c.period, c.tick)
}

func (c *Checker) tick() {
	now := c.eng.Now()
	if now < c.last {
		panic(fmt.Sprintf("es2: invariant violated at %v [sim-clock]: clock moved backwards from %v", now, c.last))
	}
	c.last = now
	for _, ch := range c.checks {
		if err := ch.fn(); err != nil {
			panic(fmt.Sprintf("es2: invariant violated at %v [%s]: %v", now, ch.name, err))
		}
	}
	c.Ticks++
	c.eng.After(c.period, c.tick)
}
