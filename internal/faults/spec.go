// Package faults implements deterministic fault injection for the
// simulated event path. Every fault is drawn from a generator forked
// off the scenario's seeded RNG, so a faulted run replays
// byte-identically: the same spec and seed drop the same packets, lose
// the same kicks and stall the same workers at the same instants.
//
// The injectable faults mirror the failure modes the paper's event
// path is fragile against:
//
//   - wire packet loss and duplication (cable/NIC-level corruption);
//   - lost virtqueue kicks and lost device→guest signals (the classic
//     lost-interrupt race: the notification cost is paid but the edge
//     never arrives);
//   - vhost I/O-thread stalls (the worker blocks in the kernel);
//   - per-vCPU posted-interrupt facility outages (IOMMU/PI hardware
//     errata, forcing delivery back to the emulated path);
//   - noisy-neighbor preemption storms on chosen physical cores.
//
// The recovery mechanisms paired with each fault live in the layer
// that owns them (guest TX watchdog, transport retransmission, vhost
// re-poll, KVM PI fallback); this package only decides when faults
// happen and counts them.
package faults

import (
	"fmt"
	"math"
	"time"
)

// Spec configures the fault injector for one scenario. The zero value
// injects nothing. Probabilities are per event; *Every fields are mean
// intervals of an exponential (Poisson) process and pair with a mean
// episode length.
type Spec struct {
	// PacketLossProb drops each wire frame with this probability
	// (after serialization: the bits were sent but arrive corrupt).
	PacketLossProb float64
	// PacketDupProb delivers each wire frame twice with this
	// probability (link-level retransmit duplication).
	PacketDupProb float64

	// LostKickProb swallows each delivered virtqueue kick with this
	// probability: the guest pays for the doorbell (including the VM
	// exit, in notification mode) but the ioeventfd never fires — the
	// lost-interrupt race on the request path.
	LostKickProb float64
	// LostSignalProb swallows each delivered device→guest signal with
	// this probability: the back-end pays the irqfd write but the MSI
	// never reaches the guest.
	LostSignalProb float64

	// VhostStallEvery injects a stall into a uniformly chosen vhost
	// I/O thread on average every VhostStallEvery (exponential
	// inter-arrival); each stall blocks the worker for an
	// exponentially distributed time with mean VhostStall (the worker
	// stuck in a kernel allocation or host softirq).
	VhostStallEvery time.Duration
	VhostStall      time.Duration

	// PIOutageEvery takes each vCPU's posted-interrupt facility down
	// on average every PIOutageEvery, for an exponential episode with
	// mean PIOutage. While down, delivery falls back to the emulated
	// LAPIC path (and recovers when the episode ends).
	PIOutageEvery time.Duration
	PIOutage      time.Duration

	// PreemptStormEvery starts a noisy-neighbor episode on average
	// every PreemptStormEvery: high-weight burner threads on
	// StormCores (default: all VM cores) each run for an exponential
	// time with mean PreemptStorm, preempting the vCPUs and widening
	// the online/offline churn the redirector must track.
	PreemptStormEvery time.Duration
	PreemptStorm      time.Duration
	StormCores        []int

	// NoRecovery disables the paired recovery mechanisms (TX watchdog,
	// transport retransmission, vhost re-poll) so the raw damage of a
	// fault is observable. PI fallback cannot be disabled: losing
	// interrupts outright would wedge the guest model.
	NoRecovery bool
}

// Enabled reports whether any fault is configured.
func (s Spec) Enabled() bool {
	return s.PacketLossProb > 0 || s.PacketDupProb > 0 ||
		s.LostKickProb > 0 || s.LostSignalProb > 0 ||
		s.VhostStallEvery > 0 || s.PIOutageEvery > 0 ||
		s.PreemptStormEvery > 0
}

// Validate checks the spec's internal consistency. Core-range checks
// for StormCores need the scenario topology and live in the es2
// package's spec validation.
func (s Spec) Validate() error {
	probs := []struct {
		name string
		v    float64
	}{
		{"PacketLossProb", s.PacketLossProb},
		{"PacketDupProb", s.PacketDupProb},
		{"LostKickProb", s.LostKickProb},
		{"LostSignalProb", s.LostSignalProb},
	}
	for _, p := range probs {
		if math.IsNaN(p.v) || p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: %s must be in [0, 1], got %v", p.name, p.v)
		}
	}
	if s.PacketLossProb+s.PacketDupProb > 1 {
		return fmt.Errorf("faults: PacketLossProb+PacketDupProb must not exceed 1, got %v",
			s.PacketLossProb+s.PacketDupProb)
	}
	pairs := []struct {
		name  string
		every time.Duration
		mean  time.Duration
	}{
		{"VhostStall", s.VhostStallEvery, s.VhostStall},
		{"PIOutage", s.PIOutageEvery, s.PIOutage},
		{"PreemptStorm", s.PreemptStormEvery, s.PreemptStorm},
	}
	for _, p := range pairs {
		if p.every < 0 || p.mean < 0 {
			return fmt.Errorf("faults: %s interval and duration must be non-negative", p.name)
		}
		if p.every > 0 && p.mean <= 0 {
			return fmt.Errorf("faults: %sEvery is set but the %s episode length is zero", p.name, p.name)
		}
		if p.mean > 0 && p.every <= 0 {
			return fmt.Errorf("faults: %s episode length is set but %sEvery is zero", p.name, p.name)
		}
	}
	if len(s.StormCores) > 0 && s.PreemptStormEvery <= 0 {
		return fmt.Errorf("faults: StormCores is set but PreemptStormEvery is zero")
	}
	return nil
}

// Counters tallies injected faults. All counting happens here, in the
// injector's hooks, so the instrumented layers stay fault-agnostic.
type Counters struct {
	WireDrops     uint64
	WireDups      uint64
	LostKicks     uint64
	LostSignals   uint64
	VhostStalls   uint64
	PIOutages     uint64
	PreemptStorms uint64
}

// Injected returns the total number of injected fault events.
func (c Counters) Injected() uint64 {
	return c.WireDrops + c.WireDups + c.LostKicks + c.LostSignals +
		c.VhostStalls + c.PIOutages + c.PreemptStorms
}
