package faults

import (
	"fmt"

	"es2/internal/netsim"
	"es2/internal/profile"
	"es2/internal/sched"
	"es2/internal/sim"
	"es2/internal/vhost"
	"es2/internal/virtio"
	"es2/internal/vmm"
)

// minEpisode floors exponential draws so fault arrivals can never
// degenerate into a zero-delay event loop.
const minEpisode = sim.Microsecond

// stormChunk is the CPU chunk size of a noisy-neighbor burner; short
// enough that the fair scheduler interleaves it with vCPU slices.
const stormChunk = 100 * sim.Microsecond

// stormWeight makes storm threads 4x a nice-0 task, so an episode
// visibly displaces vCPU time rather than fair-sharing politely.
const stormWeight = 4 * sched.NiceZeroWeight

// Injector owns all fault decisions for one scenario. It draws from a
// private fork of the scenario RNG and installs hook closures into the
// instrumented layers; the layers themselves never see the Spec.
type Injector struct {
	eng  *sim.Engine
	rng  *sim.Rand
	spec Spec

	ios         []*vhost.IOThread
	vcpus       []*vmm.VCPU
	piDownUntil []sim.Time
	storms      []*stormSource

	// Counters is reset at warmup end so Result reports only the
	// measured window.
	Counters Counters
}

// NewInjector creates an injector for spec, forking the given RNG. The
// fork happens exactly once, so the parent stream seen by the rest of
// the simulation is perturbed identically on every run of the same
// spec.
func NewInjector(eng *sim.Engine, rng *sim.Rand, spec Spec) *Injector {
	return &Injector{eng: eng, rng: rng.Fork(), spec: spec}
}

// AttachPort installs wire loss/duplication on one netsim port.
func (inj *Injector) AttachPort(p *netsim.Port) {
	inj.AttachWire(func(fault func() netsim.FaultAction) { p.SendFault = fault })
}

// AttachWire installs wire loss/duplication through a setter owned by
// any wire-like layer exposing netsim's SendFault hook (a link port or
// a fabric switch port). The setter is not called when the spec
// injects no wire faults.
func (inj *Injector) AttachWire(install func(fault func() netsim.FaultAction)) {
	loss, dup := inj.spec.PacketLossProb, inj.spec.PacketDupProb
	if loss <= 0 && dup <= 0 {
		return
	}
	install(func() netsim.FaultAction {
		u := inj.rng.Float64()
		switch {
		case u < loss:
			inj.Counters.WireDrops++
			return netsim.FaultDrop
		case u < loss+dup:
			inj.Counters.WireDups++
			return netsim.FaultDup
		default:
			return netsim.FaultNone
		}
	})
}

// AttachQueue installs lost-kick and lost-signal faults on one
// virtqueue. The fault fires after the notification cost is paid, so
// the kick still counts and still exits — only the edge is lost,
// exactly like a swallowed ioeventfd/irqfd event.
func (inj *Injector) AttachQueue(q *virtio.Virtqueue) {
	if p := inj.spec.LostKickProb; p > 0 {
		q.DropKick = func() bool {
			if inj.rng.Float64() < p {
				inj.Counters.LostKicks++
				return true
			}
			return false
		}
	}
	if p := inj.spec.LostSignalProb; p > 0 {
		q.DropSignal = func() bool {
			if inj.rng.Float64() < p {
				inj.Counters.LostSignals++
				return true
			}
			return false
		}
	}
}

// AttachIOThread registers a vhost worker as a stall target.
func (inj *Injector) AttachIOThread(io *vhost.IOThread) {
	inj.ios = append(inj.ios, io)
}

// AttachVCPU registers a vCPU as a PI-outage target.
func (inj *Injector) AttachVCPU(v *vmm.VCPU) {
	inj.vcpus = append(inj.vcpus, v)
	inj.piDownUntil = append(inj.piDownUntil, 0)
}

// stormSource is a plain WorkSource burning CPU during storm episodes.
// It remembers its owning scheduler so a cluster run can storm several
// hosts (one scheduler each) from one injector.
type stormSource struct {
	sch       *sched.Scheduler
	thread    *sched.Thread
	remaining sim.Time
}

func (s *stormSource) NextChunk() sim.Time {
	if s.remaining <= 0 {
		return 0
	}
	if s.remaining < stormChunk {
		return s.remaining
	}
	return stormChunk
}

func (s *stormSource) Ran(d sim.Time) {
	s.remaining -= d
	if s.remaining < 0 {
		s.remaining = 0
	}
}

func (s *stormSource) ChunkDone() {}

// SetupStorms creates one burner thread per listed core of the given
// scheduler. Call during deterministic build; a cluster calls it once
// per host.
func (inj *Injector) SetupStorms(sch *sched.Scheduler, cores []int) {
	if inj.spec.PreemptStormEvery <= 0 {
		return
	}
	for _, c := range cores {
		src := &stormSource{sch: sch}
		src.thread = sch.NewThread(fmt.Sprintf("storm/core%d", c), c, stormWeight, src)
		inj.storms = append(inj.storms, src)
	}
}

// EnableProfiling attributes the burners' CPU as a "storm" occupant
// under their cores, so noisy-neighbor displacement is visible in the
// profile instead of leaking into idle. Call after SetupStorms.
func (inj *Injector) EnableProfiling(p *profile.Profiler) {
	for _, s := range inj.storms {
		n := p.Core(s.thread.Core()).Child("storm")
		s.thread.Prof = func() *profile.Node { return n }
	}
}

// EnableProfilingFor is EnableProfiling restricted to the burners of
// one scheduler — a cluster run holds one profiler per host, so each
// host's storms must attribute into its own profile.
func (inj *Injector) EnableProfilingFor(sch *sched.Scheduler, p *profile.Profiler) {
	for _, s := range inj.storms {
		if s.sch != sch {
			continue
		}
		n := p.Core(s.thread.Core()).Child("storm")
		s.thread.Prof = func() *profile.Node { return n }
	}
}

// Start arms the time-driven fault processes (stalls, PI outages,
// storms). Probability-driven faults are active from attach time.
func (inj *Injector) Start() {
	if inj.spec.VhostStallEvery > 0 && len(inj.ios) > 0 {
		inj.armStall()
	}
	if inj.spec.PIOutageEvery > 0 && len(inj.vcpus) > 0 {
		inj.armPIOutage()
	}
	if inj.spec.PreemptStormEvery > 0 && len(inj.storms) > 0 {
		inj.armStorm()
	}
}

// ResetCounters zeroes the fault tallies (called at warmup end).
func (inj *Injector) ResetCounters() { inj.Counters = Counters{} }

// exp draws an exponential duration with the given mean, floored so it
// can never be zero.
func (inj *Injector) exp(mean sim.Time) sim.Time {
	d := inj.rng.ExpDuration(mean)
	if d < minEpisode {
		d = minEpisode
	}
	return d
}

func (inj *Injector) armStall() {
	inj.eng.After(inj.exp(sim.DurationOf(inj.spec.VhostStallEvery)), func() {
		io := inj.ios[inj.rng.Intn(len(inj.ios))]
		inj.Counters.VhostStalls++
		io.InjectStall(inj.exp(sim.DurationOf(inj.spec.VhostStall)))
		inj.armStall()
	})
}

func (inj *Injector) armPIOutage() {
	inj.eng.After(inj.exp(sim.DurationOf(inj.spec.PIOutageEvery)), func() {
		i := inj.rng.Intn(len(inj.vcpus))
		v := inj.vcpus[i]
		d := inj.exp(sim.DurationOf(inj.spec.PIOutage))
		inj.Counters.PIOutages++
		until := inj.eng.Now() + d
		if until > inj.piDownUntil[i] {
			inj.piDownUntil[i] = until
		}
		v.SetPIAvailable(false)
		inj.eng.After(d, func() {
			// A later overlapping outage may have extended the episode.
			if inj.eng.Now() >= inj.piDownUntil[i] {
				v.SetPIAvailable(true)
			}
		})
		inj.armPIOutage()
	})
}

func (inj *Injector) armStorm() {
	inj.eng.After(inj.exp(sim.DurationOf(inj.spec.PreemptStormEvery)), func() {
		inj.Counters.PreemptStorms++
		for _, s := range inj.storms {
			s.remaining += inj.exp(sim.DurationOf(inj.spec.PreemptStorm))
			s.sch.Wake(s.thread)
		}
		inj.armStorm()
	})
}
