package guest

import (
	"es2/internal/apic"
	"es2/internal/netsim"
	"es2/internal/sim"
	"es2/internal/trace"
	"es2/internal/virtio"
	"es2/internal/vmm"
)

// QueuePair is one TX/RX virtqueue pair of a (possibly multiqueue)
// virtio-net device, with its own MSI-X vectors, interrupt affinity and
// NAPI context — the virtio-net multiqueue model, where queue i is
// affine to vCPU i so flows spread across vCPUs.
type QueuePair struct {
	Dev   *NetDev
	Index int
	TX    *virtio.Virtqueue
	RX    *virtio.Virtqueue

	// TXVector and RXVector are the queue's MSI-X vectors.
	TXVector apic.Vector
	RXVector apic.Vector
	// Affinity is the guest's interrupt-affinity for this queue (the
	// MSI destination vCPU). ES2's redirection overrides it at
	// kvm_set_msi_irq time.
	Affinity int

	napi      *NAPI
	txWaiters []func()

	// ep snapshots the most recent RX interrupt episode for the causal
	// analyzer: NAPI applies it to each collected chain that was
	// already waiting when the interrupt fired (see napi.poll).
	ep irqEpisode
}

// irqEpisode is one captured RX interrupt delivery: injection instant
// and mechanism, the handling vCPU's last sched-in, and handler entry.
type irqEpisode struct {
	inject  sim.Time
	schedIn sim.Time
	entry   sim.Time
	mech    apic.StampMech
	valid   bool
}

// NetDev is the guest's virtio-net front-end: one or more queue pairs
// plus the device-level policy flags.
type NetDev struct {
	Kern  *Kernel
	Pairs []*QueuePair

	// TX and RX alias the first queue pair's rings for the common
	// single-queue case.
	TX *virtio.Virtqueue
	RX *virtio.Virtqueue
	// Affinity aliases the first pair's affinity setting.
	Affinity int

	// DoorbellNoExit models direct device assignment (SR-IOV,
	// Section VII): the guest rings the VF's doorbell with a plain
	// MMIO write to the assigned BAR, which the IOMMU lets through
	// without a VM exit. Interrupt delivery is unchanged (and still
	// benefits from VT-d PI and redirection).
	DoorbellNoExit bool

	// TxKickExits counts kicks that became I/O-instruction exits.
	TxKickExits uint64
	// WatchdogFires counts TX watchdog re-kicks (see StartTxWatchdog).
	WatchdogFires uint64
	// LocalDrops counts packets dropped in the guest because the TX
	// ring was full (UDP semantics: drop, don't block).
	LocalDrops uint64
}

func newNetDev(k *Kernel, ringSize, queues int) *NetDev {
	if queues <= 0 {
		queues = 1
	}
	d := &NetDev{Kern: k}
	for qi := 0; qi < queues; qi++ {
		p := &QueuePair{
			Dev:   d,
			Index: qi,
			TX:    virtio.New("tx", ringSize),
			RX:    virtio.New("rx", ringSize),
			// virtio-net multiqueue affinity: queue i <-> vCPU i.
			Affinity: qi % len(k.VM.VCPUs),
		}
		p.napi = newNAPI(p, 64)

		// Allocate MSI-X vectors and register the ISRs in the guest IDT.
		p.RXVector = k.VM.AllocVector(vmm.ClassDevice, p.rxISR)
		p.TXVector = k.VM.AllocVector(vmm.ClassDevice, p.txISR)

		// Wire the device-side interrupt callbacks to KVM MSI injection.
		pp := p
		p.RX.OnInterrupt(func() {
			k.VM.K.InjectMSI(k.VM, apic.MSIMessage{
				Vector: pp.RXVector, Dest: pp.Affinity, Mode: apic.LowestPriority,
			})
		})
		p.TX.OnInterrupt(func() {
			k.VM.K.InjectMSI(k.VM, apic.MSIMessage{
				Vector: pp.TXVector, Dest: pp.Affinity, Mode: apic.LowestPriority,
			})
		})

		// The guest virtio-net driver normally runs with TX completion
		// interrupts suppressed (buffers are reclaimed opportunistically);
		// the interrupt is enabled only when the ring fills up.
		p.TX.SetNoInterrupt(true)

		// Pre-post the full RX ring.
		for i := 0; i < ringSize; i++ {
			p.RX.Add(virtio.Desc{})
		}
		d.Pairs = append(d.Pairs, p)
	}
	d.TX = d.Pairs[0].TX
	d.RX = d.Pairs[0].RX
	d.Affinity = d.Pairs[0].Affinity
	return d
}

// PairFor returns the queue pair a flow hashes to (the driver's
// select-queue function).
func (d *NetDev) PairFor(flow int) *QueuePair {
	if len(d.Pairs) == 1 {
		return d.Pairs[0]
	}
	idx := flow % len(d.Pairs)
	if idx < 0 {
		idx += len(d.Pairs)
	}
	return d.Pairs[idx]
}

// rxISR is the RX queue's interrupt handler: mask further RX interrupts
// and schedule this queue's NAPI on the vCPU that took the interrupt.
func (p *QueuePair) rxISR(v *vmm.VCPU) (cost sim.Time, fn func()) {
	if p.Dev.Kern.VM.K.Causal != nil {
		// Handler entry: snapshot the delivery episode while the
		// injection stamp is still current, so NAPI can attribute
		// signal/wakeup/delivery time to the buffers this interrupt
		// covers.
		if t0, mech, ok := v.LastInjection(); ok {
			p.ep = irqEpisode{
				inject: t0, mech: mech,
				schedIn: v.LastSchedIn(),
				entry:   p.Dev.Kern.Engine().Now(),
				valid:   true,
			}
		}
	}
	return p.Dev.Kern.Costs.IRQHandler, func() {
		p.RX.SetNoInterrupt(true)
		p.napi.schedule(v)
	}
}

// txISR handles the (rare) TX completion interrupt: reclaim and wake
// blocked senders, then re-suppress.
func (p *QueuePair) txISR(v *vmm.VCPU) (cost sim.Time, fn func()) {
	return p.Dev.Kern.Costs.IRQHandler, func() {
		p.TX.SetNoInterrupt(true)
		p.ReclaimTX()
		p.wakeTxWaiters()
	}
}

// ReclaimTX frees completed TX descriptors. The (small) per-buffer cost
// is folded into the caller's task, matching free_old_xmit running
// inside ndo_start_xmit.
func (p *QueuePair) ReclaimTX() int {
	n := len(p.TX.CollectUsed(0))
	if n > 0 {
		p.wakeTxWaiters()
	}
	return n
}

// WaitTX registers fn to run once when this queue's TX ring has space.
// The device requests a TX completion interrupt to guarantee progress.
func (p *QueuePair) WaitTX(fn func()) {
	p.txWaiters = append(p.txWaiters, fn)
	p.TX.SetNoInterrupt(false)
	// Double-check: completions may already be pending.
	if p.TX.UsedLen() > 0 {
		p.ReclaimTX()
	}
}

func (p *QueuePair) wakeTxWaiters() {
	if len(p.txWaiters) == 0 {
		return
	}
	ws := p.txWaiters
	p.txWaiters = nil
	for _, fn := range ws {
		fn()
	}
}

// NAPI returns the pair's NAPI context.
func (p *QueuePair) NAPI() *NAPI { return p.napi }

// Transmit enqueues p on the flow's TX ring from guest context on vCPU
// v and performs the virtio kick. In notification mode the kick traps
// (one I/O-instruction exit); when the back-end has suppressed
// notifications (actively servicing, ES2 polling mode) or the device is
// directly assigned, the kick is exit-less. It reports false when the
// ring is full (caller should WaitTX or drop).
func (d *NetDev) Transmit(v *vmm.VCPU, pkt *netsim.Packet) bool {
	p := d.PairFor(pkt.Flow)
	p.ReclaimTX()
	desc := virtio.Desc{Len: pkt.Bytes, Payload: pkt}
	if d.Kern.VM.K.Path != nil {
		// Doorbell write: the notify span opens. The mechanism tag
		// records, at ring time, whether this kick traps (exit-driven)
		// or is elided (back-end polling / direct doorbell).
		desc.SpanT = d.Kern.VM.K.Eng.Now()
		if d.DoorbellNoExit || p.TX.KickSuppressed() {
			desc.SpanMech = uint8(trace.MechPolled)
		} else {
			desc.SpanMech = uint8(trace.MechExit)
		}
	}
	if !p.TX.Add(desc) {
		p.TX.SetNoInterrupt(false) // need a completion interrupt to make progress
		return false
	}
	exitKick := !(d.DoorbellNoExit || p.TX.KickSuppressed())
	if pr := d.Kern.VM.K.Causal; pr != nil {
		// The doorbell closes the guest-side segment (client stack or
		// server service) and opens the notify span the vhost dequeue
		// will close.
		pr.MarkSend(pkt.Chain, d.Kern.VM.K.Eng.Now(), exitKick)
	}
	if !exitKick {
		p.TX.Kick() // direct doorbell or suppressed: no exit
		return true
	}
	d.TxKickExits++
	v.BeginExit(vmm.ExitIOInstruction, func() { p.TX.Kick() })
	return true
}

// TransmitOrDrop is Transmit with UDP semantics: a full ring drops the
// packet locally (qdisc overflow) instead of blocking.
func (d *NetDev) TransmitOrDrop(v *vmm.VCPU, p *netsim.Packet) bool {
	if d.Transmit(v, p) {
		return true
	}
	d.LocalDrops++
	return false
}

// WaitTXFlow registers fn on the queue pair the flow hashes to.
func (d *NetDev) WaitTXFlow(flow int, fn func()) { d.PairFor(flow).WaitTX(fn) }

// TXFullFor reports whether the flow's TX ring is full.
func (d *NetDev) TXFullFor(flow int) bool { return d.PairFor(flow).TX.Full() }

// ReclaimTX reclaims completed descriptors on the first pair
// (single-queue convenience).
func (d *NetDev) ReclaimTX() int { return d.Pairs[0].ReclaimTX() }

// WaitTX registers fn on the first pair (single-queue convenience).
func (d *NetDev) WaitTX(fn func()) { d.Pairs[0].WaitTX(fn) }

// NAPI returns the first pair's NAPI context (single-queue
// convenience).
func (d *NetDev) NAPI() *NAPI { return d.Pairs[0].napi }
