package guest

import (
	"es2/internal/netsim"
	"es2/internal/sim"
	"es2/internal/vmm"
)

// Packet kinds used by the simulated protocols. The external peer
// (workloads package) speaks the same constants.
const (
	KindTCPData = iota + 1
	KindTCPAck
	KindUDP
	KindEcho      // ICMP echo request
	KindEchoReply // ICMP echo reply
	KindSYN       // TCP connection request
	KindSYNACK    // TCP connection accept
	KindRequest   // application request (Memcached/HTTP) riding on TCP
	KindResponse  // application response
)

// FlowHandler is the guest-side protocol endpoint of one flow. RXCost
// is consulted while NAPI accounts the poll batch's CPU time; HandleRX
// performs the protocol action afterwards (in softirq context on vCPU
// v — outbound replies are transmitted from there).
type FlowHandler interface {
	RXCost(p *netsim.Packet) sim.Time
	HandleRX(p *netsim.Packet, v *vmm.VCPU)
}

// BatchHandler is an optional FlowHandler extension: BatchEnd runs once
// after each NAPI poll batch that contained packets for the flow. TCP
// receivers use it to emit one stretch ACK per batch, as GRO-coalesced
// receive paths do.
type BatchHandler interface {
	BatchEnd(v *vmm.VCPU)
}

// Kernel is one VM's guest operating system.
type Kernel struct {
	VM    *vmm.VM
	Costs Costs
	Dev   *NetDev

	flows      map[int]FlowHandler
	defaultFlo FlowHandler
	rng        *sim.Rand

	// RxDropsNoFlow counts packets that arrived for an unregistered
	// flow (dropped after the stack cost was paid).
	RxDropsNoFlow uint64

	// RetransmitRTO, when positive, enables TCP loss recovery: senders
	// created after it is set arm a go-back-N retransmission timer with
	// this base timeout. Zero (the default) models the paper's lossless
	// back-to-back testbed. Set before workloads are started.
	RetransmitRTO sim.Time
	// TCPRetransmits counts retransmission timeouts across all sender
	// flows of this kernel.
	TCPRetransmits uint64
}

// NewKernel boots a guest kernel on vm with a single virtio-net device
// of the given ring size (256 descriptors, the virtio-net default,
// when ringSize <= 0).
func NewKernel(vm *vmm.VM, costs Costs, ringSize int) *Kernel {
	return NewKernelQueues(vm, costs, ringSize, 1)
}

// NewKernelQueues boots a guest kernel whose virtio-net device has the
// given number of queue pairs (virtio-net multiqueue; queue i is
// affine to vCPU i%N).
func NewKernelQueues(vm *vmm.VM, costs Costs, ringSize, queues int) *Kernel {
	if ringSize <= 0 {
		ringSize = 256
	}
	k := &Kernel{
		VM: vm, Costs: costs,
		flows: make(map[int]FlowHandler),
		rng:   vm.K.Eng.Rand().Fork(),
	}
	k.Dev = newNetDev(k, ringSize, queues)
	return k
}

// JitterCost perturbs a nominal CPU cost by the kernel's cost-noise
// factor (±25%), modeling cache misses, branch behaviour and syscall
// variance. All guest-side task costs flow through this.
func (k *Kernel) JitterCost(c sim.Time) sim.Time { return k.rng.Jitter(c, 0.25) }

// RegisterFlow binds a flow id to its guest-side handler.
func (k *Kernel) RegisterFlow(id int, h FlowHandler) { k.flows[id] = h }

// UnregisterFlow removes a flow binding.
func (k *Kernel) UnregisterFlow(id int) { delete(k.flows, id) }

// SetDefaultHandler installs the handler for flows without an explicit
// registration (server applications accepting new connections).
func (k *Kernel) SetDefaultHandler(h FlowHandler) { k.defaultFlo = h }

// lookup returns the handler responsible for p, or nil.
func (k *Kernel) lookup(p *netsim.Packet) FlowHandler {
	if h, ok := k.flows[p.Flow]; ok {
		return h
	}
	return k.defaultFlo
}

// rxCost returns the softirq CPU cost of one incoming packet.
func (k *Kernel) rxCost(p *netsim.Packet) sim.Time {
	if h := k.lookup(p); h != nil {
		return h.RXCost(p)
	}
	return k.Costs.RXCost(p.Bytes)
}

// dispatch routes one received packet to its flow handler.
func (k *Kernel) dispatch(p *netsim.Packet, v *vmm.VCPU) {
	if h := k.lookup(p); h != nil {
		h.HandleRX(p, v)
		return
	}
	k.RxDropsNoFlow++
}

// StartBurn launches the lowest-priority CPU-burn filler on vCPU v,
// reproducing the paper's methodology of keeping every vCPU
// always-runnable so that HLT exits disappear and host-level vCPU
// multiplexing is continuously exercised.
//
// The filler starts at a random offset within one scheduling period and
// its chunks are jittered: without this, the perfectly symmetric setup
// would gang-schedule all VMs in lockstep (every core running the same
// VM simultaneously), a degenerate phase alignment that real hosts
// never sustain — boot order, interrupts and daemons decorrelate vCPU
// phases within seconds.
func (k *Kernel) StartBurn(v *vmm.VCPU) {
	var loop func()
	loop = func() {
		v.EnqueueTask(vmm.NewTask("burn", vmm.PrioIdle, k.JitterCost(k.Costs.BurnChunk), loop))
	}
	k.VM.K.Eng.After(k.rng.Duration(24*sim.Millisecond), loop)
}

// StartBurnAll launches the burn filler on every vCPU (the paper's
// "four-threaded lowest-priority CPU burn script").
func (k *Kernel) StartBurnAll() {
	for _, v := range k.VM.VCPUs {
		k.StartBurn(v)
	}
}

// Engine returns the simulation engine (convenience).
func (k *Kernel) Engine() *sim.Engine { return k.VM.K.Eng }
