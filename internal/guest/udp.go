package guest

import (
	"es2/internal/netsim"
	"es2/internal/sim"
	"es2/internal/vmm"
)

// UDPSender is the guest-side state of one outbound UDP stream:
// connectionless and unidirectional, so there is no window — production
// is limited only by guest CPU and ring space (full ring drops, as a
// full qdisc would).
type UDPSender struct {
	Kern     *Kernel
	FlowID   int
	PktBytes int
	nextSeq  int64
	SentPkts uint64
}

// NewUDPSender registers and returns a UDP sender flow (registered so
// stray reverse traffic is costed sanely).
func NewUDPSender(k *Kernel, flowID, pktBytes int) *UDPSender {
	f := &UDPSender{Kern: k, FlowID: flowID, PktBytes: pktBytes}
	k.RegisterFlow(flowID, f)
	return f
}

// NextPacket builds the next datagram.
func (f *UDPSender) NextPacket() *netsim.Packet {
	p := &netsim.Packet{Bytes: f.PktBytes, Kind: KindUDP, Flow: f.FlowID, Seq: f.nextSeq}
	f.nextSeq++
	f.SentPkts++
	return p
}

// RXCost implements FlowHandler.
func (f *UDPSender) RXCost(p *netsim.Packet) sim.Time { return f.Kern.Costs.RXBase }

// HandleRX implements FlowHandler (UDP send flows receive nothing).
func (f *UDPSender) HandleRX(p *netsim.Packet, v *vmm.VCPU) {}

// UDPReceiver counts an inbound UDP stream.
type UDPReceiver struct {
	Kern   *Kernel
	FlowID int

	BytesReceived uint64
	Pkts          uint64
}

// NewUDPReceiver registers and returns a UDP receiver flow.
func NewUDPReceiver(k *Kernel, flowID int) *UDPReceiver {
	f := &UDPReceiver{Kern: k, FlowID: flowID}
	k.RegisterFlow(flowID, f)
	return f
}

// RXCost implements FlowHandler.
func (f *UDPReceiver) RXCost(p *netsim.Packet) sim.Time {
	return f.Kern.Costs.RXCost(p.Bytes)
}

// HandleRX implements FlowHandler.
func (f *UDPReceiver) HandleRX(p *netsim.Packet, v *vmm.VCPU) {
	f.BytesReceived += uint64(p.Bytes)
	f.Pkts++
}

// PingResponder answers ICMP echo requests from softirq context,
// mirroring the kernel's in-stack ICMP handling. The reply carries the
// request's Seq and Payload so the prober can match and time it.
type PingResponder struct {
	Kern   *Kernel
	FlowID int

	Replies uint64
	Drops   uint64
}

// NewPingResponder registers and returns an ICMP responder flow.
func NewPingResponder(k *Kernel, flowID int) *PingResponder {
	f := &PingResponder{Kern: k, FlowID: flowID}
	k.RegisterFlow(flowID, f)
	return f
}

// RXCost implements FlowHandler: echo processing plus reply build.
func (f *PingResponder) RXCost(p *netsim.Packet) sim.Time {
	return f.Kern.Costs.RXBase + f.Kern.Costs.AckTX
}

// HandleRX implements FlowHandler.
func (f *PingResponder) HandleRX(p *netsim.Packet, v *vmm.VCPU) {
	if p.Kind != KindEcho {
		return
	}
	reply := &netsim.Packet{Bytes: p.Bytes, Kind: KindEchoReply, Flow: f.FlowID, Seq: p.Seq, Payload: p.Payload}
	reply.Chain = p.Chain // the echo continues the prober's causal chain
	if f.Kern.Dev.Transmit(v, reply) {
		f.Replies++
	} else {
		f.Drops++
	}
}
