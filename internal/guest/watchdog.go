package guest

import "es2/internal/sim"

// StartTxWatchdog arms the driver's transmit watchdog on every queue
// pair: the analogue of the netdev watchdog + virtio-net tx timeout
// path, which re-delivers the doorbell when a queue has work pending
// but the device has made no progress — the recovery for a lost kick.
//
// Each period the watchdog checks, per queue: descriptors are
// available, the device has not suppressed notifications (so it is
// sleeping and expects a kick), and the device's consumption counter
// has not moved since the last check. Two consecutive stale
// observations fire a ForceKick; one is not enough, because the worker
// may legitimately not have been scheduled yet.
func (d *NetDev) StartTxWatchdog(period sim.Time) {
	if period <= 0 {
		panic("guest: watchdog period must be positive")
	}
	eng := d.Kern.Engine()
	for _, p := range d.Pairs {
		p := p
		var strikes int
		var lastPopped uint64
		var tick func()
		tick = func() {
			if p.TX.AvailLen() > 0 && !p.TX.KickSuppressed() && p.TX.Popped == lastPopped {
				strikes++
			} else {
				strikes = 0
			}
			lastPopped = p.TX.Popped
			if strikes >= 2 {
				strikes = 0
				d.WatchdogFires++
				p.TX.ForceKick()
			}
			eng.After(period, tick)
		}
		eng.After(period, tick)
	}
}
