package guest

import (
	"es2/internal/apic"
	"es2/internal/causal"
	"es2/internal/netsim"
	"es2/internal/sim"
	"es2/internal/trace"
	"es2/internal/virtio"
	"es2/internal/vmm"
)

// NAPI is the guest's interrupt-mitigation receive path, modeled after
// Linux NAPI: the RX interrupt handler masks further interrupts and
// schedules a softirq poller; the poller consumes up to weight packets
// per round and re-enables interrupts only when the ring drains.
//
// This is the guest-side analogue of the hybrid scheme ES2 applies on
// the host side — the paper explicitly takes NAPI as its inspiration.
type NAPI struct {
	pair   *QueuePair
	weight int

	scheduled bool
	vcpu      *vmm.VCPU // vCPU the current poll cycle runs on
	burst     int       // consecutive poll rounds in the current cycle

	// Rounds counts poll rounds; Polled counts packets processed.
	Rounds uint64
	Polled uint64
	// Deferred counts poll rounds demoted to process-context priority
	// (the ksoftirqd path).
	Deferred uint64
}

// softirqRestartLimit bounds how many consecutive poll rounds run at
// softirq priority before the cycle is demoted to process-context
// priority, mirroring Linux's MAX_SOFTIRQ_RESTART handoff to ksoftirqd.
// Without it, a vCPU whose offered receive load exceeds its capacity
// strict-priority-starves process context forever — receive livelock:
// the application tasks that would consume the data (and quench the
// senders' retries) never run.
const softirqRestartLimit = 10

func newNAPI(p *QueuePair, weight int) *NAPI {
	return &NAPI{pair: p, weight: weight}
}

// schedule requests a poll cycle on vCPU v (idempotent while already
// scheduled, as in napi_schedule).
func (n *NAPI) schedule(v *vmm.VCPU) {
	if n.scheduled {
		return
	}
	n.scheduled = true
	n.vcpu = v
	n.enqueuePoll()
}

// enqueuePoll queues one poll round on the chosen vCPU: at softirq
// priority while the cycle is young, at process-context priority (the
// ksoftirqd handoff) once it has monopolized the vCPU for
// softirqRestartLimit rounds — queued FIFO behind any starving tasks.
func (n *NAPI) enqueuePoll() {
	v := n.vcpu
	v.EnqueueTask(vmm.NewTask("napi", n.prio(), n.pair.Dev.Kern.Costs.NAPIPoll, func() {
		n.poll(v)
	}))
}

// prio returns the priority the current poll round runs at.
func (n *NAPI) prio() vmm.Prio {
	if n.burst >= softirqRestartLimit {
		return vmm.PrioTask
	}
	return vmm.PrioSoftirq
}

// poll runs at the end of the fixed poll overhead: collect a batch,
// charge its processing cost as one softirq task, then dispatch.
func (n *NAPI) poll(v *vmm.VCPU) {
	n.Rounds++
	n.burst++
	if n.burst > softirqRestartLimit {
		n.Deferred++
	}
	batch := n.pair.RX.CollectUsed(n.weight)
	if len(batch) == 0 {
		n.finish()
		return
	}
	// Repost receive buffers for the consumed descriptors, kicking the
	// back-end only if it asked for refill notifications (it does so
	// exclusively when starved for buffers, so this almost never traps).
	for range batch {
		n.pair.RX.Add(virtio.Desc{})
	}
	if n.pair.Dev.DoorbellNoExit || n.pair.RX.KickSuppressed() {
		n.pair.RX.Kick()
	} else {
		rx := n.pair.RX
		v.BeginExit(vmm.ExitIOInstruction, func() { rx.Kick() })
	}
	var cost sim.Time
	path := n.pair.Dev.Kern.VM.K.Path
	ca := n.pair.Dev.Kern.VM.K.Causal
	pkts := make([]*netsim.Packet, 0, len(batch))
	for _, d := range batch {
		p, ok := d.Payload.(*netsim.Packet)
		if !ok {
			continue
		}
		if path != nil {
			// Ring-wait closes: the used buffer has been collected by
			// the poller; the deliver span opens on the packet.
			now := v.VM.K.Eng.Now()
			path.Observe(trace.StageRingWait, trace.MechNone, now-d.SpanT)
			p.SpanT = now
		}
		if ca != nil && p.Chain != nil {
			now := v.VM.K.Eng.Now()
			// A chain whose last mark predates the captured interrupt
			// episode was waiting in the used ring when that interrupt
			// fired, so the episode's signal → wakeup → delivery spans
			// belong on it. Chains published after the injection were
			// merely coalesced into the same poll and get only ring-wait.
			if ep := n.pair.ep; ep.valid && p.Chain.LastT() <= ep.inject {
				ca.Mark(p.Chain, causal.StageSignal, ep.inject)
				ca.Mark(p.Chain, causal.StageWakeup, ep.schedIn)
				st := causal.StageIRQEmulated
				if ep.mech == apic.StampPosted {
					st = causal.StageIRQPosted
				}
				ca.Mark(p.Chain, st, ep.entry)
			}
			ca.Mark(p.Chain, causal.StageRingWait, now)
		}
		pkts = append(pkts, p)
		cost += n.pair.Dev.Kern.rxCost(p)
	}
	n.Polled += uint64(len(pkts))
	name := "napi-rx"
	if v.VM.K.Prof != nil {
		// Label the batch by protocol for CPU attribution. Task names
		// never influence behaviour, so this cannot perturb the run.
		name += ":" + protoLabel(pkts)
	}
	v.EnqueueTask(vmm.NewTask(name, n.prio(), cost, func() {
		if path != nil {
			now := v.VM.K.Eng.Now()
			for _, p := range pkts {
				path.Observe(trace.StageDeliver, trace.MechNone, now-p.SpanT)
			}
		}
		if ca != nil {
			// Guest receive stack: poll collect → protocol dispatch.
			now := v.VM.K.Eng.Now()
			for _, p := range pkts {
				ca.Mark(p.Chain, causal.StageGuestRX, now)
			}
		}
		var batchFlows []BatchHandler
		for _, p := range pkts {
			if bh, ok := n.pair.Dev.Kern.lookup(p).(BatchHandler); ok {
				dup := false
				for _, b := range batchFlows {
					if b == bh {
						dup = true
						break
					}
				}
				if !dup {
					batchFlows = append(batchFlows, bh)
				}
			}
			n.pair.Dev.Kern.dispatch(p, v)
		}
		for _, bh := range batchFlows {
			bh.BatchEnd(v)
		}
		if n.pair.RX.UsedLen() > 0 {
			// Budget exhausted with work remaining: stay in polling.
			n.enqueuePoll()
			return
		}
		n.finish()
	}))
}

// protoLabel classifies a poll batch by the protocol of its packets
// ("tcp", "udp", "icmp", "app", or "mixed"), mirroring how a real
// profile splits net_rx_action time between tcp_v4_rcv, udp_rcv, and
// the socket layer.
func protoLabel(pkts []*netsim.Packet) string {
	label := ""
	for _, p := range pkts {
		var l string
		switch p.Kind {
		case KindTCPData, KindTCPAck, KindSYN, KindSYNACK:
			l = "tcp"
		case KindUDP:
			l = "udp"
		case KindEcho, KindEchoReply:
			l = "icmp"
		case KindRequest, KindResponse:
			l = "app"
		default:
			l = "other"
		}
		if label == "" {
			label = l
		} else if label != l {
			return "mixed"
		}
	}
	if label == "" {
		return "other"
	}
	return label
}

// finish re-enables RX interrupts with the standard NAPI race check:
// packets that slipped in between the last poll and the unmask re-enter
// polling immediately.
func (n *NAPI) finish() {
	n.pair.RX.SetNoInterrupt(false)
	if n.pair.RX.UsedLen() > 0 {
		n.pair.RX.SetNoInterrupt(true)
		n.enqueuePoll()
		return
	}
	n.scheduled = false
	n.vcpu = nil
	n.burst = 0
}

// Scheduled reports whether a poll cycle is in flight.
func (n *NAPI) Scheduled() bool { return n.scheduled }
