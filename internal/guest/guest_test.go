package guest

import (
	"testing"
	"testing/quick"

	"es2/internal/netsim"
	"es2/internal/sched"
	"es2/internal/sim"
	"es2/internal/vmm"
)

type rig struct {
	eng  *sim.Engine
	s    *sched.Scheduler
	k    *vmm.KVM
	vm   *vmm.VM
	kern *Kernel
}

func newRig(usePI bool) *rig {
	eng := sim.NewEngine(1)
	s := sched.New(eng, 2, sched.DefaultParams())
	cost := vmm.DefaultCosts()
	cost.TimerTickPeriod = 0
	cost.OtherExitPeriod = 0
	k := vmm.NewKVM(eng, s, cost)
	k.UsePI = usePI
	vm := k.NewVM("t", []int{0})
	kern := NewKernel(vm, DefaultCosts(), 256)
	kern.StartBurnAll()
	return &rig{eng: eng, s: s, k: k, vm: vm, kern: kern}
}

// pushRX emulates the back-end delivering a packet into the RX ring and
// signaling the queue.
func (r *rig) pushRX(p *netsim.Packet) bool {
	d, ok := r.kern.Dev.RX.Pop()
	if !ok {
		return false
	}
	d.Len = p.Bytes
	d.Payload = p
	r.kern.Dev.RX.PushUsed(d)
	r.kern.Dev.RX.Signal()
	return true
}

func TestTCPSenderWindow(t *testing.T) {
	r := newRig(true)
	f := NewTCPSender(r.kern, 7, 1024, 64)
	if f.Window() != 10 {
		t.Fatalf("initial window = %d, want 10 (IW10)", f.Window())
	}
	for i := 0; i < 10; i++ {
		if !f.CanSend() {
			t.Fatalf("CanSend false at %d in flight", i)
		}
		f.NextSegment()
	}
	if f.CanSend() {
		t.Fatal("CanSend true with full window")
	}
	if f.InFlight() != 10 {
		t.Fatalf("InFlight = %d", f.InFlight())
	}
	// Cumulative ACK of 4 segments reopens the window and grows cwnd.
	f.HandleRX(&netsim.Packet{Kind: KindTCPAck, Flow: 7, Seq: 4}, r.vm.VCPUs[0])
	if f.InFlight() != 6 {
		t.Fatalf("InFlight after ack = %d, want 6", f.InFlight())
	}
	if f.Window() != 14 {
		t.Fatalf("window after ack = %d, want 14 (slow start)", f.Window())
	}
	// Duplicate/old ACK is ignored.
	f.HandleRX(&netsim.Packet{Kind: KindTCPAck, Flow: 7, Seq: 4}, r.vm.VCPUs[0])
	if f.InFlight() != 6 || f.AckedSegs != 4 {
		t.Fatal("duplicate ACK must not change state")
	}
}

func TestTCPSenderWindowCap(t *testing.T) {
	r := newRig(true)
	f := NewTCPSender(r.kern, 7, 1024, 32)
	var sent int64
	for i := 0; i < 100; i++ {
		for f.CanSend() {
			f.NextSegment()
			sent++
		}
		f.HandleRX(&netsim.Packet{Kind: KindTCPAck, Flow: 7, Seq: sent}, r.vm.VCPUs[0])
	}
	if f.Window() != 32 {
		t.Fatalf("window = %d, want cap 32", f.Window())
	}
}

func TestTCPSenderWaitWindow(t *testing.T) {
	r := newRig(true)
	f := NewTCPSender(r.kern, 7, 1024, 16)
	for f.CanSend() {
		f.NextSegment()
	}
	woken := false
	f.WaitWindow(func() { woken = true })
	f.HandleRX(&netsim.Packet{Kind: KindTCPAck, Flow: 7, Seq: 2}, r.vm.VCPUs[0])
	if !woken {
		t.Fatal("WaitWindow callback not invoked on window open")
	}
}

func TestTCPReceiverStretchAck(t *testing.T) {
	r := newRig(true)
	f := NewTCPReceiver(r.kern, 9)
	v := r.vm.VCPUs[0]
	// One NAPI batch of 10 segments → exactly one cumulative ACK.
	for i := 0; i < 10; i++ {
		f.HandleRX(&netsim.Packet{Kind: KindTCPData, Flow: 9, Seq: int64(i), Bytes: 1024}, v)
	}
	f.BatchEnd(v)
	// Goodput is counted when the process-context copy completes.
	r.eng.Run(10 * sim.Millisecond)
	if f.Segs != 10 || f.BytesReceived != 10*1024 {
		t.Fatalf("segs=%d bytes=%d", f.Segs, f.BytesReceived)
	}
	if f.AcksSent != 1 {
		t.Fatalf("AcksSent = %d, want 1 (stretch ACK per batch)", f.AcksSent)
	}
	d, ok := r.kern.Dev.TX.Pop()
	if !ok {
		t.Fatal("ACK not on TX ring")
	}
	ack := d.Payload.(*netsim.Packet)
	if ack.Kind != KindTCPAck || ack.Seq != 10 {
		t.Fatalf("ack = %+v, want cumulative seq 10", ack)
	}
	// An empty batch must not ACK.
	f.BatchEnd(v)
	if f.AcksSent != 1 {
		t.Fatal("empty batch generated an ACK")
	}
}

func TestJitterCostBounded(t *testing.T) {
	r := newRig(true)
	base := 1000 * sim.Nanosecond
	for i := 0; i < 1000; i++ {
		c := r.kern.JitterCost(base)
		if c < 750 || c > 1250 {
			t.Fatalf("JitterCost out of ±25%% band: %v", c)
		}
	}
}

func TestUDPFlows(t *testing.T) {
	r := newRig(true)
	s := NewUDPSender(r.kern, 3, 256)
	p := s.NextPacket()
	if p.Bytes != 256 || p.Kind != KindUDP || p.Seq != 0 {
		t.Fatalf("packet = %+v", p)
	}
	if s.NextPacket().Seq != 1 {
		t.Fatal("seq must increment")
	}
	recv := NewUDPReceiver(r.kern, 4)
	recv.HandleRX(&netsim.Packet{Kind: KindUDP, Flow: 4, Bytes: 512}, r.vm.VCPUs[0])
	if recv.Pkts != 1 || recv.BytesReceived != 512 {
		t.Fatal("receiver counts wrong")
	}
}

func TestPingResponder(t *testing.T) {
	r := newRig(true)
	f := NewPingResponder(r.kern, 5)
	f.HandleRX(&netsim.Packet{Kind: KindEcho, Flow: 5, Seq: 42, Bytes: 64, Payload: "stamp"}, r.vm.VCPUs[0])
	if f.Replies != 1 {
		t.Fatal("no reply generated")
	}
	d, ok := r.kern.Dev.TX.Pop()
	if !ok {
		t.Fatal("reply not on TX ring")
	}
	reply := d.Payload.(*netsim.Packet)
	if reply.Kind != KindEchoReply || reply.Seq != 42 || reply.Payload != "stamp" {
		t.Fatalf("reply = %+v", reply)
	}
}

func TestTransmitKickExit(t *testing.T) {
	r := newRig(true)
	v := r.vm.VCPUs[0]
	done := false
	v.EnqueueTask(vmm.NewTask("send", vmm.PrioTask, sim.Microsecond, func() {
		r.kern.Dev.Transmit(v, &netsim.Packet{Bytes: 100, Kind: KindUDP})
		done = true
	}))
	r.eng.Run(sim.Millisecond)
	if !done {
		t.Fatal("send task did not run")
	}
	if got := r.vm.Exits.Count(int(vmm.ExitIOInstruction)); got != 1 {
		t.Fatalf("IOInstruction exits = %d, want 1 (notification-mode kick)", got)
	}
	if r.kern.Dev.TX.Kicks != 1 {
		t.Fatalf("delivered kicks = %d, want 1", r.kern.Dev.TX.Kicks)
	}
}

func TestTransmitSuppressedKickNoExit(t *testing.T) {
	r := newRig(true)
	v := r.vm.VCPUs[0]
	r.kern.Dev.TX.SetNoNotify(true) // back-end is polling
	v.EnqueueTask(vmm.NewTask("send", vmm.PrioTask, sim.Microsecond, func() {
		r.kern.Dev.Transmit(v, &netsim.Packet{Bytes: 100, Kind: KindUDP})
	}))
	r.eng.Run(sim.Millisecond)
	if got := r.vm.Exits.Count(int(vmm.ExitIOInstruction)); got != 0 {
		t.Fatalf("IOInstruction exits = %d, want 0 (suppressed)", got)
	}
	if r.kern.Dev.TX.SuppressedKicks != 1 {
		t.Fatal("suppressed kick not counted")
	}
}

func TestTransmitRingFull(t *testing.T) {
	r := newRig(true)
	v := r.vm.VCPUs[0]
	dev := r.kern.Dev
	filled := 0
	for dev.Transmit(v, &netsim.Packet{Bytes: 1}) {
		filled++
	}
	if filled != 256 {
		t.Fatalf("ring accepted %d packets, want 256", filled)
	}
	if dev.TX.InterruptSuppressed() {
		t.Fatal("ring-full must enable the TX completion interrupt")
	}
	// Back-end completes everything and signals.
	woken := false
	dev.WaitTX(func() { woken = true })
	for {
		d, ok := dev.TX.Pop()
		if !ok {
			break
		}
		dev.TX.PushUsed(d)
	}
	dev.TX.Signal()
	r.eng.Run(10 * sim.Millisecond)
	if !woken {
		t.Fatal("TX waiter not woken by completion interrupt")
	}
	if !dev.Transmit(v, &netsim.Packet{Bytes: 1}) {
		t.Fatal("Transmit should succeed after reclamation")
	}
}

func TestTransmitOrDropCountsDrops(t *testing.T) {
	r := newRig(true)
	v := r.vm.VCPUs[0]
	for r.kern.Dev.Transmit(v, &netsim.Packet{Bytes: 1}) {
	}
	if !r.kern.Dev.TransmitOrDrop(v, &netsim.Packet{Bytes: 1}) && r.kern.Dev.LocalDrops != 1 {
		t.Fatal("drop not counted")
	}
	if r.kern.Dev.LocalDrops != 1 {
		t.Fatalf("LocalDrops = %d, want 1", r.kern.Dev.LocalDrops)
	}
}

func TestNAPICycle(t *testing.T) {
	r := newRig(true)
	recv := NewUDPReceiver(r.kern, 4)
	// Deliver 100 packets in one burst.
	for i := 0; i < 100; i++ {
		if !r.pushRX(&netsim.Packet{Kind: KindUDP, Flow: 4, Bytes: 256, Seq: int64(i)}) {
			t.Fatalf("RX ring starved at %d", i)
		}
	}
	r.eng.Run(50 * sim.Millisecond)
	if recv.Pkts != 100 {
		t.Fatalf("received %d packets, want 100", recv.Pkts)
	}
	napi := r.kern.Dev.NAPI()
	if napi.Scheduled() {
		t.Fatal("NAPI should be idle after draining")
	}
	// 100 packets at weight 64 needs at least 2 poll rounds.
	if napi.Rounds < 2 {
		t.Fatalf("poll rounds = %d, want >= 2", napi.Rounds)
	}
	if r.kern.Dev.RX.InterruptSuppressed() {
		t.Fatal("RX interrupts must be re-enabled after the cycle")
	}
	// Ring must be refilled.
	if r.kern.Dev.RX.AvailLen() != 256 {
		t.Fatalf("RX ring refilled to %d, want 256", r.kern.Dev.RX.AvailLen())
	}
	// One burst, NAPI masked: at most two device interrupts (one may
	// slip in between the wake-up delivery and the ISR masking).
	if got := r.vm.DevIRQDelivered.Value(); got > 2 {
		t.Fatalf("device IRQs = %d, want <= 2 (NAPI masking)", got)
	}
}

func TestNAPIMasksDuringPoll(t *testing.T) {
	r := newRig(true)
	NewUDPReceiver(r.kern, 4)
	r.pushRX(&netsim.Packet{Kind: KindUDP, Flow: 4, Bytes: 256})
	// Run just past the ISR (~1.75us: PI notify + IRQ entry + handler)
	// but before the poll cycle finishes (~3.4us).
	r.eng.Run(2 * sim.Microsecond)
	if !r.kern.Dev.RX.InterruptSuppressed() {
		t.Fatal("RX interrupts should be masked while NAPI is scheduled")
	}
	r.eng.Run(50 * sim.Millisecond)
	if r.kern.Dev.RX.InterruptSuppressed() {
		t.Fatal("RX interrupts should be unmasked when idle")
	}
}

func TestDefaultHandlerDispatch(t *testing.T) {
	r := newRig(true)
	got := 0
	r.kern.SetDefaultHandler(handlerFunc{
		cost: func(p *netsim.Packet) sim.Time { return sim.Microsecond },
		rx:   func(p *netsim.Packet, v *vmm.VCPU) { got++ },
	})
	r.pushRX(&netsim.Packet{Kind: KindSYN, Flow: 999, Bytes: 66})
	r.eng.Run(10 * sim.Millisecond)
	if got != 1 {
		t.Fatalf("default handler ran %d times, want 1", got)
	}
}

type handlerFunc struct {
	cost func(p *netsim.Packet) sim.Time
	rx   func(p *netsim.Packet, v *vmm.VCPU)
}

func (h handlerFunc) RXCost(p *netsim.Packet) sim.Time       { return h.cost(p) }
func (h handlerFunc) HandleRX(p *netsim.Packet, v *vmm.VCPU) { h.rx(p, v) }

func TestUnregisteredFlowDropped(t *testing.T) {
	r := newRig(true)
	r.pushRX(&netsim.Packet{Kind: KindUDP, Flow: 12345, Bytes: 256})
	r.eng.Run(10 * sim.Millisecond)
	if r.kern.RxDropsNoFlow != 1 {
		t.Fatalf("RxDropsNoFlow = %d, want 1", r.kern.RxDropsNoFlow)
	}
}

func TestCostsHelpers(t *testing.T) {
	c := DefaultCosts()
	if c.TXCost(1000, true) <= c.TXCost(1000, false) {
		t.Fatal("TCP path must cost more than UDP")
	}
	if c.TXCost(1500, false) <= c.TXCost(64, false) {
		t.Fatal("cost must grow with size")
	}
	if c.RXCost(1500) <= c.RXCost(64) {
		t.Fatal("RX cost must grow with size")
	}
}

func TestMultiqueuePairs(t *testing.T) {
	eng := sim.NewEngine(1)
	s := sched.New(eng, 4, sched.DefaultParams())
	cost := vmm.DefaultCosts()
	cost.TimerTickPeriod = 0
	cost.OtherExitPeriod = 0
	k := vmm.NewKVM(eng, s, cost)
	k.UsePI = true
	vm := k.NewVM("mq", []int{0, 1, 2, 3})
	kern := NewKernelQueues(vm, DefaultCosts(), 256, 4)

	if len(kern.Dev.Pairs) != 4 {
		t.Fatalf("pairs = %d, want 4", len(kern.Dev.Pairs))
	}
	// Queue i is affine to vCPU i; vectors are distinct.
	seen := map[int]bool{}
	for i, p := range kern.Dev.Pairs {
		if p.Affinity != i {
			t.Fatalf("pair %d affinity = %d", i, p.Affinity)
		}
		for _, vec := range []int{int(p.RXVector), int(p.TXVector)} {
			if seen[vec] {
				t.Fatalf("vector %#x reused", vec)
			}
			seen[vec] = true
		}
	}
	// Flow hashing is stable and covers all pairs.
	covered := map[int]bool{}
	for f := 0; f < 16; f++ {
		p := kern.Dev.PairFor(f)
		if p != kern.Dev.PairFor(f) {
			t.Fatal("PairFor not stable")
		}
		covered[p.Index] = true
	}
	if len(covered) != 4 {
		t.Fatalf("flows covered %d pairs, want 4", len(covered))
	}
	// Compatibility aliases point at pair 0.
	if kern.Dev.TX != kern.Dev.Pairs[0].TX || kern.Dev.RX != kern.Dev.Pairs[0].RX {
		t.Fatal("single-queue aliases broken")
	}
}

func TestMultiqueueTransmitRouting(t *testing.T) {
	eng := sim.NewEngine(1)
	s := sched.New(eng, 2, sched.DefaultParams())
	cost := vmm.DefaultCosts()
	cost.TimerTickPeriod = 0
	cost.OtherExitPeriod = 0
	k := vmm.NewKVM(eng, s, cost)
	k.UsePI = true
	vm := k.NewVM("mq", []int{0, 1})
	kern := NewKernelQueues(vm, DefaultCosts(), 64, 2)
	v := vm.VCPUs[0]

	kern.Dev.Transmit(v, &netsim.Packet{Bytes: 100, Flow: 0})
	kern.Dev.Transmit(v, &netsim.Packet{Bytes: 100, Flow: 1})
	kern.Dev.Transmit(v, &netsim.Packet{Bytes: 100, Flow: 2})
	if got := kern.Dev.Pairs[0].TX.AvailLen(); got != 2 {
		t.Fatalf("pair0 avail = %d, want 2 (flows 0 and 2)", got)
	}
	if got := kern.Dev.Pairs[1].TX.AvailLen(); got != 1 {
		t.Fatalf("pair1 avail = %d, want 1 (flow 1)", got)
	}
}

// Property: the TCP sender's window invariants hold under any
// interleaving of sends and (possibly duplicate, possibly stale)
// cumulative ACKs: in-flight stays within [0, Window] and the window
// never exceeds its cap.
func TestTCPSenderWindowProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		r := newRig(true)
		fl := NewTCPSender(r.kern, 7, 512, 48)
		v := r.vm.VCPUs[0]
		var highestAck int64
		for _, op := range ops {
			if op%2 == 0 {
				if fl.CanSend() {
					fl.NextSegment()
				}
			} else {
				// ACK anywhere up to what has been sent, possibly
				// replaying an old number.
				ack := highestAck + int64(op%8)
				sent := int64(fl.SentSegs)
				if ack > sent {
					ack = sent
				}
				if ack > highestAck {
					highestAck = ack
				}
				fl.HandleRX(&netsim.Packet{Kind: KindTCPAck, Flow: 7, Seq: ack}, v)
			}
			if fl.InFlight() < 0 || fl.InFlight() > fl.Window() {
				return false
			}
			if fl.Window() > 48 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
