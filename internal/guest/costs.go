// Package guest models the guest operating system: the virtio-net
// front-end driver with NAPI, interrupt handlers registered in the
// guest IDT, simplified TCP/UDP transports, and guest processes
// (benchmark applications, CPU-burn fillers) that execute as vCPU
// tasks.
package guest

import "es2/internal/sim"

// Costs are the guest-side CPU costs. Like vmm.CostModel they are
// calibration constants, centralized here and documented in
// EXPERIMENTS.md.
type Costs struct {
	// TXPrepBase is the per-packet cost of producing one outbound
	// packet in process context: syscall, sk_buff allocation,
	// TCP/UDP/IP stack, driver enqueue.
	TXPrepBase sim.Time
	// TXPrepPerByte adds the copy cost, in nanoseconds per byte.
	TXPrepPerByte float64
	// TCPExtra is added to TXPrepBase for TCP segments (checksum,
	// congestion bookkeeping vs the leaner UDP path).
	TCPExtra sim.Time
	// RXBase is the per-packet receive-path cost in softirq context.
	RXBase sim.Time
	// RXPerByte adds the receive copy cost, per byte.
	RXPerByte float64
	// RXProtocol is the softirq-only protocol cost per TCP segment when
	// the copy to userspace is charged separately (two-stage receive).
	RXProtocol sim.Time
	// RXCopyBase and RXCopyPerByte price the process-context
	// copy-to-userspace stage of TCP receive (the recv() side).
	RXCopyBase    sim.Time
	RXCopyPerByte float64
	// AckRX is the cost of processing one incoming pure ACK.
	AckRX sim.Time
	// AckTX is the cost of building and enqueueing one outbound ACK
	// from softirq context.
	AckTX sim.Time
	// NAPIPoll is the fixed overhead of one NAPI poll round.
	NAPIPoll sim.Time
	// IRQHandler is the device ISR body (reading the ISR status,
	// scheduling NAPI).
	IRQHandler sim.Time
	// ReclaimPerBuf is the cost of reclaiming one used TX descriptor.
	ReclaimPerBuf sim.Time
	// BurnChunk is the chunk length of the lowest-priority CPU-burn
	// filler.
	BurnChunk sim.Time
}

// DefaultCosts returns calibrated guest-side costs (see EXPERIMENTS.md
// for the calibration anchors).
func DefaultCosts() Costs {
	return Costs{
		TXPrepBase:    1900 * sim.Nanosecond,
		TXPrepPerByte: 0.12,
		TCPExtra:      500 * sim.Nanosecond,
		RXBase:        1100 * sim.Nanosecond,
		RXPerByte:     0.10,
		RXProtocol:    550 * sim.Nanosecond,
		RXCopyBase:    450 * sim.Nanosecond,
		RXCopyPerByte: 0.12,
		AckRX:         650 * sim.Nanosecond,
		AckTX:         900 * sim.Nanosecond,
		NAPIPoll:      500 * sim.Nanosecond,
		IRQHandler:    800 * sim.Nanosecond,
		ReclaimPerBuf: 40 * sim.Nanosecond,
		BurnChunk:     50 * sim.Microsecond,
	}
}

// TXCost returns the process-context cost of producing one packet of
// the given size; tcp selects the TCP path.
func (c Costs) TXCost(bytes int, tcp bool) sim.Time {
	t := c.TXPrepBase + sim.Time(c.TXPrepPerByte*float64(bytes))
	if tcp {
		t += c.TCPExtra
	}
	return t
}

// RXCost returns the softirq cost of receiving one data packet of the
// given size.
func (c Costs) RXCost(bytes int) sim.Time {
	return c.RXBase + sim.Time(c.RXPerByte*float64(bytes))
}
