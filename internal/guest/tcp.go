package guest

import (
	"es2/internal/netsim"
	"es2/internal/sim"
	"es2/internal/vmm"
)

// TCPSender is the guest-side state of one outbound TCP stream: a
// congestion window that opens on ACK clocking (slow start toward the
// socket-buffer cap; the back-to-back testbed link never drops, so no
// loss recovery is modeled — cwnd saturates at MaxWindow, exactly as on
// the authors' 40GbE testbed).
type TCPSender struct {
	Kern     *Kernel
	FlowID   int
	SegBytes int
	// MaxWindow caps the in-flight segments (min of socket buffer and
	// the peer's advertised window).
	MaxWindow int

	cwnd      int
	inFlight  int
	nextSeq   int64
	lastAcked int64

	onWindowOpen func()

	// rto is the base retransmission timeout (from Kernel.RetransmitRTO
	// at creation; zero disables loss recovery, the lossless-testbed
	// default). curRTO carries the exponential backoff.
	rto    sim.Time
	curRTO sim.Time
	rtoEvt *sim.Handle

	// SentSegs and AckedSegs count stream progress. Retransmits counts
	// go-back-N timeouts.
	SentSegs    uint64
	AckedSegs   uint64
	Retransmits uint64
}

// NewTCPSender registers and returns a sender flow. The initial window
// is 10 segments (IW10).
func NewTCPSender(k *Kernel, flowID, segBytes, maxWindow int) *TCPSender {
	f := &TCPSender{Kern: k, FlowID: flowID, SegBytes: segBytes, MaxWindow: maxWindow, cwnd: 10}
	if f.cwnd > maxWindow {
		f.cwnd = maxWindow
	}
	f.rto = k.RetransmitRTO
	f.curRTO = f.rto
	k.RegisterFlow(flowID, f)
	return f
}

// Window returns the current effective window in segments.
func (f *TCPSender) Window() int {
	if f.cwnd < f.MaxWindow {
		return f.cwnd
	}
	return f.MaxWindow
}

// CanSend reports whether the window admits another segment.
func (f *TCPSender) CanSend() bool { return f.inFlight < f.Window() }

// InFlight returns the number of unacknowledged segments.
func (f *TCPSender) InFlight() int { return f.inFlight }

// NextSegment builds the next data segment and accounts it in flight.
// The caller transmits it via the NetDev.
func (f *TCPSender) NextSegment() *netsim.Packet {
	p := &netsim.Packet{Bytes: f.SegBytes, Kind: KindTCPData, Flow: f.FlowID, Seq: f.nextSeq}
	f.nextSeq++
	f.inFlight++
	f.SentSegs++
	f.armRTO()
	return p
}

// armRTO starts the retransmission timer if loss recovery is enabled
// and no timer is already pending.
func (f *TCPSender) armRTO() {
	if f.rto <= 0 || f.rtoEvt != nil {
		return
	}
	f.rtoEvt = f.Kern.Engine().After(f.curRTO, f.onRTO)
}

// onRTO is the go-back-N retransmission timeout: rewind to the last
// cumulative ACK, restart from a slow-start window, and back off the
// timer exponentially (capped at 8x the base RTO).
func (f *TCPSender) onRTO() {
	f.rtoEvt = nil
	if f.inFlight <= 0 {
		return
	}
	f.Retransmits++
	f.Kern.TCPRetransmits++
	f.nextSeq = f.lastAcked
	f.inFlight = 0
	f.cwnd = 10
	if f.cwnd > f.MaxWindow {
		f.cwnd = f.MaxWindow
	}
	f.curRTO *= 2
	if max := 8 * f.rto; f.curRTO > max {
		f.curRTO = max
	}
	if f.onWindowOpen != nil && f.CanSend() {
		fn := f.onWindowOpen
		f.onWindowOpen = nil
		fn()
	}
}

// WaitWindow registers a one-shot callback invoked when ACKs reopen the
// window.
func (f *TCPSender) WaitWindow(fn func()) { f.onWindowOpen = fn }

// RXCost implements FlowHandler: incoming packets on a sender flow are
// pure ACKs.
func (f *TCPSender) RXCost(p *netsim.Packet) sim.Time { return f.Kern.Costs.AckRX }

// HandleRX implements FlowHandler: cumulative ACK processing.
func (f *TCPSender) HandleRX(p *netsim.Packet, v *vmm.VCPU) {
	if p.Kind != KindTCPAck {
		return
	}
	acked := p.Seq - f.lastAcked
	if acked <= 0 {
		return
	}
	f.lastAcked = p.Seq
	f.inFlight -= int(acked)
	if f.inFlight < 0 {
		f.inFlight = 0
	}
	f.AckedSegs += uint64(acked)
	// Forward progress: reset the backoff and re-arm for what remains.
	if f.rto > 0 {
		f.curRTO = f.rto
		if f.rtoEvt != nil {
			f.rtoEvt.Cancel()
			f.rtoEvt = nil
		}
		if f.inFlight > 0 {
			f.armRTO()
		}
	}
	// Slow-start growth toward the cap; the lossless link never
	// triggers congestion avoidance.
	f.cwnd += int(acked)
	if f.cwnd > f.MaxWindow {
		f.cwnd = f.MaxWindow
	}
	if f.onWindowOpen != nil && f.CanSend() {
		fn := f.onWindowOpen
		f.onWindowOpen = nil
		fn()
	}
}

// TCPReceiver is the guest-side state of one inbound TCP stream. The
// receive path is two-stage, as in a real kernel: softirq does the
// protocol work and generates one cumulative stretch ACK per NAPI poll
// batch (GRO behaviour), while the copy to userspace is charged to a
// process-context task that — like a wake-affine receiver process —
// follows the vCPU the softirq ran on. The ACK transmissions are the
// residual I/O-instruction exits the paper observes in the receive
// direction ("ACK packets are sent only at a certain interval").
type TCPReceiver struct {
	Kern   *Kernel
	FlowID int

	// expected is the next in-order sequence number; segments beyond it
	// are not buffered (go-back-N discipline, matching the sender's
	// timeout recovery) and trigger a duplicate cumulative ACK.
	expected   int64
	pendingAck int

	appPendingPkts  int
	appPendingBytes int
	appBusy         bool

	// BytesReceived and Segs count goodput (counted when the copy to
	// the application completes).
	BytesReceived uint64
	Segs          uint64
	// AcksSent counts outbound ACKs; AckDrops counts ACKs lost to a
	// full TX ring (recovered by later cumulative ACKs).
	AcksSent uint64
	AckDrops uint64
}

// NewTCPReceiver registers and returns a receiver flow.
func NewTCPReceiver(k *Kernel, flowID int) *TCPReceiver {
	f := &TCPReceiver{Kern: k, FlowID: flowID}
	k.RegisterFlow(flowID, f)
	return f
}

// RXCost implements FlowHandler: softirq protocol work only; the copy
// stage is charged to the receiver process.
func (f *TCPReceiver) RXCost(p *netsim.Packet) sim.Time {
	return f.Kern.Costs.RXProtocol
}

// HandleRX implements FlowHandler.
func (f *TCPReceiver) HandleRX(p *netsim.Packet, v *vmm.VCPU) {
	if p.Kind != KindTCPData {
		return
	}
	// Every data segment earns a (possibly duplicate) cumulative ACK at
	// batch end; only the in-order one advances the stream toward the
	// application.
	f.pendingAck++
	if p.Seq != f.expected {
		return
	}
	f.expected++
	f.appPendingPkts++
	f.appPendingBytes += p.Bytes
}

// BatchEnd implements BatchHandler: one cumulative ACK per poll batch
// (its build cost rides on the batch's NAPI accounting), then wake the
// receiver process on this vCPU.
func (f *TCPReceiver) BatchEnd(v *vmm.VCPU) {
	if f.pendingAck > 0 {
		f.pendingAck = 0
		ack := &netsim.Packet{Bytes: 66, Kind: KindTCPAck, Flow: f.FlowID, Seq: f.expected}
		if f.Kern.Dev.Transmit(v, ack) {
			f.AcksSent++
		} else {
			f.AckDrops++
		}
	}
	f.runApp(v)
}

// runApp drains the pending copy work as a process-context task on v
// (wake affinity: the receiver runs where it was woken).
func (f *TCPReceiver) runApp(v *vmm.VCPU) {
	if f.appBusy || f.appPendingPkts == 0 {
		return
	}
	f.appBusy = true
	pkts, bytes := f.appPendingPkts, f.appPendingBytes
	f.appPendingPkts, f.appPendingBytes = 0, 0
	c := f.Kern.Costs
	cost := sim.Time(pkts)*c.RXCopyBase + sim.Time(c.RXCopyPerByte*float64(bytes))
	v.EnqueueTask(vmm.NewTask("recv-copy", vmm.PrioTask, f.Kern.JitterCost(cost), func() {
		f.BytesReceived += uint64(bytes)
		f.Segs += uint64(pkts)
		f.appBusy = false
		f.runApp(v)
	}))
}
