// Package metrics provides the measurement primitives used by the
// simulator: counters, rate meters, latency histograms, time series and
// the VM-exit breakdown tables that the paper's evaluation reports.
//
// All types are plain single-goroutine values; each simulation engine
// owns its own metric set. Aggregation across parallel scenario runs
// happens at the harness layer after the engines have finished.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"es2/internal/sim"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Add adds delta to the counter (monotone by construction: the delta
// is unsigned).
func (c *Counter) Add(delta uint64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter (used at measurement-window boundaries).
func (c *Counter) Reset() { c.n = 0 }

// Rate returns the count divided by the elapsed virtual time, per second.
// It returns 0 for a non-positive interval.
func (c *Counter) Rate(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.n) / elapsed.Seconds()
}

// Gauge is an instantaneous value with min/max tracking.
type Gauge struct {
	v        int64
	min, max int64
	set      bool
}

// Set records a new value.
func (g *Gauge) Set(v int64) {
	g.v = v
	if !g.set || v < g.min {
		g.min = v
	}
	if !g.set || v > g.max {
		g.max = v
	}
	g.set = true
}

// Value returns the last value set.
func (g *Gauge) Value() int64 { return g.v }

// Min returns the smallest value ever set (0 if never set).
func (g *Gauge) Min() int64 { return g.min }

// Max returns the largest value ever set (0 if never set).
func (g *Gauge) Max() int64 { return g.max }

// Reset restarts min/max tracking at the current value (used at
// measurement-window boundaries, so warmup extremes do not leak into
// the measured window). A gauge is a level and the level persists
// across the boundary, so the last value set is kept and becomes the
// initial min and max of the new window; a never-set gauge stays unset.
func (g *Gauge) Reset() {
	if !g.set {
		return
	}
	g.min, g.max = g.v, g.v
}

// Histogram records a distribution of durations with exact storage up to
// a bounded sample count; beyond the bound it keeps a deterministic
// 1-in-k subsample plus exact count/sum/min/max. This keeps memory flat
// for multi-second simulations with millions of samples while preserving
// exact means and accurate tails.
type Histogram struct {
	samples  []sim.Time
	stride   uint64 // keep every stride-th sample once full
	seen     uint64
	count    uint64
	sum      sim.Time
	min, max sim.Time
	maxKeep  int
	sorted   bool
}

// NewHistogram returns a histogram retaining at most maxKeep samples
// (subsampled deterministically beyond that). maxKeep <= 0 selects a
// default of 64k samples.
func NewHistogram(maxKeep int) *Histogram {
	if maxKeep <= 0 {
		maxKeep = 1 << 16
	}
	return &Histogram{maxKeep: maxKeep, stride: 1}
}

// Observe records one duration.
func (h *Histogram) Observe(d sim.Time) {
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if h.count == 1 || d > h.max {
		h.max = d
	}
	if h.seen%h.stride == 0 {
		if len(h.samples) >= h.maxKeep {
			// Decimate in place: keep every other retained sample and
			// double the stride, preserving determinism.
			kept := h.samples[:0]
			for i := 0; i < len(h.samples); i += 2 {
				kept = append(kept, h.samples[i])
			}
			h.samples = kept
			h.stride *= 2
		}
		h.samples = append(h.samples, d)
		h.sorted = false
	}
	h.seen++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Reset discards all observations (used at measurement-window
// boundaries).
func (h *Histogram) Reset() {
	h.samples = h.samples[:0]
	h.stride = 1
	h.seen, h.count = 0, 0
	h.sum, h.min, h.max = 0, 0, 0
	h.sorted = false
}

// Mean returns the exact mean of all observations (0 when empty).
func (h *Histogram) Mean() sim.Time {
	if h.count == 0 {
		return 0
	}
	return sim.Time(float64(h.sum) / float64(h.count))
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() sim.Time { return h.min }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() sim.Time { return h.max }

// Quantile returns the q-quantile (0 <= q <= 1) over retained samples.
func (h *Histogram) Quantile(q float64) sim.Time {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[len(h.samples)-1]
	}
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return h.samples[idx]
}

// Summary formats count/mean/p50/p99/max for reports.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.max)
}

// Point is one (time, value) sample of a Series.
type Point struct {
	T sim.Time
	V float64
}

// Series is an append-only time series, used for the Fig. 7 RTT trace
// and throughput-over-time plots.
type Series struct {
	Name   string
	Points []Point
}

// Append adds a sample.
func (s *Series) Append(t sim.Time, v float64) {
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// Reset discards all samples, keeping the name (used at
// measurement-window boundaries).
func (s *Series) Reset() { s.Points = s.Points[:0] }

// Max returns the largest value in the series (0 when empty).
func (s *Series) Max() float64 {
	m := 0.0
	for i, p := range s.Points {
		if i == 0 || p.V > m {
			m = p.V
		}
	}
	return m
}

// Mean returns the mean value of the series (0 when empty).
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Points {
		sum += p.V
	}
	return sum / float64(len(s.Points))
}
