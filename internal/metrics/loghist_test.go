package metrics

import (
	"math"
	"sort"
	"testing"

	"es2/internal/sim"
)

func TestLogHistogramExactSmallValues(t *testing.T) {
	h := NewLogHistogram()
	for v := sim.Time(0); v < 128; v++ {
		h.Observe(v)
	}
	if h.Count() != 128 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 0 || h.Max() != 127 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	// Below the sub-bucket count every value has its own bucket, so
	// quantiles are exact.
	if got := h.Quantile(0.5); got != 63 {
		t.Fatalf("p50 = %v, want 63", got)
	}
	if got := h.Quantile(1); got != 127 {
		t.Fatalf("p100 = %v, want 127", got)
	}
}

func TestLogHistogramMeanSumExact(t *testing.T) {
	h := NewLogHistogram()
	var sum sim.Time
	for i := 0; i < 1000; i++ {
		v := sim.Time(i*i*7 + 13)
		h.Observe(v)
		sum += v
	}
	if h.Sum() != sum {
		t.Fatalf("sum = %v, want %v", h.Sum(), sum)
	}
	want := sim.Time(float64(sum) / 1000)
	if h.Mean() != want {
		t.Fatalf("mean = %v, want %v", h.Mean(), want)
	}
}

// TestLogHistogramQuantileError checks the advertised bound: every
// quantile is within 1% relative error of the exact order statistic.
func TestLogHistogramQuantileError(t *testing.T) {
	h := NewLogHistogram()
	rng := sim.NewRand(42)
	var all []sim.Time
	for i := 0; i < 50000; i++ {
		// Spread over six decades, as simulated latencies are.
		v := sim.Time(1 + rng.Uint64()%uint64(math.Pow10(1+i%6)))
		h.Observe(v)
		all = append(all, v)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		idx := int(math.Ceil(q*float64(len(all)))) - 1
		exact := float64(all[idx])
		got := float64(h.Quantile(q))
		if relErr := math.Abs(got-exact) / exact; relErr > 0.01 {
			t.Errorf("q=%v: got %v exact %v relerr %.4f", q, got, exact, relErr)
		}
	}
	if h.Quantile(1) != all[len(all)-1] {
		t.Errorf("p100 = %v, want exact max %v", h.Quantile(1), all[len(all)-1])
	}
	if h.Quantile(0) != all[0] {
		t.Errorf("p0 = %v, want exact min %v", h.Quantile(0), all[0])
	}
}

func TestLogHistogramBucketsAndReset(t *testing.T) {
	h := NewLogHistogram()
	for i := 0; i < 1000; i++ {
		h.Observe(sim.Time(i * 37))
	}
	var n uint64
	last := sim.Time(-1)
	h.Buckets(func(upper sim.Time, count uint64) {
		if upper <= last {
			t.Fatalf("bucket uppers not ascending: %v after %v", upper, last)
		}
		last = upper
		n += count
	})
	if n != h.Count() {
		t.Fatalf("bucket counts sum to %d, count is %d", n, h.Count())
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Fatalf("reset left state: %v", h.Summary())
	}
	h.Buckets(func(sim.Time, uint64) { t.Fatal("reset left buckets") })
}

func TestLogBucketIndexCoversInt64(t *testing.T) {
	// Every power of two up to 2^62 must map inside the bucket array,
	// and bounds must tile contiguously.
	for e := 0; e <= 62; e++ {
		v := sim.Time(1) << e
		idx := logBucketIndex(v)
		if idx < 0 || idx >= logNumBuckets {
			t.Fatalf("2^%d: index %d out of range", e, idx)
		}
		low, width := logBucketBounds(idx)
		if v < low || v >= low+width {
			t.Fatalf("2^%d: not inside its bucket [%d,%d)", e, low, low+width)
		}
	}
}
