package metrics

import (
	"fmt"
	"strings"

	"es2/internal/sim"
)

// Breakdown tallies events by a small integer category (e.g. VM exit
// reason) and renders the percentage/rate tables that the paper reports
// (Table I, Fig. 5).
type Breakdown struct {
	labels []string
	counts []uint64
}

// NewBreakdown creates a breakdown over the given category labels.
func NewBreakdown(labels ...string) *Breakdown {
	return &Breakdown{labels: labels, counts: make([]uint64, len(labels))}
}

// Inc adds one event to category i.
func (b *Breakdown) Inc(i int) { b.counts[i]++ }

// Reset zeroes all categories (used at measurement-window boundaries).
func (b *Breakdown) Reset() {
	for i := range b.counts {
		b.counts[i] = 0
	}
}

// Count returns the tally of category i.
func (b *Breakdown) Count(i int) uint64 { return b.counts[i] }

// Total returns the sum over all categories.
func (b *Breakdown) Total() uint64 {
	var t uint64
	for _, c := range b.counts {
		t += c
	}
	return t
}

// Percent returns category i's share of the total, in percent
// (0 when the breakdown is empty).
func (b *Breakdown) Percent(i int) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return 100 * float64(b.counts[i]) / float64(t)
}

// Rate returns category i's events per second of elapsed virtual time.
func (b *Breakdown) Rate(i int, elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(b.counts[i]) / elapsed.Seconds()
}

// TotalRate returns total events per second of elapsed virtual time.
func (b *Breakdown) TotalRate(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(b.Total()) / elapsed.Seconds()
}

// Labels returns the category labels.
func (b *Breakdown) Labels() []string { return b.labels }

// Table renders a two-row table (percent and events/s), in the style of
// the paper's Table I.
func (b *Breakdown) Table(elapsed sim.Time) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s", "Category")
	for _, l := range b.labels {
		fmt.Fprintf(&sb, "%16s", l)
	}
	fmt.Fprintf(&sb, "%16s\n", "Total")
	fmt.Fprintf(&sb, "%-22s", "Share (%)")
	for i := range b.labels {
		fmt.Fprintf(&sb, "%15.1f%%", b.Percent(i))
	}
	fmt.Fprintf(&sb, "%15.1f%%\n", 100.0)
	fmt.Fprintf(&sb, "%-22s", "Events/s")
	for i := range b.labels {
		fmt.Fprintf(&sb, "%16.0f", b.Rate(i, elapsed))
	}
	fmt.Fprintf(&sb, "%16.0f\n", b.TotalRate(elapsed))
	return sb.String()
}
