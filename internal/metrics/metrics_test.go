package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"es2/internal/sim"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
	if r := c.Rate(sim.Second); r != 5 {
		t.Fatalf("Rate = %v, want 5", r)
	}
	if r := c.Rate(0); r != 0 {
		t.Fatalf("Rate(0) = %v, want 0", r)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Set(-3)
	g.Set(4)
	if g.Value() != 4 || g.Min() != -3 || g.Max() != 10 {
		t.Fatalf("gauge: v=%d min=%d max=%d", g.Value(), g.Min(), g.Max())
	}
}

func TestHistogramExactSmall(t *testing.T) {
	h := NewHistogram(1000)
	for i := 1; i <= 100; i++ {
		h.Observe(sim.Time(i))
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != sim.Time(50) { // exact mean 50.5 truncated by float→Time conversion
		t.Fatalf("Mean = %v, want 50", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if q := h.Quantile(0.5); q != 50 {
		t.Fatalf("p50 = %v, want 50", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Fatalf("p100 = %v, want 100", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("p0 = %v, want 1", q)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0)
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramSubsampling(t *testing.T) {
	h := NewHistogram(128)
	const n = 100000
	for i := 0; i < n; i++ {
		h.Observe(sim.Time(i))
	}
	if h.Count() != n {
		t.Fatalf("Count = %d, want %d", h.Count(), n)
	}
	// Exact stats survive subsampling.
	wantMean := float64(n-1) / 2
	if m := float64(h.Mean()); math.Abs(m-wantMean) > 1 {
		t.Fatalf("Mean = %v, want ~%v", m, wantMean)
	}
	if h.Max() != n-1 || h.Min() != 0 {
		t.Fatalf("min/max wrong: %v/%v", h.Min(), h.Max())
	}
	// Quantiles should stay roughly accurate despite decimation.
	p50 := float64(h.Quantile(0.5))
	if p50 < 0.4*n || p50 > 0.6*n {
		t.Fatalf("p50 = %v, want ~%v", p50, n/2)
	}
	if len(h.samples) > 129 {
		t.Fatalf("retained %d samples, budget 128", len(h.samples))
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram(256)
		for _, v := range vals {
			h.Observe(sim.Time(v))
		}
		prev := h.Quantile(0)
		for q := 0.1; q <= 1.0; q += 0.1 {
			cur := h.Quantile(q)
			if cur < prev || cur < h.Min() || cur > h.Max() {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Append(1, 2.0)
	s.Append(2, 6.0)
	s.Append(3, 4.0)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Max() != 6.0 {
		t.Fatalf("Max = %v", s.Max())
	}
	if s.Mean() != 4.0 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	var empty Series
	if empty.Max() != 0 || empty.Mean() != 0 {
		t.Fatal("empty series should report zeros")
	}
}

func TestBreakdown(t *testing.T) {
	b := NewBreakdown("A", "B", "C")
	for i := 0; i < 10; i++ {
		b.Inc(0)
	}
	for i := 0; i < 30; i++ {
		b.Inc(1)
	}
	if b.Total() != 40 {
		t.Fatalf("Total = %d", b.Total())
	}
	if p := b.Percent(1); p != 75 {
		t.Fatalf("Percent(1) = %v, want 75", p)
	}
	if p := b.Percent(2); p != 0 {
		t.Fatalf("Percent(2) = %v, want 0", p)
	}
	if r := b.Rate(0, 2*sim.Second); r != 5 {
		t.Fatalf("Rate = %v, want 5", r)
	}
	if r := b.TotalRate(sim.Second); r != 40 {
		t.Fatalf("TotalRate = %v, want 40", r)
	}
	table := b.Table(sim.Second)
	if table == "" {
		t.Fatal("Table returned empty string")
	}
}

func TestBreakdownEmptyPercent(t *testing.T) {
	b := NewBreakdown("only")
	if b.Percent(0) != 0 {
		t.Fatal("empty breakdown Percent should be 0")
	}
	if b.Rate(0, 0) != 0 || b.TotalRate(0) != 0 {
		t.Fatal("zero elapsed should give zero rates")
	}
}

func TestGaugeReset(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Set(-3)
	g.Set(4)
	g.Reset()
	if g.Value() != 4 || g.Min() != 4 || g.Max() != 4 {
		t.Fatalf("after Reset: v=%d min=%d max=%d, want all 4", g.Value(), g.Min(), g.Max())
	}
	g.Set(7)
	g.Set(5)
	if g.Min() != 4 || g.Max() != 7 {
		t.Fatalf("post-Reset tracking: min=%d max=%d, want 4/7", g.Min(), g.Max())
	}
}

func TestGaugeResetNeverSet(t *testing.T) {
	var g Gauge
	g.Reset()
	if g.Value() != 0 || g.Min() != 0 || g.Max() != 0 {
		t.Fatal("Reset on a never-set gauge must stay zero")
	}
	g.Set(-5)
	if g.Min() != -5 || g.Max() != -5 {
		t.Fatalf("first Set after empty Reset: min=%d max=%d, want -5/-5", g.Min(), g.Max())
	}
}

func TestSeriesReset(t *testing.T) {
	s := Series{Name: "probe"}
	s.Append(1, 2.0)
	s.Append(2, 6.0)
	s.Reset()
	if s.Len() != 0 || s.Name != "probe" {
		t.Fatalf("after Reset: len=%d name=%q, want 0/probe", s.Len(), s.Name)
	}
	if s.Max() != 0 || s.Mean() != 0 {
		t.Fatal("reset series should report zeros")
	}
	s.Append(3, 9.0)
	if s.Len() != 1 || s.Max() != 9.0 {
		t.Fatalf("append after Reset: len=%d max=%v", s.Len(), s.Max())
	}
}
