package metrics

import (
	"fmt"
	"math"
	"math/bits"

	"es2/internal/sim"
)

// Log-bucket geometry. Values below subCount land in exact unit-wide
// buckets; above, each power of two is split into subCount linear
// sub-buckets, so the relative bucket width — and therefore the worst
// quantile error — is bounded by 1/subCount (< 0.8%).
const (
	logSubBits  = 7
	logSubCount = 1 << logSubBits
	// logNumBuckets covers every non-negative int64: exponents
	// logSubBits..62, one block of logSubCount sub-buckets each, plus
	// the exact region.
	logNumBuckets = (62 - logSubBits + 2) * logSubCount
)

// LogHistogram is an HDR-style log-bucketed latency histogram: O(1)
// insertion, fixed memory (~57KB once touched) regardless of sample
// count, exact count/sum/min/max (hence exact Mean), and quantiles
// within the bucket's relative error bound (< 1%). It replaces the
// sorted-sample Histogram where unbounded high-rate runs must not grow
// memory, and backs the telemetry latency spectra.
type LogHistogram struct {
	counts   []uint64 // allocated on first Observe
	count    uint64
	sum      sim.Time
	min, max sim.Time
}

// NewLogHistogram returns an empty log-bucketed histogram.
func NewLogHistogram() *LogHistogram { return &LogHistogram{} }

// logBucketIndex maps a non-negative value to its bucket.
func logBucketIndex(v sim.Time) int {
	if v < logSubCount {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // 2^e <= v < 2^(e+1), e >= logSubBits
	shift := uint(e - logSubBits)
	return (e-logSubBits+1)*logSubCount + int(uint64(v)>>shift) - logSubCount
}

// logBucketBounds returns a bucket's [low, low+width) range.
func logBucketBounds(idx int) (low, width sim.Time) {
	if idx < logSubCount {
		return sim.Time(idx), 1
	}
	block := idx >> logSubBits // >= 1
	sub := idx & (logSubCount - 1)
	shift := uint(block - 1)
	return sim.Time(uint64(logSubCount+sub) << shift), sim.Time(uint64(1) << shift)
}

// Observe records one duration. Negative durations (which the
// simulator never produces) are clamped into the zero bucket but enter
// sum/min/max exactly.
func (h *LogHistogram) Observe(d sim.Time) {
	if h.counts == nil {
		h.counts = make([]uint64, logNumBuckets)
	}
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if h.count == 1 || d > h.max {
		h.max = d
	}
	v := d
	if v < 0 {
		v = 0
	}
	h.counts[logBucketIndex(v)]++
}

// Count returns the number of observations.
func (h *LogHistogram) Count() uint64 { return h.count }

// Sum returns the exact sum of all observations.
func (h *LogHistogram) Sum() sim.Time { return h.sum }

// Mean returns the exact mean of all observations (0 when empty).
func (h *LogHistogram) Mean() sim.Time {
	if h.count == 0 {
		return 0
	}
	return sim.Time(float64(h.sum) / float64(h.count))
}

// Min returns the smallest observation (0 when empty).
func (h *LogHistogram) Min() sim.Time { return h.min }

// Max returns the largest observation (0 when empty).
func (h *LogHistogram) Max() sim.Time { return h.max }

// Reset discards all observations (used at measurement-window
// boundaries). The bucket array is kept, zeroed.
func (h *LogHistogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.count, h.sum, h.min, h.max = 0, 0, 0, 0
}

// Quantile returns the q-quantile (0 <= q <= 1). The result is the
// midpoint of the bucket holding the rank, clamped into [Min, Max], so
// the relative error is bounded by the bucket width (< 1%).
func (h *LogHistogram) Quantile(q float64) sim.Time {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			low, width := logBucketBounds(i)
			v := low + width/2
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// CountAbove returns the number of observations strictly above
// threshold, at bucket resolution: the bucket straddling the
// threshold counts as below, so the result errs low by at most the
// bucket's relative width (< 1%). Backs latency SLOs (bad = requests
// slower than the objective threshold).
func (h *LogHistogram) CountAbove(threshold sim.Time) uint64 {
	if h.count == 0 {
		return 0
	}
	if threshold < 0 {
		return h.count
	}
	if threshold >= h.max {
		return 0
	}
	var n uint64
	for i := logBucketIndex(threshold) + 1; i < len(h.counts); i++ {
		n += h.counts[i]
	}
	return n
}

// Buckets calls fn for every non-empty bucket in ascending order with
// the bucket's exclusive upper bound and count. Used for histogram
// exposition.
func (h *LogHistogram) Buckets(fn func(upper sim.Time, count uint64)) {
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		low, width := logBucketBounds(i)
		fn(low+width, c)
	}
}

// Summary formats count/mean/p50/p99/max for reports.
func (h *LogHistogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.max)
}
