// Package enginestats measures the simulation engine itself: real
// wall-clock time, allocation pressure, heap behavior and
// per-subsystem cost of the event loop. Everything else in this repo
// observes the *simulated* world; this package observes the simulator,
// and is the measurement layer every engine optimization (sharding,
// calendar queues, parallel execution) is judged against.
//
// A Collector attaches to one sim.Engine. The engine feeds it two
// streams: a per-event hook (RunEvent) that tracks the
// events-per-sim-tick distribution and — for a deterministic 1-in-N
// sample of events — times the callback with time.Now and charges the
// elapsed wall time and allocated bytes to the subsystem (Go package)
// that scheduled the event. Sampling keeps the overhead well under 2%
// of wall time at the default interval; the sampling decision is a
// plain counter, so enabling stats never perturbs the simulation —
// simulated results are byte-identical with and without it.
//
// Attribution labels come from the scheduling call site: when an event
// is selected for sampling, SampleSite walks the caller PCs past the
// sim package and interns the first foreign package name ("vhost",
// "sched", "guest", ...). PC→label resolutions are cached, so the
// runtime.Callers walk is paid once per call site, not per sample.
//
// Allocation attribution reads the process-wide heap allocation
// counter (runtime/metrics), so when several engines run concurrently
// (RunMany) the per-subsystem allocation split is cross-contaminated;
// wall-time rows remain per-engine accurate. Benchmarks that care
// (es2bench -perf) run one scenario at a time.
package enginestats

import (
	"fmt"
	"math/bits"
	"runtime"
	"runtime/metrics"
	"sort"
	"strings"
	"time"
)

// DefaultSampleN is the default 1-in-N event sampling interval. At
// typical event costs (0.5–5µs of real work per callback) the two
// time.Now calls plus one runtime/metrics read per sampled event stay
// below 2% of total wall time.
const DefaultSampleN = 128

// heapAllocsMetric is the monotonically increasing total of heap bytes
// allocated, cheap to read relative to runtime.ReadMemStats.
const heapAllocsMetric = "/gc/heap/allocs:bytes"

// HeapStats summarizes event-queue behavior. The engine maintains
// these counters unconditionally (they are plain increments); the
// wall-clock Collector is what costs anything and stays opt-in.
type HeapStats struct {
	// Pushes, Pops and Fixes count heap operations. Fixes counts
	// in-place reorderings (none in the current binary-heap engine;
	// the counter exists so calendar-queue/timer-wheel successors
	// report through the same schema).
	Pushes uint64 `json:"pushes"`
	Pops   uint64 `json:"pops"`
	Fixes  uint64 `json:"fixes"`
	// MaxDepth is the deepest the queue ever got; MeanDepth is the
	// mean queue length observed at push time.
	MaxDepth  int     `json:"max_depth"`
	MeanDepth float64 `json:"mean_depth"`
	// Pending is the queue length at snapshot time.
	Pending int `json:"pending"`
}

// TickBucket is one bucket of the events-per-sim-tick distribution:
// Ticks distinct simulated instants executed between MinEvents and
// MaxEvents events each. Buckets are powers of two.
type TickBucket struct {
	MinEvents uint64 `json:"min_events"`
	MaxEvents uint64 `json:"max_events"`
	Ticks     uint64 `json:"ticks"`
}

// SubsystemRow is the sampled wall/allocation attribution of one
// subsystem (the Go package that scheduled the events).
type SubsystemRow struct {
	Name string `json:"name"`
	// Samples is the number of sampled event callbacks charged here.
	Samples uint64 `json:"samples"`
	// WallNs and AllocBytes are sums over the sampled callbacks only;
	// multiply by the report's SampleN for a whole-run estimate.
	WallNs     int64  `json:"wall_ns"`
	AllocBytes uint64 `json:"alloc_bytes"`
	// WallShare is this row's fraction of all sampled wall time.
	WallShare float64 `json:"wall_share"`
}

// Report is the engine performance report of one run. All keys are
// stable snake_case. Wall-clock values are machine-dependent and
// nondeterministic, which is why results embed the report outside
// their deterministic JSON surface.
type Report struct {
	// WallNs is real time spent inside Engine.Run between Start and
	// Stop (build/assembly excluded).
	WallNs int64 `json:"wall_ns"`
	// EventsFired is the engine's total executed-event count.
	EventsFired uint64 `json:"events_fired"`
	// EventsPerSec is EventsFired over wall time.
	EventsPerSec float64 `json:"events_per_sec"`
	// SimSeconds is the simulated span covered; SimSecondsPerWallSecond
	// is the time-compression ratio (>1 means faster than real time).
	SimSeconds              float64 `json:"sim_seconds"`
	SimSecondsPerWallSecond float64 `json:"sim_seconds_per_wall_second"`

	Heap HeapStats `json:"heap"`
	// Ticks is the number of distinct simulated instants executed;
	// EventsPerTick is their log-bucketed distribution.
	Ticks         uint64       `json:"ticks"`
	EventsPerTick []TickBucket `json:"events_per_tick,omitempty"`

	// SampleN and SampledEvents describe the sampling frame behind
	// Subsystems (top-K by sampled wall time, descending).
	SampleN       int            `json:"sample_n"`
	SampledEvents uint64         `json:"sampled_events"`
	Subsystems    []SubsystemRow `json:"subsystems,omitempty"`

	// Whole-run runtime.MemStats deltas between Start and Stop.
	AllocBytes uint64 `json:"alloc_bytes"`
	Mallocs    uint64 `json:"mallocs"`
	GCPauseNs  uint64 `json:"gc_pause_ns"`
	NumGC      uint32 `json:"num_gc"`
}

// subsystem accumulates one label's sampled charges.
type subsystem struct {
	samples uint64
	wallNs  int64
	alloc   uint64
}

// Collector gathers engine-loop statistics for one engine. Not safe
// for concurrent use — like the engine it attaches to, it lives on one
// goroutine.
type Collector struct {
	sampleN     int
	sinceSample int
	sampled     uint64

	labels   []string // label id → package name; id 0 = unsampled
	labelIDs map[string]int32
	sites    map[uintptr]int32 // call-site PC → label id (0 = sim-internal)
	subs     []subsystem       // indexed by label id

	lastTick   int64
	haveTick   bool
	tickRunLen uint64
	ticks      uint64
	tickDist   [17]uint64 // bucket i: run length in [2^(i-1)+1, 2^i]; bucket 0: 1

	allocSample [1]metrics.Sample

	running bool
	t0      time.Time
	wallNs  int64
	mem0    runtime.MemStats
	mem1    runtime.MemStats
}

// New returns a collector sampling one event callback in sampleN
// (non-positive selects DefaultSampleN).
func New(sampleN int) *Collector {
	if sampleN <= 0 {
		sampleN = DefaultSampleN
	}
	c := &Collector{
		sampleN:  sampleN,
		labels:   []string{""}, // id 0 reserved: unsampled / sim-internal
		labelIDs: make(map[string]int32),
		sites:    make(map[uintptr]int32),
		subs:     make([]subsystem, 1),
	}
	c.allocSample[0].Name = heapAllocsMetric
	return c
}

// SampleN returns the 1-in-N sampling interval.
func (c *Collector) SampleN() int { return c.sampleN }

// Start opens the wall-clock measurement. Call it immediately before
// the first Engine.Run so assembly/build time is excluded.
func (c *Collector) Start() {
	if c == nil || c.running {
		return
	}
	runtime.ReadMemStats(&c.mem0)
	c.running = true
	c.t0 = time.Now()
}

// Stop closes the wall-clock measurement. Start/Stop may bracket
// multiple Engine.Run calls; intervals accumulate.
func (c *Collector) Stop() {
	if c == nil || !c.running {
		return
	}
	c.wallNs += time.Since(c.t0).Nanoseconds()
	c.running = false
	runtime.ReadMemStats(&c.mem1)
}

// SampleSite is called by the engine once per scheduled event. It
// returns 0 for the (N-1)-in-N unsampled majority; for the 1-in-N
// sample it resolves the scheduling package from the caller stack and
// returns its interned label id. The decision is a plain counter, so
// it is deterministic across runs of the same spec.
func (c *Collector) SampleSite() int32 {
	c.sinceSample++
	if c.sinceSample < c.sampleN {
		return 0
	}
	c.sinceSample = 0
	var pcs [8]uintptr
	// Skip runtime.Callers, SampleSite and Engine.At itself; the first
	// captured frame is At's caller (possibly Engine.After or another
	// sim-internal wrapper, skipped below).
	n := runtime.Callers(3, pcs[:])
	for _, pc := range pcs[:n] {
		id, ok := c.sites[pc]
		if !ok {
			id = c.resolve(pc)
			c.sites[pc] = id
		}
		if id != 0 {
			return id
		}
	}
	return c.intern("sim") // engine-internal scheduling only
}

// resolve maps one caller PC to a label id (0 when the frame belongs
// to the sim package and the walk should continue outward).
func (c *Collector) resolve(pc uintptr) int32 {
	frames := runtime.CallersFrames([]uintptr{pc})
	f, _ := frames.Next()
	name := f.Function
	if name == "" {
		return 0
	}
	// "es2/internal/vhost.(*Device).kick" → package element "vhost";
	// "es2.Run.func2" → "es2"; "main.main" → "main".
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	if j := strings.IndexByte(name, '.'); j >= 0 {
		name = name[:j]
	}
	if name == "sim" {
		return 0
	}
	return c.intern(name)
}

func (c *Collector) intern(label string) int32 {
	if id, ok := c.labelIDs[label]; ok {
		return id
	}
	id := int32(len(c.labels))
	c.labels = append(c.labels, label)
	c.labelIDs[label] = id
	c.subs = append(c.subs, subsystem{})
	return id
}

// RunEvent executes one event callback on the collector's watch:
// the tick-run accounting always happens; sampled events (label != 0)
// are additionally timed and charged.
func (c *Collector) RunEvent(tick int64, label int32, fn func()) {
	if !c.haveTick || tick != c.lastTick {
		c.flushTick()
		c.lastTick = tick
		c.haveTick = true
	}
	c.tickRunLen++
	if label == 0 {
		fn()
		return
	}
	a0 := c.readAllocBytes()
	t0 := time.Now()
	fn()
	d := time.Since(t0).Nanoseconds()
	a1 := c.readAllocBytes()
	c.sampled++
	s := &c.subs[label]
	s.samples++
	s.wallNs += d
	if a1 > a0 {
		s.alloc += a1 - a0
	}
}

func (c *Collector) readAllocBytes() uint64 {
	metrics.Read(c.allocSample[:])
	if c.allocSample[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return c.allocSample[0].Value.Uint64()
}

// flushTick closes the current same-instant run into the distribution.
func (c *Collector) flushTick() {
	if c.tickRunLen == 0 {
		return
	}
	b := bits.Len64(c.tickRunLen - 1) // 1→0, 2→1, 3..4→2, 5..8→3, ...
	if b >= len(c.tickDist) {
		b = len(c.tickDist) - 1
	}
	c.tickDist[b]++
	c.ticks++
	c.tickRunLen = 0
}

// Report assembles the performance report. fired and heap come from
// the engine (the caller owns that handle; this package has no sim
// dependency), simSeconds is the simulated span the Start/Stop window
// covered, and topK bounds the subsystem table (<=0 keeps every row).
func (c *Collector) Report(fired uint64, heap HeapStats, simSeconds float64, topK int) *Report {
	c.Stop()
	c.flushTick()
	r := &Report{
		WallNs:      c.wallNs,
		EventsFired: fired,
		SimSeconds:  simSeconds,
		Heap:        heap,
		Ticks:       c.ticks,
		SampleN:     c.sampleN,

		SampledEvents: c.sampled,
		AllocBytes:    c.mem1.TotalAlloc - c.mem0.TotalAlloc,
		Mallocs:       c.mem1.Mallocs - c.mem0.Mallocs,
		GCPauseNs:     c.mem1.PauseTotalNs - c.mem0.PauseTotalNs,
		NumGC:         c.mem1.NumGC - c.mem0.NumGC,
	}
	if c.wallNs > 0 {
		r.EventsPerSec = float64(fired) / (float64(c.wallNs) / 1e9)
		r.SimSecondsPerWallSecond = simSeconds / (float64(c.wallNs) / 1e9)
	}
	for b, n := range c.tickDist {
		if n == 0 {
			continue
		}
		min, max := uint64(1), uint64(1)
		if b > 0 {
			min = uint64(1)<<(b-1) + 1
			max = uint64(1) << b
		}
		r.EventsPerTick = append(r.EventsPerTick, TickBucket{MinEvents: min, MaxEvents: max, Ticks: n})
	}
	var totalWall int64
	for id := 1; id < len(c.subs); id++ {
		s := c.subs[id]
		if s.samples == 0 {
			continue
		}
		totalWall += s.wallNs
		r.Subsystems = append(r.Subsystems, SubsystemRow{
			Name: c.labels[id], Samples: s.samples,
			WallNs: s.wallNs, AllocBytes: s.alloc,
		})
	}
	sort.Slice(r.Subsystems, func(i, j int) bool {
		a, b := r.Subsystems[i], r.Subsystems[j]
		if a.WallNs != b.WallNs {
			return a.WallNs > b.WallNs
		}
		return a.Name < b.Name
	})
	if topK > 0 && len(r.Subsystems) > topK {
		r.Subsystems = r.Subsystems[:topK]
	}
	if totalWall > 0 {
		for i := range r.Subsystems {
			r.Subsystems[i].WallShare = float64(r.Subsystems[i].WallNs) / float64(totalWall)
		}
	}
	return r
}

// Render formats the report as the human-readable block the CLIs
// print.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine     %s wall, %s events (%s events/s, sim/wall %.2fx)\n",
		time.Duration(r.WallNs).Round(time.Millisecond), countStr(r.EventsFired),
		countStr(uint64(r.EventsPerSec)), r.SimSecondsPerWallSecond)
	fmt.Fprintf(&b, "  heap     %s pushes, %s pops, max depth %d, mean depth %.1f; %s ticks\n",
		countStr(r.Heap.Pushes), countStr(r.Heap.Pops), r.Heap.MaxDepth, r.Heap.MeanDepth,
		countStr(r.Ticks))
	fmt.Fprintf(&b, "  memory   %s allocated in %s objects, %d GCs (%v paused)\n",
		byteStr(r.AllocBytes), countStr(r.Mallocs), r.NumGC,
		time.Duration(r.GCPauseNs).Round(time.Microsecond))
	if len(r.Subsystems) > 0 {
		fmt.Fprintf(&b, "  subsystems (1-in-%d sampled, %s samples):\n", r.SampleN, countStr(r.SampledEvents))
		fmt.Fprintf(&b, "    %-14s %10s %12s %12s %7s\n", "package", "samples", "wall", "alloc", "share")
		for _, s := range r.Subsystems {
			fmt.Fprintf(&b, "    %-14s %10d %12v %12s %6.1f%%\n",
				s.Name, s.Samples, time.Duration(s.WallNs).Round(time.Microsecond),
				byteStr(s.AllocBytes), 100*s.WallShare)
		}
	}
	return b.String()
}

func countStr(n uint64) string {
	switch {
	case n >= 10_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.0fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

func byteStr(n uint64) string {
	switch {
	case n >= 10<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 10<<10:
		return fmt.Sprintf("%.0fkB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
