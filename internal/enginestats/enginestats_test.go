package enginestats

import (
	"strings"
	"testing"
	"time"
)

func TestNewDefaultsSampleN(t *testing.T) {
	if got := New(0).SampleN(); got != DefaultSampleN {
		t.Fatalf("New(0).SampleN() = %d, want %d", got, DefaultSampleN)
	}
	if got := New(-3).SampleN(); got != DefaultSampleN {
		t.Fatalf("New(-3).SampleN() = %d, want %d", got, DefaultSampleN)
	}
	if got := New(7).SampleN(); got != 7 {
		t.Fatalf("New(7).SampleN() = %d, want 7", got)
	}
}

func TestSampleSiteInterval(t *testing.T) {
	c := New(4)
	sampled := 0
	for i := 0; i < 40; i++ {
		if c.SampleSite() != 0 {
			sampled++
		}
	}
	if sampled != 10 {
		t.Fatalf("sampled %d of 40 with N=4, want 10", sampled)
	}
}

// atDepth stands in for Engine.At: SampleSite's skip count is tuned
// for being called one frame below the scheduling call site.
func atDepth(c *Collector) int32 { return c.SampleSite() }

func TestSampleSiteLabelsThisPackage(t *testing.T) {
	c := New(1)
	id := atDepth(c)
	if id == 0 {
		t.Fatalf("N=1 collector returned unsampled")
	}
	// The caller stack has no sim frames, so the first foreign frame is
	// this test (package enginestats).
	if got := c.labels[id]; got != "enginestats" {
		t.Fatalf("label = %q, want enginestats", got)
	}
	if id2 := atDepth(c); id2 != id {
		t.Fatalf("same call site resolved to different ids: %d then %d", id, id2)
	}
}

func TestRunEventChargesLabel(t *testing.T) {
	c := New(1)
	id := c.intern("vhost")
	ran := false
	c.RunEvent(10, id, func() {
		ran = true
		time.Sleep(time.Millisecond)
	})
	c.RunEvent(10, 0, func() {}) // unsampled: counted in tick run only
	if !ran {
		t.Fatalf("callback did not run")
	}
	r := c.Report(2, HeapStats{}, 1e-3, 0)
	if len(r.Subsystems) != 1 || r.Subsystems[0].Name != "vhost" {
		t.Fatalf("subsystems = %+v, want one vhost row", r.Subsystems)
	}
	row := r.Subsystems[0]
	if row.Samples != 1 || row.WallNs < int64(time.Millisecond/2) {
		t.Fatalf("vhost row = %+v, want 1 sample with >=0.5ms wall", row)
	}
	if row.WallShare != 1 {
		t.Fatalf("WallShare = %v, want 1 (only row)", row.WallShare)
	}
	if r.SampledEvents != 1 {
		t.Fatalf("SampledEvents = %d, want 1", r.SampledEvents)
	}
}

func TestTickDistribution(t *testing.T) {
	c := New(1 << 30) // effectively never sample; ticks still count
	// Tick 5: 1 event. Tick 6: 3 events. Tick 9: 8 events.
	c.RunEvent(5, 0, func() {})
	for i := 0; i < 3; i++ {
		c.RunEvent(6, 0, func() {})
	}
	for i := 0; i < 8; i++ {
		c.RunEvent(9, 0, func() {})
	}
	r := c.Report(12, HeapStats{}, 1, 0)
	if r.Ticks != 3 {
		t.Fatalf("Ticks = %d, want 3", r.Ticks)
	}
	want := map[uint64]uint64{1: 1, 4: 1, 8: 1} // buckets by MaxEvents: [1,1], [3,4], [5,8]
	got := map[uint64]uint64{}
	for _, b := range r.EventsPerTick {
		got[b.MaxEvents] = b.Ticks
	}
	for maxEv, n := range want {
		if got[maxEv] != n {
			t.Fatalf("events-per-tick = %+v, want buckets %v", r.EventsPerTick, want)
		}
	}
}

func TestReportRatesAndTopK(t *testing.T) {
	c := New(1)
	for i, name := range []string{"a", "b", "c"} {
		id := c.intern(name)
		for j := 0; j <= i; j++ {
			c.RunEvent(int64(i), id, func() { time.Sleep(50 * time.Microsecond) })
		}
	}
	c.Start()
	time.Sleep(2 * time.Millisecond)
	r := c.Report(1000, HeapStats{Pushes: 1000, Pops: 1000}, 0.5, 2)
	if r.WallNs <= 0 {
		t.Fatalf("WallNs = %d, want > 0", r.WallNs)
	}
	if r.EventsPerSec <= 0 || r.SimSecondsPerWallSecond <= 0 {
		t.Fatalf("rates not computed: %+v", r)
	}
	if len(r.Subsystems) != 2 {
		t.Fatalf("topK=2 kept %d rows", len(r.Subsystems))
	}
	// "c" ran 3 sampled events, "b" 2 — wall-descending keeps them.
	if r.Subsystems[0].Samples < r.Subsystems[1].Samples {
		t.Fatalf("rows not wall-sorted: %+v", r.Subsystems)
	}
}

func TestStartStopAccumulate(t *testing.T) {
	c := New(1)
	c.Start()
	time.Sleep(time.Millisecond)
	c.Stop()
	first := c.wallNs
	if first <= 0 {
		t.Fatalf("wallNs = %d after first interval", first)
	}
	c.Start()
	time.Sleep(time.Millisecond)
	c.Stop()
	if c.wallNs <= first {
		t.Fatalf("wallNs did not accumulate: %d then %d", first, c.wallNs)
	}
	// Idempotent stop, nil-safe both.
	c.Stop()
	var nilC *Collector
	nilC.Start()
	nilC.Stop()
}

func TestRenderMentionsKeyFigures(t *testing.T) {
	c := New(1)
	id := c.intern("sched")
	c.RunEvent(1, id, func() {})
	c.Start()
	time.Sleep(time.Millisecond)
	r := c.Report(42, HeapStats{Pushes: 42, Pops: 42, MaxDepth: 7}, 1, 0)
	out := r.Render()
	for _, want := range []string{"engine", "heap", "memory", "sched", "max depth 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render() missing %q:\n%s", want, out)
		}
	}
}
