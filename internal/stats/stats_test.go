package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestDescribeBasics(t *testing.T) {
	s := Describe([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("N=%d mean=%v", s.N, s.Mean)
	}
	// Sample stddev of this classic set is ~2.138.
	if math.Abs(s.StdDev-2.13809) > 1e-4 {
		t.Fatalf("stddev = %v", s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
}

func TestDescribeDegenerate(t *testing.T) {
	if s := Describe(nil); s.N != 0 || s.CI95() != 0 || s.String() != "n/a" {
		t.Fatal("empty sample mishandled")
	}
	s := Describe([]float64{3.5})
	if s.Mean != 3.5 || s.StdDev != 0 || s.CI95() != 0 {
		t.Fatalf("single sample: %+v", s)
	}
	if strings.Contains(s.String(), "±") {
		t.Fatal("single sample should not render a CI")
	}
}

func TestCI95KnownValue(t *testing.T) {
	// n=3, stddev=1 → half-width = 4.303/sqrt(3) ≈ 2.484
	s := Sample{N: 3, StdDev: 1}
	if math.Abs(s.CI95()-4.303/math.Sqrt(3)) > 1e-9 {
		t.Fatalf("CI95 = %v", s.CI95())
	}
	// Large n falls back to the normal value.
	big := Sample{N: 100, StdDev: 1}
	if math.Abs(big.CI95()-1.96/10) > 1e-9 {
		t.Fatalf("CI95(large) = %v", big.CI95())
	}
}

func TestStringWithCI(t *testing.T) {
	s := Describe([]float64{1, 2, 3})
	out := s.String()
	if !strings.Contains(out, "±") || !strings.Contains(out, "n=3") {
		t.Fatalf("String() = %q", out)
	}
}

func TestRelSpread(t *testing.T) {
	s := Describe([]float64{90, 100, 110})
	if math.Abs(s.RelSpread()-0.2) > 1e-9 {
		t.Fatalf("RelSpread = %v", s.RelSpread())
	}
	if (Sample{}).RelSpread() != 0 {
		t.Fatal("degenerate RelSpread should be 0")
	}
}

// Properties: mean within [min,max]; stddev non-negative; shifting the
// data shifts the mean and preserves the stddev.
func TestDescribeProperties(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Describe(xs)
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 || s.StdDev < 0 {
			return false
		}
		shifted := make([]float64, len(xs))
		for i := range xs {
			shifted[i] = xs[i] + 1000
		}
		s2 := Describe(shifted)
		return math.Abs(s2.Mean-(s.Mean+1000)) < 1e-6 && math.Abs(s2.StdDev-s.StdDev) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
