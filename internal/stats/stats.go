// Package stats provides the small-sample statistics used when
// aggregating replicated experiment runs: mean, standard deviation,
// and Student-t confidence intervals.
package stats

import (
	"fmt"
	"math"
)

// Sample summarizes a set of observations.
type Sample struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (Bessel-corrected)
	Min    float64
	Max    float64
}

// Describe computes summary statistics for xs. An empty slice yields a
// zero Sample.
func Describe(xs []float64) Sample {
	s := Sample{N: len(xs)}
	if s.N == 0 {
		return s
	}
	sum := 0.0
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// t95 holds two-sided 95% Student-t critical values by degrees of
// freedom (1..30); beyond 30 the normal value is used.
var t95 = []float64{
	0, // df=0 unused
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CI95 returns the half-width of the 95% confidence interval for the
// mean (0 when fewer than two observations).
func (s Sample) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	df := s.N - 1
	t := 1.960
	if df < len(t95) {
		t = t95[df]
	}
	return t * s.StdDev / math.Sqrt(float64(s.N))
}

// String renders "mean ± ci95 [n=N]".
func (s Sample) String() string {
	if s.N == 0 {
		return "n/a"
	}
	if s.N == 1 {
		return fmt.Sprintf("%.4g", s.Mean)
	}
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean, s.CI95(), s.N)
}

// RelSpread returns (max-min)/mean as a dimensionless dispersion
// measure (0 for degenerate samples).
func (s Sample) RelSpread() float64 {
	if s.N == 0 || s.Mean == 0 {
		return 0
	}
	return (s.Max - s.Min) / math.Abs(s.Mean)
}
