package core

import (
	"testing"

	"es2/internal/apic"
	"es2/internal/sched"
	"es2/internal/sim"
	"es2/internal/vmm"
)

func newTestKVM(cores int, usePI bool) (*sim.Engine, *vmm.KVM) {
	eng := sim.NewEngine(1)
	s := sched.New(eng, cores, sched.DefaultParams())
	cost := vmm.DefaultCosts()
	cost.TimerTickPeriod = 0
	cost.OtherExitPeriod = 0
	k := vmm.NewKVM(eng, s, cost)
	k.UsePI = usePI
	return eng, k
}

func addBurn(v *vmm.VCPU) {
	var loop func()
	loop = func() {
		v.EnqueueTask(vmm.NewTask("burn", vmm.PrioIdle, 50*sim.Microsecond, loop))
	}
	loop()
}

func TestConfigNames(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Baseline(), "Baseline"},
		{PIOnly(), "PI"},
		{PIH(4), "PI+H"},
		{Full(4), "PI+H+R"},
	}
	for _, c := range cases {
		if got := c.cfg.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
	if PIH(8).String() != "PI+H(quota=8)" {
		t.Fatalf("String() = %q", PIH(8).String())
	}
	if Baseline().String() != "Baseline" {
		t.Fatalf("String() = %q", Baseline().String())
	}
}

func TestPolicyStrings(t *testing.T) {
	for p, want := range map[Policy]string{
		PolicyLeastLoaded: "least-loaded",
		PolicyRoundRobin:  "round-robin",
		PolicyRandom:      "random",
		PolicyOfflineTail: "offline-tail",
	} {
		if p.String() != want {
			t.Errorf("Policy %d = %q, want %q", p, p.String(), want)
		}
	}
}

func TestSchedWatcherPartitionInvariant(t *testing.T) {
	eng, k := newTestKVM(2, true)
	// Two 2-vCPU VMs sharing 2 cores → constant churn.
	w := NewSchedWatcher()
	vms := []*vmm.VM{
		k.NewVM("a", []int{0, 1}),
		k.NewVM("b", []int{0, 1}),
	}
	for _, vm := range vms {
		w.Attach(vm)
		for _, v := range vm.VCPUs {
			addBurn(v)
		}
	}
	// Check the invariant at many points during the run.
	violations := 0
	var check func()
	check = func() {
		for _, vm := range vms {
			on := w.Online(vm)
			off := w.Offline(vm)
			if len(on)+len(off) != len(vm.VCPUs) {
				violations++
			}
			seen := map[*vmm.VCPU]bool{}
			for _, v := range append(on, off...) {
				if seen[v] {
					violations++
				}
				seen[v] = true
			}
			for _, v := range on {
				if !v.Online() {
					violations++
				}
			}
			for _, v := range off {
				if v.Online() {
					violations++
				}
			}
		}
		if eng.Now() < 2*sim.Second {
			eng.After(777*sim.Microsecond, check)
		}
	}
	eng.After(sim.Millisecond, check)
	eng.Run(2 * sim.Second)
	if violations != 0 {
		t.Fatalf("%d partition violations", violations)
	}
	if w.Transitions == 0 {
		t.Fatal("no scheduling transitions observed")
	}
}

func TestSchedWatcherOfflineOrder(t *testing.T) {
	eng, k := newTestKVM(1, true)
	w := NewSchedWatcher()
	// Three single-vCPU VMs on one core: round-robin scheduling, so the
	// offline head must be the vCPU that has been waiting longest.
	var all []*vmm.VCPU
	vms := []*vmm.VM{}
	for _, n := range []string{"a", "b", "c"} {
		vm := k.NewVM(n, []int{0})
		w.Attach(vm)
		addBurn(vm.VCPUs[0])
		all = append(all, vm.VCPUs[0])
		vms = append(vms, vm)
	}
	eng.Run(500 * sim.Millisecond)
	// Exactly one of the three runs; per-VM lists each hold one vCPU.
	online := 0
	for _, vm := range vms {
		online += len(w.Online(vm))
	}
	if online != 1 {
		t.Fatalf("online across VMs = %d, want 1", online)
	}
	_ = all
}

func TestRedirectorFilters(t *testing.T) {
	_, k := newTestKVM(2, true)
	vm := k.NewVM("vm", []int{0, 1})
	w := NewSchedWatcher()
	w.Attach(vm)
	r := NewRedirector(w, PolicyLeastLoaded, sim.NewRand(1))

	dev := vm.AllocVector(vmm.ClassDevice, nil)
	loc := vm.AllocVector(vmm.ClassLocal, nil)

	if got := r.Route(vm, apic.MSIMessage{Vector: dev, Dest: 0, Mode: apic.Fixed}); got != nil {
		t.Fatal("fixed delivery mode must not be redirected")
	}
	if got := r.Route(vm, apic.MSIMessage{Vector: loc, Dest: 0, Mode: apic.LowestPriority}); got != nil {
		t.Fatal("local vector must not be redirected")
	}
	if r.Filtered != 2 {
		t.Fatalf("Filtered = %d, want 2", r.Filtered)
	}
}

func TestRedirectorPicksLeastLoadedOnline(t *testing.T) {
	eng, k := newTestKVM(4, true)
	vm := k.NewVM("vm", []int{0, 1, 2, 3})
	w := NewSchedWatcher()
	w.Attach(vm)
	r := NewRedirector(w, PolicyLeastLoaded, sim.NewRand(1))
	dev := vm.AllocVector(vmm.ClassDevice, func(*vmm.VCPU) (sim.Time, func()) {
		return sim.Microsecond, nil
	})
	for _, v := range vm.VCPUs {
		addBurn(v)
	}
	eng.Run(sim.Millisecond) // all four online on their own cores

	// Bias the load counters.
	vm.VCPUs[0].IRQAccepted = 10
	vm.VCPUs[1].IRQAccepted = 3
	vm.VCPUs[2].IRQAccepted = 7
	vm.VCPUs[3].IRQAccepted = 5

	msi := apic.MSIMessage{Vector: dev, Dest: 0, Mode: apic.LowestPriority}
	got := r.Route(vm, msi)
	if got != vm.VCPUs[1] {
		t.Fatalf("Route picked vCPU %d, want 1 (least loaded)", got.ID)
	}
	if r.Redirected != 1 {
		t.Fatalf("Redirected = %d, want 1", r.Redirected)
	}
	// Sticky: subsequent interrupts keep the same target while online,
	// even though its counter grows past others.
	vm.VCPUs[1].IRQAccepted = 100
	if got := r.Route(vm, msi); got != vm.VCPUs[1] {
		t.Fatal("sticky target abandoned while still online")
	}
}

func TestRedirectorOfflinePrediction(t *testing.T) {
	_, k := newTestKVM(1, true)
	vm := k.NewVM("vm", []int{0, 0, 0, 0})
	w := NewSchedWatcher()
	w.Attach(vm)
	r := NewRedirector(w, PolicyLeastLoaded, sim.NewRand(1))
	dev := vm.AllocVector(vmm.ClassDevice, nil)

	// No vCPU has ever run: all offline in index order → head is vCPU 0.
	got := r.Route(vm, apic.MSIMessage{Vector: dev, Dest: 2, Mode: apic.LowestPriority})
	if got != vm.VCPUs[0] {
		t.Fatalf("offline prediction picked vCPU %d, want 0 (head)", got.ID)
	}
	if r.OfflinePredicts != 1 {
		t.Fatal("OfflinePredicts not counted")
	}

	// Tail policy picks the most recently descheduled instead.
	rt := NewRedirector(w, PolicyOfflineTail, sim.NewRand(1))
	if got := rt.Route(vm, apic.MSIMessage{Vector: dev, Dest: 2, Mode: apic.LowestPriority}); got != vm.VCPUs[3] {
		t.Fatalf("offline-tail picked vCPU %d, want 3", got.ID)
	}
}

func TestRedirectorRoundRobinAndRandom(t *testing.T) {
	eng, k := newTestKVM(4, true)
	vm := k.NewVM("vm", []int{0, 1, 2, 3})
	w := NewSchedWatcher()
	w.Attach(vm)
	dev := vm.AllocVector(vmm.ClassDevice, nil)
	for _, v := range vm.VCPUs {
		addBurn(v)
	}
	eng.Run(sim.Millisecond)
	msi := apic.MSIMessage{Vector: dev, Dest: 0, Mode: apic.LowestPriority}

	rr := NewRedirector(w, PolicyRoundRobin, sim.NewRand(1))
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		v := rr.Route(vm, msi)
		// Round-robin is intentionally non-sticky across the rotation:
		// drop stickiness by simulating a deschedule of the pick.
		delete(rr.sticky, vm)
		seen[v.ID] = true
	}
	if len(seen) != 4 {
		t.Fatalf("round-robin covered %d vCPUs, want 4", len(seen))
	}

	rd := NewRedirector(w, PolicyRandom, sim.NewRand(7))
	if rd.Route(vm, msi) == nil {
		t.Fatal("random policy returned nil with online vCPUs")
	}
}

func TestInstallWiresRouter(t *testing.T) {
	_, k := newTestKVM(2, false)
	e := Install(k, Full(8))
	if !k.UsePI {
		t.Fatal("Install(Full) must enable PI")
	}
	if k.Router == nil {
		t.Fatal("Install(Full) must install the redirector")
	}
	vm := k.NewVM("vm", []int{0, 1})
	e.AttachVM(vm)
	if got := len(e.Watcher.Offline(vm)); got != 2 {
		t.Fatalf("attached VM should start fully offline, got %d", got)
	}

	_, k2 := newTestKVM(1, true)
	e2 := Install(k2, Baseline())
	if k2.UsePI || k2.Router != nil {
		t.Fatal("Install(Baseline) must disable PI and not install a router")
	}
	e2.AttachVM(k2.NewVM("x", []int{0})) // must not panic with nil watcher
}

func TestEndToEndRedirectionReducesLatency(t *testing.T) {
	// VM A has vCPU 0 sharing core 0 with VM B's vCPU, and vCPU 1
	// alone on core 1 (always online). Interrupts target vCPU 0 by
	// affinity. With redirection, delivery latency should be bounded by
	// the online-vCPU path rather than vCPU 0's scheduling delay.
	run := func(redirect bool) sim.Time {
		eng, k := newTestKVM(2, true)
		var e *ES2
		if redirect {
			e = Install(k, Full(8))
		} else {
			e = Install(k, PIOnly())
		}
		vmA := k.NewVM("a", []int{0, 1})
		vmB := k.NewVM("b", []int{0})
		e.AttachVM(vmA)
		e.AttachVM(vmB)
		var handledAt sim.Time
		vec := vmA.AllocVector(vmm.ClassDevice, func(*vmm.VCPU) (sim.Time, func()) {
			return sim.Microsecond, func() { handledAt = eng.Now() }
		})
		for _, vm := range []*vmm.VM{vmA, vmB} {
			for _, v := range vm.VCPUs {
				addBurn(v)
			}
		}
		var injectAt sim.Time
		// Find a moment when vmA's vCPU 0 is offline but some vmA vCPU
		// is online, then inject.
		var tryInject func()
		tryInject = func() {
			if !vmA.VCPUs[0].Online() && vmA.VCPUs[1].Online() {
				injectAt = eng.Now()
				k.InjectMSI(vmA, apic.MSIMessage{Vector: vec, Dest: 0, Mode: apic.LowestPriority})
				return
			}
			eng.After(100*sim.Microsecond, tryInject)
		}
		eng.After(5*sim.Millisecond, tryInject)
		eng.Run(400 * sim.Millisecond)
		if handledAt == 0 {
			t.Fatalf("redirect=%t: interrupt never handled", redirect)
		}
		return handledAt - injectAt
	}
	base := run(false)
	redir := run(true)
	if redir >= base {
		t.Fatalf("redirection did not help: base=%v redirected=%v", base, redir)
	}
	if redir > 100*sim.Microsecond {
		t.Fatalf("redirected delivery took %v, want online-path latency (<100us)", redir)
	}
}

func TestWatcherListsSurviveHeavyChurn(t *testing.T) {
	// Long-running churn across many VMs: after the run, online lists
	// must exactly reflect thread states and offline ordering must be
	// by descheduling time.
	eng, k := newTestKVM(3, true)
	w := NewSchedWatcher()
	var vms []*vmm.VM
	for i := 0; i < 4; i++ {
		vm := k.NewVM("vm", []int{0, 1, 2})
		w.Attach(vm)
		for _, v := range vm.VCPUs {
			addBurn(v)
		}
		vms = append(vms, vm)
	}
	eng.Run(3 * sim.Second)
	for _, vm := range vms {
		for _, v := range w.Online(vm) {
			if !v.Online() {
				t.Fatal("stale online entry")
			}
		}
		off := w.Offline(vm)
		for _, v := range off {
			if v.Online() {
				t.Fatal("stale offline entry")
			}
		}
	}
}

func TestRedirectorNoVCPUsReturnsNil(t *testing.T) {
	_, k := newTestKVM(1, true)
	w := NewSchedWatcher()
	r := NewRedirector(w, PolicyLeastLoaded, sim.NewRand(1))
	vm := k.NewVM("vm", []int{0})
	dev := vm.AllocVector(vmm.ClassDevice, nil)
	// VM never attached to the watcher: no lists → keep affinity.
	if got := r.Route(vm, apic.MSIMessage{Vector: dev, Dest: 0, Mode: apic.LowestPriority}); got != nil {
		t.Fatal("unattached VM should fall back to affinity")
	}
}
