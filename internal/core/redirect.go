package core

import (
	"fmt"
	"sync"

	"es2/internal/apic"
	"es2/internal/sim"
	"es2/internal/trace"
	"es2/internal/vmm"
)

// Redirector implements intelligent interrupt redirection: it plugs
// into KVM's MSI routing (the kvm_set_msi_irq interception of Section
// V-C) and overrides the affinity-chosen destination with the vCPU
// that can process the interrupt soonest.
//
// Safety rules from the paper are enforced here: only device vectors
// are redirected (per-vCPU vectors such as the timer would crash the
// guest), and only interrupts using the lowest-priority delivery mode
// (under fixed delivery the guest expects a specific CPU).
type Redirector struct {
	Watcher *SchedWatcher
	Policy  Policy

	mu     sync.Mutex
	sticky map[*vmm.VM]*vmm.VCPU
	rr     map[*vmm.VM]int
	rng    *sim.Rand

	// Stats.
	Redirected      uint64 // routed to a different vCPU than affinity
	KeptAffinity    uint64 // affinity target accepted (or no better)
	OnlineHits      uint64 // served by an online vCPU
	OfflinePredicts uint64 // fell back to the offline-list prediction
	Filtered        uint64 // not eligible (vector class/delivery mode)
	PIDegraded      uint64 // steered away from vCPUs with a broken PI facility
}

// NewRedirector creates a redirector over the watcher's lists.
func NewRedirector(w *SchedWatcher, policy Policy, rng *sim.Rand) *Redirector {
	return &Redirector{
		Watcher: w, Policy: policy,
		sticky: make(map[*vmm.VM]*vmm.VCPU),
		rr:     make(map[*vmm.VM]int),
		rng:    rng,
	}
}

// Route implements vmm.MSIRouter. Returning nil keeps the guest's
// affinity destination.
func (r *Redirector) Route(vm *vmm.VM, msi apic.MSIMessage) *vmm.VCPU {
	// Validity filters (Section V-C): device vectors only, and only
	// under the lowest-priority delivery mode.
	if msi.Mode != apic.LowestPriority || !vm.IsDeviceVector(msi.Vector) {
		r.Filtered++
		return nil
	}

	r.mu.Lock()
	defer r.mu.Unlock()

	// Cache affinity: keep redirecting to the chosen vCPU until the
	// scheduler takes it away (or its PI facility breaks — delivery
	// would silently degrade to the emulated path).
	if t := r.sticky[vm]; t != nil && t.Online() && (!vm.K.UsePI || t.PID.Available()) {
		r.note(vm, t, msi)
		r.OnlineHits++
		return t
	}
	delete(r.sticky, vm)

	online := r.Watcher.Online(vm)
	if vm.K.UsePI && len(online) > 0 {
		// Prefer candidates whose PI facility works; if some (but not
		// all) are degraded, steer around them.
		avail := online[:0:0]
		for _, v := range online {
			if v.PID.Available() {
				avail = append(avail, v)
			}
		}
		if len(avail) > 0 && len(avail) < len(online) {
			r.PIDegraded++
		}
		if len(avail) > 0 {
			online = avail
		}
	}
	if len(online) > 0 {
		t := r.pickOnline(vm, online)
		r.sticky[vm] = t
		r.note(vm, t, msi)
		r.OnlineHits++
		return t
	}

	// No vCPU is online: predict the next one to run. The offline list
	// is ordered by descheduling time, so its head has waited longest
	// and — under fair scheduling — runs next.
	offline := r.Watcher.Offline(vm)
	if len(offline) == 0 {
		return nil
	}
	var t *vmm.VCPU
	if r.Policy == PolicyOfflineTail {
		t = offline[len(offline)-1]
	} else {
		t = offline[0]
	}
	r.OfflinePredicts++
	r.note(vm, t, msi)
	return t
}

// pickOnline applies the configured policy among online candidates.
func (r *Redirector) pickOnline(vm *vmm.VM, online []*vmm.VCPU) *vmm.VCPU {
	switch r.Policy {
	case PolicyRoundRobin:
		i := r.rr[vm] % len(online)
		r.rr[vm]++
		return online[i]
	case PolicyRandom:
		if r.rng != nil {
			return online[r.rng.Intn(len(online))]
		}
		return online[0]
	default: // PolicyLeastLoaded and PolicyOfflineTail share this path
		best := online[0]
		for _, v := range online[1:] {
			if v.IRQAccepted < best.IRQAccepted {
				best = v
			}
		}
		return best
	}
}

func (r *Redirector) note(vm *vmm.VM, target *vmm.VCPU, msi apic.MSIMessage) {
	if target != vm.VCPUs[msi.Dest] {
		r.Redirected++
		if tl := vm.K.Timeline; tl.Active() {
			tl.Instant(target.Track(), fmt.Sprintf("redirect irq%#x", msi.Vector), vm.K.Eng.Now())
		}
	} else {
		r.KeptAffinity++
	}
	vm.K.Trace.Record(vm.K.Eng.Now(), trace.KindRedirect, vm.Index, target.ID, int64(msi.Vector))
}

// ES2 bundles an installed ES2 instance.
type ES2 struct {
	Config     Config
	Watcher    *SchedWatcher
	Redirector *Redirector
}

// Install applies cfg to the hypervisor: selects the delivery path and,
// when redirection is enabled, wires the watcher and router. The
// hybrid component is applied where the back-end devices are created
// (vhost.NewDevice), using cfg.Hybrid/cfg.Quota.
//
// Install must run before VMs are created only if callers want the
// watcher attached automatically — otherwise call AttachVM per VM.
func Install(k *vmm.KVM, cfg Config) *ES2 {
	k.UsePI = cfg.PI
	e := &ES2{Config: cfg}
	if cfg.Redirect {
		e.Watcher = NewSchedWatcher()
		e.Redirector = NewRedirector(e.Watcher, cfg.Policy, k.Eng.Rand().Fork())
		k.Router = e.Redirector
	}
	return e
}

// AttachVM subscribes a VM to the scheduling watcher (no-op when
// redirection is off).
func (e *ES2) AttachVM(vm *vmm.VM) {
	if e.Watcher != nil {
		e.Watcher.Attach(vm)
	}
}
