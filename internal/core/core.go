// Package core implements ES2, the paper's contribution: an Efficient
// and reSponsive Event System for I/O virtualization (Hu et al., ICPP
// 2017). It combines three components:
//
//   - PI processing: hardware posted interrupts as the delivery basis
//     (provided by the vmm package, selected here by Config.PI);
//   - Hybrid I/O Handling: exit-less delivery of guests' I/O requests
//     by a prompt notification/polling mode switch governed by a quota
//     (Algorithm 1, implemented in the vhost package, selected here by
//     Config.Hybrid/Quota);
//   - Intelligent Interrupt Redirection: a scheduler-informed override
//     of MSI routing that sends device interrupts to the vCPU able to
//     process them soonest (implemented here: SchedWatcher +
//     Redirector).
package core

import (
	"fmt"
	"sync"

	"es2/internal/vmm"
)

// Config selects which ES2 components are active, mirroring the four
// configurations of the paper's evaluation (Section VI-A).
type Config struct {
	// PI enables hardware posted-interrupt delivery and completion.
	PI bool `json:"pi"`
	// Hybrid enables the hybrid I/O handling scheme in the vhost
	// back-end with the given Quota (the poll_quota module parameter).
	Hybrid bool `json:"hybrid"`
	Quota  int  `json:"quota"`
	// Redirect enables intelligent interrupt redirection.
	Redirect bool `json:"redirect"`
	// Policy selects the redirection target policy (ablation knob;
	// the paper's design is PolicyLeastLoaded).
	Policy Policy `json:"policy"`
}

// Baseline is KVM with PI disabled.
func Baseline() Config { return Config{} }

// PIOnly enables posted interrupts alone.
func PIOnly() Config { return Config{PI: true} }

// PIH adds hybrid I/O handling on top of PI.
func PIH(quota int) Config { return Config{PI: true, Hybrid: true, Quota: quota} }

// Full is the complete ES2: PI + hybrid + redirection.
func Full(quota int) Config {
	return Config{PI: true, Hybrid: true, Quota: quota, Redirect: true}
}

// Name renders the paper's configuration label.
func (c Config) Name() string {
	switch {
	case c.Redirect && c.Hybrid && c.PI:
		return "PI+H+R"
	case c.Hybrid && c.PI:
		return "PI+H"
	case c.PI:
		return "PI"
	default:
		return "Baseline"
	}
}

// String includes the quota when hybrid is on.
func (c Config) String() string {
	if c.Hybrid {
		return fmt.Sprintf("%s(quota=%d)", c.Name(), c.Quota)
	}
	return c.Name()
}

// Policy is the redirection target-selection policy.
type Policy uint8

const (
	// PolicyLeastLoaded is the paper's design: among online vCPUs pick
	// the one with the fewest processed interrupts (workload
	// balancing), stick to it until it is descheduled (cache
	// affinity); with no online vCPU, predict the head of the offline
	// list (longest offline ≈ first to run again).
	PolicyLeastLoaded Policy = iota
	// PolicyRoundRobin rotates over online vCPUs (ablation).
	PolicyRoundRobin
	// PolicyRandom picks a uniformly random online vCPU (ablation).
	PolicyRandom
	// PolicyOfflineTail inverts the offline prediction (ablation: pick
	// the most recently descheduled vCPU).
	PolicyOfflineTail
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case PolicyLeastLoaded:
		return "least-loaded"
	case PolicyRoundRobin:
		return "round-robin"
	case PolicyRandom:
		return "random"
	case PolicyOfflineTail:
		return "offline-tail"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// vmLists is the per-VM scheduling state ES2 maintains.
type vmLists struct {
	online []*vmm.VCPU
	// offline is ordered by descheduling time: the head was
	// descheduled longest ago, hence — by ES2's prediction — will be
	// the first to regain the CPU.
	offline []*vmm.VCPU
}

// SchedWatcher is ES2's information channel to the vCPU scheduler: it
// subscribes to the preemption notifiers (kvm_sched_in/kvm_sched_out)
// and maintains online/offline vCPU lists per VM.
//
// The lists are mutex-protected: sibling vCPUs on different cores
// change scheduling state concurrently in a real host (Section V-B).
type SchedWatcher struct {
	mu  sync.Mutex
	vms map[*vmm.VM]*vmLists

	// Transitions counts sched-in/out events observed.
	Transitions uint64
}

// NewSchedWatcher returns an empty watcher.
func NewSchedWatcher() *SchedWatcher {
	return &SchedWatcher{vms: make(map[*vmm.VM]*vmLists)}
}

// Attach subscribes to vm's vCPU preemption notifiers. All vCPUs start
// on the offline list in index order.
func (w *SchedWatcher) Attach(vm *vmm.VM) {
	w.mu.Lock()
	l := &vmLists{}
	l.offline = append(l.offline, vm.VCPUs...)
	w.vms[vm] = l
	w.mu.Unlock()
	for _, v := range vm.VCPUs {
		v := v
		v.AddSchedInHook(func(core int) { w.schedIn(vm, v) })
		v.AddSchedOutHook(func() { w.schedOut(vm, v) })
	}
}

func (w *SchedWatcher) schedIn(vm *vmm.VM, v *vmm.VCPU) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.Transitions++
	l := w.vms[vm]
	l.offline = remove(l.offline, v)
	l.online = append(l.online, v)
}

func (w *SchedWatcher) schedOut(vm *vmm.VM, v *vmm.VCPU) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.Transitions++
	l := w.vms[vm]
	l.online = remove(l.online, v)
	// Tail of the offline list: most recently descheduled.
	l.offline = append(l.offline, v)
}

func remove(s []*vmm.VCPU, v *vmm.VCPU) []*vmm.VCPU {
	for i, x := range s {
		if x == v {
			copy(s[i:], s[i+1:])
			s[len(s)-1] = nil
			return s[:len(s)-1]
		}
	}
	return s
}

// Online returns a snapshot of vm's online vCPUs.
func (w *SchedWatcher) Online(vm *vmm.VM) []*vmm.VCPU {
	w.mu.Lock()
	defer w.mu.Unlock()
	l := w.vms[vm]
	if l == nil {
		return nil
	}
	out := make([]*vmm.VCPU, len(l.online))
	copy(out, l.online)
	return out
}

// ListLens returns the current online/offline list lengths for vm
// without copying (snapshot probes; zeros for an unattached VM).
func (w *SchedWatcher) ListLens(vm *vmm.VM) (online, offline int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	l := w.vms[vm]
	if l == nil {
		return 0, 0
	}
	return len(l.online), len(l.offline)
}

// CheckConsistency verifies the watcher's bookkeeping against the
// scheduler's ground truth: the two lists partition vm's vCPUs with no
// duplicates, and membership matches each vCPU's actual scheduling
// state. Used by the opt-in runtime invariant checker; returns nil for
// an unattached VM.
func (w *SchedWatcher) CheckConsistency(vm *vmm.VM) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	l := w.vms[vm]
	if l == nil {
		return nil
	}
	if got, want := len(l.online)+len(l.offline), len(vm.VCPUs); got != want {
		return fmt.Errorf("watcher: lists hold %d vCPUs, VM has %d", got, want)
	}
	seen := make(map[*vmm.VCPU]bool, len(vm.VCPUs))
	for _, v := range l.online {
		if seen[v] {
			return fmt.Errorf("watcher: vCPU %d listed twice", v.ID)
		}
		seen[v] = true
		if !v.Online() {
			return fmt.Errorf("watcher: vCPU %d on online list but not running", v.ID)
		}
	}
	for _, v := range l.offline {
		if seen[v] {
			return fmt.Errorf("watcher: vCPU %d listed twice", v.ID)
		}
		seen[v] = true
		if v.Online() {
			return fmt.Errorf("watcher: vCPU %d on offline list but running", v.ID)
		}
	}
	return nil
}

// Offline returns a snapshot of vm's offline vCPUs in descheduling
// order (head = longest offline).
func (w *SchedWatcher) Offline(vm *vmm.VM) []*vmm.VCPU {
	w.mu.Lock()
	defer w.mu.Unlock()
	l := w.vms[vm]
	if l == nil {
		return nil
	}
	out := make([]*vmm.VCPU, len(l.offline))
	copy(out, l.offline)
	return out
}
