// Package trace provides a bounded event-trace facility in the spirit
// of perf-kvm (the tool the paper uses to collect its exit statistics,
// Section VI-C): model components record typed events into a per-run
// ring buffer, and reports aggregate them into cause breakdowns or dump
// them for inspection.
//
// Tracing is optional and zero-cost when no buffer is installed.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"es2/internal/sim"
)

// Kind tags a trace event.
type Kind uint8

const (
	// KindExit is a VM exit; Arg carries the exit reason.
	KindExit Kind = iota
	// KindIRQDeliver is a virtual interrupt accepted by a vCPU; Arg is
	// the vector.
	KindIRQDeliver
	// KindIRQEOI is an interrupt completion; Arg is the vector.
	KindIRQEOI
	// KindSchedIn / KindSchedOut are vCPU preemption-notifier events;
	// Arg is the core id.
	KindSchedIn
	KindSchedOut
	// KindKick is a delivered guest notification (ioeventfd).
	KindKick
	// KindSignal is a back-end interrupt signal (irqfd).
	KindSignal
	// KindRedirect is an ES2 routing decision; Arg is the chosen vCPU.
	KindRedirect

	numKinds = iota
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindExit:
		return "exit"
	case KindIRQDeliver:
		return "irq-deliver"
	case KindIRQEOI:
		return "irq-eoi"
	case KindSchedIn:
		return "sched-in"
	case KindSchedOut:
		return "sched-out"
	case KindKick:
		return "kick"
	case KindSignal:
		return "signal"
	case KindRedirect:
		return "redirect"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one trace record.
type Event struct {
	T    sim.Time
	Kind Kind
	// VM and VCPU identify the subject (-1 when not applicable).
	VM   int
	VCPU int
	// Arg is kind-specific (exit reason, vector, core...).
	Arg int64
}

// String renders one record.
func (e Event) String() string {
	return fmt.Sprintf("%12v vm%d/vcpu%d %-12s arg=%d", e.T, e.VM, e.VCPU, e.Kind, e.Arg)
}

// Buffer is a bounded ring of events. The zero value is unusable; use
// New. A nil *Buffer is safe to record into (no-op), so components can
// hold one unconditionally.
type Buffer struct {
	ring []Event
	next int // overwrite cursor once the ring is full

	// Total counts all events ever recorded (the ring overwrites the
	// oldest once full, so Len() may be smaller).
	Total uint64

	counts [numKinds]uint64
}

// New creates a buffer retaining the last capacity events.
func New(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = 1 << 14
	}
	return &Buffer{ring: make([]Event, 0, capacity)}
}

// Record appends an event (overwriting the oldest when full). Safe on
// a nil receiver.
func (b *Buffer) Record(t sim.Time, k Kind, vm, vcpu int, arg int64) {
	if b == nil {
		return
	}
	b.Total++
	b.counts[k]++
	e := Event{T: t, Kind: k, VM: vm, VCPU: vcpu, Arg: arg}
	if len(b.ring) < cap(b.ring) {
		b.ring = append(b.ring, e)
		return
	}
	b.ring[b.next] = e
	b.next++
	if b.next == len(b.ring) {
		b.next = 0
	}
}

// Len returns the number of retained events.
func (b *Buffer) Len() int {
	if b == nil {
		return 0
	}
	return len(b.ring)
}

// Count returns how many events of kind k were ever recorded.
func (b *Buffer) Count(k Kind) uint64 {
	if b == nil {
		return 0
	}
	return b.counts[k]
}

// Events returns the retained events in chronological order.
func (b *Buffer) Events() []Event {
	if b == nil {
		return nil
	}
	out := make([]Event, 0, len(b.ring))
	if len(b.ring) == cap(b.ring) {
		out = append(out, b.ring[b.next:]...)
		out = append(out, b.ring[:b.next]...)
	} else {
		out = append(out, b.ring...)
	}
	return out
}

// Summary renders per-kind totals and, for exits, a cause breakdown
// using the provided reason namer.
func (b *Buffer) Summary(elapsed sim.Time, exitName func(int64) string) string {
	if b == nil {
		return "trace: disabled\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace: %d events recorded, %d retained\n", b.Total, b.Len())
	for k := Kind(0); k < numKinds; k++ {
		if b.counts[k] == 0 {
			continue
		}
		rate := 0.0
		if elapsed > 0 {
			rate = float64(b.counts[k]) / elapsed.Seconds()
		}
		fmt.Fprintf(&sb, "  %-12s %10d  (%.0f/s)\n", k, b.counts[k], rate)
	}
	if exitName != nil {
		byReason := map[int64]int{}
		for _, e := range b.Events() {
			if e.Kind == KindExit {
				byReason[e.Arg]++
			}
		}
		if len(byReason) > 0 {
			var reasons []int64
			for r := range byReason {
				reasons = append(reasons, r)
			}
			sort.Slice(reasons, func(i, j int) bool { return byReason[reasons[i]] > byReason[reasons[j]] })
			sb.WriteString("  retained exits by cause:\n")
			for _, r := range reasons {
				fmt.Fprintf(&sb, "    %-20s %8d\n", exitName(r), byReason[r])
			}
		}
	}
	return sb.String()
}
