package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"es2/internal/sim"
)

func TestNilBufferIsNoop(t *testing.T) {
	var b *Buffer
	b.Record(1, KindExit, 0, 0, 2) // must not panic
	if b.Len() != 0 || b.Count(KindExit) != 0 {
		t.Fatal("nil buffer should report zeros")
	}
	if b.Events() != nil {
		t.Fatal("nil buffer should return nil events")
	}
	if !strings.Contains(b.Summary(sim.Second, nil), "disabled") {
		t.Fatal("nil buffer summary should say disabled")
	}
}

func TestRecordAndCounts(t *testing.T) {
	b := New(16)
	b.Record(10, KindExit, 0, 1, 2)
	b.Record(20, KindIRQDeliver, 0, 1, 0x41)
	b.Record(30, KindExit, 1, 0, 0)
	if b.Total != 3 || b.Len() != 3 {
		t.Fatalf("total=%d len=%d", b.Total, b.Len())
	}
	if b.Count(KindExit) != 2 || b.Count(KindIRQDeliver) != 1 {
		t.Fatal("per-kind counts wrong")
	}
	evs := b.Events()
	if len(evs) != 3 || evs[0].T != 10 || evs[2].VM != 1 {
		t.Fatalf("events = %+v", evs)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	b := New(4)
	for i := 0; i < 10; i++ {
		b.Record(sim.Time(i), KindExit, 0, 0, int64(i))
	}
	if b.Total != 10 {
		t.Fatalf("Total = %d", b.Total)
	}
	evs := b.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	// Chronological order of the newest four: 6,7,8,9.
	for i, e := range evs {
		if e.Arg != int64(6+i) {
			t.Fatalf("events out of order: %+v", evs)
		}
	}
}

func TestSummaryRendersExitBreakdown(t *testing.T) {
	b := New(8)
	b.Record(1, KindExit, 0, 0, 0)
	b.Record(2, KindExit, 0, 0, 0)
	b.Record(3, KindExit, 0, 0, 1)
	b.Record(4, KindSchedIn, 0, 0, 2)
	s := b.Summary(sim.Second, func(r int64) string {
		if r == 0 {
			return "ReasonZero"
		}
		return "ReasonOne"
	})
	for _, want := range []string{"ReasonZero", "ReasonOne", "exit", "sched-in", "4 events"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestKindAndEventStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
	e := Event{T: 1500, Kind: KindKick, VM: 1, VCPU: 2, Arg: 3}
	if !strings.Contains(e.String(), "kick") {
		t.Fatal("event string missing kind")
	}
}

func TestDefaultCapacity(t *testing.T) {
	b := New(0)
	if cap(b.ring) != 1<<14 {
		t.Fatalf("default capacity = %d", cap(b.ring))
	}
}

// Property: the ring always retains the most recent min(total, cap)
// events in chronological order.
func TestRingRetentionProperty(t *testing.T) {
	f := func(n uint16, capRaw uint8) bool {
		capacity := int(capRaw)%32 + 1
		b := New(capacity)
		total := int(n) % 200
		for i := 0; i < total; i++ {
			b.Record(sim.Time(i), KindExit, 0, 0, int64(i))
		}
		evs := b.Events()
		want := total
		if want > capacity {
			want = capacity
		}
		if len(evs) != want {
			return false
		}
		for i, e := range evs {
			if e.Arg != int64(total-want+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
