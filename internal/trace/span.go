package trace

import (
	"fmt"

	"es2/internal/metrics"
	"es2/internal/sim"
)

// Stage enumerates the stages of the virtual I/O event path, in path
// order. A span tracer attributes latency to each stage a notification
// unit crosses on its way from the guest's doorbell (or the wire) to
// final delivery, so experiments can ask which stage a mechanism
// actually shortened.
type Stage uint8

const (
	// StageNotify is request notification: guest doorbell write ->
	// back-end handler pops the request. Exit-driven kicks pay the VM
	// exit and worker wake here; hybrid/sidecore polling collapses it
	// to the residual poll-turn wait.
	StageNotify Stage = iota
	// StageBackendTX is back-end TX service: request popped -> packet
	// on the wire.
	StageBackendTX
	// StageBackendRX is back-end RX service: wire arrival (tap
	// backlog) -> used buffer posted to the guest RX ring.
	StageBackendRX
	// StageSignal is interrupt delivery: irqfd signal raised by the
	// back-end -> the vector accepted by a vCPU.
	StageSignal
	// StagePIWait is the posted-interrupt sub-stage of StageSignal:
	// PIR post -> hardware sync into the virtual APIC page (covers
	// SN-suppressed waits for the vCPU to be scheduled back in).
	StagePIWait
	// StageSchedIn is host scheduling: thread wakeup -> running on a
	// core.
	StageSchedIn
	// StageRingWait is guest-side notification: used buffer posted ->
	// NAPI poll collects it.
	StageRingWait
	// StageDeliver is guest protocol processing: NAPI collection ->
	// socket/flow handler delivery.
	StageDeliver

	// NumStages is the number of defined stages.
	NumStages
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageNotify:
		return "notify"
	case StageBackendTX:
		return "backend-tx"
	case StageBackendRX:
		return "backend-rx"
	case StageSignal:
		return "signal"
	case StagePIWait:
		return "pi-wait"
	case StageSchedIn:
		return "sched-in"
	case StageRingWait:
		return "ring-wait"
	case StageDeliver:
		return "deliver"
	default:
		return fmt.Sprintf("Stage(%d)", uint8(s))
	}
}

// Mechanism tags how a unit traversed a stage, so per-stage histograms
// can be split by delivery mechanism (the comparisons the paper's
// evaluation turns on).
type Mechanism uint8

const (
	// MechNone marks stages with a single traversal mechanism.
	MechNone Mechanism = iota
	// MechExit is an exit-driven notification (the kick trapped).
	MechExit
	// MechPolled is a notification picked up without a VM exit
	// (hybrid/sidecore polling, or suppressed mid-service).
	MechPolled
	// MechEmulated is software-emulated LAPIC interrupt injection.
	MechEmulated
	// MechPosted is hardware posted-interrupt delivery.
	MechPosted
	// MechRedirected is delivery after an ES2 redirection decision
	// moved the interrupt off its affinity vCPU.
	MechRedirected

	// NumMechanisms is the number of defined mechanisms.
	NumMechanisms
)

// String names the mechanism (empty for MechNone).
func (m Mechanism) String() string {
	switch m {
	case MechNone:
		return ""
	case MechExit:
		return "exit"
	case MechPolled:
		return "polled"
	case MechEmulated:
		return "emulated"
	case MechPosted:
		return "posted"
	case MechRedirected:
		return "redirected"
	default:
		return fmt.Sprintf("Mechanism(%d)", uint8(m))
	}
}

// StageStats summarizes one (stage, mechanism) cell of the event-path
// latency breakdown.
type StageStats struct {
	Stage     Stage
	Mechanism Mechanism
	Count     uint64
	Mean      sim.Time
	P50       sim.Time
	P99       sim.Time
	Max       sim.Time
}

// PathTracer derives per-stage latency histograms from stage-transition
// timestamps recorded by the instrumented layers, and optionally feeds
// a Timeline. Like Buffer, a nil *PathTracer is safe to call (no-op),
// so every component can hold one unconditionally at zero cost when
// tracing is disabled.
//
// All state is owned by one simulation engine; no locking.
type PathTracer struct {
	hist [NumStages][NumMechanisms]*metrics.Histogram
	// open tracks in-flight interrupt-signal spans keyed by
	// (vm, vector); a second signal for a vector whose span is still
	// open coalesces into it, as the interrupt itself coalesces in the
	// (v)APIC's IRR.
	open map[uint32]signalSpan
	tl   *Timeline
}

type signalSpan struct {
	t    sim.Time
	mech Mechanism
}

// NewPathTracer creates a span tracer; tl may be nil when no timeline
// export is wanted.
func NewPathTracer(tl *Timeline) *PathTracer {
	return &PathTracer{open: make(map[uint32]signalSpan), tl: tl}
}

// TL returns the attached timeline (nil-safe; may return nil).
func (p *PathTracer) TL() *Timeline {
	if p == nil {
		return nil
	}
	return p.tl
}

// Observe records one stage traversal of duration d. Negative d (from
// clock-identical stamps after resets) is clamped to zero.
func (p *PathTracer) Observe(s Stage, m Mechanism, d sim.Time) {
	if p == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h := p.hist[s][m]
	if h == nil {
		h = metrics.NewHistogram(0)
		p.hist[s][m] = h
	}
	h.Observe(d)
}

func signalKey(vm int, vec uint8) uint32 { return uint32(vm)<<8 | uint32(vec) }

// OpenSignal opens an interrupt-delivery span for (vm, vec) at t. If a
// span for the vector is already open the new signal coalesces into it
// (the earlier origin is kept — matching IRR semantics, where the
// interrupt the guest eventually services is the first unserviced one).
func (p *PathTracer) OpenSignal(vm int, vec uint8, mech Mechanism, t sim.Time) {
	if p == nil {
		return
	}
	k := signalKey(vm, vec)
	if _, ok := p.open[k]; ok {
		return
	}
	p.open[k] = signalSpan{t: t, mech: mech}
}

// CloseSignal closes the open span for (vm, vec) at t, observing its
// latency under the mechanism recorded at open. Closing a vector with
// no open span is a no-op (per-vCPU vectors, spans dropped by Reset).
func (p *PathTracer) CloseSignal(vm int, vec uint8, t sim.Time) {
	if p == nil {
		return
	}
	k := signalKey(vm, vec)
	sp, ok := p.open[k]
	if !ok {
		return
	}
	delete(p.open, k)
	p.Observe(StageSignal, sp.mech, t-sp.t)
}

// Reset discards all recorded observations and in-flight signal spans
// (used at the measurement-window boundary).
func (p *PathTracer) Reset() {
	if p == nil {
		return
	}
	for s := range p.hist {
		for m := range p.hist[s] {
			if p.hist[s][m] != nil {
				p.hist[s][m].Reset()
			}
		}
	}
	for k := range p.open {
		delete(p.open, k)
	}
}

// Stats returns the non-empty (stage, mechanism) cells in path order
// (stage-major, mechanism-minor — deterministic).
func (p *PathTracer) Stats() []StageStats {
	if p == nil {
		return nil
	}
	var out []StageStats
	for s := Stage(0); s < NumStages; s++ {
		for m := Mechanism(0); m < NumMechanisms; m++ {
			h := p.hist[s][m]
			if h == nil || h.Count() == 0 {
				continue
			}
			out = append(out, StageStats{
				Stage: s, Mechanism: m, Count: h.Count(),
				Mean: h.Mean(), P50: h.Quantile(0.5), P99: h.Quantile(0.99), Max: h.Max(),
			})
		}
	}
	return out
}

// Hist exposes the histogram of one cell (nil when never observed) for
// tests and custom reports.
func (p *PathTracer) Hist(s Stage, m Mechanism) *metrics.Histogram {
	if p == nil {
		return nil
	}
	return p.hist[s][m]
}
