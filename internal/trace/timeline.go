package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"es2/internal/sim"
)

// Timeline records execution slices, instants and counter samples and
// exports them in the Chrome trace-event JSON format, loadable by
// Perfetto (ui.perfetto.dev) and chrome://tracing.
//
// Tracks are registered up front (deterministic build order) as
// (process, thread) pairs: the runner creates one process per track
// group — "cores", one per VM, "vhost", "probes" — with one thread per
// physical core, vCPU or vhost worker. Events reference tracks by id,
// keeping the hot recording path allocation-free apart from slice
// growth.
//
// A nil *Timeline is safe to record into (no-op). A non-nil Timeline
// starts inactive: events are dropped until Activate, so the runner can
// restrict the export to the measurement window. Everything recorded
// derives from virtual time and deterministic model state, so two runs
// of the same spec and seed serialize to byte-identical JSON.
type Timeline struct {
	active bool

	procs  []string // process names; pid = index+1
	tracks []track
	byName map[trackKey]TrackID

	events []tevent
}

// TrackID references a registered track. The zero value is the first
// registered track; use NoTrack for "none".
type TrackID int32

// NoTrack is an invalid track id; recording against it is a no-op.
const NoTrack TrackID = -1

type trackKey struct{ process, thread string }

type track struct {
	pid  int // 1-based
	tid  int // 1-based within the process
	name string
}

type tevent struct {
	ph    byte // 'X' slice, 'i' instant, 'C' counter
	track TrackID
	name  string
	ts    sim.Time
	dur   sim.Time // X only
	val   float64  // C only
}

// NewTimeline creates an empty, inactive timeline.
func NewTimeline() *Timeline {
	return &Timeline{byName: make(map[trackKey]TrackID)}
}

// Activate starts event recording (idempotent). Track registration is
// allowed before activation; recorded events are dropped until then.
func (t *Timeline) Activate() {
	if t == nil {
		return
	}
	t.active = true
}

// Active reports whether events are currently recorded.
func (t *Timeline) Active() bool { return t != nil && t.active }

// Track registers (or finds) the track for the given process/thread
// pair and returns its id. Registration order is significant only for
// pid/tid assignment; register during deterministic build for
// byte-stable output. Returns NoTrack on a nil receiver.
func (t *Timeline) Track(process, thread string) TrackID {
	if t == nil {
		return NoTrack
	}
	k := trackKey{process, thread}
	if id, ok := t.byName[k]; ok {
		return id
	}
	pid := 0
	for i, p := range t.procs {
		if p == process {
			pid = i + 1
			break
		}
	}
	if pid == 0 {
		t.procs = append(t.procs, process)
		pid = len(t.procs)
	}
	tid := 1
	for _, tr := range t.tracks {
		if tr.pid == pid {
			tid++
		}
	}
	id := TrackID(len(t.tracks))
	t.tracks = append(t.tracks, track{pid: pid, tid: tid, name: thread})
	t.byName[k] = id
	return id
}

// Slice records a complete span [start, end) on the track.
func (t *Timeline) Slice(tr TrackID, name string, start, end sim.Time) {
	if t == nil || !t.active || tr < 0 {
		return
	}
	if end < start {
		end = start
	}
	t.events = append(t.events, tevent{ph: 'X', track: tr, name: name, ts: start, dur: end - start})
}

// Instant records a point event on the track.
func (t *Timeline) Instant(tr TrackID, name string, at sim.Time) {
	if t == nil || !t.active || tr < 0 {
		return
	}
	t.events = append(t.events, tevent{ph: 'i', track: tr, name: name, ts: at})
}

// Counter records a counter sample on the track's process.
func (t *Timeline) Counter(tr TrackID, name string, at sim.Time, v float64) {
	if t == nil || !t.active || tr < 0 {
		return
	}
	t.events = append(t.events, tevent{ph: 'C', track: tr, name: name, ts: at, val: v})
}

// Len returns the number of recorded events.
func (t *Timeline) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// WriteJSON serializes the timeline as Chrome trace-event JSON.
// Timestamps are microseconds with nanosecond resolution, as the format
// expects. The output is a pure function of the recorded state.
func (t *Timeline) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"displayTimeUnit":"ns","traceEvents":[]}`+"\n")
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`)
	first := true
	sep := func() {
		if !first {
			bw.WriteString(",\n")
		} else {
			bw.WriteString("\n")
			first = false
		}
	}
	for i, p := range t.procs {
		sep()
		fmt.Fprintf(bw, `{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
			i+1, quote(p))
	}
	for _, tr := range t.tracks {
		sep()
		fmt.Fprintf(bw, `{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
			tr.pid, tr.tid, quote(tr.name))
	}
	for _, e := range t.events {
		tr := t.tracks[e.track]
		sep()
		switch e.ph {
		case 'X':
			fmt.Fprintf(bw, `{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"name":%s}`,
				tr.pid, tr.tid, usec(e.ts), usec(e.dur), quote(e.name))
		case 'i':
			fmt.Fprintf(bw, `{"ph":"i","pid":%d,"tid":%d,"ts":%s,"s":"t","name":%s}`,
				tr.pid, tr.tid, usec(e.ts), quote(e.name))
		case 'C':
			fmt.Fprintf(bw, `{"ph":"C","pid":%d,"tid":%d,"ts":%s,"name":%s,"args":{"value":%s}}`,
				tr.pid, tr.tid, usec(e.ts), quote(e.name),
				strconv.FormatFloat(e.val, 'g', -1, 64))
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// usec formats a virtual-time value as microseconds with nanosecond
// resolution. Integer math keeps the formatting exact and stable.
func usec(t sim.Time) string {
	neg := ""
	if t < 0 {
		neg, t = "-", -t
	}
	return fmt.Sprintf("%s%d.%03d", neg, int64(t)/1000, int64(t)%1000)
}

// quote JSON-escapes a track/event name. Go string quoting is a valid
// JSON string for the ASCII names the model generates.
func quote(s string) string {
	return strconv.Quote(s)
}
