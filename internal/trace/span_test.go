package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"es2/internal/sim"
)

func TestNilPathTracerIsNoop(t *testing.T) {
	var p *PathTracer
	p.Observe(StageNotify, MechExit, 5) // must not panic
	p.OpenSignal(0, 0x31, MechPosted, 10)
	p.CloseSignal(0, 0x31, 20)
	p.Reset()
	if p.Stats() != nil {
		t.Fatal("nil tracer should return nil stats")
	}
	if p.Hist(StageNotify, MechExit) != nil {
		t.Fatal("nil tracer should return nil histograms")
	}
	if p.TL() != nil {
		t.Fatal("nil tracer should return nil timeline")
	}
}

func TestPathTracerObserveAndStats(t *testing.T) {
	p := NewPathTracer(nil)
	p.Observe(StageDeliver, MechNone, 100)
	p.Observe(StageNotify, MechPolled, 30)
	p.Observe(StageNotify, MechExit, 10)
	p.Observe(StageNotify, MechExit, 20)
	p.Observe(StageNotify, MechExit, -5) // clamped to 0

	st := p.Stats()
	if len(st) != 3 {
		t.Fatalf("got %d cells, want 3", len(st))
	}
	// Stage-major, mechanism-minor order.
	if st[0].Stage != StageNotify || st[0].Mechanism != MechExit {
		t.Fatalf("st[0] = %v/%v, want notify/exit", st[0].Stage, st[0].Mechanism)
	}
	if st[1].Stage != StageNotify || st[1].Mechanism != MechPolled {
		t.Fatalf("st[1] = %v/%v, want notify/polled", st[1].Stage, st[1].Mechanism)
	}
	if st[2].Stage != StageDeliver {
		t.Fatalf("st[2] = %v, want deliver", st[2].Stage)
	}
	if st[0].Count != 3 || st[0].Mean != 10 || st[0].Max != 20 {
		t.Fatalf("notify/exit: count=%d mean=%v max=%v, want 3/10/20",
			st[0].Count, st[0].Mean, st[0].Max)
	}

	p.Reset()
	if len(p.Stats()) != 0 {
		t.Fatal("Reset should discard all observations")
	}
}

func TestSignalSpanCoalescing(t *testing.T) {
	p := NewPathTracer(nil)
	p.OpenSignal(0, 0x31, MechPosted, 100)
	p.OpenSignal(0, 0x31, MechEmulated, 200) // coalesces: earliest origin kept
	p.CloseSignal(0, 0x31, 350)

	h := p.Hist(StageSignal, MechPosted)
	if h == nil || h.Count() != 1 || h.Max() != 250 {
		t.Fatalf("coalesced span: hist=%v, want one 250ns posted observation", h)
	}
	if p.Hist(StageSignal, MechEmulated) != nil {
		t.Fatal("second open must not override the mechanism of the open span")
	}

	// Closing again, or closing a vector never opened, is a no-op.
	p.CloseSignal(0, 0x31, 400)
	p.CloseSignal(1, 0x31, 400)
	if h.Count() != 1 {
		t.Fatalf("spurious close recorded: count=%d", h.Count())
	}

	// Distinct (vm, vector) pairs track independent spans.
	p.OpenSignal(0, 0x32, MechPosted, 500)
	p.OpenSignal(1, 0x32, MechPosted, 600)
	p.CloseSignal(1, 0x32, 650)
	p.CloseSignal(0, 0x32, 700)
	if h.Count() != 3 || h.Max() != 250 {
		t.Fatalf("independent spans: count=%d max=%v, want 3/250", h.Count(), h.Max())
	}

	// Reset drops in-flight spans: a close after Reset records nothing.
	p.OpenSignal(0, 0x33, MechPosted, 800)
	p.Reset()
	p.CloseSignal(0, 0x33, 900)
	if got := p.Hist(StageSignal, MechPosted); got != nil && got.Count() != 0 {
		t.Fatalf("close after Reset recorded: count=%d", got.Count())
	}
}

func TestNilTimelineIsNoop(t *testing.T) {
	var tl *Timeline
	if tl.Active() {
		t.Fatal("nil timeline must be inactive")
	}
	tl.Activate()
	if id := tl.Track("p", "t"); id != NoTrack {
		t.Fatalf("nil Track = %d, want NoTrack", id)
	}
	tl.Slice(0, "s", 0, 10)
	tl.Instant(0, "i", 5)
	tl.Counter(0, "c", 5, 1)
	if tl.Len() != 0 {
		t.Fatal("nil timeline should record nothing")
	}
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("nil WriteJSON is not valid JSON: %s", buf.String())
	}
}

func TestTimelineInactiveDropsEvents(t *testing.T) {
	tl := NewTimeline()
	id := tl.Track("vm0", "vcpu0")
	tl.Slice(id, "exit", 0, 100)
	tl.Instant(id, "irq", 50)
	if tl.Len() != 0 {
		t.Fatalf("inactive timeline recorded %d events", tl.Len())
	}
	tl.Activate()
	tl.Slice(id, "exit", 0, 100)
	tl.Slice(NoTrack, "dropped", 0, 100)
	if tl.Len() != 1 {
		t.Fatalf("got %d events, want 1", tl.Len())
	}
}

func TestTimelineWriteJSON(t *testing.T) {
	tl := NewTimeline()
	cores := tl.Track("cores", "core0")
	vcpu := tl.Track("vm0", "vcpu0")
	core1 := tl.Track("cores", "core1")
	if again := tl.Track("cores", "core0"); again != cores {
		t.Fatalf("re-registering a track returned %d, want %d", again, cores)
	}
	tl.Activate()
	tl.Slice(cores, "vhost-tx", 1500, 4750)
	tl.Slice(vcpu, "exit:EPTViolation", 2000, 1000) // end < start clamps to zero dur
	tl.Instant(vcpu, `irq"0x31"`, 3000)             // name needing JSON escaping
	tl.Counter(core1, "runnable", 4000, 2)

	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	// 2 process_name + 3 thread_name metadata records + 4 events.
	if len(doc.TraceEvents) != 9 {
		t.Fatalf("got %d records, want 9", len(doc.TraceEvents))
	}
	var slices, instants, counters int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "X":
			slices++
			if e["name"] == "vhost-tx" {
				if e["ts"] != 1.5 || e["dur"] != 3.25 {
					t.Fatalf("slice ts/dur = %v/%v, want 1.5/3.25 us", e["ts"], e["dur"])
				}
			}
			if e["name"] == "exit:EPTViolation" && e["dur"] != 0.0 {
				t.Fatalf("negative-duration slice not clamped: dur=%v", e["dur"])
			}
		case "i":
			instants++
			if e["name"] != `irq"0x31"` {
				t.Fatalf("instant name mangled: %q", e["name"])
			}
		case "C":
			counters++
		}
	}
	if slices != 2 || instants != 1 || counters != 1 {
		t.Fatalf("got %d/%d/%d slices/instants/counters, want 2/1/1", slices, instants, counters)
	}

	// Byte-determinism: serializing the same state twice is identical.
	var buf2 bytes.Buffer
	if err := tl.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("WriteJSON is not deterministic")
	}
}

func TestUsecFormatting(t *testing.T) {
	cases := []struct {
		in   sim.Time
		want string
	}{
		{0, "0.000"},
		{1, "0.001"},
		{999, "0.999"},
		{1000, "1.000"},
		{1234567, "1234.567"},
		{-1500, "-1.500"},
	}
	for _, c := range cases {
		if got := usec(c.in); got != c.want {
			t.Errorf("usec(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPathTracerTimelineAttachment(t *testing.T) {
	tl := NewTimeline()
	p := NewPathTracer(tl)
	if p.TL() != tl {
		t.Fatal("TL should return the attached timeline")
	}
	if NewPathTracer(nil).TL() != nil {
		t.Fatal("TL of a tracer without timeline should be nil")
	}
}
