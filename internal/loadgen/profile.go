package loadgen

import (
	"math"

	"es2/internal/sim"
)

// Runtime resolves a (defaulted) Profile against the run's clock: it
// anchors modeled time 0 at the end of warmup and converts between
// simulated and modeled time through the compression factor, so a 24h
// day replays inside a milliseconds-long measurement window.
type Runtime struct {
	prof   Profile
	origin sim.Time // sim instant of modeled time 0 (warmup end)
	day    sim.Time // modeled day length
	scale  float64  // modeled ns per simulated ns
}

// NewRuntime anchors profile p (already defaulted) at origin — the end
// of warmup — over a measurement window. TimeScale 0 auto-fits the day
// onto the window.
func NewRuntime(p Profile, origin, window sim.Time) *Runtime {
	scale := p.TimeScale
	if scale <= 0 {
		if window > 0 {
			scale = float64(p.Day) / float64(window)
		} else {
			scale = 1
		}
	}
	return &Runtime{prof: p, origin: origin, day: sim.DurationOf(p.Day), scale: scale}
}

// TimeScale is the resolved compression factor.
func (rt *Runtime) TimeScale() float64 { return rt.scale }

// ProfileTime maps a simulated instant to modeled time in [0, Day).
// Warmup (before the origin) is held at the day's start, so the system
// warms under the first phase's load.
func (rt *Runtime) ProfileTime(now sim.Time) sim.Time {
	if now <= rt.origin {
		return 0
	}
	pt := sim.Time(float64(now-rt.origin) * rt.scale)
	if pt >= rt.day {
		pt %= rt.day
	}
	return pt
}

// PhaseIndexAt locates the phase in effect at a simulated instant.
func (rt *Runtime) PhaseIndexAt(now sim.Time) int {
	pt := rt.ProfileTime(now)
	idx := 0
	for i, ph := range rt.prof.Phases {
		if sim.DurationOf(ph.Start) <= pt {
			idx = i
		}
	}
	return idx
}

// NumPhases is the phase count.
func (rt *Runtime) NumPhases() int { return len(rt.prof.Phases) }

// PhaseName names phase i.
func (rt *Runtime) PhaseName(i int) string { return rt.prof.Phases[i].Name }

// PhaseMultiplier is phase i's declared rate multiplier (before the
// diurnal curve).
func (rt *Runtime) PhaseMultiplier(i int) float64 { return rt.prof.Phases[i].Multiplier }

// Multiplier is the effective rate multiplier at a simulated instant:
// the active phase's multiplier scaled by the diurnal curve.
func (rt *Runtime) Multiplier(now sim.Time) float64 {
	m := rt.prof.Phases[rt.PhaseIndexAt(now)].Multiplier
	if a := rt.prof.DiurnalAmplitude; a > 0 && rt.day > 0 {
		frac := float64(rt.ProfileTime(now)) / float64(rt.day)
		m *= 1 + a*math.Cos(2*math.Pi*(frac-rt.prof.DiurnalPeak))
	}
	return m
}

// DormantTick is the re-poll interval a stream sleeps while its
// effective multiplier is zero: about a thousandth of the compressed
// day, clamped so dormancy never spins the event loop nor overshoots a
// phase boundary by much.
func (rt *Runtime) DormantTick() sim.Time {
	simDay := sim.Time(float64(rt.day) / rt.scale)
	tick := simDay / 1024
	if tick < sim.Microsecond {
		tick = sim.Microsecond
	}
	if tick > sim.Millisecond {
		tick = sim.Millisecond
	}
	return tick
}

// PhaseSimWindow is phase i's simulated-time window over the first
// modeled day, clipped to [origin, horizon). Phases scheduled past the
// horizon come back empty (start == end).
func (rt *Runtime) PhaseSimWindow(i int, horizon sim.Time) (start, end sim.Time) {
	startM := sim.DurationOf(rt.prof.Phases[i].Start)
	endM := rt.day
	if i+1 < len(rt.prof.Phases) {
		endM = sim.DurationOf(rt.prof.Phases[i+1].Start)
	}
	start = rt.origin + sim.Time(float64(startM)/rt.scale)
	end = rt.origin + sim.Time(float64(endM)/rt.scale)
	if end > horizon {
		end = horizon
	}
	if start > end {
		start = end
	}
	return start, end
}
