package loadgen

import (
	"math"

	"es2/internal/sim"
)

// Process is an interarrival distribution.
type Process int

// Arrival processes.
const (
	// Poisson draws exponential interarrivals: memoryless arrivals,
	// the classic open-loop baseline.
	Poisson Process = iota
	// Gamma draws Gamma(shape)-distributed interarrivals normalized to
	// the requested mean. Shape < 1 clumps arrivals into burst trains;
	// shape > 1 regularizes them; shape = 1 is Poisson.
	Gamma
	// Weibull draws Weibull(shape)-distributed interarrivals
	// normalized to the requested mean. Shape < 1 produces the
	// heavy-tailed gaps and bursts measured in production RPC traces;
	// shape = 1 is Poisson.
	Weibull
)

// ParseProcess maps a spec string to its Process.
func ParseProcess(s string) (Process, bool) {
	switch s {
	case "poisson":
		return Poisson, true
	case "gamma":
		return Gamma, true
	case "weibull":
		return Weibull, true
	}
	return 0, false
}

// interarrivalCap bounds a single draw at this multiple of the mean,
// mirroring sim.Rand.ExpDuration's horizon cap: a pathological tail
// draw must not park a stream beyond the run.
const interarrivalCap = 20

// Sampler draws interarrival gaps for one stream from a private RNG
// fork, so the arrival sequence is independent of every other stream
// and of the system under test.
type Sampler struct {
	proc  Process
	shape float64
	// norm divides raw draws so their mean is 1: shape for Gamma,
	// Gamma(1+1/shape) for Weibull.
	norm float64
	rng  *sim.Rand
}

// NewSampler creates a sampler for the given process and shape on rng.
func NewSampler(proc Process, shape float64, rng *sim.Rand) *Sampler {
	s := &Sampler{proc: proc, shape: shape, rng: rng, norm: 1}
	switch proc {
	case Gamma:
		s.norm = shape
	case Weibull:
		s.norm = math.Gamma(1 + 1/shape)
	}
	return s
}

// Interarrival draws the gap to the next arrival, with the given mean.
func (s *Sampler) Interarrival(mean sim.Time) sim.Time {
	if mean < 1 {
		mean = 1
	}
	var x float64
	switch s.proc {
	case Gamma:
		x = s.gamma(s.shape) / s.norm
	case Weibull:
		u := s.rng.Float64()
		if u >= 1 {
			u = math.Nextafter(1, 0)
		}
		x = math.Pow(-math.Log(1-u), 1/s.shape) / s.norm
	default:
		x = s.rng.ExpFloat64()
	}
	d := sim.Time(float64(mean) * x)
	if max := interarrivalCap * mean; d > max {
		d = max
	}
	if d < 1 {
		d = 1
	}
	return d
}

// normal draws a standard normal via Box-Muller (two uniforms per
// draw; deterministic given the RNG stream).
func (s *Sampler) normal() float64 {
	u1 := s.rng.Float64()
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	u2 := s.rng.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// gamma draws Gamma(k, 1) by Marsaglia-Tsang squeeze; shapes below 1
// use the boost Gamma(k) = Gamma(k+1) * U^(1/k).
func (s *Sampler) gamma(k float64) float64 {
	if k < 1 {
		u := s.rng.Float64()
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		return s.gamma(k+1) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := s.normal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := s.rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// ZipfWeights returns n positive weights summing to 1, with weight i
// proportional to 1/(i+1)^s — the per-stream rate split of a skewed
// client population. s = 0 yields the uniform split.
func ZipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}
