package loadgen

import (
	"math"
	"testing"
	"time"

	"es2/internal/sim"
)

func TestWithDefaultsFillsZeroFields(t *testing.T) {
	s := Spec{Classes: []Class{{}}}.WithDefaults()
	c := s.Classes[0]
	if c.Streams != 4 || c.RatePerSec != 1000 || c.Process != "poisson" ||
		c.ReqBytes != 128 || c.RespBytes != 1024 || c.FanOut != "single" ||
		c.FanWidth != 1 || c.MaxOutstanding != 64 {
		t.Fatalf("unexpected class defaults: %+v", c)
	}
	if s.Profile.Day != 24*time.Hour {
		t.Fatalf("Day default = %v", s.Profile.Day)
	}
	if len(s.Profile.Phases) != 1 || s.Profile.Phases[0].Multiplier != 1 {
		t.Fatalf("phase default = %+v", s.Profile.Phases)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("defaulted spec invalid: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []Spec{
		{Classes: []Class{{Process: "pareto"}}},
		{Classes: []Class{{RatePerSec: -1}}},
		{Classes: []Class{{RatePerSec: math.NaN()}}},
		{Classes: []Class{{FanOut: "broadcast"}}},
		{Classes: []Class{{FanOut: "scatter", FanWidth: 1}}},
		{Classes: []Class{{FanOut: "single", FanWidth: 3}}},
		{Classes: []Class{{Streams: maxStreams + 1}}},
		{Classes: []Class{{}}, Profile: Profile{Phases: []Phase{{Start: time.Hour}}}},
		{Classes: []Class{{}}, Profile: Profile{Phases: []Phase{{Multiplier: 0}}}},
		{Classes: []Class{{}}, Profile: Profile{Phases: []Phase{
			{Multiplier: 1}, {Start: 2 * time.Hour, Multiplier: 1}, {Start: time.Hour, Multiplier: 1}}}},
		{Classes: []Class{{}}, Profile: Profile{DiurnalAmplitude: 1.5}},
		{Classes: []Class{{}}, Profile: Profile{TimeScale: math.Inf(1)}},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, s)
		}
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(4, 0)
	for _, v := range w {
		if math.Abs(v-0.25) > 1e-12 {
			t.Fatalf("uniform split broken: %v", w)
		}
	}
	w = ZipfWeights(8, 1.2)
	sum := 0.0
	for i, v := range w {
		sum += v
		if i > 0 && v >= w[i-1] {
			t.Fatalf("weights not decreasing: %v", w)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %g", sum)
	}
}

// Every process must honor the requested mean (law of large numbers
// over a deterministic stream) and stay within the horizon cap.
func TestSamplerMeans(t *testing.T) {
	const n = 20000
	mean := sim.Time(1000)
	for _, tc := range []struct {
		proc  Process
		shape float64
	}{
		{Poisson, 1}, {Gamma, 0.5}, {Gamma, 3}, {Weibull, 0.7}, {Weibull, 2},
	} {
		s := NewSampler(tc.proc, tc.shape, sim.NewRand(42))
		var sum sim.Time
		for i := 0; i < n; i++ {
			d := s.Interarrival(mean)
			if d < 1 || d > interarrivalCap*mean {
				t.Fatalf("proc %d shape %g: draw %d out of bounds", tc.proc, tc.shape, d)
			}
			sum += d
		}
		got := float64(sum) / n / float64(mean)
		if got < 0.93 || got > 1.07 {
			t.Errorf("proc %d shape %g: empirical mean %.3f of requested", tc.proc, tc.shape, got)
		}
	}
}

// Burstiness ordering: a sub-1 shape must produce a more variable
// interarrival stream than Poisson at the same mean.
func TestBurstShapesIncreaseVariance(t *testing.T) {
	const n = 20000
	mean := sim.Time(1000)
	cv := func(proc Process, shape float64) float64 {
		s := NewSampler(proc, shape, sim.NewRand(7))
		var sum, sq float64
		for i := 0; i < n; i++ {
			d := float64(s.Interarrival(mean))
			sum += d
			sq += d * d
		}
		m := sum / n
		return math.Sqrt(sq/n-m*m) / m
	}
	pois := cv(Poisson, 1)
	if g := cv(Gamma, 0.4); g <= pois {
		t.Errorf("gamma(0.4) cv %.3f not burstier than poisson %.3f", g, pois)
	}
	if w := cv(Weibull, 0.6); w <= pois {
		t.Errorf("weibull(0.6) cv %.3f not burstier than poisson %.3f", w, pois)
	}
}

func TestSamplerDeterminism(t *testing.T) {
	a := NewSampler(Weibull, 0.7, sim.NewRand(99))
	b := NewSampler(Weibull, 0.7, sim.NewRand(99))
	for i := 0; i < 1000; i++ {
		if a.Interarrival(500) != b.Interarrival(500) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRuntimePhasesAndCompression(t *testing.T) {
	p := Spec{
		Classes: []Class{{}},
		Profile: Profile{
			Day: 24 * time.Hour,
			Phases: []Phase{
				{Name: "night", Start: 0, Multiplier: 0.25},
				{Name: "day", Start: 8 * time.Hour, Multiplier: 1},
				{Name: "peak", Start: 16 * time.Hour, Multiplier: 1.5},
			},
		},
	}.WithDefaults().Profile

	origin := sim.DurationOf(10 * time.Millisecond)
	window := sim.DurationOf(240 * time.Millisecond)
	rt := NewRuntime(p, origin, window)
	wantScale := float64(24*time.Hour) / float64(240*time.Millisecond)
	if math.Abs(rt.TimeScale()-wantScale)/wantScale > 1e-9 {
		t.Fatalf("auto TimeScale = %g, want %g", rt.TimeScale(), wantScale)
	}
	// Warmup holds at the day's start.
	if got := rt.PhaseIndexAt(0); got != 0 {
		t.Fatalf("phase before origin = %d", got)
	}
	if m := rt.Multiplier(origin + window/2); m != 1 {
		t.Fatalf("mid-window multiplier = %g, want 1 (day phase)", m)
	}
	if m := rt.Multiplier(origin + window - 1); m != 1.5 {
		t.Fatalf("end-of-window multiplier = %g, want 1.5 (peak phase)", m)
	}
	// Phase windows tile the measurement window.
	horizon := origin + window
	var covered sim.Time
	for i := 0; i < rt.NumPhases(); i++ {
		s, e := rt.PhaseSimWindow(i, horizon)
		covered += e - s
	}
	if covered != window {
		t.Fatalf("phase windows cover %v of %v", covered, window)
	}
}

func TestRuntimeDiurnalCurve(t *testing.T) {
	p := Spec{
		Classes: []Class{{}},
		Profile: Profile{DiurnalAmplitude: 0.5, DiurnalPeak: 0.5},
	}.WithDefaults().Profile
	rt := NewRuntime(p, 0, sim.DurationOf(100*time.Millisecond))
	peak := rt.Multiplier(sim.DurationOf(50 * time.Millisecond))
	trough := rt.Multiplier(1)
	if math.Abs(peak-1.5) > 1e-6 || math.Abs(trough-0.5) > 1e-3 {
		t.Fatalf("diurnal peak/trough = %g/%g, want 1.5/0.5", peak, trough)
	}
	if rt.Multiplier(sim.DurationOf(25*time.Millisecond)) >= peak {
		t.Fatal("quarter-day multiplier should sit below the peak")
	}
}

func TestRuntimeExplicitTimeScale(t *testing.T) {
	p := Spec{Classes: []Class{{}}, Profile: Profile{TimeScale: 24}}.WithDefaults().Profile
	rt := NewRuntime(p, 0, sim.DurationOf(time.Hour))
	if rt.TimeScale() != 24 {
		t.Fatalf("TimeScale = %g, want 24 (explicit wins over auto)", rt.TimeScale())
	}
	// One simulated hour at 24x covers the whole modeled day.
	if got := rt.ProfileTime(sim.DurationOf(30 * time.Minute)); got != sim.DurationOf(12*time.Hour) {
		t.Fatalf("profile time after 30min = %v, want 12h", got)
	}
}
