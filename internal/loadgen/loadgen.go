// Package loadgen implements a deterministic open-loop load generator
// for datacenter-day workloads: heterogeneous client populations whose
// per-stream rates follow a Zipf skew, pluggable arrival processes
// (Poisson, Gamma and Weibull burst trains), fan-out patterns across
// server VMs, and declarative load profiles — named phases with rate
// multipliers plus a diurnal curve — replayed under time compression
// (a 24h day mapped onto a milliseconds-long measurement window).
//
// Unlike the closed-loop clients in internal/workloads, arrivals are
// armed on the simulated clock and never wait for completions, so
// offered load beyond the rack's capacity produces genuine queueing
// collapse: growing backlogs, shed arrivals and goodput below offered.
// The arrival stream is a pure function of (spec, seed) — it reads no
// feedback from the system under test — so two configurations of the
// same rack see byte-identical offered load.
package loadgen

import (
	"fmt"
	"math"
	"time"
)

// Resource caps: a spec inside these limits always builds and keeps
// event counts bounded.
const (
	maxClasses        = 16
	maxStreams        = 4096
	maxTotalStreams   = 1 << 14
	maxRatePerSec     = 1e6
	maxZipfS          = 8
	maxShape          = 64
	maxBytes          = 1 << 20
	maxFanWidth       = 64
	maxOutstandingCap = 1 << 16
	maxPhases         = 64
	maxDay            = 100 * 24 * time.Hour
	maxTimeScale      = 1e9
	maxMultiplier     = 1e3
)

// Class is one client population: Streams independent open-loop
// generators sharing an arrival process and message shape, their
// individual rates Zipf-skewed across the population.
type Class struct {
	// Name labels the class in reports.
	Name string
	// Streams is the number of independent generator streams (client
	// populations; default 4). Each stream owns its flows and its own
	// arrival RNG fork.
	Streams int
	// RatePerSec is the class's mean per-stream arrival rate at profile
	// multiplier 1.0 (default 1000). The class aggregate, RatePerSec x
	// Streams, is split across streams by the Zipf weights.
	RatePerSec float64
	// ZipfS skews the per-stream rate split: stream i carries weight
	// 1/(i+1)^ZipfS, normalized. Zero (the default) splits uniformly.
	ZipfS float64
	// Process selects the interarrival distribution: "poisson"
	// (default), "gamma" or "weibull". Gamma and Weibull with Shape < 1
	// produce burst trains — clumped arrivals with heavy gaps — at the
	// same mean rate.
	Process string
	// Shape is the Gamma/Weibull shape parameter (default 1, which
	// degenerates to Poisson for both).
	Shape float64
	// ReqBytes and RespBytes size the messages (defaults 128, 1024).
	ReqBytes  int
	RespBytes int
	// FanOut selects the request pattern: "single" (default; each
	// stream talks to one server VM), "scatter" (each arrival fans out
	// to FanWidth server VMs and completes when all respond —
	// scatter/gather), or "incast" (every stream of the class targets
	// the same server VM).
	FanOut string
	// FanWidth is the scatter fan-out width (default 2; scatter only).
	FanWidth int
	// MaxOutstanding bounds a stream's in-flight requests; arrivals
	// beyond it are shed and counted, modeling an admission-controlled
	// client (default 64).
	MaxOutstanding int
}

// Phase is one named segment of the load profile, expressed in modeled
// (profile) time: from Start until the next phase's Start, every class
// rate is scaled by Multiplier.
type Phase struct {
	// Name labels the phase in reports and telemetry.
	Name string
	// Start is the phase's start in modeled time (the first phase must
	// start at 0).
	Start time.Duration
	// Multiplier scales every class rate during the phase. Zero keeps
	// the generators dormant.
	Multiplier float64
}

// Profile shapes offered load over a modeled day replayed under time
// compression, pg_workload style: a run with Day=24h over a 240ms
// measurement window replays the whole day at TimeScale 360000x.
type Profile struct {
	// Day is the modeled day length (default 24h). Profile time wraps
	// modulo Day.
	Day time.Duration
	// TimeScale is the compression factor: one second of simulated
	// time advances TimeScale seconds of modeled time. Zero (the
	// default) auto-fits the day onto the measurement window
	// (TimeScale = Day / Duration).
	TimeScale float64
	// Phases partitions the day (default: one "steady" phase at 1.0).
	Phases []Phase
	// DiurnalAmplitude, in [0, 1], superimposes a sinusoidal diurnal
	// curve on the phase multipliers: rate x (1 + A*cos(2pi*(t/Day -
	// DiurnalPeak))). Zero (the default) disables the curve.
	DiurnalAmplitude float64
	// DiurnalPeak locates the curve's peak as a fraction of the day
	// (0.5 = mid-day). Only meaningful with DiurnalAmplitude > 0.
	DiurnalPeak float64
}

// Spec declares an open-loop load: one or more client classes driven
// through a shared profile. The zero value disables the generator.
type Spec struct {
	Classes []Class
	Profile Profile
}

// Enabled reports whether the spec declares any load.
func (s Spec) Enabled() bool { return len(s.Classes) > 0 }

// WithDefaults fills zero fields.
func (s Spec) WithDefaults() Spec {
	if !s.Enabled() {
		return s
	}
	classes := make([]Class, len(s.Classes))
	copy(classes, s.Classes)
	s.Classes = classes
	for i := range s.Classes {
		c := &s.Classes[i]
		if c.Name == "" {
			c.Name = fmt.Sprintf("class%d", i)
		}
		if c.Streams == 0 {
			c.Streams = 4
		}
		if c.RatePerSec == 0 {
			c.RatePerSec = 1000
		}
		if c.Process == "" {
			c.Process = "poisson"
		}
		if c.Shape == 0 {
			c.Shape = 1
		}
		if c.ReqBytes == 0 {
			c.ReqBytes = 128
		}
		if c.RespBytes == 0 {
			c.RespBytes = 1024
		}
		if c.FanOut == "" {
			c.FanOut = "single"
		}
		if c.FanWidth == 0 {
			if c.FanOut == "scatter" {
				c.FanWidth = 2
			} else {
				c.FanWidth = 1
			}
		}
		if c.MaxOutstanding == 0 {
			c.MaxOutstanding = 64
		}
	}
	if s.Profile.Day == 0 {
		s.Profile.Day = 24 * time.Hour
	}
	if len(s.Profile.Phases) == 0 {
		s.Profile.Phases = []Phase{{Name: "steady", Start: 0, Multiplier: 1}}
	} else {
		phases := make([]Phase, len(s.Profile.Phases))
		copy(phases, s.Profile.Phases)
		s.Profile.Phases = phases
	}
	for i := range s.Profile.Phases {
		if s.Profile.Phases[i].Name == "" {
			s.Profile.Phases[i].Name = fmt.Sprintf("phase%d", i)
		}
	}
	return s
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Validate reports whether the spec (after defaulting) is runnable.
func (s Spec) Validate() error {
	if !s.Enabled() {
		return nil
	}
	s = s.WithDefaults()
	if len(s.Classes) > maxClasses {
		return fmt.Errorf("Classes: %d exceeds the supported maximum %d", len(s.Classes), maxClasses)
	}
	total := 0
	for i, c := range s.Classes {
		pfx := fmt.Sprintf("Classes[%d]", i)
		if c.Streams < 0 || c.Streams > maxStreams {
			return fmt.Errorf("%s.Streams: %d outside [1, %d]", pfx, c.Streams, maxStreams)
		}
		total += c.Streams
		if !finite(c.RatePerSec) || c.RatePerSec < 0 || c.RatePerSec > maxRatePerSec {
			return fmt.Errorf("%s.RatePerSec: %g outside (0, %g]", pfx, c.RatePerSec, float64(maxRatePerSec))
		}
		if !finite(c.ZipfS) || c.ZipfS < 0 || c.ZipfS > maxZipfS {
			return fmt.Errorf("%s.ZipfS: %g outside [0, %d]", pfx, c.ZipfS, maxZipfS)
		}
		if _, ok := ParseProcess(c.Process); !ok {
			return fmt.Errorf("%s.Process: unknown arrival process %q (poisson, gamma, weibull)", pfx, c.Process)
		}
		if !finite(c.Shape) || c.Shape <= 0 || c.Shape > maxShape {
			return fmt.Errorf("%s.Shape: %g outside (0, %d]", pfx, c.Shape, maxShape)
		}
		if c.ReqBytes < 0 || c.ReqBytes > maxBytes {
			return fmt.Errorf("%s.ReqBytes: %d outside [1, %d]", pfx, c.ReqBytes, maxBytes)
		}
		if c.RespBytes < 0 || c.RespBytes > maxBytes {
			return fmt.Errorf("%s.RespBytes: %d outside [1, %d]", pfx, c.RespBytes, maxBytes)
		}
		switch c.FanOut {
		case "single", "scatter", "incast":
		default:
			return fmt.Errorf("%s.FanOut: unknown fan-out %q (single, scatter, incast)", pfx, c.FanOut)
		}
		if c.FanWidth < 0 || c.FanWidth > maxFanWidth {
			return fmt.Errorf("%s.FanWidth: %d outside [1, %d]", pfx, c.FanWidth, maxFanWidth)
		}
		if c.FanOut == "scatter" && c.FanWidth < 2 {
			return fmt.Errorf("%s.FanWidth: scatter fan-out needs width >= 2, got %d", pfx, c.FanWidth)
		}
		if c.FanOut != "scatter" && c.FanWidth > 1 {
			return fmt.Errorf("%s.FanWidth: width %d requires scatter fan-out", pfx, c.FanWidth)
		}
		if c.MaxOutstanding < 0 || c.MaxOutstanding > maxOutstandingCap {
			return fmt.Errorf("%s.MaxOutstanding: %d outside [1, %d]", pfx, c.MaxOutstanding, maxOutstandingCap)
		}
	}
	if total > maxTotalStreams {
		return fmt.Errorf("Classes: %d total streams exceed the supported maximum %d", total, maxTotalStreams)
	}

	p := s.Profile
	if p.Day <= 0 || p.Day > maxDay {
		return fmt.Errorf("Profile.Day: %v outside (0, %v]", p.Day, maxDay)
	}
	if !finite(p.TimeScale) || p.TimeScale < 0 || p.TimeScale > maxTimeScale {
		return fmt.Errorf("Profile.TimeScale: %g outside [0, %g]", p.TimeScale, float64(maxTimeScale))
	}
	if len(p.Phases) > maxPhases {
		return fmt.Errorf("Profile.Phases: %d exceeds the supported maximum %d", len(p.Phases), maxPhases)
	}
	anyPositive := false
	for i, ph := range p.Phases {
		pfx := fmt.Sprintf("Profile.Phases[%d]", i)
		if i == 0 && ph.Start != 0 {
			return fmt.Errorf("%s.Start: the first phase must start at 0, got %v", pfx, ph.Start)
		}
		if ph.Start < 0 || ph.Start >= p.Day {
			return fmt.Errorf("%s.Start: %v outside [0, Day=%v)", pfx, ph.Start, p.Day)
		}
		if i > 0 && ph.Start <= p.Phases[i-1].Start {
			return fmt.Errorf("%s.Start: %v does not follow the previous phase's %v", pfx, ph.Start, p.Phases[i-1].Start)
		}
		if !finite(ph.Multiplier) || ph.Multiplier < 0 || ph.Multiplier > maxMultiplier {
			return fmt.Errorf("%s.Multiplier: %g outside [0, %g]", pfx, ph.Multiplier, float64(maxMultiplier))
		}
		if ph.Multiplier > 0 {
			anyPositive = true
		}
	}
	if !anyPositive {
		return fmt.Errorf("Profile.Phases: every phase multiplier is zero — the generator would never fire")
	}
	if !finite(p.DiurnalAmplitude) || p.DiurnalAmplitude < 0 || p.DiurnalAmplitude > 1 {
		return fmt.Errorf("Profile.DiurnalAmplitude: %g outside [0, 1]", p.DiurnalAmplitude)
	}
	if !finite(p.DiurnalPeak) || p.DiurnalPeak < 0 || p.DiurnalPeak > 1 {
		return fmt.Errorf("Profile.DiurnalPeak: %g outside [0, 1]", p.DiurnalPeak)
	}
	return nil
}

// TotalStreams sums stream counts across classes.
func (s Spec) TotalStreams() int {
	n := 0
	for _, c := range s.Classes {
		n += c.Streams
	}
	return n
}
