package apic

import "fmt"

// LocalAPIC models the interrupt acceptance state of one (v)CPU's local
// APIC: the Interrupt Request Register of pending vectors and the
// In-Service Register of vectors whose handlers are running. The same
// model serves three roles in the simulator:
//
//   - the software-emulated Local-APIC that KVM maintains per vCPU in
//     the baseline configuration (every EOI traps);
//   - the hardware virtual-APIC page used by Posted-Interrupt (EOI is
//     exit-less, IRR is filled by PIR sync);
//   - the physical Local-APIC of each host core.
type LocalAPIC struct {
	irr Bitmap256
	isr Bitmap256

	// Accepted counts vectors moved from IRR to in-service, Completed
	// counts EOIs; their difference is the in-service depth.
	Accepted  uint64
	Completed uint64
}

// RequestIRQ latches vector v as pending. It reports whether the vector
// was newly latched (false means it was already pending and the
// interrupt coalesced, which is real APIC behaviour).
func (l *LocalAPIC) RequestIRQ(v Vector) bool { return l.irr.Set(v) }

// PendingIRQ reports the highest pending vector that has strictly higher
// priority class than the highest in-service vector, mirroring the
// processor-priority acceptance rule. ok is false when nothing is
// deliverable.
func (l *LocalAPIC) PendingIRQ() (v Vector, ok bool) {
	hi, any := l.irr.Highest()
	if !any {
		return 0, false
	}
	if inSvc, busy := l.isr.Highest(); busy && hi.Class() <= inSvc.Class() {
		return 0, false
	}
	return hi, true
}

// HasPending reports whether any vector is latched in the IRR,
// regardless of deliverability.
func (l *LocalAPIC) HasPending() bool { return !l.irr.Empty() }

// PendingCount returns the number of latched vectors.
func (l *LocalAPIC) PendingCount() int { return l.irr.Count() }

// Accept moves the given deliverable vector from IRR to ISR; the CPU is
// now running its handler. It panics if v is not the vector PendingIRQ
// would return, to catch model bugs early.
func (l *LocalAPIC) Accept(v Vector) {
	want, ok := l.PendingIRQ()
	if !ok || want != v {
		panic(fmt.Sprintf("apic: Accept(%d) but deliverable=(%d,%t)", v, want, ok))
	}
	l.irr.Clear(v)
	l.isr.Set(v)
	l.Accepted++
}

// EOI signals completion of the highest in-service vector and returns
// it. It panics when no interrupt is in service.
func (l *LocalAPIC) EOI() Vector {
	v, ok := l.isr.Highest()
	if !ok {
		panic("apic: EOI with empty ISR")
	}
	l.isr.Clear(v)
	l.Completed++
	return v
}

// InService returns the highest in-service vector, if any.
func (l *LocalAPIC) InService() (Vector, bool) { return l.isr.Highest() }

// InServiceDepth returns the number of nested in-service vectors.
func (l *LocalAPIC) InServiceDepth() int { return l.isr.Count() }

// IRR exposes a copy of the pending bitmap (for tests and tracing).
func (l *LocalAPIC) IRR() Bitmap256 { return l.irr }

// ISR exposes a copy of the in-service bitmap.
func (l *LocalAPIC) ISR() Bitmap256 { return l.isr }

// CheckInvariants verifies the APIC's acceptance discipline: EOIs never
// outnumber acceptances, and the difference is exactly the in-service
// depth. Used by the opt-in runtime invariant checker.
func (l *LocalAPIC) CheckInvariants() error {
	if l.Completed > l.Accepted {
		return fmt.Errorf("apic: %d EOIs exceed %d acceptances", l.Completed, l.Accepted)
	}
	if l.Accepted-l.Completed != uint64(l.isr.Count()) {
		return fmt.Errorf("apic: Accepted-Completed=%d but ISR depth is %d",
			l.Accepted-l.Completed, l.isr.Count())
	}
	return nil
}

// Reset clears all interrupt state (used when a vCPU is re-initialized).
func (l *LocalAPIC) Reset() {
	l.irr = Bitmap256{}
	l.isr = Bitmap256{}
}

// DeliveryMode selects how an MSI chooses its destination among the
// candidate CPUs.
type DeliveryMode uint8

const (
	// Fixed delivers to exactly the CPU named in the destination field.
	Fixed DeliveryMode = iota
	// LowestPriority lets the interrupt be serviced by any CPU in the
	// destination set; Linux uses it for device interrupts when the
	// apic_default/apic_flat driver is selected (<= 8 CPUs), and it is
	// what makes ES2's redirection architecturally valid.
	LowestPriority
)

// String returns the mode name.
func (m DeliveryMode) String() string {
	switch m {
	case Fixed:
		return "fixed"
	case LowestPriority:
		return "lowest-priority"
	default:
		return fmt.Sprintf("DeliveryMode(%d)", uint8(m))
	}
}

// MSIMessage is a Message-Signaled Interrupt as programmed by the guest:
// the vector, the destination vCPU (APIC ID) and the delivery mode.
// KVM's kvm_set_msi_irq builds exactly this from the MSI address/data
// registers; ES2 intercepts it there.
type MSIMessage struct {
	Vector Vector
	Dest   int // destination vCPU index within the VM
	Mode   DeliveryMode
}
