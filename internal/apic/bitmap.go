// Package apic models the x86 interrupt-controller substrate the paper
// builds on: the per-CPU Local-APIC register state (IRR/ISR/EOI with the
// 16-level priority scheme), MSI/MSI-X messages with fixed and
// lowest-priority delivery modes, and the Posted-Interrupt descriptor +
// virtual-APIC page that provide exit-less virtual interrupt delivery.
//
// The package is pure state-machine code with no timing; the vmm package
// drives it from the simulation clock.
package apic

import "math/bits"

// Vector is an x86 interrupt vector (0-255). Vectors 0-31 are reserved
// for exceptions; external interrupts use 32-255. The priority class of
// a vector is vector>>4: higher class means higher priority.
type Vector uint8

// Class returns the vector's interrupt priority class (vector >> 4).
func (v Vector) Class() int { return int(v >> 4) }

// Bitmap256 is a 256-bit vector bitmap, the representation used by the
// IRR, ISR and PIR registers.
type Bitmap256 [4]uint64

// Set sets bit v and reports whether it was previously clear.
func (b *Bitmap256) Set(v Vector) bool {
	w, m := v>>6, uint64(1)<<(v&63)
	old := b[w]
	b[w] = old | m
	return old&m == 0
}

// Clear clears bit v and reports whether it was previously set.
func (b *Bitmap256) Clear(v Vector) bool {
	w, m := v>>6, uint64(1)<<(v&63)
	old := b[w]
	b[w] = old &^ m
	return old&m != 0
}

// Test reports whether bit v is set.
func (b *Bitmap256) Test(v Vector) bool {
	return b[v>>6]&(uint64(1)<<(v&63)) != 0
}

// Highest returns the highest set bit and true, or 0 and false when the
// bitmap is empty. The Local-APIC always services the highest pending
// vector first.
func (b *Bitmap256) Highest() (Vector, bool) {
	for w := 3; w >= 0; w-- {
		if b[w] != 0 {
			return Vector(w*64 + 63 - bits.LeadingZeros64(b[w])), true
		}
	}
	return 0, false
}

// Count returns the number of set bits.
func (b *Bitmap256) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no bits are set.
func (b *Bitmap256) Empty() bool { return b[0]|b[1]|b[2]|b[3] == 0 }

// DrainInto moves every set bit of b into dst, clearing b. It returns
// the number of bits that were newly set in dst. This is the hardware
// PIR->virtual-IRR sync operation.
func (b *Bitmap256) DrainInto(dst *Bitmap256) int {
	moved := 0
	for w := range b {
		newBits := b[w] &^ dst[w]
		moved += bits.OnesCount64(newBits)
		dst[w] |= b[w]
		b[w] = 0
	}
	return moved
}
