package apic

import (
	"testing"

	"es2/internal/sim"
)

func TestVectorStampsCoalesce(t *testing.T) {
	var s VectorStamps
	s.Mark(0x31, StampPosted, 100)
	s.Mark(0x31, StampEmulated, 200) // re-injection: first stamp wins
	tm, mech, ok := s.Take(0x31)
	if !ok || tm != 100 || mech != StampPosted {
		t.Fatalf("Take = (%v, %v, %v), want (100, posted, true)", tm, mech, ok)
	}
	if _, _, ok := s.Take(0x31); ok {
		t.Fatal("second Take should report no pending stamp")
	}
}

func TestVectorStampsIndependentVectors(t *testing.T) {
	var s VectorStamps
	s.Mark(0x20, StampEmulated, sim.Time(7))
	s.Mark(0x21, StampPosted, sim.Time(9))
	if tm, mech, ok := s.Take(0x21); !ok || tm != 9 || mech != StampPosted {
		t.Fatalf("vector 0x21: (%v, %v, %v)", tm, mech, ok)
	}
	if tm, mech, ok := s.Take(0x20); !ok || tm != 7 || mech != StampEmulated {
		t.Fatalf("vector 0x20: (%v, %v, %v)", tm, mech, ok)
	}
}
