package apic

// PIDescriptor is the per-vCPU Posted-Interrupt descriptor defined by
// the Intel SDM. The hypervisor posts a virtual interrupt by setting the
// vector's bit in the PIR (Posted-Interrupt Requests) bitmap; if the
// outstanding-notification bit ON is clear it sets ON and sends the
// notification IPI. When the notification arrives at a core running the
// vCPU in guest mode, the hardware syncs PIR into the vAPIC page's
// virtual IRR and delivers through the guest IDT without a VM exit.
type PIDescriptor struct {
	pir Bitmap256
	// on is the Outstanding Notification bit: a notification IPI has
	// been sent and not yet processed, so further posts can skip the
	// IPI.
	on bool
	// sn is the Suppress Notification bit: set while the vCPU is not
	// running so that posting does not send pointless IPIs; the pending
	// bits are picked up by the sync at the next VM entry.
	sn bool

	// unavailable marks the PI facility broken for this vCPU (fault
	// injection models IOMMU/PI hardware errata this way). The zero
	// value means available. Delivery code consults Available and falls
	// back to the emulated path while the facility is down.
	unavailable bool

	// NotificationVector is the special host vector that triggers
	// hardware posted-interrupt processing instead of a normal host
	// interrupt (KVM's POSTED_INTR_VECTOR, 0xF2 on Linux).
	NotificationVector Vector

	// Posts counts Post calls; Notifications counts the subset that
	// required sending the notification IPI.
	Posts         uint64
	Notifications uint64
}

// Post records vector v as posted. notify reports whether a
// notification IPI must be sent now (true exactly when neither ON nor
// SN was set); newly reports whether v was newly latched into the PIR
// (false means an earlier unprocessed post already pended it and the
// interrupt coalesced in hardware — span tracing merges the two into
// one delivery).
func (d *PIDescriptor) Post(v Vector) (notify, newly bool) {
	newly = d.pir.Set(v)
	d.Posts++
	if d.on || d.sn {
		return false, newly
	}
	d.on = true
	d.Notifications++
	return true, newly
}

// Sync performs the hardware PIR->vIRR synchronization into the vCPU's
// virtual APIC page, clearing ON. It returns the number of vectors that
// became newly pending in the vAPIC (bits already pending there
// coalesce, as in hardware). It is invoked on notification-IPI receipt
// in guest mode and on every VM entry with pending PIR bits.
func (d *PIDescriptor) Sync(vapic *LocalAPIC) int {
	d.on = false
	return d.pir.DrainInto(&vapic.irr)
}

// HasPending reports whether any posted vector awaits synchronization.
func (d *PIDescriptor) HasPending() bool { return !d.pir.Empty() }

// Outstanding reports the ON bit.
func (d *PIDescriptor) Outstanding() bool { return d.on }

// SetSuppress sets or clears the SN bit. KVM sets SN when the vCPU
// stops running and clears it before VM entry.
func (d *PIDescriptor) SetSuppress(s bool) { d.sn = s }

// Suppressed reports the SN bit.
func (d *PIDescriptor) Suppressed() bool { return d.sn }

// SetAvailable marks the PI facility working (true) or broken (false).
func (d *PIDescriptor) SetAvailable(ok bool) { d.unavailable = !ok }

// Available reports whether the PI facility is usable for this vCPU.
func (d *PIDescriptor) Available() bool { return !d.unavailable }
