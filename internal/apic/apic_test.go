package apic

import (
	"testing"
	"testing/quick"
)

func TestBitmapSetClearTest(t *testing.T) {
	var b Bitmap256
	if !b.Set(0x31) {
		t.Fatal("Set on clear bit should return true")
	}
	if b.Set(0x31) {
		t.Fatal("Set on set bit should return false")
	}
	if !b.Test(0x31) {
		t.Fatal("Test after Set should be true")
	}
	if !b.Clear(0x31) {
		t.Fatal("Clear on set bit should return true")
	}
	if b.Clear(0x31) {
		t.Fatal("Clear on clear bit should return false")
	}
	if !b.Empty() {
		t.Fatal("bitmap should be empty")
	}
}

func TestBitmapHighest(t *testing.T) {
	var b Bitmap256
	if _, ok := b.Highest(); ok {
		t.Fatal("Highest on empty bitmap should report false")
	}
	b.Set(3)
	b.Set(200)
	b.Set(64)
	if v, ok := b.Highest(); !ok || v != 200 {
		t.Fatalf("Highest = %d,%t, want 200,true", v, ok)
	}
	b.Clear(200)
	if v, _ := b.Highest(); v != 64 {
		t.Fatalf("Highest = %d, want 64", v)
	}
}

func TestBitmapCountAndDrain(t *testing.T) {
	var a, b Bitmap256
	a.Set(1)
	a.Set(63)
	a.Set(64)
	a.Set(255)
	if a.Count() != 4 {
		t.Fatalf("Count = %d, want 4", a.Count())
	}
	b.Set(64) // overlapping bit coalesces
	moved := a.DrainInto(&b)
	if moved != 3 {
		t.Fatalf("DrainInto moved %d, want 3 (one coalesced)", moved)
	}
	if !a.Empty() {
		t.Fatal("source should be empty after drain")
	}
	if b.Count() != 4 {
		t.Fatalf("dest Count = %d, want 4", b.Count())
	}
}

// Property: for any set of vectors, Highest returns the max, and
// DrainInto preserves the union.
func TestBitmapProperties(t *testing.T) {
	f := func(vs []Vector, pre []Vector) bool {
		var a, b Bitmap256
		maxV, any := Vector(0), false
		for _, v := range vs {
			a.Set(v)
			if !any || v > maxV {
				maxV, any = v, true
			}
		}
		if got, ok := a.Highest(); ok != any || (any && got != maxV) {
			return false
		}
		want := map[Vector]bool{}
		for _, v := range vs {
			want[v] = true
		}
		for _, v := range pre {
			b.Set(v)
			want[v] = true
		}
		a.DrainInto(&b)
		if !a.Empty() {
			return false
		}
		if b.Count() != len(want) {
			return false
		}
		for v := range want {
			if !b.Test(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorClass(t *testing.T) {
	if Vector(0x31).Class() != 3 {
		t.Fatalf("class of 0x31 = %d, want 3", Vector(0x31).Class())
	}
	if Vector(0xEF).Class() != 14 {
		t.Fatalf("class of 0xEF = %d, want 14", Vector(0xEF).Class())
	}
}

func TestLAPICBasicCycle(t *testing.T) {
	var l LocalAPIC
	if _, ok := l.PendingIRQ(); ok {
		t.Fatal("empty APIC should have nothing deliverable")
	}
	if !l.RequestIRQ(0x41) {
		t.Fatal("first RequestIRQ should latch")
	}
	if l.RequestIRQ(0x41) {
		t.Fatal("second RequestIRQ of same vector should coalesce")
	}
	v, ok := l.PendingIRQ()
	if !ok || v != 0x41 {
		t.Fatalf("PendingIRQ = %d,%t", v, ok)
	}
	l.Accept(v)
	if depth := l.InServiceDepth(); depth != 1 {
		t.Fatalf("InServiceDepth = %d, want 1", depth)
	}
	if got := l.EOI(); got != 0x41 {
		t.Fatalf("EOI = %d, want 0x41", got)
	}
	if l.Accepted != 1 || l.Completed != 1 {
		t.Fatalf("counters: accepted=%d completed=%d", l.Accepted, l.Completed)
	}
}

func TestLAPICPriorityBlocking(t *testing.T) {
	var l LocalAPIC
	l.RequestIRQ(0x55)
	v, _ := l.PendingIRQ()
	l.Accept(v)
	// Same-class pending vector must be blocked while 0x55 in service.
	l.RequestIRQ(0x52)
	if _, ok := l.PendingIRQ(); ok {
		t.Fatal("same-class vector should be blocked by in-service vector")
	}
	// Higher class preempts.
	l.RequestIRQ(0x81)
	v, ok := l.PendingIRQ()
	if !ok || v != 0x81 {
		t.Fatalf("higher-class vector should be deliverable, got %d,%t", v, ok)
	}
	l.Accept(v)
	if got := l.EOI(); got != 0x81 {
		t.Fatalf("EOI should complete nested 0x81 first, got %#x", got)
	}
	if got := l.EOI(); got != 0x55 {
		t.Fatalf("second EOI should complete 0x55, got %#x", got)
	}
	// Now the blocked 0x52 becomes deliverable.
	if v, ok := l.PendingIRQ(); !ok || v != 0x52 {
		t.Fatalf("0x52 should now deliver, got %d,%t", v, ok)
	}
}

func TestLAPICHighestFirst(t *testing.T) {
	var l LocalAPIC
	l.RequestIRQ(0x33)
	l.RequestIRQ(0x91)
	l.RequestIRQ(0x60)
	if v, _ := l.PendingIRQ(); v != 0x91 {
		t.Fatalf("PendingIRQ = %#x, want 0x91", v)
	}
}

func TestLAPICAcceptWrongVectorPanics(t *testing.T) {
	var l LocalAPIC
	l.RequestIRQ(0x41)
	defer func() {
		if recover() == nil {
			t.Error("Accept of wrong vector should panic")
		}
	}()
	l.Accept(0x42)
}

func TestLAPICEOIEmptyPanics(t *testing.T) {
	var l LocalAPIC
	defer func() {
		if recover() == nil {
			t.Error("EOI with empty ISR should panic")
		}
	}()
	l.EOI()
}

func TestLAPICReset(t *testing.T) {
	var l LocalAPIC
	l.RequestIRQ(0x41)
	v, _ := l.PendingIRQ()
	l.Accept(v)
	l.RequestIRQ(0x99)
	l.Reset()
	if l.HasPending() || l.InServiceDepth() != 0 {
		t.Fatal("Reset should clear all state")
	}
}

func TestPIDescriptorPostNotify(t *testing.T) {
	var d PIDescriptor
	if notify, newly := d.Post(0x41); !notify || !newly {
		t.Fatal("first Post should request a notification and latch newly")
	}
	if notify, _ := d.Post(0x42); notify {
		t.Fatal("second Post with ON set should not re-notify")
	}
	if _, newly := d.Post(0x42); newly {
		t.Fatal("re-posting a pending vector should report hardware coalescing")
	}
	if !d.Outstanding() {
		t.Fatal("ON should be set")
	}
	var vapic LocalAPIC
	moved := d.Sync(&vapic)
	if moved != 2 {
		t.Fatalf("Sync moved %d, want 2", moved)
	}
	if d.Outstanding() || d.HasPending() {
		t.Fatal("Sync should clear ON and PIR")
	}
	if v, ok := vapic.PendingIRQ(); !ok || v != 0x42 {
		t.Fatalf("vAPIC should have 0x42 deliverable, got %d,%t", v, ok)
	}
	if d.Posts != 3 || d.Notifications != 1 {
		t.Fatalf("counters: posts=%d notifications=%d", d.Posts, d.Notifications)
	}
}

func TestPIDescriptorSuppress(t *testing.T) {
	var d PIDescriptor
	d.SetSuppress(true)
	if notify, _ := d.Post(0x41); notify {
		t.Fatal("Post with SN set must not notify")
	}
	if d.Outstanding() {
		t.Fatal("ON must stay clear while suppressed")
	}
	if !d.HasPending() {
		t.Fatal("vector should be pending in PIR")
	}
	d.SetSuppress(false)
	if notify, _ := d.Post(0x43); !notify {
		t.Fatal("Post after unsuppress should notify")
	}
	var vapic LocalAPIC
	if d.Sync(&vapic) != 2 {
		t.Fatal("both vectors should sync")
	}
}

func TestPISyncCoalesce(t *testing.T) {
	var d PIDescriptor
	var vapic LocalAPIC
	vapic.RequestIRQ(0x41)
	d.Post(0x41)
	if moved := d.Sync(&vapic); moved != 0 {
		t.Fatalf("coalesced sync should move 0 new vectors, got %d", moved)
	}
	if vapic.PendingCount() != 1 {
		t.Fatal("vector must not duplicate")
	}
}

func TestDeliveryModeString(t *testing.T) {
	if Fixed.String() != "fixed" || LowestPriority.String() != "lowest-priority" {
		t.Fatal("mode names wrong")
	}
	if DeliveryMode(9).String() == "" {
		t.Fatal("unknown mode should still format")
	}
}
