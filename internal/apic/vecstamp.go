package apic

import "es2/internal/sim"

// NumVectors is the x86 vector-space size.
const NumVectors = 256

// StampMech tags which delivery path a stamped injection took.
type StampMech uint8

const (
	// StampEmulated marks software-emulated LAPIC injection.
	StampEmulated StampMech = iota
	// StampPosted marks hardware posted-interrupt delivery.
	StampPosted
)

// String names the delivery path for exports and rendered tables.
func (s StampMech) String() string {
	if s == StampPosted {
		return "posted"
	}
	return "emulated"
}

// VectorStamps tracks, per vector, the instant the hypervisor first
// injected a still-undelivered interrupt — the open end of the
// interrupt-delivery latency span (injection → guest handler entry).
// Re-injections of an already-pending vector coalesce into the first
// stamp, mirroring IRR semantics: one acceptance serves them all.
// Purely observational; the delivery paths consult it only when the
// telemetry latency histograms or the causal analyzer are enabled.
type VectorStamps struct {
	t    [NumVectors]sim.Time
	mech [NumVectors]StampMech
	pend [NumVectors]bool
}

// Mark opens the delivery span for vec at now via mech. A vector
// already pending keeps its earlier (first) stamp and mechanism.
func (s *VectorStamps) Mark(vec Vector, mech StampMech, now sim.Time) {
	if s.pend[vec] {
		return
	}
	s.pend[vec] = true
	s.t[vec] = now
	s.mech[vec] = mech
}

// Take closes the span for vec, returning the stamp and mechanism.
// ok is false when no injection was pending (e.g. the stamp predates
// instrumentation being enabled).
func (s *VectorStamps) Take(vec Vector) (t sim.Time, mech StampMech, ok bool) {
	if !s.pend[vec] {
		return 0, 0, false
	}
	s.pend[vec] = false
	return s.t[vec], s.mech[vec], true
}
