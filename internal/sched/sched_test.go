package sched

import (
	"testing"
	"testing/quick"

	"es2/internal/sim"
)

// scriptSource is a WorkSource driven by a next-chunk function.
type scriptSource struct {
	next   func() sim.Time
	onDone func()
	ran    sim.Time
	chunks int
}

func (s *scriptSource) NextChunk() sim.Time { return s.next() }
func (s *scriptSource) Ran(d sim.Time)      { s.ran += d }
func (s *scriptSource) ChunkDone() {
	s.chunks++
	if s.onDone != nil {
		s.onDone()
	}
}

// busySource always has work in fixed-size chunks.
func busySource(chunk sim.Time) *scriptSource {
	return &scriptSource{next: func() sim.Time { return chunk }}
}

// finiteSource supplies n chunks then blocks.
type finiteSource struct {
	scriptSource
	remaining int
	chunk     sim.Time
}

func newFiniteSource(n int, chunk sim.Time) *finiteSource {
	f := &finiteSource{remaining: n, chunk: chunk}
	f.next = func() sim.Time {
		if f.remaining <= 0 {
			return 0
		}
		return f.chunk
	}
	prev := f.onDone
	f.onDone = func() {
		f.remaining--
		if prev != nil {
			prev()
		}
	}
	return f
}

func newSched(nCores int) (*sim.Engine, *Scheduler) {
	eng := sim.NewEngine(1)
	return eng, New(eng, nCores, DefaultParams())
}

func TestSingleThreadRunsToCompletion(t *testing.T) {
	eng, s := newSched(1)
	src := newFiniteSource(5, 100*sim.Microsecond)
	th := s.NewThread("w", 0, 0, src)
	s.Wake(th)
	eng.RunAll()
	if src.chunks != 5 {
		t.Fatalf("chunks done = %d, want 5", src.chunks)
	}
	if src.ran != 500*sim.Microsecond {
		t.Fatalf("ran = %v, want 500us", src.ran)
	}
	if th.State() != Sleeping {
		t.Fatalf("state = %v, want sleeping", th.State())
	}
	if th.SumExec() != 500*sim.Microsecond {
		t.Fatalf("SumExec = %v", th.SumExec())
	}
}

func TestWakeResumesBlockedThread(t *testing.T) {
	eng, s := newSched(1)
	src := newFiniteSource(1, 10*sim.Microsecond)
	th := s.NewThread("w", 0, 0, src)
	s.Wake(th)
	eng.RunAll()
	if src.chunks != 1 {
		t.Fatalf("first run: chunks = %d", src.chunks)
	}
	// Give it more work and wake it again.
	src.remaining = 2
	s.Wake(th)
	eng.RunAll()
	if src.chunks != 3 {
		t.Fatalf("after rewake: chunks = %d, want 3", src.chunks)
	}
}

func TestWakeIdempotentOnRunnable(t *testing.T) {
	eng, s := newSched(1)
	a := s.NewThread("a", 0, 0, busySource(sim.Millisecond))
	b := s.NewThread("b", 0, 0, busySource(sim.Millisecond))
	s.Wake(a)
	s.Wake(b)
	s.Wake(b) // no-op: already runnable
	s.Wake(a) // no-op: already running
	eng.Run(10 * sim.Millisecond)
	if got := s.RunnableCount(0); got != 2 {
		t.Fatalf("RunnableCount = %d, want 2", got)
	}
}

func TestFairSharingEqualWeights(t *testing.T) {
	eng, s := newSched(1)
	a := busySource(50 * sim.Microsecond)
	b := busySource(50 * sim.Microsecond)
	ta := s.NewThread("a", 0, 0, a)
	tb := s.NewThread("b", 0, 0, b)
	s.Wake(ta)
	s.Wake(tb)
	eng.Run(2 * sim.Second)
	total := float64(a.ran + b.ran)
	shareA := float64(a.ran) / total
	if shareA < 0.45 || shareA > 0.55 {
		t.Fatalf("share A = %.3f, want ~0.5 (a=%v b=%v)", shareA, a.ran, b.ran)
	}
	// The busy core must not lose time: sum of work ~= elapsed.
	if total < 0.99*float64(2*sim.Second) {
		t.Fatalf("core lost time: total=%v of %v", sim.Time(total), 2*sim.Second)
	}
}

func TestWeightedSharing(t *testing.T) {
	eng, s := newSched(1)
	heavy := busySource(50 * sim.Microsecond)
	light := busySource(50 * sim.Microsecond)
	th := s.NewThread("heavy", 0, 2*NiceZeroWeight, heavy)
	tl := s.NewThread("light", 0, NiceZeroWeight, light)
	s.Wake(th)
	s.Wake(tl)
	eng.Run(3 * sim.Second)
	ratio := float64(heavy.ran) / float64(light.ran)
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("heavy/light ratio = %.2f, want ~2 (heavy=%v light=%v)", ratio, heavy.ran, light.ran)
	}
}

func TestTimeslicePreemption(t *testing.T) {
	eng, s := newSched(1)
	a := s.NewThread("a", 0, 0, busySource(100*sim.Millisecond))
	b := s.NewThread("b", 0, 0, busySource(100*sim.Millisecond))
	s.Wake(a)
	s.Wake(b)
	eng.Run(1 * sim.Second)
	// With 24ms latency and 2 runnable threads the slice is 12ms, so in
	// 1s we expect on the order of 80 context switches; certainly >10
	// and both threads must have run.
	if s.ContextSwitches < 10 {
		t.Fatalf("ContextSwitches = %d, want >= 10", s.ContextSwitches)
	}
	if a.SumExec() == 0 || b.SumExec() == 0 {
		t.Fatal("both threads must run despite long chunks")
	}
}

func TestNoPreemptionWhenAlone(t *testing.T) {
	eng, s := newSched(1)
	a := s.NewThread("a", 0, 0, busySource(sim.Millisecond))
	s.Wake(a)
	eng.Run(500 * sim.Millisecond)
	// One switch to start; slice expiry with empty rq must not switch.
	if s.ContextSwitches != 1 {
		t.Fatalf("ContextSwitches = %d, want 1", s.ContextSwitches)
	}
	if a.SumExec() < 499*sim.Millisecond {
		t.Fatalf("SumExec = %v, want ~500ms", a.SumExec())
	}
}

func TestWakeupPreemption(t *testing.T) {
	eng, s := newSched(1)
	hog := busySource(sim.Millisecond)
	thog := s.NewThread("hog", 0, 0, hog)
	s.Wake(thog)

	sleeper := newFiniteSource(1, 10*sim.Microsecond)
	tsleep := s.NewThread("sleeper", 0, 0, sleeper)

	var wokeAt, ranAt sim.Time
	orig := sleeper.onDone
	sleeper.onDone = func() {
		if ranAt == 0 {
			ranAt = eng.Now()
		}
		orig()
	}

	// Let the hog build up vruntime, then wake the sleeper: it should
	// preempt quickly rather than wait for the hog's slice to end.
	eng.After(100*sim.Millisecond, func() {
		wokeAt = eng.Now()
		s.Wake(tsleep)
	})
	eng.Run(200 * sim.Millisecond)
	if ranAt == 0 {
		t.Fatal("sleeper never ran")
	}
	delay := ranAt - wokeAt
	if delay > 2*sim.Millisecond {
		t.Fatalf("wakeup-to-run delay = %v, want < 2ms (wakeup preemption)", delay)
	}
}

func TestSchedNotifiers(t *testing.T) {
	eng, s := newSched(1)
	var log []string
	a := s.NewThread("a", 0, 0, busySource(5*sim.Millisecond))
	b := s.NewThread("b", 0, 0, busySource(5*sim.Millisecond))
	a.SchedIn = func(core int) { log = append(log, "a-in") }
	a.SchedOut = func() { log = append(log, "a-out") }
	b.SchedIn = func(core int) { log = append(log, "b-in") }
	b.SchedOut = func() { log = append(log, "b-out") }
	s.Wake(a)
	s.Wake(b)
	eng.Run(100 * sim.Millisecond)
	if len(log) < 4 {
		t.Fatalf("too few notifier events: %v", log)
	}
	// Validate alternation: an X-in must be followed by X-out before
	// the next X-in, and at most one thread is "in" at a time.
	online := ""
	for _, ev := range log {
		switch ev {
		case "a-in", "b-in":
			if online != "" {
				t.Fatalf("overlapping online threads in %v", log)
			}
			online = ev[:1]
		case "a-out", "b-out":
			if online != ev[:1] {
				t.Fatalf("out without matching in: %v", log)
			}
			online = ""
		}
	}
}

func TestRequeryCutsChunkShort(t *testing.T) {
	eng, s := newSched(1)
	phase := 0
	var src *scriptSource
	src = &scriptSource{next: func() sim.Time {
		switch phase {
		case 0:
			return 10 * sim.Millisecond // long task
		case 1:
			return 100 * sim.Microsecond // short "interrupt handler"
		default:
			return 0
		}
	}}
	th := s.NewThread("v", 0, 0, src)
	s.Wake(th)
	// 1ms in, an interrupt arrives: switch the source to the handler and
	// requery.
	var handlerDone sim.Time
	src.onDone = func() {
		if phase == 1 {
			handlerDone = eng.Now()
			phase = 2
		}
	}
	eng.After(sim.Millisecond, func() {
		phase = 1
		s.Requery(th)
	})
	eng.Run(50 * sim.Millisecond)
	if handlerDone == 0 {
		t.Fatal("handler chunk never completed")
	}
	if handlerDone != sim.Millisecond+100*sim.Microsecond {
		t.Fatalf("handler done at %v, want 1.1ms (requery must cut the long chunk)", handlerDone)
	}
	// Partial progress of the long chunk must be charged.
	if src.ran < sim.Millisecond {
		t.Fatalf("ran = %v, want >= 1ms", src.ran)
	}
}

func TestRequeryOnRunnableIsNoop(t *testing.T) {
	eng, s := newSched(1)
	a := s.NewThread("a", 0, 0, busySource(sim.Millisecond))
	b := s.NewThread("b", 0, 0, busySource(sim.Millisecond))
	s.Wake(a)
	s.Wake(b)
	eng.Run(sim.Millisecond / 2)
	// One of them is runnable (not running); Requery must not disturb.
	var runnable *Thread
	if a.State() == Runnable {
		runnable = a
	} else {
		runnable = b
	}
	s.Requery(runnable)
	if runnable.State() != Runnable {
		t.Fatalf("state = %v, want runnable", runnable.State())
	}
}

func TestMultiCoreIndependence(t *testing.T) {
	eng, s := newSched(2)
	a := busySource(time1ms())
	b := busySource(time1ms())
	ta := s.NewThread("a", 0, 0, a)
	tb := s.NewThread("b", 1, 0, b)
	s.Wake(ta)
	s.Wake(tb)
	eng.Run(sim.Second)
	// Each thread owns a whole core.
	if a.ran < 999*sim.Millisecond || b.ran < 999*sim.Millisecond {
		t.Fatalf("per-core work: a=%v b=%v, want ~1s each", a.ran, b.ran)
	}
	if ta.Core() != 0 || tb.Core() != 1 {
		t.Fatal("threads must stay pinned")
	}
}

func time1ms() sim.Time { return sim.Millisecond }

func TestManyThreadsNoStarvation(t *testing.T) {
	eng, s := newSched(1)
	const n = 8
	srcs := make([]*scriptSource, n)
	for i := 0; i < n; i++ {
		srcs[i] = busySource(200 * sim.Microsecond)
		s.Wake(s.NewThread("t", 0, 0, srcs[i]))
	}
	eng.Run(4 * sim.Second)
	for i, src := range srcs {
		share := float64(src.ran) / float64(4*sim.Second)
		if share < 0.08 || share > 0.18 {
			t.Fatalf("thread %d share = %.3f, want ~0.125", i, share)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (uint64, sim.Time, sim.Time) {
		eng, s := newSched(2)
		a := busySource(73 * sim.Microsecond)
		b := busySource(131 * sim.Microsecond)
		c := newFiniteSource(1000, 97*sim.Microsecond)
		ta := s.NewThread("a", 0, 0, a)
		tb := s.NewThread("b", 0, 0, b)
		tc := s.NewThread("c", 1, 0, c)
		s.Wake(ta)
		s.Wake(tb)
		s.Wake(tc)
		// Periodic requery noise.
		var tick func()
		tick = func() {
			s.Requery(ta)
			if eng.Now() < sim.Second {
				eng.After(777*sim.Microsecond, tick)
			}
		}
		eng.After(sim.Millisecond, tick)
		eng.Run(sim.Second)
		return s.ContextSwitches, a.ran, b.ran
	}
	cs1, a1, b1 := run()
	cs2, a2, b2 := run()
	if cs1 != cs2 || a1 != a2 || b1 != b2 {
		t.Fatalf("replay diverged: (%d,%v,%v) vs (%d,%v,%v)", cs1, a1, b1, cs2, a2, b2)
	}
}

func TestBlockedThreadGetsWakeupPlacement(t *testing.T) {
	eng, s := newSched(1)
	hog := busySource(sim.Millisecond)
	thog := s.NewThread("hog", 0, 0, hog)
	s.Wake(thog)
	eng.Run(5 * sim.Second)
	// A thread that slept for 5s must not get 5s of catch-up credit: its
	// vruntime is clamped near the core's min_vruntime.
	late := newFiniteSource(1, 10*sim.Microsecond)
	tlate := s.NewThread("late", 0, 0, late)
	s.Wake(tlate)
	if diff := thog.Vruntime() - tlate.Vruntime(); diff > int64(2*DefaultParams().Latency) {
		t.Fatalf("sleeper got %v of credit, want bounded by ~latency", sim.Time(diff))
	}
}

func TestNewThreadValidation(t *testing.T) {
	_, s := newSched(1)
	mustPanic(t, func() { s.NewThread("x", 5, 0, busySource(1)) })
	mustPanic(t, func() { s.NewThread("x", 0, 0, nil) })
	mustPanic(t, func() { New(sim.NewEngine(1), 0, DefaultParams()) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestStateString(t *testing.T) {
	if Sleeping.String() != "sleeping" || Runnable.String() != "runnable" || Running.String() != "running" {
		t.Fatal("state names wrong")
	}
	if State(9).String() == "" {
		t.Fatal("unknown state should format")
	}
}

// Property: on a fully loaded core, consumed CPU time equals elapsed
// wall time (no time lost or double-charged) for any mix of chunk
// sizes and weights, and every thread makes progress.
func TestSchedConservationProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 6 {
			return true
		}
		eng := sim.NewEngine(3)
		s := New(eng, 1, DefaultParams())
		srcs := make([]*scriptSource, len(raw))
		for i, r := range raw {
			chunk := sim.Time(10+int(r)%200) * sim.Microsecond
			srcs[i] = busySource(chunk)
			weight := int64(0)
			if r%3 == 0 {
				weight = 2 * NiceZeroWeight
			}
			s.Wake(s.NewThread("t", 0, weight, srcs[i]))
		}
		const horizon = 500 * sim.Millisecond
		eng.Run(horizon)
		var total sim.Time
		for _, src := range srcs {
			if src.ran == 0 {
				return false // starvation
			}
			total += src.ran
		}
		// Allow the in-flight chunk's uncharged remainder.
		return total <= horizon && total >= horizon-sim.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
