package sched

import (
	"es2/internal/sim"
	"es2/internal/trace"
)

// core is one physical CPU with its private runqueue.
type core struct {
	id int
	s  *Scheduler

	// rq holds runnable threads (excluding cur) ordered by (vruntime,
	// seq). It is small (a handful of threads), so a sorted slice beats
	// a tree and is trivially deterministic.
	rq []*Thread

	cur         *Thread
	chunkEvt    *sim.Handle
	sliceEvt    *sim.Handle
	runStart    sim.Time // when cur last started being charged
	curStart    sim.Time // when cur was dispatched (timeline slice start)
	sliceStart  sim.Time // when cur's current timeslice budget opened
	sliceExpiry sim.Time // when the armed slice event fires
	minVr       int64    // floor of vruntime on this core
	dispatching bool
	needResched bool
}

// minVruntime returns the smallest plausible vruntime on the core, used
// for wakeup placement.
func (c *core) minVruntime() int64 {
	v := c.minVr
	if c.cur != nil && c.cur.vruntime > v {
		v = c.cur.vruntime
	}
	return v
}

func (c *core) enqueue(t *Thread) {
	// Insertion sort by (vruntime, seq): stable and deterministic.
	i := len(c.rq)
	for i > 0 {
		p := c.rq[i-1]
		if p.vruntime < t.vruntime || (p.vruntime == t.vruntime && p.seq < t.seq) {
			break
		}
		i--
	}
	c.rq = append(c.rq, nil)
	copy(c.rq[i+1:], c.rq[i:])
	c.rq[i] = t
}

// placeWakeup applies CFS wakeup placement: don't let a long sleeper
// monopolize the core; don't let it lose its fair position either. On
// top of the classic latency-wide sleeper bonus, the placement clamps
// the waker's lag against the queue: it may land at most one minimum
// granularity below the most-advanced thread already waiting (the
// EEVDF-style bounded-lag rule). Without the clamp, threads quiesced by
// an outage return with the full vruntime deficit they accumulated
// while idle, and a thread that stayed busy throughout starves for the
// sum of those catch-up credits — tens of milliseconds, exactly when
// recovery needs it running.
func (c *core) placeWakeup(t *Thread) {
	floor := c.minVruntime() - int64(c.s.params.Latency)
	if n := len(c.rq); n > 0 {
		if f := c.rq[n-1].vruntime - int64(c.s.params.MinGranularity); f > floor {
			floor = f
		}
	}
	if t.vruntime < floor {
		t.vruntime = floor
	}
}

func (c *core) dequeueLeftmost() *Thread {
	t := c.rq[0]
	copy(c.rq, c.rq[1:])
	c.rq[len(c.rq)-1] = nil
	c.rq = c.rq[:len(c.rq)-1]
	return t
}

// kick starts dispatching when the core is idle. While the core is
// inside its own scheduling logic, the pending queue is picked up
// naturally, so kick does nothing; preemption decisions are made
// exclusively by maybePreemptFor.
func (c *core) kick() {
	if c.dispatching || c.s.frozen {
		return
	}
	if c.cur == nil && len(c.rq) > 0 {
		c.dispatch()
	}
}

// maybePreemptFor applies the CFS wakeup-preemption check for a newly
// woken thread t against the currently running thread.
func (c *core) maybePreemptFor(t *Thread) {
	if c.cur == nil || c.cur == t {
		return
	}
	gran := int64(c.s.params.WakeupGranularity) * NiceZeroWeight / c.cur.weight
	if c.cur.vruntime-t.vruntime > gran {
		if c.dispatching {
			c.needResched = true
			return
		}
		c.preemptCurrent()
	}
}

// chargeCurrent accounts CPU time consumed by cur since runStart.
func (c *core) chargeCurrent() {
	t := c.cur
	if t == nil {
		return
	}
	now := c.s.eng.Now()
	delta := now - c.runStart
	c.runStart = now
	if delta <= 0 {
		return
	}
	t.sumExec += delta
	t.vruntime += int64(delta) * NiceZeroWeight / t.weight
	if t.vruntime > c.minVr {
		c.minVr = t.vruntime
	}
	// Attribute before Ran: the source's mode still describes the span
	// just consumed (Ran/ChunkDone may transition it).
	if t.Prof != nil {
		t.Prof().Add(delta)
	}
	t.Source.Ran(delta)
}

// sliceLength computes the current timeslice for cur. The ±10% jitter
// models the OS noise (interrupts, kernel threads, timer skew) that
// keeps real cores' scheduling phases diffusing instead of freezing
// into pathological alignments.
func (c *core) sliceLength() sim.Time {
	nr := len(c.rq) + 1
	slice := c.s.params.Latency / sim.Time(nr)
	if slice < c.s.params.MinGranularity {
		slice = c.s.params.MinGranularity
	}
	return c.s.rng.Jitter(slice, 0.10)
}

// dispatch picks the next thread and starts it. Must not be re-entered.
func (c *core) dispatch() {
	if c.s.frozen {
		return
	}
	c.dispatching = true
	defer func() { c.dispatching = false }()

	for {
		c.needResched = false
		if c.cur == nil {
			if len(c.rq) == 0 {
				return // idle
			}
			next := c.dequeueLeftmost()
			next.state = Running
			c.cur = next
			c.runStart = c.s.eng.Now()
			c.s.ContextSwitches++
			if c.s.path != nil {
				c.curStart = c.runStart
			}
			if next.wakePending {
				next.wakePending = false
				d := c.runStart - next.wakeT
				c.s.path.Observe(trace.StageSchedIn, trace.MechNone, d)
				if next.WakeLat != nil {
					next.WakeLat.Observe(d)
				}
			}
			if next.SchedIn != nil {
				next.SchedIn(c.id)
			}
			c.armSlice()
		}
		// Ask the source for work. This may be a fresh chunk or the
		// continuation after preemption/Requery.
		chunk := c.cur.Source.NextChunk()
		if chunk <= 0 {
			// No work: the thread blocks.
			c.stopCurrent(Sleeping)
			continue
		}
		c.armChunk(chunk)
		// If model code requested rescheduling while we were arming
		// (shouldn't normally happen here), loop.
		if !c.needResched {
			return
		}
		c.preemptLocked()
	}
}

func (c *core) armSlice() {
	if c.sliceEvt != nil {
		c.sliceEvt.Cancel()
	}
	now := c.s.eng.Now()
	d := c.sliceLength()
	c.sliceStart = now
	c.sliceExpiry = now + d
	c.sliceEvt = c.s.eng.After(d, c.sliceExpired)
}

// resizeSlice re-fits the running thread's timeslice to the current
// runqueue size. CFS recomputes ideal_runtime from nr_running at every
// scheduler tick, so a thread dispatched onto an empty core does not
// keep its full-latency slice once waiters arrive. This event-driven
// model has no periodic tick; the recomputation happens at wakeup — the
// only instant nr grows — and only ever shortens the armed slice.
// Without it, a thread that went on-CPU alone holds the core for the
// whole latency period (24ms) while late-arriving runnable threads
// starve.
func (c *core) resizeSlice() {
	if c.cur == nil || c.sliceEvt == nil {
		return
	}
	expiry := c.sliceStart + c.sliceLength()
	if expiry >= c.sliceExpiry {
		return
	}
	c.sliceExpiry = expiry
	now := c.s.eng.Now()
	if expiry <= now {
		// Budget already overdrawn under the new occupancy: preempt.
		c.sliceEvt.Cancel()
		c.sliceEvt = nil
		if c.dispatching {
			c.needResched = true
			return
		}
		c.preemptCurrent()
		return
	}
	c.sliceEvt.Cancel()
	c.sliceEvt = c.s.eng.After(expiry-now, c.sliceExpired)
}

func (c *core) armChunk(chunk sim.Time) {
	if c.chunkEvt != nil {
		c.chunkEvt.Cancel()
	}
	c.chunkEvt = c.s.eng.After(chunk, c.chunkDone)
}

// stopCurrent charges cur, fires SchedOut, and transitions it to the
// given state (Runnable re-enqueues it, Sleeping parks it).
func (c *core) stopCurrent(to State) {
	t := c.cur
	c.chargeCurrent()
	if c.s.tl != nil {
		c.s.tl.Slice(c.s.coreTracks[c.id], t.Name, c.curStart, c.s.eng.Now())
	}
	if c.chunkEvt != nil {
		c.chunkEvt.Cancel()
		c.chunkEvt = nil
	}
	if c.sliceEvt != nil {
		c.sliceEvt.Cancel()
		c.sliceEvt = nil
	}
	c.cur = nil
	t.state = to
	if to == Runnable {
		t.seq = c.s.seq
		c.s.seq++
		c.enqueue(t)
	}
	if t.SchedOut != nil {
		t.SchedOut()
	}
}

// preemptCurrent forces the running thread off the CPU and dispatches.
func (c *core) preemptCurrent() {
	if c.cur == nil {
		c.kick()
		return
	}
	c.dispatching = true
	c.preemptLocked()
	c.dispatching = false
	c.dispatch()
}

func (c *core) preemptLocked() {
	if c.cur != nil {
		c.stopCurrent(Runnable)
	}
}

// chunkDone fires when the current chunk ran to completion.
func (c *core) chunkDone() {
	c.chunkEvt = nil
	if c.cur == nil {
		return
	}
	c.dispatching = true
	c.chargeCurrent()
	c.cur.Source.ChunkDone()
	c.dispatching = false

	if c.cur == nil {
		// ChunkDone's side effects somehow cleared the CPU; dispatch.
		c.dispatch()
		return
	}
	// Honor any preemption requested during the callback, or by a
	// lower-vruntime waiter if our slice also expired meanwhile.
	if c.needResched {
		c.needResched = false
		c.preemptCurrent()
		return
	}
	c.dispatch()
}

// sliceExpired fires at timeslice end: preempt if anyone is waiting.
func (c *core) sliceExpired() {
	c.sliceEvt = nil
	if c.cur == nil {
		return
	}
	if len(c.rq) == 0 {
		// Nobody waiting: keep running, restart the slice clock.
		c.chargeCurrent()
		c.armSlice()
		return
	}
	c.preemptCurrent()
}

// requeryCurrent cuts the in-flight chunk short and re-consults the
// work source (used when new higher-priority work arrives for a running
// thread, e.g. an interrupt posted to a running vCPU).
func (c *core) requeryCurrent(t *Thread) {
	if c.cur != t {
		return
	}
	if c.dispatching {
		// Already inside scheduling logic; NextChunk will be consulted
		// before it finishes.
		return
	}
	c.chargeCurrent()
	if c.chunkEvt != nil {
		c.chunkEvt.Cancel()
		c.chunkEvt = nil
	}
	c.dispatching = true
	chunk := t.Source.NextChunk()
	if chunk > 0 {
		c.armChunk(chunk)
		c.dispatching = false
		if c.needResched {
			c.needResched = false
			c.preemptCurrent()
		}
		return
	}
	c.stopCurrent(Sleeping)
	c.dispatching = false
	c.dispatch()
}
