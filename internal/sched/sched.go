// Package sched implements the host CPU scheduling substrate: physical
// cores multiplexed among schedulable threads by a weighted-fair
// scheduler in the style of the Linux Completely Fair Scheduler (CFS).
//
// vCPU threads and vhost I/O threads are both ordinary threads here,
// exactly as they are ordinary tasks under KVM. The scheduler exposes
// preemption notifiers (the kvm_sched_in / kvm_sched_out analogues)
// that ES2's SchedWatcher uses to maintain per-VM online/offline vCPU
// lists.
//
// # Execution model
//
// A Thread draws CPU work from its WorkSource in chunks. The scheduler
// charges consumed time via Ran (so sources can account guest-mode vs
// host-mode time), may preempt a thread mid-chunk (the source simply
// sees Ran calls that do not add up to a full chunk before the next
// NextChunk), and treats NextChunk() == 0 as "no runnable work: block".
package sched

import (
	"fmt"

	"es2/internal/metrics"
	"es2/internal/profile"
	"es2/internal/sim"
	"es2/internal/trace"
)

// WorkSource supplies CPU work to a thread. All methods are invoked by
// the scheduler from engine events.
type WorkSource interface {
	// NextChunk returns the length of the next span of CPU work the
	// thread would execute if given the CPU now. Returning 0 blocks the
	// thread (it sleeps until Scheduler.Wake). The source must be
	// prepared for NextChunk to be called again without an intervening
	// ChunkDone: that means the previous chunk was cut short by
	// preemption or by Requery, and the time actually consumed has
	// already been reported through Ran.
	NextChunk() sim.Time
	// Ran reports that the thread consumed d nanoseconds of CPU.
	Ran(d sim.Time)
	// ChunkDone reports that the chunk most recently returned by
	// NextChunk ran to completion. The source may wake other threads,
	// queue more work, or leave itself with no work (blocking on the
	// next NextChunk).
	ChunkDone()
}

// Params are the scheduler tunables, mirroring CFS defaults for a
// machine of this core count.
type Params struct {
	// Latency is the scheduling period within which every runnable
	// thread on a core should run once (CFS sched_latency).
	Latency sim.Time
	// MinGranularity bounds the slice from below (CFS min_granularity).
	MinGranularity sim.Time
	// WakeupGranularity limits wakeup preemption: a waking thread
	// preempts only if its vruntime is behind the current thread's by
	// more than this (CFS wakeup_granularity).
	WakeupGranularity sim.Time
}

// DefaultParams returns the CFS defaults used by the paper's testbed
// kernel (4.2) for an 8-core machine: 6ms*(1+log2(8))/4... in practice
// sched_latency 24ms, min_gran 3ms, wakeup_gran 4ms at factor 4. We use
// the canonical base values scaled by factor 4 (ilog2(8 cores)+1 = 4).
func DefaultParams() Params {
	return Params{
		Latency:           24 * sim.Millisecond,
		MinGranularity:    3 * sim.Millisecond,
		WakeupGranularity: 4 * sim.Millisecond,
	}
}

// State is a thread's scheduling state.
type State uint8

const (
	// Sleeping threads are blocked waiting for a Wake.
	Sleeping State = iota
	// Runnable threads wait on a core's runqueue.
	Runnable
	// Running threads currently own a core.
	Running
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Sleeping:
		return "sleeping"
	case Runnable:
		return "runnable"
	case Running:
		return "running"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// NiceZeroWeight is the CFS load weight of a nice-0 task.
const NiceZeroWeight = 1024

// Thread is a host-schedulable entity (a vCPU thread or a vhost I/O
// thread).
type Thread struct {
	Name   string
	Source WorkSource

	// SchedIn, if non-nil, is invoked when the thread is about to start
	// running on a core (the kvm_sched_in preemption notifier).
	SchedIn func(coreID int)
	// SchedOut, if non-nil, is invoked immediately after the thread
	// stops running (the kvm_sched_out preemption notifier).
	SchedOut func()
	// Prof, if non-nil, resolves the thread's current profiling context
	// (the leaf node describing what it is doing right now). It is
	// consulted at every charge point, before Ran, so the owning model's
	// mode/state still reflects the span being charged. Returning nil
	// drops the charge from the profile (never done by the built-in
	// sources). Purely observational: must not mutate model state.
	Prof func() *profile.Node
	// WakeLat, if non-nil (telemetry runs), receives the wakeup-to-run
	// delay of every Sleeping→Running transition of this thread.
	// Purely observational.
	WakeLat *metrics.LogHistogram

	weight   int64
	vruntime int64 // weighted virtual runtime, ns at nice-0 scale
	sumExec  sim.Time
	state    State
	home     int // core index this thread is placed on
	seq      uint64

	// wakeT/wakePending track the last Sleeping->Runnable transition
	// for the sched-in wakeup-latency span (set only while tracing).
	wakeT       sim.Time
	wakePending bool

	s *Scheduler
}

// State returns the thread's scheduling state.
func (t *Thread) State() State { return t.state }

// Core returns the core index the thread is placed on.
func (t *Thread) Core() int { return t.home }

// SumExec returns the total CPU time the thread has consumed.
func (t *Thread) SumExec() sim.Time { return t.sumExec }

// Vruntime returns the thread's current weighted virtual runtime.
func (t *Thread) Vruntime() int64 { return t.vruntime }

// Scheduler multiplexes threads over a fixed set of cores. Threads are
// pinned to the core they were added on (no load balancing): the
// paper's experiments pin vCPUs and vhost threads explicitly, and fixed
// placement keeps runs deterministic.
type Scheduler struct {
	eng    *sim.Engine
	params Params
	cores  []*core
	seq    uint64
	rng    *sim.Rand

	// path/tl/coreTracks are the span-tracing hooks installed by
	// SetPathTracer; all nil/empty (and cost-free) when tracing is off.
	path       *trace.PathTracer
	tl         *trace.Timeline
	coreTracks []trace.TrackID

	// ContextSwitches counts thread switches across all cores.
	ContextSwitches uint64

	// frozen halts all dispatching (whole-host outage injection).
	frozen bool
}

// New creates a scheduler managing nCores cores.
func New(eng *sim.Engine, nCores int, params Params) *Scheduler {
	if nCores <= 0 {
		panic("sched: need at least one core")
	}
	s := &Scheduler{eng: eng, params: params, rng: eng.Rand().Fork()}
	for i := 0; i < nCores; i++ {
		s.cores = append(s.cores, &core{id: i, s: s})
	}
	return s
}

// NumCores returns the number of cores.
func (s *Scheduler) NumCores() int { return len(s.cores) }

// SetPathTracer attaches an event-path span tracer: wakeup->running
// latency is observed as the sched-in stage, and each continuous run of
// a thread on a core becomes a slice on the timeline's per-core tracks.
// Call during deterministic build, before the simulation runs.
func (s *Scheduler) SetPathTracer(p *trace.PathTracer) {
	s.path = p
	if tl := p.TL(); tl != nil {
		s.tl = tl
		s.coreTracks = make([]trace.TrackID, len(s.cores))
		for i := range s.cores {
			s.coreTracks[i] = tl.Track("cores", fmt.Sprintf("core%d", i))
		}
	}
}

// NewThread creates a thread with the given nice-0-relative weight
// (1024 = nice 0) pinned to core. The thread starts Sleeping; call Wake
// to make it runnable.
func (s *Scheduler) NewThread(name string, coreID int, weight int64, src WorkSource) *Thread {
	if coreID < 0 || coreID >= len(s.cores) {
		panic(fmt.Sprintf("sched: core %d out of range", coreID))
	}
	if weight <= 0 {
		weight = NiceZeroWeight
	}
	if src == nil {
		panic("sched: nil WorkSource")
	}
	t := &Thread{Name: name, Source: src, weight: weight, home: coreID, state: Sleeping, s: s}
	return t
}

// Wake makes a sleeping thread runnable on its home core, applying the
// CFS wakeup placement and preemption rules. Waking a runnable or
// running thread is a no-op, matching try_to_wake_up semantics.
func (s *Scheduler) Wake(t *Thread) {
	if t.state != Sleeping {
		return
	}
	c := s.cores[t.home]
	c.placeWakeup(t)
	t.state = Runnable
	if s.path != nil || t.WakeLat != nil {
		t.wakeT = s.eng.Now()
		t.wakePending = true
	}
	t.seq = s.seq
	s.seq++
	c.enqueue(t)
	c.maybePreemptFor(t)
	c.resizeSlice()
	c.kick()
}

// Requery tells the scheduler that t's pending work changed (for
// example, an interrupt was queued to a running vCPU). If t is
// currently running, its in-flight chunk is cut short and NextChunk is
// consulted again immediately; otherwise it is a no-op (the new work is
// naturally picked up at the next dispatch). Requery on a sleeping
// thread does not wake it — use Wake.
func (s *Scheduler) Requery(t *Thread) {
	if t.state != Running {
		return
	}
	c := s.cores[t.home]
	c.requeryCurrent(t)
}

// CurrentOn returns the thread running on coreID, or nil when idle.
func (s *Scheduler) CurrentOn(coreID int) *Thread { return s.cores[coreID].cur }

// RunnableCount returns the number of runnable+running threads on core.
func (s *Scheduler) RunnableCount(coreID int) int {
	c := s.cores[coreID]
	n := len(c.rq)
	if c.cur != nil {
		n++
	}
	return n
}

// Freeze halts dispatching on every core: the running thread on each
// core is preempted back to its runqueue (a clean SchedOut, so
// watchers and profilers stay consistent) and nothing runs until
// Unfreeze. Wakeups and requeries during the freeze are accepted and
// pile up runnable. This models a whole-host outage — crash or hard
// freeze — at the CPU level; it does not touch thread state beyond the
// preemption, so the host recovers warm.
func (s *Scheduler) Freeze() {
	if s.frozen {
		return
	}
	s.frozen = true
	for _, c := range s.cores {
		if c.cur != nil {
			c.preemptCurrent()
		}
	}
}

// Unfreeze resumes dispatching and kicks every core so piled-up
// runnable threads start immediately.
func (s *Scheduler) Unfreeze() {
	if !s.frozen {
		return
	}
	s.frozen = false
	for _, c := range s.cores {
		c.kick()
	}
}

// Frozen reports whether the scheduler is currently frozen.
func (s *Scheduler) Frozen() bool { return s.frozen }

// Now returns the scheduler's engine clock (convenience for sources).
func (s *Scheduler) Now() sim.Time { return s.eng.Now() }

// Engine returns the underlying simulation engine.
func (s *Scheduler) Engine() *sim.Engine { return s.eng }
