package sim

import "math"

// Rand is a small, fast, deterministic pseudo-random generator based on
// splitmix64. It intentionally does not implement math/rand.Source so
// that model code cannot accidentally swap in a wall-clock-seeded source.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Two generators with the
// same seed produce identical streams.
func NewRand(seed uint64) *Rand {
	// Avoid the all-zero fixed point by mixing in a constant.
	return &Rand{state: seed + 0x9e3779b97f4a7c15}
}

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// ExpFloat64 returns an exponentially distributed float64 with mean 1.
func (r *Rand) ExpFloat64() float64 {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1 - u)
}

// Duration returns a uniform virtual duration in [0, d). d must be > 0.
func (r *Rand) Duration(d Time) Time { return Time(r.Int63n(int64(d))) }

// ExpDuration returns an exponentially distributed duration with the
// given mean, capped at 20x the mean to keep event horizons bounded.
func (r *Rand) ExpDuration(mean Time) Time {
	d := Time(float64(mean) * r.ExpFloat64())
	if max := 20 * mean; d > max {
		d = max
	}
	return d
}

// Jitter returns base perturbed by a uniform factor in [1-f, 1+f].
// f must be in [0, 1).
func (r *Rand) Jitter(base Time, f float64) Time {
	if f <= 0 {
		return base
	}
	scale := 1 - f + 2*f*r.Float64()
	return Time(float64(base) * scale)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Fork derives an independent generator whose stream is a pure function
// of the parent state, for subsystems that need private randomness.
func (r *Rand) Fork() *Rand { return NewRand(r.Uint64()) }
