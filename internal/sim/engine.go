package sim

import (
	"container/heap"
	"fmt"

	"es2/internal/enginestats"
)

// Handle identifies a scheduled event and allows it to be cancelled or
// rescheduled. Handles are returned by Engine.At and Engine.After.
type Handle struct {
	t        Time
	seq      uint64
	index    int // position in the heap, -1 when not queued
	fn       func()
	canceled bool
	// perfLabel is the enginestats subsystem label of a sampled event
	// (0 for the unsampled majority and when stats are off).
	perfLabel int32
}

// Cancel prevents the event from firing. Cancelling an event that has
// already fired or been cancelled is a no-op. Cancel must be called from
// the engine goroutine (i.e. from inside event callbacks), like every
// other engine method.
func (h *Handle) Cancel() {
	if h == nil {
		return
	}
	h.canceled = true
	h.fn = nil // release the closure promptly
}

// Active reports whether the event is still pending.
func (h *Handle) Active() bool { return h != nil && !h.canceled && h.index >= 0 }

// When returns the instant the event is scheduled for. The value is
// meaningless once the event has fired or been cancelled.
func (h *Handle) When() Time { return h.t }

// eventQueue is a binary min-heap of *Handle ordered by (time, seq).
type eventQueue []*Handle

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	h := x.(*Handle)
	h.index = len(*q)
	*q = append(*q, h)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	h := old[n-1]
	old[n-1] = nil
	h.index = -1
	*q = old[:n-1]
	return h
}

// Engine is a discrete-event simulation executive. The zero value is not
// usable; create engines with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	rng     *Rand
	stopped bool

	// Stats, useful for harness introspection and tests. The heap
	// counters are maintained unconditionally — they are plain
	// increments — and read through HeapStats.
	fired      uint64
	heapPushes uint64
	heapPops   uint64
	heapFixes  uint64
	maxDepth   int
	depthSum   uint64 // queue length summed at each push (mean depth)

	// stats, when non-nil, receives the event stream for wall-clock
	// performance telemetry (see SetStats).
	stats *enginestats.Collector
}

// NewEngine returns an engine with its clock at zero and randomness
// seeded from seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRand(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *Rand { return e.rng }

// EventsFired returns the number of events executed so far.
func (e *Engine) EventsFired() uint64 { return e.fired }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return len(e.queue) }

// HeapStats snapshots the event-queue counters: pushes, pops, in-place
// fixes, max and mean queue depth, and the current pending count.
func (e *Engine) HeapStats() enginestats.HeapStats {
	hs := enginestats.HeapStats{
		Pushes:   e.heapPushes,
		Pops:     e.heapPops,
		Fixes:    e.heapFixes,
		MaxDepth: e.maxDepth,
		Pending:  len(e.queue),
	}
	if e.heapPushes > 0 {
		hs.MeanDepth = float64(e.depthSum) / float64(e.heapPushes)
	}
	return hs
}

// SetStats attaches a wall-clock performance collector: subsequent
// events flow through it for events-per-tick accounting and sampled
// per-subsystem wall/allocation attribution. Pass nil to detach.
// Attaching a collector never perturbs the simulation — event order
// and simulated results are identical with and without one.
func (e *Engine) SetStats(c *enginestats.Collector) { e.stats = c }

// Stats returns the attached performance collector (nil when off).
func (e *Engine) Stats() *enginestats.Collector { return e.stats }

// At schedules fn to run at instant t. Scheduling in the past panics:
// it always indicates a model bug, and silently clamping would hide it.
func (e *Engine) At(t Time, fn func()) *Handle {
	if fn == nil {
		panic("sim: At called with nil fn")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: now=%v t=%v", e.now, t))
	}
	h := &Handle{t: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, h)
	e.heapPushes++
	n := len(e.queue)
	if n > e.maxDepth {
		e.maxDepth = n
	}
	e.depthSum += uint64(n)
	if e.stats != nil {
		h.perfLabel = e.stats.SampleSite()
	}
	return h
}

// After schedules fn to run d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) *Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Step executes the single earliest pending event. It returns false when
// the queue is empty or the engine has been stopped.
func (e *Engine) Step() bool {
	for {
		if e.stopped || len(e.queue) == 0 {
			return false
		}
		h := heap.Pop(&e.queue).(*Handle)
		e.heapPops++
		if h.canceled {
			continue
		}
		if h.t < e.now {
			panic("sim: time went backwards")
		}
		e.now = h.t
		fn := h.fn
		h.fn = nil
		e.fired++
		if e.stats != nil {
			e.stats.RunEvent(int64(h.t), h.perfLabel, fn)
		} else {
			fn()
		}
		return true
	}
}

// Run executes events until the clock would pass the until instant, the
// queue drains, or Stop is called. On return the clock reads exactly
// until (if the horizon was hit) or the time of the last event executed.
func (e *Engine) Run(until Time) {
	for !e.stopped && len(e.queue) > 0 {
		// Peek without popping so an over-horizon event survives for a
		// later Run call.
		next := e.queue[0]
		if next.canceled {
			heap.Pop(&e.queue)
			e.heapPops++
			continue
		}
		if next.t > until {
			break
		}
		e.Step()
	}
	if !e.stopped && e.now < until {
		e.now = until
	}
}

// RunAll executes events until the queue drains or Stop is called.
func (e *Engine) RunAll() {
	for e.Step() {
	}
}

// Stop halts the engine: Run/RunAll/Step return immediately afterwards.
// Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }
