// Package sim provides the deterministic discrete-event simulation engine
// that underlies every other package in this repository.
//
// The engine maintains a virtual clock with nanosecond resolution and a
// priority queue of scheduled events. All model code runs inside event
// callbacks on a single goroutine per Engine, so model state never needs
// locking as long as it is owned by one engine. Multiple engines may run
// concurrently (the benchmark harness exploits this to sweep scenarios in
// parallel).
//
// Determinism is a hard invariant: the engine never consults the wall
// clock, ties between events scheduled for the same instant are broken by
// insertion order, and all randomness flows from a seeded splitmix64
// generator. Running the same scenario with the same seed always produces
// bit-identical results.
package sim

import (
	"fmt"
	"time"
)

// Time is an instant of virtual time, in nanoseconds since the start of
// the simulation. It is a distinct type from time.Duration to keep wall
// time and virtual time from mixing accidentally.
type Time int64

// Common duration units, usable as "5 * sim.Microsecond".
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// DurationOf converts a time.Duration into virtual time. It is provided
// for API boundaries (scenario specs use time.Duration for familiarity).
func DurationOf(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats the instant with an adaptive unit, e.g. "1.500ms".
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%v", -t)
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Millis())
	default:
		return fmt.Sprintf("%.6fs", t.Seconds())
	}
}
