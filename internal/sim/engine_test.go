package sim

import (
	"testing"
	"testing/quick"
	"time"

	"es2/internal/enginestats"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1e9 {
		t.Fatalf("Second = %d, want 1e9", int64(Second))
	}
	if DurationOf(2*time.Millisecond) != 2*Millisecond {
		t.Fatalf("DurationOf mismatch")
	}
	if got := (1500 * Microsecond).Millis(); got != 1.5 {
		t.Fatalf("Millis = %v, want 1.5", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{2500 * Microsecond, "2.500ms"},
		{3 * Second, "3.000000s"},
		{-1500, "-1.500us"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestEngineTieBreakByInsertion(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order broken: order=%v", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	h := e.At(10, func() { fired = true })
	if !h.Active() {
		t.Fatal("handle should be active before firing")
	}
	h.Cancel()
	e.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if h.Active() {
		t.Fatal("cancelled handle still active")
	}
}

func TestEngineRunHorizon(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	e.At(10, func() { fired = append(fired, 10) })
	e.At(50, func() { fired = append(fired, 50) })
	e.Run(30)
	if len(fired) != 1 || fired[0] != 10 {
		t.Fatalf("fired = %v, want [10]", fired)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30 (horizon)", e.Now())
	}
	e.Run(100)
	if len(fired) != 2 {
		t.Fatalf("second Run should fire the remaining event, fired=%v", fired)
	}
	if e.Now() != 100 {
		t.Fatalf("Now = %v, want 100", e.Now())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			e.After(Microsecond, tick)
		}
	}
	e.After(0, tick)
	e.RunAll()
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
	if e.Now() != 99*Microsecond {
		t.Fatalf("Now = %v, want 99us", e.Now())
	}
}

func TestEnginePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.RunAll()
}

func TestEngineNilFnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil fn did not panic")
		}
	}()
	NewEngine(1).At(10, nil)
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	n := 0
	e.At(1, func() { n++; e.Stop() })
	e.At(2, func() { n++ })
	e.RunAll()
	if n != 1 {
		t.Fatalf("n = %d, want 1 (Stop should halt execution)", n)
	}
	if !e.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
}

func TestEngineStepSkipsCancelled(t *testing.T) {
	e := NewEngine(1)
	h := e.At(1, func() {})
	fired := false
	e.At(2, func() { fired = true })
	h.Cancel()
	if !e.Step() {
		t.Fatal("Step should execute the live event")
	}
	if !fired {
		t.Fatal("live event did not fire")
	}
}

func TestEngineEventsFired(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 5; i++ {
		e.At(Time(i), func() {})
	}
	e.RunAll()
	if e.EventsFired() != 5 {
		t.Fatalf("EventsFired = %d, want 5", e.EventsFired())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
}

// Property: events fire in non-decreasing time order regardless of the
// insertion order.
func TestEngineMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine(7)
		var fireTimes []Time
		for _, d := range delays {
			e.At(Time(d), func() { fireTimes = append(fireTimes, e.Now()) })
		}
		e.RunAll()
		if len(fireTimes) != len(delays) {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRand(43)
	same := true
	a2 := NewRand(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		if v := r.ExpFloat64(); v < 0 {
			t.Fatalf("ExpFloat64 negative: %v", v)
		}
	}
}

func TestRandIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandExpDurationMean(t *testing.T) {
	r := NewRand(9)
	const mean = 100 * Microsecond
	var sum Time
	const n = 200000
	for i := 0; i < n; i++ {
		d := r.ExpDuration(mean)
		if d < 0 || d > 20*mean {
			t.Fatalf("ExpDuration out of range: %v", d)
		}
		sum += d
	}
	got := float64(sum) / n
	if got < 0.95*float64(mean) || got > 1.05*float64(mean) {
		t.Fatalf("ExpDuration empirical mean %.0f, want ~%d", got, int64(mean))
	}
}

func TestRandJitter(t *testing.T) {
	r := NewRand(5)
	base := 1000 * Nanosecond
	for i := 0; i < 1000; i++ {
		v := r.Jitter(base, 0.25)
		if v < 750 || v > 1250 {
			t.Fatalf("Jitter out of range: %v", v)
		}
	}
	if r.Jitter(base, 0) != base {
		t.Fatal("Jitter with f=0 must return base")
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(3)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm invalid: %v", p)
		}
		seen[v] = true
	}
}

func TestRandFork(t *testing.T) {
	r := NewRand(11)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forked generators should differ")
	}
}

func TestEngineHeapStats(t *testing.T) {
	e := NewEngine(1)
	hs := e.HeapStats()
	if hs.Pushes != 0 || hs.Pops != 0 || hs.MaxDepth != 0 || hs.MeanDepth != 0 || hs.Pending != 0 {
		t.Fatalf("fresh engine heap stats not zero: %+v", hs)
	}
	e.At(10, func() {})
	e.At(20, func() {})
	e.At(30, func() {})
	hs = e.HeapStats()
	if hs.Pushes != 3 || hs.MaxDepth != 3 || hs.Pending != 3 {
		t.Fatalf("after 3 pushes: %+v", hs)
	}
	// Depth at push time was 1, 2, 3 → mean 2.
	if hs.MeanDepth != 2 {
		t.Fatalf("MeanDepth = %v, want 2", hs.MeanDepth)
	}
	e.RunAll()
	hs = e.HeapStats()
	if hs.Pops != 3 || hs.Pending != 0 {
		t.Fatalf("after drain: %+v", hs)
	}
	if hs.Fixes != 0 {
		t.Fatalf("binary-heap engine reported fixes: %+v", hs)
	}
}

func TestEngineHeapStatsCountsCancelledPops(t *testing.T) {
	e := NewEngine(1)
	h := e.At(10, func() {})
	h.Cancel()
	e.At(20, func() {})
	e.Run(100)
	hs := e.HeapStats()
	// Both handles leave the heap: the cancelled one via the Run peek
	// path or Step's skip loop, the live one via Step.
	if hs.Pushes != 2 || hs.Pops != 2 {
		t.Fatalf("pushes/pops = %d/%d, want 2/2", hs.Pushes, hs.Pops)
	}
}

func TestEngineSetStats(t *testing.T) {
	e := NewEngine(1)
	if e.Stats() != nil {
		t.Fatalf("fresh engine has a collector")
	}
	c := enginestats.New(1) // sample every event
	e.SetStats(c)
	if e.Stats() != c {
		t.Fatalf("Stats() did not return the attached collector")
	}
	fired := 0
	e.At(10, func() { fired++ })
	e.At(10, func() { fired++ })
	e.At(25, func() { fired++ })
	e.RunAll()
	if fired != 3 {
		t.Fatalf("fired = %d, want 3 (collector must pass events through)", fired)
	}
	r := c.Report(e.EventsFired(), e.HeapStats(), e.Now().Seconds(), 0)
	if r.EventsFired != 3 || r.Heap.Pushes != 3 {
		t.Fatalf("report fired/pushes = %d/%d, want 3/3", r.EventsFired, r.Heap.Pushes)
	}
	// Two distinct instants executed: tick 10 ran 2 events, tick 25 ran 1.
	if r.Ticks != 2 {
		t.Fatalf("Ticks = %d, want 2", r.Ticks)
	}
	e.SetStats(nil)
	if e.Stats() != nil {
		t.Fatalf("SetStats(nil) did not detach")
	}
}
