package virtio

import (
	"testing"
	"testing/quick"
)

func TestAddPopRoundTrip(t *testing.T) {
	q := New("tx", 4)
	if !q.Add(Desc{Len: 100}) {
		t.Fatal("Add failed on empty queue")
	}
	d, ok := q.Pop()
	if !ok || d.Len != 100 {
		t.Fatalf("Pop = %+v,%t", d, ok)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty avail should fail")
	}
}

func TestRingCapacity(t *testing.T) {
	q := New("tx", 3)
	for i := 0; i < 3; i++ {
		if !q.Add(Desc{Len: i}) {
			t.Fatalf("Add %d failed", i)
		}
	}
	if q.Add(Desc{}) {
		t.Fatal("Add beyond capacity should fail")
	}
	if !q.Full() || q.Free() != 0 {
		t.Fatal("Full/Free wrong")
	}
	// Descriptors stay outstanding until the driver reclaims used ones.
	d, _ := q.Pop()
	if q.Add(Desc{}) {
		t.Fatal("popped-but-not-completed descriptor must still occupy the ring")
	}
	q.PushUsed(d)
	if q.Add(Desc{}) {
		t.Fatal("used-but-unreclaimed descriptor must still occupy the ring")
	}
	q.CollectUsed(0)
	if !q.Add(Desc{}) {
		t.Fatal("Add should succeed after reclamation")
	}
}

func TestFIFOOrder(t *testing.T) {
	q := New("tx", 16)
	for i := 0; i < 10; i++ {
		q.Add(Desc{Len: i})
	}
	for i := 0; i < 10; i++ {
		d, ok := q.Pop()
		if !ok || d.Len != i {
			t.Fatalf("Pop %d = %+v,%t", i, d, ok)
		}
	}
}

func TestKickSuppression(t *testing.T) {
	q := New("tx", 8)
	kicked := 0
	q.OnKick(func() { kicked++ })
	if !q.Kick() {
		t.Fatal("unsuppressed kick should deliver")
	}
	q.SetNoNotify(true)
	if q.Kick() {
		t.Fatal("suppressed kick should not deliver")
	}
	q.SetNoNotify(false)
	q.Kick()
	if kicked != 2 {
		t.Fatalf("kick callback ran %d times, want 2", kicked)
	}
	if q.Kicks != 2 || q.SuppressedKicks != 1 {
		t.Fatalf("kick stats: %d/%d", q.Kicks, q.SuppressedKicks)
	}
}

func TestInterruptSuppression(t *testing.T) {
	q := New("rx", 8)
	raised := 0
	q.OnInterrupt(func() { raised++ })
	if !q.Signal() {
		t.Fatal("unsuppressed signal should deliver")
	}
	q.SetNoInterrupt(true)
	if q.Signal() {
		t.Fatal("suppressed signal should not deliver")
	}
	if !q.InterruptSuppressed() {
		t.Fatal("InterruptSuppressed should be true")
	}
	q.SetNoInterrupt(false)
	q.Signal()
	if raised != 2 {
		t.Fatalf("interrupt callback ran %d times, want 2", raised)
	}
	if q.Signals != 2 || q.SuppressedSignals != 1 {
		t.Fatalf("signal stats: %d/%d", q.Signals, q.SuppressedSignals)
	}
}

func TestCollectUsedPartial(t *testing.T) {
	q := New("rx", 16)
	for i := 0; i < 5; i++ {
		q.Add(Desc{Len: i})
		d, _ := q.Pop()
		q.PushUsed(d)
	}
	got := q.CollectUsed(2)
	if len(got) != 2 || got[0].Len != 0 || got[1].Len != 1 {
		t.Fatalf("CollectUsed(2) = %+v", got)
	}
	got = q.CollectUsed(0)
	if len(got) != 3 || got[0].Len != 2 {
		t.Fatalf("CollectUsed(0) = %+v", got)
	}
	if q.UsedLen() != 0 {
		t.Fatal("used ring should be empty")
	}
}

func TestStringAndAccessors(t *testing.T) {
	q := New("tx", 256)
	if q.Name() != "tx" || q.Size() != 256 {
		t.Fatal("accessors wrong")
	}
	if q.String() == "" {
		t.Fatal("String empty")
	}
	mustPanic(t, func() { New("bad", 0) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

// Property: under any interleaving of operations the queue neither
// loses nor duplicates descriptors, and outstanding never exceeds size.
func TestVirtqueueConservationProperty(t *testing.T) {
	type op byte
	f := func(ops []byte) bool {
		q := New("p", 8)
		next := 0        // next descriptor id to add
		inFlight := 0    // popped but not yet pushed used
		var popped []int // ids held by the device
		seen := make(map[int]bool)
		for _, o := range ops {
			switch o % 4 {
			case 0: // add
				if q.Add(Desc{Len: next}) {
					next++
				}
			case 1: // pop
				if d, ok := q.Pop(); ok {
					popped = append(popped, d.Len)
					inFlight++
				}
			case 2: // push used
				if inFlight > 0 {
					id := popped[0]
					popped = popped[1:]
					q.PushUsed(Desc{Len: id})
					inFlight--
				}
			case 3: // collect
				for _, d := range q.CollectUsed(0) {
					if seen[d.Len] {
						return false // duplicate
					}
					seen[d.Len] = true
				}
			}
			if q.AvailLen()+q.UsedLen() > q.Size() {
				return false
			}
			if q.Free() < 0 {
				return false
			}
		}
		// Drain everything and verify all added ids come back once.
		for {
			d, ok := q.Pop()
			if !ok {
				break
			}
			q.PushUsed(d)
		}
		for inFlight > 0 {
			id := popped[0]
			popped = popped[1:]
			q.PushUsed(Desc{Len: id})
			inFlight--
		}
		for _, d := range q.CollectUsed(0) {
			if seen[d.Len] {
				return false
			}
			seen[d.Len] = true
		}
		if len(seen) != next {
			return false // lost a descriptor
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
