// Package virtio models the paravirtual I/O transport of the virtio
// standard: split virtqueues shared between a guest front-end driver
// and a host back-end device, with both directions of event
// suppression:
//
//   - the device suppresses guest kicks (VRING_USED_F_NO_NOTIFY /
//     avail_event): this is the mechanism ES2's polling mode uses to
//     "permanently disable the notification mechanism" and eliminate
//     I/O-instruction exits;
//   - the driver suppresses device interrupts (VRING_AVAIL_F_NO_INTERRUPT
//     / used_event): this is what guest NAPI uses to mask interrupts
//     while polling.
//
// The queue carries abstract descriptors; timing and exits live in the
// guest/vhost/vmm layers that own the two ends.
package virtio

import (
	"fmt"

	"es2/internal/causal"
	"es2/internal/metrics"
	"es2/internal/netsim"
	"es2/internal/sim"
)

// Desc is one descriptor chain posted to a virtqueue — for virtio-net,
// one packet.
type Desc struct {
	// Len is the buffer length in bytes.
	Len int
	// Payload carries the model object (e.g. a *netsim.Packet).
	Payload any

	// SpanT and SpanMech carry event-path span-tracing state across the
	// ring: the instant the descriptor entered its current stage and
	// the mechanism tag of that transition (see internal/trace). Zero
	// when tracing is disabled; opaque to the queue itself.
	SpanT    sim.Time
	SpanMech uint8

	// resT is the avail-publish instant, stamped by Add when the
	// queue's residency probe is installed (telemetry runs).
	resT sim.Time
}

// CausalChain returns the per-request causal chain riding the
// descriptor's payload packet, or nil when the payload is not a
// packet or causal tracking is off. Both ends of the ring use it to
// stamp the chain without knowing the payload type.
func (d Desc) CausalChain() *causal.Chain {
	if p, ok := d.Payload.(*netsim.Packet); ok {
		return p.Chain
	}
	return nil
}

// Virtqueue is one split virtqueue.
type Virtqueue struct {
	name string
	size int

	avail    []Desc // posted by the driver, not yet consumed by the device
	used     []Desc // completed by the device, not yet reclaimed by the driver
	inflight int    // popped by the device, not yet pushed used

	noNotify    bool // device->driver: suppress guest kicks
	noInterrupt bool // driver->device: suppress device interrupts

	kick      func() // ioeventfd: invoked on allowed guest kicks
	interrupt func() // irqfd: invoked on allowed device signals

	claimed bool // a back-end device owns this queue end

	// DropKick and DropSignal are fault-injection hooks (see
	// internal/faults). When non-nil they are consulted after the
	// notification is counted but before the callback fires; returning
	// true swallows the edge — the cost was paid, the event never
	// arrives. Nil in normal operation.
	DropKick   func() bool
	DropSignal func() bool

	// resLat/resNow implement the residency probe: when installed,
	// every descriptor is stamped at Add and its avail-ring residency
	// (publish → device dequeue) observed at Pop. Purely
	// observational; nil in normal operation.
	resLat *metrics.LogHistogram
	resNow func() sim.Time

	// Statistics.
	Kicks             uint64 // kicks actually delivered (each is a VM exit)
	SuppressedKicks   uint64 // kicks elided by NO_NOTIFY
	Signals           uint64 // interrupts actually raised
	SuppressedSignals uint64 // interrupts elided by NO_INTERRUPT
	Added             uint64 // descriptors posted by the driver
	Popped            uint64 // descriptors consumed by the device
}

// New creates a virtqueue with the given ring size (power of two by
// virtio convention, 256 for virtio-net).
func New(name string, size int) *Virtqueue {
	if size <= 0 {
		panic("virtio: queue size must be positive")
	}
	return &Virtqueue{name: name, size: size}
}

// Name returns the queue's name (e.g. "tx", "rx").
func (q *Virtqueue) Name() string { return q.name }

// Claim marks the queue as owned by a back-end device. Attaching two
// devices to one queue corrupts the avail/used accounting (the second
// Pop/PushUsed stream races the first), so a second Claim is refused;
// callers surface the error through spec validation.
func (q *Virtqueue) Claim() error {
	if q.claimed {
		return fmt.Errorf("virtio: queue %q is already attached to a device", q.name)
	}
	q.claimed = true
	return nil
}

// Size returns the ring capacity.
func (q *Virtqueue) Size() int { return q.size }

// OnKick installs the host-side kick callback (the ioeventfd handler).
func (q *Virtqueue) OnKick(fn func()) { q.kick = fn }

// OnInterrupt installs the guest-side interrupt callback (the irqfd
// that raises the device MSI).
func (q *Virtqueue) OnInterrupt(fn func()) { q.interrupt = fn }

// outstanding is the number of descriptors the driver cannot reuse yet:
// still available, held by the device, or completed but unreclaimed.
func (q *Virtqueue) outstanding() int { return len(q.avail) + q.inflight + len(q.used) }

// Full reports whether the ring has no free descriptor.
func (q *Virtqueue) Full() bool { return q.outstanding() >= q.size }

// Free returns the number of descriptors the driver may still post.
func (q *Virtqueue) Free() int { return q.size - q.outstanding() }

// AvailLen returns the number of descriptors awaiting the device.
func (q *Virtqueue) AvailLen() int { return len(q.avail) }

// UsedLen returns the number of completed descriptors awaiting the
// driver.
func (q *Virtqueue) UsedLen() int { return len(q.used) }

// --- driver (guest front-end) side ---

// Add posts a descriptor. It reports false when the ring is full (the
// guest must stop its queue and wait for used-buffer reclamation).
func (q *Virtqueue) Add(d Desc) bool {
	if q.Full() {
		return false
	}
	if q.resLat != nil {
		d.resT = q.resNow()
	}
	q.avail = append(q.avail, d)
	q.Added++
	return true
}

// Kick notifies the device of new available descriptors. It reports
// whether a notification was actually delivered: when the device has
// suppressed notifications (NO_NOTIFY — vhost servicing the queue, or
// ES2 polling mode), the kick is elided and costs the guest nothing.
// The caller models the VM exit when true is returned.
func (q *Virtqueue) Kick() bool {
	if q.noNotify {
		q.SuppressedKicks++
		return false
	}
	q.Kicks++
	if q.DropKick != nil && q.DropKick() {
		return true // the doorbell was paid for; the ioeventfd never fired
	}
	if q.kick != nil {
		q.kick()
	}
	return true
}

// ForceKick invokes the kick callback unconditionally, bypassing both
// suppression and fault hooks. This is the recovery path — a watchdog
// or re-poll re-delivering a notification it believes was lost — and
// is not counted as a guest-initiated kick.
func (q *Virtqueue) ForceKick() {
	if q.kick != nil {
		q.kick()
	}
}

// KickSuppressed reports whether guest notifications are currently
// suppressed by the device.
func (q *Virtqueue) KickSuppressed() bool { return q.noNotify }

// CollectUsed reclaims up to max completed descriptors (max <= 0 means
// all).
func (q *Virtqueue) CollectUsed(max int) []Desc {
	n := len(q.used)
	if max > 0 && max < n {
		n = max
	}
	out := make([]Desc, n)
	copy(out, q.used[:n])
	rest := copy(q.used, q.used[n:])
	for i := rest; i < len(q.used); i++ {
		q.used[i] = Desc{}
	}
	q.used = q.used[:rest]
	return out
}

// SetNoInterrupt lets the driver suppress (true) or re-enable (false)
// device interrupts for this queue (NAPI mask/unmask).
func (q *Virtqueue) SetNoInterrupt(no bool) { q.noInterrupt = no }

// InterruptSuppressed reports the driver-side suppression flag.
func (q *Virtqueue) InterruptSuppressed() bool { return q.noInterrupt }

// --- device (host back-end) side ---

// Pop consumes the next available descriptor.
func (q *Virtqueue) Pop() (Desc, bool) {
	if len(q.avail) == 0 {
		return Desc{}, false
	}
	d := q.avail[0]
	rest := copy(q.avail, q.avail[1:])
	q.avail[rest] = Desc{}
	q.avail = q.avail[:rest]
	q.inflight++
	q.Popped++
	if q.resLat != nil {
		q.resLat.Observe(q.resNow() - d.resT)
	}
	return d, true
}

// PushUsed returns a completed descriptor to the driver.
func (q *Virtqueue) PushUsed(d Desc) {
	if q.inflight <= 0 {
		panic("virtio: PushUsed without matching Pop")
	}
	q.inflight--
	q.used = append(q.used, d)
}

// Signal raises the queue's interrupt toward the guest. It reports
// whether the interrupt was actually delivered (false when the driver
// suppressed it).
func (q *Virtqueue) Signal() bool {
	if q.noInterrupt {
		q.SuppressedSignals++
		return false
	}
	q.Signals++
	if q.DropSignal != nil && q.DropSignal() {
		return true // the irqfd write happened; the MSI never arrived
	}
	if q.interrupt != nil {
		q.interrupt()
	}
	return true
}

// CheckInvariants verifies the ring's accounting. Used by the opt-in
// runtime invariant checker.
func (q *Virtqueue) CheckInvariants() error {
	if q.inflight < 0 {
		return fmt.Errorf("vq %s: negative inflight %d", q.name, q.inflight)
	}
	if out := q.outstanding(); out > q.size {
		return fmt.Errorf("vq %s: %d descriptors outstanding exceeds ring size %d", q.name, out, q.size)
	}
	if q.Added-q.Popped != uint64(len(q.avail)) {
		return fmt.Errorf("vq %s: Added-Popped=%d but avail holds %d", q.name, q.Added-q.Popped, len(q.avail))
	}
	return nil
}

// SetResidencyProbe installs the telemetry residency probe: h receives
// the avail-ring residency (publish → device dequeue) of every
// descriptor, timed by now. Install during deterministic build, before
// any descriptor is posted, so every Pop sees a stamped descriptor.
func (q *Virtqueue) SetResidencyProbe(h *metrics.LogHistogram, now func() sim.Time) {
	if h == nil || now == nil {
		panic("virtio: residency probe needs a histogram and a clock")
	}
	q.resLat = h
	q.resNow = now
}

// SetNoNotify lets the device suppress (true) or re-enable (false)
// guest kicks for this queue. vhost sets it while actively servicing
// the queue; ES2's polling mode holds it set across handler turns.
func (q *Virtqueue) SetNoNotify(no bool) { q.noNotify = no }

// String summarizes the queue state.
func (q *Virtqueue) String() string {
	return fmt.Sprintf("vq(%s: avail=%d used=%d free=%d)", q.name, len(q.avail), len(q.used), q.Free())
}
