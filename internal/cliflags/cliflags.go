// Package cliflags registers the flag families shared by the es2
// command-line tools. es2sim grew the -fault-* surface first; keeping
// the registration here means es2cluster exposes the identical flags —
// same names, same help text, same parsing — instead of a drifting
// copy.
package cliflags

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"

	"es2"
)

// FaultFlags holds the parsed -fault-* values. Register the family
// with RegisterFaultFlags, then call Spec after the flag set parses.
type FaultFlags struct {
	Loss       *float64
	Dup        *float64
	LostKick   *float64
	LostSignal *float64
	StallEvery *time.Duration
	Stall      *time.Duration
	PIEvery    *time.Duration
	PI         *time.Duration
	StormEvery *time.Duration
	Storm      *time.Duration
	StormCores *string
	NoRecovery *bool
}

// RegisterFaultFlags registers the -fault-* flag family on fs and
// returns the handles to read after parsing.
func RegisterFaultFlags(fs *flag.FlagSet) *FaultFlags {
	return &FaultFlags{
		Loss:       fs.Float64("fault-loss", 0, "wire packet loss probability [0,1]"),
		Dup:        fs.Float64("fault-dup", 0, "wire packet duplication probability [0,1]"),
		LostKick:   fs.Float64("fault-lost-kick", 0, "probability a guest->vhost kick edge is lost"),
		LostSignal: fs.Float64("fault-lost-signal", 0, "probability a vhost->guest signal edge is lost"),
		StallEvery: fs.Duration("fault-stall-every", 0, "mean interval between vhost I/O-thread stalls (0 = off)"),
		Stall:      fs.Duration("fault-stall", 0, "mean vhost stall length"),
		PIEvery:    fs.Duration("fault-pi-every", 0, "mean interval between per-vCPU PI outages (0 = off)"),
		PI:         fs.Duration("fault-pi", 0, "mean PI outage length"),
		StormEvery: fs.Duration("fault-storm-every", 0, "mean interval between preemption storms (0 = off)"),
		Storm:      fs.Duration("fault-storm", 0, "mean storm CPU burn per core"),
		StormCores: fs.String("fault-storm-cores", "", "comma-separated core list for storms (default: all VM cores)"),
		NoRecovery: fs.Bool("fault-no-recovery", false, "disable recovery (TX watchdog, TCP RTO, vhost re-poll)"),
	}
}

// Spec assembles the FaultSpec the flags describe. Full validation
// stays with the scenario spec; the only parsing that can fail here is
// the storm-core list.
func (ff *FaultFlags) Spec() (es2.FaultSpec, error) {
	var cores []int
	if *ff.StormCores != "" {
		for _, s := range strings.Split(*ff.StormCores, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return es2.FaultSpec{}, fmt.Errorf("bad -fault-storm-cores %q: %v", *ff.StormCores, err)
			}
			cores = append(cores, n)
		}
	}
	return es2.FaultSpec{
		PacketLossProb: *ff.Loss, PacketDupProb: *ff.Dup,
		LostKickProb: *ff.LostKick, LostSignalProb: *ff.LostSignal,
		VhostStallEvery: *ff.StallEvery, VhostStall: *ff.Stall,
		PIOutageEvery: *ff.PIEvery, PIOutage: *ff.PI,
		PreemptStormEvery: *ff.StormEvery, PreemptStorm: *ff.Storm,
		StormCores: cores, NoRecovery: *ff.NoRecovery,
	}, nil
}
