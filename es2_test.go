package es2

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"
)

// short returns a spec with a small simulated window for fast tests.
func short(cfg Config, w WorkloadSpec) ScenarioSpec {
	return ScenarioSpec{
		Name: "t", Seed: 5, Config: cfg, Workload: w,
		Warmup: 200 * time.Millisecond, Duration: 400 * time.Millisecond,
	}
}

// shortSMP is the multiplexed variant (4 VMs x 4 vCPUs on 4 cores).
func shortSMP(cfg Config, w WorkloadSpec) ScenarioSpec {
	s := short(cfg, w)
	s.VMs, s.VCPUs, s.VMCores, s.VhostCores = 4, 4, 4, 4
	s.Duration = 600 * time.Millisecond
	return s
}

func mustRun(t *testing.T, s ScenarioSpec) *Result {
	t.Helper()
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunDeterministic(t *testing.T) {
	spec := short(Full(4), WorkloadSpec{Kind: NetperfTCPSend, MsgBytes: 1024})
	a := mustRun(t, spec)
	b := mustRun(t, spec)
	if a.TotalExitRate != b.TotalExitRate || a.ThroughputMbps != b.ThroughputMbps ||
		a.TIG != b.TIG || a.TxPkts != b.TxPkts {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c := mustRun(t, ScenarioSpec{
		Name: "t", Seed: 6, Config: Full(4),
		Workload: WorkloadSpec{Kind: NetperfTCPSend, MsgBytes: 1024},
		Warmup:   200 * time.Millisecond, Duration: 400 * time.Millisecond,
	})
	if a.TxPkts == c.TxPkts && a.TotalExitRate == c.TotalExitRate {
		t.Fatal("different seeds produced identical results — rng not wired")
	}
}

func TestPIEliminatesInterruptExits(t *testing.T) {
	base := mustRun(t, short(Baseline(), WorkloadSpec{Kind: NetperfTCPSend, MsgBytes: 1024}))
	pi := mustRun(t, short(PIOnly(), WorkloadSpec{Kind: NetperfTCPSend, MsgBytes: 1024}))

	if base.ExitRates["ExternalInterrupt"] < 1000 || base.ExitRates["APICAccess"] < 1000 {
		t.Fatalf("baseline should show interrupt-related exits, got %+v", base.ExitRates)
	}
	if pi.ExitRates["APICAccess"] != 0 {
		t.Fatalf("PI must eliminate EOI exits, got %.0f/s", pi.ExitRates["APICAccess"])
	}
	if pi.TIG <= base.TIG {
		t.Fatalf("PI should raise TIG: %.3f vs %.3f", pi.TIG, base.TIG)
	}
	if pi.ThroughputMbps <= base.ThroughputMbps {
		t.Fatalf("PI should raise throughput: %.1f vs %.1f", pi.ThroughputMbps, base.ThroughputMbps)
	}
}

func TestHybridEliminatesIOExitsUDP(t *testing.T) {
	pi := mustRun(t, short(PIOnly(), WorkloadSpec{Kind: NetperfUDPSend, MsgBytes: 256}))
	h := mustRun(t, short(PIH(8), WorkloadSpec{Kind: NetperfUDPSend, MsgBytes: 256}))

	if pi.IOExitRate < 10_000 {
		t.Fatalf("notification mode should show heavy I/O exits, got %.0f/s", pi.IOExitRate)
	}
	if h.IOExitRate > pi.IOExitRate/50 {
		t.Fatalf("hybrid (quota 8) should make I/O exits negligible: %.0f vs %.0f", h.IOExitRate, pi.IOExitRate)
	}
	if h.TIG < 0.99 {
		t.Fatalf("hybrid UDP send should keep TIG above 99%%, got %.3f", h.TIG)
	}
	if h.ThroughputMbps <= pi.ThroughputMbps {
		t.Fatalf("hybrid should raise UDP throughput: %.1f vs %.1f", h.ThroughputMbps, pi.ThroughputMbps)
	}
}

func TestQuotaMonotonicity(t *testing.T) {
	// Larger quota → weaker polling → at least as many I/O exits.
	prev := -1.0
	for _, q := range []int{8, 32} {
		r := mustRun(t, short(PIH(q), WorkloadSpec{Kind: NetperfUDPSend, MsgBytes: 256}))
		if prev >= 0 && r.IOExitRate < prev {
			t.Fatalf("exits should not decrease with larger quota: q=%d %.0f < %.0f", q, r.IOExitRate, prev)
		}
		prev = r.IOExitRate
	}
}

func TestRedirectionImprovesPingRTT(t *testing.T) {
	w := WorkloadSpec{Kind: Ping, PingInterval: 25 * time.Millisecond}
	specBase := shortSMP(PIOnly(), w)
	specBase.Duration = 2 * time.Second
	specFull := shortSMP(Full(4), w)
	specFull.Duration = 2 * time.Second

	base := mustRun(t, specBase)
	full := mustRun(t, specFull)

	if base.MeanLatency < 2*time.Millisecond {
		t.Fatalf("without redirection mean RTT should be CFS-scale, got %v", base.MeanLatency)
	}
	if full.MeanLatency*3 > base.MeanLatency {
		t.Fatalf("redirection should cut RTT by >3x: %v vs %v", full.MeanLatency, base.MeanLatency)
	}
	if len(full.RTTSeries) == 0 {
		t.Fatal("RTT series missing")
	}
	if full.RedirectRate == 0 {
		t.Fatal("redirection never engaged")
	}
}

func TestES2ImprovesMemcached(t *testing.T) {
	base := mustRun(t, shortSMP(Baseline(), WorkloadSpec{Kind: Memcached}))
	full := mustRun(t, shortSMP(Full(4), WorkloadSpec{Kind: Memcached}))
	if base.OpsPerSec <= 0 || full.OpsPerSec <= 0 {
		t.Fatalf("ops missing: base=%.0f full=%.0f", base.OpsPerSec, full.OpsPerSec)
	}
	if full.OpsPerSec < 1.5*base.OpsPerSec {
		t.Fatalf("full ES2 should beat baseline by >=1.5x on Memcached: %.0f vs %.0f",
			full.OpsPerSec, base.OpsPerSec)
	}
	if full.MeanLatency >= base.MeanLatency {
		t.Fatalf("full ES2 should cut request latency: %v vs %v", full.MeanLatency, base.MeanLatency)
	}
}

func TestES2ImprovesApache(t *testing.T) {
	base := mustRun(t, shortSMP(Baseline(), WorkloadSpec{Kind: Apache}))
	full := mustRun(t, shortSMP(Full(4), WorkloadSpec{Kind: Apache}))
	if full.OpsPerSec <= base.OpsPerSec {
		t.Fatalf("full ES2 should beat baseline on Apache: %.0f vs %.0f", full.OpsPerSec, base.OpsPerSec)
	}
	if full.ThroughputMbps <= 0 {
		t.Fatal("Apache throughput missing")
	}
}

func TestHttperfBaselineOverloadsBeforeES2(t *testing.T) {
	w := WorkloadSpec{Kind: Httperf, ConnRate: 2200}
	specB := shortSMP(Baseline(), w)
	specB.Duration = time.Second
	specF := shortSMP(Full(4), w)
	specF.Duration = time.Second
	base := mustRun(t, specB)
	full := mustRun(t, specF)
	if base.MeanLatency < 5*full.MeanLatency {
		t.Fatalf("at 2200 conn/s baseline should blow up vs ES2: %v vs %v",
			base.MeanLatency, full.MeanLatency)
	}
}

func TestNetperfReceiveWorkloads(t *testing.T) {
	tcp := mustRun(t, short(PIOnly(), WorkloadSpec{Kind: NetperfTCPRecv, MsgBytes: 1024}))
	if tcp.ThroughputMbps < 100 {
		t.Fatalf("TCP receive throughput too low: %.1f", tcp.ThroughputMbps)
	}
	udp := mustRun(t, short(PIOnly(), WorkloadSpec{Kind: NetperfUDPRecv, MsgBytes: 1024}))
	if udp.ThroughputMbps < 100 {
		t.Fatalf("UDP receive throughput too low: %.1f", udp.ThroughputMbps)
	}
	if udp.IOExitRate > 1000 {
		t.Fatalf("UDP receive should trigger ~no I/O exits (unidirectional), got %.0f/s", udp.IOExitRate)
	}
	if tcp.IOExitRate <= udp.IOExitRate {
		t.Fatal("TCP receive should show residual ACK-send I/O exits")
	}
}

func TestIdleBurnScenario(t *testing.T) {
	r := mustRun(t, short(Baseline(), WorkloadSpec{Kind: IdleBurn}))
	if r.ThroughputMbps != 0 || r.OpsPerSec != 0 {
		t.Fatal("idle scenario should not report throughput")
	}
	// Timer ticks and background exits still occur.
	if r.TotalExitRate == 0 {
		t.Fatal("idle guest should still show timer/background exits")
	}
}

func TestRunManyPreservesOrderAndDeterminism(t *testing.T) {
	specs := []ScenarioSpec{
		short(Baseline(), WorkloadSpec{Kind: NetperfUDPSend, MsgBytes: 256}),
		short(PIOnly(), WorkloadSpec{Kind: NetperfUDPSend, MsgBytes: 256}),
		short(PIH(8), WorkloadSpec{Kind: NetperfUDPSend, MsgBytes: 256}),
	}
	par, err := RunMany(specs, 8)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := RunMany(specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Parallelism must not perturb anything: the full JSON result set is
	// byte-identical between sequential and 8-way execution, in input
	// order.
	pj, err := json.Marshal(par)
	if err != nil {
		t.Fatal(err)
	}
	sj, err := json.Marshal(seq)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pj, sj) {
		for i := range specs {
			if par[i].TotalExitRate != seq[i].TotalExitRate {
				t.Errorf("parallel vs sequential diverged at %d", i)
			}
		}
		t.Fatal("RunMany results differ between parallelism 1 and 8")
	}
	if par[0].Config.PI || !par[1].Config.PI {
		t.Fatal("result order scrambled")
	}
}

func TestInvalidSpecRejected(t *testing.T) {
	_, err := Run(ScenarioSpec{
		Config:   Baseline(),
		Workload: WorkloadSpec{Kind: NetperfTCPSend},
		VCPUs:    32, VMCores: 1,
	})
	if err == nil {
		t.Fatal("expected error for absurd vCPU/core ratio")
	}
	_, err = Run(ScenarioSpec{Config: Baseline(), Workload: WorkloadSpec{Kind: WorkloadKind(99)}})
	if err == nil {
		t.Fatal("expected error for unknown workload kind")
	}
}

func TestWorkloadKindStrings(t *testing.T) {
	for k := IdleBurn; k <= Httperf; k++ {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if WorkloadKind(99).String() != "unknown" {
		t.Fatal("unknown kind should say so")
	}
}

func TestResultSanity(t *testing.T) {
	r := mustRun(t, short(Baseline(), WorkloadSpec{Kind: NetperfTCPSend, MsgBytes: 1024}))
	if r.MeasuredSeconds <= 0 {
		t.Fatal("MeasuredSeconds missing")
	}
	if r.TIG <= 0 || r.TIG > 1 {
		t.Fatalf("TIG out of range: %v", r.TIG)
	}
	var sum float64
	for _, v := range r.ExitRates {
		sum += v
	}
	if math.Abs(sum-r.TotalExitRate) > 1 {
		t.Fatalf("exit rates don't add up: %v vs %v", sum, r.TotalExitRate)
	}
	if r.TxPkts == 0 {
		t.Fatal("no packets hit the wire")
	}
}

func TestDirectAssignEliminatesIOExits(t *testing.T) {
	// Section VII: SR-IOV direct assignment removes I/O-request exits
	// by construction; baseline interrupt exits remain; VT-d PI plus
	// redirection then completes the event path.
	spec := short(Baseline(), WorkloadSpec{Kind: NetperfTCPSend, MsgBytes: 1024})
	spec.DirectAssign = true
	base := mustRun(t, spec)
	if base.IOExitRate > 100 {
		t.Fatalf("direct assignment should remove I/O exits, got %.0f/s", base.IOExitRate)
	}
	if base.ExitRates["APICAccess"] < 1000 {
		t.Fatal("without VT-d PI, EOI exits must remain under direct assignment")
	}
	spec.Config = PIOnly()
	pi := mustRun(t, spec)
	if pi.ExitRates["APICAccess"] != 0 {
		t.Fatal("VT-d PI should remove the interrupt exits for assigned devices")
	}
	if pi.TIG < 0.99 {
		t.Fatalf("SR-IOV + VT-d PI should be nearly exit-free, TIG %.3f", pi.TIG)
	}
}

func TestTraceCapture(t *testing.T) {
	spec := short(Baseline(), WorkloadSpec{Kind: NetperfTCPSend, MsgBytes: 1024})
	spec.TraceCapacity = 4096
	r := mustRun(t, spec)
	if r.TraceSummary == "" {
		t.Fatal("trace summary missing")
	}
	if len(r.TraceEvents) == 0 {
		t.Fatal("no trace events captured")
	}
	kinds := map[string]bool{}
	for _, e := range r.TraceEvents {
		kinds[e.Kind] = true
		if e.AtSeconds < 0 {
			t.Fatal("negative timestamp")
		}
	}
	for _, want := range []string{"exit", "irq-deliver", "irq-eoi"} {
		if !kinds[want] {
			t.Fatalf("trace lacks %q events (got %v)", want, kinds)
		}
	}
	// Tracing off by default.
	r2 := mustRun(t, short(Baseline(), WorkloadSpec{Kind: NetperfTCPSend, MsgBytes: 1024}))
	if r2.TraceSummary != "" || len(r2.TraceEvents) != 0 {
		t.Fatal("trace should be off by default")
	}
}

func TestModerationTradeoff(t *testing.T) {
	// The Section II-C argument: interrupt moderation saves interrupt
	// (and, in the baseline, exit) load but costs latency. Compare ping
	// RTT with and without coalescing on a dedicated-vCPU guest.
	base := short(PIOnly(), WorkloadSpec{Kind: Ping, PingInterval: 5 * time.Millisecond})
	base.Duration = time.Second
	plain := mustRun(t, base)

	mod := base
	mod.CoalesceCount = 32
	mod.CoalesceTimer = 2 * time.Millisecond
	coalesced := mustRun(t, mod)

	// At 200 probes/s the count threshold never fills: every reply
	// waits for the coalescing timer.
	if coalesced.MeanLatency < 10*plain.MeanLatency {
		t.Fatalf("moderation should inflate ping RTT: %v vs %v",
			coalesced.MeanLatency, plain.MeanLatency)
	}
	if coalesced.MeanLatency < time.Millisecond {
		t.Fatalf("coalesced RTT should be timer-scale, got %v", coalesced.MeanLatency)
	}
}

func TestSidecoreBurnsCoreAtLowLoad(t *testing.T) {
	// The Section III-B objection to ELVIS-style polling: exit-less
	// I/O requests, but the dedicated core saturates even at trivial
	// load — while the hybrid scheme stays near-idle.
	low := WorkloadSpec{Kind: NetperfUDPSend, MsgBytes: 256, SendRatePPS: 2000}

	side := short(PIOnly(), low)
	side.Sidecore = true
	sc := mustRun(t, side)
	if sc.IOExitRate > 100 {
		t.Fatalf("sidecore should be exit-less, got %.0f/s", sc.IOExitRate)
	}
	if sc.VhostCPU < 0.95 {
		t.Fatalf("sidecore worker should saturate its core, got %.2f", sc.VhostCPU)
	}

	hyb := mustRun(t, short(PIH(8), low))
	if hyb.VhostCPU > 0.10 {
		t.Fatalf("hybrid worker should be near-idle at 2k pps, got %.2f", hyb.VhostCPU)
	}
	if sc.PktRate < 1800 || hyb.PktRate < 1800 {
		t.Fatalf("paced load not delivered: side=%.0f hybrid=%.0f", sc.PktRate, hyb.PktRate)
	}
}

func TestSidecoreHybridMutuallyExclusive(t *testing.T) {
	s := short(PIH(8), WorkloadSpec{Kind: NetperfUDPSend})
	s.Sidecore = true
	if _, err := Run(s); err == nil {
		t.Fatal("sidecore + hybrid should be rejected")
	}
}

func TestMultiqueueScalesReceive(t *testing.T) {
	mk := func(queues int) ScenarioSpec {
		return ScenarioSpec{
			Name: "mq", Seed: 5, Config: PIOnly(),
			Workload: WorkloadSpec{
				Kind: NetperfUDPRecv, MsgBytes: 1024, Threads: 8, UDPRatePPS: 1_200_000,
			},
			VMs: 1, VCPUs: 4, VMCores: 4, VhostCores: 4, Queues: queues,
			Warmup: 150 * time.Millisecond, Duration: 300 * time.Millisecond,
		}
	}
	one := mustRun(t, mk(1))
	four := mustRun(t, mk(4))
	if four.ThroughputMbps < 1.5*one.ThroughputMbps {
		t.Fatalf("4 queues should scale receive >1.5x: %.0f vs %.0f Mbps",
			four.ThroughputMbps, one.ThroughputMbps)
	}
	if four.Drops >= one.Drops {
		t.Fatalf("4 queues should shed drops: %d vs %d", four.Drops, one.Drops)
	}
}

func TestQuotaDefaultsByProtocol(t *testing.T) {
	// The paper's Section VI-B selection: 8 for UDP streams, 4 for TCP.
	udp := mustRun(t, short(Config{PI: true, Hybrid: true}, WorkloadSpec{Kind: NetperfUDPSend, MsgBytes: 256}))
	if udp.Config.Quota != 8 {
		t.Fatalf("UDP default quota = %d, want 8", udp.Config.Quota)
	}
	tcp := mustRun(t, short(Config{PI: true, Hybrid: true}, WorkloadSpec{Kind: NetperfTCPSend, MsgBytes: 1024}))
	if tcp.Config.Quota != 4 {
		t.Fatalf("TCP default quota = %d, want 4", tcp.Config.Quota)
	}
}

func TestPingSeriesTimestampsMonotone(t *testing.T) {
	spec := short(Full(4), WorkloadSpec{Kind: Ping, PingInterval: 10 * time.Millisecond})
	spec.Duration = 500 * time.Millisecond
	r := mustRun(t, spec)
	if len(r.RTTSeries) < 30 {
		t.Fatalf("series too short: %d", len(r.RTTSeries))
	}
	for i := 1; i < len(r.RTTSeries); i++ {
		if r.RTTSeries[i].AtSeconds < r.RTTSeries[i-1].AtSeconds {
			t.Fatal("series timestamps not monotone")
		}
		if r.RTTSeries[i].Millis < 0 {
			t.Fatal("negative RTT")
		}
	}
}

func TestUDPSendThroughputMatchesPacketRate(t *testing.T) {
	r := mustRun(t, short(PIH(8), WorkloadSpec{Kind: NetperfUDPSend, MsgBytes: 256}))
	wantMbps := r.PktRate * 256 * 8 / 1e6
	if diff := r.ThroughputMbps - wantMbps; diff > 1 || diff < -1 {
		t.Fatalf("throughput %.1f inconsistent with pkt rate (%.1f)", r.ThroughputMbps, wantMbps)
	}
}

func TestTIGOrderingAcrossConfigs(t *testing.T) {
	// TIG must be monotone across Baseline <= PI <= PI+H for a TCP
	// send workload — each configuration strictly removes exits.
	var prev float64 = -1
	for _, cfg := range []Config{Baseline(), PIOnly(), PIH(4)} {
		r := mustRun(t, short(cfg, WorkloadSpec{Kind: NetperfTCPSend, MsgBytes: 1024}))
		if r.TIG < prev {
			t.Fatalf("TIG regressed at %s: %.3f < %.3f", cfg.Name(), r.TIG, prev)
		}
		prev = r.TIG
	}
}

func TestDirectAssignIgnoresHybrid(t *testing.T) {
	spec := short(Full(4), WorkloadSpec{Kind: NetperfTCPSend, MsgBytes: 1024})
	spec.DirectAssign = true
	r := mustRun(t, spec)
	// Exit-less either way; the run must simply work and keep TIG high.
	if r.IOExitRate > 100 || r.TIG < 0.99 {
		t.Fatalf("direct assign + full ES2: io=%.0f tig=%.3f", r.IOExitRate, r.TIG)
	}
}
