package es2

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"es2/internal/causal"
	"es2/internal/core"
	"es2/internal/enginestats"
	"es2/internal/faults"
	"es2/internal/guest"
	"es2/internal/loadgen"
	"es2/internal/metrics"
	"es2/internal/netsim"
	"es2/internal/profile"
	"es2/internal/sched"
	"es2/internal/sim"
	"es2/internal/slo"
	"es2/internal/trace"
	"es2/internal/vhost"
	"es2/internal/vmm"
	"es2/internal/workloads"
)

// Recovery-mechanism timing. These mirror the real stack's orders of
// magnitude: the netdev TX watchdog polls at millisecond scale, vhost
// re-checks queue state far more often, and the TCP minimum RTO is
// tens of milliseconds (scaled down to the simulator's microsecond
// RTTs so recovery happens within a measurement window).
const (
	retransmitRTO   = 10 * sim.Millisecond
	txWatchdogTick  = sim.Millisecond
	vhostRePollTick = 20 * sim.Microsecond
	checkerTick     = 250 * sim.Microsecond
)

// withDefaults fills zero fields with kind-appropriate defaults.
func (s ScenarioSpec) withDefaults() ScenarioSpec {
	if s.VMs <= 0 {
		s.VMs = 1
	}
	if s.VCPUs <= 0 {
		s.VCPUs = 1
	}
	if s.VMCores <= 0 {
		s.VMCores = s.VCPUs
	}
	if s.VhostCores <= 0 {
		s.VhostCores = s.VMs
		if s.VhostCores > 4 {
			s.VhostCores = 4
		}
	}
	if s.Warmup <= 0 {
		s.Warmup = 300 * time.Millisecond
	}
	if s.Duration <= 0 {
		s.Duration = time.Second
	}
	if s.Queues <= 0 {
		s.Queues = 1
	}
	w := &s.Workload
	if w.MsgBytes <= 0 {
		w.MsgBytes = 1024
	}
	if w.Threads <= 0 {
		w.Threads = 1
	}
	if w.Window <= 0 {
		w.Window = 128
	}
	if w.UDPRatePPS <= 0 {
		w.UDPRatePPS = 450_000
	}
	if w.PingInterval <= 0 {
		w.PingInterval = 100 * time.Millisecond
	}
	if w.Concurrency <= 0 {
		switch w.Kind {
		case Memcached:
			w.Concurrency = 256
		default:
			w.Concurrency = 16
		}
	}
	if w.Conns <= 0 {
		w.Conns = 16
	}
	if w.PageBytes <= 0 {
		if w.Kind == Httperf {
			w.PageBytes = 1024
		} else {
			w.PageBytes = 8192
		}
	}
	if w.ConnRate <= 0 {
		w.ConnRate = 1000
	}
	if w.ServiceCost <= 0 {
		switch w.Kind {
		case Memcached:
			w.ServiceCost = 6 * time.Microsecond
		case Apache:
			w.ServiceCost = 15 * time.Microsecond
		default:
			w.ServiceCost = 10 * time.Microsecond
		}
	}
	if s.Telemetry && s.TelemetryWindow <= 0 {
		s.TelemetryWindow = 10 * time.Millisecond
	}
	if s.CritPath && s.CritPathExemplars <= 0 {
		s.CritPathExemplars = 8
	}
	if s.EngineStats && s.EngineStatsSampleN <= 0 {
		s.EngineStatsSampleN = enginestats.DefaultSampleN
	}
	s.SLO = s.SLO.WithDefaults()
	if s.Load.Enabled() {
		s.Load = s.Load.WithDefaults()
	}
	// The paper selects quota 4 for TCP streams and 8 for UDP streams
	// (Section VI-B); default accordingly when hybrid is on.
	if s.Config.Hybrid && s.Config.Quota <= 0 {
		switch w.Kind {
		case NetperfUDPSend, NetperfUDPRecv:
			s.Config.Quota = 8
		default:
			s.Config.Quota = 4
		}
	}
	return s
}

// testbed is one fully wired simulated host pair.
type testbed struct {
	spec     ScenarioSpec
	eng      *sim.Engine
	sch      *sched.Scheduler
	k        *vmm.KVM
	es       *core.ES2
	vms      []*vmm.VM
	kerns    []*guest.Kernel
	devs     []*vhost.Device // all devices; devsByVM groups them
	devsByVM [][]*vhost.Device
	ios      []*vhost.IOThread
	peers    []*workloads.Peer
	ids      workloads.FlowIDs

	// Span-tracing state (nil / empty when the spec leaves it off).
	path       *trace.PathTracer
	tl         *trace.Timeline
	probes     []*probeVar
	probeTrack trace.TrackID

	// Fault-injection and invariant-checking state (nil when off).
	inj *faults.Injector
	chk *faults.Checker

	// Windowed-telemetry state (nil unless spec.Telemetry).
	tel *telemetryState

	// Simulated-CPU profiler (nil unless spec.CPUProfile).
	prof *profile.Profiler

	// Causal critical-path tracker (nil unless spec.CritPath).
	crit *causal.Tracker

	// Engine wall-clock performance collector (nil unless
	// spec.EngineStats).
	perf *enginestats.Collector

	// Streaming SLO evaluator (nil unless spec.SLO declares
	// objectives).
	sloEval *slo.Evaluator
}

// engineTopK bounds the subsystem table of an EngineReport.
const engineTopK = 12

// probeVar is one periodically sampled state variable.
type probeVar struct {
	series *metrics.Series
	sample func() float64
}

// rxDemux fans wire ingress out to the per-queue vhost devices by flow
// hash, standing in for the NIC's receive-side scaling.
type rxDemux struct{ devs []*vhost.Device }

// Receive implements netsim.Endpoint.
func (d rxDemux) Receive(p *netsim.Packet) {
	idx := p.Flow % len(d.devs)
	if idx < 0 {
		idx += len(d.devs)
	}
	d.devs[idx].Receive(p)
}

// collector gathers workload-specific measurements.
type collector struct {
	onWarmupEnd func()
	fill        func(r *Result, window sim.Time)

	// SLO signal sources (set by request workloads): the latency
	// histogram backing latency objectives and the cumulative
	// completion counter backing goodput objectives.
	sloLat *metrics.LogHistogram
	sloOps func() float64
}

// Run executes one scenario to completion and returns its result.
func Run(spec ScenarioSpec) (*Result, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	tb, err := build(spec)
	if err != nil {
		return nil, err
	}
	if spec.Check || os.Getenv("ES2_CHECK") != "" {
		tb.chk = faults.NewChecker(tb.eng, checkerTick)
		tb.registerInvariants(tb.chk)
		tb.chk.Start()
	}
	col, err := tb.startWorkload()
	if err != nil {
		return nil, err
	}
	if spec.SLO.Enabled() {
		// The evaluator must exist before telemetry registration (the
		// es2_slo_* probes read it) but only starts ticking — and
		// baselines its counters — at warmup end, after the histogram
		// resets below.
		tb.setupSLO(col)
	}

	warmup := sim.DurationOf(spec.Warmup)
	window := sim.DurationOf(spec.Duration)
	if tb.perf != nil {
		// The wall clock opens here, so testbed assembly is excluded and
		// the report measures only the event loop.
		tb.perf.Start()
	}
	tb.eng.Run(warmup)
	for _, vm := range tb.vms {
		vm.ResetStats()
	}
	for _, d := range tb.devs {
		d.ResetStats()
	}
	var vhostBusy0 sim.Time
	for _, io := range tb.ios {
		vhostBusy0 += io.Thread.SumExec()
	}
	var retransBase, wdBase, repollBase, piFbBase uint64
	if tb.inj != nil {
		tb.inj.ResetCounters()
		retransBase = tb.sumRetransmits()
		wdBase = tb.sumWatchdogFires()
		repollBase = tb.sumRePolls()
		piFbBase = tb.k.PIFallbacks
	}
	var redirBase, filterBase, onlineBase, offlineBase uint64
	if tb.es.Redirector != nil {
		redirBase = tb.es.Redirector.Redirected
		filterBase = tb.es.Redirector.KeptAffinity
		onlineBase = tb.es.Redirector.OnlineHits
		offlineBase = tb.es.Redirector.OfflinePredicts
	}
	if tb.path != nil {
		// Measurement window begins: drop warm-up spans, start the
		// timeline recording and the periodic state probes.
		tb.path.Reset()
		tb.tl.Activate()
		tb.startProbes()
	}
	if tb.prof != nil {
		// Zero the attribution tree at the same instant the stat
		// counters reset, so the profile reconciles with TIG/VhostCPU
		// exactly (both sides see the same charge boundaries).
		tb.prof.Reset()
	}
	if tb.tel != nil {
		// The recorder baselines every counter here, so its windowed
		// deltas integrate exactly to the scalars computed below.
		tb.startTelemetry(warmup + window)
	}
	// Drop warm-up chains at the same instant the latency histograms
	// reset; chains still in flight complete into the window, exactly
	// as their latencies do.
	tb.crit.Reset()
	if col.onWarmupEnd != nil {
		col.onWarmupEnd()
	}
	if tb.sloEval != nil {
		// Baselines are snapshotted here, after every warm-up reset, so
		// the first evaluation tick sees only measurement-window deltas.
		tb.sloEval.Start(tb.eng, warmup, warmup+window)
	}
	tb.eng.Run(warmup + window)
	if tb.perf != nil {
		// Close the wall clock before result assembly, which is real
		// work the engine never saw.
		tb.perf.Stop()
	}
	if tb.tel != nil {
		// Close the final (possibly partial) window at the horizon.
		tb.tel.rec.Finalize()
	}

	var vhostBusy sim.Time
	for _, io := range tb.ios {
		vhostBusy += io.Thread.SumExec()
	}

	vm := tb.vms[0]
	var txPkts, rxPkts, drops uint64
	for _, d := range tb.devsByVM[0] {
		txPkts += d.TxPkts
		rxPkts += d.RxPkts
		drops += d.BacklogDrops
	}
	r := &Result{
		Name:            spec.Name,
		Config:          spec.Config,
		MeasuredSeconds: window.Seconds(),
		ExitRates:       make(map[string]float64),
		TIG:             vm.TIG(),
		TxPkts:          txPkts,
		RxPkts:          rxPkts,
		Drops:           drops + tb.kerns[0].Dev.LocalDrops,
	}
	for i := 0; i < vmm.NumExitReasons; i++ {
		r.ExitRates[vmm.ExitReason(i).String()] = vm.Exits.Rate(i, window)
	}
	if spec.VhostCores > 0 && window > 0 {
		r.VhostCPU = float64(vhostBusy-vhostBusy0) / (float64(window) * float64(spec.VhostCores))
	}
	r.TotalExitRate = vm.Exits.TotalRate(window)
	r.IOExitRate = vm.Exits.Rate(int(vmm.ExitIOInstruction), window)
	r.DevIRQRate = vm.DevIRQDelivered.Rate(window)
	if tb.es.Redirector != nil {
		red := tb.es.Redirector.Redirected - redirBase
		kept := tb.es.Redirector.KeptAffinity - filterBase
		if red+kept > 0 {
			r.RedirectRate = float64(red) / float64(red+kept)
		}
		online := tb.es.Redirector.OnlineHits - onlineBase
		offline := tb.es.Redirector.OfflinePredicts - offlineBase
		if online+offline > 0 {
			r.OfflinePredictRate = float64(offline) / float64(online+offline)
		}
	}
	if tb.k.Trace != nil {
		r.TraceSummary = tb.k.Trace.Summary(warmup+window, func(reason int64) string {
			return vmm.ExitReason(reason).String()
		})
		for _, e := range tb.k.Trace.Events() {
			detail := fmt.Sprintf("%d", e.Arg)
			if e.Kind == trace.KindExit {
				detail = vmm.ExitReason(e.Arg).String()
			}
			r.TraceEvents = append(r.TraceEvents, TraceEvent{
				AtSeconds: e.T.Seconds(), Kind: e.Kind.String(),
				VM: e.VM, VCPU: e.VCPU, Detail: detail,
			})
		}
	}
	if tb.path != nil {
		for _, st := range tb.path.Stats() {
			r.PathBreakdown = append(r.PathBreakdown, PathStage{
				Stage: st.Stage.String(), Mechanism: st.Mechanism.String(),
				Count: st.Count, Mean: time.Duration(st.Mean),
				P50: time.Duration(st.P50), P99: time.Duration(st.P99),
				Max: time.Duration(st.Max),
			})
		}
		for _, p := range tb.probes {
			ps := ProbeSeries{Name: p.series.Name}
			for _, pt := range p.series.Points {
				ps.Points = append(ps.Points, ProbePoint{AtSeconds: pt.T.Seconds(), Value: pt.V})
			}
			r.Probes = append(r.Probes, ps)
		}
		r.Timeline = tb.tl
	}
	if tb.inj != nil {
		c := tb.inj.Counters
		r.Faults = &FaultReport{
			Injected:      c.Injected(),
			WireDrops:     c.WireDrops,
			WireDups:      c.WireDups,
			LostKicks:     c.LostKicks,
			LostSignals:   c.LostSignals,
			VhostStalls:   c.VhostStalls,
			PIOutages:     c.PIOutages,
			PreemptStorms: c.PreemptStorms,
			Retransmits:   tb.sumRetransmits() - retransBase,
			WatchdogFires: tb.sumWatchdogFires() - wdBase,
			VhostRePolls:  tb.sumRePolls() - repollBase,
			PIFallbacks:   tb.k.PIFallbacks - piFbBase,
		}
	}
	if tb.chk != nil {
		r.InvariantChecks = tb.chk.Ticks
	}
	if tb.prof != nil {
		tb.prof.Finalize(window)
		r.CPUProfile = tb.prof
		r.CPUReport = buildCPUReport(tb.prof, spec, window)
	}
	if tb.tel != nil {
		tb.fillTelemetry(r)
	}
	if tb.crit != nil {
		r.CriticalPath = tb.crit.Report()
	}
	if tb.perf != nil {
		r.EngineReport = tb.perf.Report(tb.eng.EventsFired(), tb.eng.HeapStats(),
			(warmup + window).Seconds(), engineTopK)
	}
	if tb.sloEval != nil {
		r.SLO = tb.sloEval.Report()
	}
	col.fill(r, window)
	return r, nil
}

// setupSLO builds the streaming SLO evaluator and binds every
// objective to its signal source: latency objectives read the
// workload's latency histogram, goodput objectives its completion
// counter, and availability objectives the tested VM's
// delivered-vs-lost wire traffic (drops plus TCP retransmits).
// Validation has already rejected objectives the workload cannot
// back.
func (tb *testbed) setupSLO(col collector) {
	ev := slo.New(tb.spec.SLO, slo.Context{BlameStage: tb.crit.TopStage})
	for i, o := range tb.spec.SLO.Objectives {
		switch o.Kind {
		case slo.KindLatency:
			h, thr := col.sloLat, sim.DurationOf(o.Threshold)
			ev.BindCounters(i,
				func() float64 { return float64(h.Count()) },
				func() float64 { return float64(h.CountAbove(thr)) })
		case slo.KindGoodput:
			ev.BindGoodput(i, col.sloOps)
		case slo.KindAvailability:
			bad := func() float64 {
				var n uint64
				for _, d := range tb.devsByVM[0] {
					n += d.BacklogDrops
				}
				n += tb.kerns[0].Dev.LocalDrops
				n += tb.sumRetransmits()
				return float64(n)
			}
			ev.BindCounters(i, func() float64 {
				var n uint64
				for _, d := range tb.devsByVM[0] {
					n += d.TxPkts + d.RxPkts
				}
				return float64(n) + bad()
			}, bad)
		}
	}
	tb.sloEval = ev
}

// RunMany executes scenarios concurrently (parallelism <= 0 selects
// GOMAXPROCS), preserving order. Each scenario runs on its own engine,
// so results are identical to sequential runs.
func RunMany(specs []ScenarioSpec, parallelism int) ([]*Result, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	results := make([]*Result, len(specs))
	errs := make([]error, len(specs))
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i, s := range specs {
		i, s := i, s
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], errs[i] = Run(s)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// build wires the simulated testbed. The spec has already passed
// validate, so resource bounds and combination rules hold here.
func build(spec ScenarioSpec) (*testbed, error) {
	eng := sim.NewEngine(spec.Seed)
	totalCores := spec.VMCores + spec.VhostCores
	sch := sched.New(eng, totalCores, sched.DefaultParams())
	costs := vmm.DefaultCosts()
	if spec.testCosts != nil {
		costs = *spec.testCosts
	}
	k := vmm.NewKVM(eng, sch, costs)
	if spec.TraceCapacity > 0 {
		k.Trace = trace.New(spec.TraceCapacity)
	}
	es := core.Install(k, spec.Config)

	tb := &testbed{spec: spec, eng: eng, sch: sch, k: k, es: es, probeTrack: trace.NoTrack}
	if spec.PathTrace || spec.Timeline {
		// The timeline (when requested) and the span tracer must exist
		// before threads, VMs and workers are created so their tracks
		// register in deterministic build order.
		if spec.Timeline {
			tb.tl = trace.NewTimeline()
		}
		tb.path = trace.NewPathTracer(tb.tl)
		sch.SetPathTracer(tb.path)
		k.Path = tb.path
		k.Timeline = tb.tl
	}
	if spec.CPUProfile {
		// The profiler must exist before VMs and workers are created so
		// their context subtrees intern in deterministic build order.
		tb.prof = profile.New(totalCores)
		k.Prof = tb.prof
	}
	if spec.CritPath {
		tb.crit = causal.NewTracker(spec.CritPathExemplars)
		k.Causal = tb.crit.Probe(0)
	}
	if spec.EngineStats {
		// Attach before any event is scheduled so build-time
		// registrations sample like everything else. The wall clock only
		// starts at the first Run.
		tb.perf = enginestats.New(spec.EngineStatsSampleN)
		eng.SetStats(tb.perf)
	}
	if spec.Faults.Enabled() {
		// The injector forks the engine RNG here, after the scheduler and
		// KVM forks, so the streams the rest of the simulation draws from
		// are split at the same point on every run of the same spec.
		tb.inj = faults.NewInjector(eng, eng.Rand(), spec.Faults)
	}
	gcosts := guest.DefaultCosts()
	vparams := vhost.DefaultParams()

	for i := 0; i < spec.VMs; i++ {
		cores := make([]int, spec.VCPUs)
		for j := range cores {
			cores[j] = (i + j) % spec.VMCores
		}
		vm := k.NewVM(fmt.Sprintf("vm%d", i), cores)
		// 1024 descriptors models the effective egress capacity of the
		// virtio ring plus the qdisc in front of it: a sender blocks
		// only when both are exhausted, as in a real guest.
		kern := guest.NewKernelQueues(vm, gcosts, 1024, spec.Queues)
		kern.Dev.DoorbellNoExit = spec.DirectAssign
		kern.StartBurnAll()
		es.AttachVM(vm)

		link := netsim.NewLink(eng, 40, 2*sim.Microsecond)
		peer := workloads.NewPeer(eng, link.PortB(), 2*sim.Microsecond)
		if tb.inj != nil {
			tb.inj.AttachPort(link.PortA())
			tb.inj.AttachPort(link.PortB())
		}
		// Under direct assignment the back-end stands in for the VF's
		// DMA engine; the hybrid kick-polling machinery is meaningless
		// there (there are no kick exits to eliminate).
		hybrid := spec.Config.Hybrid && !spec.DirectAssign
		var vmDevs []*vhost.Device
		for qi, pair := range kern.Dev.Pairs {
			name := fmt.Sprintf("vhost-%d.%d", i, qi)
			io := vhost.NewIOThread(name, sch, spec.VMCores+((i+qi)%spec.VhostCores), vparams)
			io.SetPath(tb.path)
			if tb.prof != nil {
				io.EnableProfiling(tb.prof)
			}
			dev, err := vhost.NewDevice(name, io, pair.TX, pair.RX, link.PortA(), hybrid, spec.Config.Quota)
			if err != nil {
				return nil, err
			}
			dev.Path = tb.path
			dev.Causal = tb.crit.Probe(0)
			dev.CoalesceCount = spec.CoalesceCount
			dev.CoalesceTimer = sim.DurationOf(spec.CoalesceTimer)
			if spec.Sidecore {
				dev.EnableSidecore()
			}
			if tb.inj != nil {
				tb.inj.AttachQueue(pair.TX)
				tb.inj.AttachQueue(pair.RX)
				tb.inj.AttachIOThread(io)
			}
			vmDevs = append(vmDevs, dev)
			tb.devs = append(tb.devs, dev)
			tb.ios = append(tb.ios, io)
		}
		link.Attach(rxDemux{devs: vmDevs}, peer)

		vm.Start()
		if tb.inj != nil {
			for _, v := range vm.VCPUs {
				tb.inj.AttachVCPU(v)
			}
		}
		tb.vms = append(tb.vms, vm)
		tb.kerns = append(tb.kerns, kern)
		tb.devsByVM = append(tb.devsByVM, vmDevs)
		tb.peers = append(tb.peers, peer)
	}
	if tb.inj != nil {
		cores := spec.Faults.StormCores
		if len(cores) == 0 {
			// Default: storm every VM core (the vhost cores stay clean,
			// matching a noisy neighbor packed onto the guest's socket).
			for c := 0; c < spec.VMCores; c++ {
				cores = append(cores, c)
			}
		}
		tb.inj.SetupStorms(sch, cores)
		if tb.prof != nil {
			tb.inj.EnableProfiling(tb.prof)
		}
		tb.inj.Start()
		if !spec.Faults.NoRecovery {
			tb.enableRecovery()
		}
	}
	if tb.tl != nil {
		tb.probeTrack = tb.tl.Track("probes", "probes")
	}
	if spec.Telemetry {
		// Latency hooks must be installed before the workload posts its
		// first descriptor (see setupTelemetry).
		tb.setupTelemetry()
	}
	return tb, nil
}

// enableRecovery arms the recovery mechanisms the real stack has, each
// in the layer that owns it: guest netdev TX watchdogs, guest and peer
// TCP retransmission, and vhost handler re-polling. Called before
// workloads start so TCP senders pick up the RTO at creation.
func (tb *testbed) enableRecovery() {
	for _, kern := range tb.kerns {
		kern.RetransmitRTO = retransmitRTO
		kern.Dev.StartTxWatchdog(txWatchdogTick)
	}
	for _, pe := range tb.peers {
		pe.RetransmitRTO = retransmitRTO
	}
	for _, d := range tb.devs {
		d.StartRePoll(vhostRePollTick)
	}
}

// registerInvariants wires every checkable structure of the testbed
// into the invariant checker: virtqueue accounting on both rings of
// every device, APIC ISR/IRR discipline on every vCPU, and the
// ES2 scheduler-watcher's online/offline list consistency.
func (tb *testbed) registerInvariants(chk *faults.Checker) {
	for _, d := range tb.devs {
		d := d
		chk.Add("virtqueue/"+d.Name+"/tx", d.TXQ.CheckInvariants)
		chk.Add("virtqueue/"+d.Name+"/rx", d.RXQ.CheckInvariants)
	}
	for _, vm := range tb.vms {
		vm := vm
		for _, v := range vm.VCPUs {
			v := v
			chk.Add(fmt.Sprintf("apic/%s/vcpu%d", vm.Name, v.ID), v.VAPIC.CheckInvariants)
		}
		if tb.es.Watcher != nil {
			chk.Add("schedwatcher/"+vm.Name, func() error {
				return tb.es.Watcher.CheckConsistency(vm)
			})
		}
	}
}

// sumRetransmits totals TCP retransmission timeouts on both ends of
// the wire.
func (tb *testbed) sumRetransmits() uint64 {
	var n uint64
	for _, kern := range tb.kerns {
		n += kern.TCPRetransmits
	}
	for _, pe := range tb.peers {
		n += pe.Retransmits
	}
	return n
}

func (tb *testbed) sumWatchdogFires() uint64 {
	var n uint64
	for _, kern := range tb.kerns {
		n += kern.Dev.WatchdogFires
	}
	return n
}

func (tb *testbed) sumRePolls() uint64 {
	var n uint64
	for _, d := range tb.devs {
		n += d.RePolls
	}
	return n
}

// startProbes begins the 1ms periodic state sampling: virtqueue depth
// and vhost backlog of the tested VM, ES2's online/offline list
// lengths, and per-core runqueue lengths. Called at the start of the
// measurement window.
func (tb *testbed) startProbes() {
	add := func(name string, fn func() float64) {
		tb.probes = append(tb.probes, &probeVar{series: &metrics.Series{Name: name}, sample: fn})
	}
	devs := tb.devsByVM[0]
	add("vm0.txq_avail", func() float64 {
		n := 0
		for _, d := range devs {
			n += d.TXQ.AvailLen()
		}
		return float64(n)
	})
	add("vm0.vhost_backlog", func() float64 {
		n := 0
		for _, d := range devs {
			n += d.Backlog()
		}
		return float64(n)
	})
	if tb.es.Watcher != nil {
		vm := tb.vms[0]
		add("vm0.online", func() float64 {
			on, _ := tb.es.Watcher.ListLens(vm)
			return float64(on)
		})
		add("vm0.offline", func() float64 {
			_, off := tb.es.Watcher.ListLens(vm)
			return float64(off)
		})
	}
	for i := 0; i < tb.sch.NumCores(); i++ {
		i := i
		add(fmt.Sprintf("core%d.runnable", i), func() float64 {
			return float64(tb.sch.RunnableCount(i))
		})
	}

	const interval = sim.Millisecond
	var tick func()
	tick = func() {
		now := tb.eng.Now()
		for _, p := range tb.probes {
			v := p.sample()
			p.series.Append(now, v)
			tb.tl.Counter(tb.probeTrack, p.series.Name, now, v)
		}
		tb.eng.After(interval, tick)
	}
	tick()
}

// startWorkload attaches the requested workload to the tested VM and
// returns its measurement collector.
func (tb *testbed) startWorkload() (collector, error) {
	spec := tb.spec
	w := spec.Workload
	kern := tb.kerns[0]
	vm := tb.vms[0]
	peer := tb.peers[0]

	switch w.Kind {
	case IdleBurn:
		return collector{fill: func(r *Result, win sim.Time) {}}, nil

	case NetperfTCPSend:
		var sinks []*workloads.TCPSink
		for t := 0; t < w.Threads; t++ {
			v := vm.VCPUs[t%len(vm.VCPUs)]
			_, sink := workloads.NetperfSendTCP(kern, v, peer, tb.ids.Next(), w.MsgBytes, w.Window)
			sinks = append(sinks, sink)
		}
		var bytes0, segs0 uint64
		return collector{
			onWarmupEnd: func() {
				for _, s := range sinks {
					bytes0 += s.Bytes
					segs0 += s.Segs
				}
			},
			fill: func(r *Result, win sim.Time) {
				var bytes, segs uint64
				for _, s := range sinks {
					bytes += s.Bytes
					segs += s.Segs
				}
				r.ThroughputMbps = mbps(bytes-bytes0, win)
				r.PktRate = rate(segs-segs0, win)
			},
		}, nil

	case NetperfUDPSend:
		var sinks []*workloads.UDPSink
		for t := 0; t < w.Threads; t++ {
			v := vm.VCPUs[t%len(vm.VCPUs)]
			var sink *workloads.UDPSink
			if w.SendRatePPS > 0 {
				_, sink = workloads.NetperfSendUDPPaced(kern, v, peer, tb.ids.Next(), w.MsgBytes, w.SendRatePPS/float64(w.Threads))
			} else {
				_, sink = workloads.NetperfSendUDP(kern, v, peer, tb.ids.Next(), w.MsgBytes)
			}
			sinks = append(sinks, sink)
		}
		var bytes0, pkts0 uint64
		return collector{
			onWarmupEnd: func() {
				for _, s := range sinks {
					bytes0 += s.Bytes
					pkts0 += s.Pkts
				}
			},
			fill: func(r *Result, win sim.Time) {
				var bytes, pkts uint64
				for _, s := range sinks {
					bytes += s.Bytes
					pkts += s.Pkts
				}
				r.ThroughputMbps = mbps(bytes-bytes0, win)
				r.PktRate = rate(pkts-pkts0, win)
			},
		}, nil

	case NetperfTCPRecv:
		var recvs []*guest.TCPReceiver
		for t := 0; t < w.Threads; t++ {
			recv, _ := workloads.NetperfRecvTCP(kern, peer, tb.ids.Next(), w.MsgBytes, w.Window)
			recvs = append(recvs, recv)
		}
		var bytes0, segs0 uint64
		return collector{
			onWarmupEnd: func() {
				for _, rv := range recvs {
					bytes0 += rv.BytesReceived
					segs0 += rv.Segs
				}
			},
			fill: func(r *Result, win sim.Time) {
				var bytes, segs uint64
				for _, rv := range recvs {
					bytes += rv.BytesReceived
					segs += rv.Segs
				}
				r.ThroughputMbps = mbps(bytes-bytes0, win)
				r.PktRate = rate(segs-segs0, win)
			},
		}, nil

	case NetperfUDPRecv:
		var recvs []*guest.UDPReceiver
		for t := 0; t < w.Threads; t++ {
			recv, _ := workloads.NetperfRecvUDP(kern, peer, tb.ids.Next(), w.MsgBytes, w.UDPRatePPS/float64(w.Threads))
			recvs = append(recvs, recv)
		}
		var bytes0, pkts0 uint64
		return collector{
			onWarmupEnd: func() {
				for _, rv := range recvs {
					bytes0 += rv.BytesReceived
					pkts0 += rv.Pkts
				}
			},
			fill: func(r *Result, win sim.Time) {
				var bytes, pkts uint64
				for _, rv := range recvs {
					bytes += rv.BytesReceived
					pkts += rv.Pkts
				}
				r.ThroughputMbps = mbps(bytes-bytes0, win)
				r.PktRate = rate(pkts-pkts0, win)
			},
		}, nil

	case Ping:
		p := workloads.StartPing(kern, peer, tb.ids.Next(), sim.DurationOf(w.PingInterval))
		// The first probe (fired inside StartPing) predates the probe
		// and goes unchained; it completes during warmup regardless.
		p.Causal = tb.crit.Probe(0)
		seriesStart := 0
		return collector{
			sloLat: p.Hist,
			sloOps: func() float64 { return float64(p.Hist.Count()) },
			onWarmupEnd: func() {
				p.Hist.Reset()
				seriesStart = p.RTTs.Len()
			},
			fill: func(r *Result, win sim.Time) {
				for _, pt := range p.RTTs.Points[seriesStart:] {
					r.RTTSeries = append(r.RTTSeries, RTTPoint{AtSeconds: pt.T.Seconds(), Millis: pt.V})
				}
				fillLatency(r, p.Hist)
			},
		}, nil

	case Memcached:
		cfg := workloads.DefaultServerConfig()
		cfg.ServiceCost = sim.DurationOf(w.ServiceCost)
		workloads.StartServer(kern, cfg)
		if spec.Load.Enabled() {
			// Open-loop load replaces the closed-loop memaslap: the peer
			// arms arrivals on the sim clock from a private RNG root, so
			// the offered sequence is a pure function of spec and seed.
			warmup := sim.DurationOf(spec.Warmup)
			window := sim.DurationOf(spec.Duration)
			rt := loadgen.NewRuntime(spec.Load.Profile, warmup, window)
			ol := workloads.NewOpenLoopPeer(peer, rt)
			ol.Causal = tb.crit.Probe(0)
			loadRng := sim.NewRand(spec.Seed ^ loadSeedSalt)
			streams := expandLoadStreams(spec.Load)
			spread := sim.DurationOf(2 * time.Millisecond)
			for gs, st := range streams {
				rng := loadRng.Fork()
				ol.AddStream(workloads.StreamConfig{
					Flows: []int{tb.ids.Next()}, RatePerSec: st.rate,
					Sampler:  newLoadSampler(st.cls, rng),
					ReqBytes: st.cls.ReqBytes, RespBytes: st.cls.RespBytes,
					MaxOutstanding: st.cls.MaxOutstanding,
					Start:          spread * sim.Time(gs) / sim.Time(len(streams)),
				})
			}
			return collector{
				sloLat:      ol.Lat,
				sloOps:      func() float64 { return float64(ol.Completed) },
				onWarmupEnd: ol.ResetStats,
				fill: func(r *Result, win sim.Time) {
					r.OpsPerSec = rate(ol.Completed, win)
					fillLatency(r, ol.Lat)
					t := loadTotals{
						arrivals: ol.Arrivals(),
						offered:  ol.Offered, admitted: ol.Admitted,
						shed: ol.Shed, completed: ol.Completed,
						phaseOffered: ol.PhaseOffered, phaseShed: ol.PhaseShed,
						phaseCompleted: ol.PhaseCompleted, backlog: ol.Backlog(),
					}
					r.Load = buildLoadReport(rt, t, ol.PhaseLat, len(streams), win, warmup+win)
				},
			}, nil
		}
		m := workloads.StartMemaslap(peer, &tb.ids, w.Conns, w.Concurrency)
		// The initial burst (issued inside StartMemaslap) goes
		// unchained; the closed loop picks chains up on reissue, well
		// before warmup ends.
		m.Causal = tb.crit.Probe(0)
		var done0 uint64
		return collector{
			sloLat:      m.Lat,
			sloOps:      func() float64 { return float64(m.Completed) },
			onWarmupEnd: func() { done0 = m.Completed; m.Lat.Reset() },
			fill: func(r *Result, win sim.Time) {
				r.OpsPerSec = rate(m.Completed-done0, win)
				fillLatency(r, m.Lat)
			},
		}, nil

	case Apache:
		cfg := workloads.DefaultServerConfig()
		cfg.ServiceCost = sim.DurationOf(w.ServiceCost)
		workloads.StartServer(kern, cfg)
		ab := workloads.StartApacheBench(peer, &tb.ids, w.Concurrency, w.PageBytes)
		var done0, bytes0 uint64
		return collector{
			sloLat:      ab.ConnTime,
			sloOps:      func() float64 { return float64(ab.Completed) },
			onWarmupEnd: func() { done0, bytes0 = ab.Completed, ab.BytesReceived; ab.ConnTime.Reset() },
			fill: func(r *Result, win sim.Time) {
				r.OpsPerSec = rate(ab.Completed-done0, win)
				r.ThroughputMbps = mbps(ab.BytesReceived-bytes0, win)
				fillLatency(r, ab.ConnTime)
			},
		}, nil

	case Httperf:
		cfg := workloads.DefaultServerConfig()
		cfg.ServiceCost = sim.DurationOf(w.ServiceCost)
		workloads.StartServer(kern, cfg)
		h := workloads.StartHttperf(peer, &tb.ids, w.ConnRate, w.PageBytes)
		var est0 uint64
		return collector{
			sloLat:      h.ConnTime,
			sloOps:      func() float64 { return float64(h.Established) },
			onWarmupEnd: func() { est0 = h.Established; h.ConnTime.Reset() },
			fill: func(r *Result, win sim.Time) {
				r.OpsPerSec = rate(h.Established-est0, win)
				fillLatency(r, h.ConnTime)
			},
		}, nil
	}
	return collector{}, fmt.Errorf("es2: unknown workload kind %d", w.Kind)
}

func mbps(bytes uint64, win sim.Time) float64 {
	if win <= 0 {
		return 0
	}
	return float64(bytes) * 8 / 1e6 / win.Seconds()
}

func rate(n uint64, win sim.Time) float64 {
	if win <= 0 {
		return 0
	}
	return float64(n) / win.Seconds()
}

func fillLatency(r *Result, h interface {
	Mean() sim.Time
	Quantile(float64) sim.Time
	Max() sim.Time
}) {
	r.MeanLatency = time.Duration(h.Mean())
	r.P50Latency = time.Duration(h.Quantile(0.5))
	r.P90Latency = time.Duration(h.Quantile(0.9))
	r.P99Latency = time.Duration(h.Quantile(0.99))
	r.P999Latency = time.Duration(h.Quantile(0.999))
	r.MaxLatency = time.Duration(h.Max())
}
