package es2

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Spec files are plain JSON encodings of ScenarioSpec / ClusterSpec
// with Go field names as keys. Duration fields are nanosecond integers
// (time.Duration's JSON form); Workload.Kind accepts either the
// symbolic name ("ping", "memcached", ...) or the numeric enum value.
// Unknown keys are rejected so a typo fails loudly instead of
// silently running the default scenario.

// MarshalJSON encodes the workload kind as its symbolic name.
func (k WorkloadKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON accepts a symbolic workload name or the numeric enum.
func (k *WorkloadKind) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		for i := IdleBurn; i <= Httperf; i++ {
			if i.String() == s {
				*k = i
				return nil
			}
		}
		return fmt.Errorf("unknown workload kind %q", s)
	}
	var n int
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*k = WorkloadKind(n)
	return nil
}

// decodeSpec decodes exactly one JSON document into dst, rejecting
// unknown fields and trailing garbage.
func decodeSpec(r io.Reader, dst any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return err
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return fmt.Errorf("trailing data after spec document")
	}
	return nil
}

// ParseScenarioSpec reads one JSON ScenarioSpec from r and validates
// it (defaults applied first, exactly as Run would).
func ParseScenarioSpec(r io.Reader) (ScenarioSpec, error) {
	var s ScenarioSpec
	if err := decodeSpec(r, &s); err != nil {
		return s, fmt.Errorf("es2: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// ParseClusterSpec reads one JSON ClusterSpec from r and validates it.
func ParseClusterSpec(r io.Reader) (ClusterSpec, error) {
	var s ClusterSpec
	if err := decodeSpec(r, &s); err != nil {
		return s, fmt.Errorf("es2: parse cluster spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// ParseChaosSpec reads one JSON ChaosSpec from r and validates it.
// Validation here is standalone — window-fit against a particular
// cluster duration happens when the spec is attached to a ClusterSpec.
func ParseChaosSpec(r io.Reader) (ChaosSpec, error) {
	var s ChaosSpec
	if err := decodeSpec(r, &s); err != nil {
		return s, fmt.Errorf("es2: parse chaos spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return s, &SpecError{Field: "Chaos", Reason: err.Error()}
	}
	return s, nil
}

// ParseSLOSpec reads one JSON SLOSpec from r and validates it
// standalone — workload-compatibility of the objectives is checked
// when the spec is attached to a ScenarioSpec or ClusterSpec.
func ParseSLOSpec(r io.Reader) (SLOSpec, error) {
	var s SLOSpec
	if err := decodeSpec(r, &s); err != nil {
		return s, fmt.Errorf("es2: parse slo spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return s, &SpecError{Field: "SLO", Reason: err.Error()}
	}
	return s.WithDefaults(), nil
}

// ParseLoadSpec reads one JSON LoadSpec from r and validates it
// standalone — workload compatibility (memcached-only and fan-out
// restrictions on a single host, flow budgets on a cluster) is checked
// when the spec is attached to a ScenarioSpec or ClusterSpec.
func ParseLoadSpec(r io.Reader) (LoadSpec, error) {
	var s LoadSpec
	if err := decodeSpec(r, &s); err != nil {
		return s, fmt.Errorf("es2: parse load spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return s, &SpecError{Field: "Load", Reason: err.Error()}
	}
	return s.WithDefaults(), nil
}

// LoadLoadSpec reads and validates a JSON LoadSpec file.
func LoadLoadSpec(path string) (LoadSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return LoadSpec{}, err
	}
	defer f.Close()
	return ParseLoadSpec(f)
}

// LoadSLOSpec reads and validates a JSON SLOSpec file.
func LoadSLOSpec(path string) (SLOSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return SLOSpec{}, err
	}
	defer f.Close()
	return ParseSLOSpec(f)
}

// LoadChaosSpec reads and validates a JSON ChaosSpec file.
func LoadChaosSpec(path string) (ChaosSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return ChaosSpec{}, err
	}
	defer f.Close()
	return ParseChaosSpec(f)
}

// LoadScenarioSpec reads and validates a JSON ScenarioSpec file.
func LoadScenarioSpec(path string) (ScenarioSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return ScenarioSpec{}, err
	}
	defer f.Close()
	return ParseScenarioSpec(f)
}

// LoadClusterSpec reads and validates a JSON ClusterSpec file.
func LoadClusterSpec(path string) (ClusterSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return ClusterSpec{}, err
	}
	defer f.Close()
	return ParseClusterSpec(f)
}
